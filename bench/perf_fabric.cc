/**
 * @file
 * perf_fabric — scaling study of the many-segment bus fabric
 * (src/fabric): segment counts 4 / 36 / 256 / 1024 (meshes 2x2,
 * 6x6, 16x16, 32x32), millions of routed transactions, sharded over
 * the exec ThreadPool.
 *
 * Protocol (same discipline as perf_exec / perf_pipeline): every
 * timing result is gated on correctness pins run first —
 *
 *  1. single-segment oracle: a 1-tile fabric must be bit-identical
 *     to a standalone BusSimulator fed the identical word stream,
 *     for the four Fig 3 schemes;
 *  2. determinism: a 6x6 mesh must produce bit-identical
 *     fingerprints at pool sizes 1, 2, and hw and across all pin
 *     policies.
 *
 * The timed cells then sweep the mesh sizes, and the target cell
 * (--segments, default 256, >= 1M transactions) additionally runs
 * under exec supervision; its per-segment energy/thermal rollup and
 * the pool placement stats land in BENCH_fabric.json.
 *
 * Flags: --topology=mesh|ring|crossbar --segments=N
 *        --pattern=uniform|hotspot|neighbor --transactions=N
 *        --rate=F --interval=CYCLES --threads=N
 *        --pinning=none|compact|scatter --json=PATH
 *        --retries=N --deadline=MS
 *        --solver=rk4|be|cn (thermal integrator for the timed
 *        cells; the correctness pins always pin the RK4 oracle)
 *        --smoke (small meshes, few transactions)
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exec/thread_pool.hh"
#include "fabric/fabric.hh"
#include "fabric/topology.hh"
#include "fabric/traffic.hh"
#include "tech/technology.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace nanobus;

namespace {

BusSimConfig
segmentConfig(EncodingScheme scheme, uint64_t interval_cycles,
              ThermalSolver solver = ThermalSolver::Rk4)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 32;
    config.interval_cycles = interval_cycles;
    config.record_samples = true;
    config.thermal.solver = solver;
    return config;
}

/** Every observable of one segment flattened for bitwise
 *  comparison (the same discipline as perf_pipeline). */
std::vector<double>
segmentFingerprint(const BusSimulator &bus)
{
    std::vector<double> fp;
    fp.push_back(static_cast<double>(bus.transmissions()));
    fp.push_back(static_cast<double>(bus.currentCycle()));
    fp.push_back(bus.totalEnergy().self.raw());
    fp.push_back(bus.totalEnergy().coupling.raw());
    for (double e : bus.lineEnergies())
        fp.push_back(e);
    fp.push_back(static_cast<double>(bus.thermalFaults().size()));
    fp.push_back(static_cast<double>(bus.samples().size()));
    for (const IntervalSample &s : bus.samples()) {
        fp.push_back(static_cast<double>(s.end_cycle));
        fp.push_back(static_cast<double>(s.transmissions));
        fp.push_back(s.energy.self.raw());
        fp.push_back(s.energy.coupling.raw());
        fp.push_back(s.avg_temperature.raw());
        fp.push_back(s.max_temperature.raw());
        fp.push_back(s.avg_current.raw());
    }
    return fp;
}

std::vector<double>
fabricFingerprint(const BusFabric &fabric)
{
    std::vector<double> fp;
    for (unsigned s = 0; s < fabric.numSegments(); ++s) {
        const std::vector<double> seg =
            segmentFingerprint(fabric.segment(s));
        fp.insert(fp.end(), seg.begin(), seg.end());
    }
    return fp;
}

bool
identicalBits(const std::vector<double> &a,
              const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(double)) == 0);
}

/**
 * Single-segment oracle pin: a crossbar(1) fabric carrying
 * self-sends must be bit-identical to a standalone BusSimulator fed
 * the identical words, per scheme.
 */
bool
pinSingleSegmentOracle(const TechnologyNode &tech)
{
    std::vector<FabricTransaction> txs;
    Rng rng(0xfab0);
    uint64_t cycle = 0;
    for (size_t i = 0; i < 2000; ++i) {
        txs.push_back({cycle, 0, 0,
                       static_cast<uint32_t>(rng.next())});
        cycle += 1 + rng.below(5);
    }

    const std::vector<EncodingScheme> pin_schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
    };
    exec::ThreadPool pool(2);
    for (EncodingScheme scheme : pin_schemes) {
        FabricConfig config;
        config.topology = TopologyKind::Crossbar;
        config.tiles = 1;
        config.segment = segmentConfig(scheme, 1000);
        BusFabric fabric(tech, config);
        VectorTrafficSource source(txs);
        Result<FabricRunStats> stats = fabric.run(source, pool);
        if (!stats.ok())
            fatal("perf_fabric: oracle pin run failed: %s",
                  stats.error().describe().c_str());

        BusSimulator standalone(tech, config.segment);
        for (const FabricTransaction &tx : txs)
            standalone.transmit(tx.cycle, tx.payload);
        standalone.advanceTo(stats.value().last_cycle);

        if (!identicalBits(segmentFingerprint(fabric.segment(0)),
                           segmentFingerprint(standalone))) {
            std::fprintf(stderr,
                         "FAIL: %s single-segment fabric diverges "
                         "from the standalone simulator\n",
                         schemeName(scheme));
            return false;
        }
    }
    std::printf("oracle pin: 1-segment fabric bit-identical to the "
                "standalone simulator (%zu schemes)\n",
                pin_schemes.size());
    return true;
}

/**
 * Determinism pin: a 6x6 mesh run must be bit-identical across pool
 * sizes 1/2/hw and across pin policies.
 */
bool
pinMeshDeterminism(const TechnologyNode &tech)
{
    FabricConfig config;
    config.topology = TopologyKind::Mesh2D;
    config.rows = 6;
    config.cols = 6;
    config.segment = segmentConfig(EncodingScheme::BusInvert, 500);

    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::Hotspot;
    traffic.hotspot_tile = 21;
    traffic.injection_rate = 0.2;
    traffic.seed = 99;
    traffic.max_transactions = 4000;

    auto runOnce = [&](unsigned pool_size,
                       exec::PinPolicy pinning) {
        BusFabric fabric(tech, config);
        SyntheticTraffic source(fabric.topology(), traffic);
        exec::ThreadPool pool(pool_size, pinning);
        Result<FabricRunStats> stats = fabric.run(source, pool);
        if (!stats.ok())
            fatal("perf_fabric: determinism pin run failed: %s",
                  stats.error().describe().c_str());
        return fabricFingerprint(fabric);
    };

    const std::vector<double> reference =
        runOnce(1, exec::PinPolicy::None);
    const unsigned hw = exec::ThreadPool::defaultThreads();
    unsigned pins = 0;
    for (unsigned pool_size : {2u, hw}) {
        for (exec::PinPolicy pinning :
             {exec::PinPolicy::None, exec::PinPolicy::Compact,
              exec::PinPolicy::Scatter}) {
            if (!identicalBits(reference,
                               runOnce(pool_size, pinning))) {
                std::fprintf(stderr,
                             "FAIL: 6x6 mesh diverges at pool=%u "
                             "pinning=%s\n",
                             pool_size,
                             exec::pinPolicyName(pinning));
                return false;
            }
            ++pins;
        }
    }
    std::printf("determinism pin: 6x6 mesh bit-identical across "
                "%u pool/pinning combinations\n\n",
                pins);
    return true;
}

/** Mesh edge for a segment-count cell (4 -> 2x2, 1024 -> 32x32). */
unsigned
meshEdge(uint64_t segments)
{
    const unsigned edge = static_cast<unsigned>(
        std::llround(std::sqrt(static_cast<double>(segments))));
    return edge > 0 ? edge : 1;
}

FabricConfig
cellConfig(TopologyKind topology, uint64_t segments,
           uint64_t interval_cycles, ThermalSolver solver)
{
    FabricConfig config;
    config.topology = topology;
    if (topology == TopologyKind::Mesh2D) {
        config.rows = meshEdge(segments);
        config.cols = config.rows;
    } else {
        config.tiles = static_cast<unsigned>(segments);
    }
    config.segment = segmentConfig(EncodingScheme::BusInvert,
                                   interval_cycles, solver);
    return config;
}

TrafficConfig
cellTraffic(const FabricConfig &config, TrafficPattern pattern,
            double rate, uint64_t transactions)
{
    TrafficConfig traffic;
    traffic.pattern = pattern;
    traffic.injection_rate = rate;
    traffic.seed = 0xfab51c;
    traffic.max_transactions = transactions;
    const unsigned tiles = config.topology == TopologyKind::Mesh2D
                               ? config.rows * config.cols
                               : config.tiles;
    traffic.hotspot_tile = tiles / 2;
    return traffic;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const bench::ExecFlags exec_flags = bench::ExecFlags::parse(flags);

    const std::string topo_name = flags.get("topology", "mesh");
    const auto topology = parseTopologyKind(topo_name);
    if (!topology) {
        std::fprintf(stderr,
                     "--topology=%s: expected mesh, ring, or "
                     "crossbar\n",
                     topo_name.c_str());
        return 2;
    }
    const std::string pattern_name = flags.get("pattern", "hotspot");
    const auto pattern = parseTrafficPattern(pattern_name);
    if (!pattern) {
        std::fprintf(stderr,
                     "--pattern=%s: expected uniform, hotspot, or "
                     "neighbor\n",
                     pattern_name.c_str());
        return 2;
    }
    const uint64_t target_segments =
        flags.getU64("segments", smoke ? 36 : 256);
    const uint64_t transactions =
        flags.getU64("transactions", smoke ? 4000 : 1000000);
    const double rate = flags.getF64("rate", 0.2);
    const uint64_t interval =
        flags.getU64("interval", smoke ? 500 : 2000);
    const ThermalSolver solver =
        bench::thermalSolverFromFlags(flags, ThermalSolver::Rk4);
    const std::string json_path = flags.get("json", "");

    bench::banner("fabric scaling (src/fabric)",
                  "Many-segment bus fabric: routed traffic + lateral "
                  "thermal coupling (equivalence-gated)");

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    bench::WallTimer total_timer;

    // ------------------------------------------------------------
    // Correctness pins before any timing.
    // ------------------------------------------------------------
    if (!pinSingleSegmentOracle(tech) || !pinMeshDeterminism(tech))
        return 1;

    exec::ThreadPool pool(exec_flags.threads, exec_flags.pinning);
    bench::RunMeta meta("fabric", pool.size());
    meta.setWorkload(topologyKindName(*topology), target_segments,
                     trafficPatternName(*pattern));

    // ------------------------------------------------------------
    // Scaling cells: the ISSUE's segment ladder, the target cell
    // last (its rollup feeds the JSON).
    // ------------------------------------------------------------
    std::vector<uint64_t> ladder =
        smoke ? std::vector<uint64_t>{4, 36}
              : std::vector<uint64_t>{4, 36, 256, 1024};
    bool target_in_ladder = false;
    for (uint64_t segments : ladder)
        target_in_ladder |= segments == target_segments;
    if (!target_in_ladder)
        ladder.push_back(target_segments);

    std::printf("scaling cells (%s, %s traffic, %s thermal solver, "
                "%u threads):\n",
                topologyKindName(*topology),
                trafficPatternName(*pattern),
                thermalSolverName(solver), pool.size());
    std::unique_ptr<BusFabric> target_fabric;
    FabricRunStats target_stats;
    for (uint64_t segments : ladder) {
        const bool is_target = segments == target_segments;
        // The target cell carries the full transaction budget; the
        // other rungs scale theirs by segment count so every cell
        // sees comparable per-segment load.
        const uint64_t cell_txs = is_target
            ? transactions
            : std::max<uint64_t>(
                  1000, transactions * segments / target_segments);
        FabricConfig config =
            cellConfig(*topology, segments, interval, solver);
        auto fabric = std::make_unique<BusFabric>(tech, config);
        SyntheticTraffic source(
            fabric->topology(),
            cellTraffic(config, *pattern, rate, cell_txs));
        bench::WallTimer timer;
        Result<FabricRunStats> stats = fabric->run(source, pool);
        const double wall = timer.ms();
        if (!stats.ok())
            fatal("perf_fabric: cell %llu failed: %s",
                  static_cast<unsigned long long>(segments),
                  stats.error().describe().c_str());
        const FabricRunStats &run = stats.value();
        const double hops_per_s = wall > 0.0
            ? static_cast<double>(run.hops) / (wall / 1000.0)
            : 0.0;
        char label[64];
        std::snprintf(label, sizeof(label), "segments%llu",
                      static_cast<unsigned long long>(
                          fabric->numSegments()));
        std::printf("  %-14s %9llu txs %10llu hops %9.2f ms "
                    "%12.0f hops/s\n",
                    label,
                    static_cast<unsigned long long>(
                        run.transactions),
                    static_cast<unsigned long long>(run.hops), wall,
                    hops_per_s);
        meta.addShard(label, wall);
        if (is_target) {
            target_stats = run;
            target_fabric = std::move(fabric);
        }
    }
    if (!target_fabric)
        fatal("perf_fabric: target cell (%llu segments) never ran",
              static_cast<unsigned long long>(target_segments));

    // ------------------------------------------------------------
    // Supervised re-run of the target cell: the whole-fabric job
    // under retry/deadline supervision; tallies land in the JSON
    // "supervisor" block.
    // ------------------------------------------------------------
    const double deadline_ms = flags.getF64("deadline", 0.0);
    const unsigned retries =
        static_cast<unsigned>(flags.getU64("retries", 1));
    {
        FabricConfig config = cellConfig(
            *topology,
            smoke ? target_segments : std::min<uint64_t>(
                                          target_segments, 36),
            interval, solver);
        const uint64_t sup_txs = smoke ? 2000 : 20000;
        exec::FabricSupervisor::Options options;
        options.max_retries = retries;
        options.deadline_ms = deadline_ms;
        const exec::FabricSupervisor supervisor(pool, options);
        std::vector<exec::SupervisedFabricJob> jobs;
        jobs.push_back(supervisedFabricRunJob(
            "fabric-target", tech, config,
            cellTraffic(config, *pattern, rate, sup_txs)));
        Result<exec::SupervisedFabricReport> supervised =
            supervisor.run(jobs);
        if (!supervised.ok()) {
            std::fprintf(stderr, "FAIL: supervised fabric run: %s\n",
                         supervised.error().describe().c_str());
            return 1;
        }
        const exec::SupervisedFabricReport &sup =
            supervised.value();
        std::printf("\nsupervised cell: %s attempts=%u "
                    "transactions=%llu\n",
                    exec::jobOutcomeName(sup.records[0].outcome),
                    sup.records[0].attempts,
                    static_cast<unsigned long long>(
                        sup.reports[0].stats.transactions));
        bench::SupervisorSummary summary;
        summary.enabled = true;
        summary.ok = sup.ok_count;
        summary.retried = sup.retried_count;
        summary.timed_out = sup.timed_out_count;
        summary.quarantined = sup.quarantined_count;
        summary.max_retries = retries;
        summary.deadline_ms = deadline_ms;
        meta.setSupervisor(summary);
        if (!sup.allSucceeded()) {
            std::fprintf(stderr, "FAIL: supervised fabric cell did "
                                 "not complete\n");
            return 1;
        }
    }

    // ------------------------------------------------------------
    // Target-cell rollup: per-segment energy/thermal summaries into
    // the JSON "segments_summary" array.
    // ------------------------------------------------------------
    const BusFabric &fabric = *target_fabric;
    std::string rollup = "[\n";
    char buf[224];
    for (unsigned s = 0; s < fabric.numSegments(); ++s) {
        const SegmentSummary summary = fabric.summarize(s);
        std::snprintf(
            buf, sizeof(buf),
            "    {\"segment\": %u, \"transmissions\": %llu, "
            "\"energy_self_j\": %.6e, \"energy_coupling_j\": %.6e, "
            "\"avg_temp_k\": %.4f, \"max_temp_k\": %.4f, "
            "\"thermal_faults\": %zu}%s\n",
            summary.segment,
            static_cast<unsigned long long>(summary.transmissions),
            summary.energy.self.raw(), summary.energy.coupling.raw(),
            summary.avg_temperature.raw(),
            summary.max_temperature.raw(), summary.thermal_faults,
            s + 1 < fabric.numSegments() ? "," : "");
        rollup += buf;
    }
    rollup += "  ]";
    meta.addSection("segments_summary", rollup);
    std::snprintf(
        buf, sizeof(buf),
        "{\"transactions\": %llu, \"hops\": %llu, "
        "\"last_cycle\": %llu, \"epochs\": %llu, "
        "\"total_energy_j\": %.6e, \"max_temp_k\": %.4f, "
        "\"thermal_faults\": %zu}",
        static_cast<unsigned long long>(target_stats.transactions),
        static_cast<unsigned long long>(target_stats.hops),
        static_cast<unsigned long long>(target_stats.last_cycle),
        static_cast<unsigned long long>(target_stats.epochs),
        fabric.totalEnergy().total().raw(),
        fabric.maxTemperature().raw(), fabric.thermalFaultCount());
    meta.addSection("target", buf);

    std::printf("\ntarget cell: %u segments, %llu transactions, "
                "%llu hops, %llu epochs, E=%.3e J, Tmax=%.2f K\n",
                fabric.numSegments(),
                static_cast<unsigned long long>(
                    target_stats.transactions),
                static_cast<unsigned long long>(target_stats.hops),
                static_cast<unsigned long long>(target_stats.epochs),
                fabric.totalEnergy().total().raw(),
                fabric.maxTemperature().raw());

    meta.setCounters(pool.counters());
    meta.setPlacement(exec::pinPolicyName(pool.pinning()),
                      pool.workersPerNode());
    const std::string written =
        meta.writeJson(total_timer.ms(), json_path);
    if (!written.empty())
        std::printf("wrote %s\n", written.c_str());
    meta.printSummary(total_timer.ms());
    return 0;
}
