/**
 * @file
 * Reproduces Fig 5: effect of intermittent bus idling on wire
 * temperature. The swim profile is interleaved with ~1M-cycle idle
 * windows (processor stalled, buses holding their last addresses);
 * the paper observes that these idle periods have no appreciable
 * cooling effect — the temperature dips are tiny compared to the
 * total rise over ambient.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/csv.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t active = flags.getU64("active-cycles", 4000000);
    const uint64_t idle = flags.getU64("idle-cycles", 1000000);
    const uint64_t cycles = flags.getU64("cycles", 24000000);
    const uint64_t interval = flags.getU64("interval", 100000);
    const double stack_tau = static_cast<double>(
        flags.getU64("stack-tau-ms", 2)) * 1e-3;
    std::string csv_path = flags.get("csv", "");

    bench::banner("Figure 5 (HPCA-11 2005)",
                  "Effect of intermittent bus idling on wire "
                  "temperature (swim)");
    std::printf("Active window: %llu cycles, idle window: %llu "
                "cycles (paper: ~1M-cycle idles)\n\n",
                static_cast<unsigned long long>(active),
                static_cast<unsigned long long>(idle));

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = interval;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{stack_tau};

    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile("swim"), 1, cycles);
    IdleInjector injector(cpu, active, idle);
    twin.run(injector);

    std::unique_ptr<CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(csv_path);
        csv->header({"bus", "end_cycle", "interval_energy_j",
                     "max_temp_k"});
    }

    for (const char *bus_name : {"DA", "IA"}) {
        const BusSimulator &bus = bus_name[0] == 'D'
            ? twin.dataBus() : twin.instructionBus();
        const auto &samples = bus.samples();

        // Locate the hottest point and the largest idle dip after
        // the ramp has saturated (second half of the run).
        double peak = 0.0, trough = 1e9;
        size_t half = samples.size() / 2;
        for (size_t i = half; i < samples.size(); ++i) {
            peak = std::max(peak,
                            samples[i].max_temperature.raw());
            trough = std::min(trough,
                              samples[i].max_temperature.raw());
        }
        double rise = peak - 318.15;
        double dip = peak - trough;

        std::printf("--- %s bus ---\n", bus_name);
        std::printf("  intervals              : %zu\n",
                    samples.size());
        std::printf("  steady-state max temp  : %.3f K "
                    "(+%.3f K over ambient)\n", peak, rise);
        std::printf("  largest idle dip       : %.4f K "
                    "(%.2f%% of the rise)\n", dip,
                    rise > 0.0 ? 100.0 * dip / rise : 0.0);
        std::printf("  [check] paper Fig 5's whole y-range spans "
                    "0.055 K at ~342 K — idling does not\n"
                    "          appreciably cool the bus.\n\n");

        if (csv) {
            for (const auto &s : samples) {
                csv->beginRow();
                csv->cell(std::string(bus_name));
                csv->cell(s.end_cycle);
                csv->cell(s.energy.total());
                csv->cell(s.max_temperature);
                csv->endRow();
            }
        }
    }

    if (csv)
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
