/**
 * @file
 * Reproduces Fig 1(b): per-wire capacitance distribution (Cgnd, CC1,
 * CC2, CC3, CCrest) for a 32-bit co-planar bus at each ITRS node,
 * extracted with the BEM field solver (the FastCap substitute).
 *
 * Paper claim: non-adjacent coupling contributes ~10% of total wire
 * capacitance at 130/90 nm and ~8% even at 45 nm.
 */

#include <cstdio>

#include "bench_common.hh"
#include "extraction/bem.hh"
#include "util/csv.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    unsigned wires = static_cast<unsigned>(
        flags.getU64("wires", 32));
    unsigned panels = static_cast<unsigned>(
        flags.getU64("panels", 6));
    std::string csv_path = flags.get("csv", "");

    bench::banner("Figure 1(b) (HPCA-11 2005)",
                  "Distribution of extracted capacitances for a "
                  "32-wire co-planar bus");

    std::printf("BEM extraction: %u wires, ~%u panels per wire "
                "width\n\n", wires, panels);
    std::printf("%-8s %8s %8s %8s %8s %8s | %10s %12s\n", "Node",
                "Cgnd%", "CC1%", "CC2%", "CC3%", "CCrest%",
                "non-adj%", "ctot (pF/m)");
    bench::rule(88);

    std::vector<std::vector<std::string>> csv_rows;
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        BusGeometry geometry = BusGeometry::forTechnology(tech, wires);
        BemExtractor::Options opts;
        opts.panels_per_width = panels;
        CapacitanceMatrix cm = BemExtractor(geometry, opts).extract();

        unsigned centre = wires / 2;
        auto d = cm.distribution(centre);
        std::printf("%-8s %8.2f %8.2f %8.2f %8.2f %8.2f | %10.2f "
                    "%12.2f\n",
                    tech.name.c_str(), 100.0 * d.cgnd, 100.0 * d.cc1,
                    100.0 * d.cc2, 100.0 * d.cc3, 100.0 * d.ccrest,
                    100.0 * d.nonAdjacent(),
                    cm.total(centre).raw() * 1e12);
        csv_rows.push_back(
            {tech.name, std::to_string(d.cgnd),
             std::to_string(d.cc1), std::to_string(d.cc2),
             std::to_string(d.cc3), std::to_string(d.ccrest)});
    }

    std::printf("\nPaper: non-adjacent coupling is non-negligible "
                "(~8-10%% of total) at every node.\n");

    if (!csv_path.empty()) {
        CsvWriter csv(csv_path);
        csv.header({"node", "cgnd", "cc1", "cc2", "cc3", "ccrest"});
        for (const auto &row : csv_rows)
            csv.row(row);
        std::printf("CSV written to %s\n", csv_path.c_str());
    }
    return 0;
}
