/**
 * @file
 * Shielding vs encoding study: the physical-design alternative to
 * the low-power encodings of Fig 3. Grounded shields between signal
 * wires kill the coupling (and its Miller worst case) outright for
 * ~2x area; this bench puts shields, area-equalized spreading, and
 * the paper's best encoder on the same energy axis for real address
 * traffic.
 */

#include <cstdio>

#include "bench_common.hh"
#include "extraction/shielding.hh"
#include "fabric/bus_sim.hh"
#include "trace/batch.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

namespace {

struct LayoutResult
{
    double self = 0.0;
    double coupling = 0.0;
    double total() const { return self + coupling; }
};

LayoutResult
runLayout(const TechnologyNode &tech, const CapacitanceMatrix &caps,
          EncodingScheme scheme, uint64_t cycles)
{
    BusSimConfig config;
    config.data_width = 16; // BEM over 31 physical wires stays fast
    config.scheme = scheme;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;
    BusSimulator sim(tech, config, &caps);

    SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
    uint64_t last = 0;
    forEachBatch(cpu, [&](const RecordBatch &batch) {
        for (const TraceRecord &r : batch) {
            if (r.kind == AccessKind::InstructionFetch)
                continue;
            sim.transmit(r.cycle, r.address); // low 16 bits used
            last = r.cycle;
        }
    });
    sim.advanceTo(last);
    return {sim.totalEnergy().self.raw(),
            sim.totalEnergy().coupling.raw()};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 100000);
    const unsigned signals = 16;

    bench::banner("Shielding study (design-space extension)",
                  "Grounded shields vs spacing vs encoding on real "
                  "address traffic");
    std::printf("16-bit DA slice of eon, %llu cycles, 130 nm; BEM-"
                "extracted matrices\n\n",
                static_cast<unsigned long long>(cycles));

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BemExtractor::Options options;
    options.panels_per_width = 5;

    CapacitanceMatrix bare =
        unshieldedSignalMatrix(tech, signals, options)
            .calibratedTo(tech);
    CapacitanceMatrix shielded =
        shieldedSignalMatrix(tech, signals, options);
    CapacitanceMatrix spread =
        spreadSignalMatrix(tech, signals, options);

    struct Row
    {
        const char *name;
        const CapacitanceMatrix *caps;
        EncodingScheme scheme;
        const char *area;
    };
    const Row rows[] = {
        {"min-pitch unencoded", &bare, EncodingScheme::Unencoded,
         "1x"},
        {"min-pitch bus-invert", &bare, EncodingScheme::BusInvert,
         "1x+1"},
        {"shielded unencoded", &shielded, EncodingScheme::Unencoded,
         "2x"},
        {"spread unencoded", &spread, EncodingScheme::Unencoded,
         "2x"},
    };

    std::printf("%-22s %6s | %12s %12s %12s\n", "Layout", "area",
                "self (J)", "coupling (J)", "total (J)");
    bench::rule(72);
    double baseline = 0.0;
    for (const Row &row : rows) {
        // Bus-invert adds a control line; rebuild its matrix at the
        // encoder's physical width.
        CapacitanceMatrix caps = *row.caps;
        if (row.scheme == EncodingScheme::BusInvert)
            caps = CapacitanceMatrix::analytical(tech, signals + 1);
        LayoutResult result = runLayout(tech, caps, row.scheme,
                                        cycles);
        if (baseline == 0.0)
            baseline = result.total();
        std::printf("%-22s %6s | %12.5e %12.5e %12.5e (%+.0f%%)\n",
                    row.name, row.area, result.self, result.coupling,
                    result.total(),
                    100.0 * (result.total() - baseline) / baseline);
    }

    std::printf("\n[check] shields eliminate ~95%% of the coupling "
                "energy (and with it the Miller\n"
                "        toggles behind crosstalk delay and noise) "
                "but merely re-route capacitance\n"
                "        to ground, so *total* energy barely moves; "
                "spending the same 2x area on\n"
                "        spacing removes capacitance outright and "
                "wins on energy. Encoding is the\n"
                "        only zero-area option — which is why the "
                "paper evaluates it, and why its\n"
                "        finding that encoding barely helps address "
                "buses matters.\n");
    return 0;
}
