/**
 * @file
 * Design ablation (DESIGN.md AB2 companion): how much of the bus's
 * switching energy is the repeater load the paper folds into the
 * self term (Sec 3.1.1)? Compares energy with and without repeater
 * capacitance across nodes and wire lengths, plus the delay price of
 * omitting repeaters entirely.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "tech/delay.hh"
#include "tech/repeater.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

namespace {

double
runEnergy(const TechnologyNode &tech, bool repeaters,
          uint64_t cycles)
{
    BusSimConfig config;
    config.data_width = 32;
    config.include_repeaters = repeaters;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;
    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
    twin.run(cpu);
    return (twin.instructionBus().totalEnergy().total() +
            twin.dataBus().totalEnergy().total()).raw();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 100000);

    bench::banner("Ablation AB2 (DESIGN.md)",
                  "Energy contribution of repeater insertion "
                  "(Sec 3.1.1)");
    std::printf("Benchmark eon, %llu cycles, 10 mm bus\n\n",
                static_cast<unsigned long long>(cycles));

    std::printf("%-8s %8s %6s | %13s %13s %9s\n", "Node", "h", "k",
                "E w/ rep (J)", "E w/o rep (J)", "overhead");
    bench::rule(72);
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        RepeaterDesign design =
            RepeaterModel(tech).design(Meters{0.010});
        double with = runEnergy(tech, true, cycles);
        double without = runEnergy(tech, false, cycles);
        std::printf("%-8s %8.1f %6u | %13.5e %13.5e %8.2fx\n",
                    tech.name.c_str(), design.size_h, design.count_k,
                    with, without, with / without);
    }

    std::printf("\nDelay cost of dropping repeaters (130 nm, "
                "10 mm line):\n");
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    DelayModel delay(tech);
    LineDelay repeated =
        delay.repeatedLineDelay(Meters{0.010}, Kelvin{318.15});
    // Unrepeated line: single driver, distributed RC dominates:
    // t ~ 0.4 R C with R, C the full-line totals.
    const Ohms r_total = tech.r_wire * Meters{0.010};
    const Farads c_total = tech.cIntPerMetre() * Meters{0.010};
    const double unrepeated = 0.4 * (r_total * c_total).raw();
    std::printf("  repeated   : %8.1f ps (%g repeaters of %0.0fx "
                "min size)\n", repeated.total.raw() * 1e12,
                repeated.repeater_count, repeated.repeater_size);
    std::printf("  unrepeated : %8.1f ps (distributed RC only)\n",
                unrepeated * 1e12);
    std::printf("\n[check] repeaters multiply total switching "
                "energy ~1.9x at every node (C_rep =\n"
                "        0.756 C_int regardless of R0/C0) but are "
                "mandatory for delay: the\n"
                "        unrepeated 10 mm line is ~%.1fx slower, and "
                "the gap grows quadratically\n"
                "        with length — why the paper includes C_rep "
                "in the self-energy term.\n",
                unrepeated / repeated.total.raw());
    return 0;
}
