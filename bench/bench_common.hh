/**
 * @file
 * Shared helpers for the reproduction bench binaries: tiny flag
 * parser, fixed-width table printing, and the shard-timing report
 * every parallel driver serializes to BENCH_<name>.json so the
 * scaling trajectory (threads vs per-shard wall-clock) is captured
 * run over run.
 */

#ifndef NANOBUS_BENCH_BENCH_COMMON_HH
#define NANOBUS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/stats.hh"
#include "exec/thread_pool.hh"
#include "exec/topology.hh"
#include "thermal/network.hh"
#include "util/atomicfile.hh"
#include "util/result.hh"

namespace nanobus {
namespace bench {

/** Minimal `--key=value` / `--flag` command-line parser. */
class Flags
{
  public:
    Flags(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    /** Value of --key=..., or fallback. */
    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        std::string prefix = "--" + key + "=";
        for (const auto &arg : args_) {
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
        }
        return fallback;
    }

    /** Integer value of --key=..., or fallback. */
    uint64_t
    getU64(const std::string &key, uint64_t fallback) const
    {
        std::string v = get(key, "");
        return v.empty() ? fallback : std::strtoull(v.c_str(),
                                                    nullptr, 10);
    }

    /** Floating-point value of --key=..., or fallback. */
    double
    getF64(const std::string &key, double fallback) const
    {
        std::string v = get(key, "");
        return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
    }

    /** Presence of a bare --flag. */
    bool
    has(const std::string &key) const
    {
        std::string flag = "--" + key;
        for (const auto &arg : args_)
            if (arg == flag)
                return true;
        return false;
    }

  private:
    std::vector<std::string> args_;
};

// Declared below Flags so ExecFlags::parse can use it.
inline exec::PinPolicy pinPolicyFromFlags(const Flags &flags);

/**
 * The execution knobs every parallel bench driver shares:
 * `--threads=N` (default: the hardware pool size) and
 * `--pinning=none|compact|scatter` (default: NANOBUS_PINNING, then
 * none). Parsed in one place so the drivers cannot drift on flag
 * names or defaults.
 */
struct ExecFlags
{
    unsigned threads = 1;
    exec::PinPolicy pinning = exec::PinPolicy::None;

    static ExecFlags parse(const Flags &flags)
    {
        ExecFlags exec_flags;
        exec_flags.threads = static_cast<unsigned>(flags.getU64(
            "threads", exec::ThreadPool::defaultThreads()));
        exec_flags.pinning = pinPolicyFromFlags(flags);
        return exec_flags;
    }
};

/** Steady-clock stopwatch for shard and batch wall time. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction (or the last restart). */
    double ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Supervision outcome of one bench run, serialized into the
 * BENCH_*.json "supervisor" block. Plain counters on purpose: this
 * header stays independent of exec/supervisor.hh, so benches without
 * a supervised path don't pull the sim stack in. Drivers that run
 * under an exec::Supervisor copy the SupervisedReport tallies over.
 */
struct SupervisorSummary
{
    bool enabled = false;
    size_t ok = 0;
    size_t retried = 0;
    size_t timed_out = 0;
    size_t quarantined = 0;
    unsigned max_retries = 0;
    double deadline_ms = 0.0;
};

/**
 * Per-shard wall-clock report of one bench run. Shards are added in
 * a deterministic order after the parallel region drains (each
 * worker records into its own slot); writeJson emits the machine-
 * readable scaling record next to the figure's CSV.
 */
class RunMeta
{
  public:
    RunMeta(std::string bench_name, unsigned threads)
        : name_(std::move(bench_name)), threads_(threads)
    {
    }

    /** Record one shard's wall time [ms]. */
    void addShard(std::string label, double wall_ms)
    {
        labels_.push_back(std::move(label));
        wall_ms_.push_back(wall_ms);
    }

    /** Attach pool counters observed over the whole run. */
    void setCounters(const exec::ExecCounters &counters)
    {
        tasks_run_ = counters.tasks_run;
        steals_ = counters.steals;
    }

    /**
     * Attach the pool's worker-placement outcome: the policy name
     * ("none"/"compact"/"scatter") and the pinned-worker count per
     * NUMA node. An empty count vector means nothing was pinned
     * (policy none, single-node host, or unsupported platform).
     */
    void setPlacement(const char *pinning,
                      std::vector<unsigned> workers_per_node)
    {
        pinning_ = pinning;
        workers_per_node_ = std::move(workers_per_node);
    }

    /** Attach the run's supervision tallies (retry/deadline path). */
    void setSupervisor(const SupervisorSummary &summary)
    {
        supervisor_ = summary;
    }

    /** Attach the workload descriptor (fabric-style benches):
     *  topology name, segment count, and traffic pattern. */
    void setWorkload(std::string topology, uint64_t segments,
                     std::string pattern)
    {
        workload_topology_ = std::move(topology);
        workload_segments_ = segments;
        workload_pattern_ = std::move(pattern);
    }

    /**
     * Splice a pre-rendered JSON member (`"key": <value>`) into the
     * report, after the fixed fields and before "shards". The value
     * must be valid JSON; RunMeta does not re-validate it.
     */
    void addSection(std::string key, std::string json_value)
    {
        section_keys_.push_back(std::move(key));
        section_values_.push_back(std::move(json_value));
    }

    unsigned threads() const { return threads_; }

    /** Total recorded shard time (serial-equivalent work) [ms]. */
    double shardTotalMs() const
    {
        double total = 0.0;
        for (double ms : wall_ms_)
            total += ms;
        return total;
    }

    /**
     * Write BENCH_<name>.json (or an explicit path): bench name,
     * thread count, total wall-clock, pool counters, supervision
     * tallies (when attached), and one entry per shard. The JSON is
     * composed in memory and published with writeFileAtomic, so a
     * crash mid-write never leaves a truncated report behind.
     * Returns the path written, or "" on failure.
     */
    std::string writeJson(double total_wall_ms,
                          const std::string &path = "") const
    {
        std::string out_path =
            path.empty() ? "BENCH_" + name_ + ".json" : path;
        char buf[192];
        std::string json = "{\n  \"bench\": \"" + name_ + "\",\n";
        std::snprintf(buf, sizeof(buf), "  \"threads\": %u,\n",
                      threads_);
        json += buf;
        json += "  \"pinning\": \"" + pinning_ +
            "\",\n  \"workers_per_node\": [";
        for (size_t i = 0; i < workers_per_node_.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%s%u", i ? ", " : "",
                          workers_per_node_[i]);
            json += buf;
        }
        std::snprintf(buf, sizeof(buf),
                      "],\n  \"total_wall_ms\": %.3f,\n"
                      "  \"shard_total_ms\": %.3f,\n"
                      "  \"tasks_run\": %llu,\n  \"steals\": %llu,\n",
                      total_wall_ms, shardTotalMs(),
                      static_cast<unsigned long long>(tasks_run_),
                      static_cast<unsigned long long>(steals_));
        json += buf;
        if (!workload_topology_.empty()) {
            std::snprintf(buf, sizeof(buf),
                          "  \"topology\": \"%s\",\n"
                          "  \"segments\": %llu,\n"
                          "  \"pattern\": \"%s\",\n",
                          workload_topology_.c_str(),
                          static_cast<unsigned long long>(
                              workload_segments_),
                          workload_pattern_.c_str());
            json += buf;
        }
        if (supervisor_.enabled) {
            std::snprintf(buf, sizeof(buf),
                          "  \"supervisor\": {\"ok\": %zu, "
                          "\"retried\": %zu, \"timed_out\": %zu, "
                          "\"quarantined\": %zu, \"max_retries\": %u, "
                          "\"deadline_ms\": %.3f},\n",
                          supervisor_.ok, supervisor_.retried,
                          supervisor_.timed_out,
                          supervisor_.quarantined,
                          supervisor_.max_retries,
                          supervisor_.deadline_ms);
            json += buf;
        }
        for (size_t i = 0; i < section_keys_.size(); ++i)
            json += "  \"" + section_keys_[i] +
                "\": " + section_values_[i] + ",\n";
        json += "  \"shards\": [\n";
        for (size_t i = 0; i < labels_.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "\"wall_ms\": %.3f}%s\n",
                          wall_ms_[i],
                          i + 1 < labels_.size() ? "," : "");
            json += "    {\"label\": \"" + labels_[i] + "\", ";
            json += buf;
        }
        json += "  ]\n}\n";
        Status written = writeFileAtomic(out_path, json);
        if (!written.ok()) {
            std::fprintf(stderr, "RunMeta: cannot write %s (%s)\n",
                         out_path.c_str(),
                         written.error().message.c_str());
            return "";
        }
        return out_path;
    }

    /** One-line human summary of the scaling evidence. */
    void printSummary(double total_wall_ms) const
    {
        std::printf("[exec] threads=%u pinning=%s shards=%zu "
                    "wall=%.1f ms (shard total %.1f ms, tasks=%llu, "
                    "steals=%llu)\n",
                    threads_, pinning_.c_str(), labels_.size(),
                    total_wall_ms, shardTotalMs(),
                    static_cast<unsigned long long>(tasks_run_),
                    static_cast<unsigned long long>(steals_));
        if (!workers_per_node_.empty()) {
            std::printf("[exec] pinned workers per node:");
            for (size_t i = 0; i < workers_per_node_.size(); ++i)
                std::printf(" node%zu=%u", i, workers_per_node_[i]);
            std::printf("\n");
        }
    }

  private:
    std::string name_;
    unsigned threads_;
    std::string pinning_ = "none";
    std::vector<unsigned> workers_per_node_;
    std::vector<std::string> labels_;
    std::vector<double> wall_ms_;
    uint64_t tasks_run_ = 0;
    uint64_t steals_ = 0;
    SupervisorSummary supervisor_;
    std::string workload_topology_;
    uint64_t workload_segments_ = 0;
    std::string workload_pattern_;
    std::vector<std::string> section_keys_;
    std::vector<std::string> section_values_;
};

/**
 * Worker-placement policy from `--pinning=none|compact|scatter`,
 * falling back to the NANOBUS_PINNING environment variable (and
 * ultimately to none) when the flag is absent. An unrecognized flag
 * value is a usage error: print it and exit(2) rather than silently
 * benchmarking an unintended placement.
 */
inline exec::PinPolicy
pinPolicyFromFlags(const Flags &flags)
{
    std::string value = flags.get("pinning", "");
    if (value.empty())
        return exec::pinPolicyFromEnv();
    if (auto policy = exec::parsePinPolicy(value))
        return *policy;
    std::fprintf(stderr,
                 "--pinning=%s: expected none, compact, or scatter\n",
                 value.c_str());
    std::exit(2);
}

/**
 * Thermal integrator from `--solver=rk4|be|backward-euler|cn|
 * trapezoidal`, defaulting to the caller's choice when the flag is
 * absent (the figure benches default to the paper-faithful RK4
 * oracle; docs/THERMAL.md has the selection guidance). An
 * unrecognized value is a usage error: print it and exit(2) rather
 * than silently benchmarking the wrong integrator.
 */
inline ThermalSolver
thermalSolverFromFlags(const Flags &flags, ThermalSolver fallback)
{
    std::string value = flags.get("solver", "");
    if (value.empty())
        return fallback;
    if (auto solver = parseThermalSolver(value))
        return *solver;
    std::fprintf(stderr,
                 "--solver=%s: expected rk4, be/backward-euler, or "
                 "cn/trapezoidal\n",
                 value.c_str());
    std::exit(2);
}

/** Print a horizontal rule sized to `width` characters. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench banner with the paper artifact being reproduced. */
inline void
banner(const char *artifact, const char *description)
{
    rule(72);
    std::printf("nanobus reproduction | %s\n%s\n", artifact,
                description);
    rule(72);
}

} // namespace bench
} // namespace nanobus

#endif // NANOBUS_BENCH_BENCH_COMMON_HH
