/**
 * @file
 * Shared helpers for the reproduction bench binaries: tiny flag
 * parser and fixed-width table printing.
 */

#ifndef NANOBUS_BENCH_BENCH_COMMON_HH
#define NANOBUS_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace nanobus {
namespace bench {

/** Minimal `--key=value` / `--flag` command-line parser. */
class Flags
{
  public:
    Flags(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    /** Value of --key=..., or fallback. */
    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        std::string prefix = "--" + key + "=";
        for (const auto &arg : args_) {
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
        }
        return fallback;
    }

    /** Integer value of --key=..., or fallback. */
    uint64_t
    getU64(const std::string &key, uint64_t fallback) const
    {
        std::string v = get(key, "");
        return v.empty() ? fallback : std::strtoull(v.c_str(),
                                                    nullptr, 10);
    }

    /** Presence of a bare --flag. */
    bool
    has(const std::string &key) const
    {
        std::string flag = "--" + key;
        for (const auto &arg : args_)
            if (arg == flag)
                return true;
        return false;
    }

  private:
    std::vector<std::string> args_;
};

/** Print a horizontal rule sized to `width` characters. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench banner with the paper artifact being reproduced. */
inline void
banner(const char *artifact, const char *description)
{
    rule(72);
    std::printf("nanobus reproduction | %s\n%s\n", artifact,
                description);
    rule(72);
}

} // namespace bench
} // namespace nanobus

#endif // NANOBUS_BENCH_BENCH_COMMON_HH
