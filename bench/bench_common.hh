/**
 * @file
 * Shared helpers for the reproduction bench binaries: tiny flag
 * parser, fixed-width table printing, and the shard-timing report
 * every parallel driver serializes to BENCH_<name>.json so the
 * scaling trajectory (threads vs per-shard wall-clock) is captured
 * run over run.
 */

#ifndef NANOBUS_BENCH_BENCH_COMMON_HH
#define NANOBUS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/stats.hh"
#include "exec/topology.hh"

namespace nanobus {
namespace bench {

/** Minimal `--key=value` / `--flag` command-line parser. */
class Flags
{
  public:
    Flags(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    /** Value of --key=..., or fallback. */
    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        std::string prefix = "--" + key + "=";
        for (const auto &arg : args_) {
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
        }
        return fallback;
    }

    /** Integer value of --key=..., or fallback. */
    uint64_t
    getU64(const std::string &key, uint64_t fallback) const
    {
        std::string v = get(key, "");
        return v.empty() ? fallback : std::strtoull(v.c_str(),
                                                    nullptr, 10);
    }

    /** Presence of a bare --flag. */
    bool
    has(const std::string &key) const
    {
        std::string flag = "--" + key;
        for (const auto &arg : args_)
            if (arg == flag)
                return true;
        return false;
    }

  private:
    std::vector<std::string> args_;
};

/** Steady-clock stopwatch for shard and batch wall time. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction (or the last restart). */
    double ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Per-shard wall-clock report of one bench run. Shards are added in
 * a deterministic order after the parallel region drains (each
 * worker records into its own slot); writeJson emits the machine-
 * readable scaling record next to the figure's CSV.
 */
class RunMeta
{
  public:
    RunMeta(std::string bench_name, unsigned threads)
        : name_(std::move(bench_name)), threads_(threads)
    {
    }

    /** Record one shard's wall time [ms]. */
    void addShard(std::string label, double wall_ms)
    {
        labels_.push_back(std::move(label));
        wall_ms_.push_back(wall_ms);
    }

    /** Attach pool counters observed over the whole run. */
    void setCounters(const exec::ExecCounters &counters)
    {
        tasks_run_ = counters.tasks_run;
        steals_ = counters.steals;
    }

    /**
     * Attach the pool's worker-placement outcome: the policy name
     * ("none"/"compact"/"scatter") and the pinned-worker count per
     * NUMA node. An empty count vector means nothing was pinned
     * (policy none, single-node host, or unsupported platform).
     */
    void setPlacement(const char *pinning,
                      std::vector<unsigned> workers_per_node)
    {
        pinning_ = pinning;
        workers_per_node_ = std::move(workers_per_node);
    }

    unsigned threads() const { return threads_; }

    /** Total recorded shard time (serial-equivalent work) [ms]. */
    double shardTotalMs() const
    {
        double total = 0.0;
        for (double ms : wall_ms_)
            total += ms;
        return total;
    }

    /**
     * Write BENCH_<name>.json (or an explicit path): bench name,
     * thread count, total wall-clock, pool counters, and one entry
     * per shard. Returns the path written, or "" on failure.
     */
    std::string writeJson(double total_wall_ms,
                          const std::string &path = "") const
    {
        std::string out_path =
            path.empty() ? "BENCH_" + name_ + ".json" : path;
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "RunMeta: cannot write %s\n",
                         out_path.c_str());
            return "";
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"%s\",\n  \"threads\": %u,\n"
                     "  \"pinning\": \"%s\",\n"
                     "  \"workers_per_node\": [",
                     name_.c_str(), threads_, pinning_.c_str());
        for (size_t i = 0; i < workers_per_node_.size(); ++i)
            std::fprintf(f, "%s%u", i ? ", " : "",
                         workers_per_node_[i]);
        std::fprintf(f,
                     "],\n  \"total_wall_ms\": %.3f,\n"
                     "  \"shard_total_ms\": %.3f,\n"
                     "  \"tasks_run\": %llu,\n  \"steals\": %llu,\n"
                     "  \"shards\": [\n",
                     total_wall_ms, shardTotalMs(),
                     static_cast<unsigned long long>(tasks_run_),
                     static_cast<unsigned long long>(steals_));
        for (size_t i = 0; i < labels_.size(); ++i) {
            std::fprintf(f,
                         "    {\"label\": \"%s\", "
                         "\"wall_ms\": %.3f}%s\n",
                         labels_[i].c_str(), wall_ms_[i],
                         i + 1 < labels_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        return out_path;
    }

    /** One-line human summary of the scaling evidence. */
    void printSummary(double total_wall_ms) const
    {
        std::printf("[exec] threads=%u pinning=%s shards=%zu "
                    "wall=%.1f ms (shard total %.1f ms, tasks=%llu, "
                    "steals=%llu)\n",
                    threads_, pinning_.c_str(), labels_.size(),
                    total_wall_ms, shardTotalMs(),
                    static_cast<unsigned long long>(tasks_run_),
                    static_cast<unsigned long long>(steals_));
        if (!workers_per_node_.empty()) {
            std::printf("[exec] pinned workers per node:");
            for (size_t i = 0; i < workers_per_node_.size(); ++i)
                std::printf(" node%zu=%u", i, workers_per_node_[i]);
            std::printf("\n");
        }
    }

  private:
    std::string name_;
    unsigned threads_;
    std::string pinning_ = "none";
    std::vector<unsigned> workers_per_node_;
    std::vector<std::string> labels_;
    std::vector<double> wall_ms_;
    uint64_t tasks_run_ = 0;
    uint64_t steals_ = 0;
};

/**
 * Worker-placement policy from `--pinning=none|compact|scatter`,
 * falling back to the NANOBUS_PINNING environment variable (and
 * ultimately to none) when the flag is absent. An unrecognized flag
 * value is a usage error: print it and exit(2) rather than silently
 * benchmarking an unintended placement.
 */
inline exec::PinPolicy
pinPolicyFromFlags(const Flags &flags)
{
    std::string value = flags.get("pinning", "");
    if (value.empty())
        return exec::pinPolicyFromEnv();
    if (auto policy = exec::parsePinPolicy(value))
        return *policy;
    std::fprintf(stderr,
                 "--pinning=%s: expected none, compact, or scatter\n",
                 value.c_str());
    std::exit(2);
}

/** Print a horizontal rule sized to `width` characters. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench banner with the paper artifact being reproduced. */
inline void
banner(const char *artifact, const char *description)
{
    rule(72);
    std::printf("nanobus reproduction | %s\n%s\n", artifact,
                description);
    rule(72);
}

} // namespace bench
} // namespace nanobus

#endif // NANOBUS_BENCH_BENCH_COMMON_HH
