/**
 * @file
 * Reproduces Fig 3: total energy dissipated in 32-bit instruction
 * and data address buses for unencoded, bus-invert, odd/even
 * bus-invert, and coupling-driven bus-invert transmission, at each
 * ITRS node, split into Self / NN (nearest-neighbor coupling) /
 * All (all coupling pairs) accounting.
 *
 * The paper runs 20M instructions per benchmark; the default here is
 * scaled down (--cycles to override; --cycles=20000000 matches the
 * paper). Energies are summed over the paper's eight SPEC CPU2000
 * benchmark profiles.
 *
 * The (node x scheme x benchmark) grid is embarrassingly parallel:
 * every cell owns its simulators, so the cells are sharded across
 * the exec ThreadPool (--threads, default NANOBUS_THREADS or the
 * hardware concurrency) with each shard writing a disjoint slot —
 * the printed grid is bit-identical at any thread count.
 *
 * Paper claims to check: BI reduces self energy the most; encodings
 * help data buses, not instruction buses; OEBI/CBI are no better
 * than BI on real address streams; accounting for non-adjacent
 * coupling makes the coupling-oriented schemes look slightly worse.
 */

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "util/csv.hh"

using namespace nanobus;

namespace {

/** Energies for one (node, scheme): [bus 0=IA/1=DA][mode]. */
struct GridCell
{
    double energy[2][3] = {{0, 0, 0}, {0, 0, 0}};
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 200000);
    const uint64_t seed = flags.getU64("seed", 1);
    std::string csv_path = flags.get("csv", "");
    std::string json_path = flags.get("json", "");
    const bool want_json = flags.has("json") || !json_path.empty();

    const bench::ExecFlags exec_flags = bench::ExecFlags::parse(flags);
    exec::ThreadPool pool(exec_flags.threads, exec_flags.pinning);

    bench::banner("Figure 3 (HPCA-11 2005)",
                  "Total energy in 32-bit address buses: schemes x "
                  "nodes x coupling accounting");
    std::printf("Cycles per benchmark: %llu (paper: 20M "
                "instructions); 8 SPEC profiles summed; "
                "%u thread(s)\n\n",
                static_cast<unsigned long long>(cycles),
                pool.size());

    const char *mode_names[3] = {"Self", "NN", "All"};

    bench::WallTimer run_timer;
    bench::RunMeta meta("fig3_encoding_energy", pool.size());
    const exec::ExecCounters counters_before = pool.counters();

    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);

        // One simulation per (scheme, benchmark, radius). The Self
        // component is radius-independent, so it is read from the
        // NN run. Each (scheme, benchmark) cell is one shard with a
        // disjoint result slot.
        const auto &schemes = paperSchemes();
        const auto &benchmarks = allBenchmarkNames();
        const size_t n_cells = schemes.size() * benchmarks.size();
        std::vector<EnergyCell> nn_cells(n_cells);
        std::vector<EnergyCell> all_cells(n_cells);
        std::vector<double> cell_ms(n_cells, 0.0);

        exec::parallelFor(
            pool, n_cells,
            [&](size_t begin, size_t end) {
                for (size_t task = begin; task < end; ++task) {
                    bench::WallTimer shard;
                    size_t s = task / benchmarks.size();
                    size_t b = task % benchmarks.size();
                    nn_cells[task] = runEnergyStudy(
                        benchmarks[b], tech, schemes[s], 1, cycles,
                        seed, &pool);
                    all_cells[task] = runEnergyStudy(
                        benchmarks[b], tech, schemes[s], 31, cycles,
                        seed, &pool);
                    cell_ms[task] = shard.ms();
                }
            },
            1);

        for (size_t s = 0; s < schemes.size(); ++s)
            for (size_t b = 0; b < benchmarks.size(); ++b) {
                size_t task = s * benchmarks.size() + b;
                meta.addShard(tech.name + "/" +
                                  schemeName(schemes[s]) + "/" +
                                  benchmarks[b],
                              cell_ms[task]);
            }

        std::map<EncodingScheme, GridCell> grid;
        for (size_t s = 0; s < schemes.size(); ++s) {
            GridCell &cell = grid[schemes[s]];
            for (size_t b = 0; b < benchmarks.size(); ++b) {
                size_t task = s * benchmarks.size() + b;
                const EnergyCell &nn = nn_cells[task];
                const EnergyCell &all = all_cells[task];
                cell.energy[0][0] += nn.instruction.self.raw();
                cell.energy[0][1] += nn.instruction.total().raw();
                cell.energy[0][2] +=
                    all.instruction.total().raw();
                cell.energy[1][0] += nn.data.self.raw();
                cell.energy[1][1] += nn.data.total().raw();
                cell.energy[1][2] += all.data.total().raw();
            }
        }

        std::printf("=== %s ===\n", tech.name.c_str());
        std::printf("%-4s %-5s | %13s %13s %13s %13s\n", "Bus",
                    "Mode", "BI (J)", "OEBI (J)", "CBI (J)",
                    "Unenc (J)");
        bench::rule(76);
        for (int bus = 0; bus < 2; ++bus) {
            for (int mode = 0; mode < 3; ++mode) {
                std::printf("%-4s %-5s |", bus == 0 ? "IA" : "DA",
                            mode_names[mode]);
                for (EncodingScheme scheme : paperSchemes())
                    std::printf(" %13.6e",
                                grid[scheme].energy[bus][mode]);
                std::printf("\n");
            }
        }
        std::printf("\n");

        if (!csv_path.empty()) {
            static std::unique_ptr<CsvWriter> csv;
            if (!csv) {
                csv = std::make_unique<CsvWriter>(csv_path);
                csv->header({"node", "bus", "mode", "scheme",
                             "energy_j", "threads"});
            }
            for (int bus = 0; bus < 2; ++bus)
                for (int mode = 0; mode < 3; ++mode)
                    for (EncodingScheme scheme : paperSchemes())
                        csv->row({tech.name, bus == 0 ? "IA" : "DA",
                                  mode_names[mode],
                                  schemeName(scheme),
                                  std::to_string(
                                      grid[scheme]
                                          .energy[bus][mode]),
                                  std::to_string(pool.size())});
            csv->flush();
        }
    }

    meta.setCounters(pool.counters() - counters_before);
    meta.setPlacement(exec::pinPolicyName(pool.pinning()),
                      pool.workersPerNode());
    meta.printSummary(run_timer.ms());
    if (want_json) {
        std::string written = meta.writeJson(run_timer.ms(),
                                             json_path);
        if (!written.empty())
            std::printf("Shard timing JSON written to %s\n",
                        written.c_str());
    }

    std::printf("Paper observations to compare against:\n"
                " - BI gives the largest self-energy reduction, "
                "mostly on DA buses;\n"
                " - IA buses gain nothing from encoding (low Hamming "
                "distance between fetches);\n"
                " - OEBI/CBI degenerate to (worse) BI on real "
                "address streams — the coupling-\n"
                "   aware decisions buy nothing (paper: CBI could "
                "even exceed unencoded);\n"
                " - All-pair accounting raises coupling energy for "
                "every scheme.\n");
    if (!csv_path.empty())
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
