/**
 * @file
 * Design ablation (DESIGN.md AB1): how far do coupling terms need to
 * reach? Sweeps the energy model's neighbor radius from 0 (self
 * only) to all pairs and reports total bus energy for real address
 * traffic plus the per-transition evaluation cost, quantifying the
 * accuracy/cost trade the paper's "All" mode buys.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 200000);
    const char *bench_name = "eon";

    bench::banner("Ablation AB1 (DESIGN.md)",
                  "Coupling radius vs captured energy and evaluation "
                  "cost");
    std::printf("Benchmark: %s, %llu cycles, 130 nm, unencoded\n\n",
                bench_name,
                static_cast<unsigned long long>(cycles));

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);

    // Reference: all pairs.
    EnergyCell ref = runEnergyStudy(bench_name, tech,
                                    EncodingScheme::Unencoded, 31,
                                    cycles);
    double ref_total =
        (ref.instruction.total() + ref.data.total()).raw();

    std::printf("%-8s %14s %12s %14s\n", "Radius", "energy (J)",
                "captured", "runtime (ms)");
    bench::rule(56);
    for (unsigned radius : {0u, 1u, 2u, 3u, 4u, 8u, 31u}) {
        auto start = std::chrono::steady_clock::now();
        EnergyCell cell = runEnergyStudy(bench_name, tech,
                                         EncodingScheme::Unencoded,
                                         radius, cycles);
        auto stop = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(
            stop - start).count();
        double total =
            (cell.instruction.total() + cell.data.total()).raw();
        std::printf("%-8u %14.6e %11.2f%% %14.2f\n", radius, total,
                    100.0 * total / ref_total, ms);
    }

    std::printf("\n[check] radius 1 (the prior-work NN model) "
                "misses several percent of the energy;\n"
                "        radius 3-4 captures virtually all of it — "
                "consistent with Fig 1(b)'s\n"
                "        CC2+CC3-dominated non-adjacent share.\n");
    return 0;
}
