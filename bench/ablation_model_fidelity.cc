/**
 * @file
 * Model-fidelity ablation (the paper's Secs 1-2 argument made
 * quantitative): compare three thermal modeling approaches on the
 * same workload —
 *
 *   A. worst-case current ([5, 6]): every wire at j_max forever;
 *   B. whole-bus energy + uniform per-wire split ([16, 17] + [8]):
 *      correct totals, no per-line attribution;
 *   C. nanobus per-line model (the paper's contribution).
 *
 * Reports steady-state per-wire temperatures, the hottest wire, the
 * wire-to-wire spread, and the hottest wire's electromigration MTTF
 * factor under each model. Claims: A grossly over-predicts
 * temperature and under-predicts lifetime (over-margining, higher
 * packaging cost); B predicts the average but misses the spread; C
 * resolves both.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "energy/baselines.hh"
#include "fabric/bus_sim.hh"
#include "thermal/network.hh"
#include "thermal/reliability.hh"
#include "trace/batch.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

namespace {

struct ModelResult
{
    double avg = 0.0;
    double hottest = 0.0;
    double spread = 0.0;
    double mttf = 0.0;
    double j_hot = 0.0;
};

ModelResult
evaluate(const TechnologyNode &tech,
         const std::vector<double> &powers,
         const std::vector<double> &energies, double duration,
         double length)
{
    ThermalConfig config;
    config.stack_mode = StackMode::None; // isolate switching heat
    ThermalNetwork net(tech, static_cast<unsigned>(powers.size()),
                       config);
    std::vector<double> temps = net.steadyState(powers);

    ModelResult out;
    double lo = 1e300;
    unsigned hot_wire = 0;
    for (unsigned i = 0; i < temps.size(); ++i) {
        out.avg += temps[i] / static_cast<double>(temps.size());
        if (temps[i] > out.hottest) {
            out.hottest = temps[i];
            hot_wire = i;
        }
        lo = std::min(lo, temps[i]);
    }
    out.spread = out.hottest - lo;

    ReliabilityModel reliability(tech);
    const AmpsPerSquareMeter j_hot = reliability.currentDensity(
        Joules{energies[hot_wire]}, Seconds{duration},
        Meters{length});
    out.j_hot = j_hot.raw();
    out.mttf = reliability.mttfFactor(Kelvin{out.hottest}, j_hot);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 1000000);
    const double length = 0.010;

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    const unsigned width = 32;
    // Raw seconds: feeds the bulk per-line power/energy buffers.
    const double duration =
        (static_cast<double>(cycles) / tech.f_clk).raw();

    bench::banner("Ablation: model fidelity (paper Secs 1-2)",
                  "Worst-case vs whole-bus vs per-line thermal "
                  "modeling on real traffic");
    std::printf("Workload: eon DA stream, %llu cycles, 130 nm, "
                "switching heat only\n\n",
                static_cast<unsigned long long>(cycles));

    // Ground truth per-line energies from the paper's model.
    CapacitanceMatrix caps =
        CapacitanceMatrix::analytical(tech, width);
    BusEnergyModel::Config energy_config;
    BusEnergyModel per_line(tech, caps, energy_config);
    WholeBusEnergyModel whole(tech, caps, energy_config);

    SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
    double whole_total = 0.0;
    uint64_t transmissions = 0;
    uint64_t last_word = 0;
    forEachBatch(cpu, [&](const RecordBatch &batch) {
        for (const TraceRecord &r : batch) {
            if (r.kind == AccessKind::InstructionFetch)
                continue;
            per_line.step(r.address);
            whole_total +=
                whole.transitionEnergy(last_word, r.address).raw();
            last_word = r.address;
            ++transmissions;
        }
    });
    const std::vector<double> &line_energy =
        per_line.accumulatedLineEnergy();

    // Model C: true per-line powers.
    std::vector<double> powers_c(width);
    for (unsigned i = 0; i < width; ++i)
        powers_c[i] = line_energy[i] / (duration * length);

    // Model B: whole-bus total split uniformly.
    std::vector<double> powers_b(
        width, whole_total / (duration * length *
                              static_cast<double>(width)));
    std::vector<double> energy_b(
        width, whole_total / static_cast<double>(width));

    // Model A: every wire at j_max.
    std::vector<double> powers_a = worstCaseCurrentPowers(tech,
                                                          width);
    std::vector<double> energy_a(width);
    for (unsigned i = 0; i < width; ++i)
        energy_a[i] = powers_a[i] * duration * length;

    ModelResult a = evaluate(tech, powers_a, energy_a, duration,
                             length);
    ModelResult b = evaluate(tech, powers_b, energy_b, duration,
                             length);
    ModelResult c = evaluate(tech, powers_c, line_energy, duration,
                             length);

    std::printf("%-34s %10s %10s %9s %10s\n", "Model", "avg T (K)",
                "hot T (K)", "spread", "MTTF fac");
    bench::rule(78);
    auto print = [](const char *name, const ModelResult &m) {
        std::printf("%-34s %10.3f %10.3f %9.4f %10.3g\n", name,
                    m.avg, m.hottest, m.spread, m.mttf);
    };
    print("A worst-case jmax [5,6]", a);
    print("B whole-bus + uniform split [16,8]", b);
    print("C per-line (this paper)", c);

    std::printf("\n[check] A over-predicts the rise by ~%.0fx and "
                "under-predicts lifetime (margin\n"
                "        => packaging cost); B nails the average "
                "but reports zero wire-to-wire\n"
                "        spread (%.4f K vs the true %.4f K); C "
                "resolves the hot wire the other\n"
                "        models cannot see.\n",
                (a.hottest - 318.15) /
                    std::max(1e-9, c.hottest - 318.15),
                b.spread, c.spread);
    return 0;
}
