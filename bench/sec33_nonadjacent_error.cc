/**
 * @file
 * Reproduces the Sec 3.3 analysis: energy underestimation for the
 * middle wire of a 32-bit bus when non-adjacent coupling
 * capacitances are neglected, plus the 5-wire arrow-pattern study
 * (^^v^^ thermal worst case vs v^v^v total-energy worst case).
 *
 * Paper claims: up to 6.6% underestimate for the middle wire at
 * 130 nm; the error stays roughly constant with scaling.
 */

#include <cstdio>
#include <numeric>
#include <string>

#include "bench_common.hh"
#include "energy/bus_energy.hh"
#include "util/bitops.hh"

using namespace nanobus;

namespace {

std::pair<uint64_t, uint64_t>
arrowPattern(const std::string &arrows)
{
    uint64_t prev = 0, next = 0;
    for (size_t i = 0; i < arrows.size(); ++i) {
        if (arrows[i] == '^')
            next |= 1ull << i;
        else
            prev |= 1ull << i;
    }
    return {prev, next};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const unsigned width = 32;
    const unsigned middle = width / 2;

    bench::banner("Section 3.3 (HPCA-11 2005)",
                  "Middle-wire energy underestimate when "
                  "non-adjacent coupling is neglected");

    std::printf("%-8s %16s %16s %14s\n", "Node", "E_mid NN (pJ)",
                "E_mid All (pJ)", "underest. (%)");
    bench::rule(60);
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        CapacitanceMatrix caps =
            CapacitanceMatrix::analytical(tech, width);

        BusEnergyModel::Config config;
        config.coupling_radius = 1;
        BusEnergyModel nn(tech, caps, config);
        config.coupling_radius = width - 1;
        BusEnergyModel all(tech, caps, config);

        // Worst case for the middle wire: it falls while every other
        // wire rises (the 32-bit generalization of ^^v^^).
        uint64_t prev = 1ull << middle;
        uint64_t next = ~prev & lowMask(width);
        double e_nn = nn.transitionEnergy(prev, next)[middle];
        double e_all = all.transitionEnergy(prev, next)[middle];
        std::printf("%-8s %16.4f %16.4f %14.2f\n", tech.name.c_str(),
                    e_nn * 1e12, e_all * 1e12,
                    100.0 * (e_all - e_nn) / e_all);
    }
    std::printf("\nPaper: underestimated by up to 6.6%% at 130 nm; "
                "error roughly constant across nodes.\n\n");

    // 5-wire arrow-pattern study.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusEnergyModel model(
        tech, CapacitanceMatrix::analytical(tech, 5),
        BusEnergyModel::Config());

    std::printf("5-wire pattern study at 130 nm (per-line energy, "
                "pJ):\n");
    std::printf("%-8s %8s %8s %8s %8s %8s %10s\n", "Pattern", "w0",
                "w1", "w2", "w3", "w4", "total");
    bench::rule(64);
    for (const char *pattern : {"^^v^^", "v^v^v"}) {
        auto [prev, next] = arrowPattern(pattern);
        const auto &e = model.transitionEnergy(prev, next);
        double total = std::accumulate(e.begin(), e.end(), 0.0);
        std::printf("%-8s", pattern);
        for (double v : e)
            std::printf(" %8.4f", v * 1e12);
        std::printf(" %10.4f\n", total * 1e12);
    }
    std::printf("\nPaper: ^^v^^ concentrates energy in the centre "
                "line (relative thermal worst case);\n"
                "v^v^v maximizes total energy but spreads it "
                "uniformly.\n");
    return 0;
}
