/**
 * @file
 * Stress-pattern study: bounds the energy/thermal envelope of a
 * 32-bit bus with the deterministic worst-case patterns Sec 3.3
 * reasons about, and contrasts them with the uniform-random traffic
 * prior encoding studies used and with a real (synthetic SPEC-like)
 * address stream — quantifying how misleading random traffic is as a
 * proxy for real workloads, which is one of the paper's core
 * arguments.
 *
 * Every pattern is an independent simulation, so the patterns are
 * sharded across the exec ThreadPool (--threads) and printed in a
 * fixed order afterwards — output is identical at any thread count.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "fabric/bus_sim.hh"
#include "trace/batch.hh"
#include "trace/patterns.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

namespace {

struct RunResult
{
    double energy = 0.0;
    double per_cycle = 0.0;
    double max_temp = 0.0;
};

RunResult
runSource(const TechnologyNode &tech, TraceSource &source,
          uint64_t cycles)
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 10000;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None; // isolate switching
    BusSimulator sim(tech, config);

    uint64_t last = 0;
    forEachBatch(source, [&](const RecordBatch &batch) {
        for (const TraceRecord &r : batch) {
            if (r.kind == AccessKind::InstructionFetch)
                continue;
            sim.transmit(r.cycle, r.address);
            last = r.cycle;
        }
    });
    sim.advanceTo(last);

    RunResult out;
    out.energy = sim.totalEnergy().total().raw();
    out.per_cycle = out.energy / static_cast<double>(cycles);
    out.max_temp = sim.thermalNetwork().maxTemperature().raw();
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 300000);
    std::string json_path = flags.get("json", "");
    const bool want_json = flags.has("json") || !json_path.empty();

    const bench::ExecFlags exec_flags = bench::ExecFlags::parse(flags);
    exec::ThreadPool pool(exec_flags.threads, exec_flags.pinning);

    bench::banner("Stress patterns (Sec 3.3 extension)",
                  "Worst-case vs random vs real traffic on a 32-bit "
                  "bus at 130 nm");
    std::printf("%llu cycles per pattern; thermal rise from "
                "switching only (no Eq 7 offset); %u thread(s)\n\n",
                static_cast<unsigned long long>(cycles),
                pool.size());

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);

    // Shard list: every stress pattern plus the real address stream.
    const auto &patterns = allStressPatterns();
    const size_t n_shards = patterns.size() + 1;
    std::vector<RunResult> results(n_shards);
    std::vector<double> shard_ms(n_shards, 0.0);

    bench::WallTimer run_timer;
    bench::RunMeta meta("stress_patterns", pool.size());
    const exec::ExecCounters counters_before = pool.counters();

    exec::parallelFor(
        pool, n_shards,
        [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                bench::WallTimer shard;
                if (i < patterns.size()) {
                    PatternTraceSource source(patterns[i], 32,
                                              cycles);
                    results[i] = runSource(tech, source, cycles);
                } else {
                    // Real traffic: the data-address stream of a
                    // SPEC-like profile.
                    SyntheticCpu cpu(benchmarkProfile("eon"), 1,
                                     cycles);
                    results[i] = runSource(tech, cpu, cycles);
                }
                shard_ms[i] = shard.ms();
            }
        },
        1);

    std::printf("%-18s %14s %14s %12s\n", "Traffic",
                "energy (J)", "pJ/cycle", "max temp (K)");
    bench::rule(64);
    for (size_t i = 0; i < n_shards; ++i) {
        const char *label = i < patterns.size()
            ? stressPatternName(patterns[i])
            : "eon DA stream";
        const RunResult &r = results[i];
        std::printf("%-18s %14.5e %14.4f %12.3f\n", label, r.energy,
                    r.per_cycle * 1e12, r.max_temp);
        meta.addShard(label, shard_ms[i]);
    }

    meta.setCounters(pool.counters() - counters_before);
    meta.setPlacement(exec::pinPolicyName(pool.pinning()),
                      pool.workersPerNode());
    std::printf("\n");
    meta.printSummary(run_timer.ms());
    if (want_json) {
        std::string written = meta.writeJson(run_timer.ms(),
                                             json_path);
        if (!written.empty())
            std::printf("Shard timing JSON written to %s\n",
                        written.c_str());
    }

    std::printf("\n[check] alternating-all bounds the envelope; "
                "random traffic dissipates several\n"
                "        times more than a real address stream — "
                "the paper's argument for evaluating\n"
                "        encodings on real traces rather than "
                "random patterns.\n");
    return 0;
}
