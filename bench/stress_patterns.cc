/**
 * @file
 * Stress-pattern study: bounds the energy/thermal envelope of a
 * 32-bit bus with the deterministic worst-case patterns Sec 3.3
 * reasons about, and contrasts them with the uniform-random traffic
 * prior encoding studies used and with a real (synthetic SPEC-like)
 * address stream — quantifying how misleading random traffic is as a
 * proxy for real workloads, which is one of the paper's core
 * arguments.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/bus_sim.hh"
#include "trace/patterns.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

namespace {

struct RunResult
{
    double energy = 0.0;
    double per_cycle = 0.0;
    double max_temp = 0.0;
};

RunResult
runSource(const TechnologyNode &tech, TraceSource &source,
          uint64_t cycles)
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 10000;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None; // isolate switching
    BusSimulator sim(tech, config);

    TraceRecord r;
    uint64_t last = 0;
    while (source.next(r)) {
        if (r.kind == AccessKind::InstructionFetch)
            continue;
        sim.transmit(r.cycle, r.address);
        last = r.cycle;
    }
    sim.advanceTo(last);

    RunResult out;
    out.energy = sim.totalEnergy().total().raw();
    out.per_cycle = out.energy / static_cast<double>(cycles);
    out.max_temp = sim.thermalNetwork().maxTemperature().raw();
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 300000);

    bench::banner("Stress patterns (Sec 3.3 extension)",
                  "Worst-case vs random vs real traffic on a 32-bit "
                  "bus at 130 nm");
    std::printf("%llu cycles per pattern; thermal rise from "
                "switching only (no Eq 7 offset)\n\n",
                static_cast<unsigned long long>(cycles));

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);

    std::printf("%-18s %14s %14s %12s\n", "Traffic",
                "energy (J)", "pJ/cycle", "max temp (K)");
    bench::rule(64);

    for (StressPattern pattern : allStressPatterns()) {
        PatternTraceSource source(pattern, 32, cycles);
        RunResult r = runSource(tech, source, cycles);
        std::printf("%-18s %14.5e %14.4f %12.3f\n",
                    stressPatternName(pattern), r.energy,
                    r.per_cycle * 1e12, r.max_temp);
    }

    // Real traffic: the data-address stream of a SPEC-like profile.
    SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
    RunResult real = runSource(tech, cpu, cycles);
    std::printf("%-18s %14.5e %14.4f %12.3f\n", "eon DA stream",
                real.energy, real.per_cycle * 1e12, real.max_temp);

    std::printf("\n[check] alternating-all bounds the envelope; "
                "random traffic dissipates several\n"
                "        times more than a real address stream — "
                "the paper's argument for evaluating\n"
                "        encodings on real traces rather than "
                "random patterns.\n");
    return 0;
}
