/**
 * @file
 * perf_thermal — scaling study of the structured thermal solver
 * (src/thermal over src/la): the width ladder 32 / 512 / 4096 /
 * 10000 wires stepped by each ThermalSolver, timing milliseconds
 * per simulated interval.
 *
 * Protocol (same discipline as perf_fabric / perf_pipeline): every
 * timing cell is gated on correctness pins run first —
 *
 *  1. steady-state equivalence: after ~10 stack time constants each
 *     solver (RK4 oracle, backward Euler, trapezoidal) must land on
 *     the direct banded solve of G θ = b within 1e-6 relative;
 *  2. transient equivalence: over one wire time constant (the Fig 4
 *     ramp shape at interval scale) the implicit trajectories must
 *     track the RK4 oracle within a small fraction of the rise.
 *
 * The timed ladder then runs; RK4 cells stop at --rk4-max-width
 * (the explicit step count is width-independent but the per-step
 * cost is not, and the point of the study is that the implicit
 * per-interval cost at 10k wires undercuts even the narrowest RK4
 * cell). The acceptance block gates exactly that claim: the widest
 * implicit cell must be faster per simulated interval than the
 * 32-wire RK4 oracle. Everything lands in BENCH_thermal.json
 * (tools/check_bench_thermal.py validates the schema).
 *
 * Flags: --intervals=N --interval-s=F --rk4-max-width=N
 *        --json=PATH --smoke (short ladder, few intervals)
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "tech/technology.hh"
#include "thermal/network.hh"
#include "util/logging.hh"

using namespace nanobus;

namespace {

constexpr double kAmbient = 318.15; // paper's 45 C substrate [K]

/** Dynamic-stack thermal config for one cell. The pins shrink the
 *  stack time constant so the RK4 oracle reaches steady state in a
 *  horizon it can afford. */
ThermalConfig
cellThermalConfig(ThermalSolver solver, double stack_tau_s,
                  unsigned implicit_steps)
{
    ThermalConfig config;
    config.ambient = Kelvin{kAmbient};
    config.stack_mode = StackMode::Dynamic;
    config.delta_theta = Kelvin{12.0};
    config.stack_time_constant = Seconds{stack_tau_s};
    config.solver = solver;
    config.implicit_steps = implicit_steps;
    return config;
}

/** Per-wire power [W/m] sized off the self resistance so the wire
 *  rise lands in the 10-18 K band whatever the node geometry. */
std::vector<double>
cellPower(const ThermalNetwork &net)
{
    const double r_self = net.wireParams().selfResistance().raw();
    std::vector<double> power(net.numWires());
    for (unsigned i = 0; i < net.numWires(); ++i)
        power[i] = (10.0 + 2.0 * static_cast<double>(i % 5)) / r_self;
    return power;
}

double
maxRelativeError(const std::vector<double> &probe,
                 const std::vector<double> &reference)
{
    double worst = 0.0;
    for (size_t i = 0; i < probe.size() && i < reference.size(); ++i)
        worst = std::max(worst,
                         std::fabs(probe[i] - reference[i]) /
                             std::fabs(reference[i]));
    return worst;
}

constexpr double kSteadyTolerance = 1e-6;   // relative, vs direct
constexpr double kTransientTolCn = 0.02;    // fraction of the rise
constexpr double kTransientTolBe = 0.15;

struct EquivalencePin
{
    double steady_rel_err_rk4 = 0.0;
    double steady_rel_err_be = 0.0;
    double steady_rel_err_cn = 0.0;
    double transient_rel_dev_be = 0.0;
    double transient_rel_dev_cn = 0.0;
    bool passed = false;
};

/**
 * Steady-state pin: integrate a 32-wire Dynamic-stack network to
 * ~10 stack time constants with each solver and compare against the
 * direct banded solve. The implicit methods are exactly
 * fixed-point-preserving, so 1e-6 relative is a conservative gate
 * even for the RK4 oracle.
 */
bool
pinSteadyState(const TechnologyNode &tech, EquivalencePin &pin)
{
    const double stack_tau = 1e-3;
    const unsigned width = 32;
    double *slots[] = {&pin.steady_rel_err_rk4, &pin.steady_rel_err_be,
                       &pin.steady_rel_err_cn};
    const ThermalSolver solvers[] = {ThermalSolver::Rk4,
                                     ThermalSolver::BackwardEuler,
                                     ThermalSolver::Trapezoidal};
    for (size_t s = 0; s < 3; ++s) {
        ThermalNetwork net(
            tech, width, cellThermalConfig(solvers[s], stack_tau, 8));
        const std::vector<double> power = cellPower(net);
        const std::vector<double> direct = net.steadyState(power);
        for (int k = 0; k < 64; ++k) // horizon = 16 stack tau
            net.advance(power, Seconds{stack_tau / 4.0});
        const double err =
            maxRelativeError(net.temperatures(), direct);
        *slots[s] = err;
        if (!(err <= kSteadyTolerance)) {
            std::fprintf(stderr,
                         "FAIL: %s steady state off the direct solve "
                         "by %.3e relative (gate %.1e)\n",
                         thermalSolverName(solvers[s]), err,
                         kSteadyTolerance);
            return false;
        }
    }
    std::printf("steady-state pin: rk4 %.2e, be %.2e, cn %.2e "
                "relative vs the direct banded solve (gate %.0e)\n",
                pin.steady_rel_err_rk4, pin.steady_rel_err_be,
                pin.steady_rel_err_cn, kSteadyTolerance);
    return true;
}

/**
 * Transient pin: one wire time constant of ramp (the steep part of
 * the Fig 4 shape), implicit trajectories vs the RK4 oracle,
 * deviation measured as a fraction of the oracle's rise.
 */
bool
pinTransient(const TechnologyNode &tech, EquivalencePin &pin)
{
    const double stack_tau = 1e-3;
    const unsigned width = 32;

    ThermalNetwork oracle(
        tech, width,
        cellThermalConfig(ThermalSolver::Rk4, stack_tau, 16));
    const std::vector<double> power = cellPower(oracle);
    const double tau_wire = oracle.wireParams().timeConstant().raw();
    oracle.advance(power, Seconds{tau_wire});
    const std::vector<double> reference = oracle.temperatures();
    double rise = 0.0;
    for (double t : reference)
        rise = std::max(rise, t - kAmbient);
    if (!(rise > 0.0)) {
        std::fprintf(stderr, "FAIL: transient pin saw no rise\n");
        return false;
    }

    const ThermalSolver implicit_solvers[] = {
        ThermalSolver::BackwardEuler, ThermalSolver::Trapezoidal};
    double *slots[] = {&pin.transient_rel_dev_be,
                       &pin.transient_rel_dev_cn};
    const double gates[] = {kTransientTolBe, kTransientTolCn};
    for (size_t s = 0; s < 2; ++s) {
        ThermalNetwork net(
            tech, width,
            cellThermalConfig(implicit_solvers[s], stack_tau, 16));
        net.advance(power, Seconds{tau_wire});
        const std::vector<double> probe = net.temperatures();
        double dev = 0.0;
        for (size_t i = 0; i < probe.size(); ++i)
            dev = std::max(dev, std::fabs(probe[i] - reference[i]));
        *slots[s] = dev / rise;
        if (!(*slots[s] <= gates[s])) {
            std::fprintf(stderr,
                         "FAIL: %s transient deviates from RK4 by "
                         "%.1f%% of the rise (gate %.0f%%)\n",
                         thermalSolverName(implicit_solvers[s]),
                         100.0 * *slots[s], 100.0 * gates[s]);
            return false;
        }
    }
    std::printf("transient pin: be %.2f%%, cn %.2f%% of a %.2f K "
                "rise vs the RK4 oracle over one wire tau\n\n",
                100.0 * pin.transient_rel_dev_be,
                100.0 * pin.transient_rel_dev_cn, rise);
    return true;
}

struct Cell
{
    unsigned width = 0;
    ThermalSolver solver = ThermalSolver::Rk4;
    double wall_ms = 0.0;
    double ms_per_interval = 0.0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const double interval_s =
        flags.getF64("interval-s", smoke ? 2e-4 : 1e-3);
    const uint64_t intervals =
        flags.getU64("intervals", smoke ? 3 : 20);
    const uint64_t rk4_max_width =
        flags.getU64("rk4-max-width", smoke ? 32 : 512);
    const std::string json_path = flags.get("json", "");

    bench::banner("thermal solver scaling (src/thermal + src/la)",
                  "Implicit banded steppers vs the RK4 oracle on the "
                  "wire-width ladder (equivalence-gated)");

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    bench::WallTimer total_timer;

    // ------------------------------------------------------------
    // Correctness pins before any timing.
    // ------------------------------------------------------------
    EquivalencePin pin;
    if (!pinSteadyState(tech, pin) || !pinTransient(tech, pin))
        return 1;
    pin.passed = true;

    // ------------------------------------------------------------
    // Timed ladder: widths x solvers, ms per simulated interval.
    // The implicit cells pay one operator factorization on the
    // first interval and one O(width) solve per step after that;
    // the RK4 cells pay duration / (0.2 tau_min) steps per interval
    // regardless of the horizon.
    // ------------------------------------------------------------
    const std::vector<unsigned> ladder =
        smoke ? std::vector<unsigned>{32, 512}
              : std::vector<unsigned>{32, 512, 4096, 10000};
    bench::RunMeta meta("thermal", 1);

    std::printf("timed cells (%llu intervals of %.1e s each):\n",
                static_cast<unsigned long long>(intervals),
                interval_s);
    std::vector<Cell> cells;
    for (unsigned width : ladder) {
        for (ThermalSolver solver : {ThermalSolver::Rk4,
                                     ThermalSolver::BackwardEuler,
                                     ThermalSolver::Trapezoidal}) {
            if (solver == ThermalSolver::Rk4 &&
                width > rk4_max_width)
                continue;
            ThermalNetwork net(
                tech, width, cellThermalConfig(solver, 0.020, 4));
            const std::vector<double> power = cellPower(net);
            bench::WallTimer timer;
            for (uint64_t k = 0; k < intervals; ++k)
                net.advance(power, Seconds{interval_s});
            Cell cell;
            cell.width = width;
            cell.solver = solver;
            cell.wall_ms = timer.ms();
            cell.ms_per_interval =
                cell.wall_ms / static_cast<double>(intervals);
            cells.push_back(cell);

            char label[64];
            std::snprintf(label, sizeof(label), "w%u.%s", width,
                          thermalSolverName(solver));
            std::printf("  %-22s %9.3f ms  %9.4f ms/interval\n",
                        label, cell.wall_ms, cell.ms_per_interval);
            meta.addShard(label, cell.wall_ms);
        }
    }

    // ------------------------------------------------------------
    // Acceptance: the widest implicit cell must step a simulated
    // interval faster than the narrowest RK4 oracle cell.
    // ------------------------------------------------------------
    const Cell *rk4_base = nullptr;
    const Cell *implicit_worst = nullptr; // slower of BE/CN at wmax
    unsigned max_width = ladder.back();
    for (const Cell &cell : cells) {
        if (cell.solver == ThermalSolver::Rk4 &&
            (!rk4_base || cell.width < rk4_base->width))
            rk4_base = &cell;
        if (cell.solver != ThermalSolver::Rk4 &&
            cell.width == max_width &&
            (!implicit_worst ||
             cell.ms_per_interval > implicit_worst->ms_per_interval))
            implicit_worst = &cell;
    }
    if (!rk4_base || !implicit_worst)
        fatal("perf_thermal: acceptance cells missing from ladder");
    const bool accepted = implicit_worst->ms_per_interval <
                          rk4_base->ms_per_interval;
    const double speedup =
        implicit_worst->ms_per_interval > 0.0
            ? rk4_base->ms_per_interval /
                  implicit_worst->ms_per_interval
            : 0.0;
    std::printf("\nacceptance: %u-wire %s %.4f ms/interval vs "
                "%u-wire rk4 %.4f ms/interval (%.1fx) — %s\n",
                implicit_worst->width,
                thermalSolverName(implicit_worst->solver),
                implicit_worst->ms_per_interval, rk4_base->width,
                rk4_base->ms_per_interval, speedup,
                accepted ? "PASS" : "FAIL");

    // ------------------------------------------------------------
    // BENCH_thermal.json: equivalence numbers, the full cell table,
    // and the acceptance verdict.
    // ------------------------------------------------------------
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"steady_rel_err_rk4\": %.6e, "
                  "\"steady_rel_err_be\": %.6e, "
                  "\"steady_rel_err_cn\": %.6e, "
                  "\"steady_tolerance\": %.1e, "
                  "\"transient_rel_dev_be\": %.6e, "
                  "\"transient_rel_dev_cn\": %.6e, "
                  "\"passed\": %s}",
                  pin.steady_rel_err_rk4, pin.steady_rel_err_be,
                  pin.steady_rel_err_cn, kSteadyTolerance,
                  pin.transient_rel_dev_be, pin.transient_rel_dev_cn,
                  pin.passed ? "true" : "false");
    meta.addSection("equivalence", buf);

    std::string table = "[\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "    {\"width\": %u, \"solver\": \"%s\", "
                      "\"intervals\": %llu, \"wall_ms\": %.3f, "
                      "\"ms_per_interval\": %.4f}%s\n",
                      cells[i].width,
                      thermalSolverName(cells[i].solver),
                      static_cast<unsigned long long>(intervals),
                      cells[i].wall_ms, cells[i].ms_per_interval,
                      i + 1 < cells.size() ? "," : "");
        table += buf;
    }
    table += "  ]";
    meta.addSection("cells", table);

    std::snprintf(buf, sizeof(buf),
                  "{\"implicit_width\": %u, "
                  "\"implicit_solver\": \"%s\", "
                  "\"implicit_ms_per_interval\": %.4f, "
                  "\"rk4_width\": %u, "
                  "\"rk4_ms_per_interval\": %.4f, "
                  "\"speedup\": %.2f, \"passed\": %s}",
                  implicit_worst->width,
                  thermalSolverName(implicit_worst->solver),
                  implicit_worst->ms_per_interval, rk4_base->width,
                  rk4_base->ms_per_interval, speedup,
                  accepted ? "true" : "false");
    meta.addSection("acceptance", buf);

    const std::string written =
        meta.writeJson(total_timer.ms(), json_path);
    if (!written.empty())
        std::printf("wrote %s\n", written.c_str());
    return accepted ? 0 : 1;
}
