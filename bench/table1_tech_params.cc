/**
 * @file
 * Reproduces Table 1: wire geometry and equivalent circuit
 * parameters for topmost-layer interconnect at 130/90/65/45 nm,
 * plus the derived quantities the models consume (computed r_wire,
 * repeater design, thermal R/C).
 */

#include <cstdio>

#include "bench_common.hh"
#include "tech/repeater.hh"
#include "tech/technology.hh"
#include "thermal/wire_thermal.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const Meters length{static_cast<double>(
        flags.getU64("length-mm", 10)) * 1e-3};

    bench::banner("Table 1 (HPCA-11 2005)",
                  "Wire geometry and equivalent circuit parameters "
                  "per ITRS node");

    std::printf("%-42s %10s %10s %10s %10s\n", "Parameter", "130nm",
                "90nm", "65nm", "45nm");
    bench::rule(88);

    auto row = [](const char *name, auto getter, const char *fmt) {
        std::printf("%-42s", name);
        for (ItrsNode id : allItrsNodes())
            std::printf(fmt, getter(itrsNode(id)));
        std::printf("\n");
    };

    row("Number of metal layers",
        [](const TechnologyNode &n) {
            return static_cast<double>(n.metal_layers);
        }, " %10.0f");
    row("Wire width, wi (nm)",
        [](const TechnologyNode &n) { return n.wire_width.raw() * 1e9; },
        " %10.0f");
    row("Wire thickness, ti (nm)",
        [](const TechnologyNode &n) { return n.wire_thickness.raw() * 1e9; },
        " %10.0f");
    row("Height of ILD, tild (nm)",
        [](const TechnologyNode &n) { return n.ild_height.raw() * 1e9; },
        " %10.0f");
    row("Relative permittivity, er",
        [](const TechnologyNode &n) { return n.epsilon_r; },
        " %10.1f");
    row("Thermal conductivity, kild (W/mK)",
        [](const TechnologyNode &n) { return n.k_ild.raw(); }, " %10.2f");
    row("Clock frequency, fclk (GHz)",
        [](const TechnologyNode &n) { return n.f_clk.raw() * 1e-9; },
        " %10.2f");
    row("Supply voltage, Vdd (V)",
        [](const TechnologyNode &n) { return n.vdd.raw(); }, " %10.1f");
    row("Max current density, jmax (MA/cm2)",
        [](const TechnologyNode &n) { return n.j_max.raw() * 1e-10; },
        " %10.2f");
    row("Self capacitance, cline (pF/m)",
        [](const TechnologyNode &n) { return n.c_line.raw() * 1e12; },
        " %10.2f");
    row("Coupling capacitance, cinter (pF/m)",
        [](const TechnologyNode &n) { return n.c_inter.raw() * 1e12; },
        " %10.2f");
    row("Resistance, rwire (kOhm/m) [Table 1]",
        [](const TechnologyNode &n) { return n.r_wire.raw() * 1e-3; },
        " %10.2f");
    row("Resistance, rho/(w*t) (kOhm/m) [computed]",
        [](const TechnologyNode &n) {
            return n.rWireFromGeometry().raw() * 1e-3;
        }, " %10.2f");

    std::printf("\nDerived quantities (wire length %.0f mm):\n",
                length.raw() * 1e3);
    bench::rule(88);
    row("Repeater size h (x min inverter), Eq 1",
        [length](const TechnologyNode &n) {
            return RepeaterModel(n).design(length).size_h;
        }, " %10.1f");
    row("Repeater count k, Eq 2",
        [length](const TechnologyNode &n) {
            return RepeaterModel(n).design(length).count_k_exact;
        }, " %10.1f");
    row("Repeater capacitance Crep/Cint",
        [](const TechnologyNode &) {
            return RepeaterModel::capacitanceRatio();
        }, " %10.3f");
    row("Thermal R (spreading), Eq 6 (K*m/W)",
        [](const TechnologyNode &n) {
            return WireThermalParams(n).spreadingResistance().raw();
        }, " %10.3f");
    row("Thermal R (rectangular), Eq 6 (K*m/W)",
        [](const TechnologyNode &n) {
            return WireThermalParams(n).rectangularResistance().raw();
        }, " %10.3f");
    row("Thermal R (lateral), Sec 4.1.1 (K*m/W)",
        [](const TechnologyNode &n) {
            return WireThermalParams(n).lateralResistance().raw();
        }, " %10.3f");
    row("Thermal C (uJ/(K*m))",
        [](const TechnologyNode &n) {
            return WireThermalParams(n).capacitance().raw() * 1e6;
        }, " %10.3f");
    row("Wire thermal time constant (us)",
        [](const TechnologyNode &n) {
            return WireThermalParams(n).timeConstant().raw() * 1e6;
        }, " %10.3f");
    return 0;
}
