/**
 * @file
 * Via separation study (the paper's introduction, point (5)): "long
 * via separations in upper metal layers also contribute to higher
 * average wire temperatures (vias are normally better thermal
 * conductors than surrounding low-K dielectrics)".
 *
 * Sweeps the number of via sites on a heated global wire — the
 * natural sites are the repeater positions of Eq 2 — and reports the
 * axial temperature structure per node.
 */

#include <cstdio>

#include "bench_common.hh"
#include "tech/repeater.hh"
#include "thermal/axial.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const Meters length{0.010};
    const WattsPerMeter power{static_cast<double>(
        flags.getU64("milliwatts-per-metre", 400)) * 1e-3};

    bench::banner("Via cooling (paper Sec 1, point 5)",
                  "Axial wire temperature vs via separation, 10 mm "
                  "heated global wire");
    std::printf("Uniform dissipation %.2f W/m; vias of 4e4 K/W at "
                "evenly spaced sites\n\n", power.raw());

    std::printf("%-8s %6s | %11s %11s %11s %11s %11s\n", "Node",
                "vias", "lumped dT", "avg dT", "peak dT",
                "valley dT", "relief");
    bench::rule(80);

    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        RepeaterDesign design = RepeaterModel(tech).design(length);
        const unsigned repeater_vias = design.count_k + 1;

        for (unsigned vias : {0u, repeater_vias, 4 * repeater_vias}) {
            AxialWireModel::Config config;
            config.length = length;
            config.segments = 400;
            config.vias = vias;
            AxialWireModel model(tech, config);
            AxialProfile profile = model.solve(power);
            double lumped = model.lumpedRise(power).raw();
            double avg = (profile.average - config.ambient).raw();
            std::printf("%-8s %6u | %11.3f %11.3f %11.3f %11.3f "
                        "%10.1f%%\n",
                        tech.name.c_str(), vias, lumped, avg,
                        (profile.peak - config.ambient).raw(),
                        (profile.valley - config.ambient).raw(),
                        lumped > 0.0
                            ? 100.0 * (lumped - avg) / lumped
                            : 0.0);
        }
        bench::rule(80);
    }

    std::printf("\n[check] vias barely matter at 130 nm (healthy "
                "k_ild carries the heat anyway) but\n"
                "        become a first-order cooling path at 45 nm "
                "where k_ild collapses to 0.07 —\n"
                "        quantifying the paper's point that long "
                "via separations raise average\n"
                "        wire temperatures at future nodes.\n");
    return 0;
}
