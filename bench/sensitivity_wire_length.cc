/**
 * @file
 * Sensitivity study: how bus length changes the energy/thermal
 * picture. The paper fixes a "long global" bus (its over-damped RC
 * argument assumes length > 10 mm); this sweep shows what its model
 * predicts from semi-global (1 mm) to long global (20 mm) wires —
 * energy grows linearly with length, per-wire temperature rise is
 * length-invariant (per-unit-length physics), and the repeater count
 * scales linearly while repeater size stays fixed.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "tech/delay.hh"
#include "tech/repeater.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 100000);
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);

    bench::banner("Sensitivity: wire length",
                  "Energy, temperature, repeaters, and delay vs bus "
                  "length (130 nm, eon)");
    std::printf("%llu cycles per point\n\n",
                static_cast<unsigned long long>(cycles));

    std::printf("%-10s %13s %11s %8s %8s %10s\n", "Length",
                "energy (J)", "dT max (K)", "k", "h",
                "delay (ps)");
    bench::rule(68);

    for (double mm : {1.0, 2.0, 5.0, 10.0, 20.0}) {
        const Meters length{mm * 1e-3};

        BusSimConfig config;
        config.data_width = 32;
        config.wire_length = length;
        config.interval_cycles = 10000;
        config.record_samples = false;
        config.thermal.stack_mode = StackMode::None;

        TwinBusSimulator twin(tech, config);
        SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
        twin.run(cpu);

        double energy =
            (twin.instructionBus().totalEnergy().total() +
             twin.dataBus().totalEnergy().total()).raw();
        double dt_max = std::max(
            twin.instructionBus().thermalNetwork().maxTemperature(),
            twin.dataBus().thermalNetwork().maxTemperature()).raw() -
            318.15;

        RepeaterDesign design = RepeaterModel(tech).design(length);
        DelayModel delay(tech);
        double t =
            delay.repeatedLineDelay(length, Kelvin{318.15}).total.raw();

        std::printf("%6.0f mm  %13.5e %11.4f %8u %8.1f %10.1f\n",
                    mm, energy, dt_max, design.count_k,
                    design.size_h, t * 1e12);
    }

    std::printf("\n[check] energy scales ~linearly with length "
                "(capacitance does); per-wire\n"
                "        temperature rise is length-invariant "
                "(per-unit-length power and R);\n"
                "        repeater count k scales with length while "
                "size h does not (Eqs 1-2).\n");
    return 0;
}
