/**
 * @file
 * google-benchmark micro-benchmarks of the src/exec runtime — the
 * evidence behind the parallelisation claims:
 *
 *  - *Equivalence.* Every parallel benchmark validates, once per
 *    configuration, that its result is bit-identical to the serial
 *    (1-thread) result before timing anything; a mismatch aborts via
 *    state.SkipWithError, so a broken determinism contract cannot
 *    produce a green perf report.
 *  - *Scaling.* Each benchmark takes the pool size as its argument
 *    (1, 2, 4, hardware), so one run captures the speedup
 *    trajectory. On the acceptance hardware (>= 4 cores) the sweep
 *    and BEM benchmarks are expected to show >= 2x at 4 threads;
 *    single-core machines simply report flat times.
 *
 * Counters (tasks run, steals) are exported per benchmark so queue
 * imbalance is visible alongside the wall clock.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/parallel.hh"
#include "sim/sweep.hh"
#include "exec/thread_pool.hh"
#include "extraction/bem.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

unsigned
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
poolSizeArgs(benchmark::internal::Benchmark *bench)
{
    bench->Arg(1)->Arg(2)->Arg(4);
    const unsigned hw = hardwareThreads();
    if (hw > 4)
        bench->Arg(static_cast<int>(hw));
}

/**
 * parallelReduce over rounding-sensitive values: the bit-equality
 * check across pool sizes is the cheapest possible canary for a
 * broken chunking rule.
 */
void
BM_ParallelReduce(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    constexpr size_t kN = 2000000;
    std::vector<double> values(kN);
    for (size_t i = 0; i < kN; ++i)
        values[i] = 1.0 / static_cast<double>(i + 1);

    auto reduceWith = [&](exec::ThreadPool &pool) {
        return exec::parallelReduce(
            pool, kN, 0.0,
            [&](size_t begin, size_t end) {
                double s = 0.0;
                for (size_t i = begin; i < end; ++i)
                    s += values[i];
                return s;
            },
            [](double acc, double p) { return acc + p; });
    };

    exec::ThreadPool serial_pool(1);
    const double serial = reduceWith(serial_pool);

    exec::ThreadPool pool(threads);
    const double parallel = reduceWith(pool);
    if (std::memcmp(&serial, &parallel, sizeof serial) != 0) {
        state.SkipWithError(
            "parallelReduce diverged from the serial result");
        return;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(reduceWith(pool));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kN));
}
BENCHMARK(BM_ParallelReduce)->Apply(poolSizeArgs)
    ->Unit(benchmark::kMillisecond);

/** The Fig 3 kernel: one twin-bus energy study per pool size. */
void
BM_EnergyStudy(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    constexpr uint64_t kCycles = 50000;

    exec::ThreadPool serial_pool(1);
    const EnergyCell serial = runEnergyStudy(
        "eon", tech130, EncodingScheme::BusInvert, 1, kCycles, 1,
        &serial_pool);

    exec::ThreadPool pool(threads);
    const EnergyCell check = runEnergyStudy(
        "eon", tech130, EncodingScheme::BusInvert, 1, kCycles, 1,
        &pool);
    if (check.instruction.total().raw() !=
            serial.instruction.total().raw() ||
        check.data.total().raw() != serial.data.total().raw()) {
        state.SkipWithError(
            "energy study diverged from the serial result");
        return;
    }

    const exec::ExecCounters before = pool.counters();
    for (auto _ : state) {
        EnergyCell cell = runEnergyStudy(
            "eon", tech130, EncodingScheme::BusInvert, 1, kCycles, 1,
            &pool);
        benchmark::DoNotOptimize(cell);
    }
    const exec::ExecCounters delta = pool.counters() - before;
    state.counters["tasks"] = static_cast<double>(delta.tasks_run);
    state.counters["steals"] = static_cast<double>(delta.steals);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kCycles));
}
BENCHMARK(BM_EnergyStudy)->Apply(poolSizeArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * A SweepRunner batch of independent benchmark cells — the shape of
 * the paper's full evaluation, and the workload the >= 2x speedup
 * acceptance target refers to (whole simulations per shard amortize
 * every queue cost).
 */
void
BM_SweepBatch(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    constexpr uint64_t kCycles = 20000;
    const std::vector<std::string> benchmarks = {
        "eon", "swim", "crafty", "mcf"};

    auto runBatch = [&](exec::ThreadPool &pool) {
        std::vector<exec::SweepJob> jobs;
        for (const std::string &name : benchmarks) {
            jobs.push_back(
                {name, [name]() -> Result<SweepReport> {
                     EnergyCell cell = runEnergyStudy(
                         name, tech130, EncodingScheme::BusInvert, 1,
                         kCycles, 1);
                     SweepReport report;
                     report.records = cell.cycles;
                     report.instruction_energy = cell.instruction;
                     report.data_energy = cell.data;
                     report.completed = true;
                     return report;
                 }});
        }
        return exec::SweepRunner(pool).run(jobs);
    };

    exec::ThreadPool serial_pool(1);
    Result<exec::BatchReport> serial = runBatch(serial_pool);
    exec::ThreadPool pool(threads);
    Result<exec::BatchReport> check = runBatch(pool);
    if (!serial.ok() || !check.ok()) {
        state.SkipWithError("sweep batch failed");
        return;
    }
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        if (check.value().reports[i].data_energy.total().raw() !=
            serial.value().reports[i].data_energy.total().raw()) {
            state.SkipWithError(
                "sweep batch diverged from the serial result");
            return;
        }
    }

    for (auto _ : state) {
        Result<exec::BatchReport> batch = runBatch(pool);
        benchmark::DoNotOptimize(batch);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(benchmarks.size()));
}
BENCHMARK(BM_SweepBatch)->Apply(poolSizeArgs)
    ->Unit(benchmark::kMillisecond);

/** Row-parallel BEM assembly + per-conductor solves. */
void
BM_BemExtraction(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    BusGeometry geometry = BusGeometry::forTechnology(tech130, 16);

    auto solveWith = [&](exec::ThreadPool &pool) {
        BemExtractor::Options options;
        options.panels_per_width = 8;
        options.pool = &pool;
        return BemExtractor(geometry, options).solveMaxwell();
    };

    exec::ThreadPool serial_pool(1);
    const Matrix serial = solveWith(serial_pool);
    exec::ThreadPool pool(threads);
    const Matrix check = solveWith(pool);
    for (size_t i = 0; i < serial.rows(); ++i)
        for (size_t j = 0; j < serial.cols(); ++j)
            if (check(i, j) != serial(i, j)) {
                state.SkipWithError(
                    "BEM extraction diverged from the serial "
                    "result");
                return;
            }

    for (auto _ : state) {
        Matrix m = solveWith(pool);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_BemExtraction)->Apply(poolSizeArgs)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace nanobus

BENCHMARK_MAIN();
