/**
 * @file
 * google-benchmark micro-benchmarks of the model components: the
 * throughput numbers that bound how long full paper-scale (300M
 * cycle) simulations take.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "encoding/encoder.hh"
#include "energy/bus_energy.hh"
#include "extraction/bem.hh"
#include "sim/experiment.hh"
#include "thermal/network.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

void
BM_EnergyTransition(benchmark::State &state)
{
    unsigned radius = static_cast<unsigned>(state.range(0));
    BusEnergyModel::Config config;
    config.coupling_radius = radius;
    BusEnergyModel model(
        tech130, CapacitanceMatrix::analytical(tech130, 32), config);
    Rng rng(1);
    uint64_t word = 0;
    for (auto _ : state) {
        word ^= rng.next() & 0xff; // address-like low activity
        benchmark::DoNotOptimize(model.step(word));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnergyTransition)->Arg(0)->Arg(1)->Arg(4)->Arg(31);

void
BM_Encoder(benchmark::State &state)
{
    auto scheme = static_cast<EncodingScheme>(state.range(0));
    auto encoder = makeEncoder(scheme, 32);
    encoder->reset(0);
    uint64_t addr = 0x10000;
    Rng rng(2);
    for (auto _ : state) {
        addr = rng.chance(0.8) ? addr + 4 : rng.next() & 0xffffffff;
        benchmark::DoNotOptimize(encoder->encode(addr));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(schemeName(scheme));
}
BENCHMARK(BM_Encoder)
    ->Arg(static_cast<int>(EncodingScheme::Unencoded))
    ->Arg(static_cast<int>(EncodingScheme::BusInvert))
    ->Arg(static_cast<int>(EncodingScheme::OddEvenBusInvert))
    ->Arg(static_cast<int>(EncodingScheme::CouplingDrivenBusInvert));

void
BM_SyntheticCpu(benchmark::State &state)
{
    SyntheticCpu cpu(benchmarkProfile("eon"), 3, 0);
    TraceRecord r;
    // Measures single-record generator cost by design.
    for (auto _ : state) {
        cpu.next(r); // NOLINT(raw-trace-next)
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticCpu);

void
BM_ThermalInterval(benchmark::State &state)
{
    // One 100K-cycle interval advance of a 33-wire network.
    ThermalConfig config;
    config.stack_mode = StackMode::Dynamic;
    config.delta_theta = Kelvin{20.0};
    ThermalNetwork net(tech130, 33, config);
    net.reset(Kelvin{318.15});
    std::vector<double> power(33, 0.2);
    const Seconds interval = 100000.0 / tech130.f_clk;
    for (auto _ : state) {
        net.advance(power, interval);
        benchmark::DoNotOptimize(net.maxTemperature());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalInterval);

void
BM_CacheHierarchy(benchmark::State &state)
{
    CacheHierarchy hierarchy;
    SyntheticCpu cpu(benchmarkProfile("mcf"), 4, 0);
    TraceRecord r;
    // Measures single-record access cost by design.
    for (auto _ : state) {
        cpu.next(r); // NOLINT(raw-trace-next)
        hierarchy.access(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchy);

void
BM_FullPipelineCycle(benchmark::State &state)
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 100000;
    config.thermal.stack_mode = StackMode::Dynamic;
    TwinBusSimulator twin(tech130, config);
    SyntheticCpu cpu(benchmarkProfile("swim"), 5, 0);
    TraceRecord r;
    // Measures single-record accept() cost (the per-record baseline
    // perf_pipeline compares the batched path against).
    for (auto _ : state) {
        cpu.next(r); // NOLINT(raw-trace-next)
        twin.accept(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipelineCycle);

void
BM_BemExtraction(benchmark::State &state)
{
    unsigned wires = static_cast<unsigned>(state.range(0));
    BusGeometry g = BusGeometry::forTechnology(tech130, wires);
    BemExtractor::Options opts;
    opts.panels_per_width = 6;
    for (auto _ : state) {
        BemExtractor extractor(g, opts);
        benchmark::DoNotOptimize(extractor.extract());
    }
}
BENCHMARK(BM_BemExtraction)->Arg(5)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace nanobus
