/**
 * @file
 * perf_pipeline — throughput study of the batched streaming replay
 * pipeline (sim/pipeline.hh) against the per-record reference loop.
 *
 * Protocol (same discipline as perf_exec): every timing result is
 * gated on a correctness pin. The driver first replays a synthetic
 * SPEC-like trace per-record (TwinBusSimulator::runPerRecord, the
 * oracle) and then through SimPipeline at pool sizes 1, 2, and the
 * hardware concurrency, for each of the paper's four Fig 3 encoding
 * schemes and BOTH transition kernels (scalar and packed — the
 * oracle runs the same kernel, so each pin is bitwise), and requires
 * the full result fingerprint — energies, per-line energies,
 * interval samples, thermal faults — to match BIT-identically. The
 * two kernels are additionally cross-checked against each other to
 * FP rounding. Only then does it time per-record vs. batched vs.
 * batched+prefetch replay across batch sizes and both kernels and
 * emit the records/s trajectory into BENCH_pipeline.json.
 *
 * The kernel gate: the packed kernel must replay an in-memory trace
 * at batch 1024 at least 5x faster than the scalar kernel (best of
 * --gate-reps runs each; in-memory so the gate measures the
 * transition kernels, not trace-file parsing). The verdict lands in
 * the JSON "kernel_gate" block and a miss fails the run;
 * tools/check_bench_pipeline.py re-checks it from the JSON.
 *
 * Two robustness pins ride along (docs/ROBUSTNESS.md): a
 * checkpoint/resume pin per kernel (a run snapshotting every
 * --checkpoint-every batches must leave a file a fresh simulator
 * resumes from with a bit-identical final fingerprint; packed
 * snapshots carry the v2 count payload) and a supervised sweep of
 * the four schemes under exec::Supervisor, whose outcome tallies
 * land in the JSON "supervisor" block.
 *
 * Flags: --cycles=N --threads=N --pinning=none|compact|scatter
 *        --json=PATH --trace=PATH
 *        --checkpoint=PATH --checkpoint-every=BATCHES
 *        --deadline=MS --retries=N --gate-reps=N
 *        --keep-trace --smoke (small trace, single batch size)
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/sweep.hh"
#include "exec/thread_pool.hh"
#include "fabric/bus_sim.hh"
#include "sim/experiment.hh"
#include "sim/pipeline.hh"
#include "tech/technology.hh"
#include "trace/io.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

using namespace nanobus;

namespace {

BusSimConfig
makeConfig(EncodingScheme scheme,
           TransitionKernel kernel = TransitionKernel::Scalar)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 32;
    // Small intervals so every batch straddles several interval
    // closes — the pin covers the bookkeeping path, not just the
    // per-word energy path. Thermal stays at its (dynamic) default.
    config.interval_cycles = 5000;
    config.record_samples = true;
    config.kernel = kernel;
    return config;
}

/** Everything observable about one bus after a replay, flattened to
 *  doubles/integers for bitwise comparison. */
struct BusFingerprint
{
    std::vector<double> values;

    void add(double v) { values.push_back(v); }
    void add(uint64_t v) { values.push_back(static_cast<double>(v)); }

    static BusFingerprint capture(const BusSimulator &bus)
    {
        BusFingerprint fp;
        fp.add(bus.totalEnergy().self.raw());
        fp.add(bus.totalEnergy().coupling.raw());
        fp.add(bus.transmissions());
        fp.add(bus.currentCycle());
        for (double e : bus.lineEnergies())
            fp.add(e);
        fp.add(static_cast<uint64_t>(bus.samples().size()));
        for (const IntervalSample &s : bus.samples()) {
            fp.add(s.end_cycle);
            fp.add(s.transmissions);
            fp.add(s.energy.self.raw());
            fp.add(s.energy.coupling.raw());
            fp.add(s.avg_temperature.raw());
            fp.add(s.max_temperature.raw());
            fp.add(s.avg_current.raw());
        }
        fp.add(static_cast<uint64_t>(bus.thermalFaults().size()));
        return fp;
    }

    /** Bitwise equality (memcmp, so -0.0 != 0.0 and NaN == NaN). */
    bool identical(const BusFingerprint &other) const
    {
        return values.size() == other.values.size() &&
            (values.empty() ||
             std::memcmp(values.data(), other.values.data(),
                         values.size() * sizeof(double)) == 0);
    }
};

struct ReplayFingerprint
{
    uint64_t records = 0;
    BusFingerprint ia;
    BusFingerprint da;

    bool identical(const ReplayFingerprint &other) const
    {
        return records == other.records &&
            ia.identical(other.ia) && da.identical(other.da);
    }
};

ReplayFingerprint
capture(const TwinBusSimulator &twin, uint64_t records)
{
    ReplayFingerprint fp;
    fp.records = records;
    fp.ia = BusFingerprint::capture(twin.instructionBus());
    fp.da = BusFingerprint::capture(twin.dataBus());
    return fp;
}

/** Per-record oracle replay of the trace file. */
ReplayFingerprint
replayPerRecord(const std::string &trace, const TechnologyNode &tech,
                EncodingScheme scheme, TransitionKernel kernel,
                double *wall_ms = nullptr)
{
    TraceReader reader(trace);
    TwinBusSimulator twin(tech, makeConfig(scheme, kernel));
    bench::WallTimer timer;
    const uint64_t records = twin.runPerRecord(reader);
    if (wall_ms)
        *wall_ms = timer.ms();
    return capture(twin, records);
}

/** Batched pipeline replay of the trace file. */
ReplayFingerprint
replayPipeline(const std::string &trace, const TechnologyNode &tech,
               EncodingScheme scheme, TransitionKernel kernel,
               exec::ThreadPool &pool,
               const SimPipeline::Config &pipe_config,
               double *wall_ms = nullptr)
{
    TraceReader reader(trace);
    TwinBusSimulator twin(tech, makeConfig(scheme, kernel));
    SimPipeline pipeline(twin, pool, pipe_config);
    bench::WallTimer timer;
    Result<uint64_t> records = pipeline.run(reader);
    if (wall_ms)
        *wall_ms = timer.ms();
    if (!records.ok())
        fatal("perf_pipeline: replay failed: %s",
              records.error().describe().c_str());
    return capture(twin, records.value());
}

/**
 * Batched pipeline replay of an in-memory record vector — the
 * kernel-gate workload. A zero-copy SpanBatchSource removes trace
 * parsing AND per-record ingest dispatch from the measurement, so
 * the scalar/packed ratio reflects the transition kernels rather
 * than I/O.
 */
ReplayFingerprint
replayMemory(const std::vector<TraceRecord> &records,
             const TechnologyNode &tech, const BusSimConfig &config,
             exec::ThreadPool &pool,
             const SimPipeline::Config &pipe_config,
             double *wall_ms = nullptr)
{
    SpanBatchSource source(records, pipe_config.batch_size);
    TwinBusSimulator twin(tech, config);
    SimPipeline pipeline(twin, pool, pipe_config);
    bench::WallTimer timer;
    Result<uint64_t> count = pipeline.runBatches(source);
    if (wall_ms)
        *wall_ms = timer.ms();
    if (!count.ok())
        fatal("perf_pipeline: in-memory replay failed: %s",
              count.error().describe().c_str());
    return capture(twin, count.value());
}

/** Load the whole trace file into memory (kernel-gate input). */
std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceRecord> records;
    TraceRecord record;
    while (reader.next(record)) // NOLINT(raw-trace-next)
        records.push_back(record);
    return records;
}

/** Generate the synthetic SPEC-like trace file; returns record
 *  count. */
uint64_t
generateTrace(const std::string &path, uint64_t cycles)
{
    SyntheticCpu cpu(benchmarkProfile("swim"), /*seed=*/1, cycles);
    TraceWriter writer(path);
    writer.comment("perf_pipeline synthetic trace (swim profile)");
    TraceRecord record;
    uint64_t count = 0;
    // Generation, not replay — the batch readers are for consumers.
    while (cpu.next(record)) { // NOLINT(raw-trace-next)
        writer.write(record);
        ++count;
    }
    writer.flush();
    return count;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const uint64_t cycles =
        flags.getU64("cycles", smoke ? 20000 : 200000);
    const bench::ExecFlags exec_flags = bench::ExecFlags::parse(flags);
    const unsigned threads = exec_flags.threads;
    const exec::PinPolicy pinning = exec_flags.pinning;
    const std::string trace_path =
        flags.get("trace", "perf_pipeline_trace.tmp");
    const std::string json_path = flags.get("json", "");

    bench::banner("pipeline throughput",
                  "Batched streaming replay vs per-record reference "
                  "(equivalence-gated)");

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm65);
    bench::WallTimer total_timer;
    const uint64_t records = generateTrace(trace_path, cycles);
    std::printf("trace: %s (%llu records, %llu cycles)\n\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(cycles));

    // ------------------------------------------------------------
    // Equivalence pins: batched replay must be bit-identical to the
    // per-record oracle (same kernel) at pool sizes 1, 2, and hw,
    // for all four paper schemes and both transition kernels,
    // before any timing is reported. The two kernels' oracles are
    // cross-checked against each other to FP rounding — the only
    // check that does not share code with the path it validates.
    // ------------------------------------------------------------
    const unsigned hw = exec::ThreadPool::defaultThreads();
    std::vector<unsigned> pin_pools = {1, 2};
    if (hw > 2)
        pin_pools.push_back(hw);
    const std::vector<EncodingScheme> pin_schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
    };
    const TransitionKernel kernels[] = {TransitionKernel::Scalar,
                                        TransitionKernel::Packed};
    const double cross_tolerance = 1e-9;

    std::printf("equivalence pins (pool sizes 1/2/%u, both "
                "kernels):\n",
                hw);
    unsigned pins = 0;
    double cross_dev = 0.0;
    for (EncodingScheme scheme : pin_schemes) {
        double scheme_totals[2] = {0.0, 0.0};
        for (TransitionKernel kernel : kernels) {
            const ReplayFingerprint oracle =
                replayPerRecord(trace_path, tech, scheme, kernel);
            scheme_totals[kernel == TransitionKernel::Packed] =
                oracle.ia.values[0] + oracle.ia.values[1] +
                oracle.da.values[0] + oracle.da.values[1];
            for (unsigned pool_size : pin_pools) {
                // The pins run under the requested placement too:
                // pinning must never change a bit of the results.
                exec::ThreadPool pool(pool_size, pinning);
                for (bool prefetch : {false, true}) {
                    SimPipeline::Config pipe_config;
                    pipe_config.batch_size = 1024;
                    pipe_config.prefetch = prefetch;
                    const ReplayFingerprint got = replayPipeline(
                        trace_path, tech, scheme, kernel, pool,
                        pipe_config);
                    if (!got.identical(oracle)) {
                        std::fprintf(
                            stderr,
                            "FAIL: %s kernel=%s pool=%u prefetch=%d "
                            "diverges from per-record replay\n",
                            schemeName(scheme),
                            transitionKernelName(kernel), pool_size,
                            prefetch ? 1 : 0);
                        std::remove(trace_path.c_str());
                        return 1;
                    }
                    ++pins;
                }
            }
        }
        const double rel =
            std::abs(scheme_totals[1] - scheme_totals[0]) /
            std::abs(scheme_totals[0]);
        cross_dev = std::max(cross_dev, rel);
        std::printf("  %-28s bit-identical per kernel "
                    "(cross-kernel rel dev %.2e)\n",
                    schemeName(scheme), rel);
        if (rel > cross_tolerance) {
            std::fprintf(stderr,
                         "FAIL: %s scalar and packed totals "
                         "diverge beyond %.0e\n",
                         schemeName(scheme), cross_tolerance);
            std::remove(trace_path.c_str());
            return 1;
        }
    }
    std::printf("all %u equivalence pins passed\n\n", pins);

    exec::ThreadPool pool(threads, pinning);
    const EncodingScheme timing_scheme = EncodingScheme::BusInvert;

    // ------------------------------------------------------------
    // Checkpoint/resume pin: a run that snapshots every
    // --checkpoint-every batches must leave a file a fresh twin can
    // resume from, and the resumed replay must be bit-identical to
    // the uninterrupted one (docs/ROBUSTNESS.md, "Checkpoint
    // format").
    // ------------------------------------------------------------
    const std::string ckpt_path =
        flags.get("checkpoint", trace_path + ".ckpt");
    const uint64_t ckpt_every = flags.getU64("checkpoint-every", 4);
    for (TransitionKernel kernel : kernels) {
        SimPipeline::Config ckpt_config;
        ckpt_config.batch_size = 1024;
        ckpt_config.checkpoint_path = ckpt_path;
        ckpt_config.checkpoint_every_batches = ckpt_every;
        const ReplayFingerprint full =
            replayPipeline(trace_path, tech, timing_scheme, kernel,
                           pool, ckpt_config);

        SimPipeline::Config resume_config;
        resume_config.batch_size = 1024;
        resume_config.checkpoint_path = ckpt_path;
        resume_config.resume = true;
        const ReplayFingerprint resumed =
            replayPipeline(trace_path, tech, timing_scheme, kernel,
                           pool, resume_config);
        if (!resumed.identical(full)) {
            std::fprintf(stderr,
                         "FAIL: kernel=%s resume from %s diverges "
                         "from the uninterrupted replay\n",
                         transitionKernelName(kernel),
                         ckpt_path.c_str());
            std::remove(trace_path.c_str());
            std::remove(ckpt_path.c_str());
            return 1;
        }
        std::printf("checkpoint/resume pin (%s kernel): resume from "
                    "%s (every %llu batches) is bit-identical\n",
                    transitionKernelName(kernel), ckpt_path.c_str(),
                    static_cast<unsigned long long>(ckpt_every));
    }
    std::printf("\n");

    // ------------------------------------------------------------
    // Timing: per-record vs batched vs batched+prefetch.
    // ------------------------------------------------------------
    bench::RunMeta meta("pipeline", threads);

    auto report = [&](const char *label, double wall_ms) {
        const double rate = wall_ms > 0.0
            ? static_cast<double>(records) / (wall_ms / 1000.0)
            : 0.0;
        std::printf("  %-22s %9.2f ms  %12.0f records/s\n", label,
                    wall_ms, rate);
        meta.addShard(label, wall_ms);
    };

    std::printf("timing (%s, %u threads):\n",
                schemeName(timing_scheme), threads);
    double wall = 0.0;
    for (TransitionKernel kernel : kernels) {
        replayPerRecord(trace_path, tech, timing_scheme, kernel,
                        &wall);
        char label[64];
        std::snprintf(label, sizeof(label), "%s/per-record",
                      transitionKernelName(kernel));
        report(label, wall);
    }

    std::vector<size_t> batch_sizes =
        smoke ? std::vector<size_t>{1024}
              : std::vector<size_t>{1024, kDefaultTraceBatchSize,
                                    65536};
    for (TransitionKernel kernel : kernels) {
        for (size_t batch : batch_sizes) {
            for (bool prefetch : {false, true}) {
                SimPipeline::Config pipe_config;
                pipe_config.batch_size = batch;
                pipe_config.prefetch = prefetch;
                replayPipeline(trace_path, tech, timing_scheme,
                               kernel, pool, pipe_config, &wall);
                char label[64];
                std::snprintf(label, sizeof(label), "%s/batch%zu%s",
                              transitionKernelName(kernel), batch,
                              prefetch ? "+prefetch" : "");
                report(label, wall);
            }
        }
    }

    // ------------------------------------------------------------
    // Kernel gate: packed must beat scalar by >= 5x on the
    // in-memory replay at batch 1024 (best of --gate-reps runs per
    // kernel). In-memory removes trace parsing from the measurement
    // — the gate is about the transition kernels.
    // ------------------------------------------------------------
    const unsigned gate_reps =
        static_cast<unsigned>(flags.getU64("gate-reps", 3));
    const double gate_threshold = 5.0;
    // The gate workload isolates the transition kernels from
    // kernel-independent shared stages that would dilute the ratio:
    // Unencoded (the bus-invert majority vote is per-word sequential
    // in both kernels), rare interval closes (each close runs a
    // thermal ODE advance identical under both kernels), and a
    // cache-resident record slice (a trace larger than LLC turns
    // the fast kernel memory-bound).
    const EncodingScheme gate_scheme = EncodingScheme::Unencoded;
    std::vector<TraceRecord> memory_trace = loadTrace(trace_path);
    constexpr size_t kGateSliceRecords = 32768;
    if (memory_trace.size() > kGateSliceRecords)
        memory_trace.resize(kGateSliceRecords);
    double best_ms[2] = {0.0, 0.0};
    std::printf("\nkernel gate (%s, in-memory, %zu records, batch "
                "1024, best of %u):\n",
                schemeName(gate_scheme), memory_trace.size(),
                gate_reps);
    for (TransitionKernel kernel : kernels) {
        BusSimConfig gate_config = makeConfig(gate_scheme, kernel);
        gate_config.interval_cycles = 1u << 30;
        gate_config.record_samples = false;
        double best = 0.0;
        for (unsigned rep = 0; rep < gate_reps; ++rep) {
            SimPipeline::Config pipe_config;
            pipe_config.batch_size = 1024;
            replayMemory(memory_trace, tech, gate_config, pool,
                         pipe_config, &wall);
            if (rep == 0 || wall < best)
                best = wall;
        }
        best_ms[kernel == TransitionKernel::Packed] = best;
        const double rate = best > 0.0
            ? static_cast<double>(memory_trace.size()) /
                (best / 1000.0)
            : 0.0;
        std::printf("  %-22s %9.2f ms  %12.0f records/s\n",
                    transitionKernelName(kernel), best, rate);
    }
    const double speedup =
        best_ms[1] > 0.0 ? best_ms[0] / best_ms[1] : 0.0;
    const bool gate_passed = speedup >= gate_threshold;
    std::printf("  speedup %.1fx (gate: >= %.0fx) -> %s\n", speedup,
                gate_threshold, gate_passed ? "PASS" : "FAIL");

    {
        char gate_json[512];
        std::snprintf(
            gate_json, sizeof(gate_json),
            "{\"batch\": 1024, \"reps\": %u, \"cells\": ["
            "{\"kernel\": \"scalar\", \"wall_ms\": %.3f}, "
            "{\"kernel\": \"packed\", \"wall_ms\": %.3f}], "
            "\"speedup\": %.3f, \"threshold\": %.1f, "
            "\"passed\": %s}",
            gate_reps, best_ms[0], best_ms[1], speedup,
            gate_threshold, gate_passed ? "true" : "false");
        meta.addSection("kernel_gate", gate_json);
    }
    {
        char equiv_json[256];
        std::snprintf(equiv_json, sizeof(equiv_json),
                      "{\"pins\": %u, "
                      "\"cross_kernel_rel_dev\": %.3e, "
                      "\"cross_kernel_tolerance\": %.1e, "
                      "\"passed\": true}",
                      pins, cross_dev, cross_tolerance);
        meta.addSection("equivalence", equiv_json);
    }

    // ------------------------------------------------------------
    // Supervised sweep: the four schemes as supervised shards under
    // --retries/--deadline; outcome tallies land in the JSON
    // "supervisor" block (docs/ROBUSTNESS.md, "Supervision &
    // retry").
    // ------------------------------------------------------------
    const double deadline_ms = flags.getF64("deadline", 0.0);
    const unsigned retries =
        static_cast<unsigned>(flags.getU64("retries", 2));
    exec::Supervisor::Options sup_options;
    sup_options.max_retries = retries;
    sup_options.deadline_ms = deadline_ms;
    exec::Supervisor supervisor(pool, sup_options);
    std::vector<exec::SupervisedJob> jobs;
    for (EncodingScheme scheme : pin_schemes)
        jobs.push_back(supervisedTraceSweepJob(
            schemeName(scheme), trace_path, tech,
            makeConfig(scheme)));
    Result<exec::SupervisedReport> supervised =
        supervisor.run(jobs);
    if (!supervised.ok()) {
        std::fprintf(stderr, "FAIL: supervised sweep: %s\n",
                     supervised.error().describe().c_str());
        std::remove(trace_path.c_str());
        std::remove(ckpt_path.c_str());
        return 1;
    }
    const exec::SupervisedReport &sup = supervised.value();
    std::printf("\nsupervised sweep (retries=%u, deadline=%s):\n",
                retries,
                deadline_ms > 0.0 ? "armed" : "off");
    for (size_t i = 0; i < jobs.size(); ++i)
        std::printf("  %-28s %-11s attempts=%u records=%llu\n",
                    jobs[i].label.c_str(),
                    exec::jobOutcomeName(sup.records[i].outcome),
                    sup.records[i].attempts,
                    static_cast<unsigned long long>(
                        sup.reports[i].records));
    bench::SupervisorSummary summary;
    summary.enabled = true;
    summary.ok = sup.ok_count;
    summary.retried = sup.retried_count;
    summary.timed_out = sup.timed_out_count;
    summary.quarantined = sup.quarantined_count;
    summary.max_retries = retries;
    summary.deadline_ms = deadline_ms;
    meta.setSupervisor(summary);
    if (!sup.allSucceeded()) {
        std::fprintf(stderr,
                     "FAIL: %zu shard(s) did not complete under "
                     "supervision\n",
                     sup.timed_out_count + sup.quarantined_count);
        std::remove(trace_path.c_str());
        std::remove(ckpt_path.c_str());
        return 1;
    }

    meta.setCounters(pool.counters());
    meta.setPlacement(exec::pinPolicyName(pool.pinning()),
                      pool.workersPerNode());
    const std::string written = meta.writeJson(total_timer.ms(),
                                               json_path);
    if (!written.empty())
        std::printf("\nwrote %s\n", written.c_str());
    meta.printSummary(total_timer.ms());

    if (!flags.has("keep-trace")) {
        std::remove(trace_path.c_str());
        std::remove(ckpt_path.c_str());
    }
    if (!gate_passed) {
        std::fprintf(stderr,
                     "FAIL: packed kernel speedup %.2fx is below "
                     "the %.0fx gate\n",
                     speedup, gate_threshold);
        return 1;
    }
    return 0;
}
