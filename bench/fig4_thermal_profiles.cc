/**
 * @file
 * Reproduces Fig 4(a)-(d): interval energy dissipation and
 * average/maximum wire temperature versus time for the 130 nm data
 * and instruction address buses running the eon (integer) and swim
 * (floating-point) profiles.
 *
 * The paper simulates 300M cycles with 100K-cycle intervals and a
 * fourth-order Runge-Kutta thermal solve; the default here is scaled
 * to 30M cycles with a proportionally scaled stack time constant so
 * the ramp shape is preserved (--cycles=300000000 --stack-tau-ms=20
 * reproduces the paper's scale).
 *
 * Paper claims: DA buses dissipate more energy but IA buses
 * fluctuate more; average wire temperature saturates around 338 K
 * (~+20 K over the 318.15 K ambient).
 *
 * The two benchmark shards run under exec::Supervisor
 * (--retries=N --deadline=MS), so a transient fault retries and a
 * hung shard times out instead of wedging the figure run; the
 * supervision tallies are serialized into the BENCH_*.json.
 */

#include <array>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "sim/sweep.hh"
#include "exec/thread_pool.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/csv.hh"
#include "util/stats.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 30000000);
    const uint64_t interval = flags.getU64("interval", 100000);
    const double stack_tau = static_cast<double>(
        flags.getU64("stack-tau-ms",
                     cycles >= 200000000 ? 20 : 2)) * 1e-3;
    const uint64_t seed = flags.getU64("seed", 1);
    const ThermalSolver solver =
        bench::thermalSolverFromFlags(flags, ThermalSolver::Rk4);
    std::string csv_path = flags.get("csv", "");
    std::string json_path = flags.get("json", "");
    const bool want_json = flags.has("json") || !json_path.empty();

    const bench::ExecFlags exec_flags = bench::ExecFlags::parse(flags);
    exec::ThreadPool pool(exec_flags.threads, exec_flags.pinning);

    bench::banner("Figure 4 (HPCA-11 2005)",
                  "Energy and temperature profiles, 130 nm address "
                  "buses, eon and swim");
    std::printf("Cycles: %llu, interval: %llu, stack tau: %.1f ms "
                "(paper: 300M cycles, 100K, ~20 ms ramp); "
                "solver: %s; %u thread(s)\n\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(interval),
                stack_tau * 1e3, thermalSolverName(solver),
                pool.size());

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);

    std::unique_ptr<CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(csv_path);
        csv->header({"benchmark", "bus", "end_cycle",
                     "interval_energy_j", "avg_temp_k",
                     "max_temp_k", "threads"});
    }

    // The eon and swim simulations are independent; run them as two
    // supervised shards on the pool, each owning its
    // TwinBusSimulator, then print in fixed benchmark order so the
    // report is byte-identical at every thread count. The supervisor
    // applies --retries/--deadline and its outcome tallies land in
    // the JSON "supervisor" block (docs/ROBUSTNESS.md).
    const std::array<const char *, 2> bench_names = {"eon", "swim"};
    std::array<std::unique_ptr<TwinBusSimulator>, 2> twins;
    std::array<double, 2> shard_ms = {0.0, 0.0};

    bench::WallTimer run_timer;
    bench::RunMeta meta("fig4_thermal_profiles", pool.size());
    const exec::ExecCounters counters_before = pool.counters();

    const double deadline_ms = flags.getF64("deadline", 0.0);
    const unsigned retries =
        static_cast<unsigned>(flags.getU64("retries", 2));
    exec::Supervisor::Options sup_options;
    sup_options.max_retries = retries;
    sup_options.deadline_ms = deadline_ms;
    exec::Supervisor supervisor(pool, sup_options);

    std::vector<exec::SupervisedJob> jobs;
    for (size_t i = 0; i < bench_names.size(); ++i) {
        exec::SupervisedJob job;
        job.label = bench_names[i];
        // Every attempt rebuilds its twin from scratch — retry after
        // a transient fault replays the shard on fresh state.
        job.body = [&, i](exec::JobContext &ctx)
            -> Result<SweepReport> {
            bench::WallTimer shard;
            BusSimConfig config;
            config.data_width = 32;
            config.interval_cycles = interval;
            config.thermal.stack_mode = StackMode::Dynamic;
            config.thermal.stack_time_constant = Seconds{stack_tau};
            config.thermal.solver = solver;

            twins[i] = std::make_unique<TwinBusSimulator>(
                tech, config);
            SyntheticCpu cpu(benchmarkProfile(bench_names[i]),
                             seed, cycles);
            SweepReport report;
            report.records = twins[i]->run(cpu, pool);
            report.completed = ctx.pulse();
            shard_ms[i] = shard.ms();
            return report;
        };
        jobs.push_back(std::move(job));
    }
    Result<exec::SupervisedReport> supervised =
        supervisor.run(jobs);
    if (!supervised.ok()) {
        std::fprintf(stderr, "fig4: supervised run failed: %s\n",
                     supervised.error().describe().c_str());
        return 1;
    }
    const exec::SupervisedReport &sup = supervised.value();
    bench::SupervisorSummary summary;
    summary.enabled = true;
    summary.ok = sup.ok_count;
    summary.retried = sup.retried_count;
    summary.timed_out = sup.timed_out_count;
    summary.quarantined = sup.quarantined_count;
    summary.max_retries = retries;
    summary.deadline_ms = deadline_ms;
    meta.setSupervisor(summary);
    if (!sup.allSucceeded()) {
        for (size_t i = 0; i < jobs.size(); ++i)
            std::fprintf(stderr, "fig4: shard %s ended %s (%s)\n",
                         jobs[i].label.c_str(),
                         exec::jobOutcomeName(
                             sup.records[i].outcome),
                         sup.records[i].error.describe().c_str());
        return 1;
    }

    for (size_t b = 0; b < bench_names.size(); ++b) {
        const char *bench_name = bench_names[b];
        TwinBusSimulator &twin = *twins[b];
        meta.addShard(bench_name, shard_ms[b]);

        for (const char *bus_name : {"DA", "IA"}) {
            const BusSimulator &bus = bus_name[0] == 'D'
                ? twin.dataBus() : twin.instructionBus();
            const auto &samples = bus.samples();

            RunningStats energy, avg_t, max_t;
            for (const auto &s : samples) {
                energy.add(s.energy.total().raw());
                avg_t.add(s.avg_temperature.raw());
                max_t.add(s.max_temperature.raw());
            }

            std::printf("--- %s, %s bus: %zu intervals ---\n",
                        bench_name, bus_name, samples.size());
            std::printf("  transmissions          : %llu\n",
                        static_cast<unsigned long long>(
                            bus.transmissions()));
            std::printf("  total energy           : %.6e J "
                        "(self %.3e, coupling %.3e)\n",
                        bus.totalEnergy().total().raw(),
                        bus.totalEnergy().self.raw(),
                        bus.totalEnergy().coupling.raw());
            std::printf("  interval energy        : mean %.4e J, "
                        "stddev %.4e J (fluctuation %.1f%%)\n",
                        energy.mean(), energy.stddev(),
                        energy.mean() > 0.0
                            ? 100.0 * energy.stddev() / energy.mean()
                            : 0.0);
            std::printf("  avg temperature        : start %.2f K, "
                        "end %.2f K, max %.2f K\n",
                        samples.empty()
                            ? 0.0
                            : samples.front().avg_temperature.raw(),
                        samples.empty()
                            ? 0.0
                            : samples.back().avg_temperature.raw(),
                        avg_t.max());
            std::printf("  max (hottest wire)     : %.2f K "
                        "(+%.2f K over ambient)\n\n", max_t.max(),
                        max_t.max() - 318.15);

            if (csv) {
                for (const auto &s : samples) {
                    csv->beginRow();
                    csv->cell(std::string(bench_name));
                    csv->cell(std::string(bus_name));
                    csv->cell(s.end_cycle);
                    csv->cell(s.energy.total());
                    csv->cell(s.avg_temperature);
                    csv->cell(s.max_temperature);
                    csv->cell(static_cast<uint64_t>(pool.size()));
                    csv->endRow();
                }
            }
        }

        // Fig 4 shape checks printed inline.
        double da_energy =
            twin.dataBus().totalEnergy().total().raw();
        double ia_energy =
            twin.instructionBus().totalEnergy().total().raw();
        double da_per_tx = da_energy /
            static_cast<double>(twin.dataBus().transmissions());
        double ia_per_tx = ia_energy /
            static_cast<double>(
                twin.instructionBus().transmissions());
        std::printf("  [check] DA energy/transmission %.3e J vs IA "
                    "%.3e J (paper: DA higher)\n",
                    da_per_tx, ia_per_tx);
        std::printf("  [check] saturation: avg temp end %.2f K "
                    "(paper: ~338 K)\n",
                    twin.instructionBus()
                        .thermalNetwork()
                        .averageTemperature().raw());

        auto fluctuation = [](const BusSimulator &bus) {
            RunningStats s;
            for (const auto &sample : bus.samples())
                s.add(sample.energy.total().raw());
            return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
        };
        std::printf("  [check] interval-energy fluctuation: IA "
                    "%.1f%% vs DA %.1f%% (paper Fig 4: IA\n"
                    "          fluctuates more for the integer "
                    "benchmark eon)\n",
                    100.0 * fluctuation(twin.instructionBus()),
                    100.0 * fluctuation(twin.dataBus()));
        // Sec 5.3.1: fluctuating current loads the supply network
        // inductively.
        std::printf("  [check] supply-noise proxy max |dI/dt|: IA "
                    "%.3e A/s vs DA %.3e A/s\n\n",
                    twin.instructionBus().didtStats().max(),
                    twin.dataBus().didtStats().max());
    }

    meta.setCounters(pool.counters() - counters_before);
    meta.setPlacement(exec::pinPolicyName(pool.pinning()),
                      pool.workersPerNode());
    meta.printSummary(run_timer.ms());
    if (want_json) {
        std::string written = meta.writeJson(run_timer.ms(),
                                             json_path);
        if (!written.empty())
            std::printf("Shard timing JSON written to %s\n",
                        written.c_str());
    }
    if (csv)
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
