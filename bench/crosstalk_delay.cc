/**
 * @file
 * Crosstalk delay study (extension of the paper's Sec 1 crosstalk
 * motivation): the best/nominal/worst dynamic-delay spread per ITRS
 * node, and how often real address traffic — raw and encoded —
 * actually hits each delay class. Coupling-driven encoding (CBI) was
 * proposed partly to bound these classes; this bench measures
 * whether it does on realistic streams.
 */

#include <array>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "encoding/encoder.hh"
#include "energy/crosstalk.hh"
#include "trace/batch.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/bitops.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    const uint64_t cycles = flags.getU64("cycles", 200000);
    const Meters length{0.010};

    bench::banner("Crosstalk delay classes (Sec 1 extension)",
                  "Miller-degraded dynamic delay across nodes and "
                  "encoders");

    std::printf("Static spread per node (10 mm repeated line):\n");
    std::printf("%-8s %12s %12s %12s %10s\n", "Node", "best (ps)",
                "nominal (ps)", "worst (ps)", "worst/best");
    bench::rule(60);
    for (ItrsNode id : allItrsNodes()) {
        CrosstalkDelayModel model(itrsNode(id));
        double best = model.bestCaseDelay(length).raw();
        double nominal = model.nominalDelay(length).raw();
        double worst = model.worstCaseDelay(length).raw();
        std::printf("%-8s %12.1f %12.1f %12.1f %10.2f\n",
                    itrsNodeName(id), best * 1e12, nominal * 1e12,
                    worst * 1e12, worst / best);
    }

    // Delay-class census on real DA traffic under each encoder.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    CrosstalkDelayModel model(tech);
    std::printf("\nDelay-class census, eon DA stream at 130 nm "
                "(%llu cycles):\n",
                static_cast<unsigned long long>(cycles));
    std::printf("%-28s %9s %9s %9s %9s %9s | %11s\n", "Scheme",
                "class0%", "class1%", "class2%", "class3%",
                "class4%", "max bus(ps)");
    bench::rule(100);

    for (EncodingScheme scheme :
         {EncodingScheme::Unencoded, EncodingScheme::BusInvert,
          EncodingScheme::OddEvenBusInvert,
          EncodingScheme::CouplingDrivenBusInvert}) {
        auto encoder = makeEncoder(scheme, 32);
        encoder->reset(0);
        const unsigned width = encoder->busWidth();

        SyntheticCpu cpu(benchmarkProfile("eon"), 1, cycles);
        uint64_t prev_word = 0;
        std::array<uint64_t, 5> census{};
        uint64_t switching_lines = 0;
        double max_bus_delay = 0.0;
        forEachBatch(cpu, [&](const RecordBatch &batch) {
          for (const TraceRecord &r : batch) {
            if (r.kind == AccessKind::InstructionFetch)
                continue;
            uint64_t word = encoder->encode(r.address);
            uint64_t changed = (prev_word ^ word) & lowMask(width);
            for (uint64_t bits = changed; bits;) {
                unsigned line = static_cast<unsigned>(
                    std::countr_zero(bits));
                bits &= bits - 1;
                ++census[model.delayClass(prev_word, word, line,
                                          width)];
                ++switching_lines;
            }
            if (changed) {
                max_bus_delay = std::max(
                    max_bus_delay,
                    model.busDelay(prev_word, word, width,
                                   length).raw());
            }
            prev_word = word;
          }
        });

        std::printf("%-28s", schemeName(scheme));
        for (unsigned cls = 0; cls < 5; ++cls) {
            double pct = switching_lines
                ? 100.0 * static_cast<double>(census[cls]) /
                    static_cast<double>(switching_lines)
                : 0.0;
            std::printf(" %9.2f", pct);
        }
        std::printf(" | %11.1f\n", max_bus_delay * 1e12);
    }

    std::printf("\n[check] the worst/best spread widens with "
                "scaling (c_inter/c_line grows); on\n"
                "        real traffic most switching lines sit in "
                "classes 1-2, and the invert-\n"
                "        based encoders shave the class-3/4 tail "
                "only marginally — consistent\n"
                "        with the paper's skepticism about their "
                "benefits on address streams.\n");
    return 0;
}
