/**
 * @file
 * Reproduces the Sec 4.1.2 / Eq 7 analysis: static temperature rise
 * of the top-layer global wires due to heat generated in the lower
 * metal layers (carrying current at j_max) conducting up through the
 * ILD stack.
 *
 * Paper claims: with substrate at 318.15 K, switching plus
 * inter-layer heating raises 130 nm global bus wires by ~20-30 K;
 * the effect worsens dramatically at future nodes as k_ild
 * collapses and j_max grows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "tech/layer_stack.hh"
#include "thermal/interlayer.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    bench::Flags flags(argc, argv);
    (void)flags;

    bench::banner("Eq 7 / Sec 4.1.2 (HPCA-11 2005)",
                  "Inter-layer heat transfer: top-layer temperature "
                  "rise from lower-layer jmax heating");

    std::printf("%-8s %8s %14s %14s %14s %16s\n", "Node", "layers",
                "flux/layer", "dTheta (K)", "dTheta (K)",
                "dTheta (K)");
    std::printf("%-8s %8s %14s %14s %14s %16s\n", "", "",
                "(W/m^2)", "uniform", "taper 0.45",
                "coverage 0.25");
    bench::rule(80);

    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        MetalLayerStack uniform(tech);
        MetalLayerStack tapered(tech, 0.45);
        MetalLayerStack sparse(tech, 1.0, 0.25);
        InterLayerModel m_uniform(tech, uniform);
        InterLayerModel m_tapered(tech, tapered);
        InterLayerModel m_sparse(tech, sparse);
        std::printf("%-8s %8u %14.4e %14.2f %14.2f %16.2f\n",
                    tech.name.c_str(), tech.metal_layers,
                    m_uniform.layerFlux(uniform.size() - 1).raw(),
                    m_uniform.deltaTheta().raw(),
                    m_tapered.deltaTheta().raw(),
                    m_sparse.deltaTheta().raw());
    }

    std::printf("\nAmbient (substrate) temperature: 318.15 K.\n");
    const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack130(tech130);
    double d130 =
        InterLayerModel(tech130, stack130).deltaTheta().raw();
    std::printf("[check] 130 nm resting wire temperature: %.2f K "
                "(paper: wires saturate ~338 K,\n"
                "        i.e. ~+20 K; abstract quotes rises of "
                "~30 K including switching).\n", 318.15 + d130);
    std::printf("[check] scaling trend: dTheta grows steeply toward "
                "45 nm as k_ild falls\n"
                "        (0.6 -> 0.07 W/mK) and jmax rises — the "
                "paper's motivating alarm.\n");
    return 0;
}
