/**
 * @file
 * Produce a Fig 4-style thermal time series for a workload and dump
 * it to CSV for plotting: interval energy, average and hottest wire
 * temperature, per 100K-cycle interval.
 *
 * Usage:
 *   thermal_profile [benchmark] [cycles] [out.csv]
 *   e.g. thermal_profile swim 5000000 swim_thermal.csv
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/csv.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "swim";
    uint64_t cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 3000000;
    std::string out = argc > 3 ? argv[3]
                               : bench + "_thermal.csv";

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 100000;   // the paper's interval
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{1e-3};

    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile(bench), 1, cycles);
    // The paper skips a 500M-instruction warm-up; do a scaled skip.
    cpu.warmUp(cycles / 10);
    twin.run(cpu);

    CsvWriter csv(out);
    csv.header({"bus", "end_cycle", "interval_energy_j",
                "avg_temp_k", "max_temp_k", "transmissions"});
    for (const char *bus_name : {"IA", "DA"}) {
        const BusSimulator &bus = bus_name[0] == 'I'
            ? twin.instructionBus() : twin.dataBus();
        for (const auto &s : bus.samples()) {
            csv.beginRow();
            csv.cell(std::string(bus_name));
            csv.cell(s.end_cycle);
            csv.cell(s.energy.total());
            csv.cell(s.avg_temperature);
            csv.cell(s.max_temperature);
            csv.cell(s.transmissions);
            csv.endRow();
        }
    }
    csv.flush();

    std::printf("Simulated %s for %llu cycles at %s.\n",
                bench.c_str(),
                static_cast<unsigned long long>(cycles),
                tech.name.c_str());
    std::printf("IA bus: %zu intervals, final avg %.2f K, hottest "
                "%.2f K\n",
                twin.instructionBus().samples().size(),
                twin.instructionBus()
                    .thermalNetwork().averageTemperature().raw(),
                twin.instructionBus()
                    .thermalNetwork().maxTemperature().raw());
    std::printf("DA bus: %zu intervals, final avg %.2f K, hottest "
                "%.2f K\n",
                twin.dataBus().samples().size(),
                twin.dataBus()
                    .thermalNetwork().averageTemperature().raw(),
                twin.dataBus()
                    .thermalNetwork().maxTemperature().raw());
    std::printf("Time series written to %s\n", out.c_str());
    return 0;
}
