/**
 * @file
 * Run the built-in boundary-element field solver on a bus
 * cross-section and print the resulting capacitance structure — the
 * workflow the paper performs with FastCap in Sec 3.2.1.
 *
 * Usage:
 *   capacitance_extraction [node] [wires] [panels]
 *   e.g. capacitance_extraction 45nm 9 8
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "extraction/analytical.hh"
#include "extraction/bem.hh"
#include "util/logging.hh"

using namespace nanobus;

namespace {

ItrsNode
parseNode(const std::string &name)
{
    for (ItrsNode id : allItrsNodes())
        if (name == itrsNodeName(id))
            return id;
    fatal("unknown node '%s' (use 130nm/90nm/65nm/45nm)",
          name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ItrsNode node_id = parseNode(argc > 1 ? argv[1] : "130nm");
    unsigned wires = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 7;
    unsigned panels = argc > 3
        ? static_cast<unsigned>(std::atoi(argv[3])) : 8;

    const TechnologyNode &tech = itrsNode(node_id);
    BusGeometry geometry = BusGeometry::forTechnology(tech, wires);
    std::printf("Extracting %u-wire bus at %s: w=%g nm, t=%g nm, "
                "s=%g nm, h=%g nm, er=%.1f\n\n", wires,
                tech.name.c_str(), geometry.width.raw() * 1e9,
                geometry.thickness.raw() * 1e9, geometry.spacing.raw() * 1e9,
                geometry.height.raw() * 1e9, geometry.epsilon_r);

    BemExtractor::Options opts;
    opts.panels_per_width = panels;
    BemExtractor extractor(geometry, opts);
    std::printf("Discretization: %zu charge panels\n",
                extractor.panelCount());

    CapacitanceMatrix cm = extractor.extract();

    std::printf("\nGround capacitances (pF/m):\n ");
    for (unsigned i = 0; i < wires; ++i)
        std::printf(" %8.2f", cm.ground(i).raw() * 1e12);

    std::printf("\n\nCoupling matrix (pF/m):\n");
    for (unsigned i = 0; i < wires; ++i) {
        std::printf("  w%-2u", i);
        for (unsigned j = 0; j < wires; ++j) {
            if (i == j)
                std::printf(" %8s", ".");
            else
                std::printf(" %8.2f", cm.coupling(i, j).raw() * 1e12);
        }
        std::printf("\n");
    }

    unsigned centre = wires / 2;
    auto d = cm.distribution(centre);
    std::printf("\nCentre wire (w%u) distribution: Cgnd %.1f%%, "
                "CC1 %.1f%%, CC2 %.1f%%, CC3 %.1f%%, rest %.1f%%\n",
                centre, 100 * d.cgnd, 100 * d.cc1, 100 * d.cc2,
                100 * d.cc3, 100 * d.ccrest);
    std::printf("Non-adjacent share: %.1f%% (paper Fig 1(b): "
                "~8-10%%)\n", 100 * d.nonAdjacent());

    std::printf("\nCross-checks:\n");
    std::printf("  Sakurai self estimate   : %8.2f pF/m "
                "(isolated-line closed form)\n",
                sakuraiSelfCapacitance(geometry).raw() * 1e12);
    std::printf("  Sakurai coupling estim. : %8.2f pF/m\n",
                sakuraiCouplingCapacitance(geometry).raw() * 1e12);
    std::printf("  ITRS Table 1 cline      : %8.2f pF/m\n",
                tech.c_line.raw() * 1e12);
    std::printf("  ITRS Table 1 cinter     : %8.2f pF/m\n",
                tech.c_inter.raw() * 1e12);

    CapacitanceMatrix calibrated = cm.calibratedTo(tech);
    std::printf("\nAfter ITRS calibration the centre wire anchors "
                "to Table 1:\n  ground %.2f pF/m, adjacent %.2f "
                "pF/m\n", calibrated.ground(centre).raw() * 1e12,
                calibrated.coupling(centre, centre + 1).raw() * 1e12);
    return 0;
}
