/**
 * @file
 * Per-wire electromigration and delay outlook for an address bus
 * under a chosen workload — the downstream analysis the paper
 * motivates: "this temperature rise ... can cause performance
 * degradation due to changes in RC delay of wires ... and/or
 * decrease in electromigration reliability."
 *
 * Usage:
 *   reliability_report [benchmark] [cycles]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "tech/delay.hh"
#include "thermal/reliability.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "eon";
    uint64_t cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 2000000;

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 100000;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant =
        Seconds{1e-4}; // reach steady state

    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile(bench), 1, cycles);
    twin.run(cpu);

    const BusSimulator &bus = twin.instructionBus();
    const Seconds duration =
        static_cast<double>(cycles) / tech.f_clk;

    ReliabilityModel reliability(tech);
    DelayModel delay(tech);
    auto report = reliability.report(
        bus.thermalNetwork().temperatures(), bus.lineEnergies(),
        duration, config.wire_length);

    std::printf("Workload %s, %llu cycles, %s instruction address "
                "bus (32+%u lines)\n\n", bench.c_str(),
                static_cast<unsigned long long>(cycles),
                tech.name.c_str(), bus.busWidth() - 32);
    std::printf("%-5s %10s %14s %12s %12s\n", "Line", "temp (K)",
                "j_rms (MA/cm2)", "MTTF factor", "delay +%");
    for (int i = 0; i < 58; ++i)
        std::putchar('-');
    std::putchar('\n');

    double worst_mttf = 1e300;
    unsigned worst_line = 0;
    for (unsigned i = 0; i < report.size(); ++i) {
        const WireReliability &wire = report[i]; // inf = idle line
        std::printf("%-5u %10.3f %14.4f %12.3g %11.2f%%\n", i,
                    wire.temperature.raw(),
                    wire.current_density.raw() * 1e-10,
                    wire.mttf_factor,
                    100.0 * delay.delayDegradation(
                        config.wire_length, wire.temperature));
        if (wire.mttf_factor < worst_mttf) {
            worst_mttf = wire.mttf_factor;
            worst_line = i;
        }
    }

    std::printf("\nWorst wire: line %u with MTTF factor %.3g vs the "
                "(318.15 K, jmax) rating.\n", worst_line, worst_mttf);
    std::printf("Interpretation: factors >> 1 mean real address "
                "traffic stresses wires far less\nthan the "
                "worst-case (jmax) models of prior work assume — "
                "the paper's argument for\ntrace-driven thermal "
                "simulation; the *spread* across lines is what "
                "worst-case\nmodels cannot see.\n");
    return 0;
}
