/**
 * @file
 * nanobus quickstart: model a 32-bit address bus at 130 nm, send a
 * few addresses across it, and inspect per-line energy and wire
 * temperatures.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "fabric/bus_sim.hh"

using namespace nanobus;

int
main()
{
    // 1. Pick a technology node (Table 1 of the paper).
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    std::printf("Technology: %s (Vdd %.1f V, %.2f GHz, wire %g nm "
                "wide)\n\n", tech.name.c_str(), tech.vdd.raw(),
                tech.f_clk.raw() * 1e-9,
                tech.wire_width.raw() * 1e9);

    // 2. Configure a 32-bit bus with full coupling accounting and a
    //    dynamic thermal model (Eq 7 offset auto-derived).
    BusSimConfig config;
    config.data_width = 32;
    config.wire_length = Meters{0.010}; // 10 mm global bus
    config.interval_cycles = 1000;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{1e-5};

    BusSimulator bus(tech, config);
    std::printf("Bus: %u payload lines, %u physical lines, "
                "repeaters %s\n", config.data_width, bus.busWidth(),
                config.include_repeaters ? "on" : "off");

    // 3. Transmit an address burst: a sequential run, then a jump.
    uint32_t addr = 0x00010000;
    uint64_t cycle = 0;
    for (int i = 0; i < 64; ++i)
        bus.transmit(cycle++, addr += 4);
    bus.transmit(cycle++, 0x2fff0000);   // far jump: many bits flip
    for (int i = 0; i < 64; ++i)
        bus.transmit(cycle++, addr += 4);

    // 4. Inspect energies.
    const EnergyBreakdown &energy = bus.totalEnergy();
    std::printf("\nAfter %llu transmissions over %llu cycles:\n",
                static_cast<unsigned long long>(bus.transmissions()),
                static_cast<unsigned long long>(bus.currentCycle()));
    std::printf("  self energy     : %.4e J\n", energy.self.raw());
    std::printf("  coupling energy : %.4e J\n",
                energy.coupling.raw());
    std::printf("  total           : %.4e J\n",
                energy.total().raw());

    std::printf("\nPer-line energy (J), line 0 = LSB:\n");
    const auto &lines = bus.lineEnergies();
    for (unsigned i = 0; i < bus.busWidth(); ++i) {
        std::printf("  %8.2e%s", lines[i],
                    (i + 1) % 8 == 0 ? "\n" : "");
    }

    // 5. Keep the bus busy long enough for temperatures to move,
    //    then read the thermal state.
    for (int i = 0; i < 200000; ++i)
        bus.transmit(cycle++, addr += 4);
    const ThermalNetwork &thermal = bus.thermalNetwork();
    std::printf("\nThermal state after sustained traffic:\n");
    std::printf("  average wire temp : %.2f K\n",
                thermal.averageTemperature().raw());
    std::printf("  hottest wire temp : %.2f K (+%.2f K over the "
                "318.15 K ambient)\n", thermal.maxTemperature().raw(),
                thermal.maxTemperature().raw() - 318.15);
    std::printf("  BEOL stack temp   : %.2f K\n",
                thermal.stackTemperature().raw());
    return 0;
}
