/**
 * @file
 * Compare low-power encoding schemes on a SPEC-like workload of your
 * choice — the scenario the paper's Sec 5.2 motivates: should you
 * spend two extra bus lines on odd/even bus-invert for an address
 * bus?
 *
 * Usage:
 *   encoding_explorer [benchmark] [node] [cycles]
 *   e.g. encoding_explorer mcf 45nm 500000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "encoding/schemes.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"

using namespace nanobus;

namespace {

ItrsNode
parseNode(const std::string &name)
{
    for (ItrsNode id : allItrsNodes())
        if (name == itrsNodeName(id))
            return id;
    fatal("unknown node '%s' (use 130nm/90nm/65nm/45nm)",
          name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "eon";
    ItrsNode node_id = parseNode(argc > 2 ? argv[2] : "130nm");
    uint64_t cycles = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                               : 200000;
    const TechnologyNode &tech = itrsNode(node_id);

    // First characterize the address streams themselves.
    SyntheticCpu cpu(benchmarkProfile(bench), 1, cycles);
    TraceStatistics stats;
    stats.consume(cpu);
    std::printf("Workload %s at %s, %llu cycles:\n", bench.c_str(),
                tech.name.c_str(),
                static_cast<unsigned long long>(cycles));
    std::printf("  IA transactions %llu (mean Hamming %.2f), "
                "DA transactions %llu (mean Hamming %.2f)\n",
                static_cast<unsigned long long>(
                    stats.instruction().transactions),
                stats.instruction().hamming.mean(),
                static_cast<unsigned long long>(
                    stats.data().transactions),
                stats.data().hamming.mean());
    std::printf("  data bus idle fraction: %.1f%%\n\n",
                100.0 * stats.dataIdleFraction());

    // Now the energy comparison, all coupling pairs accounted.
    std::printf("%-28s %6s | %13s %13s | %13s\n", "Scheme", "lines",
                "IA energy (J)", "DA energy (J)", "total (J)");
    for (int i = 0; i < 84; ++i)
        std::putchar('-');
    std::putchar('\n');

    double unencoded_total = 0.0;
    for (EncodingScheme scheme :
         {EncodingScheme::Unencoded, EncodingScheme::BusInvert,
          EncodingScheme::OddEvenBusInvert,
          EncodingScheme::CouplingDrivenBusInvert,
          EncodingScheme::Gray, EncodingScheme::T0,
          EncodingScheme::Offset}) {
        EnergyCell cell = runEnergyStudy(bench, tech, scheme, 31,
                                         cycles);
        double total =
            (cell.instruction.total() + cell.data.total()).raw();
        if (scheme == EncodingScheme::Unencoded)
            unencoded_total = total;
        auto encoder = makeEncoder(scheme, 32);
        std::printf("%-28s %6u | %13.5e %13.5e | %13.5e (%+.1f%%)\n",
                    schemeName(scheme), encoder->busWidth(),
                    cell.instruction.total().raw(),
                    cell.data.total().raw(), total,
                    100.0 * (total - unencoded_total) /
                        unencoded_total);
    }

    // Segmented bus-invert is parameterized, so it goes through the
    // custom-encoder hook rather than the scheme enum.
    for (unsigned segments : {2u, 4u}) {
        BusSimConfig config;
        config.coupling_radius = 31;
        config.record_samples = false;
        config.thermal.stack_mode = StackMode::None;
        config.encoder_factory = [segments] {
            return std::make_unique<SegmentedBusInvert>(32,
                                                        segments);
        };
        TwinBusSimulator twin(tech, config);
        SyntheticCpu cpu(benchmarkProfile(bench), 1, cycles);
        twin.run(cpu);
        double total =
            (twin.instructionBus().totalEnergy().total() +
             twin.dataBus().totalEnergy().total()).raw();
        std::printf("%-28s %6u | %13.5e %13.5e | %13.5e (%+.1f%%)\n",
                    twin.instructionBus().encoder().name().c_str(),
                    32 + segments,
                    twin.instructionBus().totalEnergy()
                        .total().raw(),
                    twin.dataBus().totalEnergy().total().raw(),
                    total,
                    100.0 * (total - unencoded_total) /
                        unencoded_total);
    }

    std::printf("\nNegative %% = saves energy vs unencoded. The "
                "paper's finding: on real address\nstreams the "
                "bus-invert family offers little or nothing — check "
                "whether Gray/T0\n(which exploit sequentiality "
                "directly) do better on this workload.\n");
    return 0;
}
