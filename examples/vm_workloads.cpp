/**
 * @file
 * Execution-driven bus simulation: run genuinely executing kernels
 * on the mini-VM and push their fetch/load/store streams through
 * the energy + thermal models — the "power/performance simulator"
 * integration the paper proposes, as opposed to trace-driven replay.
 *
 * Usage:
 *   vm_workloads [kernel]    with kernel one of
 *                            memcpy|matmul|listwalk|stridedsum|all
 */

#include <cstdio>
#include <memory>
#include <string>

#include "sim/experiment.hh"
#include "util/logging.hh"
#include "vm/kernels.hh"

using namespace nanobus;
using namespace nanobus::kernels;

namespace {

struct KernelRun
{
    std::string name;
    std::unique_ptr<VirtualMachine> vm;
};

KernelRun
makeKernel(const std::string &name)
{
    KernelRun run;
    run.name = name;
    if (name == "memcpy") {
        run.vm = std::make_unique<VirtualMachine>(
            buildMemcpy(data_base, data_base + 0x100000, 20000));
    } else if (name == "matmul") {
        run.vm = std::make_unique<VirtualMachine>(
            buildMatMul(data_base, data_base + 0x100000,
                        data_base + 0x200000, 24));
        // Fill inputs so the loads touch mapped memory.
        for (uint32_t i = 0; i < 24 * 24; ++i) {
            run.vm->memory().storeWord(data_base + 4 * i, i + 1);
            run.vm->memory().storeWord(data_base + 0x100000 + 4 * i,
                                       2 * i + 1);
        }
    } else if (name == "listwalk") {
        // Build the list, then a walker over the same layout.
        VirtualMachine scratch(buildListWalk(0));
        uint32_t head = buildListInMemory(scratch, data_base,
                                          1 << 22, 30000, 3);
        run.vm = std::make_unique<VirtualMachine>(
            buildListWalk(head));
        buildListInMemory(*run.vm, data_base, 1 << 22, 30000, 3);
    } else if (name == "stridedsum") {
        run.vm = std::make_unique<VirtualMachine>(
            buildStridedSum(data_base, 20000, 16));
    } else {
        fatal("unknown kernel '%s' (memcpy|matmul|listwalk|"
              "stridedsum)", name.c_str());
    }
    return run;
}

void
simulate(KernelRun &run)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 10000;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;

    TwinBusSimulator twin(tech, config);
    uint64_t records = twin.run(*run.vm);

    const BusSimulator &ia = twin.instructionBus();
    const BusSimulator &da = twin.dataBus();
    double da_per_tx = da.transmissions()
        ? da.totalEnergy().total().raw() /
            static_cast<double>(da.transmissions())
        : 0.0;
    std::printf("%-11s | %8llu cycles %7llu records | IA %10.3e J | "
                "DA %10.3e J (%8.2e J/tx) | dT %6.4f K\n",
                run.name.c_str(),
                static_cast<unsigned long long>(run.vm->cycle()),
                static_cast<unsigned long long>(records),
                ia.totalEnergy().total().raw(),
                da.totalEnergy().total().raw(), da_per_tx,
                std::max(ia.thermalNetwork().maxTemperature(),
                         da.thermalNetwork().maxTemperature())
                    .raw() - 318.15);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string which = argc > 1 ? argv[1] : "all";
    std::printf("Execution-driven bus simulation at 130 nm "
                "(switching heat only):\n\n");
    if (which == "all") {
        for (const char *name :
             {"memcpy", "stridedsum", "matmul", "listwalk"}) {
            KernelRun run = makeKernel(name);
            simulate(run);
        }
    } else {
        KernelRun run = makeKernel(which);
        simulate(run);
    }
    std::printf("\nNote how the pointer-chasing walk pays the most "
                "per data transmission (random\naddress deltas flip "
                "many lines) while streaming kernels amortize — the "
                "same\ncontrast the paper's mcf-vs-swim profiles "
                "show, here from executed code.\n");
    return 0;
}
