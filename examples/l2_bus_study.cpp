/**
 * @file
 * Extension study: energy and thermal behaviour of the L1-to-L2
 * address bus. The paper traces only the processor-to-L1 buses; its
 * memory system (split write-through L1s over a unified write-back
 * L2) is implemented in the cache module, so the same energy/thermal
 * models can be applied one level down, where traffic is sparser but
 * each transaction is a cache-block address (different bit
 * statistics).
 *
 * Usage:
 *   l2_bus_study [benchmark] [cycles]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cache/hierarchy.hh"
#include "fabric/bus_sim.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

using namespace nanobus;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mcf";
    uint64_t cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 500000;

    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 10000;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{1e-4};

    // Processor-side buses.
    BusSimulator ia_bus(tech, config);
    BusSimulator da_bus(tech, config);
    // L1-to-L2 address bus fed by the hierarchy's miss/write traffic.
    BusSimulator l2_bus(tech, config);

    CacheHierarchy hierarchy;
    uint64_t l2_last_cycle = 0;
    hierarchy.setL2BusListener(
        [&](uint64_t cycle, uint32_t addr, bool) {
            if (cycle < l2_last_cycle)
                cycle = l2_last_cycle; // serialize same-cycle pairs
            l2_bus.transmit(cycle, addr);
            l2_last_cycle = cycle;
        });

    SyntheticCpu cpu(benchmarkProfile(bench), 1, cycles);
    TraceRecord r;
    uint64_t last_cycle = 0;
    while (cpu.next(r)) {
        last_cycle = r.cycle;
        if (r.kind == AccessKind::InstructionFetch)
            ia_bus.transmit(r.cycle, r.address);
        else
            da_bus.transmit(r.cycle, r.address);
        hierarchy.access(r);
    }
    ia_bus.advanceTo(last_cycle);
    da_bus.advanceTo(last_cycle);
    l2_bus.advanceTo(last_cycle);

    std::printf("Workload %s, %llu cycles at %s\n\n", bench.c_str(),
                static_cast<unsigned long long>(cycles),
                tech.name.c_str());
    std::printf("Cache behaviour:\n");
    std::printf("  L1I miss rate %.2f%%, L1D miss rate %.2f%%, L2 "
                "miss rate %.2f%%\n",
                100.0 * hierarchy.l1i().stats().missRate(),
                100.0 * hierarchy.l1d().stats().missRate(),
                100.0 * hierarchy.l2().stats().missRate());
    std::printf("  memory reads %llu, memory writes %llu\n\n",
                static_cast<unsigned long long>(
                    hierarchy.memoryReads()),
                static_cast<unsigned long long>(
                    hierarchy.memoryWrites()));

    auto report = [](const char *name, const BusSimulator &bus) {
        double per_tx = bus.transmissions()
            ? bus.totalEnergy().total().raw() /
                static_cast<double>(bus.transmissions())
            : 0.0;
        std::printf("%-10s tx %9llu | energy %.4e J "
                    "(%.3e J/tx) | max temp %.2f K\n", name,
                    static_cast<unsigned long long>(
                        bus.transmissions()),
                    bus.totalEnergy().total().raw(), per_tx,
                    bus.thermalNetwork().maxTemperature().raw());
    };
    report("CPU-L1 IA", ia_bus);
    report("CPU-L1 DA", da_bus);
    report("L1-L2", l2_bus);

    std::printf("\nObservations: the L1-L2 bus carries far fewer "
                "transactions but block-aligned\naddresses (low "
                "bits constant), so its per-transaction energy "
                "differs; with enough\nlocality it runs cooler than "
                "the processor buses despite identical wires.\n");
    return 0;
}
