/**
 * @file
 * Trace toolkit: generate, convert, and characterize address traces
 * from the command line — the workflow the paper performs with SHADE
 * (collect), custom scripts (filter), and its model (analyze).
 *
 * Usage:
 *   trace_toolkit gen <benchmark> <cycles> <out.{txt|nbt}> [seed]
 *   trace_toolkit convert <in.{txt|nbt}> <out.{txt|nbt}>
 *   trace_toolkit stats <in.{txt|nbt}>
 *
 * Files ending in .nbt use the packed binary format; anything else
 * is the human-readable text format.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "trace/io.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"

using namespace nanobus;

namespace {

bool
isBinaryPath(const std::string &path)
{
    return path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".nbt") == 0;
}

std::unique_ptr<TraceSource>
openTrace(const std::string &path)
{
    if (isBinaryPath(path))
        return std::make_unique<BinaryTraceReader>(path);
    return std::make_unique<TraceReader>(path);
}

void
writeAll(TraceSource &source, const std::string &path)
{
    TraceRecord r;
    uint64_t count = 0;
    if (isBinaryPath(path)) {
        BinaryTraceWriter writer(path);
        while (source.next(r)) {
            writer.write(r);
            ++count;
        }
        writer.flush();
    } else {
        TraceWriter writer(path);
        writer.comment("nanobus trace");
        while (source.next(r)) {
            writer.write(r);
            ++count;
        }
        writer.flush();
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(count), path.c_str());
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 5)
        fatal("usage: trace_toolkit gen <benchmark> <cycles> <out> "
              "[seed]");
    std::string bench = argv[2];
    uint64_t cycles = std::strtoull(argv[3], nullptr, 10);
    std::string out = argv[4];
    uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10)
                             : 1;
    SyntheticCpu cpu(benchmarkProfile(bench), seed, cycles);
    writeAll(cpu, out);
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        fatal("usage: trace_toolkit convert <in> <out>");
    auto in = openTrace(argv[2]);
    writeAll(*in, argv[3]);
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    if (argc < 3)
        fatal("usage: trace_toolkit stats <in>");
    auto in = openTrace(argv[2]);
    TraceStatistics stats;
    stats.consume(*in);

    std::printf("trace: %s\n", argv[2]);
    std::printf("  cycles (last seen)   : %llu\n",
                static_cast<unsigned long long>(stats.lastCycle()));
    std::printf("  instruction fetches  : %llu (mean Hamming %.3f, "
                "max %.0f)\n",
                static_cast<unsigned long long>(
                    stats.instruction().transactions),
                stats.instruction().hamming.mean(),
                stats.instruction().hamming.max());
    std::printf("  loads / stores       : %llu / %llu "
                "(mean Hamming %.3f)\n",
                static_cast<unsigned long long>(stats.loads()),
                static_cast<unsigned long long>(stats.stores()),
                stats.data().hamming.mean());
    std::printf("  data bus idle        : %.1f%%\n",
                100.0 * stats.dataIdleFraction());

    std::printf("  IA bit activity      :");
    for (unsigned bit = 0; bit < 32; bit += 4)
        std::printf(" b%u=%.3f", bit,
                    stats.instruction().bitActivity(bit));
    std::printf("\n  DA bit activity      :");
    for (unsigned bit = 0; bit < 32; bit += 4)
        std::printf(" b%u=%.3f", bit,
                    stats.data().bitActivity(bit));
    std::printf("\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        fatal("usage: trace_toolkit <gen|convert|stats> ...");
    std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "convert")
        return cmdConvert(argc, argv);
    if (cmd == "stats")
        return cmdStats(argc, argv);
    fatal("unknown command '%s'", cmd.c_str());
}
