#!/usr/bin/env python3
"""Repository lint gate for the nanobus physics stack.

Seven rules, motivated by bugs the dimensional-safety layer, the
checked-error layer, and the parallel runtime exist to prevent
(docs/STATIC_ANALYSIS.md, docs/PARALLELISM.md, docs/PIPELINE.md):

  discarded-result   A call to a Result<T>/Status-returning function
                     (try*/ *Checked) used as a bare statement. The
                     [[nodiscard]] attributes catch this at compile
                     time for direct calls; the lint also flags them
                     in code that is not compiled on every platform.
  raw-unit-double    A public header declares a function parameter
                     `double <name>_j|_w|_k|_f|_v|_s|_m` — a raw
                     double masquerading as a dimensioned value.
                     Such parameters must use the Quantity aliases
                     from util/units.hh (Joules, Watts, Kelvin, ...).
  using-namespace    `using namespace` at namespace scope in a
                     header leaks names into every includer.
  include-guard      A header missing its NANOBUS_*_HH include guard
                     (the repo convention; pragma once is not used).
  raw-thread         std::thread / std::jthread construction or
                     std::async outside src/exec/. All concurrency
                     goes through exec::ThreadPool so determinism,
                     nested-region policy, and counters hold
                     repo-wide. std::this_thread and non-spawning
                     uses (std::thread::id,
                     std::thread::hardware_concurrency) are allowed.
  raw-affinity       pthread_setaffinity_np / pthread_getaffinity_np
                     / sched_setaffinity outside src/exec/. Thread
                     placement goes through exec::Topology and
                     exec::pinThreadToCpu (src/exec/topology.hh) so
                     the PinPolicy contract, the per-node counters,
                     and the single portability shim hold repo-wide.
  raw-trace-next     Direct per-record TraceSource iteration
                     (`source.next(record)`) inside src/sim/ or
                     bench/ — the replay hot paths. Those loops must
                     go through BatchReader/PrefetchReader (or
                     SimPipeline) so batching and prefetch stay on
                     for every driver (docs/PIPELINE.md). Trace
                     *generation* loops and reference oracles carry
                     a justified NOLINT.
  raw-result-write   std::fopen / std::rename /
                     std::filesystem::rename inside src/ or bench/,
                     outside src/util/atomicfile.cc — the one
                     sanctioned temp+rename call site. Result files
                     (bench CSVs, BENCH_*.json, checkpoints) must be
                     published through writeFileAtomic so a crash
                     mid-write never leaves a torn artifact
                     (docs/ROBUSTNESS.md).

Escapes: append `// NOLINT(<rule>)` to the offending line, e.g.
`// NOLINT(raw-unit-double)`. Use sparingly and justify in a comment.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
`--self-test` runs the rules against embedded known-bad snippets and
fails if any rule stops firing.
"""

import argparse
import pathlib
import re
import sys

HEADER_GLOBS = ("src/**/*.hh",)
SOURCE_GLOBS = ("src/**/*.cc", "src/**/*.hh", "tests/**/*.cc",
                "bench/**/*.cc", "bench/**/*.hh",
                "examples/**/*.cpp")

NOLINT_RE = re.compile(r"//\s*NOLINT\(([a-z\-, ]+)\)")

# Statement-position calls to checked-error APIs whose return value is
# dropped. Matches `foo.trySolve(...);` / `tryFactor(...);` at the
# start of a statement, not `auto r = foo.trySolve(...)`.
DISCARDED_RESULT_RE = re.compile(
    r"^\s*(?:\w+(?:\.|->))?"
    r"(try[A-Z]\w*|integrateChecked|advanceChecked)\s*\(")

# `double foo_j,` style parameters in declarations. The suffix list
# mirrors the SI quantities the typed layer covers: joules, watts,
# kelvin, farads, volts, seconds, metres.
RAW_UNIT_PARAM_RE = re.compile(
    r"\bdouble\s+\w+_(?:j|w|k|f|v|s|m)\b\s*[,)=]")

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+\w")

# Raw concurrency primitives. `(?!\s*::)` lets the non-spawning
# nested names through (std::thread::id, hardware_concurrency);
# std::this_thread never matches because the type name differs.
RAW_THREAD_RE = re.compile(
    r"std::(?:thread|jthread)\b(?!\s*::)|std::async\s*\(")

RAW_THREAD_EXEMPT_PREFIX = "src/exec/"

# Raw affinity syscalls/pthread calls. Same exemption as raw-thread:
# src/exec/ owns the one sanctioned call site
# (exec::pinThreadToCpu in topology.cc).
RAW_AFFINITY_RE = re.compile(
    r"\b(?:pthread_(?:set|get)affinity_np|sched_setaffinity)\s*\(")

# Per-record trace iteration in the replay hot paths. `next` must be
# a member call directly followed by `(` — `nextBatch(` does not
# match, so the batch readers themselves stay clean — and must take
# an argument: TraceSource::next(record) does, while unrelated
# members like Rng::next() do not.
RAW_TRACE_NEXT_RE = re.compile(r"(?:\.|->)\s*next\s*\(\s*[^\s)]")

RAW_TRACE_NEXT_SCOPE_PREFIXES = ("src/sim/", "bench/")

# Raw result-file plumbing: fopen (C or std::), std::rename, and
# std::filesystem::rename. std::remove (cleanup of temp artifacts)
# stays allowed; the atomic-write helper is the one sanctioned
# caller.
RAW_RESULT_WRITE_RE = re.compile(
    r"\b(?:std::)?fopen\s*\(|\bstd::rename\s*\(|"
    r"\bstd::filesystem::rename\s*\(")

RAW_RESULT_WRITE_SCOPE_PREFIXES = ("src/", "bench/")
RAW_RESULT_WRITE_EXEMPT = "src/util/atomicfile.cc"

GUARD_RE = re.compile(r"#ifndef\s+NANOBUS_\w+_HH")


def suppressed(line, rule):
    m = NOLINT_RE.search(line)
    if not m:
        return False
    rules = {r.strip() for r in m.group(1).split(",")}
    return rule in rules


def lint_header_only_rules(path, text, findings):
    lines = text.splitlines()
    if not GUARD_RE.search(text):
        findings.append((path, 1, "include-guard",
                         "header lacks a NANOBUS_*_HH include guard"))
    for i, line in enumerate(lines, 1):
        if USING_NAMESPACE_RE.match(line) and not suppressed(
                line, "using-namespace"):
            findings.append(
                (path, i, "using-namespace",
                 "'using namespace' in a header leaks into every "
                 "includer"))
        if RAW_UNIT_PARAM_RE.search(line) and not suppressed(
                line, "raw-unit-double"):
            findings.append(
                (path, i, "raw-unit-double",
                 "raw double parameter with a unit-suffixed name; "
                 "use a Quantity alias from util/units.hh"))


def lint_source_rules(path, text, findings):
    posix_path = str(path).replace("\\", "/")
    allow_raw_threads = posix_path.startswith(
        RAW_THREAD_EXEMPT_PREFIX)
    in_replay_hot_path = posix_path.startswith(
        RAW_TRACE_NEXT_SCOPE_PREFIXES)
    in_result_write_scope = (
        posix_path.startswith(RAW_RESULT_WRITE_SCOPE_PREFIXES)
        and posix_path != RAW_RESULT_WRITE_EXEMPT)
    prev_code = ";"  # sentinel: first line starts a statement
    for i, line in enumerate(text.splitlines(), 1):
        # Only flag lines that genuinely begin a statement — a call
        # on a continuation line (e.g. the RHS of a multi-line
        # assignment or an argument list) is consumed by its context.
        prev_end = prev_code.rstrip()
        starts_statement = prev_end.endswith((";", "{", "}")) or (
            # Labels and access specifiers end with ':' and do start
            # a statement, but a range-for header split before its
            # sequence expression does not.
            prev_end.endswith(":") and "for (" not in prev_end)
        if (starts_statement and DISCARDED_RESULT_RE.match(line)
                and not suppressed(line, "discarded-result")):
            findings.append(
                (path, i, "discarded-result",
                 "Result/Status return value discarded; assign and "
                 "check it (or cast via std::ignore with a NOLINT)"))
        stripped = line.strip()
        if (not allow_raw_threads and stripped
                and not stripped.startswith(("//", "*", "/*"))
                and RAW_THREAD_RE.search(line)
                and not suppressed(line, "raw-thread")):
            findings.append(
                (path, i, "raw-thread",
                 "raw std::thread/std::jthread/std::async outside "
                 "src/exec/; use exec::ThreadPool (or the "
                 "exec/parallel.hh helpers)"))
        if (not allow_raw_threads and stripped
                and not stripped.startswith(("//", "*", "/*"))
                and RAW_AFFINITY_RE.search(line)
                and not suppressed(line, "raw-affinity")):
            findings.append(
                (path, i, "raw-affinity",
                 "raw affinity call outside src/exec/; use "
                 "exec::pinThreadToCpu / PinPolicy "
                 "(src/exec/topology.hh)"))
        if (in_replay_hot_path and stripped
                and not stripped.startswith(("//", "*", "/*"))
                and RAW_TRACE_NEXT_RE.search(line)
                and not suppressed(line, "raw-trace-next")):
            findings.append(
                (path, i, "raw-trace-next",
                 "per-record TraceSource::next() in a replay hot "
                 "path; stream through BatchReader/PrefetchReader "
                 "or SimPipeline (docs/PIPELINE.md)"))
        if (in_result_write_scope and stripped
                and not stripped.startswith(("//", "*", "/*"))
                and RAW_RESULT_WRITE_RE.search(line)
                and not suppressed(line, "raw-result-write")):
            findings.append(
                (path, i, "raw-result-write",
                 "raw fopen/rename result-file plumbing; publish "
                 "through writeFileAtomic (util/atomicfile.hh) so "
                 "readers never observe a torn file"))
        if stripped and not stripped.startswith("//"):
            prev_code = stripped


def run(root):
    findings = []
    root = pathlib.Path(root)
    seen = set()
    for glob in HEADER_GLOBS:
        for path in sorted(root.glob(glob)):
            text = path.read_text(encoding="utf-8")
            lint_header_only_rules(path.relative_to(root), text,
                                   findings)
    for glob in SOURCE_GLOBS:
        for path in sorted(root.glob(glob)):
            if path in seen:
                continue
            seen.add(path)
            text = path.read_text(encoding="utf-8")
            lint_source_rules(path.relative_to(root), text, findings)
    return findings


SELF_TEST_CASES = [
    # (rule expected to fire, is_header, snippet)
    ("discarded-result", False,
     "void f(Solver &s) {\n    s.trySolve(b);\n}\n"),
    ("discarded-result", False,
     "void f() {\n    integrateChecked(sys, y, dt);\n}\n"),
    ("raw-unit-double", True,
     "#ifndef NANOBUS_X_HH\nvoid step(double energy_j, int n);\n"
     "#endif // NANOBUS_X_HH\n"),
    ("raw-unit-double", True,
     "#ifndef NANOBUS_X_HH\n"
     "double mttf(double temp_k) const;\n"
     "#endif // NANOBUS_X_HH\n"),
    ("using-namespace", True,
     "#ifndef NANOBUS_X_HH\nusing namespace std;\n"
     "#endif // NANOBUS_X_HH\n"),
    ("include-guard", True,
     "#pragma once\nstruct X {};\n"),
    ("raw-thread", False,
     "void f() {\n    std::thread t(work);\n    t.join();\n}\n"),
    ("raw-thread", False,
     "void f() {\n    std::jthread w([](std::stop_token) {});\n}\n"),
    ("raw-thread", False,
     "void f() {\n    auto fut = std::async(work);\n}\n"),
    ("raw-affinity", False,
     "void f(pthread_t t, cpu_set_t *s) {\n"
     "    pthread_setaffinity_np(t, sizeof(*s), s);\n}\n"),
    ("raw-affinity", False,
     "void f(cpu_set_t *s) {\n"
     "    sched_setaffinity(0, sizeof(*s), s);\n}\n"),
]

RESULT_WRITE_SNIPPETS = [
    "void f() {\n    FILE *fp = std::fopen(\"out.json\", \"w\");\n"
    "    (void)fp;\n}\n",
    "void f() {\n    FILE *fp = fopen(\"out.csv\", \"w\");\n"
    "    (void)fp;\n}\n",
    "void f() {\n    std::rename(\"a.tmp\", \"a.json\");\n}\n",
    "void f() {\n"
    "    std::filesystem::rename(\"a.tmp\", \"a.json\");\n}\n",
]

SELF_TEST_CLEAN = [
    # Typed parameter: must NOT fire raw-unit-double.
    (True, "#ifndef NANOBUS_X_HH\nvoid step(Joules energy, int n);\n"
           "#endif // NANOBUS_X_HH\n"),
    # Consumed result: must NOT fire discarded-result.
    (False, "void f(Solver &s) {\n"
            "    auto r = s.trySolve(b);\n    (void)r;\n}\n"),
    # NOLINT escape honoured.
    (False, "void f(Solver &s) {\n"
            "    s.trySolve(b); // NOLINT(discarded-result)\n}\n"),
    # Non-spawning thread names: must NOT fire raw-thread.
    (False, "void f() {\n"
            "    std::this_thread::yield();\n"
            "    std::thread::id tid;\n"
            "    unsigned hw = std::thread::hardware_concurrency();"
            "\n    (void)hw;\n}\n"),
    # Comment mentions are fine.
    (False, "void f() {\n"
            "    // never use std::thread here\n}\n"),
    # raw-thread NOLINT escape honoured.
    (False, "void f() {\n"
            "    std::thread t(w); // NOLINT(raw-thread)\n}\n"),
    # raw-affinity NOLINT escape honoured, and comment mentions fine.
    (False, "void f(pthread_t t, cpu_set_t *s) {\n"
            "    pthread_setaffinity_np(t, sizeof(*s), s);"
            " // NOLINT(raw-affinity)\n}\n"),
    (False, "void f() {\n"
            "    // wraps pthread_setaffinity_np behind a shim\n}\n"),
]


def self_test():
    failures = []
    for rule, is_header, snippet in SELF_TEST_CASES:
        findings = []
        if is_header:
            lint_header_only_rules("snippet.hh", snippet, findings)
        else:
            lint_source_rules("snippet.cc", snippet, findings)
        if not any(f[2] == rule for f in findings):
            failures.append(f"rule '{rule}' failed to fire on:\n"
                            f"{snippet}")
    for is_header, snippet in SELF_TEST_CLEAN:
        findings = []
        if is_header:
            lint_header_only_rules("snippet.hh", snippet, findings)
            findings = [f for f in findings
                        if f[2] != "include-guard" or
                        "NANOBUS" not in snippet]
        else:
            lint_source_rules("snippet.cc", snippet, findings)
        if findings:
            failures.append(f"false positive {findings} on:\n"
                            f"{snippet}")
    # Path exemption: the identical spawning snippet is clean inside
    # src/exec/ (the pool's own implementation).
    exempt_snippet = "void f() {\n    std::jthread w(loop);\n}\n"
    findings = []
    lint_source_rules(pathlib.Path("src/exec/thread_pool.cc"),
                      exempt_snippet, findings)
    if findings:
        failures.append(f"raw-thread fired inside src/exec/: "
                        f"{findings}")
    findings = []
    lint_source_rules(pathlib.Path("src/thermal/network.cc"),
                      exempt_snippet, findings)
    if not any(f[2] == "raw-thread" for f in findings):
        failures.append("raw-thread failed to fire outside "
                        "src/exec/")
    # raw-affinity shares the src/exec/ exemption: the identical
    # pinning call is clean in the topology shim, a finding anywhere
    # else.
    affinity_snippet = ("void f(pthread_t t, cpu_set_t *s) {\n"
                        "    pthread_setaffinity_np(t, sizeof(*s), "
                        "s);\n}\n")
    findings = []
    lint_source_rules(pathlib.Path("src/exec/topology.cc"),
                      affinity_snippet, findings)
    if any(f[2] == "raw-affinity" for f in findings):
        failures.append(f"raw-affinity fired inside src/exec/: "
                        f"{findings}")
    findings = []
    lint_source_rules(pathlib.Path("src/sim/pipeline.cc"),
                      affinity_snippet, findings)
    if not any(f[2] == "raw-affinity" for f in findings):
        failures.append("raw-affinity failed to fire outside "
                        "src/exec/")
    # raw-trace-next is path-scoped to the replay hot paths: the same
    # per-record loop must fire in src/sim/ and bench/, stay silent
    # elsewhere (the batch readers in src/trace/ call next() by
    # design), honour NOLINT, and never match nextBatch().
    replay_loop = ("void f(TraceSource &s, TraceRecord &r) {\n"
                   "    while (s.next(r)) {}\n}\n")
    for scoped in ("src/sim/driver.cc", "bench/perf_x.cc"):
        findings = []
        lint_source_rules(pathlib.Path(scoped), replay_loop, findings)
        if not any(f[2] == "raw-trace-next" for f in findings):
            failures.append(f"raw-trace-next failed to fire in "
                            f"{scoped}")
    for clean_case in (
            ("src/trace/batch.cc", replay_loop),
            ("tests/sim/test_x.cc", replay_loop),
            ("src/sim/driver.cc",
             "void f(BatchSource &b) {\n"
             "    auto r = b.nextBatch();\n    (void)r;\n}\n"),
            ("src/sim/driver.cc",
             "void f(TraceSource &s, TraceRecord &r) {\n"
             "    while (s.next(r)) { // NOLINT(raw-trace-next)\n"
             "    }\n}\n"),
            ("src/sim/driver.cc",
             "void f() {\n    // calls source.next(record)\n}\n"),
            ("bench/perf_x.cc",
             "void f(Rng &rng) {\n"
             "    uint64_t x = rng.next() & 0xff;\n    (void)x;\n"
             "}\n")):
        findings = []
        lint_source_rules(pathlib.Path(clean_case[0]), clean_case[1],
                          findings)
        if any(f[2] == "raw-trace-next" for f in findings):
            failures.append(f"raw-trace-next false positive in "
                            f"{clean_case[0]} on:\n{clean_case[1]}")
    # raw-result-write: every raw plumbing form fires in src/ and
    # bench/, the atomic-write helper itself is exempt, code outside
    # the scope (tests may poke at files directly) stays silent, and
    # NOLINT is honoured.
    for snippet in RESULT_WRITE_SNIPPETS:
        for scoped in ("src/sim/report.cc", "bench/perf_x.cc",
                       "bench/bench_common.hh"):
            findings = []
            lint_source_rules(pathlib.Path(scoped), snippet, findings)
            if not any(f[2] == "raw-result-write" for f in findings):
                failures.append(f"raw-result-write failed to fire in "
                                f"{scoped} on:\n{snippet}")
    for clean_path in ("src/util/atomicfile.cc",
                       "tests/util/test_atomicfile.cc"):
        findings = []
        lint_source_rules(pathlib.Path(clean_path),
                          RESULT_WRITE_SNIPPETS[2], findings)
        if any(f[2] == "raw-result-write" for f in findings):
            failures.append(f"raw-result-write fired in exempt "
                            f"{clean_path}")
    for clean_snippet in (
            "void f() {\n"
            "    std::rename(\"a\", \"b\"); "
            "// NOLINT(raw-result-write)\n}\n",
            "void f() {\n    std::remove(\"stale.tmp\");\n}\n",
            "void f(TraceReader &r) {\n"
            "    auto s = r.reopen();\n    (void)s;\n}\n",
            "void f() {\n    // never call std::rename here\n}\n"):
        findings = []
        lint_source_rules(pathlib.Path("src/sim/report.cc"),
                          clean_snippet, findings)
        if any(f[2] == "raw-result-write" for f in findings):
            failures.append(f"raw-result-write false positive on:\n"
                            f"{clean_snippet}")
    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint self-test passed "
          f"({len(SELF_TEST_CASES)} firing cases, "
          f"{len(SELF_TEST_CLEAN)} clean cases)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on known-bad "
                             "input")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    findings = run(args.root)
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"\n{len(findings)} lint finding(s).", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
