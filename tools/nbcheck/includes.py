"""Include-graph construction and layering enforcement.

Both backends share this pass: the include graph comes straight from
the lexer's directive list, so it is identical whether or not
libclang is available (the preprocessor cannot hide an edge that the
layer police should see — unconditional and conditional includes are
both edges).

Checks emitted, all against the DAG declared in nbcheck.toml:

* ``layering-unknown-module`` — a quoted include resolves into a
  directory no declared module owns.
* ``layering-undeclared-edge`` — module A includes module B, B is on
  the same or a lower layer, but A does not list B in ``deps``.
* ``layering-back-edge`` — module A includes module B on a *higher*
  layer without a declared inversion. This is the violation that
  re-introduces cycles; inversions exist so the two sanctioned
  upward edges (trace -> exec, extraction -> exec) stay visible and
  justified rather than grandfathered.
"""

from __future__ import annotations

import os

from .findings import Finding


def resolve_include(target, includer_rel, include_dirs, root):
    """Resolve a quoted include to a repo-relative path, mimicking
    the compiler's search: next to the includer first, then the -I
    directories from the compilation database. Returns None for
    headers outside the repo (system or third-party)."""
    base = os.path.dirname(os.path.join(root, includer_rel))
    for directory in [base] + list(include_dirs):
        candidate = os.path.normpath(os.path.join(directory, target))
        if os.path.isfile(candidate):
            rel = os.path.relpath(candidate, root)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
            return None
    return None


def build_edges(file_includes, include_dirs, root):
    """Map {relpath: [Include]} to a list of resolved edges
    (src_rel, dst_rel, line). Angle-bracket includes are ignored —
    the project convention reserves them for system headers."""
    edges = []
    for src_rel, includes in sorted(file_includes.items()):
        for inc in includes:
            if inc.system:
                continue
            dst_rel = resolve_include(inc.target, src_rel,
                                      include_dirs, root)
            if dst_rel is not None:
                edges.append((src_rel, dst_rel, inc.line))
    return edges


def check_layering(cfg, edges):
    """Validate resolved include edges against the declared DAG."""
    findings = []
    for src_rel, dst_rel, line in edges:
        if not cfg.in_scope("layering", src_rel):
            continue
        src_mod = cfg.module_for(src_rel)
        dst_mod = cfg.module_for(dst_rel)
        if src_mod == dst_mod:
            continue
        if src_mod in cfg.unconstrained:
            # Top-of-stack consumers may include anything declared.
            if (dst_mod not in cfg.modules
                    and dst_mod not in cfg.unconstrained):
                findings.append(Finding(
                    src_rel, line, "layering-unknown-module",
                    f"include of '{dst_rel}' lands in '{dst_mod}', "
                    f"which is not a declared module"))
            continue
        if src_mod not in cfg.modules:
            findings.append(Finding(
                src_rel, line, "layering-unknown-module",
                f"file belongs to '{src_mod}', which is not a "
                f"declared module"))
            continue
        if dst_mod not in cfg.modules:
            findings.append(Finding(
                src_rel, line, "layering-unknown-module",
                f"include of '{dst_rel}' lands in '{dst_mod}', "
                f"which is not a declared module"))
            continue
        src = cfg.modules[src_mod]
        dst = cfg.modules[dst_mod]
        if dst_mod in src.inversions:
            continue
        if dst.layer > src.layer:
            findings.append(Finding(
                src_rel, line, "layering-back-edge",
                f"'{src_mod}' (layer {src.layer}) includes "
                f"'{dst_rel}' from '{dst_mod}' (layer {dst.layer}); "
                f"an upward edge needs a declared inversion in "
                f"nbcheck.toml"))
        elif dst_mod not in src.deps:
            findings.append(Finding(
                src_rel, line, "layering-undeclared-edge",
                f"'{src_mod}' includes '{dst_rel}' from '{dst_mod}' "
                f"but does not declare it in deps"))
    return findings
