"""nbcheck.toml loader and validator.

The config is the contract the tree is checked against:

* ``[layering.modules]`` declares the layer DAG — each module's layer
  number and the modules it may include. Dependencies on *higher*
  layers are only legal as explicit ``inversions`` with a written
  justification, and the union of deps + inversions must stay
  acyclic (an inversion is a declared exception, not a cycle
  licence).
* ``[scopes]`` maps each check family to the top-level directories it
  runs over.
* ``[[allow]]`` entries are the only sanctioned suppressions: a rule
  name plus a path glob plus a reason. The driver reports allowlist
  entries that matched nothing so they cannot rot silently.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field

CHECK_FAMILIES = ("layering", "determinism", "result", "fp-order")


class ConfigError(Exception):
    pass


@dataclass
class Module:
    name: str
    layer: int
    deps: list = field(default_factory=list)
    # name -> justification, for declared upward (inverted) edges
    inversions: dict = field(default_factory=dict)

    def allowed_targets(self):
        return set(self.deps) | set(self.inversions)


@dataclass
class AllowEntry:
    rule: str
    path: str
    reason: str
    hits: int = 0

    def matches(self, finding):
        if self.rule != "*" and self.rule != finding.rule:
            return False
        return (fnmatch.fnmatchcase(finding.path, self.path)
                or finding.path == self.path)


@dataclass
class Config:
    path: str
    modules: dict = field(default_factory=dict)
    # check family -> list of top-level directories
    scopes: dict = field(default_factory=dict)
    allow: list = field(default_factory=list)
    # modules whose edges are not checked (top-of-stack consumers)
    unconstrained: list = field(default_factory=list)
    # directories outside every scope (deliberately-bad fixtures)
    exclude: list = field(default_factory=list)

    def module_for(self, relpath):
        """Map a repo-relative path to its module name: src/<m>/...
        is module <m>; anything else belongs to its first path
        segment (bench/, tests/, examples/, tools/)."""
        parts = relpath.split("/")
        if not parts:
            return None
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]

    def in_scope(self, family, relpath):
        if self.excluded(relpath):
            return False
        roots = self.scopes.get(family, [])
        return any(relpath == r or relpath.startswith(r + "/")
                   for r in roots)

    def excluded(self, relpath):
        return any(relpath == e or relpath.startswith(e + "/")
                   for e in self.exclude)

    def filter_allowed(self, findings):
        """Split findings into (kept, suppressed); bumps hit counts
        on the entries that did the suppressing."""
        kept, suppressed = [], []
        for f in findings:
            entry = next((a for a in self.allow if a.matches(f)), None)
            if entry is None:
                kept.append(f)
            else:
                entry.hits += 1
                suppressed.append(f)
        return kept, suppressed

    def unused_allow_entries(self):
        return [a for a in self.allow if a.hits == 0]


def _check_dag(modules):
    """Validate layer directions and acyclicity of deps+inversions."""
    for mod in modules.values():
        for dep in mod.deps:
            if dep not in modules:
                raise ConfigError(
                    f"module '{mod.name}' depends on undeclared "
                    f"module '{dep}'")
            if modules[dep].layer > mod.layer:
                raise ConfigError(
                    f"module '{mod.name}' (layer {mod.layer}) lists "
                    f"'{dep}' (layer {modules[dep].layer}) as a plain "
                    f"dep; an upward edge must be declared as an "
                    f"inversion with a justification")
        for target, reason in mod.inversions.items():
            if target not in modules:
                raise ConfigError(
                    f"module '{mod.name}' declares an inversion to "
                    f"undeclared module '{target}'")
            if modules[target].layer <= mod.layer:
                raise ConfigError(
                    f"module '{mod.name}' declares '{target}' as an "
                    f"inversion, but it is not on a higher layer — "
                    f"list it as a plain dep")
            if not reason.strip():
                raise ConfigError(
                    f"inversion {mod.name} -> {target} needs a "
                    f"non-empty reason")
    # Kahn's algorithm over the union graph.
    indeg = {name: 0 for name in modules}
    for mod in modules.values():
        for target in mod.allowed_targets():
            indeg[target] += 1
    queue = sorted(name for name, d in indeg.items() if d == 0)
    seen = 0
    while queue:
        name = queue.pop()
        seen += 1
        for target in sorted(modules[name].allowed_targets()):
            indeg[target] -= 1
            if indeg[target] == 0:
                queue.append(target)
    if seen != len(modules):
        cyclic = sorted(n for n, d in indeg.items() if d > 0)
        raise ConfigError(
            "declared module graph has a cycle involving: "
            + ", ".join(cyclic))


def load(path):
    try:
        with open(path, "rb") as fh:
            raw = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as e:
        raise ConfigError(f"{path}: {e}") from e

    layering = raw.get("layering", {})
    modules = {}
    for name, spec in layering.get("modules", {}).items():
        if "layer" not in spec:
            raise ConfigError(f"module '{name}' is missing 'layer'")
        inversions = {}
        for inv in spec.get("inversions", []):
            if "to" not in inv:
                raise ConfigError(
                    f"module '{name}': inversion entry missing 'to'")
            inversions[inv["to"]] = inv.get("reason", "")
        modules[name] = Module(name=name, layer=int(spec["layer"]),
                               deps=list(spec.get("deps", [])),
                               inversions=inversions)
    if modules:
        _check_dag(modules)

    scopes = {}
    scopes_raw = dict(raw.get("scopes", {}))
    exclude = [e.rstrip("/")
               for e in scopes_raw.pop("exclude", [])]
    for family, roots in scopes_raw.items():
        if family not in CHECK_FAMILIES:
            raise ConfigError(
                f"[scopes] has unknown check family '{family}' "
                f"(known: {', '.join(CHECK_FAMILIES)})")
        scopes[family] = [r.rstrip("/") for r in roots]

    allow = []
    for entry in raw.get("allow", []):
        if "rule" not in entry or "path" not in entry:
            raise ConfigError(
                "[[allow]] entries need 'rule' and 'path'")
        if not entry.get("reason", "").strip():
            raise ConfigError(
                f"[[allow]] {entry['rule']} @ {entry['path']}: a "
                f"non-empty 'reason' is required")
        allow.append(AllowEntry(rule=entry["rule"],
                                path=entry["path"],
                                reason=entry["reason"]))

    unconstrained = list(layering.get("unconstrained", []))
    return Config(path=path, modules=modules, scopes=scopes,
                  allow=allow, unconstrained=unconstrained,
                  exclude=exclude)
