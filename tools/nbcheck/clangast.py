"""libclang (AST) backend.

When the ``clang.cindex`` Python bindings are importable, nbcheck
parses every translation unit in the compilation database with the
TU's own flags and walks real AST cursors instead of tokens. Project
headers are vetted through the TUs that include them, with findings
deduplicated across TUs.

The backend emits the same rule identifiers as the token backend, so
config allowlists apply unchanged — and the fixture suite under
tests/analyze runs against both backends whenever this one is
available, which is what keeps the two in agreement.
"""

from __future__ import annotations

import re

from .findings import Finding

_CLOCK_TYPE_RE = re.compile(
    r"std::(?:chrono::|steady_clock|system_clock"
    r"|high_resolution_clock)")
_PTR_KEYED_RE = re.compile(
    r"std::(?:__1::)?(?:multi)?(?:map|set|unordered_map"
    r"|unordered_set)<[^<,>]*\*")
_WALLCLOCK_CALLS = {"gettimeofday", "clock_gettime", "timespec_get"}
_RAND_CALLS = {"rand", "srand", "rand_r", "drand48", "lrand48",
               "mrand48", "random_shuffle"}
_EXIT_CALLS = {"exit", "_Exit", "_exit", "quick_exit"}


def available():
    """True when the libclang bindings import AND can create an
    index (a missing libclang.so fails here, not at import)."""
    try:
        from clang import cindex
        cindex.Index.create()
        return True
    except Exception:
        return False


def unavailable_reason():
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return ("the 'clang' Python bindings are not installed "
                "(python3-clang)")
    try:
        from clang import cindex
        cindex.Index.create()
    except Exception as e:
        return f"libclang failed to load: {e}"
    return None


class ClangScanner:
    """Scans compilation-database TUs; accumulates deduplicated
    findings for every in-repo file the TUs pull in."""

    def __init__(self, root, path_filter):
        from clang import cindex
        self._cindex = cindex
        self._index = cindex.Index.create()
        self._root = root
        # path_filter(relpath) -> set of families to run (may be
        # empty, meaning the file is out of every scope)
        self._path_filter = path_filter
        self._seen = set()
        self.findings = []
        self.parse_errors = []

    # -- helpers --------------------------------------------------

    def _relpath(self, location):
        try:
            f = location.file
            if f is None:
                return None
            import os
            path = os.path.realpath(f.name)
            root = os.path.realpath(self._root)
            if not path.startswith(root + os.sep):
                return None
            return os.path.relpath(path, root).replace(os.sep, "/")
        except Exception:
            return None

    def _report(self, cursor, rule, message):
        rel = self._relpath(cursor.location)
        if rel is None:
            return
        families = self._path_filter(rel)
        if _family_of(rule) not in families:
            return
        key = (rel, cursor.location.line, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(rel, cursor.location.line, rule, message))

    # -- per-TU scan ----------------------------------------------

    def scan_tu(self, command):
        """Parse one compile command and walk its AST."""
        args = [a for a in command.args[1:]
                if a not in ("-c", "-o") and not a.endswith(".o")
                and a != command.file]
        try:
            tu = self._index.parse(command.file, args=args)
        except Exception as e:
            self.parse_errors.append(f"{command.file}: {e}")
            return
        severe = [d for d in tu.diagnostics if d.severity >= 4]
        if severe:
            self.parse_errors.append(
                f"{command.file}: {severe[0].spelling}")
            return
        self._walk(tu.cursor, inside_parallel_for=0)

    def _walk(self, cursor, inside_parallel_for):
        ck = self._cindex.CursorKind
        for child in cursor.get_children():
            kind = child.kind
            entered = inside_parallel_for
            if kind == ck.CXX_THROW_EXPR:
                self._report(child, "result-throw",
                             "exceptions do not cross this "
                             "codebase's API boundaries; latch an "
                             "Error into Result<T> instead")
            elif kind == ck.CALL_EXPR:
                name = child.spelling or ""
                if name == "parallelFor":
                    entered += 1
                self._check_call(child, name)
            elif kind == ck.NAMESPACE_REF:
                if child.spelling == "chrono":
                    self._report(child, "det-wallclock",
                                 "std::chrono outside an "
                                 "allowlisted timing-report site")
            elif kind in (ck.TYPE_REF, ck.VAR_DECL, ck.FIELD_DECL):
                self._check_type(child)
            elif kind == ck.LAMBDA_EXPR and inside_parallel_for:
                self._check_lambda(child)
            self._walk(child, entered)

    def _check_call(self, cursor, name):
        # A *member* that shares a banned spelling (JobContext::
        # abort, Session::exit) is not the process terminator.
        if name in (_EXIT_CALLS | _RAND_CALLS
                    | _WALLCLOCK_CALLS | {"abort", "terminate"}) \
                and _is_method(cursor, self._cindex.CursorKind):
            return
        if name in _EXIT_CALLS:
            self._report(cursor, "result-exit",
                         f"'{name}()' skips destructors and "
                         f"swallows the error path; propagate a "
                         f"Result or call fatal()")
        elif name == "abort":
            self._report(cursor, "result-abort",
                         "'abort()' outside the sanctioned panic "
                         "path; propagate a Result or call "
                         "panic()/fatal()")
        elif name == "terminate" and _qualified_in(cursor, "std"):
            self._report(cursor, "result-abort",
                         "'std::terminate()' outside the sanctioned "
                         "panic path")
        elif name in _RAND_CALLS:
            self._report(cursor, "det-legacy-rand",
                         f"legacy RNG '{name}()' is seeded from "
                         f"global state; use util::Rng with an "
                         f"explicit seed")
        elif name in _WALLCLOCK_CALLS:
            self._report(cursor, "det-wallclock",
                         f"wall-clock call '{name}()' outside an "
                         f"allowlisted timing-report site")
        elif name == "get_id" and _qualified_in(cursor,
                                                "this_thread",
                                                "thread"):
            self._report(cursor, "det-thread-id",
                         "thread-id reads vary run to run; key on "
                         "the pool's dense worker index instead")

    def _check_type(self, cursor):
        try:
            spelling = cursor.type.get_canonical().spelling
        except Exception:
            return
        if "random_device" in spelling:
            self._report(cursor, "det-random-device",
                         "std::random_device is nondeterministic "
                         "by design; use util::Rng with an "
                         "explicit seed")
        elif _PTR_KEYED_RE.search(spelling):
            self._report(cursor, "det-pointer-keyed",
                         "container keyed on a pointer orders (or "
                         "hashes) by address, which varies run to "
                         "run; key on a stable index")
        elif _CLOCK_TYPE_RE.search(spelling):
            self._report(cursor, "det-wallclock",
                         "std::chrono type outside an allowlisted "
                         "timing-report site")

    def _check_lambda(self, lambda_cursor):
        ck = self._cindex.CursorKind
        locals_ = set()

        def collect_decls(c):
            for child in c.get_children():
                if child.kind in (ck.VAR_DECL, ck.PARM_DECL):
                    locals_.add(child.spelling)
                collect_decls(child)

        collect_decls(lambda_cursor)

        def vet(c):
            for child in c.get_children():
                if child.kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                    op = _operator_token(child)
                    if op in ("+=", "-="):
                        base = _lhs_base_name(child, ck)
                        if base and base not in locals_:
                            self._report(
                                child, "fp-accum-parallel-for",
                                f"compound assignment to captured "
                                f"'{base}' inside a parallelFor "
                                f"body reorders reductions across "
                                f"pool sizes; use parallelReduce")
                vet(child)

        vet(lambda_cursor)


def _operator_token(cursor):
    try:
        for tok in cursor.get_tokens():
            if tok.spelling in ("+=", "-=", "*=", "/=", "%=", "&=",
                                "|=", "^=", "<<=", ">>="):
                return tok.spelling
    except Exception:
        pass
    return None


def _lhs_base_name(assign_cursor, ck):
    """Innermost DECL_REF under the LHS of a compound assignment,
    or None for subscripted targets (`out[i] += v` writes disjoint
    elements and is deterministic — same exemption as the token
    backend)."""
    try:
        children = list(assign_cursor.get_children())
        if not children:
            return None
        node = children[0]
        while True:
            if node.kind == ck.ARRAY_SUBSCRIPT_EXPR:
                return None
            if node.kind == ck.DECL_REF_EXPR:
                return node.spelling
            subs = list(node.get_children())
            if not subs:
                return None
            node = subs[0]
    except Exception:
        return None


def _is_method(cursor, ck):
    """True when the call's referenced callee is a class member."""
    try:
        ref = cursor.referenced
        if ref is None:
            return False
        parent = ref.semantic_parent
        return parent is not None and parent.kind in (
            ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE,
            ck.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION)
    except Exception:
        return False


def _qualified_in(cursor, *namespaces):
    try:
        ref = cursor.referenced
        parent = ref.semantic_parent if ref is not None else None
        while parent is not None:
            if parent.spelling in namespaces:
                return True
            parent = parent.semantic_parent
    except Exception:
        pass
    return False


def _family_of(rule):
    if rule.startswith("det-"):
        return "determinism"
    if rule.startswith("result-"):
        return "result"
    if rule.startswith("fp-"):
        return "fp-order"
    return "layering"
