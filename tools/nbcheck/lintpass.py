"""Front-end pass wrapping tools/lint.py.

The regex lint predates nbcheck; its rules (discarded-result,
raw-thread, raw-affinity, raw-trace-next, raw-result-write, ...)
now run as the first pass of the same driver, so `nbcheck` is the
one static-analysis entry point. The lint keeps its own in-source
``NOLINT(<rule>)`` escape hatch; nbcheck's allowlist applies on top
of that, keyed on the same rule names.
"""

from __future__ import annotations

import importlib.util
import os

from .findings import Finding


def _load_lint_module():
    here = os.path.dirname(os.path.abspath(__file__))
    lint_path = os.path.join(os.path.dirname(here), "lint.py")
    spec = importlib.util.spec_from_file_location("nbcheck_lint",
                                                  lint_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run(root):
    """Run the repo lint over `root`; returns nbcheck Findings."""
    lint = _load_lint_module()
    findings = []
    for path, line, rule, message in lint.run(root):
        rel = str(path).replace(os.sep, "/")
        findings.append(Finding(rel, int(line), rule, message))
    return findings


def self_test():
    """Delegate to the lint's own rule self-test. Returns its exit
    status (0 = every rule fires on known-bad input)."""
    return _load_lint_module().self_test()
