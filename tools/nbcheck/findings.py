"""Finding model shared by every nbcheck pass."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One diagnostic. `path` is repo-relative with forward slashes;
    `rule` is the stable identifier the allowlist keys on."""
    path: str
    line: int
    rule: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self):
        return {"path": self.path, "line": self.line,
                "rule": self.rule, "message": self.message}


def sort_key(finding):
    return (finding.path, finding.line, finding.rule, finding.message)
