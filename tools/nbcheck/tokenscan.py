"""Token-stream backend: the four check families over lexer output.

This backend is complete on its own — it gates the tree in ctest and
anywhere libclang is not installed. The libclang backend (clangast)
emits the same rule identifiers so allowlists apply to either.

Heuristics are deliberately biased toward flagging: a false positive
costs one reviewed allowlist line with a reason; a false negative
costs a nondeterministic run nobody can bisect.
"""

from __future__ import annotations

from .findings import Finding

# Identifier-kind tokens that mean "expression context" when they
# appear right before a call — everything else identifier-like in
# that slot is a declarator's type and makes `name(` a declaration.
_EXPR_KEYWORDS = {
    "return", "co_return", "co_yield", "else", "do", "case",
    "throw", "goto", "new", "delete", "and", "or", "not",
}

_WALLCLOCK_IDS = {"steady_clock", "system_clock",
                  "high_resolution_clock"}
_WALLCLOCK_CALLS = {"gettimeofday", "clock_gettime", "timespec_get"}
_RAND_CALLS = {"rand", "srand", "rand_r", "drand48", "lrand48",
               "mrand48", "random_shuffle"}
_EXIT_CALLS = {"exit", "_Exit", "_exit", "quick_exit"}
_PTR_KEYED = {"map", "set", "unordered_map", "unordered_set",
              "multimap", "multiset"}


def _prev(tokens, i):
    return tokens[i - 1] if i > 0 else None


def _next(tokens, i):
    return tokens[i + 1] if i + 1 < len(tokens) else None


def _is_std_qualified(tokens, i):
    """True when tokens[i] is written as std::tokens[i]."""
    p1 = _prev(tokens, i)
    if p1 is None or p1.value != "::":
        return False
    p2 = tokens[i - 2] if i >= 2 else None
    return p2 is not None and p2.value == "std"


def _is_call_position(tokens, i):
    """True when the identifier at i is a call in expression
    context: followed by '(', not a member access on some object,
    and not a declaration (or out-of-line definition) of a function
    with that name."""
    nxt = _next(tokens, i)
    if nxt is None or nxt.value != "(":
        return False
    # Walk back over a `ns::ns::` qualifier chain to the head, then
    # judge the token before it: an identifier there is a return
    # type, making this a declaration, not a call.
    head = i
    while head >= 2 and tokens[head - 1].value == "::" \
            and tokens[head - 2].kind == "id":
        head -= 2
    p1 = _prev(tokens, head)
    if p1 is None:
        return head != i  # qualified at file start is a call
    if head == i and p1.value in (".", "->"):
        return False
    if head == i and p1.value == "::":
        return False  # qualifier is not a plain identifier; odd
    if p1.kind == "id" and p1.value not in _EXPR_KEYWORDS:
        return False  # `void abort()` / `void Ctx::abort()` — decl
    return True


def _match_forward(tokens, i, open_, close):
    """Index of the token matching the opener at i, or len(tokens)."""
    depth = 0
    for j in range(i, len(tokens)):
        v = tokens[j].value
        if v == open_:
            depth += 1
        elif v == close:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def scan_determinism(path, tokens, findings):
    reported = set()

    def report(line, rule, message):
        if (line, rule) not in reported:
            reported.add((line, rule))
            findings.append(Finding(path, line, rule, message))

    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        v = tok.value
        if v == "chrono" and _is_std_qualified(tokens, i):
            report(tok.line, "det-wallclock",
                   "std::chrono outside an allowlisted "
                   "timing-report site; simulation results must not "
                   "depend on wall-clock reads")
        elif v in _WALLCLOCK_IDS:
            report(tok.line, "det-wallclock",
                   f"wall-clock source '{v}' outside an allowlisted "
                   f"timing-report site")
        elif v in _WALLCLOCK_CALLS and _is_call_position(tokens, i):
            report(tok.line, "det-wallclock",
                   f"wall-clock call '{v}()' outside an allowlisted "
                   f"timing-report site")
        elif v in _RAND_CALLS and _is_call_position(tokens, i):
            report(tok.line, "det-legacy-rand",
                   f"legacy RNG '{v}()' is seeded from global state; "
                   f"use util::Rng with an explicit seed")
        elif v == "random_device":
            report(tok.line, "det-random-device",
                   "std::random_device is nondeterministic by "
                   "design; use util::Rng with an explicit seed")
        elif v == "get_id" and _is_call_position(tokens, i):
            report(tok.line, "det-thread-id",
                   "thread-id reads vary run to run; key on the "
                   "pool's dense worker index instead")
        elif (v in _PTR_KEYED and _is_std_qualified(tokens, i)
              and _next(tokens, i) is not None
              and _next(tokens, i).value == "<"):
            if _pointer_key(tokens, i + 1):
                report(tok.line, "det-pointer-keyed",
                       f"std::{v} keyed on a pointer orders (or "
                       f"hashes) by address, which varies run to "
                       f"run; key on a stable index")


def _pointer_key(tokens, open_angle):
    """True if the first template argument after tokens[open_angle]
    ('<') contains a top-level '*'."""
    depth = 1
    j = open_angle + 1
    while j < len(tokens) and depth > 0:
        v = tokens[j].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
        elif v == ">>":
            depth -= 2
        elif v in ("(", "["):
            j = _match_forward(tokens, j, v,
                               ")" if v == "(" else "]")
        elif depth == 1:
            if v == ",":
                return False  # key type ended without a '*'
            if v == "*":
                return True
            if v == ";":
                return False  # not a template argument list after all
        j += 1
    return False


def scan_result(path, tokens, findings):
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        v = tok.value
        if v == "throw":
            nxt = _next(tokens, i)
            if nxt is not None and nxt.value == "(":
                continue  # legacy `throw()` exception spec
            findings.append(Finding(
                path, tok.line, "result-throw",
                "exceptions do not cross this codebase's API "
                "boundaries; latch an Error into Result<T> instead "
                "(docs/ROBUSTNESS.md)"))
        elif v in _EXIT_CALLS and _is_call_position(tokens, i):
            findings.append(Finding(
                path, tok.line, "result-exit",
                f"'{v}()' skips destructors and swallows the error "
                f"path; propagate a Result or call fatal()"))
        elif v == "abort" and _is_call_position(tokens, i):
            findings.append(Finding(
                path, tok.line, "result-abort",
                "'abort()' outside the sanctioned panic path; "
                "propagate a Result or call panic()/fatal()"))
        elif (v == "terminate" and _is_call_position(tokens, i)
              and _is_std_qualified(tokens, i)):
            findings.append(Finding(
                path, tok.line, "result-abort",
                "'std::terminate()' outside the sanctioned panic "
                "path; propagate a Result or call panic()/fatal()"))


def scan_fp_order(path, tokens, findings):
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if (tok.kind == "id" and tok.value == "parallelFor"
                and _next(tokens, i) is not None
                and _next(tokens, i).value == "("):
            close = _match_forward(tokens, i + 1, "(", ")")
            _scan_lambdas(path, tokens, i + 2, close, findings)
            i = close
        i += 1


def _scan_lambdas(path, tokens, begin, end, findings):
    """Find lambda literals between begin and end and vet their
    bodies for compound assignment to captured state."""
    j = begin
    while j < end:
        tok = tokens[j]
        if tok.value == "[" and _looks_like_capture_list(tokens, j):
            close_bracket = _match_forward(tokens, j, "[", "]")
            body_open = _find_lambda_body(tokens, close_bracket + 1,
                                          end)
            if body_open is not None:
                body_close = _match_forward(tokens, body_open,
                                            "{", "}")
                _check_lambda_body(path, tokens, close_bracket,
                                   body_open, body_close, findings)
                j = body_close
        j += 1


def _looks_like_capture_list(tokens, i):
    p = _prev(tokens, i)
    if p is None:
        return True
    # After an identifier, ']' or ')' a '[' is a subscript.
    return not (p.kind in ("id", "num")
                or p.value in ("]", ")"))


def _find_lambda_body(tokens, i, end):
    """After a capture list: optional (params), optional specifiers
    and trailing return type, then '{'. Returns its index or None."""
    if i < end and tokens[i].value == "(":
        i = _match_forward(tokens, i, "(", ")") + 1
    budget = 16  # specifiers / trailing return type
    while i < end and budget > 0:
        v = tokens[i].value
        if v == "{":
            return i
        if v in (";", ",", ")", "}"):
            return None  # not a lambda after all
        i += 1
        budget -= 1
    return None


def _check_lambda_body(path, tokens, params_begin, body_open,
                       body_close, findings):
    for j in range(body_open + 1, body_close):
        if tokens[j].value not in ("+=", "-="):
            continue
        if tokens[j].kind != "punct":
            continue
        prev = _prev(tokens, j)
        if prev is None or prev.kind != "id":
            continue  # `x[i] +=` is per-element and deterministic
        base = _member_chain_base(tokens, j - 1)
        if base is None:
            continue
        base_tok = tokens[base]
        if _declared_between(tokens, params_begin, j,
                             base_tok.value):
            continue
        findings.append(Finding(
            path, base_tok.line, "fp-accum-parallel-for",
            f"compound assignment to captured '{base_tok.value}' "
            f"inside a parallelFor body reorders reductions across "
            f"pool sizes (and races); use parallelReduce"))


def _member_chain_base(tokens, i):
    """Walk `a.b->c` backwards from the identifier at i to the base
    identifier's index. Returns None for `this->x += ...`? No —
    `this` is a captured pointer, exactly the hazard, so it is
    returned like any other base."""
    while i >= 2 and tokens[i - 1].value in (".", "->") \
            and tokens[i - 2].kind == "id":
        i -= 2
    if tokens[i].kind != "id":
        return None
    return i


def _declared_between(tokens, begin, end, name):
    """True when `name` is declared (parameter or local) between
    begin and end — a type-ish token directly before it and a
    declarator-shaped token after."""
    for k in range(begin + 1, end):
        if tokens[k].kind != "id" or tokens[k].value != name:
            continue
        p1 = _prev(tokens, k)
        if p1 is None:
            continue
        p2 = tokens[k - 2] if k >= 2 else None
        type_ish = ((p1.kind == "id"
                     and p1.value not in _EXPR_KEYWORDS
                     and (p2 is None
                          or p2.value not in (".", "->")))
                    or p1.value in ("*", "&", "&&", ">"))
        if not type_ish:
            continue
        nxt = _next(tokens, k)
        if nxt is not None and nxt.value in ("=", ";", ",", ")",
                                             ":", "{", "["):
            return True
    return False


def scan_file(relpath, tokens, families):
    """Run the requested families over one file's token stream."""
    findings = []
    if "determinism" in families:
        scan_determinism(relpath, tokens, findings)
    if "result" in families:
        scan_result(relpath, tokens, findings)
    if "fp-order" in families:
        scan_fp_order(relpath, tokens, findings)
    return findings
