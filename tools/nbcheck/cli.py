"""nbcheck driver.

Usage (from the repo root, after configuring a build so the
compile_commands.json symlink exists):

    python3 tools/nbcheck [--backend auto|tokens|libclang] [--json]

Exit status: 0 clean, 1 findings, 2 configuration error,
3 --require-libclang unmet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import clangast, compdb, config, includes, lexer, lintpass, \
    tokenscan
from .findings import Finding, sort_key

_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")
_CODE_FAMILIES = ("determinism", "result", "fp-order")


def discover_files(root, cfg):
    """Every C++ file under any configured scope root, sorted,
    repo-relative."""
    roots = set()
    for family_roots in cfg.scopes.values():
        roots.update(family_roots)
    found = []
    for scope_root in sorted(roots):
        base = os.path.join(root, scope_root)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(_EXTS):
                    rel = os.path.relpath(
                        os.path.join(dirpath, name), root)
                    rel = rel.replace(os.sep, "/")
                    if not cfg.excluded(rel):
                        found.append(rel)
    return found


def run_analysis(root, cfg, backend="auto", db=None, lint=True,
                 notes=None):
    """Run every pass; returns (kept, suppressed) finding lists.
    `backend` must already be resolved to 'tokens' or 'libclang'."""
    notes = notes if notes is not None else []
    files = discover_files(root, cfg)

    include_dirs = db.include_dirs() if db else []
    if not include_dirs:
        include_dirs = [os.path.join(root, "src")]

    findings = []

    # Pass 0: the legacy regex lint, folded in as a front end.
    if lint:
        findings.extend(lintpass.run(root))

    # Lex everything once; the include graph and the token backend
    # share the result.
    file_tokens = {}
    file_includes = {}
    for rel in files:
        try:
            with open(os.path.join(root, rel),
                      encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            findings.append(Finding(rel, 1, "io-error", str(e)))
            continue
        tokens, incs = lexer.lex(text)
        file_tokens[rel] = tokens
        file_includes[rel] = incs

    # Pass 1: layering — always token-derived (the preprocessor
    # must not hide edges; see includes.py).
    edges = includes.build_edges(file_includes, include_dirs, root)
    findings.extend(includes.check_layering(cfg, edges))

    # Passes 2-4: determinism / result / fp-order.
    def families_for(rel):
        return {f for f in _CODE_FAMILIES if cfg.in_scope(f, rel)}

    if backend == "libclang":
        scanner = clangast.ClangScanner(root, families_for)
        for command in (db.commands if db else []):
            scanner.scan_tu(command)
        findings.extend(scanner.findings)
        for err in scanner.parse_errors:
            notes.append(f"libclang: failed to parse {err}")
        if db is None or not db.commands:
            notes.append("libclang backend had no compilation "
                         "database entries to parse")
    else:
        for rel, tokens in file_tokens.items():
            fams = families_for(rel)
            if fams:
                findings.extend(
                    tokenscan.scan_file(rel, tokens, fams))

    kept, suppressed = cfg.filter_allowed(sorted(findings,
                                                 key=sort_key))
    return kept, suppressed


def resolve_backend(requested, require_libclang):
    """Map auto/tokens/libclang to a concrete backend, or exit 3
    with the required-but-missing message."""
    if requested == "tokens" and not require_libclang:
        return "tokens", None
    if clangast.available():
        return "libclang", None
    reason = clangast.unavailable_reason() or "unknown"
    if require_libclang or requested == "libclang":
        print("nbcheck: error: the libclang backend is required "
              f"but unavailable: {reason}.\n"
              "Install the clang Python bindings (e.g. "
              "`apt install python3-clang`) so nbcheck can parse "
              "the compilation database, or rerun with "
              "`--backend tokens` to use the built-in "
              "token backend.", file=sys.stderr)
        sys.exit(3)
    return "tokens", f"libclang unavailable ({reason}); using the " \
                     f"token backend"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="nbcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: inferred "
                             "from this file's location)")
    parser.add_argument("--config", default=None,
                        help="path to nbcheck.toml (default: "
                             "<root>/tools/nbcheck/nbcheck.toml)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "auto-discovered at <root> or in "
                             "<root>/build*/)")
    parser.add_argument("--backend",
                        choices=("auto", "tokens", "libclang"),
                        default="auto")
    parser.add_argument("--require-libclang", action="store_true",
                        help="fail (exit 3) instead of falling back "
                             "to the token backend")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the legacy lint front-end pass")
    parser.add_argument("--strict-allowlist", action="store_true",
                        help="treat allowlist entries that matched "
                             "nothing as findings")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    args = parser.parse_args(argv)

    root = args.root
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.dirname(os.path.dirname(here))
    root = os.path.abspath(root)

    config_path = args.config or os.path.join(
        root, "tools", "nbcheck", "nbcheck.toml")
    try:
        cfg = config.load(config_path)
    except config.ConfigError as e:
        print(f"nbcheck: config error: {e}", file=sys.stderr)
        return 2

    db = None
    db_path = args.compdb or compdb.find_database(root)
    if db_path is not None:
        try:
            db = compdb.load(db_path)
        except (OSError, ValueError) as e:
            print(f"nbcheck: bad compilation database: {e}",
                  file=sys.stderr)
            return 2

    backend, note = resolve_backend(args.backend,
                                    args.require_libclang)
    notes = []
    if note:
        notes.append(note)
    if db is None:
        notes.append("no compilation database found; configure a "
                     "build (cmake -B build -S .) to get exact "
                     "include paths" if backend == "tokens" else
                     "no compilation database found")

    kept, suppressed = run_analysis(root, cfg, backend=backend,
                                    db=db, lint=not args.no_lint,
                                    notes=notes)

    if args.strict_allowlist:
        rel_cfg = os.path.relpath(config_path, root).replace(
            os.sep, "/")
        for entry in cfg.unused_allow_entries():
            kept.append(Finding(
                rel_cfg, 1, "allowlist-unused",
                f"allow entry (rule={entry.rule}, "
                f"path={entry.path}) matched nothing; delete it"))
    else:
        for entry in cfg.unused_allow_entries():
            notes.append(f"allow entry (rule={entry.rule}, "
                         f"path={entry.path}) matched nothing")

    if args.json:
        print(json.dumps([f.as_json() for f in kept], indent=2))
    else:
        for f in kept:
            print(f.render())
        for n in notes:
            print(f"nbcheck: note: {n}", file=sys.stderr)
        if kept:
            print(f"\n{len(kept)} finding(s) "
                  f"({len(suppressed)} allowlisted, "
                  f"backend={backend}).", file=sys.stderr)
        else:
            print(f"nbcheck: clean "
                  f"({len(suppressed)} allowlisted finding(s), "
                  f"backend={backend})")
    return 1 if kept else 0
