"""Entry point: `python3 tools/nbcheck` or `python3 -m nbcheck`."""

import sys

if __package__ in (None, ""):
    # Invoked as `python3 tools/nbcheck` — the zip/dir execution
    # path gives us no package context, so create it.
    import os
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from nbcheck.cli import main
else:
    from .cli import main

sys.exit(main())
