"""compile_commands.json loader.

nbcheck is compilation-database-driven: the DB tells us which
translation units are real (not dead files), which include
directories resolve quoted includes, and — for the libclang
backend — the exact flags each TU is built with.

The repo root carries a gitignored symlink to the active build
directory's database (see the top-level CMakeLists.txt), so
`nbcheck` run from a configured checkout finds it without flags.
"""

from __future__ import annotations

import json
import os
import shlex
from dataclasses import dataclass, field


@dataclass
class CompileCommand:
    """One DB entry, with flags split and the source path absolute."""
    file: str
    directory: str
    args: list = field(default_factory=list)

    def include_dirs(self):
        dirs = []
        it = iter(range(len(self.args)))
        for i in it:
            arg = self.args[i]
            if arg == "-I" and i + 1 < len(self.args):
                dirs.append(self.args[i + 1])
            elif arg.startswith("-I") and len(arg) > 2:
                dirs.append(arg[2:])
        return [d if os.path.isabs(d)
                else os.path.join(self.directory, d) for d in dirs]


@dataclass
class CompilationDatabase:
    path: str
    commands: list = field(default_factory=list)

    def files(self):
        return [c.file for c in self.commands]

    def include_dirs(self):
        """Union of -I directories across all commands, in first-seen
        order — the quoted-include search path for the token backend."""
        seen = []
        for cmd in self.commands:
            for d in cmd.include_dirs():
                if d not in seen:
                    seen.append(d)
        return seen

    def command_for(self, path):
        path = os.path.abspath(path)
        for cmd in self.commands:
            if cmd.file == path:
                return cmd
        return None


def find_database(root):
    """Locate compile_commands.json: the root symlink first, then
    any build*/ directory. Returns a path or None."""
    candidate = os.path.join(root, "compile_commands.json")
    if os.path.isfile(candidate):
        return candidate
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return None
    for entry in entries:
        if entry.startswith("build"):
            candidate = os.path.join(root, entry,
                                     "compile_commands.json")
            if os.path.isfile(candidate):
                return candidate
    return None


def load(path):
    """Parse a compilation database. Raises ValueError on malformed
    input (the driver reports it as a config error)."""
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list):
        raise ValueError(f"{path}: expected a JSON array of commands")
    commands = []
    for entry in raw:
        file_ = entry.get("file")
        directory = entry.get("directory", ".")
        if not file_:
            continue
        if not os.path.isabs(file_):
            file_ = os.path.join(directory, file_)
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry.get("command", ""))
        commands.append(CompileCommand(file=os.path.normpath(file_),
                                       directory=directory,
                                       args=args))
    return CompilationDatabase(path=path, commands=commands)
