"""Minimal C++ lexer for the nbcheck token backend.

Produces a flat token stream with line numbers, with comments,
string/char literals (including raw strings), and `#include`
directives stripped out of the code stream. Include directives are
reported separately so the include-graph pass shares one scan.

This is deliberately not a preprocessor: macro bodies and both arms
of `#if`/`#else` regions are tokenized, which is what a checker
wants — a forbidden call is forbidden on every configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Punctuation, longest-first so compound operators win.
_PUNCT = (
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "++", "--", "##",
    "{", "}", "(", ")", "[", "]", "<", ">", ";", ":", ",", ".", "+",
    "-", "*", "/", "%", "&", "|", "^", "!", "~", "=", "?", "#",
)

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xXbB])?[0-9][0-9a-fA-F'.eEpPxXuUlLfF+-]*")
_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')


@dataclass
class Token:
    """One lexical token: kind is 'id', 'num', 'punct', 'str' or
    'char'; value is the exact spelling (literals collapse to a
    placeholder so their contents can never trip a rule)."""
    kind: str
    value: str
    line: int


@dataclass
class Include:
    """One #include directive."""
    target: str
    line: int
    system: bool


def lex(text):
    """Tokenize C++ source. Returns (tokens, includes)."""
    tokens = []
    includes = []
    i = 0
    n = len(text)
    line = 1
    line_start = True  # only preprocessor directives care

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                end = text.find("\n", i)
                i = n if end < 0 else end
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end < 0:
                    break
                line += text.count("\n", i, end + 2)
                i = end + 2
                continue
        # Preprocessor directives: #include goes to the include
        # list; other directives stay in the token stream (macro
        # bodies are real code).
        if c == "#" and line_start:
            eol = text.find("\n", i)
            eol = n if eol < 0 else eol
            # Honour continuation lines for directive extent.
            while eol < n and text[eol - 1] == "\\":
                nxt = text.find("\n", eol + 1)
                eol = n if nxt < 0 else nxt
            directive = text[i:eol]
            m = _INCLUDE_RE.match(directive)
            if m:
                quoted, angled = m.group(1), m.group(2)
                includes.append(Include(quoted or angled, line,
                                        angled is not None))
                line += directive.count("\n")
                i = eol
                line_start = False
                continue
            # Fall through: tokenize the directive like code (the
            # leading '#' and name become tokens; harmless).
        line_start = False
        # Raw strings.
        if c == "R" and text.startswith('R"', i):
            m = re.compile(r'R"([^\s()\\]{0,16})\(').match(text, i)
            if m:
                delim = ")" + m.group(1) + '"'
                end = text.find(delim, m.end())
                if end < 0:
                    break
                line += text.count("\n", i, end + len(delim))
                tokens.append(Token("str", '""', line))
                i = end + len(delim)
                continue
        # String / char literals (with optional encoding prefix).
        if c in "\"'" or (
                c in "uUL" and i + 1 < n and text[i + 1] in "\"'8"):
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            if j < n and j - i <= 3:
                quote = text[j]
                k = j + 1
                while k < n:
                    if text[k] == "\\":
                        k += 2
                        continue
                    if text[k] == quote:
                        break
                    if text[k] == "\n":
                        break  # unterminated; bail at EOL
                    k += 1
                kind = "str" if quote == '"' else "char"
                tokens.append(Token(kind, quote + quote, line))
                i = k + 1 if k < n else n
                continue
        # Identifiers / keywords.
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token("id", m.group(0), line))
            i = m.end()
            continue
        # Numbers.
        if c.isdigit():
            m = _NUM_RE.match(text, i)
            tokens.append(Token("num", m.group(0), line))
            i = m.end()
            continue
        # Punctuation.
        for p in _PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            i += 1  # unknown byte; skip
    return tokens, includes
