"""nbcheck — compilation-database-driven project analyzer.

Four check families over the nanobus tree (layering DAG,
determinism audit, Result discipline, FP accumulation order) plus
the legacy regex lint as a front-end pass. See
docs/STATIC_ANALYSIS.md for the rule catalog and
tools/nbcheck/nbcheck.toml for the declared layer DAG and the
allowlist.
"""

__version__ = "1.0.0"
