#!/usr/bin/env python3
"""Line-coverage aggregation and soft gate for src/.

Runs gcov (JSON mode) over every .gcda the instrumented test run left
in the build tree, aggregates line coverage for files under src/, and
compares the total against a recorded baseline with a slack margin:
the gate fails only when coverage drops more than --slack points
below the baseline, so incidental churn never blocks a PR but a real
coverage regression does.

Usage (CI and local are identical):

    cmake -B build-cov -S . -DNANOBUS_COVERAGE=ON
    cmake --build build-cov -j
    ctest --test-dir build-cov -j
    python3 tools/coverage_gate.py --build-dir build-cov \
        --baseline .github/coverage-baseline.txt \
        --output coverage-report.json

Refresh the baseline after intentionally growing or shrinking the
tree with --update-baseline.

Requires only gcov (ships with gcc) — no gcovr/lcov dependency.
"""

import argparse
import json
import os
import subprocess
import sys

GCOV_BATCH = 64


def find_gcda(build_dir):
    # Absolute paths: run_gcov executes with cwd=build_dir, where
    # paths relative to the caller's cwd would not resolve.
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.abspath(os.path.join(root, name)))
    return sorted(out)


def run_gcov(gcda_files, build_dir):
    """Yield parsed gcov JSON documents for the given .gcda files."""
    for i in range(0, len(gcda_files), GCOV_BATCH):
        batch = gcda_files[i:i + GCOV_BATCH]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout"] + batch,
            cwd=build_dir,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        # --stdout emits one JSON document per translation unit,
        # newline-separated.
        for line in proc.stdout.decode("utf-8",
                                       "replace").splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def normalize(path, source_root, build_dir):
    """Repo-relative path for a gcov-reported file, or None if it is
    outside the repo (system headers, gtest)."""
    if not os.path.isabs(path):
        path = os.path.join(build_dir, path)
    path = os.path.realpath(path)
    root = os.path.realpath(source_root) + os.sep
    if not path.startswith(root):
        return None
    return path[len(root):]


def aggregate(build_dir, source_root, prefix):
    """Merge per-TU gcov reports: line -> max hit count, keyed by
    repo-relative path. Headers appear in many TUs; a line covered
    anywhere counts as covered."""
    files = {}
    gcda = find_gcda(build_dir)
    if not gcda:
        return None
    for doc in run_gcov(gcda, build_dir):
        for entry in doc.get("files", []):
            rel = normalize(entry.get("file", ""), source_root,
                            build_dir)
            if rel is None or not rel.startswith(prefix):
                continue
            lines = files.setdefault(rel, {})
            for line in entry.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                lines[number] = max(lines.get(number, 0), count)
    return files


def summarize(files):
    per_file = {}
    total_lines = 0
    total_covered = 0
    for rel in sorted(files):
        lines = files[rel]
        covered = sum(1 for c in lines.values() if c > 0)
        per_file[rel] = {
            "lines": len(lines),
            "covered": covered,
            "percent": round(100.0 * covered / len(lines), 2)
            if lines else 0.0,
        }
        total_lines += len(lines)
        total_covered += covered
    percent = (100.0 * total_covered / total_lines
               if total_lines else 0.0)
    return {
        "total_lines": total_lines,
        "covered_lines": total_covered,
        "percent": round(percent, 2),
        "files": per_file,
    }


def main():
    parser = argparse.ArgumentParser(
        description="aggregate gcov line coverage for src/ and gate "
                    "against a baseline")
    parser.add_argument("--build-dir", required=True,
                        help="instrumented build tree (NANOBUS_COVERAGE"
                             "=ON) after a test run")
    parser.add_argument("--source-root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--prefix", default="src/",
                        help="only count files under this repo-relative"
                             " prefix (default: src/)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file holding one number "
                             "(percent); no gate when absent")
    parser.add_argument("--slack", type=float, default=2.0,
                        help="allowed drop below the baseline in "
                             "percentage points (default: 2.0)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the measured "
                             "percent instead of gating")
    args = parser.parse_args()

    files = aggregate(args.build_dir, args.source_root, args.prefix)
    if files is None:
        print("coverage_gate: no .gcda files under %s — build with "
              "-DNANOBUS_COVERAGE=ON and run the tests first"
              % args.build_dir, file=sys.stderr)
        return 2
    if not files:
        print("coverage_gate: gcov produced no data for prefix %r"
              % args.prefix, file=sys.stderr)
        return 2

    report = summarize(files)
    print("coverage: %.2f%% of %d lines under %s"
          % (report["percent"], report["total_lines"], args.prefix))

    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print("report written to %s" % args.output)

    if not args.baseline:
        return 0
    if args.update_baseline:
        with open(args.baseline, "w") as f:
            f.write("%.2f\n" % report["percent"])
        print("baseline updated: %s = %.2f"
              % (args.baseline, report["percent"]))
        return 0
    try:
        with open(args.baseline) as f:
            baseline = float(f.read().strip())
    except (OSError, ValueError) as e:
        print("coverage_gate: unreadable baseline %s (%s)"
              % (args.baseline, e), file=sys.stderr)
        return 2

    floor = baseline - args.slack
    if report["percent"] < floor:
        print("coverage_gate: FAIL — %.2f%% is below the gate "
              "(baseline %.2f%% - %.1f slack = %.2f%%)"
              % (report["percent"], baseline, args.slack, floor),
              file=sys.stderr)
        return 1
    print("gate ok: %.2f%% >= %.2f%% (baseline %.2f%% - %.1f slack)"
          % (report["percent"], floor, baseline, args.slack))
    return 0


if __name__ == "__main__":
    sys.exit(main())
