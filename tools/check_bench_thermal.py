#!/usr/bin/env python3
"""Schema check for BENCH_thermal.json (bench/perf_thermal.cc).

Validates that the thermal-solver scaling report carries everything
the study promises: the equivalence-pin numbers (steady-state and
transient, each against the RK4 oracle / direct banded solve), the
width x solver cell table with per-interval timings, the acceptance
verdict (widest implicit cell vs narrowest RK4 cell), and per-cell
shard timings.

Usage: check_bench_thermal.py PATH/TO/BENCH_thermal.json
"""

import json
import sys

SOLVERS = ("rk4", "backward-euler", "trapezoidal")


def fail(message):
    print(f"check_bench_thermal: {message}", file=sys.stderr)
    sys.exit(1)


def require(data, key, kinds):
    if key not in data:
        fail(f"missing key '{key}'")
    if not isinstance(data[key], kinds):
        fail(f"key '{key}' has type {type(data[key]).__name__}, "
             f"expected {kinds}")
    return data[key]


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_thermal.py BENCH_thermal.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        fail(f"cannot read {sys.argv[1]}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{sys.argv[1]} is not valid JSON: {err}")

    if require(data, "bench", str) != "thermal":
        fail(f"bench is {data['bench']!r}, expected 'thermal'")
    require(data, "threads", int)
    require(data, "total_wall_ms", (int, float))

    # Equivalence pins: every error must sit under its gate, and the
    # block must say so itself.
    equiv = require(data, "equivalence", dict)
    for key in ("steady_rel_err_rk4", "steady_rel_err_be",
                "steady_rel_err_cn", "steady_tolerance",
                "transient_rel_dev_be", "transient_rel_dev_cn"):
        if not isinstance(equiv.get(key), (int, float)):
            fail(f"equivalence missing/invalid '{key}'")
        if equiv[key] < 0:
            fail(f"equivalence '{key}' is negative")
    if equiv.get("passed") is not True:
        fail("equivalence.passed is not true")
    tol = equiv["steady_tolerance"]
    for key in ("steady_rel_err_rk4", "steady_rel_err_be",
                "steady_rel_err_cn"):
        if equiv[key] > tol:
            fail(f"equivalence '{key}' {equiv[key]} exceeds the "
                 f"stated tolerance {tol}")

    # Cell table: width ladder x solver with per-interval timings.
    cells = require(data, "cells", list)
    if not cells:
        fail("cells is empty")
    for i, cell in enumerate(cells):
        if not isinstance(cell.get("width"), int) or cell["width"] < 1:
            fail(f"cells[{i}] missing/invalid 'width'")
        if cell.get("solver") not in SOLVERS:
            fail(f"cells[{i}] has unknown solver "
                 f"{cell.get('solver')!r}")
        if not isinstance(cell.get("intervals"), int) or \
                cell["intervals"] < 1:
            fail(f"cells[{i}] missing/invalid 'intervals'")
        for key in ("wall_ms", "ms_per_interval"):
            if not isinstance(cell.get(key), (int, float)) or \
                    cell[key] < 0:
                fail(f"cells[{i}] missing/invalid '{key}'")
    solvers_seen = {cell["solver"] for cell in cells}
    if "rk4" not in solvers_seen:
        fail("no rk4 oracle cell in the ladder")
    if not solvers_seen - {"rk4"}:
        fail("no implicit cell in the ladder")

    # Acceptance verdict: widest implicit vs narrowest RK4.
    accept = require(data, "acceptance", dict)
    for key in ("implicit_width", "rk4_width"):
        if not isinstance(accept.get(key), int) or accept[key] < 1:
            fail(f"acceptance missing/invalid '{key}'")
    if accept.get("implicit_solver") not in SOLVERS[1:]:
        fail(f"acceptance has unknown implicit solver "
             f"{accept.get('implicit_solver')!r}")
    for key in ("implicit_ms_per_interval", "rk4_ms_per_interval",
                "speedup"):
        if not isinstance(accept.get(key), (int, float)):
            fail(f"acceptance missing/invalid '{key}'")
    if accept.get("passed") is not True:
        fail("acceptance.passed is not true")
    if accept["implicit_ms_per_interval"] >= \
            accept["rk4_ms_per_interval"]:
        fail("acceptance claims passed but the implicit cell is not "
             "faster than the RK4 baseline")

    # Per-cell shard timings.
    shards = require(data, "shards", list)
    if not shards:
        fail("shards is empty")
    for i, shard in enumerate(shards):
        if not isinstance(shard.get("label"), str) or \
                not isinstance(shard.get("wall_ms"), (int, float)):
            fail(f"shards[{i}] missing label/wall_ms")
    if len(shards) != len(cells):
        fail(f"{len(shards)} shards but {len(cells)} cells")

    widths = sorted({cell["width"] for cell in cells})
    print(f"check_bench_thermal: OK ({len(cells)} cells, widths "
          f"{widths}, speedup {accept['speedup']:.1f}x)")


if __name__ == "__main__":
    main()
