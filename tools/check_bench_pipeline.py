#!/usr/bin/env python3
"""Schema check for BENCH_pipeline.json (bench/perf_pipeline.cc).

Validates that the pipeline throughput report carries everything the
study promises: the equivalence block (bitwise batched-vs-per-record
pins for both transition kernels, plus the scalar/packed cross-check
with its tolerance re-verified numerically), the kernel-gate block
(the packed kernel's in-memory speedup over scalar at batch 1024,
re-checked against its own threshold), the kernel-labeled shard
timings, and the supervised-sweep tallies.

Usage: check_bench_pipeline.py PATH/TO/BENCH_pipeline.json
"""

import json
import sys

KERNELS = ("scalar", "packed")


def fail(message):
    print(f"check_bench_pipeline: {message}", file=sys.stderr)
    sys.exit(1)


def require(data, key, kinds):
    if key not in data:
        fail(f"missing key '{key}'")
    if not isinstance(data[key], kinds):
        fail(f"key '{key}' has type {type(data[key]).__name__}, "
             f"expected {kinds}")
    return data[key]


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_pipeline.py BENCH_pipeline.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        fail(f"cannot read {sys.argv[1]}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{sys.argv[1]} is not valid JSON: {err}")

    if require(data, "bench", str) != "pipeline":
        fail(f"bench is {data['bench']!r}, expected 'pipeline'")
    require(data, "threads", int)
    require(data, "total_wall_ms", (int, float))

    # Equivalence block: the bitwise pins must have run for both
    # kernels, and the scalar/packed cross-check must sit under its
    # own stated tolerance.
    equiv = require(data, "equivalence", dict)
    if not isinstance(equiv.get("pins"), int) or equiv["pins"] < 1:
        fail("equivalence missing/invalid 'pins'")
    for key in ("cross_kernel_rel_dev", "cross_kernel_tolerance"):
        if not isinstance(equiv.get(key), (int, float)):
            fail(f"equivalence missing/invalid '{key}'")
        if equiv[key] < 0:
            fail(f"equivalence '{key}' is negative")
    if equiv.get("passed") is not True:
        fail("equivalence.passed is not true")
    if equiv["cross_kernel_rel_dev"] > equiv["cross_kernel_tolerance"]:
        fail(f"cross-kernel deviation "
             f"{equiv['cross_kernel_rel_dev']} exceeds the stated "
             f"tolerance {equiv['cross_kernel_tolerance']}")

    # Kernel gate: one timed cell per kernel, and the speedup claim
    # re-derived from the cells must clear the stated threshold.
    gate = require(data, "kernel_gate", dict)
    if not isinstance(gate.get("batch"), int) or gate["batch"] < 1:
        fail("kernel_gate missing/invalid 'batch'")
    if not isinstance(gate.get("reps"), int) or gate["reps"] < 1:
        fail("kernel_gate missing/invalid 'reps'")
    cells = require(gate, "cells", list)
    walls = {}
    for i, cell in enumerate(cells):
        if cell.get("kernel") not in KERNELS:
            fail(f"kernel_gate cells[{i}] has unknown kernel "
                 f"{cell.get('kernel')!r}")
        if not isinstance(cell.get("wall_ms"), (int, float)) or \
                cell["wall_ms"] <= 0:
            fail(f"kernel_gate cells[{i}] missing/invalid 'wall_ms'")
        walls[cell["kernel"]] = cell["wall_ms"]
    for kernel in KERNELS:
        if kernel not in walls:
            fail(f"kernel_gate has no '{kernel}' cell")
    for key in ("speedup", "threshold"):
        if not isinstance(gate.get(key), (int, float)):
            fail(f"kernel_gate missing/invalid '{key}'")
    if gate["threshold"] < 5.0:
        fail(f"kernel_gate threshold {gate['threshold']} is below "
             f"the required 5x")
    if gate.get("passed") is not True:
        fail("kernel_gate.passed is not true")
    if gate["speedup"] < gate["threshold"]:
        fail(f"kernel_gate speedup {gate['speedup']} is below the "
             f"threshold {gate['threshold']}")
    derived = walls["scalar"] / walls["packed"]
    if abs(derived - gate["speedup"]) > 0.05 * derived:
        fail(f"kernel_gate speedup {gate['speedup']} does not match "
             f"the cell timings ({derived:.3f})")

    # Kernel-labeled shard timings: every timing label carries its
    # kernel prefix, and both kernels appear.
    shards = require(data, "shards", list)
    if not shards:
        fail("shards is empty")
    kernels_seen = set()
    for i, shard in enumerate(shards):
        label = shard.get("label")
        if not isinstance(label, str) or \
                not isinstance(shard.get("wall_ms"), (int, float)):
            fail(f"shards[{i}] missing label/wall_ms")
        prefix = label.split("/", 1)[0]
        if prefix not in KERNELS:
            fail(f"shards[{i}] label {label!r} lacks a kernel "
                 f"prefix")
        kernels_seen.add(prefix)
    if kernels_seen != set(KERNELS):
        fail(f"shard labels cover kernels {sorted(kernels_seen)}, "
             f"expected both of {KERNELS}")

    # Supervised sweep tallies: every shard completed.
    sup = require(data, "supervisor", dict)
    for key in ("ok", "retried", "timed_out", "quarantined"):
        if not isinstance(sup.get(key), int) or sup[key] < 0:
            fail(f"supervisor missing/invalid '{key}'")
    if sup["ok"] < 1:
        fail("supervisor reports no successful shards")
    if sup["timed_out"] or sup["quarantined"]:
        fail("supervisor reports incomplete shards")

    print(f"check_bench_pipeline: OK ({equiv['pins']} pins, "
          f"{len(shards)} shards, kernel speedup "
          f"{gate['speedup']:.1f}x >= {gate['threshold']:.0f}x)")


if __name__ == "__main__":
    main()
