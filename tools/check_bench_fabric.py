#!/usr/bin/env python3
"""Schema check for BENCH_fabric.json (bench/perf_fabric.cc).

Validates that the fabric bench report carries everything the scaling
study promises: the workload descriptor (topology / segments /
pattern), exec placement stats, the per-segment energy/thermal
rollup, the target-cell aggregate, and per-cell shard timings.

Usage: check_bench_fabric.py PATH/TO/BENCH_fabric.json
"""

import json
import sys


def fail(message):
    print(f"check_bench_fabric: {message}", file=sys.stderr)
    sys.exit(1)


def require(data, key, kinds):
    if key not in data:
        fail(f"missing key '{key}'")
    if not isinstance(data[key], kinds):
        fail(f"key '{key}' has type {type(data[key]).__name__}, "
             f"expected {kinds}")
    return data[key]


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_fabric.py BENCH_fabric.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        fail(f"cannot read {sys.argv[1]}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{sys.argv[1]} is not valid JSON: {err}")

    if require(data, "bench", str) != "fabric":
        fail(f"bench is {data['bench']!r}, expected 'fabric'")
    require(data, "threads", int)
    require(data, "pinning", str)
    require(data, "workers_per_node", list)
    require(data, "total_wall_ms", (int, float))
    require(data, "tasks_run", int)
    require(data, "steals", int)

    # Workload descriptor.
    topology = require(data, "topology", str)
    if topology not in ("mesh", "ring", "crossbar"):
        fail(f"unknown topology {topology!r}")
    segments = require(data, "segments", int)
    if segments < 1:
        fail(f"segments is {segments}, expected >= 1")
    pattern = require(data, "pattern", str)
    if pattern not in ("uniform", "hotspot", "neighbor"):
        fail(f"unknown pattern {pattern!r}")

    # Per-segment rollup of the target cell.
    rollup = require(data, "segments_summary", list)
    if not rollup:
        fail("segments_summary is empty")
    seg_keys = {
        "segment": int,
        "transmissions": int,
        "energy_self_j": (int, float),
        "energy_coupling_j": (int, float),
        "avg_temp_k": (int, float),
        "max_temp_k": (int, float),
        "thermal_faults": int,
    }
    for i, entry in enumerate(rollup):
        for key, kinds in seg_keys.items():
            if key not in entry or not isinstance(entry[key], kinds):
                fail(f"segments_summary[{i}] missing/invalid '{key}'")
    ids = [entry["segment"] for entry in rollup]
    if ids != list(range(len(rollup))):
        fail("segments_summary is not densely indexed from 0")

    # Target-cell aggregate.
    target = require(data, "target", dict)
    for key in ("transactions", "hops", "last_cycle", "epochs",
                "thermal_faults"):
        if not isinstance(target.get(key), int):
            fail(f"target missing/invalid '{key}'")
    for key in ("total_energy_j", "max_temp_k"):
        if not isinstance(target.get(key), (int, float)):
            fail(f"target missing/invalid '{key}'")
    if target["transactions"] < 1:
        fail("target ran zero transactions")
    if target["hops"] < target["transactions"]:
        fail("target hops < transactions (routes are >= 1 segment)")

    # Per-cell shard timings.
    shards = require(data, "shards", list)
    if not shards:
        fail("shards is empty")
    for i, shard in enumerate(shards):
        if not isinstance(shard.get("label"), str) or \
                not isinstance(shard.get("wall_ms"), (int, float)):
            fail(f"shards[{i}] missing label/wall_ms")
    if not any(s["label"] == f"segments{segments}" for s in shards):
        fail(f"no shard for the target cell 'segments{segments}'")

    print(f"check_bench_fabric: OK ({len(rollup)} segments, "
          f"{len(shards)} cells, topology={topology})")


if __name__ == "__main__":
    main()
