/**
 * @file
 * Tests for the metal layer stack model.
 */

#include <gtest/gtest.h>

#include "tech/layer_stack.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(LayerStack, SizeMatchesNodeLayerCount)
{
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        MetalLayerStack stack(tech);
        EXPECT_EQ(stack.size(), tech.metal_layers) << tech.name;
    }
}

TEST(LayerStack, UniformByDefault)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    for (size_t i = 0; i < stack.size(); ++i) {
        const MetalLayer &layer = stack.layer(i);
        EXPECT_DOUBLE_EQ(layer.width.raw(), tech.wire_width.raw());
        EXPECT_DOUBLE_EQ(layer.thickness.raw(),
                         tech.wire_thickness.raw());
        EXPECT_DOUBLE_EQ(layer.ild_height.raw(),
                         tech.ild_height.raw());
        EXPECT_DOUBLE_EQ(layer.k_ild.raw(), tech.k_ild.raw());
        EXPECT_DOUBLE_EQ(layer.coverage, 0.5);
        EXPECT_EQ(layer.index, i + 1);
    }
}

TEST(LayerStack, TaperScalesBottomLayer)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech, 0.5);
    EXPECT_NEAR(stack.layer(0).width.raw(),
                0.5 * tech.wire_width.raw(), 1e-18);
    EXPECT_NEAR(stack.top().width.raw(), tech.wire_width.raw(),
                1e-18);
    // Monotone non-decreasing upward.
    for (size_t i = 1; i < stack.size(); ++i)
        EXPECT_GE(stack.layer(i).width, stack.layer(i - 1).width);
}

TEST(LayerStack, MetalDensityHalfForEqualWidthSpacing)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm90);
    MetalLayerStack stack(tech);
    EXPECT_DOUBLE_EQ(stack.top().metalDensity(), 0.5);
}

TEST(LayerStack, CustomCoverage)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm65);
    MetalLayerStack stack(tech, 1.0, 0.25);
    for (size_t i = 0; i < stack.size(); ++i)
        EXPECT_DOUBLE_EQ(stack.layer(i).coverage, 0.25);
}

TEST(LayerStack, InvalidParametersAreFatal)
{
    setAbortOnError(false);
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    EXPECT_THROW(MetalLayerStack(tech, 0.0), FatalError);
    EXPECT_THROW(MetalLayerStack(tech, 1.5), FatalError);
    EXPECT_THROW(MetalLayerStack(tech, 1.0, 0.0), FatalError);
    EXPECT_THROW(MetalLayerStack(tech, 1.0, 1.5), FatalError);
    setAbortOnError(true);
}

TEST(LayerStack, OutOfRangeLayerPanics)
{
    setAbortOnError(false);
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    EXPECT_THROW(stack.layer(stack.size()), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
