/**
 * @file
 * Tests for temperature-dependent resistance and line delay.
 */

#include <gtest/gtest.h>

#include "tech/delay.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

TEST(Delay, ResistanceAtReferenceMatchesTable1)
{
    DelayModel model(tech130, Kelvin{318.15});
    EXPECT_DOUBLE_EQ(model.rWireAt(Kelvin{318.15}).raw(),
                     tech130.r_wire.raw());
}

TEST(Delay, ResistanceGrowsLinearlyWithTemperature)
{
    DelayModel model(tech130, Kelvin{318.15});
    double r20 = model.rWireAt(Kelvin{338.15}).raw();
    // +20 K at 0.39%/K => +7.8%.
    EXPECT_NEAR(r20 / tech130.r_wire.raw(),
                1.0 + 20.0 * units::tcr_copper, 1e-12);
}

TEST(Delay, RepeatedLineDelayPlausible)
{
    // An optimally repeated 10 mm global line at 130 nm should have
    // a delay in the high-hundreds-of-picoseconds range.
    DelayModel model(tech130);
    LineDelay d = model.repeatedLineDelay(Meters{0.010}, Kelvin{318.15});
    EXPECT_GT(d.total.raw(), 50e-12);
    EXPECT_LT(d.total.raw(), 5e-9);
    EXPECT_GT(d.repeater_count, 1.0);
    EXPECT_GT(d.repeater_size, 10.0);
}

TEST(Delay, DelayScalesSuperlinearlyWithLength)
{
    // With repeaters resized per length, delay is linear in length;
    // our model re-designs per length, so 2x length ~ 2x delay.
    DelayModel model(tech130);
    double d1 = model.repeatedLineDelay(Meters{0.005},
                                   Kelvin{318.15}).total.raw();
    double d2 = model
        .repeatedLineDelay(Meters{0.010}, Kelvin{318.15}).total.raw();
    EXPECT_NEAR(d2 / d1, 2.0, 0.05);
}

TEST(Delay, HotterWiresAreSlower)
{
    DelayModel model(tech130);
    double cool = model
        .repeatedLineDelay(Meters{0.010}, Kelvin{318.15}).total.raw();
    double hot = model
        .repeatedLineDelay(Meters{0.010}, Kelvin{348.15}).total.raw();
    EXPECT_GT(hot, cool);
}

TEST(Delay, DegradationBandFor20KRise)
{
    // +20 K raises wire R by 7.8%; only the wire-RC part of the
    // delay scales, so the line slows by a few percent — the paper's
    // "performance degradation" risk quantified.
    DelayModel model(tech130);
    double deg = model.delayDegradation(Meters{0.010}, Kelvin{338.15});
    EXPECT_GT(deg, 0.01);
    EXPECT_LT(deg, 0.078);
}

TEST(Delay, DegradationZeroAtReference)
{
    DelayModel model(tech130);
    EXPECT_NEAR(model.delayDegradation(Meters{0.010}, Kelvin{318.15}), 0.0, 1e-12);
}

TEST(Delay, AllNodesBehaveSanely)
{
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        DelayModel model(tech);
        LineDelay d = model.repeatedLineDelay(Meters{0.010}, Kelvin{318.15});
        EXPECT_GT(d.total.raw(), 0.0) << tech.name;
        double deg = model.delayDegradation(Meters{0.010}, Kelvin{338.15});
        EXPECT_GT(deg, 0.0) << tech.name;
        EXPECT_LT(deg, 0.078) << tech.name;
    }
}

TEST(Delay, InvalidInputsAreFatal)
{
    setAbortOnError(false);
    DelayModel model(tech130);
    EXPECT_THROW(model.repeatedLineDelay(Meters{0.0}, Kelvin{318.15}), FatalError);
    EXPECT_THROW(DelayModel(tech130, Kelvin{0.0}), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
