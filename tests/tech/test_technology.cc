/**
 * @file
 * Tests that the built-in technology nodes reproduce Table 1.
 */

#include <gtest/gtest.h>

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

TEST(Technology, FourNodesInScalingOrder)
{
    const auto &nodes = allItrsNodes();
    ASSERT_EQ(nodes.size(), 4u);
    double prev_feature = 1.0;
    for (ItrsNode id : nodes) {
        const TechnologyNode &n = itrsNode(id);
        EXPECT_LT(n.feature.raw(), prev_feature);
        prev_feature = n.feature.raw();
    }
}

TEST(Technology, Table1Values130nm)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm130);
    EXPECT_EQ(n.name, "130nm");
    EXPECT_EQ(n.metal_layers, 8u);
    EXPECT_DOUBLE_EQ(n.wire_width.raw(), 335e-9);
    EXPECT_DOUBLE_EQ(n.wire_thickness.raw(), 670e-9);
    EXPECT_DOUBLE_EQ(n.ild_height.raw(), 724e-9);
    EXPECT_DOUBLE_EQ(n.epsilon_r, 3.3);
    EXPECT_DOUBLE_EQ(n.k_ild.raw(), 0.60);
    EXPECT_DOUBLE_EQ(n.f_clk.raw(), 1.68e9);
    EXPECT_DOUBLE_EQ(n.vdd.raw(), 1.1);
    EXPECT_DOUBLE_EQ(n.j_max.raw(), 0.96e10);
    EXPECT_DOUBLE_EQ(n.c_line.raw(), 44.06e-12);
    EXPECT_DOUBLE_EQ(n.c_inter.raw(), 91.72e-12);
    EXPECT_DOUBLE_EQ(n.r_wire.raw(), 98.02e3);
}

TEST(Technology, Table1Values45nm)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm45);
    EXPECT_EQ(n.name, "45nm");
    EXPECT_EQ(n.metal_layers, 10u);
    EXPECT_DOUBLE_EQ(n.wire_width.raw(), 103e-9);
    EXPECT_DOUBLE_EQ(n.wire_thickness.raw(), 236e-9);
    EXPECT_DOUBLE_EQ(n.k_ild.raw(), 0.07);
    EXPECT_DOUBLE_EQ(n.vdd.raw(), 0.6);
    EXPECT_DOUBLE_EQ(n.c_line.raw(), 19.05e-12);
    EXPECT_DOUBLE_EQ(n.c_inter.raw(), 58.12e-12);
}

TEST(Technology, SpacingEqualsWidthPerItrs)
{
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &n = itrsNode(id);
        EXPECT_DOUBLE_EQ(n.spacing().raw(), n.wire_width.raw()) << n.name;
    }
}

TEST(Technology, RWireMatchesGeometryFormula)
{
    // Table 1 computes r_wire = rho l / (w t); our copper rho should
    // reproduce the table values within a few percent.
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &n = itrsNode(id);
        double computed = n.rWireFromGeometry().raw();
        EXPECT_NEAR(computed / n.r_wire.raw(), 1.0, 0.05) << n.name;
    }
}

TEST(Technology, ScalingTrendsMatchTable1)
{
    // With scaling: capacitances fall, resistance rises, clock rises,
    // Vdd falls, j_max rises, k_ild falls.
    const auto &nodes = allItrsNodes();
    for (size_t i = 1; i < nodes.size(); ++i) {
        const TechnologyNode &prev = itrsNode(nodes[i - 1]);
        const TechnologyNode &cur = itrsNode(nodes[i]);
        EXPECT_LT(cur.c_line.raw(), prev.c_line.raw());
        EXPECT_LT(cur.c_inter.raw(), prev.c_inter.raw());
        EXPECT_GT(cur.r_wire.raw(), prev.r_wire.raw());
        EXPECT_GT(cur.f_clk.raw(), prev.f_clk.raw());
        EXPECT_LE(cur.vdd.raw(), prev.vdd.raw());
        EXPECT_GT(cur.j_max.raw(), prev.j_max.raw());
        EXPECT_LT(cur.k_ild.raw(), prev.k_ild.raw());
        EXPECT_GE(cur.metal_layers, prev.metal_layers);
    }
}

TEST(Technology, CIntCombinesSelfAndCoupling)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm130);
    EXPECT_DOUBLE_EQ(n.cIntPerMetre().raw(),
                     44.06e-12 + 2.0 * 91.72e-12);
}

TEST(Technology, ClockPeriodIsReciprocal)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm90);
    EXPECT_DOUBLE_EQ(n.clockPeriod() * n.f_clk, 1.0);
}

TEST(Technology, NodeNames)
{
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm130), "130nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm90), "90nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm65), "65nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm45), "45nm");
}

TEST(Technology, UnitHelpers)
{
    EXPECT_DOUBLE_EQ(units::fromNm(335), 335e-9);
    EXPECT_DOUBLE_EQ(units::fromPfPerM(44.06), 44.06e-12);
    EXPECT_DOUBLE_EQ(units::fromKohmPerM(98.02), 98020.0);
    EXPECT_DOUBLE_EQ(units::fromGhz(1.68), 1.68e9);
    EXPECT_DOUBLE_EQ(units::fromMaPerCm2(0.96), 0.96e10);
    EXPECT_DOUBLE_EQ(units::fromCelsius(45.0), 318.15);
}

} // anonymous namespace
} // namespace nanobus
