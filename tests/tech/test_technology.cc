/**
 * @file
 * Tests that the built-in technology nodes reproduce Table 1.
 */

#include <gtest/gtest.h>

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

TEST(Technology, FourNodesInScalingOrder)
{
    const auto &nodes = allItrsNodes();
    ASSERT_EQ(nodes.size(), 4u);
    double prev_feature = 1.0;
    for (ItrsNode id : nodes) {
        const TechnologyNode &n = itrsNode(id);
        EXPECT_LT(n.feature, prev_feature);
        prev_feature = n.feature;
    }
}

TEST(Technology, Table1Values130nm)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm130);
    EXPECT_EQ(n.name, "130nm");
    EXPECT_EQ(n.metal_layers, 8u);
    EXPECT_DOUBLE_EQ(n.wire_width, 335e-9);
    EXPECT_DOUBLE_EQ(n.wire_thickness, 670e-9);
    EXPECT_DOUBLE_EQ(n.ild_height, 724e-9);
    EXPECT_DOUBLE_EQ(n.epsilon_r, 3.3);
    EXPECT_DOUBLE_EQ(n.k_ild, 0.60);
    EXPECT_DOUBLE_EQ(n.f_clk, 1.68e9);
    EXPECT_DOUBLE_EQ(n.vdd, 1.1);
    EXPECT_DOUBLE_EQ(n.j_max, 0.96e10);
    EXPECT_DOUBLE_EQ(n.c_line, 44.06e-12);
    EXPECT_DOUBLE_EQ(n.c_inter, 91.72e-12);
    EXPECT_DOUBLE_EQ(n.r_wire, 98.02e3);
}

TEST(Technology, Table1Values45nm)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm45);
    EXPECT_EQ(n.name, "45nm");
    EXPECT_EQ(n.metal_layers, 10u);
    EXPECT_DOUBLE_EQ(n.wire_width, 103e-9);
    EXPECT_DOUBLE_EQ(n.wire_thickness, 236e-9);
    EXPECT_DOUBLE_EQ(n.k_ild, 0.07);
    EXPECT_DOUBLE_EQ(n.vdd, 0.6);
    EXPECT_DOUBLE_EQ(n.c_line, 19.05e-12);
    EXPECT_DOUBLE_EQ(n.c_inter, 58.12e-12);
}

TEST(Technology, SpacingEqualsWidthPerItrs)
{
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &n = itrsNode(id);
        EXPECT_DOUBLE_EQ(n.spacing(), n.wire_width) << n.name;
    }
}

TEST(Technology, RWireMatchesGeometryFormula)
{
    // Table 1 computes r_wire = rho l / (w t); our copper rho should
    // reproduce the table values within a few percent.
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &n = itrsNode(id);
        double computed = n.rWireFromGeometry();
        EXPECT_NEAR(computed / n.r_wire, 1.0, 0.05) << n.name;
    }
}

TEST(Technology, ScalingTrendsMatchTable1)
{
    // With scaling: capacitances fall, resistance rises, clock rises,
    // Vdd falls, j_max rises, k_ild falls.
    const auto &nodes = allItrsNodes();
    for (size_t i = 1; i < nodes.size(); ++i) {
        const TechnologyNode &prev = itrsNode(nodes[i - 1]);
        const TechnologyNode &cur = itrsNode(nodes[i]);
        EXPECT_LT(cur.c_line, prev.c_line);
        EXPECT_LT(cur.c_inter, prev.c_inter);
        EXPECT_GT(cur.r_wire, prev.r_wire);
        EXPECT_GT(cur.f_clk, prev.f_clk);
        EXPECT_LE(cur.vdd, prev.vdd);
        EXPECT_GT(cur.j_max, prev.j_max);
        EXPECT_LT(cur.k_ild, prev.k_ild);
        EXPECT_GE(cur.metal_layers, prev.metal_layers);
    }
}

TEST(Technology, CIntCombinesSelfAndCoupling)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm130);
    EXPECT_DOUBLE_EQ(n.cIntPerMetre(),
                     44.06e-12 + 2.0 * 91.72e-12);
}

TEST(Technology, ClockPeriodIsReciprocal)
{
    const TechnologyNode &n = itrsNode(ItrsNode::Nm90);
    EXPECT_DOUBLE_EQ(n.clockPeriod() * n.f_clk, 1.0);
}

TEST(Technology, NodeNames)
{
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm130), "130nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm90), "90nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm65), "65nm");
    EXPECT_STREQ(itrsNodeName(ItrsNode::Nm45), "45nm");
}

TEST(Technology, UnitHelpers)
{
    EXPECT_DOUBLE_EQ(units::fromNm(335), 335e-9);
    EXPECT_DOUBLE_EQ(units::fromPfPerM(44.06), 44.06e-12);
    EXPECT_DOUBLE_EQ(units::fromKohmPerM(98.02), 98020.0);
    EXPECT_DOUBLE_EQ(units::fromGhz(1.68), 1.68e9);
    EXPECT_DOUBLE_EQ(units::fromMaPerCm2(0.96), 0.96e10);
    EXPECT_DOUBLE_EQ(units::fromCelsius(45.0), 318.15);
}

} // anonymous namespace
} // namespace nanobus
