/**
 * @file
 * Tests for the repeater insertion model (Eqs 1-2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tech/repeater.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(Repeater, CapacitanceRatioIsSqrtFourSevenths)
{
    EXPECT_NEAR(RepeaterModel::capacitanceRatio(),
                std::sqrt(0.4 / 0.7), 1e-15);
    EXPECT_NEAR(RepeaterModel::capacitanceRatio(), 0.7559, 1e-4);
}

TEST(Repeater, TotalCapacitanceMatchesClosedForm)
{
    // The h*k*C0 product must reduce to sqrt(0.4/0.7) * C_int
    // independent of R0/C0 (Sec 3.1.1).
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        RepeaterModel model(tech);
        const Meters length{0.010};
        RepeaterDesign d = model.design(length);
        const Farads expected = RepeaterModel::capacitanceRatio() *
            tech.cIntPerMetre() * length;
        EXPECT_NEAR(d.total_capacitance / expected, 1.0, 1e-12)
            << tech.name;
        EXPECT_NEAR(model.totalCapacitance(length).raw(),
                    expected.raw(), 1e-25)
            << tech.name;
    }
}

TEST(Repeater, SizeIndependentOfLength)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterModel model(tech);
    double h1 = model.design(Meters{0.005}).size_h;
    double h2 = model.design(Meters{0.020}).size_h;
    EXPECT_NEAR(h1, h2, 1e-9);
}

TEST(Repeater, CountScalesLinearlyWithLength)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterModel model(tech);
    double k1 = model.design(Meters{0.005}).count_k_exact;
    double k2 = model.design(Meters{0.010}).count_k_exact;
    EXPECT_NEAR(k2 / k1, 2.0, 1e-9);
}

TEST(Repeater, PlausibleDesignFor10mmGlobalLine)
{
    // Optimal global repeaters are tens of times minimum size with
    // roughly 0.5-5 repeaters per millimetre.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterDesign d = RepeaterModel(tech).design(Meters{0.010});
    EXPECT_GT(d.size_h, 10.0);
    EXPECT_LT(d.size_h, 500.0);
    EXPECT_GE(d.count_k, 3u);
    EXPECT_LE(d.count_k, 100u);
}

TEST(Repeater, CountRoundsUpToAtLeastOne)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterDesign d = RepeaterModel(tech).design(Meters{1e-5});
    EXPECT_GE(d.count_k, 1u);
    EXPECT_GE(static_cast<double>(d.count_k), d.count_k_exact);
}

TEST(Repeater, DisabledModelHasNoCapacitance)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterModel model(tech, false);
    EXPECT_FALSE(model.enabled());
    EXPECT_DOUBLE_EQ(model.totalCapacitance(Meters{0.010}).raw(),
                     0.0);
    RepeaterDesign d = model.design(Meters{0.010});
    EXPECT_EQ(d.count_k, 0u);
    EXPECT_DOUBLE_EQ(d.total_capacitance.raw(), 0.0);
}

TEST(Repeater, NonPositiveLengthIsFatal)
{
    setAbortOnError(false);
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    RepeaterModel model(tech);
    EXPECT_THROW(model.design(Meters{0.0}), FatalError);
    EXPECT_THROW(model.design(Meters{-1.0}), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
