/**
 * @file
 * Unit tests for the RK4 integrator against closed-form solutions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/faultinject.hh"
#include "util/ode.hh"

namespace nanobus {
namespace {

TEST(Rk4, ExponentialDecay)
{
    // dy/dt = -y, y(0) = 1 => y(t) = e^-t.
    Rk4Solver solver(1);
    std::vector<double> y = {1.0};
    auto f = [](double, const std::vector<double> &y,
                std::vector<double> &dydt) { dydt[0] = -y[0]; };
    solver.integrate(f, 0.0, 2.0, 0.01, y);
    EXPECT_NEAR(y[0], std::exp(-2.0), 1e-8);
}

TEST(Rk4, HarmonicOscillatorConservesAmplitude)
{
    // y'' = -y as a 2-state system; y(0)=1, y'(0)=0 => y(t)=cos t.
    Rk4Solver solver(2);
    std::vector<double> y = {1.0, 0.0};
    auto f = [](double, const std::vector<double> &y,
                std::vector<double> &dydt) {
        dydt[0] = y[1];
        dydt[1] = -y[0];
    };
    solver.integrate(f, 0.0, 2.0 * M_PI, 0.001, y);
    EXPECT_NEAR(y[0], 1.0, 1e-9);
    EXPECT_NEAR(y[1], 0.0, 1e-9);
}

TEST(Rk4, FourthOrderConvergence)
{
    // Halving dt should cut the error by about 2^4.
    auto f = [](double, const std::vector<double> &y,
                std::vector<double> &dydt) { dydt[0] = -3.0 * y[0]; };
    auto error_with_dt = [&](double dt) {
        Rk4Solver solver(1);
        std::vector<double> y = {1.0};
        solver.integrate(f, 0.0, 1.0, dt, y);
        return std::fabs(y[0] - std::exp(-3.0));
    };
    double e1 = error_with_dt(0.1);
    double e2 = error_with_dt(0.05);
    double ratio = e1 / e2;
    EXPECT_GT(ratio, 12.0);
    EXPECT_LT(ratio, 20.0);
}

TEST(Rk4, TimeDependentForcing)
{
    // dy/dt = t, y(0)=0 => y(T) = T^2/2.
    Rk4Solver solver(1);
    std::vector<double> y = {0.0};
    auto f = [](double t, const std::vector<double> &,
                std::vector<double> &dydt) { dydt[0] = t; };
    solver.integrate(f, 0.0, 3.0, 0.1, y);
    EXPECT_NEAR(y[0], 4.5, 1e-10);
}

TEST(Rk4, ZeroDurationIsNoop)
{
    Rk4Solver solver(1);
    std::vector<double> y = {7.0};
    auto f = [](double, const std::vector<double> &y,
                std::vector<double> &dydt) { dydt[0] = -y[0]; };
    EXPECT_EQ(solver.integrate(f, 0.0, 0.0, 0.1, y), 0u);
    EXPECT_DOUBLE_EQ(y[0], 7.0);
}

TEST(Rk4, StepCountCeil)
{
    Rk4Solver solver(1);
    std::vector<double> y = {1.0};
    auto f = [](double, const std::vector<double> &,
                std::vector<double> &dydt) { dydt[0] = 0.0; };
    // duration 1.0 with max_dt 0.3 => 4 steps of 0.25.
    EXPECT_EQ(solver.integrate(f, 0.0, 1.0, 0.3, y), 4u);
}

TEST(Rk4, CoupledRelaxationToEquilibrium)
{
    // Two nodes relaxing toward each other conserve their sum and
    // converge to the average.
    Rk4Solver solver(2);
    std::vector<double> y = {10.0, 0.0};
    auto f = [](double, const std::vector<double> &y,
                std::vector<double> &dydt) {
        dydt[0] = y[1] - y[0];
        dydt[1] = y[0] - y[1];
    };
    solver.integrate(f, 0.0, 20.0, 0.01, y);
    EXPECT_NEAR(y[0], 5.0, 1e-6);
    EXPECT_NEAR(y[1], 5.0, 1e-6);
}

TEST(Rk4Checked, MatchesUncheckedOnHealthySystem)
{
    auto decay = [](double, const std::vector<double> &y,
                    std::vector<double> &dydt) { dydt[0] = -y[0]; };
    Rk4Solver a(1), b(1);
    std::vector<double> ya = {1.0}, yb = {1.0};
    a.integrate(decay, 0.0, 2.0, 0.1, ya);
    IntegrationReport report =
        b.integrateChecked(decay, 0.0, 2.0, 0.1, yb);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.steps, 20u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_NEAR(report.completed_time, 2.0, 1e-12);
    EXPECT_NEAR(yb[0], ya[0], 1e-12);
    // Max |dy/dt| of exponential decay is at t=0: |y0| = 1.
    EXPECT_NEAR(report.max_derivative, 1.0, 1e-9);
}

TEST(Rk4Checked, RecoversFromInjectedNaN)
{
    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::Rk4Step, 3);
    auto decay = [](double, const std::vector<double> &y,
                    std::vector<double> &dydt) { dydt[0] = -y[0]; };
    Rk4Solver solver(1);
    std::vector<double> y = {1.0};
    IntegrationReport report =
        solver.integrateChecked(decay, 0.0, 1.0, 0.1, y);
    FaultInjector::instance().reset();
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_TRUE(std::isfinite(y[0]));
    EXPECT_NEAR(y[0], std::exp(-1.0), 1e-6);
    EXPECT_NEAR(report.completed_time, 1.0, 1e-12);
}

TEST(Rk4Checked, PersistentNaNExhaustsRetryBudget)
{
    auto poison = [](double, const std::vector<double> &,
                     std::vector<double> &dydt) {
        dydt[0] = std::nan("");
    };
    Rk4Solver solver(1);
    std::vector<double> y = {1.0};
    IntegrationReport report =
        solver.integrateChecked(poison, 0.0, 1.0, 0.1, y, 4);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.retries, 4u);
    EXPECT_EQ(report.error.code, ErrorCode::NonFinite);
    // The state was rolled back to the last finite value.
    EXPECT_DOUBLE_EQ(y[0], 1.0);
    EXPECT_EQ(report.steps, 0u);
}

TEST(Rk4Checked, RejectsBadArguments)
{
    auto zero = [](double, const std::vector<double> &,
                   std::vector<double> &dydt) { dydt[0] = 0.0; };
    Rk4Solver solver(1);
    std::vector<double> y = {1.0};

    IntegrationReport negative =
        solver.integrateChecked(zero, 0.0, -1.0, 0.1, y);
    EXPECT_FALSE(negative.ok);
    EXPECT_EQ(negative.error.code, ErrorCode::InvalidArgument);

    IntegrationReport bad_dt =
        solver.integrateChecked(zero, 0.0, 1.0, 0.0, y);
    EXPECT_FALSE(bad_dt.ok);
    EXPECT_EQ(bad_dt.error.code, ErrorCode::InvalidArgument);

    std::vector<double> wrong_size = {1.0, 2.0};
    IntegrationReport mismatch =
        solver.integrateChecked(zero, 0.0, 1.0, 0.1, wrong_size);
    EXPECT_FALSE(mismatch.ok);
    EXPECT_EQ(mismatch.error.code, ErrorCode::InvalidArgument);

    std::vector<double> poisoned = {std::nan("")};
    IntegrationReport bad_state =
        solver.integrateChecked(zero, 0.0, 1.0, 0.1, poisoned);
    EXPECT_FALSE(bad_state.ok);
    EXPECT_EQ(bad_state.error.code, ErrorCode::NonFinite);
}

TEST(Rk4Checked, ZeroDurationIsNoop)
{
    auto zero = [](double, const std::vector<double> &,
                   std::vector<double> &dydt) { dydt[0] = 0.0; };
    Rk4Solver solver(1);
    std::vector<double> y = {3.5};
    IntegrationReport report =
        solver.integrateChecked(zero, 0.0, 0.0, 0.1, y);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.steps, 0u);
    EXPECT_DOUBLE_EQ(y[0], 3.5);
}

} // anonymous namespace
} // namespace nanobus
