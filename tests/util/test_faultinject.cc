/**
 * @file
 * Unit tests for util/faultinject.hh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

class FaultInjectTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectTest, InactiveByDefault)
{
    EXPECT_FALSE(FaultInjector::active());
    EXPECT_FALSE(FaultInjector::instance().fireCallFault(
        FaultSite::LuFactor));
}

TEST_F(FaultInjectTest, FiresOnNthCallOnly)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.armCallFault(FaultSite::LuFactor, 3);
    EXPECT_TRUE(FaultInjector::active());
    EXPECT_FALSE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_FALSE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_TRUE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_FALSE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_EQ(fi.callCount(FaultSite::LuFactor), 4u);
    EXPECT_EQ(fi.firedCount(FaultSite::LuFactor), 1u);
}

TEST_F(FaultInjectTest, RepeatCadence)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.armCallFault(FaultSite::Rk4Step, 2, 3);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(fi.fireCallFault(FaultSite::Rk4Step));
    // Fires on call 2, then every 3rd after: 2, 5, 8.
    std::vector<bool> expected = {false, true, false, false, true,
                                  false, false, true, false};
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(fi.firedCount(FaultSite::Rk4Step), 3u);
}

TEST_F(FaultInjectTest, SitesAreIndependent)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.armCallFault(FaultSite::LuSolve, 1);
    EXPECT_FALSE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_TRUE(fi.fireCallFault(FaultSite::LuSolve));
}

TEST_F(FaultInjectTest, CorruptLineFlipsOneCharacter)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.armTraceCorruption(2);
    std::string first = "100 L 0000beef";
    std::string second = first;
    EXPECT_FALSE(fi.corruptLine(first));
    EXPECT_EQ(first, "100 L 0000beef");
    EXPECT_TRUE(fi.corruptLine(second));
    EXPECT_NE(second, "100 L 0000beef");
    EXPECT_EQ(second.size(), first.size());
    // Exactly one character differs, by one flipped bit.
    int diffs = 0;
    for (size_t i = 0; i < first.size(); ++i) {
        if (first[i] != second[i]) {
            ++diffs;
            EXPECT_EQ(first[i] ^ second[i], 0x40);
        }
    }
    EXPECT_EQ(diffs, 1);
}

TEST_F(FaultInjectTest, ResetDisarmsEverything)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.armCallFault(FaultSite::LuFactor, 1);
    fi.reset();
    EXPECT_FALSE(FaultInjector::active());
    EXPECT_FALSE(fi.fireCallFault(FaultSite::LuFactor));
    EXPECT_EQ(fi.callCount(FaultSite::LuFactor), 1u);
}

TEST_F(FaultInjectTest, PerturbEntriesIsDeterministic)
{
    std::vector<double> a = {1.0, -2.0, 3.0, 0.0};
    std::vector<double> b = a;
    std::vector<double> original = a;
    FaultInjector::perturbEntries(a.data(), a.size(), 0.01, 99);
    FaultInjector::perturbEntries(b.data(), b.size(), 0.01, 99);
    EXPECT_EQ(a, b); // same seed, bitwise identical
    double max_shift = 0.0;
    bool any_shift = false;
    for (size_t i = 0; i < a.size(); ++i) {
        double shift = std::abs(a[i] - original[i]);
        max_shift = std::max(max_shift, shift);
        any_shift = any_shift || shift > 0.0;
    }
    EXPECT_TRUE(any_shift);
    EXPECT_LE(max_shift, 0.01 * 3.0); // bounded by magnitude * scale
}

TEST_F(FaultInjectTest, ZeroOrdinalPanics)
{
    setAbortOnError(false);
    EXPECT_THROW(FaultInjector::instance().armCallFault(
                     FaultSite::LuFactor, 0),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
