/**
 * @file
 * Unit tests for util/logging.hh.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/logging.hh"

namespace nanobus {
namespace {

std::vector<std::pair<LogLevel, std::string>> captured;

void
captureHook(LogLevel level, const std::string &message)
{
    captured.emplace_back(level, message);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        captured.clear();
        setLogHook(captureHook);
        setAbortOnError(false);
    }

    void TearDown() override
    {
        setLogHook(nullptr);
        setAbortOnError(true);
    }
};

TEST_F(LoggingTest, WarnFormatsAndRoutes)
{
    warn("value is %d (%s)", 42, "suspicious");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "value is 42 (suspicious)");
}

TEST_F(LoggingTest, InformRoutes)
{
    inform("progress %0.1f%%", 12.5);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Inform);
    EXPECT_EQ(captured[0].second, "progress 12.5%");
}

TEST_F(LoggingTest, FatalThrowsWhenAbortDisabled)
{
    try {
        fatal("bad config: %s", "nope");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.level, LogLevel::Fatal);
        EXPECT_EQ(e.message, "bad config: nope");
    }
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Fatal);
}

TEST_F(LoggingTest, PanicThrowsWhenAbortDisabled)
{
    EXPECT_THROW(panic("invariant %d broken", 7), FatalError);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Panic);
    EXPECT_EQ(captured[0].second, "invariant 7 broken");
}

TEST_F(LoggingTest, HookRestorePreservesPrevious)
{
    // Installing nullptr restores the default stderr hook.
    setLogHook(nullptr);
    setLogHook(captureHook);
    warn("still captured");
    EXPECT_EQ(captured.size(), 1u);
}

} // anonymous namespace
} // namespace nanobus
