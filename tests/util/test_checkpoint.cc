/**
 * @file
 * Snapshot container tests: SnapshotWriter/Reader round-trips are
 * bit-exact (doubles travel as IEEE-754 bit patterns), short reads
 * surface as ParseError, and the NBCK file container rejects bad
 * magic, foreign versions, truncation, and CRC damage instead of
 * resuming garbage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "util/checkpoint.hh"

namespace nanobus {
namespace {

uint64_t
bitsOf(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
spit(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
}

TEST(SnapshotWireTest, ScalarRoundTripIsExact)
{
    SnapshotWriter w;
    w.putU32(0xdeadbeefu);
    w.putU64(0x0123456789abcdefull);
    w.putF64(3.141592653589793);
    w.putBool(true);
    w.putString("twin/ia");

    SnapshotReader r(w.buffer());
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    double f64 = 0.0;
    bool flag = false;
    std::string text;
    ASSERT_TRUE(r.getU32(u32).ok());
    ASSERT_TRUE(r.getU64(u64).ok());
    ASSERT_TRUE(r.getF64(f64).ok());
    ASSERT_TRUE(r.getBool(flag).ok());
    ASSERT_TRUE(r.getString(text).ok());
    EXPECT_EQ(u32, 0xdeadbeefu);
    EXPECT_EQ(u64, 0x0123456789abcdefull);
    EXPECT_EQ(bitsOf(f64), bitsOf(3.141592653589793));
    EXPECT_TRUE(flag);
    EXPECT_EQ(text, "twin/ia");
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotWireTest, DoublesSurviveAsBitPatterns)
{
    // The cases a print/parse round-trip mangles: negative zero,
    // denormals, infinities, and a NaN payload.
    const double cases[] = {
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        1.0 + std::numeric_limits<double>::epsilon(),
    };
    SnapshotWriter w;
    for (double value : cases)
        w.putF64(value);
    SnapshotReader r(w.buffer());
    for (double value : cases) {
        double restored = 0.0;
        ASSERT_TRUE(r.getF64(restored).ok());
        EXPECT_EQ(bitsOf(restored), bitsOf(value));
    }
}

TEST(SnapshotWireTest, ShortReadIsParseError)
{
    SnapshotWriter w;
    w.putU32(7);
    SnapshotReader r(w.buffer());
    uint64_t u64 = 0;
    Status read = r.getU64(u64);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::ParseError);
}

TEST(SnapshotWireTest, StringLengthBeyondBufferIsParseError)
{
    SnapshotWriter w;
    w.putString("abcdef");
    // Chop the payload so the declared length overruns the buffer.
    std::string damaged = w.buffer().substr(0, w.buffer().size() - 2);
    SnapshotReader r(damaged);
    std::string text;
    Status read = r.getString(text);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, ErrorCode::ParseError);
}

TEST(SnapshotWireTest, Crc32MatchesKnownVectorAndChunks)
{
    // IEEE 802.3 reference vector.
    const char *check = "123456789";
    EXPECT_EQ(crc32(check, 9), 0xcbf43926u);
    // Chunked checksumming continues from the seed.
    uint32_t chunked = crc32(check, 4);
    chunked = crc32(check + 4, 5, chunked);
    EXPECT_EQ(chunked, 0xcbf43926u);
}

class SnapshotFileTest : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_checkpoint_test.ckpt";
    std::string payload_ = std::string("payload \0 bytes", 15);

    void TearDown() override { std::remove(path_.c_str()); }

    /** Write the container, mutate one byte at `offset`, rewrite. */
    void corruptByte(size_t offset)
    {
        std::string file = slurp(path_);
        ASSERT_LT(offset, file.size());
        file[offset] = static_cast<char>(file[offset] ^ 0x01);
        spit(path_, file);
    }
};

TEST_F(SnapshotFileTest, SaveLoadRoundTrip)
{
    ASSERT_TRUE(saveSnapshotFile(path_, payload_).ok());
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), payload_);
}

TEST_F(SnapshotFileTest, MissingFileIsIoError)
{
    Result<std::string> loaded =
        loadSnapshotFile(path_ + ".does-not-exist");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::IoError);
}

TEST_F(SnapshotFileTest, BadMagicIsParseError)
{
    ASSERT_TRUE(saveSnapshotFile(path_, payload_).ok());
    corruptByte(0);
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotFileTest, ForeignVersionIsParseError)
{
    ASSERT_TRUE(saveSnapshotFile(path_, payload_).ok());
    // Version field: little-endian u32 at offset 4.
    corruptByte(4);
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
    EXPECT_NE(loaded.error().message.find("version"),
              std::string::npos);
}

TEST_F(SnapshotFileTest, PayloadBitRotIsParseError)
{
    ASSERT_TRUE(saveSnapshotFile(path_, payload_).ok());
    // Header is magic(4) + version(4) + length(8) + crc(4); flip a
    // payload bit and the CRC must catch it.
    corruptByte(20);
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotFileTest, TruncatedPayloadIsParseError)
{
    ASSERT_TRUE(saveSnapshotFile(path_, payload_).ok());
    std::string file = slurp(path_);
    spit(path_, file.substr(0, file.size() - 3));
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotFileTest, TruncatedHeaderIsParseError)
{
    spit(path_, "NBCK");
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotFileTest, EmptyPayloadRoundTrips)
{
    ASSERT_TRUE(saveSnapshotFile(path_, "").ok());
    Result<std::string> loaded = loadSnapshotFile(path_);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().empty());
}

} // anonymous namespace
} // namespace nanobus
