/**
 * @file
 * Property tests for util/simd.hh: every vector-backend lane op must
 * be byte-identical to the simd::scalar reference — over random u64
 * vectors, the adversarial constants (all-zeros, all-ones,
 * alternating), every sub-register tail length, and with garbage set
 * in the bits a mask is supposed to kill. The public dispatch layer
 * is pinned too, so a NANOBUS_FORCE_SCALAR run of this binary proves
 * the forced-scalar route produces the same bytes as the vector
 * route did (docs/PIPELINE.md, "Scalar/packed equivalence
 * contract").
 *
 * Registered with the `fuzz` ctest label: the ASan job runs the
 * whole suite and the TSan job picks these up via `ctest -L fuzz`.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/random.hh"
#include "util/simd.hh"

namespace nanobus {
namespace {

/** Lengths straddling every register width the backends use: 0, the
 *  scalar tail lengths for 2- and 4-lane registers, and a span long
 *  enough to exercise several full vector iterations. */
const std::vector<size_t> &
lengths()
{
    static const std::vector<size_t> n = {0,  1,  2,  3,  4,  5,
                                          7,  8,  15, 16, 31, 33,
                                          64, 100};
    return n;
}

std::vector<uint64_t>
randomWords(Rng &rng, size_t n)
{
    std::vector<uint64_t> words(n);
    for (uint64_t &w : words)
        w = rng.next();
    return words;
}

/** The adversarial fills: all-zeros, all-ones, alternating bits and
 *  alternating lanes. */
std::vector<std::vector<uint64_t>>
patternFills(size_t n)
{
    std::vector<std::vector<uint64_t>> fills;
    fills.emplace_back(n, 0ull);
    fills.emplace_back(n, ~0ull);
    fills.emplace_back(n, 0x5555555555555555ull);
    std::vector<uint64_t> lanes(n);
    for (size_t k = 0; k < n; ++k)
        lanes[k] = (k & 1) ? ~0ull : 0ull;
    fills.push_back(std::move(lanes));
    return fills;
}

const std::vector<uint64_t> &
masks()
{
    static const std::vector<uint64_t> m = {
        0ull,       1ull,         lowMask(31), lowMask(32),
        lowMask(33), lowMask(63), ~0ull,       0x5555555555555555ull};
    return m;
}

/** Drive one binary lane op through scalar, vec, and the public
 *  dispatch, expecting three identical outputs. */
template <typename Op>
void
expectBinaryOpParity(Op op_scalar, Op op_vec, Op op_public,
                     const std::vector<uint64_t> &a,
                     const std::vector<uint64_t> &b)
{
    const size_t n = a.size();
    std::vector<uint64_t> want(n, 0xdeadull);
    std::vector<uint64_t> got_vec(n, 0xbeefull);
    std::vector<uint64_t> got_pub(n, 0xf00dull);
    op_scalar(want.data(), a.data(), b.data(), n);
    op_vec(got_vec.data(), a.data(), b.data(), n);
    op_public(got_pub.data(), a.data(), b.data(), n);
    EXPECT_EQ(got_vec, want);
    EXPECT_EQ(got_pub, want);
}

TEST(SimdParity, BitwiseBinaryOps)
{
    Rng rng(0x51731);
    for (size_t n : lengths()) {
        SCOPED_TRACE(testing::Message() << "n=" << n);
        std::vector<std::vector<uint64_t>> inputs =
            patternFills(n);
        inputs.push_back(randomWords(rng, n));
        inputs.push_back(randomWords(rng, n));
        for (const auto &a : inputs) {
            for (const auto &b : inputs) {
                expectBinaryOpParity(simd::scalar::xorInto,
                                     simd::vec::xorInto,
                                     simd::xorInto, a, b);
                expectBinaryOpParity(simd::scalar::andInto,
                                     simd::vec::andInto,
                                     simd::andInto, a, b);
                expectBinaryOpParity(simd::scalar::orInto,
                                     simd::vec::orInto,
                                     simd::orInto, a, b);
            }
        }
    }
}

TEST(SimdParity, Shifts)
{
    Rng rng(0x5417);
    for (size_t n : lengths()) {
        std::vector<std::vector<uint64_t>> inputs =
            patternFills(n);
        inputs.push_back(randomWords(rng, n));
        for (const auto &src : inputs) {
            for (unsigned shift : {0u, 1u, 7u, 31u, 32u, 63u}) {
                SCOPED_TRACE(testing::Message()
                             << "n=" << n << " shift=" << shift);
                std::vector<uint64_t> want(n), got(n), pub(n);
                simd::scalar::shiftLeftInto(want.data(), src.data(),
                                            shift, n);
                simd::vec::shiftLeftInto(got.data(), src.data(),
                                         shift, n);
                simd::shiftLeftInto(pub.data(), src.data(), shift, n);
                EXPECT_EQ(got, want);
                EXPECT_EQ(pub, want);

                simd::scalar::shiftRightInto(want.data(), src.data(),
                                             shift, n);
                simd::vec::shiftRightInto(got.data(), src.data(),
                                          shift, n);
                simd::shiftRightInto(pub.data(), src.data(), shift,
                                     n);
                EXPECT_EQ(got, want);
                EXPECT_EQ(pub, want);
            }
        }
    }
}

TEST(SimdParity, MaskInto)
{
    Rng rng(0xa5a5);
    for (size_t n : lengths()) {
        std::vector<std::vector<uint64_t>> inputs =
            patternFills(n);
        inputs.push_back(randomWords(rng, n));
        for (const auto &src : inputs) {
            for (uint64_t mask : masks()) {
                SCOPED_TRACE(testing::Message()
                             << "n=" << n << " mask=0x" << std::hex
                             << mask);
                std::vector<uint64_t> want(n), got(n), pub(n);
                simd::scalar::maskInto(want.data(), src.data(), mask,
                                       n);
                simd::vec::maskInto(got.data(), src.data(), mask, n);
                simd::maskInto(pub.data(), src.data(), mask, n);
                EXPECT_EQ(got, want);
                EXPECT_EQ(pub, want);
            }
        }
    }
}

TEST(SimdParity, PopcountSumMatchesNaive)
{
    Rng rng(0x9c9c);
    for (size_t n : lengths()) {
        std::vector<std::vector<uint64_t>> inputs =
            patternFills(n);
        inputs.push_back(randomWords(rng, n));
        for (const auto &a : inputs) {
            SCOPED_TRACE(testing::Message() << "n=" << n);
            uint64_t naive = 0;
            for (uint64_t w : a)
                naive += popcount(w);
            EXPECT_EQ(simd::scalar::popcountSum(a.data(), n), naive);
            EXPECT_EQ(simd::vec::popcountSum(a.data(), n), naive);
            EXPECT_EQ(simd::popcountSum(a.data(), n), naive);
        }
    }
}

TEST(SimdParity, AccumulatePopcountsAddsInPlace)
{
    Rng rng(0x77aa);
    for (size_t n : lengths()) {
        const std::vector<uint64_t> a = randomWords(rng, n);
        // Non-zero accumulator seeds: the op must *add*, not store.
        std::vector<uint64_t> want = randomWords(rng, n);
        std::vector<uint64_t> got_vec = want;
        std::vector<uint64_t> got_pub = want;
        simd::scalar::accumulatePopcounts(want.data(), a.data(), n);
        simd::vec::accumulatePopcounts(got_vec.data(), a.data(), n);
        simd::accumulatePopcounts(got_pub.data(), a.data(), n);
        EXPECT_EQ(got_vec, want) << "n=" << n;
        EXPECT_EQ(got_pub, want) << "n=" << n;
        for (size_t k = 0; k < n; ++k)
            EXPECT_EQ(want[k] - got_pub[k], 0u);
    }
}

/** Naive per-bit reference for the fused transition-lane op. */
void
naiveTransitionLanes(uint64_t *t, const uint64_t *s,
                     const uint64_t *carry, uint64_t cycle_mask,
                     size_t n)
{
    for (size_t k = 0; k < n; ++k) {
        uint64_t out = 0;
        for (unsigned bit = 0; bit < 64; ++bit) {
            const bool now = bitOf(s[k], bit);
            const bool before =
                bit == 0 ? (carry[k] & 1) != 0 : bitOf(s[k], bit - 1);
            out = withBit(out, bit, now != before);
        }
        t[k] = out & cycle_mask;
    }
}

TEST(SimdParity, TransitionLanesMatchNaiveReference)
{
    Rng rng(0x1f2e3d);
    for (size_t n : lengths()) {
        std::vector<std::vector<uint64_t>> inputs =
            patternFills(n);
        inputs.push_back(randomWords(rng, n));
        for (const auto &s : inputs) {
            std::vector<uint64_t> carry(n);
            for (uint64_t &c : carry)
                c = rng.next() & 1;
            for (uint64_t mask : {lowMask(1), lowMask(17),
                                  lowMask(63), lowMask(64)}) {
                SCOPED_TRACE(testing::Message()
                             << "n=" << n << " mask=0x" << std::hex
                             << mask);
                std::vector<uint64_t> naive(n), want(n), got(n),
                    pub(n);
                naiveTransitionLanes(naive.data(), s.data(),
                                     carry.data(), mask, n);
                simd::scalar::transitionLanes(want.data(), s.data(),
                                              carry.data(), mask, n);
                simd::vec::transitionLanes(got.data(), s.data(),
                                           carry.data(), mask, n);
                simd::transitionLanes(pub.data(), s.data(),
                                      carry.data(), mask, n);
                EXPECT_EQ(want, naive);
                EXPECT_EQ(got, naive);
                EXPECT_EQ(pub, naive);
            }
        }
    }
}

TEST(SimdParity, GrayIntoMasksGarbageAboveWidth)
{
    Rng rng(0xcafe);
    for (size_t n : lengths()) {
        // Garbage in every bit above the mask: the op must mask the
        // input *before* the shift, or the stray bit at position
        // `width` xors into result bit width-1.
        for (uint64_t mask : masks()) {
            std::vector<uint64_t> src = randomWords(rng, n);
            for (uint64_t &w : src)
                w |= ~mask;
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " mask=0x" << std::hex
                         << mask);
            std::vector<uint64_t> want(n), got(n), pub(n);
            simd::scalar::grayInto(want.data(), src.data(), mask, n);
            simd::vec::grayInto(got.data(), src.data(), mask, n);
            simd::grayInto(pub.data(), src.data(), mask, n);
            for (size_t k = 0; k < n; ++k) {
                const uint64_t t = src[k] & mask;
                EXPECT_EQ(want[k], t ^ (t >> 1));
            }
            EXPECT_EQ(got, want);
            EXPECT_EQ(pub, want);
        }
    }
}

TEST(SimdParity, DiffIntoMatchesNaive)
{
    Rng rng(0xd1ff);
    for (size_t n : lengths()) {
        for (uint64_t mask : {lowMask(1), lowMask(32), lowMask(62)}) {
            const std::vector<uint64_t> src = randomWords(rng, n);
            const uint64_t first_prev = rng.next();
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " mask=0x" << std::hex
                         << mask);
            std::vector<uint64_t> naive(n), want(n), got(n), pub(n);
            for (size_t k = 0; k < n; ++k) {
                const uint64_t prev =
                    k == 0 ? first_prev : src[k - 1];
                naive[k] = (src[k] - prev) & mask;
            }
            simd::scalar::diffInto(want.data(), src.data(),
                                   first_prev, mask, n);
            simd::vec::diffInto(got.data(), src.data(), first_prev,
                                mask, n);
            simd::diffInto(pub.data(), src.data(), first_prev, mask,
                           n);
            EXPECT_EQ(want, naive);
            EXPECT_EQ(got, naive);
            EXPECT_EQ(pub, naive);
        }
    }
}

TEST(SimdParity, DiffIntoScalarToleratesExactAliasing)
{
    // The scalar reference runs backwards precisely so dst == src is
    // legal (the offset decoder reuses its buffer); pin that. The
    // vector backends are exempt by contract (dst must not alias).
    Rng rng(0xa11a5);
    const std::vector<uint64_t> src = randomWords(rng, 65);
    const uint64_t mask = lowMask(62);
    std::vector<uint64_t> want(src.size());
    simd::scalar::diffInto(want.data(), src.data(), 7, mask,
                           src.size());
    std::vector<uint64_t> inplace = src;
    simd::scalar::diffInto(inplace.data(), inplace.data(), 7, mask,
                           inplace.size());
    EXPECT_EQ(inplace, want);
}

TEST(SimdDispatch, BackendNamesAreConsistent)
{
    const char *compiled = simd::compiledBackend();
    ASSERT_NE(compiled, nullptr);
    // The forced-scalar route and the forced-scalar build both
    // surface as "scalar"; otherwise the active backend is exactly
    // the compiled one.
    if (simd::forcedScalar())
        EXPECT_STREQ(simd::activeBackend(), "scalar");
    else
        EXPECT_STREQ(simd::activeBackend(), compiled);
}

} // namespace
} // namespace nanobus
