/**
 * @file
 * Unit tests for util/stats.hh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "util/stats.hh"

namespace nanobus {
namespace {

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(5);
    RunningStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.normal(3.0, 2.0);
        whole.add(v);
        (i < 400 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    RunningStats a_copy = a;
    a.merge(b); // empty right
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);
    b.merge(a_copy); // empty left
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinsAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.bins(), 10u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(9), 9.0);
}

TEST(Histogram, CountsInRange)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(0.7);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRangeGoesToOverflowBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileOfUniformData)
{
    Histogram h(0.0, 1.0, 100);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyReturnsLow)
{
    Histogram h(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

} // anonymous namespace
} // namespace nanobus
