/**
 * @file
 * ImplicitLinearSolver tests: the analytic 2-node RC network pins all
 * three integrator families (RK4, backward Euler, trapezoidal)
 * against the closed-form solution, and the checked path exercises
 * the failure taxonomy.
 *
 * The 2-node system is dy/dt = A y + b with
 *
 *     A = [[-a, c], [c, -a]],   a > c > 0,
 *
 * whose eigenmodes are [1, 1] (rate -(a - c)) and [1, -1] (rate
 * -(a + c)): the exact solution is available in closed form, so each
 * integrator's error — and its convergence *order* — can be measured
 * rather than eyeballed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/banded.hh"
#include "util/faultinject.hh"
#include "util/ode.hh"

namespace nanobus {
namespace {

constexpr double kA = 3.0;  // self rate [1/s]
constexpr double kC = 1.0;  // coupling rate [1/s]

/** The RC Jacobian in banded form. */
BandedMatrix
rcJacobian()
{
    BandedMatrix a = BandedMatrix::tridiagonal(2);
    a.diag(0) = -kA;
    a.diag(1) = -kA;
    a.upper(0) = kC;
    a.lower(0) = kC;
    return a;
}

/** Exact solution via the [1,1] / [1,-1] eigenmodes. */
std::vector<double>
rcExact(const std::vector<double> &y0, const std::vector<double> &b,
        double t)
{
    // Steady state solves A y + b = 0.
    const double det = kA * kA - kC * kC;
    const double ss0 = (kA * b[0] + kC * b[1]) / det;
    const double ss1 = (kC * b[0] + kA * b[1]) / det;
    const double sum0 = (y0[0] - ss0) + (y0[1] - ss1);
    const double dif0 = (y0[0] - ss0) - (y0[1] - ss1);
    const double sum = sum0 * std::exp(-(kA - kC) * t);
    const double dif = dif0 * std::exp(-(kA + kC) * t);
    return {ss0 + 0.5 * (sum + dif), ss1 + 0.5 * (sum - dif)};
}

/** Factor I - c dt A for the given method and step. */
BandedFactorization
rcOperator(ImplicitMethod method, double dt)
{
    const double h = implicitOperatorCoefficient(method) * dt;
    BandedMatrix a = rcJacobian();
    BandedMatrix m = BandedMatrix::tridiagonal(2);
    m.diag(0) = 1.0 - h * a.diag(0);
    m.diag(1) = 1.0 - h * a.diag(1);
    m.upper(0) = -h * a.upper(0);
    m.lower(0) = -h * a.lower(0);
    return BandedFactorization(m);
}

double
integrateError(ImplicitMethod method, size_t steps)
{
    const double horizon = 1.0;
    const double dt = horizon / static_cast<double>(steps);
    const std::vector<double> y0 = {1.0, 0.0};
    const std::vector<double> b = {2.0, 0.5};

    BandedMatrix a = rcJacobian();
    BandedFactorization factor = rcOperator(method, dt);
    ImplicitLinearSolver<BandedFactorization> solver(2);
    std::vector<double> y = y0;
    auto apply = [&a](const std::vector<double> &x,
                      std::vector<double> &ax) { a.multiply(x, ax); };
    solver.integrate(method, factor, apply, b, dt, steps, y);

    std::vector<double> exact = rcExact(y0, b, horizon);
    return std::max(std::fabs(y[0] - exact[0]),
                    std::fabs(y[1] - exact[1]));
}

TEST(ImplicitOde, Rk4MatchesAnalyticRcSolution)
{
    const double horizon = 1.0;
    const std::vector<double> b = {2.0, 0.5};
    std::vector<double> y = {1.0, 0.0};
    BandedMatrix a = rcJacobian();
    Rk4Solver rk4(2);
    auto deriv = [&a, &b](double, const std::vector<double> &yy,
                          std::vector<double> &dydt) {
        a.multiply(yy, dydt);
        dydt[0] += b[0];
        dydt[1] += b[1];
    };
    rk4.integrate(deriv, 0.0, horizon, 1e-3, y);
    std::vector<double> exact = rcExact({1.0, 0.0}, b, horizon);
    EXPECT_NEAR(y[0], exact[0], 1e-10);
    EXPECT_NEAR(y[1], exact[1], 1e-10);
}

TEST(ImplicitOde, BackwardEulerConvergesFirstOrder)
{
    const double e64 = integrateError(ImplicitMethod::BackwardEuler, 64);
    const double e128 =
        integrateError(ImplicitMethod::BackwardEuler, 128);
    EXPECT_LT(e64, 0.02);
    // Halving dt should roughly halve the error (order 1).
    EXPECT_NEAR(e64 / e128, 2.0, 0.3);
}

TEST(ImplicitOde, TrapezoidalConvergesSecondOrder)
{
    const double e64 = integrateError(ImplicitMethod::Trapezoidal, 64);
    const double e128 =
        integrateError(ImplicitMethod::Trapezoidal, 128);
    EXPECT_LT(e64, 1e-4);
    // Halving dt should quarter the error (order 2).
    EXPECT_NEAR(e64 / e128, 4.0, 0.5);
}

TEST(ImplicitOde, BothMethodsPreserveTheFixedPoint)
{
    // At the steady state A y + b = 0 every A-stable one-step method
    // here is stationary for *any* dt — even one spanning many time
    // constants. This is the property the thermal fast path leans on.
    const std::vector<double> b = {2.0, 0.5};
    const double det = kA * kA - kC * kC;
    std::vector<double> ss = {(kA * b[0] + kC * b[1]) / det,
                              (kC * b[0] + kA * b[1]) / det};
    BandedMatrix a = rcJacobian();
    auto apply = [&a](const std::vector<double> &x,
                      std::vector<double> &ax) { a.multiply(x, ax); };
    for (ImplicitMethod method : {ImplicitMethod::BackwardEuler,
                                  ImplicitMethod::Trapezoidal}) {
        const double dt = 50.0;  // 150 fast time constants per step
        BandedFactorization factor = rcOperator(method, dt);
        ImplicitLinearSolver<BandedFactorization> solver(2);
        std::vector<double> y = ss;
        solver.integrate(method, factor, apply, b, dt, 4, y);
        EXPECT_NEAR(y[0], ss[0], 1e-12) << implicitMethodName(method);
        EXPECT_NEAR(y[1], ss[1], 1e-12) << implicitMethodName(method);
    }
}

TEST(ImplicitOde, CheckedReportsStepsAndResidualProxy)
{
    const std::vector<double> b = {2.0, 0.5};
    BandedMatrix a = rcJacobian();
    auto apply = [&a](const std::vector<double> &x,
                      std::vector<double> &ax) { a.multiply(x, ax); };
    const double dt = 0.125;
    BandedFactorization factor =
        rcOperator(ImplicitMethod::BackwardEuler, dt);
    ImplicitLinearSolver<BandedFactorization> solver(2);
    std::vector<double> y = {1.0, 0.0};
    IntegrationReport report = solver.integrateChecked(
        ImplicitMethod::BackwardEuler, factor, apply, b, dt, 8, y);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.steps, 8u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_NEAR(report.completed_time, 1.0, 1e-12);
    // |dy/dt| at t=0 is |A y0 + b| = max(|-3+2|, |1+0.5|) = 1.5.
    EXPECT_NEAR(report.max_derivative, 1.5, 1e-12);
}

TEST(ImplicitOde, CheckedRejectsBadArguments)
{
    BandedFactorization factor =
        rcOperator(ImplicitMethod::BackwardEuler, 0.1);
    BandedMatrix a = rcJacobian();
    auto apply = [&a](const std::vector<double> &x,
                      std::vector<double> &ax) { a.multiply(x, ax); };
    ImplicitLinearSolver<BandedFactorization> solver(2);

    std::vector<double> wrong = {1.0};
    IntegrationReport r1 = solver.integrateChecked(
        ImplicitMethod::BackwardEuler, factor, apply, {2.0, 0.5}, 0.1,
        4, wrong);
    EXPECT_FALSE(r1.ok);
    EXPECT_EQ(r1.error.code, ErrorCode::InvalidArgument);

    std::vector<double> y = {1.0, 0.0};
    IntegrationReport r2 = solver.integrateChecked(
        ImplicitMethod::BackwardEuler, factor, apply, {2.0, 0.5}, 0.0,
        4, y);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.error.code, ErrorCode::InvalidArgument);
}

TEST(ImplicitOde, CheckedSurfacesInjectedSolveFault)
{
    BandedFactorization factor =
        rcOperator(ImplicitMethod::Trapezoidal, 0.1);
    BandedMatrix a = rcJacobian();
    auto apply = [&a](const std::vector<double> &x,
                      std::vector<double> &ax) { a.multiply(x, ax); };
    ImplicitLinearSolver<BandedFactorization> solver(2);
    std::vector<double> y = {1.0, 0.0};

    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::LuSolve, 3);
    IntegrationReport report = solver.integrateChecked(
        ImplicitMethod::Trapezoidal, factor, apply, {2.0, 0.5}, 0.1, 8,
        y);
    FaultInjector::instance().reset();

    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.error.code, ErrorCode::FaultInjected);
    // Solves 1-2 are the Rannacher startup half-steps (step 1); the
    // poisoned third solve kills step 2, leaving the state at the
    // last finite value with one full step on the clock.
    EXPECT_EQ(report.steps, 1u);
    EXPECT_NEAR(report.completed_time, 0.1, 1e-12);
    EXPECT_TRUE(std::isfinite(y[0]) && std::isfinite(y[1]));
}

} // anonymous namespace
} // namespace nanobus
