/**
 * @file
 * Unit tests for util/result.hh.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/result.hh"

namespace nanobus {
namespace {

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(-1), 42);
}

TEST(Result, HoldsError)
{
    Result<int> r = Result<int>::failure(ErrorCode::SingularMatrix,
                                         "pivot 3 too small");
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(static_cast<bool>(r));
    EXPECT_EQ(r.error().code, ErrorCode::SingularMatrix);
    EXPECT_EQ(r.error().message, "pivot 3 too small");
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, DescribeIncludesCodeName)
{
    Error e{ErrorCode::IllConditioned, "rcond 1e-15"};
    EXPECT_EQ(e.describe(), "ill-conditioned: rcond 1e-15");
}

TEST(Result, TakeValueMovesOut)
{
    Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
    std::vector<int> v = r.takeValue();
    EXPECT_EQ(v.size(), 3u);
}

TEST(Result, UncheckedValueAccessPanics)
{
    setAbortOnError(false);
    Result<int> bad = Result<int>::failure(ErrorCode::NonFinite, "x");
    EXPECT_THROW(bad.value(), FatalError);
    Result<int> good(1);
    EXPECT_THROW(good.error(), FatalError);
    setAbortOnError(true);
}

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, FailureCarriesError)
{
    Status s = Status::failure(ErrorCode::IoError, "flush failed");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, ErrorCode::IoError);
    EXPECT_EQ(s.error().message, "flush failed");
}

TEST(Status, ErrorAccessOnOkPanics)
{
    setAbortOnError(false);
    Status s;
    EXPECT_THROW(s.error(), FatalError);
    setAbortOnError(true);
}

TEST(Result, ErrorCodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid-argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::SingularMatrix),
                 "singular-matrix");
    EXPECT_STREQ(errorCodeName(ErrorCode::BudgetExhausted),
                 "budget-exhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::ThermalRunaway),
                 "thermal-runaway");
    EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected),
                 "fault-injected");
}

} // anonymous namespace
} // namespace nanobus
