/**
 * @file
 * Unit tests for util/csv.hh.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"

namespace nanobus {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "/nanobus_csv_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows)
{
    {
        CsvWriter csv(path_);
        csv.header({"a", "b", "c"});
        csv.beginRow();
        csv.cell(std::string("x"));
        csv.cell(1.5);
        csv.cell(uint64_t{42});
        csv.endRow();
        csv.flush();
    }
    EXPECT_EQ(slurp(path_), "a,b,c\nx,1.5,42\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters)
{
    {
        CsvWriter csv(path_);
        csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
        csv.flush();
    }
    EXPECT_EQ(slurp(path_),
              "plain,\"with,comma\",\"with\"\"quote\","
              "\"with\nnewline\"\n");
}

TEST_F(CsvTest, DoubleRoundTripsPrecision)
{
    {
        CsvWriter csv(path_);
        csv.beginRow();
        csv.cell(0.1);
        csv.endRow();
        csv.flush();
    }
    double parsed = 0.0;
    std::sscanf(slurp(path_).c_str(), "%lf", &parsed);
    EXPECT_EQ(parsed, 0.1);
}

TEST_F(CsvTest, EmptyRowProducesBlankLine)
{
    {
        CsvWriter csv(path_);
        csv.beginRow();
        csv.endRow();
        csv.flush();
    }
    EXPECT_EQ(slurp(path_), "\n");
}

} // anonymous namespace
} // namespace nanobus
