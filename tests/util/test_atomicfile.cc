/**
 * @file
 * writeFileAtomic tests: contents land intact, existing files are
 * replaced wholesale, no staging file survives a successful publish,
 * and filesystem failure comes back as a typed Status instead of a
 * torn result file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomicfile.hh"

namespace nanobus {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool
exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

class AtomicFileTest : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_atomicfile_test.txt";

    void TearDown() override
    {
        std::remove(path_.c_str());
        std::remove(atomicTempPath(path_).c_str());
    }
};

TEST_F(AtomicFileTest, WritesContentsVerbatim)
{
    const std::string contents("line one\nline two\n\0binary", 25);
    ASSERT_TRUE(writeFileAtomic(path_, contents).ok());
    EXPECT_EQ(slurp(path_), contents);
}

TEST_F(AtomicFileTest, ReplacesExistingFileWholesale)
{
    ASSERT_TRUE(
        writeFileAtomic(path_, "a very long first version\n").ok());
    ASSERT_TRUE(writeFileAtomic(path_, "v2\n").ok());
    // The shorter second write fully replaces the first: no stale
    // tail, which is exactly what a truncating in-place write cannot
    // guarantee across a crash.
    EXPECT_EQ(slurp(path_), "v2\n");
}

TEST_F(AtomicFileTest, LeavesNoStagingFileBehind)
{
    ASSERT_TRUE(writeFileAtomic(path_, "payload\n").ok());
    EXPECT_TRUE(exists(path_));
    EXPECT_FALSE(exists(atomicTempPath(path_)));
}

TEST_F(AtomicFileTest, StagingPathSharesTargetDirectory)
{
    // The rename must not cross a filesystem boundary, so the
    // staging file has to live next to the target.
    const std::string temp = atomicTempPath("/some/dir/result.json");
    EXPECT_EQ(temp.rfind("/some/dir/", 0), 0u);
    EXPECT_NE(temp, "/some/dir/result.json");
}

TEST_F(AtomicFileTest, UnwritableDirectoryIsIoErrorNotFatal)
{
    const std::string bad =
        ::testing::TempDir() + "/nanobus_no_such_dir/out.json";
    Status written = writeFileAtomic(bad, "data");
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code, ErrorCode::IoError);
    EXPECT_FALSE(exists(bad));
}

TEST_F(AtomicFileTest, FailedWriteLeavesOldContentsIntact)
{
    ASSERT_TRUE(writeFileAtomic(path_, "original\n").ok());
    // Sabotage the staging location: a directory where the temp file
    // would go makes the open (or rename) fail, and the published
    // file must be untouched.
    const std::string temp = atomicTempPath(path_);
    ASSERT_EQ(std::system(("mkdir -p '" + temp + "'").c_str()), 0);
    Status written = writeFileAtomic(path_, "replacement\n");
    EXPECT_FALSE(written.ok());
    EXPECT_EQ(slurp(path_), "original\n");
    ASSERT_EQ(std::system(("rmdir '" + temp + "'").c_str()), 0);
}

} // anonymous namespace
} // namespace nanobus
