/**
 * @file
 * Tests for util/function_ref.hh — the non-owning callable reference
 * the ODE hot loops borrow their derivative callbacks through.
 */

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "util/function_ref.hh"

namespace nanobus {
namespace {

int
freeAddOne(int x)
{
    return x + 1;
}

TEST(FunctionRef, InvokesFreeFunction)
{
    FunctionRef<int(int)> ref = freeAddOne;
    EXPECT_EQ(ref(41), 42);
}

TEST(FunctionRef, InvokesCapturingLambda)
{
    int base = 10;
    auto lambda = [&base](int x) { return base + x; };
    FunctionRef<int(int)> ref = lambda;
    EXPECT_EQ(ref(5), 15);
    base = 20;  // borrowed, not copied: sees the caller's state
    EXPECT_EQ(ref(5), 25);
}

TEST(FunctionRef, MutatesThroughReference)
{
    std::vector<int> log;
    auto recorder = [&log](int x) { log.push_back(x); };
    FunctionRef<void(int)> ref = recorder;
    ref(1);
    ref(2);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], 1);
    EXPECT_EQ(log[1], 2);
}

TEST(FunctionRef, ReferenceParametersPassThrough)
{
    // The Rk4Solver::Derivative shape: output through a reference.
    auto deriv = [](double t, const std::vector<double> &y,
                    std::vector<double> &dydt) {
        for (size_t i = 0; i < y.size(); ++i)
            dydt[i] = t * y[i];
    };
    FunctionRef<void(double, const std::vector<double> &,
                     std::vector<double> &)>
        ref = deriv;
    std::vector<double> y = {1.0, 2.0};
    std::vector<double> dydt(2);
    ref(3.0, y, dydt);
    EXPECT_DOUBLE_EQ(dydt[0], 3.0);
    EXPECT_DOUBLE_EQ(dydt[1], 6.0);
}

TEST(FunctionRef, CopyReseatsToSameCallable)
{
    int calls = 0;
    auto counter = [&calls]() { ++calls; };
    FunctionRef<void()> a = counter;
    FunctionRef<void()> b = a;
    a();
    b();
    EXPECT_EQ(calls, 2);

    auto other = [&calls]() { calls += 10; };
    b = FunctionRef<void()>(other);
    b();
    EXPECT_EQ(calls, 12);
}

TEST(FunctionRef, IsTwoWordsAndTriviallyCopyable)
{
    // The whole point versus std::function: no ownership, no
    // allocation, trivially copyable, two words.
    using Ref = FunctionRef<void(int)>;
    static_assert(std::is_trivially_copyable_v<Ref>);
    static_assert(sizeof(Ref) == 2 * sizeof(void *));
    SUCCEED();
}

} // anonymous namespace
} // namespace nanobus
