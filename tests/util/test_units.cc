/**
 * @file
 * Tests for the dimensional-safety layer: literal suffixes, boundary
 * conversions, dimension composition, and — via `requires` clauses
 * evaluated at compile time — the ill-formedness of dimension
 * mismatches the layer exists to reject. The negative-compile
 * harness under tests/negative_compile/ complements these with
 * whole-TU failures.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>

#include "util/units.hh"

namespace nanobus {
namespace {

using namespace units::literals;

// ---- Compile-time negative cases ----------------------------------
//
// Each concept names an operation the safety layer must reject; the
// types are template parameters so the ill-formed expression SFINAEs
// to `false` instead of hard-erroring. A regression that makes one
// well-formed flips the static_assert and breaks the build.

template <typename A, typename B>
concept CanAdd = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept CanSubtract = requires(A a, B b) { a - b; };
template <typename A, typename B>
concept CanCompare = requires(A a, B b) { a < b; };
template <typename A, typename B>
concept CanAccumulate = requires(A a, B b) { a += b; };
template <typename A, typename B>
concept CanAssign = requires(A a, B b) { a = b; };

// Adding or comparing different dimensions is ill-formed.
static_assert(!CanAdd<Joules, Watts>, "J + W must not compile");
static_assert(!CanSubtract<Farads, FaradsPerMeter>,
              "F - F/m must not compile");
static_assert(!CanCompare<Kelvin, Watts>, "K < W must not compile");

// Implicit conversions in and out are ill-formed: no silent raw
// doubles entering, no silent SI values leaking out.
static_assert(!std::is_convertible_v<double, Meters>,
              "raw double must not implicitly become a length");
static_assert(!std::is_convertible_v<Joules, double>,
              "an energy must not implicitly decay to double");

// Accumulating a mismatched dimension is ill-formed.
static_assert(!CanAccumulate<Joules, Volts>,
              "J += V must not compile");

// Assigning a composed result of the wrong dimension is ill-formed:
// ohm^2 F is not a time (RC is, checked in the positive cases).
static_assert(!CanAssign<Seconds,
                         decltype(Ohms{1.0} * Ohms{1.0} *
                                  Farads{1.0})>,
              "ohm^2 F is not a time");

// Sanity: the same concepts are satisfied for matching dimensions,
// so the negative asserts above cannot pass vacuously.
static_assert(CanAdd<Joules, Joules>);
static_assert(CanCompare<Kelvin, Kelvin>);
static_assert(CanAccumulate<Joules, Joules>);

// ---- Compile-time positive cases ----------------------------------
//
// The compositions every module boundary relies on, checked as
// constant expressions.

static_assert(std::is_same_v<decltype(Ohms{1.0} * Farads{1.0}),
                             Seconds>,
              "RC composes to a time constant");
static_assert(std::is_same_v<decltype(FaradsPerMeter{1.0} *
                                      Meters{1.0}),
                             Farads>,
              "per-length capacitance times length is a capacitance");
static_assert(std::is_same_v<decltype(Watts{1.0} * Seconds{1.0}),
                             Joules>,
              "power times time is an energy");
static_assert(std::is_same_v<decltype(Joules{2.0} / Seconds{1.0}),
                             Watts>,
              "energy over time is a power");
static_assert(std::is_same_v<decltype(1.0 / Hertz{1.0}), Seconds>,
              "reciprocal frequency is a time");
static_assert(std::is_same_v<decltype(WattsPerMeter{1.0} *
                                      KelvinMetersPerWatt{1.0}),
                             Kelvin>,
              "line power times line thermal resistance is kelvin");
// Same-dimension ratios collapse to plain double.
static_assert(std::is_same_v<decltype(Seconds{1.0} / Seconds{2.0}),
                             double>,
              "time ratio is a plain number");
static_assert(Seconds{1.0} / Seconds{2.0} == 0.5);
static_assert((Ohms{100.0} * Farads{1e-12}).raw() == 1e-10);

TEST(Units, LengthLiteralsLandInMetres)
{
    EXPECT_DOUBLE_EQ((45_nm).raw(), 45e-9);
    EXPECT_DOUBLE_EQ((0.335_um).raw(), 335e-9);
    EXPECT_DOUBLE_EQ((10_mm).raw(), 0.010);
    EXPECT_DOUBLE_EQ((1.5_m).raw(), 1.5);
    // Literal and conversion-helper forms agree.
    EXPECT_DOUBLE_EQ((130_nm).raw(), units::fromNm(130.0));
    EXPECT_DOUBLE_EQ((10_mm).raw(), units::fromMm(10.0));
}

TEST(Units, TimeAndFrequencyLiterals)
{
    EXPECT_DOUBLE_EQ((2_ns).raw(), 2e-9);
    EXPECT_DOUBLE_EQ((1.5_ms).raw(), 1.5e-3);
    EXPECT_DOUBLE_EQ((1.6_GHz).raw(), 1.6e9);
    // 1 / f composes to a period.
    const Seconds period = 1.0 / 1.6_GHz;
    EXPECT_DOUBLE_EQ(period.raw(), 1.0 / 1.6e9);
}

TEST(Units, ElectricalLiterals)
{
    EXPECT_DOUBLE_EQ((1.1_V).raw(), 1.1);
    EXPECT_DOUBLE_EQ((91.72_pF).raw(), 91.72e-12);
    EXPECT_DOUBLE_EQ((3.5_fF).raw(), 3.5e-15);
    EXPECT_DOUBLE_EQ((120_ohm).raw(), 120.0);
    EXPECT_DOUBLE_EQ((1.0_MA_cm2).raw(), 1e10);
    EXPECT_DOUBLE_EQ((1.0_MA_cm2).raw(),
                     units::fromMaPerCm2(1.0));
}

TEST(Units, EnergyOverIntervalComposesToPower)
{
    const Joules per_cycle = 4.2_pJ;
    const Seconds dt = 1.0 / 1.6_GHz;
    const Watts p = per_cycle / dt;
    EXPECT_DOUBLE_EQ(p.raw(), 4.2e-12 * 1.6e9);
    // And back: W * s recovers the energy.
    EXPECT_DOUBLE_EQ((p * dt).raw(), (4.2_pJ).raw());
}

TEST(Units, KelvinArithmetic)
{
    const Kelvin ambient = 318.15_K;
    const Kelvin rise{20.0};
    EXPECT_DOUBLE_EQ((ambient + rise).raw(), 338.15);
    EXPECT_DOUBLE_EQ((ambient - rise).raw(), 298.15);
    EXPECT_DOUBLE_EQ(units::celsius(45.0).raw(), 318.15);
    // Same-dimension comparison and std::max work directly.
    EXPECT_GT(ambient + rise, ambient);
    EXPECT_DOUBLE_EQ(std::max(ambient, ambient + rise).raw(),
                     338.15);
}

TEST(Units, EnergyFromCapacitanceAndVoltage)
{
    // E = 1/2 C V^2, the paper's Eq 3 building block.
    const Farads c =
        units::picofaradsPerMeter(44.06) * Meters{0.010};
    const Volts vdd = 1.1_V;
    const Joules e = 0.5 * c * vdd * vdd;
    EXPECT_NEAR(e.raw(), 0.5 * 44.06e-14 * 1.21, 1e-25);
}

TEST(Units, ScalarScalingAndCompoundOps)
{
    Meters len = 5_mm;
    len *= 2.0;
    EXPECT_DOUBLE_EQ(len.raw(), 0.010);
    len /= 4.0;
    EXPECT_DOUBLE_EQ(len.raw(), 0.0025);
    Joules acc{0.0};
    acc += 1.0_pJ;
    acc += 2.0_pJ;
    EXPECT_DOUBLE_EQ(acc.raw(), 3e-12);
    acc -= 1.0_pJ;
    EXPECT_DOUBLE_EQ(acc.raw(), 2e-12);
    EXPECT_DOUBLE_EQ((-acc).raw(), -2e-12);
}

TEST(Units, TypedBoundaryConstructors)
{
    EXPECT_DOUBLE_EQ(units::picofaradsPerMeter(44.06).raw(),
                     44.06e-12);
    EXPECT_DOUBLE_EQ(units::ampsPerCm2(1e6).raw(), 1e10);
}

} // anonymous namespace
} // namespace nanobus
