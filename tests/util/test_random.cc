/**
 * @file
 * Unit and statistical tests for util/random.hh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"

namespace nanobus {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 5u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(17);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                           0x100000000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0ull);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(23);
    const uint64_t bound = 10;
    const int n = 100000;
    int counts[10] = {};
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(bound)];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(29);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequencyMatchesP)
{
    Rng rng(37);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(41);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(43);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(47);
    const double p = 0.25;
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricCertainSuccessIsZero)
{
    Rng rng(53);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0ull);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(59);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ParetoJumpInRange)
{
    Rng rng(61);
    for (int i = 0; i < 10000; ++i) {
        uint64_t j = rng.paretoJump(1.1, 1000);
        EXPECT_GE(j, 1ull);
        EXPECT_LE(j, 1000ull);
    }
}

TEST(Rng, ParetoJumpHasHeavyTail)
{
    Rng rng(67);
    const int n = 100000;
    int small = 0, large = 0;
    for (int i = 0; i < n; ++i) {
        uint64_t j = rng.paretoJump(1.1, 1 << 20);
        if (j <= 2)
            ++small;
        if (j >= 1024)
            ++large;
    }
    // Most jumps are short but a non-negligible tail is long.
    EXPECT_GT(small, n / 2);
    EXPECT_GT(large, 10);
}

} // anonymous namespace
} // namespace nanobus
