/**
 * @file
 * Unit tests for util/bitops.hh.
 */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace nanobus {
namespace {

TEST(LowMask, ZeroWidthIsEmpty)
{
    EXPECT_EQ(lowMask(0), 0ull);
}

TEST(LowMask, FullWidthIsAllOnes)
{
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(LowMask, PartialWidths)
{
    EXPECT_EQ(lowMask(1), 0x1ull);
    EXPECT_EQ(lowMask(8), 0xffull);
    EXPECT_EQ(lowMask(32), 0xffffffffull);
    EXPECT_EQ(lowMask(33), 0x1ffffffffull);
}

TEST(BitOf, ReadsIndividualBits)
{
    uint64_t word = 0b1010;
    EXPECT_FALSE(bitOf(word, 0));
    EXPECT_TRUE(bitOf(word, 1));
    EXPECT_FALSE(bitOf(word, 2));
    EXPECT_TRUE(bitOf(word, 3));
}

TEST(WithBit, SetsAndClears)
{
    EXPECT_EQ(withBit(0, 5, true), 1ull << 5);
    EXPECT_EQ(withBit(1ull << 5, 5, false), 0ull);
    // Idempotent.
    EXPECT_EQ(withBit(1ull << 5, 5, true), 1ull << 5);
    EXPECT_EQ(withBit(0, 5, false), 0ull);
}

TEST(Popcount, MatchesKnownValues)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(1), 1u);
    EXPECT_EQ(popcount(0xff), 8u);
    EXPECT_EQ(popcount(~0ull), 64u);
    EXPECT_EQ(popcount(0x5555555555555555ull), 32u);
}

TEST(HammingDistance, RespectsWidth)
{
    // Bits above the width must not count.
    EXPECT_EQ(hammingDistance(0xf0, 0x0f, 8), 8u);
    EXPECT_EQ(hammingDistance(0xf0, 0x0f, 4), 4u);
    EXPECT_EQ(hammingDistance(0xffffffff00000000ull, 0, 32), 0u);
    EXPECT_EQ(hammingDistance(0xffffffff00000000ull, 0, 64), 32u);
}

TEST(HammingDistance, IdenticalWordsIsZero)
{
    EXPECT_EQ(hammingDistance(0xdeadbeef, 0xdeadbeef, 32), 0u);
}

TEST(EvenOddMask, PartitionTheWord)
{
    for (unsigned width : {1u, 2u, 7u, 8u, 32u, 33u, 64u}) {
        EXPECT_EQ(evenMask(width) & oddMask(width), 0ull)
            << "width " << width;
        EXPECT_EQ(evenMask(width) | oddMask(width), lowMask(width))
            << "width " << width;
    }
}

TEST(EvenOddMask, EvenHoldsBitZero)
{
    EXPECT_TRUE(bitOf(evenMask(8), 0));
    EXPECT_FALSE(bitOf(oddMask(8), 0));
    EXPECT_TRUE(bitOf(oddMask(8), 1));
}

TEST(GrayCode, RoundTripsExhaustivelyFor10Bits)
{
    for (uint64_t value = 0; value < 1024; ++value)
        EXPECT_EQ(fromGray(toGray(value)), value);
}

TEST(GrayCode, AdjacentCodesDifferInOneBit)
{
    for (uint64_t value = 0; value < 4096; ++value) {
        uint64_t a = toGray(value);
        uint64_t b = toGray(value + 1);
        EXPECT_EQ(popcount(a ^ b), 1u) << "value " << value;
    }
}

TEST(GrayCode, RoundTripsLargeValues)
{
    for (uint64_t value : {0xdeadbeefull, 0xffffffffull,
                           0x123456789abcdefull, ~0ull}) {
        EXPECT_EQ(fromGray(toGray(value)), value);
    }
}

/** Naive bit-gather transpose: out row r, bit c = in row c, bit r.
 *  This pins the orientation convention (rows indexed by array
 *  position, columns by bit position, LSB = column 0) that the
 *  packed energy kernel depends on. */
void
naiveTranspose(uint64_t out[64], const uint64_t in[64])
{
    for (unsigned r = 0; r < 64; ++r) {
        uint64_t row = 0;
        for (unsigned c = 0; c < 64; ++c)
            row = withBit(row, c, bitOf(in[c], r));
        out[r] = row;
    }
}

TEST(TransposeBits64, MatchesNaiveGatherOnRandomMatrices)
{
    uint64_t state = 0x243f6a8885a308d3ull;
    auto next = [&state] {
        // SplitMix64 step, self-contained so the test has no RNG
        // dependency.
        state += 0x9e3779b97f4a7c15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    for (int trial = 0; trial < 200; ++trial) {
        uint64_t a[64], want[64];
        for (uint64_t &row : a)
            row = next();
        naiveTranspose(want, a);
        transposeBits64(a);
        for (unsigned r = 0; r < 64; ++r)
            EXPECT_EQ(a[r], want[r])
                << "trial " << trial << " row " << r;
    }
}

TEST(TransposeBits64, SingleBitLandsTransposed)
{
    uint64_t a[64] = {};
    a[3] = 1ull << 41; // row 3, column 41
    transposeBits64(a);
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(a[r], r == 41 ? (1ull << 3) : 0ull) << "row " << r;
}

TEST(TransposeBits64, IsAnInvolution)
{
    uint64_t a[64];
    for (unsigned r = 0; r < 64; ++r)
        a[r] = (0x0123456789abcdefull * (r + 1)) ^ (r << 7);
    uint64_t orig[64];
    for (unsigned r = 0; r < 64; ++r)
        orig[r] = a[r];
    transposeBits64(a);
    transposeBits64(a);
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(a[r], orig[r]) << "row " << r;
}

} // anonymous namespace
} // namespace nanobus
