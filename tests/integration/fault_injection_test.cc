/**
 * @file
 * End-to-end fault-injection harness exercise (docs/ROBUSTNESS.md).
 *
 * One sweep is driven through every recoverable error path at once:
 * a trace file with injected bit flips, a Maxwell capacitance matrix
 * perturbed until it is asymmetric, and an ill-conditioned variant
 * that must fall back to the analytical model. The process-level
 * requirement is the acceptance criterion from the robustness work:
 * the sweep completes without an abort and every degradation is
 * visible in the SweepReport.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/io.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
sweepConfig()
{
    BusSimConfig config;
    config.scheme = EncodingScheme::Unencoded;
    config.data_width = 16;
    config.interval_cycles = 500;
    config.thermal.stack_mode = StackMode::None;
    config.record_samples = false;
    return config;
}

class FaultInjectionSweep : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_fault_trace.txt";

    void SetUp() override { FaultInjector::instance().reset(); }

    void TearDown() override
    {
        FaultInjector::instance().reset();
        std::remove(path_.c_str());
    }

    /**
     * Alternating fetch/load traffic over `n` cycles. Each bus sees
     * full-width address flips (0x0 <-> 0xffffffff) so the traffic
     * heats the wires as hard as the energy model allows.
     */
    void writeTrace(uint64_t n)
    {
        TraceWriter writer(path_);
        writer.comment("fault-injection harness input");
        for (uint64_t c = 0; c < n; ++c) {
            AccessKind kind = (c & 1) ? AccessKind::Load
                                      : AccessKind::InstructionFetch;
            uint32_t address = (c & 2) ? 0xffffffffu : 0x00000000u;
            writer.write({c, address, kind});
        }
        writer.flush();
    }

    /** A healthy 16-wire Maxwell matrix (diag total, negative
     *  couplings decaying with separation). */
    Matrix maxwell16() const
    {
        const unsigned n = 16;
        Matrix m(n, n, 0.0);
        for (unsigned i = 0; i < n; ++i) {
            double total = 2.0 * tech130.c_line.raw();
            for (unsigned j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                unsigned sep = j > i ? j - i : i - j;
                const double c = tech130.c_inter.raw() /
                    std::pow(3.0, static_cast<double>(sep - 1));
                m(i, j) = -c;
                total += c;
            }
            m(i, i) = total;
        }
        return m;
    }
};

TEST_F(FaultInjectionSweep, CorruptedInputsDegradeButComplete)
{
    writeTrace(4000);

    // Flip a bit in every 40th line starting at line 10: the reader
    // must skip what no longer parses and keep going.
    FaultInjector::instance().armTraceCorruption(10, 40);

    // Knock the BEM symmetry out with a deterministic perturbation;
    // tryFromMaxwell repairs it and warns.
    Matrix maxwell = maxwell16();
    FaultInjector::perturbEntries(maxwell.rowPtr(0), 16 * 16, 0.02,
                                  2026);

    SweepReport report = runRobustTraceSweep(
        path_, tech130, sweepConfig(), &maxwell, 1000);
    FaultInjector::instance().reset();

    // The sweep ran to the end of the trace...
    EXPECT_TRUE(report.completed);
    // ...with every injected defect surfaced, not swallowed. The
    // comment line plus 4000 records make 4001 raw lines; the
    // corruption cadence 10, 50, 90, ... fires exactly 100 times.
    EXPECT_EQ(report.skipped_lines, 100u);
    EXPECT_EQ(report.records, 3900u);
    ASSERT_FALSE(report.warnings.empty());
    bool symmetry_warning = false;
    for (const std::string &w : report.warnings)
        symmetry_warning = symmetry_warning ||
            w.find("symmetriz") != std::string::npos;
    EXPECT_TRUE(symmetry_warning);
    // The repaired matrix was usable — no analytical fallback.
    EXPECT_FALSE(report.analytical_fallback);
    EXPECT_EQ(report.records + report.skipped_lines, 4000u);
    EXPECT_GT(report.faultCount(), 0u);
}

TEST_F(FaultInjectionSweep, IllConditionedMatrixFallsBackWithWarning)
{
    writeTrace(500);

    // A rank-deficient extraction: wire 7 duplicates wire 8 exactly
    // (equal rows and columns), so the matrix is singular.
    Matrix maxwell = maxwell16();
    for (unsigned j = 0; j < 16; ++j) {
        if (j == 7 || j == 8)
            continue;
        maxwell(7, j) = maxwell(8, j);
        maxwell(j, 7) = maxwell(j, 8);
    }
    maxwell(7, 7) = maxwell(8, 8);
    maxwell(7, 8) = maxwell(8, 8);
    maxwell(8, 7) = maxwell(8, 8);

    SweepReport report = runRobustTraceSweep(
        path_, tech130, sweepConfig(), &maxwell, 10);

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.records, 500u);
    ASSERT_FALSE(report.warnings.empty());
    bool conditioning_warning = false;
    for (const std::string &w : report.warnings)
        conditioning_warning = conditioning_warning ||
            w.find("singular") != std::string::npos ||
            w.find("ill-conditioned") != std::string::npos;
    EXPECT_TRUE(conditioning_warning);
}

TEST_F(FaultInjectionSweep, MisSizedMatrixFallsBackToAnalytical)
{
    writeTrace(200);
    Matrix wrong(8, 8, 0.0);
    for (unsigned i = 0; i < 8; ++i)
        wrong(i, i) = tech130.c_line.raw();

    SweepReport report = runRobustTraceSweep(
        path_, tech130, sweepConfig(), &wrong, 10);

    EXPECT_TRUE(report.completed);
    EXPECT_TRUE(report.analytical_fallback);
    ASSERT_FALSE(report.warnings.empty());
    EXPECT_NE(report.warnings.back().find("analytical"),
              std::string::npos);
}

TEST_F(FaultInjectionSweep, ThermalFaultsPropagateIntoReport)
{
    writeTrace(3000);
    BusSimConfig config = sweepConfig();
    // A ceiling a hair above ambient trips on real traffic heat.
    config.thermal.temperature_ceiling =
        config.initial_temperature + Kelvin{1e-4};

    SweepReport report =
        runRobustTraceSweep(path_, tech130, config, nullptr, 0);

    EXPECT_TRUE(report.completed);
    EXPECT_FALSE(report.instruction_faults.empty());
    EXPECT_FALSE(report.data_faults.empty());
    for (const ThermalFault &f : report.instruction_faults)
        EXPECT_EQ(f.kind, ThermalFault::Kind::Ceiling);
    EXPECT_GE(report.faultCount(),
              report.instruction_faults.size() +
                  report.data_faults.size());
}

TEST_F(FaultInjectionSweep, ExhaustedTraceBudgetIsStillFatal)
{
    // The budget is a containment boundary, not a blank check: a
    // trace that is mostly garbage must still stop the run.
    {
        std::ofstream out(path_);
        for (int i = 0; i < 50; ++i)
            out << "complete garbage line " << i << "\n";
    }
    setAbortOnError(false);
    EXPECT_THROW(runRobustTraceSweep(path_, tech130, sweepConfig(),
                                     nullptr, 5),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
