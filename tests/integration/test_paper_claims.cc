/**
 * @file
 * Integration tests pinning the paper's headline claims (shape, not
 * absolute numbers — see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "energy/bus_energy.hh"
#include "extraction/bem.hh"
#include "sim/experiment.hh"
#include "tech/layer_stack.hh"
#include "thermal/interlayer.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/stats.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

/** Build words for arrow patterns: ^ = rises (0->1), v = falls. */
std::pair<uint64_t, uint64_t>
arrowPattern(const std::string &arrows)
{
    uint64_t prev = 0, next = 0;
    for (size_t i = 0; i < arrows.size(); ++i) {
        if (arrows[i] == '^') {
            next |= 1ull << i;
        } else {
            prev |= 1ull << i;
        }
    }
    return {prev, next};
}

BusEnergyModel
model32(unsigned radius)
{
    BusEnergyModel::Config config;
    config.coupling_radius = radius;
    return BusEnergyModel(
        tech130, CapacitanceMatrix::analytical(tech130, 32), config);
}

TEST(Sec33, MiddleWireUnderestimateNearSixPercent)
{
    // Neglecting non-adjacent coupling underestimates the middle
    // wire's energy by up to ~6.6% (paper, Sec 3.3). Worst case:
    // the middle wire toggles against everything else.
    BusEnergyModel nn = model32(1);
    BusEnergyModel all = model32(31);
    uint64_t prev = 1ull << 16;            // only middle high
    uint64_t next = ~prev & 0xffffffffull; // everything flips
    double e_nn = nn.transitionEnergy(prev, next)[16];
    double e_all = all.transitionEnergy(prev, next)[16];
    double underestimate = (e_all - e_nn) / e_all;
    EXPECT_GT(underestimate, 0.04);
    EXPECT_LT(underestimate, 0.10);
}

TEST(Sec33, UnderestimateRoughlyConstantAcrossNodes)
{
    // "Although the non-adjacent capacitance values are decreasing
    // with technology scaling, this energy estimation error remains
    // more or less constant in future technologies."
    double lo = 1.0, hi = 0.0;
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        BusEnergyModel::Config config;
        config.coupling_radius = 1;
        CapacitanceMatrix caps =
            CapacitanceMatrix::analytical(tech, 32);
        BusEnergyModel nn(tech, caps, config);
        config.coupling_radius = 31;
        BusEnergyModel all(tech, caps, config);
        uint64_t prev = 1ull << 16;
        uint64_t next = ~prev & 0xffffffffull;
        double e_nn = nn.transitionEnergy(prev, next)[16];
        double e_all = all.transitionEnergy(prev, next)[16];
        double u = (e_all - e_nn) / e_all;
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(hi - lo, 0.05); // spread of a few percent at most
}

TEST(Sec33, ThermalWorstCasePatternConcentratesEnergyInCentre)
{
    // ^^v^^ : centre line falls against rising neighbors — the
    // relative thermal worst case (non-uniform energy).
    BusEnergyModel::Config config;
    BusEnergyModel model(
        tech130, CapacitanceMatrix::analytical(tech130, 5), config);
    auto [prev, next] = arrowPattern("^^v^^");
    const auto &e = model.transitionEnergy(prev, next);
    for (unsigned i = 0; i < 5; ++i) {
        if (i != 2) {
            EXPECT_GT(e[2], e[i]) << i;
        }
    }
}

TEST(Sec33, TotalEnergyWorstCaseIsAlternating)
{
    // v^v^v maximizes *total* energy but spreads it uniformly.
    BusEnergyModel::Config config;
    BusEnergyModel model(
        tech130, CapacitanceMatrix::analytical(tech130, 5), config);
    auto [p1, n1] = arrowPattern("^^v^^");
    const auto e1 = model.transitionEnergy(p1, n1);
    double total1 = std::accumulate(e1.begin(), e1.end(), 0.0);
    auto [p2, n2] = arrowPattern("v^v^v");
    const auto &e2 = model.transitionEnergy(p2, n2);
    double total2 = std::accumulate(e2.begin(), e2.end(), 0.0);
    EXPECT_GT(total2, total1);
    // Middle three wires dissipate (nearly) the same energy.
    EXPECT_NEAR(e2[1] / e2[3], 1.0, 1e-9);
    EXPECT_NEAR(e2[2] / e2[1], 1.0, 0.25);
}

TEST(Fig1b, BemNonAdjacentShareAcrossNodes)
{
    // Full 32-wire extraction is exercised in the bench; a 7-wire
    // cross-section already exhibits the 8-10% non-adjacent share.
    for (ItrsNode id : allItrsNodes()) {
        BusGeometry g =
            BusGeometry::forTechnology(itrsNode(id), 7);
        BemExtractor::Options opts;
        opts.panels_per_width = 6;
        CapacitanceMatrix cm = BemExtractor(g, opts).extract();
        auto d = cm.distribution(3);
        EXPECT_GT(d.nonAdjacent(), 0.04) << itrsNodeName(id);
        EXPECT_LT(d.nonAdjacent(), 0.14) << itrsNodeName(id);
    }
}

TEST(Fig3, BusInvertReducesSelfEnergyOnDataBus)
{
    EnergyCell plain = runEnergyStudy("eon", tech130,
                                      EncodingScheme::Unencoded, 64,
                                      50000);
    EnergyCell bi = runEnergyStudy("eon", tech130,
                                   EncodingScheme::BusInvert, 64,
                                   50000);
    EXPECT_LT(bi.data.self, plain.data.self);
}

TEST(Fig3, EncodingGivesNoBenefitOnInstructionBus)
{
    // "For instruction address buses, the added complexity of
    // encoding schemes seem to yield no benefits."
    for (EncodingScheme scheme :
         {EncodingScheme::BusInvert,
          EncodingScheme::OddEvenBusInvert,
          EncodingScheme::CouplingDrivenBusInvert}) {
        EnergyCell plain = runEnergyStudy("swim", tech130,
                                          EncodingScheme::Unencoded,
                                          64, 50000);
        EnergyCell coded = runEnergyStudy("swim", tech130, scheme,
                                          64, 50000);
        double ratio = coded.instruction.total() /
            plain.instruction.total();
        EXPECT_GT(ratio, 0.93) << schemeName(scheme);
        EXPECT_LT(ratio, 1.10) << schemeName(scheme);
    }
}

TEST(Fig3, CouplingSchemesNoBetterThanBiOnAddresses)
{
    // On realistic address streams OEBI/CBI degenerate to BI-like
    // behaviour (paper, Sec 5.2.1).
    EnergyCell bi = runEnergyStudy("crafty", tech130,
                                   EncodingScheme::BusInvert, 64,
                                   50000);
    for (EncodingScheme scheme :
         {EncodingScheme::OddEvenBusInvert,
          EncodingScheme::CouplingDrivenBusInvert}) {
        EnergyCell coded = runEnergyStudy("crafty", tech130, scheme,
                                          64, 50000);
        EXPECT_GT(coded.data.total(), 0.80 * bi.data.total())
            << schemeName(scheme);
    }
}

TEST(Fig3, EnergyShrinksWithTechnologyScaling)
{
    double prev_ia = 1e9, prev_da = 1e9;
    for (ItrsNode id : allItrsNodes()) {
        EnergyCell cell = runEnergyStudy("eon", itrsNode(id),
                                         EncodingScheme::Unencoded,
                                         64, 30000);
        EXPECT_LT(cell.instruction.total().raw(), prev_ia)
            << itrsNodeName(id);
        EXPECT_LT(cell.data.total().raw(), prev_da) << itrsNodeName(id);
        prev_ia = cell.instruction.total().raw();
        prev_da = cell.data.total().raw();
    }
}

TEST(Eq7, DeltaThetaAcrossNodes)
{
    // ~20-30 K at 130 nm; dramatically worse at future nodes.
    MetalLayerStack stack130(tech130);
    const double d130 =
        InterLayerModel(tech130, stack130).deltaTheta().raw();
    EXPECT_GT(d130, 15.0);
    EXPECT_LT(d130, 35.0);

    const TechnologyNode &tech45 = itrsNode(ItrsNode::Nm45);
    MetalLayerStack stack45(tech45);
    const double d45 =
        InterLayerModel(tech45, stack45).deltaTheta().raw();
    EXPECT_GT(d45, 5.0 * d130);
}

TEST(Fig4, AverageTemperatureSaturatesNear338K)
{
    // With the Eq 7 offset (~23 K at 130 nm) the average wire
    // temperature saturates near 338-342 K (paper: "about 338 K").
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 1000;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{1e-5}; // short for test
    TwinBusSimulator twin(tech130, config);
    SyntheticCpu cpu(benchmarkProfile("swim"), 35, 120000);
    twin.run(cpu);

    const double avg = twin.instructionBus()
        .thermalNetwork().averageTemperature().raw();
    EXPECT_GT(avg, 330.0);
    EXPECT_LT(avg, 350.0);

    // Temperatures ramp: late samples hotter than early ones.
    const auto &samples = twin.instructionBus().samples();
    ASSERT_GE(samples.size(), 10u);
    EXPECT_GT(samples.back().avg_temperature.raw(),
              samples.front().avg_temperature.raw() + 5.0);
}

TEST(Fig4, DataBusDissipatesMoreEnergyPerTransmission)
{
    // DA addresses jump around more than IA addresses, so each DA
    // transmission flips more bits on average.
    EnergyCell cell = runEnergyStudy("eon", tech130,
                                     EncodingScheme::Unencoded, 64,
                                     50000);
    {
        SyntheticCpu cpu(benchmarkProfile("eon"), 1, 50000);
        TraceRecord r;
        uint64_t ia_tx = 0, da_tx = 0;
        while (cpu.next(r)) {
            if (r.kind == AccessKind::InstructionFetch)
                ++ia_tx;
            else
                ++da_tx;
        }
        const Joules ia_per_tx = cell.instruction.total() /
            static_cast<double>(ia_tx);
        const Joules da_per_tx = cell.data.total() /
            static_cast<double>(da_tx);
        EXPECT_GT(da_per_tx, ia_per_tx);
    }
}

TEST(Fig4, InstructionBusFluctuatesMoreOnIntegerCode)
{
    // Paper Sec 5.3.1: instruction-bus interval energy fluctuates
    // more than data-bus energy (clearly visible for eon in
    // Fig 4(a) vs (b)); data buses still dissipate more in total.
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 50000;
    config.thermal.stack_mode = StackMode::None;
    TwinBusSimulator twin(tech130, config);
    SyntheticCpu cpu(benchmarkProfile("eon"), 41, 2000000);
    twin.run(cpu);

    auto fluctuation = [](const BusSimulator &bus) {
        RunningStats s;
        for (const auto &sample : bus.samples())
            s.add(sample.energy.total().raw());
        return s.stddev() / s.mean();
    };
    double ia = fluctuation(twin.instructionBus());
    double da = fluctuation(twin.dataBus());
    EXPECT_GT(ia, da);

    EXPECT_GT(twin.dataBus().totalEnergy().total(),
              twin.instructionBus().totalEnergy().total());
}

TEST(Fig4, InstructionBusIsTheWorseSupplyNoiseSource)
{
    // Sec 5.3.1: the IA bus's fluctuating energy profile places a
    // varying load on the supply rails (L dI/dt noise); the steadier
    // DA profile is gentler per unit current.
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 50000;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;
    TwinBusSimulator twin(tech130, config);
    SyntheticCpu cpu(benchmarkProfile("eon"), 47, 3000000);
    twin.run(cpu);

    EXPECT_GT(twin.instructionBus().didtStats().max(),
              twin.dataBus().didtStats().max());
}

TEST(Scaling, FutureNodesRunFarHotter)
{
    // The paper's motivating alarm, end to end: identical traffic on
    // smaller nodes saturates at much higher wire temperatures as
    // k_ild collapses and j_max rises (Eq 7 dominates).
    double prev_avg = 0.0;
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        BusSimConfig config;
        config.data_width = 32;
        config.interval_cycles = 1000;
        config.thermal.stack_mode = StackMode::Dynamic;
        config.thermal.stack_time_constant = Seconds{1e-5};
        TwinBusSimulator twin(tech, config);
        // Scale the cycle count so the wall-clock duration covers
        // the stack time constant at every node's clock frequency.
        SyntheticCpu cpu(benchmarkProfile("eon"), 43,
                         static_cast<uint64_t>(
                             (Seconds{6e-5} * tech.f_clk)));
        twin.run(cpu);
        const double avg = twin.instructionBus()
            .thermalNetwork().averageTemperature().raw();
        EXPECT_GT(avg, prev_avg) << tech.name;
        prev_avg = avg;
    }
    // 45 nm saturates hundreds of kelvin up — unsustainable, which
    // is exactly the design pressure the paper forecasts.
    EXPECT_GT(prev_avg, 318.15 + 100.0);
}

TEST(Fig5, IntermittentIdleBarelyCoolsTheBus)
{
    // ~1M-cycle idle windows drop the dynamic (sub-Kelvin) component
    // only; the inter-layer offset dominates, so the visible dip is
    // tiny (paper Fig 5's whole y-range spans 0.055 K).
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 1000;
    config.thermal.stack_mode = StackMode::Dynamic;
    config.thermal.stack_time_constant = Seconds{1e-5};
    BusSimulator sim(tech130, config);

    // Saturate with heavy activity.
    uint64_t cycle = 0;
    for (int i = 0; i < 120000; ++i, ++cycle)
        sim.transmit(cycle, (i & 1) ? 0xaaaaaaaa : 0x55555555);
    const double hot = sim.thermalNetwork().maxTemperature().raw();

    // Idle for ~50K cycles (scaled analogue of the 1M-cycle gap
    // relative to our shortened stack time constant).
    sim.advanceTo(cycle + 50000);
    const double dipped =
        sim.thermalNetwork().maxTemperature().raw();

    double dip = hot - dipped;
    EXPECT_GT(dip, 0.0);
    // No appreciable cooling: the dip is a tiny fraction of the
    // total rise over ambient.
    EXPECT_LT(dip / (hot - 318.15), 0.25);
}

} // anonymous namespace
} // namespace nanobus
