/**
 * @file
 * End-to-end pipeline tests: generator -> trace file -> simulator,
 * and generator -> cache hierarchy -> L1-L2 bus simulator.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "cache/hierarchy.hh"
#include "sim/experiment.hh"
#include "trace/io.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "vm/kernels.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
fastConfig()
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 1000;
    config.thermal.stack_mode = StackMode::None;
    return config;
}

TEST(Pipeline, TraceFileRoundTripGivesIdenticalEnergy)
{
    std::string path = ::testing::TempDir() + "/nanobus_pipe.txt";

    // Generate, capture to file and to memory simultaneously.
    std::vector<TraceRecord> records;
    {
        SyntheticCpu cpu(benchmarkProfile("twolf"), 71, 5000);
        TraceWriter writer(path);
        TraceRecord r;
        while (cpu.next(r)) {
            records.push_back(r);
            writer.write(r);
        }
        writer.flush();
    }

    TwinBusSimulator live(tech130, fastConfig());
    VectorTraceSource mem(records);
    live.run(mem);

    TwinBusSimulator replay(tech130, fastConfig());
    TraceReader reader(path);
    replay.run(reader);

    EXPECT_DOUBLE_EQ(live.instructionBus().totalEnergy().total().raw(),
                     replay.instructionBus().totalEnergy().total()
                         .raw());
    EXPECT_DOUBLE_EQ(live.dataBus().totalEnergy().total().raw(),
                     replay.dataBus().totalEnergy().total().raw());
    std::remove(path.c_str());
}

TEST(Pipeline, CacheHierarchyDrivesL1L2Bus)
{
    // The extension study: L1-L2 address bus traffic extracted from
    // the hierarchy feeds a third bus simulator.
    CacheHierarchy hierarchy;
    BusSimulator l2_bus(tech130, fastConfig());
    uint64_t last_cycle = 0;
    hierarchy.setL2BusListener(
        [&](uint64_t cycle, uint32_t addr, bool) {
            // Multiple L2 transactions can share a cycle (fill +
            // write-through); serialize them onto the bus in order.
            if (cycle < last_cycle)
                cycle = last_cycle;
            l2_bus.transmit(cycle, addr);
            last_cycle = cycle;
        });

    SyntheticCpu cpu(benchmarkProfile("mcf"), 73, 50000);
    TraceRecord r;
    while (cpu.next(r))
        hierarchy.access(r);

    EXPECT_GT(l2_bus.transmissions(), 100u);
    EXPECT_GT(l2_bus.totalEnergy().total().raw(), 0.0);
    // L2 traffic is a filtered subset of processor traffic.
    EXPECT_LT(l2_bus.transmissions(),
              hierarchy.l1i().stats().accesses() +
              hierarchy.l1d().stats().accesses());
}

TEST(Pipeline, EncodedBusesDecodeBackToTheTrace)
{
    // Transmit a trace through a BI-encoded bus and verify a decoder
    // observing the bus words recovers every address.
    auto tx = makeEncoder(EncodingScheme::BusInvert, 32);
    auto rx = makeEncoder(EncodingScheme::BusInvert, 32);
    tx->reset(0);
    rx->reset(0);
    SyntheticCpu cpu(benchmarkProfile("ammp"), 77, 20000);
    TraceRecord r;
    while (cpu.next(r)) {
        uint64_t word = tx->encode(r.address);
        EXPECT_EQ(rx->decode(word), r.address);
    }
}

TEST(Pipeline, IdleInjectedTraceStretchesThermalTimeline)
{
    BusSimConfig config = fastConfig();
    TwinBusSimulator dense_twin(tech130, config);
    SyntheticCpu dense_cpu(benchmarkProfile("swim"), 79, 20000);
    dense_twin.run(dense_cpu);

    TwinBusSimulator sparse_twin(tech130, config);
    SyntheticCpu sparse_cpu(benchmarkProfile("swim"), 79, 20000);
    IdleInjector injector(sparse_cpu, 5000, 5000);
    sparse_twin.run(injector);

    // Same transmissions, same energy; longer wall-clock.
    EXPECT_EQ(dense_twin.instructionBus().transmissions(),
              sparse_twin.instructionBus().transmissions());
    EXPECT_DOUBLE_EQ(
        dense_twin.instructionBus().totalEnergy().total().raw(),
        sparse_twin.instructionBus().totalEnergy().total().raw());
    EXPECT_GT(sparse_twin.instructionBus().currentCycle(),
              dense_twin.instructionBus().currentCycle());
}

TEST(Pipeline, ExecutionDrivenVmFeedsTheBusModels)
{
    // The mini-VM is a TraceSource: run real code end to end.
    VirtualMachine vm(kernels::buildMemcpy(
        kernels::data_base, kernels::data_base + 0x10000, 2000));
    TwinBusSimulator twin(tech130, fastConfig());
    uint64_t records = twin.run(vm);

    EXPECT_TRUE(vm.halted());
    // memcpy: 4 setup + 2000 iterations x 7 + final check + halt.
    EXPECT_GT(records, 14000u);
    EXPECT_EQ(twin.dataBus().transmissions(), 4000u); // ld + st each
    EXPECT_GT(twin.instructionBus().totalEnergy().total().raw(),
              0.0);
    EXPECT_GT(twin.dataBus().totalEnergy().total().raw(), 0.0);
}

TEST(Pipeline, PointerChasingCostsMorePerTransmission)
{
    // The executed-code version of the paper's mcf-vs-swim contrast.
    auto per_tx = [](VirtualMachine &vm) {
        TwinBusSimulator twin(tech130, fastConfig());
        twin.run(vm);
        return twin.dataBus().totalEnergy().total() /
            static_cast<double>(twin.dataBus().transmissions());
    };

    VirtualMachine stream(kernels::buildMemcpy(
        kernels::data_base, kernels::data_base + 0x8000, 3000));

    VirtualMachine chaser(kernels::buildListWalk(0));
    uint32_t head = kernels::buildListInMemory(
        chaser, kernels::data_base, 1 << 20, 3000, 5);
    VirtualMachine walker(kernels::buildListWalk(head));
    kernels::buildListInMemory(walker, kernels::data_base, 1 << 20,
                               3000, 5);

    EXPECT_GT(per_tx(walker), 1.5 * per_tx(stream));
}

TEST(Pipeline, BusInvertRunsTheDataBusCooler)
{
    // Energy savings must show up as temperature savings: the whole
    // point of coupling the models. Note it is the *average* wire
    // temperature that tracks total energy — BI moves activity onto
    // previously-idle high-order lines, so the *peak* can even tick
    // up slightly, exactly the per-line effect whole-bus models
    // cannot see.
    auto avg_temp = [](EncodingScheme scheme) {
        BusSimConfig config;
        config.data_width = 32;
        config.scheme = scheme;
        config.interval_cycles = 1000;
        config.record_samples = false;
        config.thermal.stack_mode = StackMode::None;
        BusSimulator sim(tech130, config);
        SyntheticCpu cpu(benchmarkProfile("eon"), 57, 300000);
        TraceRecord r;
        uint64_t last = 0;
        while (cpu.next(r)) {
            if (r.kind == AccessKind::InstructionFetch)
                continue;
            sim.transmit(r.cycle, r.address);
            last = r.cycle;
        }
        sim.advanceTo(last);
        return sim.thermalNetwork().averageTemperature().raw();
    };
    double plain = avg_temp(EncodingScheme::Unencoded);
    double bi = avg_temp(EncodingScheme::BusInvert);
    EXPECT_GT(plain, 318.15 + 0.02); // something to save
    EXPECT_LT(bi, plain);
}

TEST(Pipeline, VmKernelsThroughTheCacheHierarchy)
{
    // Execution-driven traffic through the paper's memory system:
    // a streaming kernel caches well, a scattered list walk poorly.
    auto l1d_miss_rate = [](VirtualMachine &vm) {
        CacheHierarchy hierarchy;
        TraceRecord r;
        while (vm.next(r))
            hierarchy.access(r);
        return hierarchy.l1d().stats().missRate();
    };

    VirtualMachine stream(kernels::buildStridedSum(
        kernels::data_base, 20000, 1));

    VirtualMachine seed_vm(kernels::buildListWalk(0));
    uint32_t head = kernels::buildListInMemory(
        seed_vm, kernels::data_base, 1 << 22, 20000, 9);
    VirtualMachine walker(kernels::buildListWalk(head));
    kernels::buildListInMemory(walker, kernels::data_base, 1 << 22,
                               20000, 9);

    double stream_rate = l1d_miss_rate(stream);
    double walk_rate = l1d_miss_rate(walker);
    EXPECT_LT(stream_rate, 0.2);  // unit stride: 1 miss per block
    EXPECT_GT(walk_rate, 0.4);    // scattered 4 MB region
    EXPECT_GT(walk_rate, 3.0 * stream_rate);
}

TEST(Pipeline, AllBenchmarksRunAllSchemes)
{
    // Smoke coverage of the full Fig 3 grid at tiny scale.
    for (const auto &bench : allBenchmarkNames()) {
        for (EncodingScheme scheme : paperSchemes()) {
            EnergyCell cell = runEnergyStudy(bench, tech130, scheme,
                                             64, 2000);
            EXPECT_GT(cell.instruction.total().raw(), 0.0)
                << bench << "/" << schemeName(scheme);
            EXPECT_GT(cell.data.total().raw(), 0.0)
                << bench << "/" << schemeName(scheme);
        }
    }
}

} // anonymous namespace
} // namespace nanobus
