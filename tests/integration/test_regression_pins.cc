/**
 * @file
 * Regression pins: exact golden values for deterministic scenarios.
 *
 * These are not correctness oracles — the physics tests elsewhere
 * are — they pin the numerical outputs of the released models so
 * that refactors which change results are caught immediately and
 * deliberately. If a pin moves on purpose, re-derive it, update the
 * value, and note why in the commit.
 */

#include <gtest/gtest.h>

#include "encoding/schemes.hh"
#include "sim/experiment.hh"
#include "thermal/network.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

/** Relative tolerance for FP pins (libm variation headroom). */
constexpr double rel = 1e-9;

TEST(RegressionPins, FullSwingTransitionEnergy)
{
    BusEnergyModel model(
        tech130, CapacitanceMatrix::analytical(tech130, 32));
    model.transitionEnergy(0, 0xffffffffull);
    // All 32 lines rise together: pure self energy, no coupling.
    EXPECT_NEAR(model.lastBreakdown().total().raw(),
                4.1824150498436809e-11, rel * 4.2e-11);
    EXPECT_DOUBLE_EQ(model.lastBreakdown().coupling.raw(), 0.0);
}

TEST(RegressionPins, MiddleWireWorstCaseEnergy)
{
    BusEnergyModel model(
        tech130, CapacitanceMatrix::analytical(tech130, 32));
    uint64_t prev = 1ull << 16;
    uint64_t next = ~prev & 0xffffffffull;
    EXPECT_NEAR(model.transitionEnergy(prev, next)[16],
                3.8315347917153624e-12, rel * 3.9e-12);
}

TEST(RegressionPins, EonEnergyStudyAt10kCycles)
{
    EnergyCell cell = runEnergyStudy("eon", tech130,
                                     EncodingScheme::Unencoded, 31,
                                     10000, 1);
    EXPECT_NEAR(cell.instruction.total().raw(), 5.475181590619492e-08,
                rel * 5.5e-08);
    EXPECT_NEAR(cell.data.total().raw(), 8.6520574858347297e-08,
                rel * 8.7e-08);
}

TEST(RegressionPins, FiveWireSteadyState)
{
    ThermalConfig config;
    config.stack_mode = StackMode::None;
    ThermalNetwork net(tech130, 5, config);
    auto ss = net.steadyState({0.0, 0.0, 1.0, 0.0, 0.0});
    EXPECT_NEAR(ss[2], 318.80933877527224, 1e-9);
    EXPECT_NEAR(ss[0], 318.41860783594313, 1e-9);
    // Symmetry pins the other side for free.
    EXPECT_NEAR(ss[4], ss[0], 1e-12);
}

TEST(RegressionPins, BusInvertStreamFold)
{
    // Hash-fold of the exact bus words BI emits for a deterministic
    // mcf data stream: pins encoder decisions AND generator output.
    BusInvert bi(32);
    bi.reset(0);
    SyntheticCpu cpu(benchmarkProfile("mcf"), 17, 2000);
    TraceRecord r;
    uint64_t fold = 0;
    while (cpu.next(r)) {
        if (r.kind != AccessKind::InstructionFetch)
            fold ^= bi.encode(r.address) * 0x9e3779b97f4a7c15ull;
    }
    EXPECT_EQ(fold, 0x1d49ad7ad1f70a97ull);
}

} // anonymous namespace
} // namespace nanobus
