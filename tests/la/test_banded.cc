/**
 * @file
 * Unit and property tests for la/banded.hh: Thomas-algorithm
 * tridiagonal and bordered factorizations checked against the dense
 * la/lu reference on the same systems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/banded.hh"
#include "la/lu.hh"
#include "util/faultinject.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

/** Random diagonally dominant system in band form (the la/banded
 *  no-pivoting contract). `bordered` adds the dense row/column. */
BandedMatrix
randomDominant(Rng &rng, size_t n, bool bordered)
{
    BandedMatrix a = bordered ? BandedMatrix::bordered(n)
                              : BandedMatrix::tridiagonal(n);
    for (size_t i = 0; i < n; ++i) {
        double off = 0.0;
        if (i + 1 < n) {
            a.upper(i) = rng.uniform(-1.0, 1.0);
            a.lower(i) = rng.uniform(-1.0, 1.0);
        }
        if (i > 0)
            off += std::fabs(a.lower(i - 1));
        if (i + 1 < n)
            off += std::fabs(a.upper(i));
        if (bordered) {
            a.borderCol(i) = rng.uniform(-0.5, 0.5);
            a.borderRow(i) = rng.uniform(-0.5, 0.5);
            off += std::fabs(a.borderCol(i));
        }
        const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
        a.diag(i) = sign * (off + rng.uniform(0.5, 2.0));
    }
    if (bordered) {
        double off = 0.0;
        for (size_t i = 0; i < n; ++i)
            off += std::fabs(a.borderRow(i));
        a.corner() = off + rng.uniform(0.5, 2.0);
    }
    return a;
}

TEST(Banded, SolvesKnownTridiagonalSystem)
{
    // [2 1 0; 1 3 1; 0 1 2] x = [4, 10, 8] => x = [1, 2, 3]
    BandedMatrix a = BandedMatrix::tridiagonal(3);
    a.diag(0) = 2; a.diag(1) = 3; a.diag(2) = 2;
    a.upper(0) = 1; a.upper(1) = 1;
    a.lower(0) = 1; a.lower(1) = 1;
    BandedFactorization f(a);
    std::vector<double> x = f.solve({4.0, 10.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Banded, OrderOneSystems)
{
    BandedMatrix a = BandedMatrix::tridiagonal(1);
    a.diag(0) = 4.0;
    BandedFactorization f(a);
    EXPECT_NEAR(f.solve({8.0})[0], 2.0, 1e-15);
    EXPECT_NEAR(f.determinant(), 4.0, 1e-15);

    BandedMatrix b = BandedMatrix::bordered(1);
    b.diag(0) = 4.0;
    b.borderCol(0) = 1.0;
    b.borderRow(0) = 1.0;
    b.corner() = 2.0;
    BandedFactorization g(b);
    // [4 1; 1 2] x = [6, 5] => x = [1, 2]
    std::vector<double> x = g.solve({6.0, 5.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Banded, MultiplyMatchesDense)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const bool bordered = trial % 2 == 0;
        const size_t n = 2 + rng.below(12);
        BandedMatrix a = randomDominant(rng, n, bordered);
        std::vector<double> x(a.order());
        for (auto &v : x)
            v = rng.uniform(-3.0, 3.0);
        std::vector<double> y;
        a.multiply(x, y);
        std::vector<double> y_dense = a.toDense().multiply(x);
        ASSERT_EQ(y.size(), y_dense.size());
        for (size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_dense[i], 1e-12) << "i " << i;
    }
}

TEST(Banded, NormsMatchDense)
{
    Rng rng(11);
    BandedMatrix a = randomDominant(rng, 9, true);
    Matrix dense = a.toDense();
    double col_max = 0.0;
    double abs_max = 0.0;
    for (size_t c = 0; c < dense.cols(); ++c) {
        double col = 0.0;
        for (size_t r = 0; r < dense.rows(); ++r) {
            col += std::fabs(dense(r, c));
            abs_max = std::max(abs_max, std::fabs(dense(r, c)));
        }
        col_max = std::max(col_max, col);
    }
    EXPECT_NEAR(a.norm1(), col_max, 1e-12);
    EXPECT_NEAR(a.maxAbs(), abs_max, 1e-12);
}

// Satellite pin: 100 seeded random systems, banded factor/solve/
// rcond bit-for-purpose equivalent to the dense LU reference on the
// same matrix. Half tridiagonal, half bordered; sizes 1..40.
TEST(Banded, RandomSystemsMatchDenseLu)
{
    Rng rng(2026);
    for (int trial = 0; trial < 100; ++trial) {
        const bool bordered = trial % 2 == 1;
        const size_t n = 1 + rng.below(40);
        BandedMatrix a = randomDominant(rng, n, bordered);
        const size_t order = a.order();

        std::vector<double> b(order);
        for (auto &v : b)
            v = rng.uniform(-5.0, 5.0);

        Result<BandedFactorization> banded =
            BandedFactorization::tryFactor(a);
        ASSERT_TRUE(banded.ok()) << "trial " << trial;
        Result<LuFactorization> dense =
            LuFactorization::tryFactor(a.toDense());
        ASSERT_TRUE(dense.ok()) << "trial " << trial;

        std::vector<double> x = banded.value().solve(b);
        std::vector<double> x_ref = dense.value().solve(b);
        ASSERT_EQ(x.size(), order);
        for (size_t i = 0; i < order; ++i)
            EXPECT_NEAR(x[i], x_ref[i], 1e-9 * (1.0 + std::fabs(x_ref[i])))
                << "trial " << trial << " i " << i;

        // Transposed solve against the dense transpose.
        Matrix at(order, order, 0.0);
        Matrix ad = a.toDense();
        for (size_t r = 0; r < order; ++r)
            for (size_t c = 0; c < order; ++c)
                at(r, c) = ad(c, r);
        std::vector<double> xt = banded.value().solveTransposed(b);
        std::vector<double> xt_ref = LuFactorization(at).solve(b);
        for (size_t i = 0; i < order; ++i)
            EXPECT_NEAR(xt[i], xt_ref[i],
                        1e-9 * (1.0 + std::fabs(xt_ref[i])))
                << "trial " << trial << " i " << i;

        // Determinant and the Hager condition estimate agree with the
        // dense path (both are estimates, so compare loosely but on
        // the same scale).
        const double det = banded.value().determinant();
        const double det_ref = dense.value().determinant();
        EXPECT_NEAR(det, det_ref,
                    1e-6 * (1.0 + std::fabs(det_ref)))
            << "trial " << trial;
        const double rc = banded.value().reciprocalCondition();
        const double rc_ref = dense.value().reciprocalCondition();
        EXPECT_GT(rc, 0.0) << "trial " << trial;
        EXPECT_LE(rc, 1.0 + 1e-12) << "trial " << trial;
        EXPECT_NEAR(rc, rc_ref, 0.5 * rc_ref + 1e-12)
            << "trial " << trial;
    }
}

TEST(Banded, SingularBandReportsNotCrashes)
{
    BandedMatrix a = BandedMatrix::tridiagonal(3);
    a.diag(0) = 1.0;
    a.diag(1) = 0.0;  // zero pivot, no dominance
    a.diag(2) = 1.0;
    Result<BandedFactorization> f = BandedFactorization::tryFactor(a);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.error().code, ErrorCode::SingularMatrix);
}

TEST(Banded, SingularBorderReportsNotCrashes)
{
    // T = I, u = v = e0, d = 1 => Schur complement 1 - 1 = 0.
    BandedMatrix a = BandedMatrix::bordered(2);
    a.diag(0) = 1.0;
    a.diag(1) = 1.0;
    a.borderCol(0) = 1.0;
    a.borderRow(0) = 1.0;
    a.corner() = 1.0;
    Result<BandedFactorization> f = BandedFactorization::tryFactor(a);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.error().code, ErrorCode::SingularMatrix);
}

TEST(Banded, NonFiniteEntryReportsNotCrashes)
{
    BandedMatrix a = BandedMatrix::tridiagonal(2);
    a.diag(0) = 1.0;
    a.diag(1) = std::nan("");
    Result<BandedFactorization> f = BandedFactorization::tryFactor(a);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.error().code, ErrorCode::NonFinite);
}

TEST(Banded, TrySolveRejectsBadRhs)
{
    BandedMatrix a = BandedMatrix::tridiagonal(2);
    a.diag(0) = 2.0;
    a.diag(1) = 2.0;
    BandedFactorization f(a);

    Result<std::vector<double>> wrong_size = f.trySolve({1.0});
    ASSERT_FALSE(wrong_size.ok());
    EXPECT_EQ(wrong_size.error().code, ErrorCode::InvalidArgument);

    Result<std::vector<double>> non_finite =
        f.trySolve({1.0, std::nan("")});
    ASSERT_FALSE(non_finite.ok());
    EXPECT_EQ(non_finite.error().code, ErrorCode::NonFinite);

    Result<std::vector<double>> good = f.trySolve({2.0, 4.0});
    ASSERT_TRUE(good.ok());
    EXPECT_NEAR(good.value()[0], 1.0, 1e-15);
    EXPECT_NEAR(good.value()[1], 2.0, 1e-15);
}

TEST(Banded, FaultInjectionCoversFactorAndSolve)
{
    BandedMatrix a = BandedMatrix::tridiagonal(2);
    a.diag(0) = 2.0;
    a.diag(1) = 2.0;

    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::LuFactor, 1);
    Result<BandedFactorization> f = BandedFactorization::tryFactor(a);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.error().code, ErrorCode::FaultInjected);
    FaultInjector::instance().reset();

    BandedFactorization ok(a);
    FaultInjector::instance().armCallFault(FaultSite::LuSolve, 1);
    Result<std::vector<double>> x = ok.trySolve({1.0, 1.0});
    ASSERT_FALSE(x.ok());
    EXPECT_EQ(x.error().code, ErrorCode::FaultInjected);
    FaultInjector::instance().reset();
}

} // anonymous namespace
} // namespace nanobus
