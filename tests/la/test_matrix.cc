/**
 * @file
 * Unit tests for la/matrix.hh.
 */

#include <gtest/gtest.h>

#include "la/matrix.hh"

namespace nanobus {
namespace {

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, ElementWriteAndRead)
{
    Matrix m(2, 2);
    m(0, 1) = 4.0;
    m.at(1, 0) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
}

TEST(Matrix, MultiplyVector)
{
    Matrix m(2, 3);
    // [1 2 3; 4 5 6] * [1, 1, 1]^T = [6, 15]^T
    double v = 1.0;
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            m(r, c) = v++;
    std::vector<double> x = {1.0, 1.0, 1.0};
    std::vector<double> y = m.multiply(x);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, Transposed)
{
    Matrix m(2, 3);
    m(0, 2) = 7.0;
    m(1, 0) = -3.0;
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
    EXPECT_DOUBLE_EQ(t(0, 1), -3.0);
}

TEST(Matrix, MaxAbs)
{
    Matrix m(2, 2);
    m(0, 0) = -9.0;
    m(1, 1) = 3.0;
    EXPECT_DOUBLE_EQ(m.maxAbs(), 9.0);
}

TEST(Matrix, AsymmetryOfSymmetricIsZero)
{
    Matrix m(3, 3);
    m(0, 1) = m(1, 0) = 2.0;
    m(0, 2) = m(2, 0) = -1.0;
    m(1, 2) = m(2, 1) = 0.5;
    EXPECT_DOUBLE_EQ(m.asymmetry(), 0.0);
}

TEST(Matrix, AsymmetryDetectsWorstPair)
{
    Matrix m(2, 2);
    m(0, 1) = 1.0;
    m(1, 0) = 4.0;
    EXPECT_DOUBLE_EQ(m.asymmetry(), 3.0);
}

TEST(Matrix, RowPtrAccessesRow)
{
    Matrix m(2, 2);
    m(1, 0) = 5.0;
    m(1, 1) = 6.0;
    const double *row = m.rowPtr(1);
    EXPECT_DOUBLE_EQ(row[0], 5.0);
    EXPECT_DOUBLE_EQ(row[1], 6.0);
}

} // anonymous namespace
} // namespace nanobus
