/**
 * @file
 * Unit and property tests for la/lu.hh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "la/lu.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

TEST(Lu, SolvesKnownSystem)
{
    // [2 1; 1 3] x = [3, 5] => x = [0.8, 1.4]
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 3;
    LuFactorization lu(a);
    std::vector<double> x = lu.solve({3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, IdentitySolveReturnsRhs)
{
    LuFactorization lu(Matrix::identity(4));
    std::vector<double> b = {1, -2, 3, -4};
    std::vector<double> x = lu.solve(b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Lu, PivotingHandlesZeroDiagonal)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 0;
    LuFactorization lu(a);
    std::vector<double> x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RandomSystemsRoundTrip)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + rng.below(30);
        Matrix a(n, n);
        for (size_t r = 0; r < n; ++r) {
            for (size_t c = 0; c < n; ++c)
                a(r, c) = rng.uniform(-1.0, 1.0);
            a(r, r) += 2.0; // keep well-conditioned
        }
        std::vector<double> x_true(n);
        for (auto &v : x_true)
            v = rng.uniform(-5.0, 5.0);
        std::vector<double> b = a.multiply(x_true);

        LuFactorization lu(a);
        std::vector<double> x = lu.solve(b);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8)
                << "trial " << trial << " i " << i;
    }
}

TEST(Lu, SolveMatrixInvertsIdentityRhs)
{
    Matrix a(3, 3);
    a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
    a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
    a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 2;
    LuFactorization lu(a);
    Matrix inv = lu.solveMatrix(Matrix::identity(3));
    // A * inv should be the identity.
    for (size_t r = 0; r < 3; ++r) {
        std::vector<double> col(3);
        for (size_t c = 0; c < 3; ++c) {
            for (size_t k = 0; k < 3; ++k)
                col[k] = inv(k, c);
            std::vector<double> product = a.multiply(col);
            EXPECT_NEAR(product[r], r == c ? 1.0 : 0.0, 1e-12);
        }
    }
}

TEST(Lu, DeterminantKnownValues)
{
    Matrix a(2, 2);
    a(0, 0) = 3; a(0, 1) = 8;
    a(1, 0) = 4; a(1, 1) = 6;
    LuFactorization lu(a);
    EXPECT_NEAR(lu.determinant(), -14.0, 1e-12);

    EXPECT_NEAR(LuFactorization(Matrix::identity(5)).determinant(),
                1.0, 1e-12);
}

TEST(Lu, SingularMatrixIsFatal)
{
    setAbortOnError(false);
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4; // rank 1
    EXPECT_THROW(LuFactorization lu(a), FatalError);
    setAbortOnError(true);
}

TEST(Lu, NonSquareIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(LuFactorization lu(Matrix(2, 3)), FatalError);
    setAbortOnError(true);
}

TEST(Lu, NearSingularPivotIsCaughtByScaledTolerance)
{
    // Second pivot is 1e-17 — nonzero, but seventeen orders below
    // the matrix scale. An exact-zero test would accept it and
    // produce garbage; the scaled tolerance must reject it.
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 1e-17;
    setAbortOnError(false);
    EXPECT_THROW(LuFactorization lu(a), FatalError);
    setAbortOnError(true);

    Result<LuFactorization> r = LuFactorization::tryFactor(a);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::SingularMatrix);
}

TEST(Lu, TryFactorReturnsErrorNotAbort)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4; // rank 1
    Result<LuFactorization> r = LuFactorization::tryFactor(a);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::SingularMatrix);

    Result<LuFactorization> bad_shape =
        LuFactorization::tryFactor(Matrix(2, 3));
    ASSERT_FALSE(bad_shape.ok());
    EXPECT_EQ(bad_shape.error().code, ErrorCode::InvalidArgument);

    Matrix nan_matrix(2, 2, 1.0);
    nan_matrix(0, 1) = std::nan("");
    Result<LuFactorization> non_finite =
        LuFactorization::tryFactor(nan_matrix);
    ASSERT_FALSE(non_finite.ok());
    EXPECT_EQ(non_finite.error().code, ErrorCode::NonFinite);
}

TEST(Lu, TryFactorSolvesLikeConstructor)
{
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 3;
    Result<LuFactorization> r = LuFactorization::tryFactor(a);
    ASSERT_TRUE(r.ok());
    Result<std::vector<double>> x = r.value().trySolve({3.0, 5.0});
    ASSERT_TRUE(x.ok());
    EXPECT_NEAR(x.value()[0], 0.8, 1e-12);
    EXPECT_NEAR(x.value()[1], 1.4, 1e-12);
}

TEST(Lu, TrySolveRejectsBadRhs)
{
    LuFactorization lu(Matrix::identity(3));
    Result<std::vector<double>> wrong_size = lu.trySolve({1.0, 2.0});
    ASSERT_FALSE(wrong_size.ok());
    EXPECT_EQ(wrong_size.error().code, ErrorCode::InvalidArgument);

    Result<std::vector<double>> non_finite =
        lu.trySolve({1.0, std::nan(""), 3.0});
    ASSERT_FALSE(non_finite.ok());
    EXPECT_EQ(non_finite.error().code, ErrorCode::NonFinite);
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose)
{
    Rng rng(7);
    const size_t n = 6;
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 3.0;
    }
    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.uniform(-2.0, 2.0);

    LuFactorization lu(a);
    std::vector<double> x = lu.solveTransposed(b);
    LuFactorization lu_t(a.transposed());
    std::vector<double> expected = lu_t.solve(b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], expected[i], 1e-10) << i;
}

TEST(Lu, ConditionEstimateWellConditioned)
{
    LuFactorization lu(Matrix::identity(8));
    EXPECT_NEAR(lu.reciprocalCondition(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(lu.norm1(), 1.0);
}

TEST(Lu, ConditionEstimateFlagsIllConditioned)
{
    // diag(1, 1e-13): condition number 1e13 exactly; Hager's
    // estimator is exact for diagonal matrices.
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 1e-13;
    LuFactorization lu(a);
    double rcond = lu.reciprocalCondition();
    EXPECT_GT(rcond, 1e-14);
    EXPECT_LT(rcond, 1e-12);
}

TEST(Lu, ConditionEstimateTracksHilbert)
{
    // The 8x8 Hilbert matrix has kappa_1 ~ 3.4e10; the estimator
    // must land within a couple orders of magnitude.
    const size_t n = 8;
    Matrix h(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            h(r, c) = 1.0 / static_cast<double>(r + c + 1);
    LuFactorization lu(h);
    double rcond = lu.reciprocalCondition();
    EXPECT_GT(rcond, 1e-13);
    EXPECT_LT(rcond, 1e-8);
}

TEST(Lu, InjectedFactorFailure)
{
    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::LuFactor, 1);
    Result<LuFactorization> r =
        LuFactorization::tryFactor(Matrix::identity(2));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::FaultInjected);
    FaultInjector::instance().reset();

    // Disarmed, the same call succeeds.
    EXPECT_TRUE(LuFactorization::tryFactor(Matrix::identity(2)).ok());
}

TEST(Lu, InjectedSolveFailure)
{
    FaultInjector::instance().reset();
    LuFactorization lu(Matrix::identity(2));
    FaultInjector::instance().armCallFault(FaultSite::LuSolve, 2);
    EXPECT_TRUE(lu.trySolve({1.0, 2.0}).ok());
    Result<std::vector<double>> r = lu.trySolve({1.0, 2.0});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::FaultInjected);
    FaultInjector::instance().reset();
}

} // anonymous namespace
} // namespace nanobus
