/**
 * @file
 * Unit and property tests for la/lu.hh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "la/lu.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

TEST(Lu, SolvesKnownSystem)
{
    // [2 1; 1 3] x = [3, 5] => x = [0.8, 1.4]
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 3;
    LuFactorization lu(a);
    std::vector<double> x = lu.solve({3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, IdentitySolveReturnsRhs)
{
    LuFactorization lu(Matrix::identity(4));
    std::vector<double> b = {1, -2, 3, -4};
    std::vector<double> x = lu.solve(b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Lu, PivotingHandlesZeroDiagonal)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 0;
    LuFactorization lu(a);
    std::vector<double> x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RandomSystemsRoundTrip)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + rng.below(30);
        Matrix a(n, n);
        for (size_t r = 0; r < n; ++r) {
            for (size_t c = 0; c < n; ++c)
                a(r, c) = rng.uniform(-1.0, 1.0);
            a(r, r) += 2.0; // keep well-conditioned
        }
        std::vector<double> x_true(n);
        for (auto &v : x_true)
            v = rng.uniform(-5.0, 5.0);
        std::vector<double> b = a.multiply(x_true);

        LuFactorization lu(a);
        std::vector<double> x = lu.solve(b);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8)
                << "trial " << trial << " i " << i;
    }
}

TEST(Lu, SolveMatrixInvertsIdentityRhs)
{
    Matrix a(3, 3);
    a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
    a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
    a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 2;
    LuFactorization lu(a);
    Matrix inv = lu.solveMatrix(Matrix::identity(3));
    // A * inv should be the identity.
    for (size_t r = 0; r < 3; ++r) {
        std::vector<double> col(3);
        for (size_t c = 0; c < 3; ++c) {
            for (size_t k = 0; k < 3; ++k)
                col[k] = inv(k, c);
            std::vector<double> product = a.multiply(col);
            EXPECT_NEAR(product[r], r == c ? 1.0 : 0.0, 1e-12);
        }
    }
}

TEST(Lu, DeterminantKnownValues)
{
    Matrix a(2, 2);
    a(0, 0) = 3; a(0, 1) = 8;
    a(1, 0) = 4; a(1, 1) = 6;
    LuFactorization lu(a);
    EXPECT_NEAR(lu.determinant(), -14.0, 1e-12);

    EXPECT_NEAR(LuFactorization(Matrix::identity(5)).determinant(),
                1.0, 1e-12);
}

TEST(Lu, SingularMatrixIsFatal)
{
    setAbortOnError(false);
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4; // rank 1
    EXPECT_THROW(LuFactorization lu(a), FatalError);
    setAbortOnError(true);
}

TEST(Lu, NonSquareIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(LuFactorization lu(Matrix(2, 3)), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
