/**
 * @file
 * Unit tests for the mini-VM: ISA semantics, control flow, memory,
 * and trace emission.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "vm/machine.hh"

namespace nanobus {
namespace {

TEST(VmMemoryTest, UnmappedReadsZero)
{
    VmMemory mem;
    EXPECT_EQ(mem.loadWord(0x1000), 0u);
    EXPECT_EQ(mem.mappedPages(), 0u);
}

TEST(VmMemoryTest, StoreThenLoad)
{
    VmMemory mem;
    mem.storeWord(0x2000, 0xdeadbeef);
    EXPECT_EQ(mem.loadWord(0x2000), 0xdeadbeefu);
    EXPECT_EQ(mem.loadWord(0x2004), 0u);
    EXPECT_EQ(mem.mappedPages(), 1u);
}

TEST(VmMemoryTest, DistantAddressesMapSeparatePages)
{
    VmMemory mem;
    mem.storeWord(0x00000000, 1);
    mem.storeWord(0xfffffffc, 2);
    EXPECT_EQ(mem.mappedPages(), 2u);
    EXPECT_EQ(mem.loadWord(0x00000000), 1u);
    EXPECT_EQ(mem.loadWord(0xfffffffc), 2u);
}

TEST(VmMemoryTest, UnalignedAccessIsFatal)
{
    setAbortOnError(false);
    VmMemory mem;
    EXPECT_THROW(mem.loadWord(0x1001), FatalError);
    EXPECT_THROW(mem.storeWord(0x1002, 0), FatalError);
    setAbortOnError(true);
}

TEST(ProgramBuilder, SealResolvesLabels)
{
    Program p;
    auto target = p.newLabel();
    p.jump(target);       // forward reference
    p.loadImm(1, 42);     // skipped
    p.bind(target);
    p.halt();
    p.seal();
    EXPECT_EQ(p.code()[0].op, Op::Jump);
    EXPECT_EQ(p.code()[0].imm, 2);
}

TEST(ProgramBuilder, UnboundLabelIsFatal)
{
    setAbortOnError(false);
    Program p;
    auto label = p.newLabel();
    p.jump(label);
    p.halt();
    EXPECT_THROW(p.seal(), FatalError);
    setAbortOnError(true);
}

TEST(ProgramBuilder, DoubleBindIsFatal)
{
    setAbortOnError(false);
    Program p;
    auto label = p.newLabel();
    p.bind(label);
    EXPECT_THROW(p.bind(label), FatalError);
    setAbortOnError(true);
}

TEST(Vm, ArithmeticSemantics)
{
    Program p;
    p.loadImm(1, 7);
    p.loadImm(2, 5);
    p.alu(Op::Add, 3, 1, 2);   // 12
    p.alu(Op::Sub, 4, 1, 2);   // 2
    p.alu(Op::Mul, 5, 1, 2);   // 35
    p.alu(Op::And, 6, 1, 2);   // 5
    p.alu(Op::Or, 7, 1, 2);    // 7
    p.alu(Op::Xor, 8, 1, 2);   // 2
    p.shift(Op::ShlI, 9, 1, 3);  // 56
    p.shift(Op::ShrI, 10, 1, 1); // 3
    p.halt();

    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(3), 12u);
    EXPECT_EQ(vm.reg(4), 2u);
    EXPECT_EQ(vm.reg(5), 35u);
    EXPECT_EQ(vm.reg(6), 5u);
    EXPECT_EQ(vm.reg(7), 7u);
    EXPECT_EQ(vm.reg(8), 2u);
    EXPECT_EQ(vm.reg(9), 56u);
    EXPECT_EQ(vm.reg(10), 3u);
}

TEST(Vm, RegisterZeroIsHardwired)
{
    Program p;
    p.loadImm(reg::zero, 99);
    p.addi(1, reg::zero, 5);
    p.halt();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(reg::zero), 0u);
    EXPECT_EQ(vm.reg(1), 5u);
}

TEST(Vm, NegativeImmediatesWrap)
{
    Program p;
    p.loadImm(1, 10);
    p.addi(2, 1, -3);
    p.loadImm(3, -1);
    p.halt();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(2), 7u);
    EXPECT_EQ(vm.reg(3), 0xffffffffu);
}

TEST(Vm, BranchSemantics)
{
    // Count down from 5, accumulating: result 5+4+3+2+1 = 15.
    Program p;
    auto loop = p.newLabel();
    auto done = p.newLabel();
    p.loadImm(1, 0);
    p.loadImm(2, 5);
    p.bind(loop);
    p.branch(Op::Beq, 2, reg::zero, done);
    p.alu(Op::Add, 1, 1, 2);
    p.addi(2, 2, -1);
    p.jump(loop);
    p.bind(done);
    p.halt();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(1), 15u);
}

TEST(Vm, SignedComparisons)
{
    Program p;
    auto less = p.newLabel();
    p.loadImm(1, -5);
    p.loadImm(2, 3);
    p.branch(Op::Blt, 1, 2, less); // -5 < 3 signed: taken
    p.loadImm(3, 111);             // skipped
    p.bind(less);
    p.halt();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(3), 0u);
}

TEST(Vm, CallAndReturn)
{
    Program p;
    auto func = p.newLabel();
    p.call(func);
    p.addi(2, 1, 1);   // executes after return: r2 = r1 + 1
    p.halt();
    p.bind(func);
    p.loadImm(1, 41);
    p.ret();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(1), 41u);
    EXPECT_EQ(vm.reg(2), 42u);
}

TEST(Vm, LoadStoreRoundTrip)
{
    Program p;
    p.loadImm(1, 0x20000000);
    p.loadImm(2, 1234);
    p.store(2, 1, 8);
    p.load(3, 1, 8);
    p.halt();
    VirtualMachine vm(p);
    vm.run();
    EXPECT_EQ(vm.reg(3), 1234u);
    EXPECT_EQ(vm.memory().loadWord(0x20000008), 1234u);
}

TEST(Vm, HaltStopsExecution)
{
    Program p;
    p.halt();
    p.loadImm(1, 7); // unreachable
    VirtualMachine vm(p);
    EXPECT_EQ(vm.run(), 1u);
    EXPECT_TRUE(vm.halted());
    EXPECT_FALSE(vm.step());
    EXPECT_EQ(vm.reg(1), 0u);
}

TEST(Vm, RunRespectsCycleLimit)
{
    Program p;
    auto loop = p.newLabel();
    p.bind(loop);
    p.addi(1, 1, 1);
    p.jump(loop); // infinite
    VirtualMachine vm(p);
    EXPECT_EQ(vm.run(1000), 1000u);
    EXPECT_FALSE(vm.halted());
}

TEST(Vm, TraceEmissionMatchesExecution)
{
    Program p;
    p.loadImm(1, 0x20000000);
    p.load(2, 1, 0);   // cycle 1: fetch + load
    p.store(2, 1, 4);  // cycle 2: fetch + store
    p.halt();          // cycle 3: fetch only
    VirtualMachine vm(p);

    std::vector<TraceRecord> records;
    TraceRecord r;
    while (vm.next(r))
        records.push_back(r);

    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0].kind, AccessKind::InstructionFetch);
    EXPECT_EQ(records[0].address, vm.codeAddress(0));
    EXPECT_EQ(records[1].kind, AccessKind::InstructionFetch);
    EXPECT_EQ(records[2].kind, AccessKind::Load);
    EXPECT_EQ(records[2].address, 0x20000000u);
    EXPECT_EQ(records[2].cycle, records[1].cycle);
    EXPECT_EQ(records[3].kind, AccessKind::InstructionFetch);
    EXPECT_EQ(records[4].kind, AccessKind::Store);
    EXPECT_EQ(records[4].address, 0x20000004u);
    EXPECT_EQ(records[5].kind, AccessKind::InstructionFetch);
}

TEST(Vm, FetchAddressesAreCodeBased)
{
    Program p;
    p.loadImm(1, 1);
    p.halt();
    VirtualMachine vm(p, 0x00400000);
    TraceRecord r;
    ASSERT_TRUE(vm.next(r));
    EXPECT_EQ(r.address, 0x00400000u);
}

TEST(Vm, RunningOffTheProgramIsFatal)
{
    setAbortOnError(false);
    Program p;
    p.loadImm(1, 1); // no halt: pc runs off
    VirtualMachine vm(p);
    EXPECT_THROW(vm.run(), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
