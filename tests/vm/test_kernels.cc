/**
 * @file
 * Tests for the VM workload kernels: each must compute the right
 * answer *and* produce the advertised address-stream character.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "vm/kernels.hh"

namespace nanobus {
namespace {

using namespace kernels;

TEST(Memcpy, CopiesWordsExactly)
{
    const uint32_t src = data_base;
    const uint32_t dst = data_base + 0x10000;
    const uint32_t words = 64;
    VirtualMachine vm(buildMemcpy(src, dst, words));
    for (uint32_t i = 0; i < words; ++i)
        vm.memory().storeWord(src + 4 * i, 0xa0000000u + i * 7);
    vm.run();
    ASSERT_TRUE(vm.halted());
    for (uint32_t i = 0; i < words; ++i)
        EXPECT_EQ(vm.memory().loadWord(dst + 4 * i),
                  0xa0000000u + i * 7)
            << i;
}

TEST(Memcpy, ZeroWordsIsANoop)
{
    VirtualMachine vm(buildMemcpy(data_base, data_base + 64, 0));
    vm.run();
    EXPECT_TRUE(vm.halted());
}

TEST(Memcpy, StreamIsUnitStride)
{
    const uint32_t words = 100;
    VirtualMachine vm(buildMemcpy(data_base, data_base + 0x10000,
                                  words));
    TraceStatistics stats;
    stats.consume(vm);
    EXPECT_EQ(stats.loads(), words);
    EXPECT_EQ(stats.stores(), words);
    // Alternating load/store between two unit-stride streams: high
    // Hamming from the base swap, but bounded activity per bit.
    EXPECT_GT(stats.data().transactions, 0u);
}

TEST(StridedSum, SumsTheRightElements)
{
    const uint32_t count = 32, stride = 4;
    VirtualMachine vm(buildStridedSum(data_base, count, stride));
    uint32_t expected = 0;
    for (uint32_t i = 0; i < count * stride; ++i) {
        vm.memory().storeWord(data_base + 4 * i, i);
        if (i % stride == 0)
            expected += i;
    }
    vm.run();
    EXPECT_EQ(vm.reg(1), expected);
}

TEST(MatMul, SmallKnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    const uint32_t a = data_base;
    const uint32_t b = data_base + 0x1000;
    const uint32_t c = data_base + 0x2000;
    VirtualMachine vm(buildMatMul(a, b, c, 2));
    uint32_t a_vals[] = {1, 2, 3, 4};
    uint32_t b_vals[] = {5, 6, 7, 8};
    for (int i = 0; i < 4; ++i) {
        vm.memory().storeWord(a + 4 * i, a_vals[i]);
        vm.memory().storeWord(b + 4 * i, b_vals[i]);
    }
    vm.run();
    EXPECT_EQ(vm.memory().loadWord(c + 0), 19u);
    EXPECT_EQ(vm.memory().loadWord(c + 4), 22u);
    EXPECT_EQ(vm.memory().loadWord(c + 8), 43u);
    EXPECT_EQ(vm.memory().loadWord(c + 12), 50u);
}

TEST(MatMul, IdentityLeavesMatrixUnchanged)
{
    const uint32_t n = 4;
    const uint32_t a = data_base;
    const uint32_t b = data_base + 0x1000;
    const uint32_t c = data_base + 0x2000;
    VirtualMachine vm(buildMatMul(a, b, c, n));
    for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t j = 0; j < n; ++j) {
            vm.memory().storeWord(a + 4 * (i * n + j), i * n + j + 1);
            vm.memory().storeWord(b + 4 * (i * n + j),
                                  i == j ? 1 : 0);
        }
    }
    vm.run();
    for (uint32_t i = 0; i < n * n; ++i)
        EXPECT_EQ(vm.memory().loadWord(c + 4 * i), i + 1) << i;
}

TEST(MatMul, InstructionCountScalesCubically)
{
    auto cycles_for = [](uint32_t n) {
        VirtualMachine vm(buildMatMul(data_base, data_base + 0x4000,
                                      data_base + 0x8000, n));
        return vm.run();
    };
    uint64_t c4 = cycles_for(4);
    uint64_t c8 = cycles_for(8);
    // Inner loop dominates: ~8x the work for 2x n.
    EXPECT_GT(c8, 6 * c4);
    EXPECT_LT(c8, 10 * c4);
}

TEST(ListWalk, SumsPayloadsInOrder)
{
    Program p = buildListWalk(0); // placeholder head; rebuilt below
    // Build list first to learn the head, then build the walker.
    VirtualMachine scratch(p);
    uint32_t head = buildListInMemory(scratch, data_base, 1 << 16,
                                      100, 42);

    VirtualMachine vm(buildListWalk(head));
    // Recreate the same list in the real machine.
    buildListInMemory(vm, data_base, 1 << 16, 100, 42);
    vm.run();
    // Payloads 1..100.
    EXPECT_EQ(vm.reg(1), 100u * 101u / 2u);
}

TEST(ListWalk, VisitsNodesInScatteredOrder)
{
    VirtualMachine vm(buildListWalk(0));
    uint32_t head = buildListInMemory(vm, data_base, 1 << 16, 200,
                                      7);
    VirtualMachine walker(buildListWalk(head));
    buildListInMemory(walker, data_base, 1 << 16, 200, 7);

    // Collect the visited node addresses from the trace.
    std::vector<uint32_t> visits;
    TraceRecord r;
    while (walker.next(r)) {
        if (r.kind == AccessKind::Load && (r.address & 4) == 0)
            visits.push_back(r.address); // next-pointer loads
    }
    ASSERT_GE(visits.size(), 200u);
    // Shuffled layout: consecutive visits are rarely adjacent.
    unsigned adjacent = 0;
    for (size_t i = 1; i < visits.size(); ++i) {
        uint32_t delta = visits[i] > visits[i - 1]
            ? visits[i] - visits[i - 1]
            : visits[i - 1] - visits[i];
        if (delta <= 8)
            ++adjacent;
    }
    EXPECT_LT(adjacent, visits.size() / 10);
}

TEST(ListWalk, LayoutIsDeterministicPerSeed)
{
    VirtualMachine a(buildListWalk(0));
    VirtualMachine b(buildListWalk(0));
    uint32_t head_a = buildListInMemory(a, data_base, 1 << 14, 50,
                                        11);
    uint32_t head_b = buildListInMemory(b, data_base, 1 << 14, 50,
                                        11);
    EXPECT_EQ(head_a, head_b);
}

TEST(ListWalk, RejectsOverfullRegion)
{
    setAbortOnError(false);
    VirtualMachine vm(buildListWalk(0));
    EXPECT_THROW(buildListInMemory(vm, data_base, 64, 100, 1),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
