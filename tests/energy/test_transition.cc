/**
 * @file
 * Tests for the transition taxonomy of Sec 3.
 */

#include <gtest/gtest.h>

#include "energy/transition.hh"

namespace nanobus {
namespace {

TEST(Transition, LineTransitionClassification)
{
    EXPECT_EQ(lineTransition(0b0, 0b1, 0), LineTransition::Rising);
    EXPECT_EQ(lineTransition(0b1, 0b0, 0), LineTransition::Falling);
    EXPECT_EQ(lineTransition(0b1, 0b1, 0), LineTransition::Steady);
    EXPECT_EQ(lineTransition(0b0, 0b0, 0), LineTransition::Steady);
}

TEST(Transition, TransitionValueSigns)
{
    EXPECT_EQ(transitionValue(0b00, 0b10, 1), 1);
    EXPECT_EQ(transitionValue(0b10, 0b00, 1), -1);
    EXPECT_EQ(transitionValue(0b10, 0b10, 1), 0);
}

TEST(Transition, PaperChargeCases)
{
    // Charge transitions: 00->01, 00->10, 11->01, 11->10.
    // Written as pair (v_i, v_j) values.
    EXPECT_EQ(classifyPair(0, 1), PairKind::Charge);   // 00->01
    EXPECT_EQ(classifyPair(1, 0), PairKind::Charge);   // 00->10
    EXPECT_EQ(classifyPair(-1, 0), PairKind::Discharge); // 11->01
    EXPECT_EQ(classifyPair(0, -1), PairKind::Discharge); // 11->10
}

TEST(Transition, PaperDischargeCases)
{
    // Discharge: 01->00, 01->11, 10->00, 10->11. In each, exactly
    // one line moves and the voltage across the coupling cap falls.
    EXPECT_EQ(classifyPair(0, -1), PairKind::Discharge); // 01->00
    EXPECT_EQ(classifyPair(1, 0), PairKind::Charge);     // 01->11: i rises
    EXPECT_EQ(classifyPair(-1, 0), PairKind::Discharge); // 10->00
    EXPECT_EQ(classifyPair(0, 1), PairKind::Charge);     // 10->11
}

TEST(Transition, ToggleCases)
{
    EXPECT_EQ(classifyPair(1, -1), PairKind::Toggle);  // 01->10
    EXPECT_EQ(classifyPair(-1, 1), PairKind::Toggle);  // 10->01
}

TEST(Transition, IdleAndSameDirection)
{
    EXPECT_EQ(classifyPair(0, 0), PairKind::Idle);
    EXPECT_EQ(classifyPair(1, 1), PairKind::SameDirection);
    EXPECT_EQ(classifyPair(-1, -1), PairKind::SameDirection);
}

TEST(Transition, CouplingFactorValues)
{
    // Steady line dissipates nothing regardless of its neighbor.
    for (int vj : {-1, 0, 1})
        EXPECT_EQ(couplingFactor(0, vj), 0);
    // Charge/discharge: factor 1 in the moving line.
    EXPECT_EQ(couplingFactor(1, 0), 1);
    EXPECT_EQ(couplingFactor(-1, 0), 1);
    // Toggle: Miller doubling, factor 2 in each line.
    EXPECT_EQ(couplingFactor(1, -1), 2);
    EXPECT_EQ(couplingFactor(-1, 1), 2);
    // Same direction: no change across the capacitance.
    EXPECT_EQ(couplingFactor(1, 1), 0);
    EXPECT_EQ(couplingFactor(-1, -1), 0);
}

TEST(Transition, SelfTransitionCountIsHamming)
{
    EXPECT_EQ(selfTransitionCount(0x0f, 0xf0, 8), 8u);
    EXPECT_EQ(selfTransitionCount(0x0f, 0xf0, 4), 4u);
    EXPECT_EQ(selfTransitionCount(0xff, 0xff, 8), 0u);
}

} // anonymous namespace
} // namespace nanobus
