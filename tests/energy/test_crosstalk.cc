/**
 * @file
 * Tests for the crosstalk-dependent delay model.
 */

#include <gtest/gtest.h>

#include "energy/crosstalk.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);
const Meters len{0.010};

TEST(Crosstalk, DelayClassEnumeration)
{
    CrosstalkDelayModel model(tech130);
    // 5-wire bus, middle line (index 2).
    // Neighbors steady, victim rises: class 1 + 1.
    EXPECT_EQ(model.delayClass(0b00000, 0b00100, 2, 5), 2u);
    // All three rise together: class 0.
    EXPECT_EQ(model.delayClass(0b00000, 0b01110, 2, 5), 0u);
    // Victim rises, both neighbors fall: class 2 + 2 (worst).
    EXPECT_EQ(model.delayClass(0b01010, 0b00100, 2, 5), 4u);
    // One neighbor opposes, one steady: class 3.
    EXPECT_EQ(model.delayClass(0b01000, 0b00100, 2, 5), 3u);
}

TEST(Crosstalk, EdgeLinesHaveOneNeighbor)
{
    CrosstalkDelayModel model(tech130);
    // Line 0 rising with steady neighbor: class 1.
    EXPECT_EQ(model.delayClass(0b00, 0b01, 0, 2), 1u);
    // Line 0 rising against falling line 1: class 2.
    EXPECT_EQ(model.delayClass(0b10, 0b01, 0, 2), 2u);
}

TEST(Crosstalk, EffectiveCapacitanceMatchesClass)
{
    CrosstalkDelayModel model(tech130);
    FaradsPerMeter c0 = model.effectiveCapacitance(0b000, 0b111,
                                                   1, 3);
    EXPECT_DOUBLE_EQ(c0.raw(), tech130.c_line.raw()); // class 0
    FaradsPerMeter c4 = model.effectiveCapacitance(0b101, 0b010,
                                                   1, 3);
    EXPECT_DOUBLE_EQ(
        c4.raw(), (tech130.c_line + 4.0 * tech130.c_inter).raw());
}

TEST(Crosstalk, DelayOrderingBestNominalWorst)
{
    CrosstalkDelayModel model(tech130);
    Seconds best = model.bestCaseDelay(len);
    Seconds nominal = model.nominalDelay(len);
    Seconds worst = model.worstCaseDelay(len);
    EXPECT_LT(best.raw(), nominal.raw());
    EXPECT_LT(nominal.raw(), worst.raw());
}

TEST(Crosstalk, WorstToNominalRatioPlausible)
{
    // The well-known crosstalk penalty: opposing neighbors roughly
    // 1.3-1.8x the nominal delay at these geometries (only the wire
    // C scales; the gate load does not).
    CrosstalkDelayModel model(tech130);
    double ratio = model.worstCaseDelay(len) /
        model.nominalDelay(len);  // s / s collapses to double
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 2.0);
}

TEST(Crosstalk, BusDelayIsSlowestSwitchingLine)
{
    CrosstalkDelayModel model(tech130);
    // 3-wire bus: line 1 toggles against both neighbors (class 4),
    // lines 0 and 2 move together with nothing opposing beyond
    // line 1.
    uint64_t prev = 0b010, next = 0b101;
    Seconds bus = model.busDelay(prev, next, 3, len);
    Seconds line1 = model.lineDelay(prev, next, 1, 3, len);
    EXPECT_DOUBLE_EQ(bus.raw(), line1.raw());
    EXPECT_GE(line1.raw(),
              model.lineDelay(prev, next, 0, 3, len).raw());
}

TEST(Crosstalk, IdleBusHasZeroDelay)
{
    CrosstalkDelayModel model(tech130);
    EXPECT_DOUBLE_EQ(model.busDelay(0xff, 0xff, 8, len).raw(),
                     0.0);
}

TEST(Crosstalk, WorstCaseMatchesAlternatingPattern)
{
    // 01010 -> 10101 puts every interior line in class 4.
    CrosstalkDelayModel model(tech130);
    Seconds bus = model.busDelay(0b01010, 0b10101, 5, len);
    EXPECT_NEAR(bus.raw(), model.worstCaseDelay(len).raw(), 1e-18);
}

TEST(Crosstalk, ScalingWorsensTheRelativePenalty)
{
    // c_inter/c_line grows with scaling, so the worst/best spread
    // widens at smaller nodes — the trend the paper's introduction
    // warns about.
    double prev_ratio = 0.0;
    for (ItrsNode id : allItrsNodes()) {
        CrosstalkDelayModel model(itrsNode(id));
        double ratio = model.worstCaseDelay(len) /
            model.bestCaseDelay(len);
        EXPECT_GT(ratio, prev_ratio) << itrsNodeName(id);
        prev_ratio = ratio;
    }
}

TEST(Crosstalk, InvalidInputsAreFatal)
{
    setAbortOnError(false);
    CrosstalkDelayModel model(tech130);
    EXPECT_THROW(model.delayClass(0, 1, 5, 4), FatalError);
    EXPECT_THROW(model.delayForCapacitance(FaradsPerMeter{1e-10},
                                           Meters{0.0}),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
