/**
 * @file
 * Tests for the prior-work baseline models, including the theorem
 * that the paper's per-line energies sum exactly to the whole-bus
 * quadratic form.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "energy/baselines.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

TEST(WholeBus, TotalsMatchPerLineSumExactly)
{
    // E_total = sum_i E_i: the per-line attribution (Sec 3) is a
    // decomposition of the aggregate quadratic form, not a different
    // physics. Verified over random transitions at several widths
    // and radii.
    Rng rng(2024);
    for (unsigned width : {2u, 5u, 16u, 32u}) {
        for (unsigned radius : {1u, 3u, 63u}) {
            CapacitanceMatrix caps =
                CapacitanceMatrix::analytical(tech130, width);
            BusEnergyModel::Config config;
            config.coupling_radius = radius;
            BusEnergyModel per_line(tech130, caps, config);
            WholeBusEnergyModel whole(tech130, caps, config);
            for (int i = 0; i < 200; ++i) {
                uint64_t prev = rng.next() & lowMask(width);
                uint64_t next = rng.next() & lowMask(width);
                const auto &e =
                    per_line.transitionEnergy(prev, next);
                double sum =
                    std::accumulate(e.begin(), e.end(), 0.0);
                const double total =
                    whole.transitionEnergy(prev, next).raw();
                EXPECT_NEAR(sum, total, 1e-12 * total + 1e-30)
                    << "w " << width << " r " << radius;
            }
        }
    }
}

TEST(WholeBus, IdleTransitionIsFree)
{
    CapacitanceMatrix caps =
        CapacitanceMatrix::analytical(tech130, 8);
    WholeBusEnergyModel whole(tech130, caps,
                              BusEnergyModel::Config());
    EXPECT_DOUBLE_EQ(whole.transitionEnergy(0x5a, 0x5a).raw(), 0.0);
}

TEST(WholeBus, UniformSplitHidesTheHotWire)
{
    // The paper's core complaint about whole-bus models: for the
    // ^^v^^-style worst case the centre wire dissipates far more
    // than the uniform split can represent.
    CapacitanceMatrix caps =
        CapacitanceMatrix::analytical(tech130, 5);
    BusEnergyModel::Config config;
    BusEnergyModel per_line(tech130, caps, config);
    WholeBusEnergyModel whole(tech130, caps, config);

    uint64_t prev = 0b00100, next = 0b11011;
    const auto &true_split = per_line.transitionEnergy(prev, next);
    auto uniform = whole.uniformSplit(prev, next);
    EXPECT_GT(true_split[2], 1.2 * uniform[2]);
    // Both distribute the same total.
    EXPECT_NEAR(std::accumulate(true_split.begin(),
                                true_split.end(), 0.0),
                std::accumulate(uniform.begin(), uniform.end(), 0.0),
                1e-24);
}

TEST(WorstCase, UniformJmaxPower)
{
    auto powers = worstCaseCurrentPowers(tech130, 4);
    ASSERT_EQ(powers.size(), 4u);
    // Hand-computed: I = jmax w t, P/m = I^2 r_wire.
    double current = 0.96e10 * 335e-9 * 670e-9;
    double expected = current * current * 98.02e3;
    for (double p : powers)
        EXPECT_NEAR(p, expected, expected * 1e-9);
}

TEST(WorstCase, GrosslyExceedsRealTrafficPower)
{
    // At 130 nm the j_max assumption gives ~0.45 W/m per wire;
    // a realistic address-traffic line averages well under a tenth
    // of that — the over-margin the paper warns designers about.
    auto powers = worstCaseCurrentPowers(tech130, 1);
    EXPECT_GT(powers[0], 0.3);
    EXPECT_LT(powers[0], 0.7);
}

TEST(AverageActivity, MatchesHandComputation)
{
    auto powers = averageActivityPowers(tech130, 3, 0.1, 1.0);
    ASSERT_EQ(powers.size(), 3u);
    double c_rep = std::sqrt(0.4 / 0.7) *
        (44.06e-12 + 2 * 91.72e-12);
    double expected = 0.1 * 0.5 * (44.06e-12 + c_rep) * 1.1 * 1.1 *
        1.68e9;
    EXPECT_NEAR(powers[0], expected, expected * 1e-9);
}

TEST(AverageActivity, CouplingMultiplierScales)
{
    auto base = averageActivityPowers(tech130, 1, 0.2, 1.0);
    auto coupled = averageActivityPowers(tech130, 1, 0.2, 3.0);
    EXPECT_NEAR(coupled[0] / base[0], 3.0, 1e-12);
}

TEST(Baselines, InvalidInputsAreFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(worstCaseCurrentPowers(tech130, 0), FatalError);
    EXPECT_THROW(averageActivityPowers(tech130, 1, -0.1, 1.0),
                 FatalError);
    EXPECT_THROW(averageActivityPowers(tech130, 1, 0.1, 0.5),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
