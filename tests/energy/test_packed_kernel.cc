/**
 * @file
 * Packed transition kernel pins (energy/packed.hh + the Packed
 * branches of BusEnergyModel):
 *
 *  - exact integer counts against a naive per-word reference, across
 *    widths straddling the 64-cycle lane boundary and run lengths
 *    straddling block boundaries;
 *  - stale-tail regression: garbage bits above the bus width — in
 *    the input words, in the unused high bits of a tail block, or
 *    left over after reset() — must never leak into the counts;
 *  - bitwise split-invariance of the packed path under any chunking
 *    of the same word stream;
 *  - packed-vs-scalar model agreement to rounding, with the final
 *    transition's lastBreakdown()/lastLineEnergy() bitwise equal;
 *  - PackedState capture/restore round-trips and the error paths
 *    (shape mismatches, restoreAccumulation under Packed).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "energy/bus_energy.hh"
#include "energy/packed.hh"
#include "energy/transition.hh"
#include "util/bitops.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusEnergyModel
makeModel(unsigned width, unsigned radius, TransitionKernel kernel,
          uint64_t initial_word = 0)
{
    BusEnergyModel::Config config;
    config.coupling_radius = radius;
    config.kernel = kernel;
    config.initial_word = initial_word;
    return BusEnergyModel(
        tech130, CapacitanceMatrix::analytical(tech130, width),
        config);
}

/** Line delta of the transition prev->next: -1, 0, or +1. */
int
lineDelta(uint64_t prev, uint64_t next, unsigned i)
{
    const int before = bitOf(prev, i) ? 1 : 0;
    const int after = bitOf(next, i) ? 1 : 0;
    return after - before;
}

/** Naive per-word counts: the ground truth the packed block kernel
 *  must reproduce exactly. */
struct NaiveCounts
{
    std::vector<uint64_t> self;
    /** Σ couplingFactor(v_i, v_j) over all cycles, per (i, j). */
    std::vector<uint64_t> coupling_sum; // width x width, row-major

    NaiveCounts(unsigned width, uint64_t initial,
                std::span<const uint64_t> words)
        : self(width, 0),
          coupling_sum(static_cast<size_t>(width) * width, 0)
    {
        const uint64_t mask = lowMask(width);
        uint64_t prev = initial & mask;
        for (uint64_t raw : words) {
            const uint64_t next = raw & mask;
            for (unsigned i = 0; i < width; ++i) {
                const int vi = lineDelta(prev, next, i);
                if (vi == 0)
                    continue;
                ++self[i];
                for (unsigned j = 0; j < width; ++j) {
                    if (j == i)
                        continue;
                    const int vj = lineDelta(prev, next, j);
                    coupling_sum[static_cast<size_t>(i) * width + j]
                        += static_cast<uint64_t>(vi * vi - vi * vj);
                }
            }
            prev = next;
        }
    }
};

void
expectCountsMatchNaive(const PackedTransitionCounts &counts,
                       const NaiveCounts &naive, unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        EXPECT_EQ(counts.selfCount(i), naive.self[i]) << "line " << i;
    for (unsigned i = 0; i < width; ++i) {
        for (unsigned j = 0; j < width; ++j) {
            if (i == j)
                continue;
            const unsigned d = i < j ? j - i : i - j;
            if (d > counts.storedRadius())
                continue;
            const int64_t got =
                static_cast<int64_t>(counts.selfCount(i)) +
                counts.pairDeviationAt(i, j);
            const uint64_t want =
                naive.coupling_sum[static_cast<size_t>(i) * width +
                                   j];
            EXPECT_EQ(got, static_cast<int64_t>(want))
                << "pair (" << i << ", " << j << ")";
        }
    }
}

TEST(PackedCounts, MatchNaiveAcrossWidthsAndRunLengths)
{
    Rng rng(0xbead5);
    for (unsigned width : {1u, 5u, 31u, 32u, 33u, 63u, 64u}) {
        for (size_t run : {size_t(1), size_t(63), size_t(64),
                           size_t(65), size_t(129)}) {
            SCOPED_TRACE(testing::Message()
                         << "width=" << width << " run=" << run);
            std::vector<uint64_t> words(run);
            for (uint64_t &w : words)
                w = rng.next();
            const uint64_t initial = rng.next();
            const unsigned radius = width == 1 ? 0 : width / 2;
            PackedTransitionCounts counts(width, radius, initial);
            counts.process(words);
            expectCountsMatchNaive(
                counts, NaiveCounts(width, initial, words), width);
            EXPECT_EQ(counts.prevWord(),
                      words.back() & lowMask(width));
        }
    }
}

TEST(PackedCounts, RadiusZeroStoresNoPairs)
{
    Rng rng(0x0);
    std::vector<uint64_t> words(100);
    for (uint64_t &w : words)
        w = rng.next();
    PackedTransitionCounts counts(16, 0, 0);
    counts.process(words);
    EXPECT_EQ(counts.storedRadius(), 0u);
    EXPECT_TRUE(counts.pairDeviations().empty());
    EXPECT_EQ(counts.pairDeviationAt(3, 4), 0);
    expectCountsMatchNaive(counts, NaiveCounts(16, 0, words), 16);
}

TEST(PackedCounts, SplitInvarianceIsExact)
{
    Rng rng(0x5bead);
    const unsigned width = 33;
    const size_t n = 300;
    std::vector<uint64_t> words(n);
    for (uint64_t &w : words)
        w = rng.next();

    PackedTransitionCounts whole(width, width - 1, 42);
    whole.process(words);

    for (size_t chunk : {size_t(1), size_t(7), size_t(64),
                         size_t(65), size_t(299)}) {
        SCOPED_TRACE(testing::Message() << "chunk=" << chunk);
        PackedTransitionCounts split(width, width - 1, 42);
        for (size_t k = 0; k < n; k += chunk) {
            const size_t len = std::min(chunk, n - k);
            split.process(
                std::span<const uint64_t>(words).subspan(k, len));
        }
        EXPECT_EQ(split.prevWord(), whole.prevWord());
        for (unsigned i = 0; i < width; ++i)
            EXPECT_EQ(split.selfCount(i), whole.selfCount(i));
        const std::span<const int64_t> a = split.pairDeviations();
        const std::span<const int64_t> b = whole.pairDeviations();
        ASSERT_EQ(a.size(), b.size());
        for (size_t k = 0; k < a.size(); ++k)
            EXPECT_EQ(a[k], b[k]) << "slot " << k;
    }
}

TEST(PackedCounts, StaleTailGarbageNeverLeaks)
{
    // Three tail hazards at once: input words carrying garbage above
    // the bus width, a tail block shorter than 64 cycles, and a held
    // word whose high bits were garbage when latched. The counts must
    // equal the naive reference over *masked* words in every case.
    Rng rng(0x7a11);
    for (unsigned width : {1u, 31u, 33u, 63u}) {
        SCOPED_TRACE(testing::Message() << "width=" << width);
        const uint64_t garbage = ~lowMask(width);
        std::vector<uint64_t> words(97);
        for (uint64_t &w : words)
            w = rng.next() | garbage; // force every high bit on
        const uint64_t initial = rng.next() | garbage;
        PackedTransitionCounts counts(width, width, initial);
        counts.process(words);
        expectCountsMatchNaive(
            counts, NaiveCounts(width, initial, words), width);
        // The latched word must already be masked — a later block
        // must not see phantom transitions from the garbage bits.
        EXPECT_EQ(counts.prevWord() & garbage, 0u);

        // reset() with a garbage word, then an all-zeros run: any
        // leak shows up as a nonzero self count.
        counts.reset(garbage);
        const std::vector<uint64_t> zeros(130, 0);
        counts.process(zeros);
        for (unsigned i = 0; i < width; ++i)
            EXPECT_EQ(counts.selfCount(i), 0u) << "line " << i;
    }
}

TEST(PackedCounts, ResetCountsKeepsHeldWord)
{
    PackedTransitionCounts counts(8, 7, 0x0f);
    const std::vector<uint64_t> words = {0xf0, 0x0f, 0xf0};
    counts.process(words);
    counts.resetCounts();
    EXPECT_EQ(counts.prevWord(), 0xf0u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(counts.selfCount(i), 0u);
    // Continue from the held word: first transition is f0 -> ff.
    counts.process(std::vector<uint64_t>{0xff});
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(counts.selfCount(i), 1u) << "line " << i;
    for (unsigned i = 4; i < 8; ++i)
        EXPECT_EQ(counts.selfCount(i), 0u) << "line " << i;
}

TEST(PackedCounts, RestoreRejectsShapeMismatch)
{
    PackedTransitionCounts counts(8, 3, 0);
    const std::vector<uint64_t> self_ok(8, 0);
    const std::vector<int64_t> pairs_ok(8 * 3, 0);
    EXPECT_TRUE(counts.restore(0, self_ok, pairs_ok).ok());
    const std::vector<uint64_t> self_bad(7, 0);
    EXPECT_EQ(counts.restore(0, self_bad, pairs_ok).error().code,
              ErrorCode::InvalidArgument);
    const std::vector<int64_t> pairs_bad(8 * 2, 0);
    EXPECT_EQ(counts.restore(0, self_ok, pairs_bad).error().code,
              ErrorCode::InvalidArgument);
}

// ------------------------------------------------------------------ //
// BusEnergyModel under the Packed kernel.

std::vector<uint64_t>
randomWords(Rng &rng, size_t n)
{
    std::vector<uint64_t> words(n);
    for (uint64_t &w : words)
        w = rng.next();
    return words;
}

void
stepAll(BusEnergyModel &model, std::span<const uint64_t> words,
        size_t chunk)
{
    std::vector<double> scratch(model.width(), 0.0);
    EnergyBreakdown acc;
    for (size_t k = 0; k < words.size(); k += chunk) {
        const size_t len = std::min(chunk, words.size() - k);
        model.stepBatch(words.subspan(k, len), scratch, acc);
    }
}

TEST(PackedModel, AgreesWithScalarToRounding)
{
    Rng rng(0xe4e4);
    for (unsigned width : {1u, 16u, 33u, 64u}) {
        for (unsigned radius : {0u, 1u, 64u}) {
            SCOPED_TRACE(testing::Message()
                         << "width=" << width << " radius="
                         << radius);
            BusEnergyModel scalar_m =
                makeModel(width, radius, TransitionKernel::Scalar);
            BusEnergyModel packed_m =
                makeModel(width, radius, TransitionKernel::Packed);
            const std::vector<uint64_t> words =
                randomWords(rng, 500);
            stepAll(scalar_m, words, 17);
            stepAll(packed_m, words, 100);

            EXPECT_EQ(packed_m.cycles(), scalar_m.cycles());
            EXPECT_EQ(packed_m.lastWord(), scalar_m.lastWord());
            const double total_s =
                scalar_m.accumulatedTotal().raw();
            const double total_p =
                packed_m.accumulatedTotal().raw();
            EXPECT_NEAR(total_p, total_s,
                        1e-9 * std::abs(total_s));
            for (unsigned i = 0; i < width; ++i) {
                const double a =
                    scalar_m.accumulatedLineEnergy()[i];
                const double b =
                    packed_m.accumulatedLineEnergy()[i];
                EXPECT_NEAR(b, a, 1e-9 * std::abs(a) + 1e-30)
                    << "line " << i;
            }
            // The final transition is re-derived through the same
            // transitionEnergy() path in both kernels: bitwise.
            EXPECT_EQ(packed_m.lastBreakdown().self.raw(),
                      scalar_m.lastBreakdown().self.raw());
            EXPECT_EQ(packed_m.lastBreakdown().coupling.raw(),
                      scalar_m.lastBreakdown().coupling.raw());
            EXPECT_EQ(packed_m.lastLineEnergy(),
                      scalar_m.lastLineEnergy());
        }
    }
}

TEST(PackedModel, SingleStepIsBitwiseScalar)
{
    // One transition accumulates exactly one count per moving line,
    // so the derived energy is the same FP expression the scalar
    // kernel evaluates — bitwise, not just to rounding.
    BusEnergyModel scalar_m =
        makeModel(32, 64, TransitionKernel::Scalar, 0x0fff0fff);
    BusEnergyModel packed_m =
        makeModel(32, 64, TransitionKernel::Packed, 0x0fff0fff);
    const Joules es = scalar_m.step(0xf0f0a5a5);
    const Joules ep = packed_m.step(0xf0f0a5a5);
    EXPECT_EQ(ep.raw(), es.raw());
    EXPECT_EQ(packed_m.accumulatedTotal().raw(),
              scalar_m.accumulatedTotal().raw());
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(packed_m.accumulatedLineEnergy()[i],
                  scalar_m.accumulatedLineEnergy()[i])
            << "line " << i;
}

TEST(PackedModel, SplitInvarianceIsBitwise)
{
    Rng rng(0x1234);
    const std::vector<uint64_t> words = randomWords(rng, 400);
    BusEnergyModel a = makeModel(33, 8, TransitionKernel::Packed);
    BusEnergyModel b = makeModel(33, 8, TransitionKernel::Packed);
    stepAll(a, words, 400);
    for (uint64_t w : words)
        b.step(w);
    EXPECT_EQ(a.accumulatedTotal().raw(),
              b.accumulatedTotal().raw());
    EXPECT_EQ(a.accumulatedLineEnergy(), b.accumulatedLineEnergy());
    EXPECT_EQ(a.lastBreakdown().self.raw(),
              b.lastBreakdown().self.raw());
    EXPECT_EQ(a.lastBreakdown().coupling.raw(),
              b.lastBreakdown().coupling.raw());
}

TEST(PackedModel, IntervalEnergyDerivesDeltas)
{
    Rng rng(0x9a9a);
    const unsigned width = 24;
    BusEnergyModel model =
        makeModel(width, 64, TransitionKernel::Packed);
    BusEnergyModel oracle =
        makeModel(width, 64, TransitionKernel::Packed);

    const std::vector<uint64_t> first = randomWords(rng, 130);
    const std::vector<uint64_t> second = randomWords(rng, 77);

    std::vector<double> scratch(width, 0.0);
    EnergyBreakdown unused;
    model.beginInterval();
    model.stepBatch(first, scratch, unused);
    std::vector<double> interval_lines(width, 0.0);
    EnergyBreakdown interval;
    model.intervalEnergy(interval_lines, interval);

    // Interval 1 alone == a fresh model's whole-run accumulation.
    oracle.stepBatch(first, scratch, unused);
    EXPECT_EQ(interval.self.raw(),
              oracle.accumulatedBreakdown().self.raw());
    EXPECT_EQ(interval.coupling.raw(),
              oracle.accumulatedBreakdown().coupling.raw());
    EXPECT_EQ(interval_lines, oracle.accumulatedLineEnergy());

    // Second interval: only the delta since beginInterval().
    model.beginInterval();
    model.stepBatch(second, scratch, unused);
    model.intervalEnergy(interval_lines, interval);
    // Re-run the second interval on a model primed with interval 1's
    // final word: the delta derivation must match it bitwise.
    BusEnergyModel primed = makeModel(
        width, 64, TransitionKernel::Packed, first.back());
    primed.stepBatch(second, scratch, unused);
    EXPECT_EQ(interval.self.raw(),
              primed.accumulatedBreakdown().self.raw());
    EXPECT_EQ(interval.coupling.raw(),
              primed.accumulatedBreakdown().coupling.raw());
    EXPECT_EQ(interval_lines, primed.accumulatedLineEnergy());

    // An idle interval derives exact zeros.
    model.beginInterval();
    model.intervalEnergy(interval_lines, interval);
    EXPECT_EQ(interval.total().raw(), 0.0);
    for (double e : interval_lines)
        EXPECT_EQ(e, 0.0);
}

TEST(PackedModel, PackedStateRoundTripsBitIdentically)
{
    Rng rng(0xc0de);
    const unsigned width = 40;
    const std::vector<uint64_t> words = randomWords(rng, 333);
    const size_t cut = 150;

    BusEnergyModel uninterrupted =
        makeModel(width, 5, TransitionKernel::Packed);
    stepAll(uninterrupted, words, 64);

    BusEnergyModel half = makeModel(width, 5, TransitionKernel::Packed);
    stepAll(half,
            std::span<const uint64_t>(words).subspan(0, cut), 64);
    const BusEnergyModel::PackedState state =
        half.capturePackedState();

    BusEnergyModel resumed =
        makeModel(width, 5, TransitionKernel::Packed);
    ASSERT_TRUE(resumed.restorePackedState(state).ok());
    EXPECT_EQ(resumed.cycles(), half.cycles());
    EXPECT_EQ(resumed.accumulatedTotal().raw(),
              half.accumulatedTotal().raw());
    EXPECT_EQ(resumed.lastBreakdown().self.raw(),
              half.lastBreakdown().self.raw());
    stepAll(resumed,
            std::span<const uint64_t>(words).subspan(cut), 64);

    EXPECT_EQ(resumed.accumulatedTotal().raw(),
              uninterrupted.accumulatedTotal().raw());
    EXPECT_EQ(resumed.accumulatedLineEnergy(),
              uninterrupted.accumulatedLineEnergy());
    EXPECT_EQ(resumed.cycles(), uninterrupted.cycles());
    EXPECT_EQ(resumed.lastWord(), uninterrupted.lastWord());
}

TEST(PackedModel, RestorePathsRejectMismatches)
{
    BusEnergyModel model = makeModel(16, 3, TransitionKernel::Packed);

    // The scalar restore entry is the wrong door under Packed.
    const std::vector<double> acc_line(16, 0.0);
    EXPECT_EQ(model
                  .restoreAccumulation(0, acc_line, EnergyBreakdown{},
                                       0)
                  .error()
                  .code,
              ErrorCode::InvalidArgument);

    BusEnergyModel::PackedState state = model.capturePackedState();
    state.self.resize(15);
    EXPECT_EQ(model.restorePackedState(state).error().code,
              ErrorCode::InvalidArgument);

    state = model.capturePackedState();
    state.interval_pairs.resize(1);
    EXPECT_EQ(model.restorePackedState(state).error().code,
              ErrorCode::InvalidArgument);

    // A scalar model rejects the packed restore entry.
    BusEnergyModel scalar_m =
        makeModel(16, 3, TransitionKernel::Scalar);
    EXPECT_EQ(
        scalar_m.restorePackedState(model.capturePackedState())
            .error()
            .code,
        ErrorCode::InvalidArgument);
}

TEST(PackedModel, ResetAccumulationClearsCountsAndBaselines)
{
    Rng rng(0xfeed);
    BusEnergyModel model = makeModel(20, 64, TransitionKernel::Packed);
    stepAll(model, randomWords(rng, 100), 50);
    ASSERT_GT(model.accumulatedTotal().raw(), 0.0);
    model.resetAccumulation();
    EXPECT_EQ(model.cycles(), 0u);
    EXPECT_EQ(model.accumulatedTotal().raw(), 0.0);
    std::vector<double> lines(20, 0.0);
    EnergyBreakdown interval;
    model.intervalEnergy(lines, interval);
    EXPECT_EQ(interval.total().raw(), 0.0);
    // The held word survives the reset, so replaying the same words
    // from a fresh model primed with it matches bitwise.
    const uint64_t held = model.lastWord();
    const std::vector<uint64_t> words = randomWords(rng, 100);
    stepAll(model, words, 100);
    BusEnergyModel fresh =
        makeModel(20, 64, TransitionKernel::Packed, held);
    stepAll(fresh, words, 100);
    EXPECT_EQ(model.accumulatedTotal().raw(),
              fresh.accumulatedTotal().raw());
}

} // namespace
} // namespace nanobus
