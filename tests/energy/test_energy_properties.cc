/**
 * @file
 * Parameterized property tests of the energy model across all
 * technology nodes, bus widths, and coupling radii.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "energy/bus_energy.hh"
#include "util/bitops.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

using Param = std::tuple<ItrsNode, unsigned /*width*/,
                         unsigned /*radius*/>;

class EnergyProperty : public ::testing::TestWithParam<Param>
{
  protected:
    const TechnologyNode &tech() const
    {
        return itrsNode(std::get<0>(GetParam()));
    }
    unsigned width() const { return std::get<1>(GetParam()); }
    unsigned radius() const { return std::get<2>(GetParam()); }

    BusEnergyModel
    makeModel() const
    {
        BusEnergyModel::Config config;
        config.coupling_radius = radius();
        return BusEnergyModel(
            tech(), CapacitanceMatrix::analytical(tech(), width()),
            config);
    }
};

TEST_P(EnergyProperty, EnergiesAreNonNegative)
{
    BusEnergyModel model = makeModel();
    Rng rng(width() * 131 + radius());
    for (int i = 0; i < 300; ++i) {
        uint64_t prev = rng.next() & lowMask(width());
        uint64_t next = rng.next() & lowMask(width());
        for (double e : model.transitionEnergy(prev, next))
            EXPECT_GE(e, 0.0);
    }
}

TEST_P(EnergyProperty, OnlyChangingLinesDissipate)
{
    BusEnergyModel model = makeModel();
    Rng rng(width() * 7 + radius());
    for (int i = 0; i < 300; ++i) {
        uint64_t prev = rng.next() & lowMask(width());
        uint64_t next = rng.next() & lowMask(width());
        const auto &e = model.transitionEnergy(prev, next);
        uint64_t changed = prev ^ next;
        for (unsigned line = 0; line < width(); ++line) {
            if (!bitOf(changed, line))
                EXPECT_DOUBLE_EQ(e[line], 0.0) << line;
            else
                EXPECT_GT(e[line], 0.0) << line;
        }
    }
}

TEST_P(EnergyProperty, ComplementSymmetry)
{
    // Energy is invariant under complementing both words (rising and
    // falling transitions cost the same).
    BusEnergyModel model = makeModel();
    Rng rng(width() * 31 + radius());
    const uint64_t mask = lowMask(width());
    for (int i = 0; i < 200; ++i) {
        uint64_t prev = rng.next() & mask;
        uint64_t next = rng.next() & mask;
        auto e1 = model.transitionEnergy(prev, next);
        double total1 =
            std::accumulate(e1.begin(), e1.end(), 0.0);
        auto e2 = model.transitionEnergy(~prev & mask, ~next & mask);
        double total2 =
            std::accumulate(e2.begin(), e2.end(), 0.0);
        EXPECT_NEAR(total1, total2, 1e-12 * total1 + 1e-30);
    }
}

TEST_P(EnergyProperty, MirrorSymmetry)
{
    // The analytical capacitance matrix is symmetric around the bus
    // centre, so reversing the bit order of both words must preserve
    // the total energy (per-line energies map to mirrored lines).
    BusEnergyModel model = makeModel();
    Rng rng(width() * 17 + radius());
    const unsigned w = width();
    auto reverse_bits = [w](uint64_t v) {
        uint64_t out = 0;
        for (unsigned i = 0; i < w; ++i)
            if (bitOf(v, i))
                out |= 1ull << (w - 1 - i);
        return out;
    };
    for (int i = 0; i < 200; ++i) {
        uint64_t prev = rng.next() & lowMask(w);
        uint64_t next = rng.next() & lowMask(w);
        auto e1 = model.transitionEnergy(prev, next);
        std::vector<double> forward = e1;
        auto e2 = model.transitionEnergy(reverse_bits(prev),
                                         reverse_bits(next));
        for (unsigned line = 0; line < w; ++line)
            EXPECT_NEAR(forward[line], e2[w - 1 - line],
                        1e-12 * forward[line] + 1e-30)
                << line;
    }
}

TEST_P(EnergyProperty, TransitionEnergyIsStateless)
{
    // transitionEnergy must not mutate the accumulation state.
    BusEnergyModel model = makeModel();
    model.step(0x3);
    const double acc_before = model.accumulatedTotal().raw();
    model.transitionEnergy(0x0, lowMask(width()));
    EXPECT_DOUBLE_EQ(model.accumulatedTotal().raw(), acc_before);
}

TEST_P(EnergyProperty, SingleBitEnergyIndependentOfStaticBackground)
{
    // A single changing line next to *static* neighbors costs the
    // same regardless of the neighbors' logic levels — coupling
    // energy depends on transitions, not on held values.
    BusEnergyModel model = makeModel();
    const unsigned line = width() / 2;
    uint64_t background1 = 0;
    uint64_t background2 = lowMask(width()) & ~(1ull << line);
    double e1 = model.transitionEnergy(
        background1, background1 | (1ull << line))[line];
    double e2 = model.transitionEnergy(
        background2, background2 | (1ull << line))[line];
    EXPECT_NEAR(e1, e2, 1e-12 * e1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyProperty,
    ::testing::Combine(
        ::testing::Values(ItrsNode::Nm130, ItrsNode::Nm45),
        ::testing::Values(4u, 16u, 32u),
        ::testing::Values(0u, 1u, 3u, 63u)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::string(itrsNodeName(std::get<0>(info.param))) +
            "_w" + std::to_string(std::get<1>(info.param)) + "_r" +
            std::to_string(std::get<2>(info.param));
    });

} // anonymous namespace
} // namespace nanobus
