/**
 * @file
 * Unit tests for the per-line bus energy model (Sec 3).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "energy/bus_energy.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusEnergyModel
makeModel(unsigned width, unsigned radius, bool repeaters = true,
          double length = 0.010)
{
    BusEnergyModel::Config config;
    config.wire_length = Meters{length};
    config.coupling_radius = radius;
    config.include_repeaters = repeaters;
    return BusEnergyModel(
        tech130, CapacitanceMatrix::analytical(tech130, width), config);
}

/** Independent self-energy computation from Table 1 numbers. */
double
expectedSelfEnergy(double length, bool repeaters)
{
    double c_line = 44.06e-12 * length;
    double c_int = (44.06e-12 + 2.0 * 91.72e-12) * length;
    double c_rep = repeaters ? std::sqrt(0.4 / 0.7) * c_int : 0.0;
    return 0.5 * (c_line + c_rep) * 1.1 * 1.1;
}

TEST(BusEnergy, IdleTransitionDissipatesNothing)
{
    BusEnergyModel model = makeModel(8, 64);
    const auto &e = model.transitionEnergy(0xa5, 0xa5);
    for (double v : e)
        EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_DOUBLE_EQ(model.lastBreakdown().total().raw(), 0.0);
}

TEST(BusEnergy, SingleLineSelfEnergyMatchesClosedForm)
{
    BusEnergyModel model = makeModel(1, 0);
    const auto &e = model.transitionEnergy(0, 1);
    EXPECT_NEAR(e[0], expectedSelfEnergy(0.010, true), 1e-20);
    EXPECT_NEAR(model.lastBreakdown().self.raw(), e[0], 1e-20);
    EXPECT_DOUBLE_EQ(model.lastBreakdown().coupling.raw(), 0.0);
}

TEST(BusEnergy, RepeaterExclusionReducesSelfEnergy)
{
    BusEnergyModel with = makeModel(1, 0, true);
    BusEnergyModel without = makeModel(1, 0, false);
    double e_with = with.transitionEnergy(0, 1)[0];
    double e_without = without.transitionEnergy(0, 1)[0];
    EXPECT_NEAR(e_without, expectedSelfEnergy(0.010, false), 1e-20);
    // Repeaters roughly quadruple the self load at 130 nm
    // (0.756 * C_int vs c_line).
    EXPECT_GT(e_with / e_without, 3.0);
}

TEST(BusEnergy, RisingAndFallingDissipateEqually)
{
    BusEnergyModel model = makeModel(4, 0);
    double rise = model.transitionEnergy(0b0000, 0b0100)[2];
    double fall = model.transitionEnergy(0b0100, 0b0000)[2];
    EXPECT_DOUBLE_EQ(rise, fall);
}

TEST(BusEnergy, EnergyScalesWithLength)
{
    BusEnergyModel short_bus = makeModel(2, 64, true, 0.005);
    BusEnergyModel long_bus = makeModel(2, 64, true, 0.020);
    double e_short = short_bus.transitionEnergy(0b00, 0b01)[0];
    double e_long = long_bus.transitionEnergy(0b00, 0b01)[0];
    EXPECT_NEAR(e_long / e_short, 4.0, 1e-9);
}

TEST(BusEnergy, ChargeTransitionHitsOnlyMovingLine)
{
    // 00 -> 01: line 0 rises next to a steady line 1.
    BusEnergyModel model = makeModel(2, 64);
    const auto &e = model.transitionEnergy(0b00, 0b01);
    double coupling = 0.5 * 91.72e-12 * 0.010 * 1.1 * 1.1;
    EXPECT_NEAR(e[0], expectedSelfEnergy(0.010, true) + coupling,
                1e-20);
    EXPECT_DOUBLE_EQ(e[1], 0.0);
}

TEST(BusEnergy, ToggleDoublesCouplingViaMiller)
{
    // 01 -> 10: both lines move oppositely.
    BusEnergyModel model = makeModel(2, 64);
    const auto &e = model.transitionEnergy(0b01, 0b10);
    double self = expectedSelfEnergy(0.010, true);
    double miller = 91.72e-12 * 0.010 * 1.1 * 1.1; // 2 * (c/2) Vdd^2
    EXPECT_NEAR(e[0], self + miller, 1e-20);
    EXPECT_NEAR(e[1], self + miller, 1e-20);
}

TEST(BusEnergy, SameDirectionPairHasNoCouplingEnergy)
{
    // 00 -> 11: both lines rise together.
    BusEnergyModel model = makeModel(2, 64);
    model.transitionEnergy(0b00, 0b11);
    EXPECT_DOUBLE_EQ(model.lastBreakdown().coupling.raw(), 0.0);
    EXPECT_GT(model.lastBreakdown().self.raw(), 0.0);
}

TEST(BusEnergy, CouplingRadiusClampsToWidth)
{
    BusEnergyModel model = makeModel(4, 100);
    EXPECT_EQ(model.couplingRadius(), 3u);
}

TEST(BusEnergy, RadiusZeroIgnoresAllCoupling)
{
    BusEnergyModel model = makeModel(8, 0);
    model.transitionEnergy(0x00, 0xff);
    EXPECT_DOUBLE_EQ(model.lastBreakdown().coupling.raw(), 0.0);
}

TEST(BusEnergy, WiderRadiusNeverReducesEnergy)
{
    Rng rng(1234);
    BusEnergyModel r0 = makeModel(16, 0);
    BusEnergyModel r1 = makeModel(16, 1);
    BusEnergyModel r3 = makeModel(16, 3);
    BusEnergyModel rall = makeModel(16, 64);
    for (int i = 0; i < 200; ++i) {
        uint64_t prev = rng.next() & 0xffff;
        uint64_t next = rng.next() & 0xffff;
        double e0 = 0, e1 = 0, e3 = 0, eall = 0;
        for (double v : r0.transitionEnergy(prev, next))
            e0 += v;
        for (double v : r1.transitionEnergy(prev, next))
            e1 += v;
        for (double v : r3.transitionEnergy(prev, next))
            e3 += v;
        for (double v : rall.transitionEnergy(prev, next))
            eall += v;
        EXPECT_LE(e0, e1 + 1e-25);
        EXPECT_LE(e1, e3 + 1e-25);
        EXPECT_LE(e3, eall + 1e-25);
    }
}

TEST(BusEnergy, PerLineSumEqualsBreakdownTotal)
{
    Rng rng(77);
    BusEnergyModel model = makeModel(32, 64);
    for (int i = 0; i < 500; ++i) {
        uint64_t prev = rng.next() & 0xffffffff;
        uint64_t next = rng.next() & 0xffffffff;
        const auto &e = model.transitionEnergy(prev, next);
        double sum = std::accumulate(e.begin(), e.end(), 0.0);
        EXPECT_NEAR(sum, model.lastBreakdown().total().raw(),
                    1e-12 * std::max(sum, 1e-30));
    }
}

TEST(BusEnergy, StepAccumulates)
{
    BusEnergyModel model = makeModel(8, 64);
    EXPECT_EQ(model.lastWord(), 0u);
    const double e1 = model.step(0xff).raw();
    const double e2 = model.step(0x0f).raw();
    EXPECT_EQ(model.cycles(), 2u);
    EXPECT_EQ(model.lastWord(), 0x0fu);
    EXPECT_NEAR(model.accumulatedTotal().raw(), e1 + e2, 1e-24);
    double line_sum = std::accumulate(
        model.accumulatedLineEnergy().begin(),
        model.accumulatedLineEnergy().end(), 0.0);
    EXPECT_NEAR(line_sum, e1 + e2, 1e-24);
}

TEST(BusEnergy, ResetAccumulationKeepsWord)
{
    BusEnergyModel model = makeModel(8, 64);
    model.step(0xaa);
    model.resetAccumulation();
    EXPECT_DOUBLE_EQ(model.accumulatedTotal().raw(), 0.0);
    EXPECT_EQ(model.cycles(), 0u);
    EXPECT_EQ(model.lastWord(), 0xaau);
}

TEST(BusEnergy, MaskedBitsAboveWidthIgnored)
{
    BusEnergyModel model = makeModel(4, 64);
    // Bits above width 4 must not contribute.
    const auto &e = model.transitionEnergy(0x00, 0xf0);
    for (double v : e)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BusEnergy, SelfCapacitanceAccessor)
{
    BusEnergyModel model = makeModel(4, 64);
    double expected = 44.06e-12 * 0.010 +
        std::sqrt(0.4 / 0.7) * (44.06e-12 + 2 * 91.72e-12) * 0.010;
    EXPECT_NEAR(model.selfCapacitance(0).raw(), expected, 1e-20);
}

TEST(BusEnergy, CouplingCapacitanceZeroBeyondRadius)
{
    BusEnergyModel model = makeModel(8, 1);
    EXPECT_GT(model.couplingCapacitance(3, 4).raw(), 0.0);
    EXPECT_DOUBLE_EQ(model.couplingCapacitance(3, 5).raw(), 0.0);
}

TEST(BusEnergy, VddScalingIsQuadratic)
{
    // 90 nm has Vdd = 1.0; compare self-only energies of equal
    // capacitance structures scaled by (1.1)^2.
    const TechnologyNode &tech90 = itrsNode(ItrsNode::Nm90);
    CapacitanceMatrix caps(1);
    caps.setGround(0, FaradsPerMeter{1e-10});
    BusEnergyModel::Config config;
    config.include_repeaters = false;
    config.coupling_radius = 0;
    BusEnergyModel m130(tech130, caps, config);
    BusEnergyModel m90(tech90, caps, config);
    double e130 = m130.transitionEnergy(0, 1)[0];
    double e90 = m90.transitionEnergy(0, 1)[0];
    EXPECT_NEAR(e130 / e90, 1.1 * 1.1, 1e-9);
}

TEST(BusEnergy, InvalidConfigIsFatal)
{
    setAbortOnError(false);
    BusEnergyModel::Config config;
    config.wire_length = Meters{0.0};
    CapacitanceMatrix caps(2);
    EXPECT_THROW(BusEnergyModel(tech130, caps, config), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
