/**
 * @file
 * FabricTopology property tests: route validity (adjacent-tile
 * steps, endpoints, determinism), XY dimension order, ring
 * shorter-arc selection with the fixed tie-break, and the
 * adjacency relation the thermal exchange runs over.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fabric/topology.hh"

namespace nanobus {
namespace {

bool
adjacentInTopology(const FabricTopology &topo, unsigned a, unsigned b)
{
    const std::vector<unsigned> &adj = topo.neighbors(a);
    return std::find(adj.begin(), adj.end(), b) != adj.end();
}

TEST(TopologyNames, RoundTrip)
{
    for (TopologyKind kind :
         {TopologyKind::Ring, TopologyKind::Mesh2D,
          TopologyKind::Crossbar}) {
        auto parsed = parseTopologyKind(topologyKindName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parseTopologyKind("torus").has_value());
}

TEST(MeshTopology, CountsAndNeighbors)
{
    const FabricTopology topo = FabricTopology::mesh(3, 4);
    EXPECT_EQ(topo.numTiles(), 12u);
    EXPECT_EQ(topo.numSegments(), 12u);

    // Corner, edge, and interior degrees of the 4-neighbourhood.
    EXPECT_EQ(topo.neighbors(0).size(), 2u);
    EXPECT_EQ(topo.neighbors(1).size(), 3u);
    EXPECT_EQ(topo.neighbors(5).size(), 4u);

    // Symmetric, sorted, no self-loops.
    for (unsigned s = 0; s < topo.numSegments(); ++s) {
        const std::vector<unsigned> &adj = topo.neighbors(s);
        EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
        for (unsigned j : adj) {
            EXPECT_NE(j, s);
            EXPECT_TRUE(adjacentInTopology(topo, j, s));
        }
    }
}

TEST(MeshTopology, XYRouteGoesColumnsFirst)
{
    const FabricTopology topo = FabricTopology::mesh(3, 4);
    std::vector<unsigned> route;
    // Tile 1 = (0,1); tile 11 = (2,3): X to column 3, then Y down.
    topo.route(1, 11, route);
    const std::vector<unsigned> expected = {1, 2, 3, 7, 11};
    EXPECT_EQ(route, expected);

    route.clear();
    topo.route(11, 1, route);
    const std::vector<unsigned> reversed = {11, 10, 9, 5, 1};
    EXPECT_EQ(route, reversed);
}

TEST(MeshTopology, RoutePropertiesForAllPairs)
{
    const FabricTopology topo = FabricTopology::mesh(4, 3);
    std::vector<unsigned> route;
    for (unsigned src = 0; src < topo.numTiles(); ++src) {
        for (unsigned dst = 0; dst < topo.numTiles(); ++dst) {
            route.clear();
            topo.route(src, dst, route);
            ASSERT_FALSE(route.empty());
            EXPECT_EQ(route.front(), src);
            EXPECT_EQ(route.back(), dst);
            EXPECT_EQ(route.size(), topo.hopCount(src, dst));
            // Every step crosses one physical link.
            for (size_t i = 1; i < route.size(); ++i)
                EXPECT_TRUE(adjacentInTopology(topo, route[i - 1],
                                               route[i]))
                    << src << "->" << dst << " step " << i;
            // Minimal: Manhattan distance plus the source hop.
            const unsigned r1 = src / 3, c1 = src % 3;
            const unsigned r2 = dst / 3, c2 = dst % 3;
            const unsigned manhattan =
                (r1 > r2 ? r1 - r2 : r2 - r1) +
                (c1 > c2 ? c1 - c2 : c2 - c1);
            EXPECT_EQ(route.size(), manhattan + 1);
        }
    }
}

TEST(RingTopology, ShorterArcWithDeterministicTie)
{
    const FabricTopology topo = FabricTopology::ring(6);
    std::vector<unsigned> route;

    topo.route(0, 2, route);
    EXPECT_EQ(route, (std::vector<unsigned>{0, 1, 2}));

    route.clear();
    topo.route(0, 4, route);
    EXPECT_EQ(route, (std::vector<unsigned>{0, 5, 4}));

    // Exact half: the tie goes forward (increasing index).
    route.clear();
    topo.route(0, 3, route);
    EXPECT_EQ(route, (std::vector<unsigned>{0, 1, 2, 3}));

    route.clear();
    topo.route(5, 2, route);
    EXPECT_EQ(route, (std::vector<unsigned>{5, 0, 1, 2}));
}

TEST(RingTopology, NeighborsWrapWithoutDuplicates)
{
    const FabricTopology ring6 = FabricTopology::ring(6);
    EXPECT_EQ(ring6.neighbors(0), (std::vector<unsigned>{1, 5}));
    EXPECT_EQ(ring6.neighbors(3), (std::vector<unsigned>{2, 4}));

    // A 2-ring has one physical link; the neighbour appears once.
    const FabricTopology ring2 = FabricTopology::ring(2);
    EXPECT_EQ(ring2.neighbors(0), (std::vector<unsigned>{1}));
    EXPECT_EQ(ring2.neighbors(1), (std::vector<unsigned>{0}));

    // A 1-ring has no links at all.
    const FabricTopology ring1 = FabricTopology::ring(1);
    EXPECT_TRUE(ring1.neighbors(0).empty());
}

TEST(CrossbarTopology, DirectRoutesBundleAdjacency)
{
    const FabricTopology topo = FabricTopology::crossbar(5);
    std::vector<unsigned> route;
    topo.route(1, 4, route);
    EXPECT_EQ(route, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(topo.hopCount(1, 4), 2u);

    route.clear();
    topo.route(3, 3, route);
    EXPECT_EQ(route, (std::vector<unsigned>{3}));
    EXPECT_EQ(topo.hopCount(3, 3), 1u);

    // Thermal adjacency is the parallel-bundle index neighbourhood.
    EXPECT_EQ(topo.neighbors(0), (std::vector<unsigned>{1}));
    EXPECT_EQ(topo.neighbors(2), (std::vector<unsigned>{1, 3}));
    EXPECT_EQ(topo.neighbors(4), (std::vector<unsigned>{3}));
}

TEST(SelfSends, OccupyOnlyTheSourceSegment)
{
    std::vector<unsigned> route;
    for (const FabricTopology &topo :
         {FabricTopology::mesh(3, 3), FabricTopology::ring(5),
          FabricTopology::crossbar(4)}) {
        route.clear();
        topo.route(2, 2, route);
        EXPECT_EQ(route, std::vector<unsigned>{2});
        EXPECT_EQ(topo.hopCount(2, 2), 1u);
    }
}

TEST(RouteDeterminism, RepeatCallsAppendIdenticalRoutes)
{
    const FabricTopology topo = FabricTopology::mesh(4, 4);
    std::vector<unsigned> first, second;
    topo.route(1, 14, first);
    topo.route(1, 14, second);
    EXPECT_EQ(first, second);

    // route() appends, so a caller can accumulate several routes.
    std::vector<unsigned> combined;
    topo.route(1, 14, combined);
    topo.route(0, 3, combined);
    EXPECT_EQ(combined.size(), first.size() + 4);
}

} // namespace
} // namespace nanobus
