/**
 * @file
 * Shared helpers for the fabric test suite: bitwise segment
 * fingerprints (no tolerance — the determinism contract is
 * memcmp-level) and the fabric-vs-standalone-BusSimulator
 * comparison the oracle pins and the differential fuzz harness
 * both use.
 */

#ifndef NANOBUS_TESTS_FABRIC_FABRIC_TEST_UTIL_HH
#define NANOBUS_TESTS_FABRIC_FABRIC_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fabric/bus_sim.hh"
#include "fabric/fabric.hh"

namespace nanobus {
namespace fabric_test {

inline bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

inline void
appendStats(std::vector<double> &out, const RunningStats &stats)
{
    const RunningStats::State s = stats.state();
    out.push_back(static_cast<double>(s.count));
    out.push_back(s.mean);
    out.push_back(s.m2);
    out.push_back(s.sum);
    out.push_back(s.min);
    out.push_back(s.max);
}

/**
 * Every observable of one BusSimulator flattened to doubles, in a
 * fixed order, for memcmp comparison. Integer fields are exact in
 * a double far beyond any test's scale.
 */
inline std::vector<double>
busFingerprint(const BusSimulator &bus)
{
    std::vector<double> fp;
    fp.push_back(static_cast<double>(bus.transmissions()));
    fp.push_back(static_cast<double>(bus.currentCycle()));
    fp.push_back(bus.totalEnergy().self.raw());
    fp.push_back(bus.totalEnergy().coupling.raw());
    for (double e : bus.lineEnergies())
        fp.push_back(e);
    fp.push_back(static_cast<double>(bus.thermalFaults().size()));
    fp.push_back(static_cast<double>(bus.samples().size()));
    for (const IntervalSample &s : bus.samples()) {
        fp.push_back(static_cast<double>(s.end_cycle));
        fp.push_back(static_cast<double>(s.transmissions));
        fp.push_back(s.energy.self.raw());
        fp.push_back(s.energy.coupling.raw());
        fp.push_back(s.avg_temperature.raw());
        fp.push_back(s.max_temperature.raw());
        fp.push_back(s.avg_current.raw());
    }
    const std::vector<double> &nodes =
        bus.thermalNetwork().snapshotState().nodes;
    for (double t : nodes)
        fp.push_back(t);
    appendStats(fp, bus.currentStats());
    appendStats(fp, bus.didtStats());
    return fp;
}

/** Whole-fabric fingerprint: every segment's, concatenated. */
inline std::vector<double>
fabricFingerprint(const BusFabric &fabric)
{
    std::vector<double> fp;
    for (unsigned s = 0; s < fabric.numSegments(); ++s) {
        const std::vector<double> seg =
            busFingerprint(fabric.segment(s));
        fp.insert(fp.end(), seg.begin(), seg.end());
    }
    return fp;
}

inline bool
identical(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

/** First index where two fingerprints differ, for diagnostics. */
inline size_t
firstDivergence(const std::vector<double> &a,
                const std::vector<double> &b)
{
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i)
        if (!sameBits(a[i], b[i]))
            return i;
    return n;
}

} // namespace fabric_test
} // namespace nanobus

#endif // NANOBUS_TESTS_FABRIC_FABRIC_TEST_UTIL_HH
