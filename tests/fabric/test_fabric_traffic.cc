/**
 * @file
 * SyntheticTraffic tests: reproducibility (same seed -> identical
 * stream, different seed -> different stream), non-decreasing
 * cycles, pattern shape (hotspot concentration, neighbour
 * locality), and the per-tile stream independence that makes the
 * generator safe to regenerate for supervised retries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "fabric/topology.hh"
#include "fabric/traffic.hh"

namespace nanobus {
namespace {

std::vector<FabricTransaction>
drain(TrafficSource &source)
{
    std::vector<FabricTransaction> txs;
    FabricTransaction tx;
    while (source.next(tx))
        txs.push_back(tx);
    return txs;
}

bool
sameStream(const std::vector<FabricTransaction> &a,
           const std::vector<FabricTransaction> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].cycle != b[i].cycle || a[i].src != b[i].src ||
            a[i].dst != b[i].dst || a[i].payload != b[i].payload)
            return false;
    }
    return true;
}

TEST(PatternNames, RoundTrip)
{
    for (TrafficPattern pattern :
         {TrafficPattern::Uniform, TrafficPattern::Hotspot,
          TrafficPattern::Neighbor}) {
        auto parsed =
            parseTrafficPattern(trafficPatternName(pattern));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, pattern);
    }
    EXPECT_FALSE(parseTrafficPattern("tornado").has_value());
}

TEST(SyntheticTraffic, SameSeedSameStream)
{
    const FabricTopology topo = FabricTopology::mesh(4, 4);
    TrafficConfig config;
    config.seed = 42;
    config.max_transactions = 500;

    SyntheticTraffic a(topo, config);
    SyntheticTraffic b(topo, config);
    const auto stream_a = drain(a);
    const auto stream_b = drain(b);
    EXPECT_EQ(stream_a.size(), 500u);
    EXPECT_TRUE(sameStream(stream_a, stream_b));

    config.seed = 43;
    SyntheticTraffic c(topo, config);
    EXPECT_FALSE(sameStream(stream_a, drain(c)));
}

TEST(SyntheticTraffic, CyclesNonDecreasingTilesValid)
{
    const FabricTopology topo = FabricTopology::ring(7);
    TrafficConfig config;
    config.seed = 7;
    config.injection_rate = 0.3;
    config.max_transactions = 1000;
    SyntheticTraffic source(topo, config);

    uint64_t prev = 0;
    FabricTransaction tx;
    size_t count = 0;
    while (source.next(tx)) {
        EXPECT_GE(tx.cycle, prev);
        prev = tx.cycle;
        EXPECT_LT(tx.src, topo.numTiles());
        EXPECT_LT(tx.dst, topo.numTiles());
        // Uniform never self-sends (multi-tile fabric).
        EXPECT_NE(tx.src, tx.dst);
        ++count;
    }
    EXPECT_EQ(count, 1000u);
}

TEST(SyntheticTraffic, HotspotConcentratesDestinations)
{
    const FabricTopology topo = FabricTopology::mesh(4, 4);
    TrafficConfig config;
    config.pattern = TrafficPattern::Hotspot;
    config.hotspot_tile = 5;
    config.hotspot_fraction = 0.7;
    config.seed = 11;
    config.max_transactions = 2000;
    SyntheticTraffic source(topo, config);

    size_t hot = 0;
    const auto txs = drain(source);
    for (const FabricTransaction &tx : txs)
        if (tx.dst == 5)
            ++hot;
    // ~70% plus the uniform fallback's 1/15 share; test the gap
    // loosely so the pin is about shape, not the exact stream.
    EXPECT_GT(hot, txs.size() / 2);
}

TEST(SyntheticTraffic, NeighborStaysLocal)
{
    const FabricTopology topo = FabricTopology::mesh(5, 5);
    TrafficConfig config;
    config.pattern = TrafficPattern::Neighbor;
    config.seed = 3;
    config.max_transactions = 800;
    SyntheticTraffic source(topo, config);

    FabricTransaction tx;
    while (source.next(tx)) {
        const std::vector<unsigned> &adj = topo.neighbors(tx.src);
        EXPECT_TRUE(std::find(adj.begin(), adj.end(), tx.dst) !=
                    adj.end())
            << tx.src << " -> " << tx.dst;
    }
}

TEST(SyntheticTraffic, SingleTileSelfSends)
{
    const FabricTopology topo = FabricTopology::crossbar(1);
    TrafficConfig config;
    config.seed = 9;
    config.max_transactions = 50;
    SyntheticTraffic source(topo, config);
    const auto txs = drain(source);
    ASSERT_EQ(txs.size(), 50u);
    for (const FabricTransaction &tx : txs) {
        EXPECT_EQ(tx.src, 0u);
        EXPECT_EQ(tx.dst, 0u);
    }
}

TEST(SyntheticTraffic, AllTilesInject)
{
    const FabricTopology topo = FabricTopology::mesh(3, 3);
    TrafficConfig config;
    config.seed = 21;
    config.injection_rate = 0.5;
    config.max_transactions = 900;
    SyntheticTraffic source(topo, config);

    std::map<unsigned, size_t> per_src;
    for (const FabricTransaction &tx : drain(source))
        ++per_src[tx.src];
    // Every tile's independent stream injects a healthy share.
    ASSERT_EQ(per_src.size(), topo.numTiles());
    for (const auto &[tile, count] : per_src)
        EXPECT_GT(count, 900u / topo.numTiles() / 4)
            << "tile " << tile;
}

TEST(VectorTrafficSource, ReplaysInOrder)
{
    std::vector<FabricTransaction> txs = {
        {0, 0, 1, 0xaa}, {3, 1, 0, 0xbb}, {3, 0, 1, 0xcc}};
    VectorTrafficSource source(txs);
    FabricTransaction tx;
    for (const FabricTransaction &want : txs) {
        ASSERT_TRUE(source.next(tx));
        EXPECT_EQ(tx.cycle, want.cycle);
        EXPECT_EQ(tx.payload, want.payload);
    }
    EXPECT_FALSE(source.next(tx));
}

} // namespace
} // namespace nanobus
