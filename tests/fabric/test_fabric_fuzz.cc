/**
 * @file
 * Randomized differential harness for BusFabric, extending the
 * pipeline fuzz pattern (tests/sim/test_pipeline_fuzz.cc) to many
 * segments: every case draws a random topology (mesh / ring /
 * crossbar), encoding scheme, bus width, interval length, traffic
 * pattern and rate, hop latency, coupling setting, pool size, pin
 * policy, and segment group size, then requires the run to be
 * BIT-identical to the serial reference execution (pool 1, group 1,
 * unpinned) of the same (config, stream). Single-tile draws are
 * additionally pinned against a standalone BusSimulator fed the
 * identical word stream.
 *
 * Reproducing a failure: every case logs its seed via SCOPED_TRACE;
 * replay one case with
 *
 *   NANOBUS_FUZZ_SEED=<seed> ./tests/test_fabric_fuzz \
 *       --gtest_filter='FabricFuzz.*'
 *
 * NANOBUS_FUZZ_CASES overrides the case count (default 60 — fabric
 * cases step many simulators, so the default is smaller than the
 * pipeline harness's 200).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "exec/topology.hh"
#include "fabric/fabric.hh"
#include "fabric/traffic.hh"
#include "fabric_test_util.hh"
#include "util/random.hh"
#include "util/result.hh"

namespace nanobus {
namespace {

using fabric_test::busFingerprint;
using fabric_test::fabricFingerprint;
using fabric_test::firstDivergence;
using fabric_test::identical;

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

/** One randomly drawn differential case (pure function of the
 *  seed, so a logged seed replays the identical case). */
struct FuzzCase
{
    uint64_t seed = 0;
    FabricConfig fabric;
    TrafficConfig traffic;
    unsigned pool_size = 1;
    exec::PinPolicy pinning = exec::PinPolicy::None;

    std::string describe() const
    {
        std::string shape;
        switch (fabric.topology) {
          case TopologyKind::Mesh2D:
            shape = "mesh" + std::to_string(fabric.rows) + "x" +
                    std::to_string(fabric.cols);
            break;
          case TopologyKind::Ring:
            shape = "ring" + std::to_string(fabric.tiles);
            break;
          case TopologyKind::Crossbar:
            shape = "xbar" + std::to_string(fabric.tiles);
            break;
        }
        return std::string("seed=") + std::to_string(seed) +
               " topo=" + shape +
               " scheme=" + schemeName(fabric.segment.scheme) +
               " width=" +
               std::to_string(fabric.segment.data_width) +
               " interval=" +
               std::to_string(fabric.segment.interval_cycles) +
               " hop=" + std::to_string(fabric.hop_latency_cycles) +
               " coupling=" + (fabric.segment_coupling ? "1" : "0") +
               " pattern=" +
               trafficPatternName(traffic.pattern) +
               " rate=" + std::to_string(traffic.injection_rate) +
               " txs=" + std::to_string(traffic.max_transactions) +
               " group=" + std::to_string(fabric.group_size) +
               " pool=" + std::to_string(pool_size) +
               " pinning=" + exec::pinPolicyName(pinning);
    }
};

FuzzCase
makeCase(uint64_t seed)
{
    Rng rng(seed);
    FuzzCase c;
    c.seed = seed;

    const uint64_t topo_draw = rng.below(3);
    if (topo_draw == 0) {
        c.fabric.topology = TopologyKind::Mesh2D;
        c.fabric.rows = static_cast<unsigned>(1 + rng.below(4));
        c.fabric.cols = static_cast<unsigned>(1 + rng.below(4));
    } else if (topo_draw == 1) {
        c.fabric.topology = TopologyKind::Ring;
        c.fabric.tiles = static_cast<unsigned>(1 + rng.below(8));
    } else {
        c.fabric.topology = TopologyKind::Crossbar;
        c.fabric.tiles = static_cast<unsigned>(1 + rng.below(6));
    }

    static const EncodingScheme schemes[] = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Gray,
        EncodingScheme::T0,
        EncodingScheme::Offset,
    };
    c.fabric.segment.scheme = schemes[rng.below(7)];
    c.fabric.segment.data_width =
        static_cast<unsigned>(4 + rng.below(29));
    c.fabric.segment.interval_cycles = 50 + rng.below(900);
    c.fabric.segment.record_samples = true;
    c.fabric.hop_latency_cycles = 1 + rng.below(5);
    c.fabric.segment_coupling = rng.chance(0.75);
    c.fabric.segment_resistance =
        KelvinMetersPerWatt{2.0 + static_cast<double>(rng.below(80))};
    c.fabric.group_size = 1 + rng.below(9);

    const TrafficPattern patterns[] = {TrafficPattern::Uniform,
                                       TrafficPattern::Hotspot,
                                       TrafficPattern::Neighbor};
    c.traffic.pattern = patterns[rng.below(3)];
    c.traffic.injection_rate =
        0.05 + 0.3 * static_cast<double>(rng.below(10)) / 10.0;
    c.traffic.seed = rng.next();
    c.traffic.max_transactions = 50 + rng.below(1200);

    const unsigned pools[] = {1, 2, 4};
    c.pool_size = pools[rng.below(3)];
    const exec::PinPolicy policies[] = {exec::PinPolicy::None,
                                        exec::PinPolicy::Compact,
                                        exec::PinPolicy::Scatter};
    c.pinning = policies[rng.below(3)];
    return c;
}

unsigned
numTilesOf(const FabricConfig &config)
{
    return config.topology == TopologyKind::Mesh2D
               ? config.rows * config.cols
               : config.tiles;
}

void
runCase(uint64_t seed)
{
    FuzzCase c = makeCase(seed);
    if (c.traffic.pattern == TrafficPattern::Hotspot)
        c.traffic.hotspot_tile =
            numTilesOf(c.fabric) > 1 ? numTilesOf(c.fabric) - 1 : 0;
    SCOPED_TRACE("replay: NANOBUS_FUZZ_SEED=" + std::to_string(seed) +
                 " ./tests/test_fabric_fuzz"
                 " --gtest_filter='FabricFuzz.*'  [" +
                 c.describe() + "]");

    // Record the stream once so the reference, the case under test,
    // and the single-segment oracle all replay the identical
    // transactions.
    std::vector<FabricTransaction> txs;
    {
        const FabricTopology probe_topo =
            c.fabric.topology == TopologyKind::Mesh2D
                ? FabricTopology::mesh(c.fabric.rows, c.fabric.cols)
            : c.fabric.topology == TopologyKind::Ring
                ? FabricTopology::ring(c.fabric.tiles)
                : FabricTopology::crossbar(c.fabric.tiles);
        SyntheticTraffic source(probe_topo, c.traffic);
        FabricTransaction tx;
        while (source.next(tx))
            txs.push_back(tx);
    }
    ASSERT_EQ(txs.size(), c.traffic.max_transactions);

    // Reference: serial, unpinned, one segment per job.
    FabricConfig ref_config = c.fabric;
    ref_config.group_size = 1;
    BusFabric reference(tech130, ref_config);
    exec::ThreadPool ref_pool(1);
    VectorTrafficSource ref_source(txs);
    Result<FabricRunStats> ref_stats =
        reference.run(ref_source, ref_pool);
    ASSERT_TRUE(ref_stats.ok()) << ref_stats.error().describe();

    // Case under test: drawn pool / pinning / grouping.
    BusFabric fabric(tech130, c.fabric);
    exec::ThreadPool pool(c.pool_size, c.pinning);
    VectorTrafficSource source(txs);
    Result<FabricRunStats> stats = fabric.run(source, pool);
    ASSERT_TRUE(stats.ok()) << stats.error().describe();

    EXPECT_EQ(stats.value().transactions,
              ref_stats.value().transactions);
    EXPECT_EQ(stats.value().hops, ref_stats.value().hops);
    EXPECT_EQ(stats.value().last_cycle,
              ref_stats.value().last_cycle);

    const std::vector<double> ref_fp = fabricFingerprint(reference);
    const std::vector<double> fp = fabricFingerprint(fabric);
    ASSERT_TRUE(identical(ref_fp, fp))
        << "fingerprints diverge at index "
        << firstDivergence(ref_fp, fp);

    // Single-tile draws double as oracle pins: the lone segment must
    // match a standalone BusSimulator fed the identical word stream.
    if (numTilesOf(c.fabric) == 1) {
        BusSimulator standalone(tech130, c.fabric.segment);
        for (const FabricTransaction &tx : txs)
            standalone.transmit(tx.cycle, tx.payload);
        standalone.advanceTo(stats.value().last_cycle);
        const std::vector<double> lone_fp =
            busFingerprint(standalone);
        const std::vector<double> seg_fp =
            busFingerprint(fabric.segment(0));
        EXPECT_TRUE(identical(lone_fp, seg_fp))
            << "single-segment oracle diverges at index "
            << firstDivergence(lone_fp, seg_fp);
    }
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || *env == '\0')
        return fallback;
    char *end = nullptr;
    const uint64_t value = std::strtoull(env, &end, 10);
    return end == env ? fallback : value;
}

TEST(FabricFuzz, DifferentialAgainstSerialReference)
{
    // A pinned NANOBUS_FUZZ_SEED replays exactly one case; otherwise
    // run NANOBUS_FUZZ_CASES (default 60) consecutive seeds off a
    // fixed base, so CI failures always name a reproducible seed.
    if (const char *pinned = std::getenv("NANOBUS_FUZZ_SEED")) {
        if (*pinned != '\0') {
            runCase(envU64("NANOBUS_FUZZ_SEED", 0));
            return;
        }
    }
    const uint64_t cases = envU64("NANOBUS_FUZZ_CASES", 60);
    const uint64_t base = envU64("NANOBUS_FUZZ_BASE", 0xfab51c00);
    for (uint64_t i = 0; i < cases; ++i) {
        runCase(base + i);
        if (::testing::Test::HasFatalFailure() ||
            ::testing::Test::HasNonfatalFailure())
            break; // the SCOPED_TRACE above already named the seed
    }
}

} // namespace
} // namespace nanobus
