/**
 * @file
 * BusFabric pins.
 *
 *  - Oracle bit-identity: a single-segment fabric driven by a
 *    transaction stream must match the same stream replayed through
 *    the TwinBusSimulator per-record oracle, memcmp-level, for all
 *    seven paper schemes.
 *  - Determinism: a 6x6 mesh run is bit-identical across pool sizes
 *    1/2/hardware, across all pin policies, and across segment
 *    group sizes.
 *  - Physics: lateral coupling moves heat from a driven segment
 *    into its idle neighbour, conserves the pairwise exchange, and
 *    switches off cleanly (coupling-off == standalone, bitwise).
 *  - Continuation: two sequential run() calls equal one combined
 *    run, bitwise.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "exec/topology.hh"
#include "fabric/fabric.hh"
#include "fabric/traffic.hh"
#include "fabric_test_util.hh"
#include "sim/experiment.hh"
#include "tech/technology.hh"
#include "trace/record.hh"

namespace nanobus {
namespace {

using fabric_test::busFingerprint;
using fabric_test::fabricFingerprint;
using fabric_test::firstDivergence;
using fabric_test::identical;

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

/** Every implemented scheme — wider than paperSchemes() (Fig 3's
 *  four): the oracle pin must hold for all of them. */
constexpr EncodingScheme kAllSchemes[] = {
    EncodingScheme::Unencoded,
    EncodingScheme::BusInvert,
    EncodingScheme::OddEvenBusInvert,
    EncodingScheme::CouplingDrivenBusInvert,
    EncodingScheme::Gray,
    EncodingScheme::T0,
    EncodingScheme::Offset,
};

/** A bursty single-tile stream whose cycles straddle several
 *  interval closes and end mid-interval. */
std::vector<FabricTransaction>
selfSendStream(size_t n, uint64_t interval_cycles)
{
    std::vector<FabricTransaction> txs;
    txs.reserve(n);
    Rng rng(0x5eed);
    uint64_t cycle = rng.below(10);
    uint32_t payload = static_cast<uint32_t>(rng.next());
    for (size_t i = 0; i < n; ++i) {
        txs.push_back({cycle, 0, 0, payload});
        cycle += rng.chance(0.8)
                     ? 1 + rng.below(4)
                     : interval_cycles / 3 + rng.below(interval_cycles);
        payload = rng.chance(0.6)
                      ? payload + 4
                      : static_cast<uint32_t>(rng.next());
    }
    return txs;
}

BusSimConfig
smallSegmentConfig(EncodingScheme scheme)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 16;
    config.interval_cycles = 400;
    config.record_samples = true;
    return config;
}

TEST(FabricOracle, SingleSegmentMatchesTwinForAllSchemes)
{
    const std::vector<FabricTransaction> txs = selfSendStream(500, 400);
    exec::ThreadPool pool(2);

    for (EncodingScheme scheme : kAllSchemes) {
        SCOPED_TRACE(schemeName(scheme));

        FabricConfig config;
        config.topology = TopologyKind::Crossbar;
        config.tiles = 1;
        config.segment = smallSegmentConfig(scheme);
        BusFabric fabric(tech130, config);

        VectorTrafficSource source(txs);
        Result<FabricRunStats> stats = fabric.run(source, pool);
        ASSERT_TRUE(stats.ok());
        EXPECT_EQ(stats.value().transactions, txs.size());
        EXPECT_EQ(stats.value().hops, txs.size());

        // Oracle: the same stream as instruction fetches through
        // the per-record twin replay. The data bus sees nothing.
        std::vector<TraceRecord> records;
        records.reserve(txs.size());
        for (const FabricTransaction &tx : txs)
            records.push_back({tx.cycle, tx.payload,
                               AccessKind::InstructionFetch});
        TwinBusSimulator twin(tech130, config.segment);
        VectorTraceSource trace(std::move(records));
        EXPECT_EQ(twin.runPerRecord(trace), txs.size());

        const std::vector<double> fabric_fp =
            busFingerprint(fabric.segment(0));
        const std::vector<double> oracle_fp =
            busFingerprint(twin.instructionBus());
        EXPECT_TRUE(identical(fabric_fp, oracle_fp))
            << "fingerprints diverge at index "
            << firstDivergence(fabric_fp, oracle_fp);
        EXPECT_EQ(twin.dataBus().transmissions(), 0u);
    }
}

FabricConfig
meshConfig()
{
    FabricConfig config;
    config.topology = TopologyKind::Mesh2D;
    config.rows = 6;
    config.cols = 6;
    config.segment = smallSegmentConfig(EncodingScheme::BusInvert);
    config.segment.interval_cycles = 300;
    return config;
}

TrafficConfig
meshTraffic()
{
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::Hotspot;
    traffic.hotspot_tile = 14;
    traffic.hotspot_fraction = 0.4;
    traffic.injection_rate = 0.2;
    traffic.seed = 77;
    traffic.max_transactions = 3000;
    return traffic;
}

std::vector<double>
runMesh(unsigned pool_size, exec::PinPolicy pinning,
        size_t group_size, FabricRunStats *stats_out = nullptr)
{
    FabricConfig config = meshConfig();
    config.group_size = group_size;
    BusFabric fabric(tech130, config);
    SyntheticTraffic traffic(fabric.topology(), meshTraffic());
    exec::ThreadPool pool(pool_size, pinning);
    Result<FabricRunStats> stats = fabric.run(traffic, pool);
    EXPECT_TRUE(stats.ok());
    if (stats.ok() && stats_out)
        *stats_out = stats.takeValue();
    return fabricFingerprint(fabric);
}

TEST(FabricDeterminism, MeshBitIdenticalAcrossPoolSizes)
{
    FabricRunStats serial_stats;
    const std::vector<double> serial =
        runMesh(1, exec::PinPolicy::None, 1, &serial_stats);
    EXPECT_EQ(serial_stats.transactions, 3000u);
    EXPECT_GT(serial_stats.hops, serial_stats.transactions);
    EXPECT_GT(serial_stats.epochs, 0u);

    const unsigned hw = exec::ThreadPool::defaultThreads();
    for (unsigned pool_size : {2u, hw}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size));
        const std::vector<double> parallel =
            runMesh(pool_size, exec::PinPolicy::None, 1);
        EXPECT_TRUE(identical(serial, parallel))
            << "diverges at index "
            << firstDivergence(serial, parallel);
    }
}

TEST(FabricDeterminism, MeshBitIdenticalAcrossPinPolicies)
{
    const std::vector<double> reference =
        runMesh(4, exec::PinPolicy::None, 1);
    for (exec::PinPolicy pinning :
         {exec::PinPolicy::Compact, exec::PinPolicy::Scatter}) {
        SCOPED_TRACE(exec::pinPolicyName(pinning));
        const std::vector<double> pinned = runMesh(4, pinning, 1);
        EXPECT_TRUE(identical(reference, pinned))
            << "diverges at index "
            << firstDivergence(reference, pinned);
    }
}

TEST(FabricDeterminism, MeshBitIdenticalAcrossGroupSizes)
{
    const std::vector<double> reference =
        runMesh(4, exec::PinPolicy::None, 1);
    for (size_t group_size : {size_t{5}, size_t{36}}) {
        SCOPED_TRACE("group=" + std::to_string(group_size));
        const std::vector<double> grouped =
            runMesh(4, exec::PinPolicy::None, group_size);
        EXPECT_TRUE(identical(reference, grouped))
            << "diverges at index "
            << firstDivergence(reference, grouped);
    }
}

TEST(FabricCoupling, HeatFlowsIntoIdleNeighbor)
{
    // Two crossbar segments, traffic only ever self-sent on tile 0:
    // segment 1 transmits nothing and can only warm up through the
    // lateral exchange.
    std::vector<FabricTransaction> txs;
    uint64_t cycle = 0;
    Rng rng(123);
    for (size_t i = 0; i < 4000; ++i) {
        txs.push_back(
            {cycle, 0, 0, static_cast<uint32_t>(rng.next())});
        cycle += 1 + rng.below(2);
    }

    FabricConfig config;
    config.topology = TopologyKind::Crossbar;
    config.tiles = 2;
    config.segment = smallSegmentConfig(EncodingScheme::Unencoded);
    config.segment.interval_cycles = 500;
    config.segment_resistance = KelvinMetersPerWatt{5.0};
    exec::ThreadPool pool(2);

    BusFabric coupled(tech130, config);
    VectorTrafficSource source_a(txs);
    ASSERT_TRUE(coupled.run(source_a, pool).ok());

    config.segment_coupling = false;
    BusFabric isolated(tech130, config);
    VectorTrafficSource source_b(txs);
    ASSERT_TRUE(isolated.run(source_b, pool).ok());

    const double coupled_idle =
        coupled.segment(1).thermalNetwork().averageTemperature().raw();
    const double isolated_idle = isolated.segment(1)
                                     .thermalNetwork()
                                     .averageTemperature()
                                     .raw();
    const double coupled_hot =
        coupled.segment(0).thermalNetwork().averageTemperature().raw();
    const double isolated_hot = isolated.segment(0)
                                    .thermalNetwork()
                                    .averageTemperature()
                                    .raw();

    EXPECT_EQ(coupled.segment(1).transmissions(), 0u);
    // With coupling the idle segment warms past its isolated self
    // (which only relaxes toward the network's boundary)...
    EXPECT_GT(coupled_idle, isolated_idle);
    // ...the donor runs cooler than its isolated self, and the pair
    // orders hot > idle (heat flows down the gradient).
    EXPECT_LT(coupled_hot, isolated_hot);
    EXPECT_GT(coupled_hot, coupled_idle);
}

TEST(FabricCoupling, CouplingOffMatchesStandaloneBitwise)
{
    // With segment_coupling disabled each segment must be exactly a
    // standalone BusSimulator: run tile-0 self-sends next to an
    // active neighbour and compare against a lone simulator fed the
    // identical word stream.
    std::vector<FabricTransaction> txs = selfSendStream(300, 400);

    FabricConfig config;
    config.topology = TopologyKind::Crossbar;
    config.tiles = 3;
    config.segment_coupling = false;
    config.segment = smallSegmentConfig(EncodingScheme::Gray);
    exec::ThreadPool pool(3);
    BusFabric fabric(tech130, config);
    VectorTrafficSource source(txs);
    Result<FabricRunStats> stats = fabric.run(source, pool);
    ASSERT_TRUE(stats.ok());

    BusSimulator standalone(tech130, config.segment);
    for (const FabricTransaction &tx : txs)
        standalone.transmit(tx.cycle, tx.payload);
    standalone.advanceTo(stats.value().last_cycle);

    const std::vector<double> fabric_fp =
        busFingerprint(fabric.segment(0));
    const std::vector<double> lone_fp = busFingerprint(standalone);
    EXPECT_TRUE(identical(fabric_fp, lone_fp))
        << "diverges at index "
        << firstDivergence(fabric_fp, lone_fp);
}

TEST(FabricContinuation, SplitRunsMatchCombinedRun)
{
    FabricConfig config = meshConfig();
    config.rows = 3;
    config.cols = 3;
    exec::ThreadPool pool(4);

    TrafficConfig traffic_config = meshTraffic();
    traffic_config.hotspot_tile = 4; // centre of the 3x3
    // Sparse enough that the stream has natural drain points — a
    // continuation run's cycles must not precede the previous run's
    // last *hop* cycle, so the cut must fall in an idle gap wider
    // than the longest in-flight route.
    traffic_config.injection_rate = 0.02;
    traffic_config.max_transactions = 600;
    const FabricTopology topo = FabricTopology::mesh(3, 3);
    std::vector<FabricTransaction> all;
    {
        SyntheticTraffic source(topo, traffic_config);
        FabricTransaction tx;
        while (source.next(tx))
            all.push_back(tx);
    }
    ASSERT_EQ(all.size(), 600u);

    BusFabric combined(tech130, config);
    VectorTrafficSource whole(all);
    ASSERT_TRUE(combined.run(whole, pool).ok());

    // First cut past one-third of the stream where everything
    // injected before it has finished its last hop.
    size_t cut = 0;
    uint64_t drained = 0;
    for (size_t i = 0; i < all.size(); ++i) {
        if (i >= all.size() / 3 && all[i].cycle >= drained) {
            cut = i;
            break;
        }
        const uint64_t hops = topo.hopCount(all[i].src, all[i].dst);
        const uint64_t last_hop =
            all[i].cycle + (hops - 1) * config.hop_latency_cycles;
        drained = std::max(drained, last_hop);
    }
    ASSERT_GT(cut, 0u) << "stream never drains; lower the rate";

    BusFabric split(tech130, config);
    VectorTrafficSource first(
        std::vector<FabricTransaction>(all.begin(),
                                       all.begin() +
                                           static_cast<long>(cut)));
    VectorTrafficSource second(
        std::vector<FabricTransaction>(all.begin() +
                                           static_cast<long>(cut),
                                       all.end()));
    ASSERT_TRUE(split.run(first, pool).ok());
    ASSERT_TRUE(split.run(second, pool).ok());

    const std::vector<double> a = fabricFingerprint(combined);
    const std::vector<double> b = fabricFingerprint(split);
    EXPECT_TRUE(identical(a, b))
        << "diverges at index " << firstDivergence(a, b);
}

TEST(FabricRouting, HopsLandHopLatencyApart)
{
    FabricConfig config;
    config.topology = TopologyKind::Mesh2D;
    config.rows = 1;
    config.cols = 4;
    config.hop_latency_cycles = 7;
    config.segment = smallSegmentConfig(EncodingScheme::Unencoded);
    exec::ThreadPool pool(1);
    BusFabric fabric(tech130, config);

    // One transaction end to end: tile 0 -> 3 is 4 hops.
    std::vector<FabricTransaction> txs = {{10, 0, 3, 0xdead}};
    VectorTrafficSource source(txs);
    Result<FabricRunStats> stats = fabric.run(source, pool);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().hops, 4u);
    EXPECT_EQ(stats.value().last_cycle, 10u + 3u * 7u);
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(fabric.segment(s).transmissions(), 1u);
        EXPECT_EQ(fabric.segment(s).currentCycle(), 31u);
    }
}

TEST(FabricSupervised, WholeRunJobReportsAndRetriesCleanly)
{
    FabricConfig config = meshConfig();
    config.rows = 2;
    config.cols = 2;
    TrafficConfig traffic = meshTraffic();
    traffic.hotspot_tile = 3; // the 2x2 corner
    traffic.max_transactions = 400;

    exec::ThreadPool pool(2);
    exec::FabricSupervisor::Options options;
    options.max_retries = 1;
    const exec::FabricSupervisor supervisor(pool, options);

    std::vector<exec::SupervisedFabricJob> jobs;
    jobs.push_back(
        supervisedFabricRunJob("cell0", tech130, config, traffic));
    jobs.push_back(
        supervisedFabricRunJob("cell1", tech130, config, traffic));

    Result<exec::SupervisedFabricReport> batch =
        supervisor.run(jobs);
    ASSERT_TRUE(batch.ok());
    const exec::SupervisedFabricReport &report = batch.value();
    EXPECT_TRUE(report.allSucceeded());
    ASSERT_EQ(report.reports.size(), 2u);
    // Identical (config, traffic) cells must produce identical
    // physics — the supervised wrapper adds no nondeterminism.
    EXPECT_EQ(report.reports[0].stats.transactions, 400u);
    EXPECT_EQ(report.reports[0].stats.hops,
              report.reports[1].stats.hops);
    ASSERT_EQ(report.reports[0].segments.size(), 4u);
    EXPECT_TRUE(fabric_test::sameBits(
        report.reports[0].total_energy.total().raw(),
        report.reports[1].total_energy.total().raw()));
}

} // namespace
} // namespace nanobus
