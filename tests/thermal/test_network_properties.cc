/**
 * @file
 * Parameterized property tests of the thermal-RC network across
 * technology nodes and bus widths: linearity, superposition,
 * symmetry, and transient/steady-state agreement.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "thermal/network.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

using Param = std::tuple<ItrsNode, unsigned /*wires*/>;

class ThermalProperty : public ::testing::TestWithParam<Param>
{
  protected:
    const TechnologyNode &tech() const
    {
        return itrsNode(std::get<0>(GetParam()));
    }
    unsigned wires() const { return std::get<1>(GetParam()); }

    ThermalConfig
    config() const
    {
        ThermalConfig c;
        c.stack_mode = StackMode::None;
        return c;
    }
};

TEST_P(ThermalProperty, SteadyStateRisesAreLinearInPower)
{
    // The network is linear: doubling all powers doubles every rise.
    ThermalNetwork net(tech(), wires(), config());
    Rng rng(wires() * 3);
    std::vector<double> power(wires());
    for (auto &p : power)
        p = rng.uniform(0.0, 1.0);
    std::vector<double> twice = power;
    for (auto &p : twice)
        p *= 2.0;

    auto t1 = net.steadyState(power);
    auto t2 = net.steadyState(twice);
    for (unsigned i = 0; i < wires(); ++i) {
        EXPECT_NEAR(t2[i] - 318.15, 2.0 * (t1[i] - 318.15),
                    1e-9 * (t1[i] - 318.15) + 1e-12)
            << i;
    }
}

TEST_P(ThermalProperty, Superposition)
{
    ThermalNetwork net(tech(), wires(), config());
    Rng rng(wires() * 5);
    std::vector<double> pa(wires()), pb(wires()), pab(wires());
    for (unsigned i = 0; i < wires(); ++i) {
        pa[i] = rng.uniform(0.0, 0.5);
        pb[i] = rng.uniform(0.0, 0.5);
        pab[i] = pa[i] + pb[i];
    }
    auto ta = net.steadyState(pa);
    auto tb = net.steadyState(pb);
    auto tab = net.steadyState(pab);
    for (unsigned i = 0; i < wires(); ++i) {
        double rise_sum = (ta[i] - 318.15) + (tb[i] - 318.15);
        EXPECT_NEAR(tab[i] - 318.15, rise_sum,
                    1e-9 * rise_sum + 1e-12);
    }
}

TEST_P(ThermalProperty, MirrorSymmetry)
{
    // Reversing the power vector mirrors the temperature profile.
    ThermalNetwork net(tech(), wires(), config());
    Rng rng(wires() * 7);
    std::vector<double> power(wires());
    for (auto &p : power)
        p = rng.uniform(0.0, 1.0);
    std::vector<double> reversed(power.rbegin(), power.rend());

    auto t = net.steadyState(power);
    auto tr = net.steadyState(reversed);
    for (unsigned i = 0; i < wires(); ++i)
        EXPECT_NEAR(t[i], tr[wires() - 1 - i], 1e-9);
}

TEST_P(ThermalProperty, TransientConvergesToSteadyState)
{
    ThermalNetwork net(tech(), wires(), config());
    net.reset(Kelvin{318.15});
    Rng rng(wires() * 11);
    std::vector<double> power(wires());
    for (auto &p : power)
        p = rng.uniform(0.0, 1.0);
    // >> any wire time constant at every node.
    net.advance(power, 2000.0 * net.wireParams().timeConstant());
    auto ss = net.steadyState(power);
    for (unsigned i = 0; i < wires(); ++i)
        EXPECT_NEAR(net.temperature(i).raw(), ss[i], 1e-4) << i;
}

TEST_P(ThermalProperty, NoWireBelowAmbientUnderHeating)
{
    ThermalNetwork net(tech(), wires(), config());
    Rng rng(wires() * 13);
    std::vector<double> power(wires());
    for (auto &p : power)
        p = rng.chance(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
    auto t = net.steadyState(power);
    for (unsigned i = 0; i < wires(); ++i)
        EXPECT_GE(t[i], 318.15 - 1e-9) << i;
}

TEST_P(ThermalProperty, TotalHeatBalancesAtSteadyState)
{
    // At steady state the heat leaving through the downward paths
    // equals the total injected power (lateral flows cancel).
    ThermalNetwork net(tech(), wires(), config());
    Rng rng(wires() * 17);
    std::vector<double> power(wires());
    double total_in = 0.0;
    for (auto &p : power) {
        p = rng.uniform(0.0, 1.0);
        total_in += p;
    }
    auto t = net.steadyState(power);
    const double r = net.wireParams().selfResistance().raw();
    double total_out = 0.0;
    for (unsigned i = 0; i < wires(); ++i)
        total_out += (t[i] - 318.15) / r;
    EXPECT_NEAR(total_out, total_in, 1e-9 * total_in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThermalProperty,
    ::testing::Combine(
        ::testing::Values(ItrsNode::Nm130, ItrsNode::Nm90,
                          ItrsNode::Nm65, ItrsNode::Nm45),
        ::testing::Values(1u, 2u, 5u, 33u)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::string(itrsNodeName(std::get<0>(info.param))) +
            "_n" + std::to_string(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace nanobus
