/**
 * @file
 * Implicit-solver path of ThermalNetwork (ISSUE 9): solver selection,
 * Jacobian assembly, implicit-vs-RK4-vs-steadyState equivalence, the
 * advanceChecked fault semantics on the implicit path, and the
 * stability-bound/reset contracts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "thermal/network.hh"
#include "util/faultinject.hh"

namespace nanobus {
namespace {

const double ambient = 318.15;

ThermalConfig
solverConfig(ThermalSolver solver, StackMode stack = StackMode::None)
{
    ThermalConfig config;
    config.stack_mode = stack;
    config.solver = solver;
    if (stack != StackMode::None)
        config.delta_theta = Kelvin{12.0};
    return config;
}

TEST(ThermalSolverSelect, NamesRoundTrip)
{
    EXPECT_STREQ(thermalSolverName(ThermalSolver::Rk4), "rk4");
    EXPECT_STREQ(thermalSolverName(ThermalSolver::BackwardEuler),
                 "backward-euler");
    EXPECT_STREQ(thermalSolverName(ThermalSolver::Trapezoidal),
                 "trapezoidal");
    for (ThermalSolver s : {ThermalSolver::Rk4,
                            ThermalSolver::BackwardEuler,
                            ThermalSolver::Trapezoidal})
        EXPECT_EQ(parseThermalSolver(thermalSolverName(s)), s);
    EXPECT_EQ(parseThermalSolver("be"), ThermalSolver::BackwardEuler);
    EXPECT_EQ(parseThermalSolver("cn"), ThermalSolver::Trapezoidal);
    EXPECT_FALSE(parseThermalSolver("euler").has_value());
}

TEST(ThermalSolverSelect, ConfigSelectsSolver)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork rk4(tech, 4,
                       solverConfig(ThermalSolver::Rk4));
    ThermalNetwork be(tech, 4,
                      solverConfig(ThermalSolver::BackwardEuler));
    EXPECT_EQ(rk4.solver(), ThermalSolver::Rk4);
    EXPECT_EQ(be.solver(), ThermalSolver::BackwardEuler);
}

// The assembled Jacobian must reproduce the dynamics derivative()
// integrates. A deliberately *skewed* initial state (every node at a
// different temperature) drives heat through every coupling — a
// wrong or missing matrix entry (lateral, border row/column, corner)
// diverges the implicit path from the RK4 oracle immediately.
TEST(ThermalSolverSelect, JacobianReproducesDynamicsFromSkewedState)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    for (StackMode mode : {StackMode::None, StackMode::Static,
                           StackMode::Dynamic}) {
        ThermalConfig config =
            solverConfig(ThermalSolver::Trapezoidal, mode);
        config.implicit_steps = 256;  // resolve the wire dynamics
        const unsigned width = 6;
        ThermalNetwork net(tech, width, config);
        const BandedMatrix &a = net.jacobian();
        EXPECT_EQ(a.hasBorder(), mode == StackMode::Dynamic);
        EXPECT_EQ(a.order(),
                  width + (mode == StackMode::Dynamic ? 1u : 0u));

        ThermalConfig rk = config;
        rk.solver = ThermalSolver::Rk4;
        ThermalNetwork oracle(tech, width, rk);

        ThermalNetwork::SnapshotState skew;
        skew.nodes.resize(a.order());
        for (size_t i = 0; i < skew.nodes.size(); ++i)
            skew.nodes[i] =
                ambient + 3.0 * static_cast<double>(i % 4) + 1.0;
        ASSERT_TRUE(net.restoreSnapshotState(skew).ok());
        ASSERT_TRUE(oracle.restoreSnapshotState(skew).ok());

        std::vector<double> power = {0.2, 0.0, 0.9, 0.4, 0.0, 0.6};
        const double tau =
            net.wireParams().timeConstant().raw();  // mid-transient
        net.advance(power, Seconds{tau});
        oracle.advance(power, Seconds{tau});
        for (unsigned i = 0; i < width; ++i) {
            EXPECT_NEAR(net.temperature(i).raw(),
                        oracle.temperature(i).raw(), 2e-3)
                << "mode " << static_cast<int>(mode) << " wire " << i;
        }
        if (mode == StackMode::Dynamic) {
            EXPECT_NEAR(net.stackTemperature().raw(),
                        oracle.stackTemperature().raw(), 2e-3);
        }
    }
}

// Tentpole equivalence gate (mirrored in bench/perf_thermal): both
// implicit methods land on the same steady state as the RK4 oracle
// and as the direct conductance solve, within 1e-6 K relative.
TEST(ThermalSolverSelect, ImplicitSteadyStateMatchesRk4AndDirect)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    for (StackMode mode : {StackMode::None, StackMode::Dynamic}) {
        std::vector<double> power = {0.1, 0.6, 0.3, 0.9, 0.2};
        // Long enough to saturate the slowest mode (the stack node's
        // 20 ms time constant in Dynamic mode).
        const double horizon = mode == StackMode::Dynamic ? 0.4 : 1e-3;
        const unsigned intervals = 32;

        std::vector<std::vector<double>> finals;
        for (ThermalSolver s : {ThermalSolver::Rk4,
                                ThermalSolver::BackwardEuler,
                                ThermalSolver::Trapezoidal}) {
            ThermalConfig config = solverConfig(s, mode);
            ThermalNetwork net(tech, 5, config);
            net.reset(Kelvin{ambient});
            for (unsigned k = 0; k < intervals; ++k)
                net.advance(power,
                            Seconds{horizon /
                                    static_cast<double>(intervals)});
            finals.push_back(net.temperatures());
        }
        ThermalNetwork direct(tech, 5,
                              solverConfig(ThermalSolver::Rk4, mode));
        std::vector<double> ss = direct.steadyState(power);

        for (size_t s = 0; s < finals.size(); ++s) {
            for (unsigned i = 0; i < 5; ++i) {
                EXPECT_NEAR(finals[s][i], ss[i], 1e-6 * ss[i])
                    << "solver " << s << " wire " << i << " mode "
                    << static_cast<int>(mode);
            }
        }
    }
}

// Transient (not just steady-state) agreement: over a horizon
// resolving the wire dynamics, trapezoidal tracks the RK4 oracle
// closely and backward Euler tracks it to first order.
TEST(ThermalSolverSelect, ImplicitTransientTracksRk4)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    std::vector<double> power = {0.0, 1.0, 0.0};
    const double tau =
        ThermalNetwork(tech, 3, solverConfig(ThermalSolver::Rk4))
            .wireParams()
            .timeConstant()
            .raw();

    auto run = [&](ThermalSolver s, unsigned steps) {
        ThermalConfig config = solverConfig(s);
        config.implicit_steps = steps;
        ThermalNetwork net(tech, 3, config);
        net.reset(Kelvin{ambient});
        net.advance(power, Seconds{tau});  // mid-transient
        return net.temperatures();
    };

    std::vector<double> rk4 = run(ThermalSolver::Rk4, 4);
    std::vector<double> cn = run(ThermalSolver::Trapezoidal, 16);
    std::vector<double> be = run(ThermalSolver::BackwardEuler, 16);
    const double rise = rk4[1] - ambient;
    ASSERT_GT(rise, 0.0);
    for (unsigned i = 0; i < 3; ++i) {
        // Second-order CN tracks tightly at dt = tau/16; first-order
        // BE carries an O(dt/tau) lag.
        EXPECT_NEAR(cn[i], rk4[i], 0.01 * rise) << "wire " << i;
        EXPECT_NEAR(be[i], rk4[i], 0.10 * rise) << "wire " << i;
    }
}

TEST(ThermalSolverSelect, ImplicitAdvanceCheckedContainsSolveFault)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config = solverConfig(ThermalSolver::BackwardEuler);
    ThermalNetwork net(tech, 3, config);
    net.reset(Kelvin{ambient});

    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::LuSolve, 2);
    std::vector<ThermalFault> faults =
        net.advanceChecked({0.1, 0.2, 0.3}, Seconds{1e-6});
    FaultInjector::instance().reset();

    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].kind, ThermalFault::Kind::NonFinite);
    // The network is contained and stays usable.
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_TRUE(std::isfinite(net.temperature(i).raw()));
    EXPECT_TRUE(
        net.advanceChecked({0.1, 0.2, 0.3}, Seconds{1e-6}).empty());
}

TEST(ThermalSolverSelect, ImplicitAdvanceCheckedContainsFactorFault)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config = solverConfig(ThermalSolver::Trapezoidal);
    ThermalNetwork net(tech, 3, config);
    net.reset(Kelvin{ambient});

    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::LuFactor, 1);
    std::vector<ThermalFault> faults =
        net.advanceChecked({0.1, 0.2, 0.3}, Seconds{1e-6});
    FaultInjector::instance().reset();

    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].kind, ThermalFault::Kind::NonFinite);
    // The poisoned factorization was not cached: the retry refactors.
    EXPECT_TRUE(
        net.advanceChecked({0.1, 0.2, 0.3}, Seconds{1e-6}).empty());
}

// Satellite (b): the stability-bound contract. The derived step must
// sit inside RK4's stability interval, and reset() revalidates it.
TEST(ThermalSolverSelect, DerivedStepRespectsStabilityBound)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config =
        solverConfig(ThermalSolver::Rk4, StackMode::Dynamic);
    ThermalNetwork net(tech, 8, config);
    const double dt = net.stepWidth().raw();
    ASSERT_GT(dt, 0.0);

    // Recompute the stiffest time constant independently from the
    // published parameters (ThermalConfig::max_dt documentation) and
    // check both the documented 0.2 tau_min derivation and the
    // Gershgorin stability requirement 2 dt / tau_min < 2.785.
    const WireThermalParams &p = net.wireParams();
    const double g_wire = 1.0 / p.selfResistance().raw() +
        2.0 / p.lateralResistance().raw();
    double tau_min = p.capacitance().raw() / g_wire;
    const double c_stack = (config.stack_time_constant /
                            config.stack_resistance).raw();
    const double g_stack = 1.0 / config.stack_resistance.raw() +
        8.0 / p.selfResistance().raw();
    tau_min = std::min(tau_min, c_stack / g_stack);

    EXPECT_NEAR(dt, 0.2 * tau_min, 1e-12 * tau_min);
    EXPECT_LT(2.0 * dt / tau_min, 2.785);

    // reset() revalidates the derivation (a contract violation would
    // panic in checked builds); the step must not drift.
    net.reset(Kelvin{ambient});
    EXPECT_DOUBLE_EQ(net.stepWidth().raw(), dt);
}

TEST(ThermalSolverSelect, UserStepCeilingIsTakenAsIs)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config = solverConfig(ThermalSolver::Rk4);
    config.max_dt = Seconds{1e-9};
    ThermalNetwork net(tech, 2, config);
    EXPECT_DOUBLE_EQ(net.stepWidth().raw(), 1e-9);
    net.reset(Kelvin{ambient});  // no derived-step revalidation
    EXPECT_DOUBLE_EQ(net.stepWidth().raw(), 1e-9);
}

TEST(ThermalSolverSelect, SnapshotRoundTripsOnImplicitPath)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config =
        solverConfig(ThermalSolver::BackwardEuler, StackMode::Dynamic);
    ThermalNetwork a(tech, 4, config);
    a.reset(Kelvin{ambient});
    std::vector<double> power = {0.3, 0.1, 0.7, 0.2};
    EXPECT_TRUE(a.advanceChecked(power, Seconds{1e-4}).empty());

    ThermalNetwork b(tech, 4, config);
    ASSERT_TRUE(b.restoreSnapshotState(a.snapshotState()).ok());

    // Bit-identical continuation: same advances, same bits.
    for (int k = 0; k < 3; ++k) {
        EXPECT_TRUE(a.advanceChecked(power, Seconds{1e-4}).empty());
        EXPECT_TRUE(b.advanceChecked(power, Seconds{1e-4}).empty());
    }
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(a.temperature(i).raw(), b.temperature(i).raw())
            << "wire " << i;
    EXPECT_EQ(a.stackTemperature().raw(), b.stackTemperature().raw());
}

} // anonymous namespace
} // namespace nanobus
