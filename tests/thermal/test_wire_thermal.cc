/**
 * @file
 * Tests for per-wire thermal parameters (Eqs 5-6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/wire_thermal.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

TEST(WireThermal, Eq6ComponentsAt130nm)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    WireThermalParams params(tech);
    // Hand-computed from Table 1: w = s = 335 nm, t_ild = 724 nm,
    // k_ild = 0.6 W/mK.
    double r_spr = std::log(2.0) / (2.0 * 0.6);
    double r_rect = (724e-9 - 0.5 * 335e-9) / (0.6 * 670e-9);
    EXPECT_NEAR(params.spreadingResistance().raw(), r_spr, 1e-12);
    EXPECT_NEAR(params.rectangularResistance().raw(), r_rect, 1e-9);
    EXPECT_NEAR(params.selfResistance().raw(), r_spr + r_rect,
                1e-9);
}

TEST(WireThermal, LateralResistanceAt130nm)
{
    WireThermalParams params(itrsNode(ItrsNode::Nm130));
    // R_inter = s / (k t) = 335e-9 / (0.6 * 670e-9).
    EXPECT_NEAR(params.lateralResistance().raw(),
                335e-9 / (0.6 * 670e-9), 1e-9);
}

TEST(WireThermal, CapacitanceAt130nm)
{
    WireThermalParams params(itrsNode(ItrsNode::Nm130));
    EXPECT_NEAR(params.capacitance().raw(),
                units::cs_copper * 335e-9 * 670e-9, 1e-15);
}

TEST(WireThermal, TimeConstantIsMicroseconds)
{
    // The per-wire RC product at 130 nm is on the order of a
    // microsecond — the basis for the stack-node modeling decision
    // (DESIGN.md substitution #5).
    WireThermalParams params(itrsNode(ItrsNode::Nm130));
    EXPECT_GT(params.timeConstant().raw(), 1e-8);
    EXPECT_LT(params.timeConstant().raw(), 1e-4);
}

TEST(WireThermal, ResistanceRisesWithScaling)
{
    // Smaller geometry + lower k_ild => much higher thermal
    // resistance at future nodes (the paper's motivation).
    double prev = 0.0;
    for (ItrsNode id : allItrsNodes()) {
        WireThermalParams params(itrsNode(id));
        EXPECT_GT(params.selfResistance().raw(), prev)
            << itrsNodeName(id);
        prev = params.selfResistance().raw();
    }
}

TEST(WireThermal, AllNodesPositiveParameters)
{
    for (ItrsNode id : allItrsNodes()) {
        WireThermalParams params(itrsNode(id));
        EXPECT_GT(params.spreadingResistance().raw(), 0.0);
        EXPECT_GT(params.rectangularResistance().raw(), 0.0);
        EXPECT_GT(params.lateralResistance().raw(), 0.0);
        EXPECT_GT(params.capacitance().raw(), 0.0);
    }
}

} // anonymous namespace
} // namespace nanobus
