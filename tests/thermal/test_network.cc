/**
 * @file
 * Tests for the thermal-RC network (Eqs 3-4) and its integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "thermal/network.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const double ambient = 318.15;

ThermalConfig
noStack(bool lateral = true)
{
    ThermalConfig config;
    config.stack_mode = StackMode::None;
    config.lateral_coupling = lateral;
    return config;
}

TEST(ThermalNet, StaysAtAmbientWithoutPower)
{
    ThermalNetwork net(itrsNode(ItrsNode::Nm130), 5, noStack());
    net.reset(Kelvin{ambient});
    net.advance(std::vector<double>(5, 0.0), Seconds{1e-3});
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_NEAR(net.temperature(i).raw(), ambient, 1e-9);
}

TEST(ThermalNet, SingleWireSteadyStateIsPR)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 1, noStack());
    net.reset(Kelvin{ambient});
    const double p = 0.5; // W/m
    double r = net.wireParams().selfResistance().raw();
    net.advance({p}, Seconds{50e-6}); // many time constants
    EXPECT_NEAR(net.temperature(0).raw(), ambient + p * r, 1e-6);
}

TEST(ThermalNet, TransientFollowsExponential)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 1, noStack());
    net.reset(Kelvin{ambient});
    const double p = 1.0;
    double r = net.wireParams().selfResistance().raw();
    double tau = net.wireParams().timeConstant().raw();
    net.advance({p}, Seconds{tau});
    double expected = ambient + p * r * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(net.temperature(0).raw(), expected, p * r * 1e-3);
}

TEST(ThermalNet, SteadyStateSolveMatchesTransient)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 5, noStack());
    net.reset(Kelvin{ambient});
    std::vector<double> power = {0.1, 0.4, 0.9, 0.2, 0.0};
    net.advance(power, Seconds{100e-6});
    std::vector<double> ss = net.steadyState(power);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_NEAR(net.temperature(i).raw(), ss[i], 1e-5) << i;
}

TEST(ThermalNet, LateralCouplingWarmsIdleNeighbors)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 5, noStack(true));
    net.reset(Kelvin{ambient});
    std::vector<double> power = {0, 0, 1.0, 0, 0};
    net.advance(power, Seconds{100e-6});
    EXPECT_GT(net.temperature(1).raw(), ambient + 1e-3);
    EXPECT_GT(net.temperature(3).raw(), ambient + 1e-3);
    // Symmetric spread, centre hottest, monotone decay outward.
    EXPECT_NEAR(net.temperature(1).raw(), net.temperature(3).raw(), 1e-9);
    EXPECT_GT(net.temperature(2).raw(), net.temperature(1).raw());
    EXPECT_GT(net.temperature(1).raw(), net.temperature(0).raw());
}

TEST(ThermalNet, NoLateralCouplingIsolatesWires)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 5, noStack(false));
    net.reset(Kelvin{ambient});
    std::vector<double> power = {0, 0, 1.0, 0, 0};
    net.advance(power, Seconds{100e-6});
    EXPECT_NEAR(net.temperature(1).raw(), ambient, 1e-9);
    EXPECT_GT(net.temperature(2).raw(), ambient + 0.5);
}

TEST(ThermalNet, LateralCouplingLowersHotWireTemperature)
{
    // The paper's point in Sec 4.1.1: neighbor conduction matters
    // when activity differs across wires.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork coupled(tech, 5, noStack(true));
    ThermalNetwork isolated(tech, 5, noStack(false));
    coupled.reset(Kelvin{ambient});
    isolated.reset(Kelvin{ambient});
    std::vector<double> power = {0, 0, 1.0, 0, 0};
    coupled.advance(power, Seconds{100e-6});
    isolated.advance(power, Seconds{100e-6});
    EXPECT_LT(coupled.temperature(2).raw(), isolated.temperature(2).raw());
}

TEST(ThermalNet, UniformPowerKeepsWiresNearlyUniform)
{
    // With equal activity everywhere there is no lateral gradient:
    // the relative worst case of Sec 3.3's second pattern.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 8, noStack(true));
    net.reset(Kelvin{ambient});
    net.advance(std::vector<double>(8, 0.5), Seconds{100e-6});
    EXPECT_NEAR(net.maxTemperature().raw(),
                net.averageTemperature().raw(), 1e-6);
}

TEST(ThermalNet, StaticStackShiftsReference)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config;
    config.stack_mode = StackMode::Static;
    config.delta_theta = Kelvin{20.0};
    ThermalNetwork net(tech, 3, config);
    net.reset(Kelvin{ambient});
    net.advance(std::vector<double>(3, 0.0), Seconds{100e-6});
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_NEAR(net.temperature(i).raw(), ambient + 20.0, 1e-4);
}

TEST(ThermalNet, DynamicStackRampsSlowly)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config;
    config.stack_mode = StackMode::Dynamic;
    config.delta_theta = Kelvin{20.0};
    config.stack_time_constant = Seconds{1e-4}; // shortened for test speed
    ThermalNetwork net(tech, 3, config);
    net.reset(Kelvin{ambient});

    std::vector<double> idle(3, 0.0);
    // After one stack time constant: roughly 63% of the ramp.
    net.advance(idle, Seconds{1e-4});
    double after_one_tau = net.averageTemperature().raw();
    EXPECT_GT(after_one_tau, ambient + 10.0);
    EXPECT_LT(after_one_tau, ambient + 17.0);
    // After many: saturated at ambient + delta.
    net.advance(idle, Seconds{10e-4});
    EXPECT_NEAR(net.averageTemperature().raw(), ambient + 20.0, 0.1);
}

TEST(ThermalNet, DynamicSteadyStateMatchesSolve)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config;
    config.stack_mode = StackMode::Dynamic;
    config.delta_theta = Kelvin{20.0};
    config.stack_time_constant = Seconds{1e-4};
    ThermalNetwork net(tech, 4, config);
    net.reset(Kelvin{ambient});
    std::vector<double> power = {0.2, 0.6, 0.1, 0.3};
    net.advance(power, Seconds{2e-3});
    std::vector<double> ss = net.steadyState(power);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_NEAR(net.temperature(i).raw(), ss[i], 1e-3) << i;
    // The bus's own power raises the stack above ambient + delta.
    EXPECT_GT(net.stackTemperature().raw(), ambient + 20.0);
}

TEST(ThermalNet, StaticAndDynamicStacksAgreeAtSteadyState)
{
    // The dynamic BEOL stack must converge to the Static-mode
    // reference (ambient + delta_theta) when the bus itself is the
    // only other heat source.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig stat;
    stat.stack_mode = StackMode::Static;
    stat.delta_theta = Kelvin{20.0};
    ThermalConfig dyn = stat;
    dyn.stack_mode = StackMode::Dynamic;
    dyn.stack_time_constant = Seconds{1e-4};

    ThermalNetwork net_s(tech, 4, stat);
    ThermalNetwork net_d(tech, 4, dyn);
    std::vector<double> power = {0.3, 0.1, 0.4, 0.2};
    auto ss_s = net_s.steadyState(power);
    auto ss_d = net_d.steadyState(power);
    // The dynamic stack also carries the bus's own power through
    // R_stack, so it sits slightly above the static reference —
    // bounded by total_power * R_stack.
    // W/m times K m / W composes to kelvin.
    double bound =
        ((0.3 + 0.1 + 0.4 + 0.2) * dyn.stack_resistance).raw();
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_GE(ss_d[i], ss_s[i] - 1e-9) << i;
        EXPECT_LE(ss_d[i], ss_s[i] + bound + 1e-9) << i;
    }
}

TEST(ThermalNet, CoolingDecaysBackToReference)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 3, noStack());
    net.reset(Kelvin{ambient});
    std::vector<double> power = {1.0, 1.0, 1.0};
    net.advance(power, Seconds{50e-6});
    double hot = net.maxTemperature().raw();
    ASSERT_GT(hot, ambient + 0.5);
    net.advance(std::vector<double>(3, 0.0), Seconds{50e-6});
    EXPECT_NEAR(net.maxTemperature().raw(), ambient, 1e-4);
}

TEST(ThermalNet, TemperatureMonotoneInPower)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 3, noStack());
    std::vector<double> low_p = {0.1, 0.1, 0.1};
    std::vector<double> high_p = {0.4, 0.4, 0.4};
    auto low = net.steadyState(low_p);
    auto high = net.steadyState(high_p);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_GT(high[i], low[i]);
}

TEST(ThermalNet, AccessorsAndValidation)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm45);
    ThermalNetwork net(tech, 7, noStack());
    EXPECT_EQ(net.numWires(), 7u);
    EXPECT_GT(net.stepWidth().raw(), 0.0);
    EXPECT_EQ(net.temperatures().size(), 7u);

    setAbortOnError(false);
    EXPECT_THROW(ThermalNetwork(tech, 0, noStack()), FatalError);
    EXPECT_THROW(net.advance({1.0}, Seconds{1.0}),
                 FatalError); // wrong size
    EXPECT_THROW(net.advance(std::vector<double>(7, 0.0),
                             Seconds{-1.0}),
                 FatalError);
    setAbortOnError(true);
}

TEST(ThermalNet, CheckedAdvanceMatchesUncheckedWhenHealthy)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork plain(tech, 5, noStack());
    ThermalNetwork guarded(tech, 5, noStack());
    plain.reset(Kelvin{ambient});
    guarded.reset(Kelvin{ambient});
    std::vector<double> power = {0.1, 0.4, 0.9, 0.2, 0.0};
    plain.advance(power, Seconds{20e-6});
    std::vector<ThermalFault> faults =
        guarded.advanceChecked(power, Seconds{20e-6});
    EXPECT_TRUE(faults.empty());
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_NEAR(guarded.temperature(i).raw(), plain.temperature(i).raw(),
                    1e-9) << i;
}

TEST(ThermalNet, CheckedAdvanceClampsTemperatureCeiling)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config = noStack();
    config.temperature_ceiling = Kelvin{ambient + 0.2};
    ThermalNetwork net(tech, 3, config);
    net.reset(Kelvin{ambient});
    std::vector<ThermalFault> faults =
        net.advanceChecked({1.0, 1.0, 1.0}, Seconds{50e-6});
    ASSERT_FALSE(faults.empty());
    bool ceiling_fault = false;
    for (const ThermalFault &f : faults) {
        if (f.kind == ThermalFault::Kind::Ceiling) {
            ceiling_fault = true;
            EXPECT_GT(f.temperature.raw(),
                      config.temperature_ceiling.raw());
            EXPECT_FALSE(f.message.empty());
        }
    }
    EXPECT_TRUE(ceiling_fault);
    EXPECT_LE(net.maxTemperature().raw(),
              config.temperature_ceiling.raw() + 1e-12);
}

TEST(ThermalNet, CheckedAdvanceContainsPersistentNaN)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalConfig config = noStack();
    config.max_integration_retries = 0; // halving disabled
    ThermalNetwork net(tech, 2, config);
    net.reset(Kelvin{ambient});
    FaultInjector::instance().reset();
    FaultInjector::instance().armCallFault(FaultSite::Rk4Step, 1, 1);
    std::vector<ThermalFault> faults =
        net.advanceChecked({0.5, 0.5}, Seconds{10e-6});
    FaultInjector::instance().reset();
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].kind, ThermalFault::Kind::NonFinite);
    // Network remains usable with finite state.
    EXPECT_TRUE(std::isfinite(net.temperature(0).raw()));
    EXPECT_TRUE(std::isfinite(net.temperature(1).raw()));
    std::vector<ThermalFault> clean =
        net.advanceChecked({0.0, 0.0}, Seconds{10e-6});
    EXPECT_TRUE(clean.empty());
}

TEST(ThermalNet, CheckedAdvanceDetectsFiniteDivergence)
{
    // Force the RK4 step outside the stability region of the fastest
    // (alternating) eigenmode: the state grows geometrically while
    // staying finite, the failure mode step-halving cannot see. The
    // steady-state bound check must catch it.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork probe(tech, 2, noStack());
    double tau_fast = 5.0 * probe.stepWidth().raw(); // dt = 0.2 tau

    ThermalConfig config = noStack();
    config.max_dt = Seconds{3.1 * tau_fast}; // |R(z)| ~ 1.6
    config.temperature_ceiling =
        Kelvin{0.0}; // isolate the divergence guard
    ThermalNetwork net(tech, 2, config);
    net.reset(Kelvin{ambient});
    std::vector<double> power = {1.0, 0.0};
    bool diverged = false;
    for (int i = 0; i < 400 && !diverged; ++i) {
        for (const ThermalFault &f :
             net.advanceChecked(power, config.max_dt))
            diverged = diverged ||
                f.kind == ThermalFault::Kind::Divergence;
    }
    EXPECT_TRUE(diverged);
    EXPECT_TRUE(std::isfinite(net.temperature(0).raw()));
    EXPECT_TRUE(std::isfinite(net.temperature(1).raw()));
    // Clamped back onto (or below) the steady-state bound.
    std::vector<double> ss = net.steadyState(power);
    double ss_max = *std::max_element(ss.begin(), ss.end());
    EXPECT_LE(net.maxTemperature().raw(), ss_max + 1e-6);
}

TEST(ThermalNet, CoolingFromAboveIsNotFlaggedAsDivergence)
{
    // A hot start legitimately sits above steady state; falling back
    // toward it must not trip the runaway guard.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    ThermalNetwork net(tech, 3, noStack());
    net.reset(Kelvin{ambient + 100.0});
    std::vector<double> idle(3, 0.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(net.advanceChecked(idle, Seconds{5e-6}).empty()) << i;
    EXPECT_LT(net.maxTemperature().raw(), ambient + 100.0);
}

} // anonymous namespace
} // namespace nanobus
