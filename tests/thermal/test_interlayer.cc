/**
 * @file
 * Tests for the Eq 7 inter-layer heat transfer model.
 */

#include <gtest/gtest.h>

#include "thermal/interlayer.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

TEST(InterLayer, LayerFluxFormula)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    InterLayerModel model(tech, stack);
    // rho_copper is a plain double constant, so build the expected
    // flux from raw SI values.
    const double expected = (tech.j_max * tech.j_max).raw() *
        units::rho_copper * tech.wire_thickness.raw() * 0.5;
    EXPECT_NEAR(model.layerFlux(0).raw(), expected,
                expected * 1e-12);
}

TEST(InterLayer, DeltaThetaMatchesPaperAt130nm)
{
    // The paper reports that lower-layer heating plus switching can
    // raise wire temperatures by ~20-30 K at 130 nm (avg saturation
    // 338 K = ambient + 20 K; abstract quotes "about 30 degrees").
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    InterLayerModel model(tech, stack);
    const Kelvin delta = model.deltaTheta();
    EXPECT_GT(delta.raw(), 15.0);
    EXPECT_LT(delta.raw(), 35.0);
}

TEST(InterLayer, HandComputedUniformStack)
{
    // Uniform stack: delta = (t_ild/k) * q * sum_{i=1..N} (N - i)
    //              = (t_ild/k) * q * N(N-1)/2.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    InterLayerModel model(tech, stack);
    const WattsPerSquareMeter q = model.layerFlux(0);
    const double n = tech.metal_layers;
    // m / (W/(m K)) * W/m^2 composes to kelvin.
    const Kelvin expected = tech.ild_height / tech.k_ild * q *
        (n * (n - 1.0) / 2.0);
    EXPECT_NEAR(model.deltaTheta().raw(), expected.raw(),
                expected.raw() * 1e-12);
}

TEST(InterLayer, GrowsDramaticallyWithScaling)
{
    // Higher j_max and collapsing k_ild make inter-layer heating
    // explode at future nodes — the scaling alarm the paper raises.
    double prev = 0.0;
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        MetalLayerStack stack(tech);
        const double delta =
            InterLayerModel(tech, stack).deltaTheta().raw();
        EXPECT_GT(delta, prev) << itrsNodeName(id);
        prev = delta;
    }
    EXPECT_GT(prev, 100.0); // 45 nm is far worse than 130 nm
}

TEST(InterLayer, TaperedStackHeatsLess)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack uniform(tech, 1.0);
    MetalLayerStack tapered(tech, 0.45);
    const double d_uniform =
        InterLayerModel(tech, uniform).deltaTheta().raw();
    const double d_tapered =
        InterLayerModel(tech, tapered).deltaTheta().raw();
    EXPECT_LT(d_tapered, d_uniform);
    EXPECT_GT(d_tapered, 0.3 * d_uniform);
}

TEST(InterLayer, CoverageScalesLinearly)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack half(tech, 1.0, 0.5);
    MetalLayerStack quarter(tech, 1.0, 0.25);
    const double d_half =
        InterLayerModel(tech, half).deltaTheta().raw();
    const double d_quarter =
        InterLayerModel(tech, quarter).deltaTheta().raw();
    EXPECT_NEAR(d_half / d_quarter, 2.0, 1e-9);
}

TEST(InterLayer, PerPaperFormIsPositiveAndLarger)
{
    // The literal Eq 7 (with its stray 1/(s alpha) factor) yields a
    // numerically much larger value; it is retained for reference
    // only.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    MetalLayerStack stack(tech);
    InterLayerModel model(tech, stack);
    EXPECT_GT(model.perPaperEquation7(), model.deltaTheta().raw());
}

} // anonymous namespace
} // namespace nanobus
