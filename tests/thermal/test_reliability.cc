/**
 * @file
 * Tests for the electromigration reliability model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/reliability.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

TEST(Reliability, ThermalFactorAtReferenceIsUnity)
{
    ReliabilityModel model(tech130, Kelvin{318.15});
    EXPECT_DOUBLE_EQ(model.thermalFactor(Kelvin{318.15}), 1.0);
}

TEST(Reliability, HotterWiresFailSooner)
{
    ReliabilityModel model(tech130);
    EXPECT_LT(model.thermalFactor(Kelvin{338.15}), 1.0);
    EXPECT_GT(model.thermalFactor(Kelvin{298.15}), 1.0);
    // Monotone decreasing.
    double prev = 1e12;
    for (double t = 300.0; t <= 400.0; t += 10.0) {
        double f = model.thermalFactor(Kelvin{t});
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(Reliability, TwentyKelvinRiseCostsRoughlyHalfTheLifetime)
{
    // With Ea = 0.9 eV, +20 K around 320 K cuts MTTF by ~7x-ish;
    // sanity-band the magnitude (this is the paper's headline
    // reliability implication of the ~20 K bus temperature rise).
    ReliabilityModel model(tech130, Kelvin{318.15});
    double f = model.thermalFactor(Kelvin{338.15});
    EXPECT_LT(f, 0.5);
    EXPECT_GT(f, 0.05);
}

TEST(Reliability, HandComputedThermalFactor)
{
    ReliabilityModel model(tech130, Kelvin{318.15});
    double kb = 8.617333262e-5;
    double expected =
        std::exp(0.9 / kb * (1.0 / 340.0 - 1.0 / 318.15));
    EXPECT_NEAR(model.thermalFactor(Kelvin{340.0}), expected, 1e-12);
}

TEST(Reliability, CurrentExponentScalesQuadratically)
{
    ReliabilityModel model(tech130);
    // Halving the current density quadruples MTTF (n = 2).
    double f_full = model.mttfFactor(Kelvin{318.15}, tech130.j_max);
    double f_half = model.mttfFactor(Kelvin{318.15}, 0.5 * tech130.j_max);
    EXPECT_NEAR(f_half / f_full, 4.0, 1e-9);
    EXPECT_NEAR(f_full, 1.0, 1e-12);
}

TEST(Reliability, CurrentDensityFromEnergy)
{
    ReliabilityModel model(tech130);
    // Construct a case with a known answer: wire R = r_wire * L,
    // dissipating P = 1 mW over the interval.
    const Meters length{0.01};
    const Seconds duration{1e-3};
    const Watts power{1e-3};
    const Joules energy = power * duration;
    const Ohms resistance = tech130.r_wire * length;
    const double i_rms = std::sqrt((power / resistance).raw());
    const double expected = i_rms /
        (tech130.wire_width * tech130.wire_thickness).raw();
    EXPECT_NEAR(model.currentDensity(energy, duration, length).raw(),
                expected, expected * 1e-12);
}

TEST(Reliability, IdleWireNeverElectromigrates)
{
    ReliabilityModel model(tech130);
    EXPECT_TRUE(std::isinf(model.mttfFactor(Kelvin{330.0},
                                AmpsPerSquareMeter{0.0})));
}

TEST(Reliability, ReportCoversAllWires)
{
    ReliabilityModel model(tech130);
    std::vector<double> temps = {320.0, 340.0, 330.0};
    std::vector<double> energies = {1e-9, 4e-9, 0.0};
    auto report = model.report(temps, energies, Seconds{1e-4},
                               Meters{0.01});
    ASSERT_EQ(report.size(), 3u);
    // Hotter + busier wire 1 has the worst outlook.
    EXPECT_LT(report[1].mttf_factor, report[0].mttf_factor);
    EXPECT_GT(report[1].current_density.raw(),
              report[0].current_density.raw());
    EXPECT_DOUBLE_EQ(report[2].current_density.raw(), 0.0);
    EXPECT_TRUE(std::isinf(report[2].mttf_factor));
    for (const auto &wire : report)
        EXPECT_GT(wire.mttf_factor, 0.0);
}

TEST(Reliability, WorstCaseSwitchingNearsTheRating)
{
    // A line toggling with full coupling *every* cycle draws an RMS
    // current density right at the j_max rating — which is why
    // worst-case thermal models (Sec 2) are so pessimistic for
    // signal lines.
    ReliabilityModel model(tech130);
    const Seconds cycle_time = 1.0 / tech130.f_clk;
    const AmpsPerSquareMeter j = model.currentDensity(
        Joules{3.5e-12}, cycle_time, Meters{0.01});
    EXPECT_GT(j.raw(), 0.5 * tech130.j_max.raw());
    EXPECT_LT(j.raw(), 2.0 * tech130.j_max.raw());
}

TEST(Reliability, RealisticActivityStaysBelowTheRating)
{
    // Real address streams switch a given line only a fraction of
    // cycles (~10%), so the RMS density stays well under j_max —
    // the paper's point that signal lines carry much less current
    // than supply lines.
    ReliabilityModel model(tech130);
    const Seconds cycle_time = 1.0 / tech130.f_clk;
    const AmpsPerSquareMeter j = model.currentDensity(
        Joules{0.1 * 3.5e-12}, cycle_time, Meters{0.01});
    EXPECT_LT(j.raw(), 0.5 * tech130.j_max.raw());
    EXPECT_GT(j.raw(), 0.01 * tech130.j_max.raw());
}

TEST(Reliability, InvalidInputsAreFatal)
{
    setAbortOnError(false);
    ReliabilityModel model(tech130);
    EXPECT_THROW(model.thermalFactor(Kelvin{-1.0}), FatalError);
    EXPECT_THROW(model.mttfFactor(Kelvin{320.0},
                                  AmpsPerSquareMeter{-1.0}),
                 FatalError);
    EXPECT_THROW(model.currentDensity(Joules{1.0}, Seconds{0.0},
                                      Meters{0.01}),
                 FatalError);
    EXPECT_THROW(model.report({320.0}, {}, Seconds{1.0},
                              Meters{0.01}),
                 FatalError);
    BlackParams bad;
    bad.activation_energy_ev = 0.0;
    EXPECT_THROW(ReliabilityModel(tech130, Kelvin{318.15}, bad),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
