/**
 * @file
 * Tests for the axial wire thermal model with via cooling.
 */

#include <gtest/gtest.h>

#include "thermal/axial.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

AxialWireModel::Config
baseConfig(unsigned vias = 0)
{
    AxialWireModel::Config config;
    config.length = Meters{0.010};
    config.segments = 200;
    config.vias = vias;
    return config;
}

TEST(Axial, NoViasReproducesLumpedModel)
{
    // Without vias every segment sees identical conditions: the
    // profile is flat at exactly the lumped P*R rise.
    AxialWireModel model(tech130, baseConfig(0));
    AxialProfile profile = model.solve(WattsPerMeter{0.5});
    double expected =
        318.15 + model.lumpedRise(WattsPerMeter{0.5}).raw();
    EXPECT_NEAR(profile.peak.raw(), expected, 1e-9);
    EXPECT_NEAR(profile.valley.raw(), expected, 1e-9);
    EXPECT_NEAR(profile.average.raw(), expected, 1e-9);
}

TEST(Axial, ZeroPowerStaysAtAmbient)
{
    AxialWireModel model(tech130, baseConfig(5));
    AxialProfile profile = model.solve(WattsPerMeter{0.0});
    EXPECT_NEAR(profile.peak.raw(), 318.15, 1e-9);
    EXPECT_NEAR(profile.valley.raw(), 318.15, 1e-9);
}

TEST(Axial, ViasCoolTheWire)
{
    AxialWireModel bare(tech130, baseConfig(0));
    AxialWireModel viad(tech130, baseConfig(11));
    const double p = 0.5;
    AxialProfile without = bare.solve(WattsPerMeter{p});
    AxialProfile with = viad.solve(WattsPerMeter{p});
    EXPECT_LT(with.average.raw(), without.average.raw());
    EXPECT_LT(with.valley.raw(), without.valley.raw());
    EXPECT_LE(with.peak.raw(), without.peak.raw() + 1e-12);
}

TEST(Axial, CoolingIsLocalizedAtViaSites)
{
    AxialWireModel model(tech130, baseConfig(3)); // ends + middle
    AxialProfile profile = model.solve(WattsPerMeter{0.5});
    const auto &sites = model.viaSites();
    ASSERT_EQ(sites.size(), 3u);
    unsigned mid_site = sites[1];
    // Between vias the wire is hotter than at the via itself.
    unsigned between = (sites[0] + sites[1]) / 2;
    EXPECT_GT(profile.temperature[between],
              profile.temperature[mid_site]);
    // The peak sits between vias, not at one.
    EXPECT_GT(profile.peak.raw(), profile.temperature[mid_site]);
}

TEST(Axial, MoreViasMeanCoolerAverages)
{
    double prev_avg = 1e9;
    for (unsigned vias : {0u, 2u, 5u, 11u, 21u}) {
        AxialWireModel model(tech130, baseConfig(vias));
        double avg = model.solve(WattsPerMeter{0.5}).average.raw();
        EXPECT_LT(avg, prev_avg) << vias;
        prev_avg = avg;
    }
}

TEST(Axial, LowerViaResistanceCoolsMore)
{
    AxialWireModel::Config strong = baseConfig(11);
    strong.via_resistance = KelvinPerWatt{1e4};
    AxialWireModel::Config weak = baseConfig(11);
    weak.via_resistance = KelvinPerWatt{1e6};
    double avg_strong =
        AxialWireModel(tech130, strong)
            .solve(WattsPerMeter{0.5}).average.raw();
    double avg_weak =
        AxialWireModel(tech130, weak)
            .solve(WattsPerMeter{0.5}).average.raw();
    EXPECT_LT(avg_strong, avg_weak);
}

TEST(Axial, DiscretizationConverges)
{
    AxialWireModel::Config coarse = baseConfig(5);
    coarse.segments = 100;
    AxialWireModel::Config fine = baseConfig(5);
    fine.segments = 400;
    double avg_coarse =
        AxialWireModel(tech130, coarse)
            .solve(WattsPerMeter{0.5}).average.raw();
    double avg_fine =
        AxialWireModel(tech130, fine)
            .solve(WattsPerMeter{0.5}).average.raw();
    EXPECT_NEAR(avg_coarse - 318.15, avg_fine - 318.15,
                0.05 * (avg_fine - 318.15));
}

TEST(Axial, ViaReliefGrowsWithScaling)
{
    // At 45 nm the ILD barely conducts (k_ild 0.07), so via cooling
    // matters relatively more — though not proportionally to the
    // ILD collapse, because each via's reach is choked by axial
    // conduction through the shrinking copper cross-section (the
    // per-via relief scales like sqrt(A * R_i), nearly
    // node-invariant; the net trend comes from the weaker downward
    // path it competes against).
    auto relative_relief = [](const TechnologyNode &tech) {
        AxialWireModel bare(tech, baseConfig(0));
        AxialWireModel viad(tech, baseConfig(11));
        double rise_bare =
            bare.solve(WattsPerMeter{0.2}).average.raw() - 318.15;
        double rise_viad =
            viad.solve(WattsPerMeter{0.2}).average.raw() - 318.15;
        return (rise_bare - rise_viad) / rise_bare;
    };
    double relief_130 = relative_relief(tech130);
    double relief_45 = relative_relief(itrsNode(ItrsNode::Nm45));
    EXPECT_GT(relief_45, 1.2 * relief_130);
    EXPECT_LT(relief_45, 5.0 * relief_130);
}

TEST(Axial, SingleViaSitsMidWire)
{
    AxialWireModel model(tech130, baseConfig(1));
    ASSERT_EQ(model.viaSites().size(), 1u);
    EXPECT_EQ(model.viaSites()[0], 100u);
}

TEST(Axial, InvalidConfigsAreFatal)
{
    setAbortOnError(false);
    AxialWireModel::Config bad = baseConfig(0);
    bad.segments = 1;
    EXPECT_THROW(AxialWireModel(tech130, bad), FatalError);
    bad = baseConfig(0);
    bad.length = Meters{0.0};
    EXPECT_THROW(AxialWireModel(tech130, bad), FatalError);
    bad = baseConfig(300); // more vias than segments
    EXPECT_THROW(AxialWireModel(tech130, bad), FatalError);
    bad = baseConfig(2);
    bad.via_resistance = KelvinPerWatt{0.0};
    EXPECT_THROW(AxialWireModel(tech130, bad), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
