/**
 * @file
 * Implicit-solver pipeline pins (`thermal-solver` ctest label, run
 * under TSan in CI): a trace replay whose thermal network steps with
 * the implicit integrators must be bit-identical across pool sizes
 * 1/2/hw and across kill-and-resume, and the solver choice must flow
 * from BusSimConfig::thermal through SimPipeline unchanged.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "sim/pipeline.hh"
#include "sim/snapshot.hh"
#include "trace/record.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
simConfig(ThermalSolver solver)
{
    BusSimConfig config;
    config.scheme = EncodingScheme::BusInvert;
    config.data_width = 16;
    config.interval_cycles = 400;
    config.record_samples = true;
    config.thermal.solver = solver;
    return config;
}

std::vector<TraceRecord>
makeRecords(uint64_t n)
{
    std::vector<TraceRecord> records;
    uint32_t address = 0xbeefu;
    for (uint64_t c = 0; c < n; ++c) {
        address = address * 1664525u + 1013904223u;
        AccessKind kind = (c % 3 == 0)
            ? AccessKind::InstructionFetch
            : ((c % 3 == 1) ? AccessKind::Load : AccessKind::Store);
        records.push_back({c, address, kind});
    }
    return records;
}

uint64_t
bitsOf(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

/** Bit-exact observable state of both buses' thermal paths. */
std::vector<uint64_t>
fingerprint(const TwinBusSimulator &twin)
{
    std::vector<uint64_t> fp;
    for (const BusSimulator *bus :
         {&twin.instructionBus(), &twin.dataBus()}) {
        const ThermalNetwork &net = bus->thermalNetwork();
        for (unsigned i = 0; i < net.numWires(); ++i)
            fp.push_back(bitsOf(net.temperature(i).raw()));
        fp.push_back(bitsOf(net.stackTemperature().raw()));
        fp.push_back(bus->thermalFaults().size());
        fp.push_back(bus->samples().size());
        for (const IntervalSample &s : bus->samples()) {
            fp.push_back(bitsOf(s.avg_temperature.raw()));
            fp.push_back(bitsOf(s.max_temperature.raw()));
        }
        fp.push_back(bitsOf(bus->totalEnergy().self.raw()));
        fp.push_back(bitsOf(bus->totalEnergy().coupling.raw()));
    }
    return fp;
}

std::vector<uint64_t>
replay(const std::vector<TraceRecord> &records, ThermalSolver solver,
       exec::ThreadPool &pool, const SimPipeline::Config &config)
{
    TwinBusSimulator twin(tech130, simConfig(solver));
    SimPipeline pipeline(twin, pool, config);
    VectorTraceSource source(records);
    Result<uint64_t> replayed = pipeline.run(source);
    EXPECT_TRUE(replayed.ok())
        << (replayed.ok() ? ""
                          : replayed.error().describe().c_str());
    return fingerprint(twin);
}

TEST(ThermalSolverPipeline, SolverChoiceFlowsThroughBusSim)
{
    for (ThermalSolver solver : {ThermalSolver::Rk4,
                                 ThermalSolver::BackwardEuler,
                                 ThermalSolver::Trapezoidal}) {
        TwinBusSimulator twin(tech130, simConfig(solver));
        EXPECT_EQ(twin.instructionBus().thermalNetwork().solver(),
                  solver);
        EXPECT_EQ(twin.dataBus().thermalNetwork().solver(), solver);
    }
}

TEST(ThermalSolverPipeline, ImplicitReplayBitIdenticalAcrossPools)
{
    // The implicit path must not perturb the pipeline's determinism
    // pin: identical fingerprints at pool sizes 1, 2, and hw, for
    // both implicit methods, against the pool-1 reference.
    const std::vector<TraceRecord> records = makeRecords(3000);
    SimPipeline::Config plain;
    plain.batch_size = 256;

    std::vector<unsigned> pools = {1, 2};
    if (exec::ThreadPool::defaultThreads() > 2)
        pools.push_back(exec::ThreadPool::defaultThreads());

    for (ThermalSolver solver : {ThermalSolver::BackwardEuler,
                                 ThermalSolver::Trapezoidal}) {
        exec::ThreadPool reference_pool(1);
        const std::vector<uint64_t> reference =
            replay(records, solver, reference_pool, plain);
        for (unsigned pool_size : pools) {
            exec::ThreadPool pool(pool_size);
            EXPECT_EQ(replay(records, solver, pool, plain), reference)
                << thermalSolverName(solver) << " pool=" << pool_size;
        }
    }
}

TEST(ThermalSolverPipeline, ImplicitKillAndResumeBitIdentical)
{
    // Kill-and-resume on the implicit path: the snapshot carries the
    // thermal state but *not* the cached operator factorization — the
    // resumed network must refactor deterministically and continue
    // bit-identically, at pool sizes 1/2/hw.
    const std::string ckpt = ::testing::TempDir() +
        "/nanobus_thermal_solver_test.ckpt";
    const std::vector<TraceRecord> records = makeRecords(2000);
    const std::vector<TraceRecord> prefix(records.begin(),
                                          records.begin() + 1100);
    SimPipeline::Config plain;
    plain.batch_size = 256;

    std::vector<unsigned> pools = {1, 2};
    if (exec::ThreadPool::defaultThreads() > 2)
        pools.push_back(exec::ThreadPool::defaultThreads());

    for (ThermalSolver solver : {ThermalSolver::BackwardEuler,
                                 ThermalSolver::Trapezoidal}) {
        exec::ThreadPool reference_pool(1);
        const std::vector<uint64_t> uninterrupted =
            replay(records, solver, reference_pool, plain);

        for (unsigned pool_size : pools) {
            exec::ThreadPool pool(pool_size);

            SimPipeline::Config checkpointing = plain;
            checkpointing.checkpoint_path = ckpt;
            checkpointing.checkpoint_every_batches = 1;
            replay(prefix, solver, pool, checkpointing);

            SimPipeline::Config resuming = plain;
            resuming.checkpoint_path = ckpt;
            resuming.resume = true;
            EXPECT_EQ(replay(records, solver, pool, resuming),
                      uninterrupted)
                << thermalSolverName(solver) << " pool=" << pool_size;
        }
    }
    std::remove(ckpt.c_str());
}

} // anonymous namespace
} // namespace nanobus
