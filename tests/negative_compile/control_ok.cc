/**
 * @file
 * Harness control: dimensionally correct usage of every API the
 * fail_*.cc cases abuse. This file MUST compile; it proves the
 * negative cases fail because of the safety layer, not a broken
 * include path.
 */

#include "extraction/capmatrix.hh"
#include "tech/delay.hh"
#include "tech/repeater.hh"
#include "thermal/network.hh"
#include "util/units.hh"

namespace nanobus {

void
control(DelayModel &delay, RepeaterModel &repeater,
        ThermalNetwork &net, CapacitanceMatrix &caps)
{
    const Joules e = Joules{1e-12} + Watts{1e-3} * Seconds{1e-9};
    (void)e;
    caps.setGround(0, FaradsPerMeter{44.06e-12});
    (void)delay.loadedLineDelay(Meters{0.010}, Farads{1e-15},
                                Kelvin{318.15});
    net.reset(Kelvin{318.15});
    (void)repeater.design(Meters{0.010});
}

} // namespace nanobus
