/**
 * @file
 * MUST NOT COMPILE: passing a raw double where a typed length is
 * required. Quantity construction is explicit precisely so an
 * unlabeled 0.010 cannot claim to be metres (or millimetres, or
 * anything else) by accident.
 */

#include "tech/repeater.hh"

namespace nanobus {

RepeaterDesign
badDesign(const RepeaterModel &model)
{
    return model.design(0.010); // needs Meters{0.010}
}

} // namespace nanobus
