/**
 * @file
 * MUST NOT COMPILE: storing a total capacitance [F] where the matrix
 * expects a per-unit-length value [F/m]. Before the safety layer this
 * silently scaled every energy by the wire length.
 */

#include "extraction/capmatrix.hh"

namespace nanobus {

void
badStore(CapacitanceMatrix &caps)
{
    caps.setGround(0, Farads{4.4e-13}); // needs FaradsPerMeter
}

} // namespace nanobus
