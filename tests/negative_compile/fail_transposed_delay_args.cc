/**
 * @file
 * MUST NOT COMPILE: transposing the (length, load) argument pair of
 * loadedLineDelay. Both used to be plain doubles, so the swap
 * compiled and produced garbage delays.
 */

#include "tech/delay.hh"

namespace nanobus {

LineDelay
badCall(DelayModel &model)
{
    return model.loadedLineDelay(Farads{1e-15}, Meters{0.010},
                                 Kelvin{318.15}); // swapped
}

} // namespace nanobus
