/**
 * @file
 * MUST NOT COMPILE: resetting the thermal network with a line power
 * instead of a temperature — the K-vs-W/m confusion between the
 * solver's drive vector and its state.
 */

#include "thermal/network.hh"

namespace nanobus {

void
badReset(ThermalNetwork &net)
{
    net.reset(WattsPerMeter{1.0}); // needs Kelvin
}

} // namespace nanobus
