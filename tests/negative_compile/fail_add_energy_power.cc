/**
 * @file
 * MUST NOT COMPILE: adding an energy to a power. The classic J-vs-W
 * mixup the paper's pipeline used to be vulnerable to when summing
 * per-interval dissipation.
 */

#include "util/units.hh"

namespace nanobus {

Joules
badSum(Joules energy, Watts power)
{
    return energy + power; // mismatched dimensions
}

} // namespace nanobus
