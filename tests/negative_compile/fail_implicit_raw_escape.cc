/**
 * @file
 * MUST NOT COMPILE: letting a dimensioned quantity silently decay to
 * a raw double. The only sanctioned exit is the explicit .raw()
 * escape hatch at solver/writer boundaries.
 */

#include "util/units.hh"

namespace nanobus {

double
badEscape(Joules energy)
{
    return energy; // needs energy.raw()
}

} // namespace nanobus
