/**
 * @file
 * Tests for the two-level cache hierarchy of Sec 5.1.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"
#include "trace/synthetic.hh"

namespace nanobus {
namespace {

TEST(HierarchyConfig, PaperParameters)
{
    HierarchyConfig c = HierarchyConfig::paper();
    EXPECT_EQ(c.l1i.size, 16u * 1024);
    EXPECT_EQ(c.l1i.assoc, 4u);
    EXPECT_EQ(c.l1i.block_size, 32u);
    EXPECT_EQ(c.l1i.write_policy, WritePolicy::WriteThrough);
    EXPECT_EQ(c.l1d.size, 16u * 1024);
    EXPECT_EQ(c.l2.size, 256u * 1024);
    EXPECT_EQ(c.l2.assoc, 4u);
    EXPECT_EQ(c.l2.block_size, 64u);
    EXPECT_EQ(c.l2.write_policy, WritePolicy::WriteBack);
}

TEST(Hierarchy, FetchesGoToL1I)
{
    CacheHierarchy h;
    h.access({0, 0x1000, AccessKind::InstructionFetch});
    EXPECT_EQ(h.l1i().stats().accesses(), 1u);
    EXPECT_EQ(h.l1d().stats().accesses(), 0u);
}

TEST(Hierarchy, LoadsAndStoresGoToL1D)
{
    CacheHierarchy h;
    h.access({0, 0x2000, AccessKind::Load});
    h.access({1, 0x2000, AccessKind::Store});
    EXPECT_EQ(h.l1d().stats().read_hits +
              h.l1d().stats().read_misses, 1u);
    EXPECT_EQ(h.l1d().stats().write_hits +
              h.l1d().stats().write_misses, 1u);
    EXPECT_EQ(h.l1i().stats().accesses(), 0u);
}

TEST(Hierarchy, L1MissFillsFromL2)
{
    CacheHierarchy h;
    h.access({0, 0x3000, AccessKind::Load});
    // Cold: L1D miss -> L2 read miss -> memory read.
    EXPECT_EQ(h.l2().stats().read_misses, 1u);
    EXPECT_EQ(h.memoryReads(), 1u);
    // Re-access: pure L1 hit; no new L2 traffic.
    h.access({1, 0x3000, AccessKind::Load});
    EXPECT_EQ(h.l2().stats().accesses(), 1u);
}

TEST(Hierarchy, WriteThroughStoresReachL2EveryTime)
{
    CacheHierarchy h;
    for (uint64_t i = 0; i < 5; ++i)
        h.access({i, 0x4000, AccessKind::Store});
    // 1 fill read + 5 write-throughs at L2.
    uint64_t l2_writes = h.l2().stats().write_hits +
        h.l2().stats().write_misses;
    EXPECT_EQ(l2_writes, 5u);
}

TEST(Hierarchy, L2AbsorbsWriteThroughs)
{
    CacheHierarchy h;
    for (uint64_t i = 0; i < 100; ++i)
        h.access({i, 0x4000, AccessKind::Store});
    // L2 is write-back: repeated stores to one block dirty it once;
    // memory sees at most the initial fill, no per-store writes.
    EXPECT_EQ(h.memoryWrites(), 0u);
}

TEST(Hierarchy, ListenerSeesL2Traffic)
{
    CacheHierarchy h;
    std::vector<std::tuple<uint64_t, uint32_t, bool>> events;
    h.setL2BusListener(
        [&](uint64_t cycle, uint32_t addr, bool is_write) {
            events.emplace_back(cycle, addr, is_write);
        });
    h.access({5, 0x5010, AccessKind::Load});   // fill read
    h.access({6, 0x5010, AccessKind::Store});  // write-through
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(std::get<0>(events[0]), 5u);
    EXPECT_FALSE(std::get<2>(events[0]));
    EXPECT_TRUE(std::get<2>(events[1]));
    // Write-through address is block-aligned to L1's 32B blocks.
    EXPECT_EQ(std::get<1>(events[1]), 0x5000u);
}

TEST(Hierarchy, L1HitsGenerateNoL2Traffic)
{
    CacheHierarchy h;
    uint64_t count = 0;
    h.setL2BusListener(
        [&](uint64_t, uint32_t, bool) { ++count; });
    h.access({0, 0x6000, AccessKind::Load});
    uint64_t after_fill = count;
    for (uint64_t i = 1; i < 50; ++i)
        h.access({i, static_cast<uint32_t>(0x6000 + (i % 8) * 4),
                  AccessKind::Load});
    EXPECT_EQ(count, after_fill);
}

TEST(Hierarchy, SyntheticWorkloadLocality)
{
    // A real-ish workload should hit well in L1I (loops) and see an
    // L2 that filters most L1D misses.
    CacheHierarchy h;
    SyntheticCpu cpu(benchmarkProfile("eon"), 29, 200000);
    TraceRecord r;
    while (cpu.next(r))
        h.access(r);
    EXPECT_LT(h.l1i().stats().missRate(), 0.35);
    EXPECT_GT(h.l1i().stats().accesses(), 100000u);
    EXPECT_GT(h.l1d().stats().accesses(), 10000u);
    // L2 sees far fewer reads than the L1s' combined accesses.
    EXPECT_LT(h.l2().stats().accesses(),
              h.l1i().stats().accesses() +
              h.l1d().stats().accesses());
}

TEST(Hierarchy, DirtyL2EvictionsReachMemory)
{
    CacheHierarchy h;
    // Stream stores across a footprint much larger than L2 (256 KB):
    // write-throughs dirty L2 blocks which later evict to memory.
    for (uint64_t i = 0; i < 40000; ++i) {
        uint32_t addr = static_cast<uint32_t>(0x20000000 + i * 64);
        h.access({i, addr, AccessKind::Store});
    }
    EXPECT_GT(h.memoryWrites(), 10000u);
}

} // anonymous namespace
} // namespace nanobus
