/**
 * @file
 * Parameterized property tests of the cache model across a grid of
 * configurations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

using Param = std::tuple<uint32_t /*size*/, unsigned /*assoc*/,
                         uint32_t /*block*/>;

class CacheProperty : public ::testing::TestWithParam<Param>
{
  protected:
    CacheConfig
    config(WritePolicy wp = WritePolicy::WriteThrough) const
    {
        CacheConfig c;
        c.name = "sweep";
        c.size = std::get<0>(GetParam());
        c.assoc = std::get<1>(GetParam());
        c.block_size = std::get<2>(GetParam());
        c.write_policy = wp;
        return c;
    }
};

TEST_P(CacheProperty, RepeatedAccessAlwaysHits)
{
    Cache cache(config());
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        uint32_t addr = static_cast<uint32_t>(rng.next()) & ~3u;
        cache.access(addr, false);
        EXPECT_TRUE(cache.access(addr, false).hit) << addr;
    }
}

TEST_P(CacheProperty, WorkingSetWithinCapacityHitsAfterWarmup)
{
    CacheConfig c = config();
    Cache cache(c);
    // Touch exactly the cache's capacity in whole blocks, twice.
    uint32_t blocks = c.size / c.block_size;
    for (int pass = 0; pass < 2; ++pass)
        for (uint32_t b = 0; b < blocks; ++b)
            cache.access(b * c.block_size, false);
    EXPECT_EQ(cache.stats().read_misses, blocks);
    EXPECT_EQ(cache.stats().read_hits, blocks);
}

TEST_P(CacheProperty, StatsAccountEveryAccess)
{
    Cache cache(config(WritePolicy::WriteBack));
    Rng rng(7);
    const uint64_t n = 5000;
    for (uint64_t i = 0; i < n; ++i) {
        uint32_t addr =
            static_cast<uint32_t>(rng.below(1 << 18)) & ~3u;
        cache.access(addr, rng.chance(0.3));
    }
    EXPECT_EQ(cache.stats().accesses(), n);
    // Writebacks can never exceed evictions, which can never exceed
    // fills (= misses that allocate).
    EXPECT_LE(cache.stats().writebacks, cache.stats().evictions);
    EXPECT_LE(cache.stats().evictions, cache.stats().misses());
}

TEST_P(CacheProperty, WriteThroughNeverWritesBack)
{
    Cache cache(config(WritePolicy::WriteThrough));
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        uint32_t addr =
            static_cast<uint32_t>(rng.below(1 << 16)) & ~3u;
        cache.access(addr, rng.chance(0.5));
    }
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST_P(CacheProperty, FlushEmptiesEverything)
{
    CacheConfig c = config();
    Cache cache(c);
    for (uint32_t b = 0; b < c.size / c.block_size; ++b)
        cache.access(b * c.block_size, false);
    cache.flush();
    for (uint32_t b = 0; b < c.size / c.block_size; ++b)
        EXPECT_FALSE(cache.contains(b * c.block_size));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheProperty,
    ::testing::Values(
        Param{1024, 1, 16},     // direct-mapped
        Param{1024, 4, 16},
        Param{4096, 2, 32},
        Param{4096, 64, 64},    // fully associative
        Param{16 * 1024, 4, 32},   // the paper's L1
        Param{256 * 1024, 4, 64}), // the paper's L2
    [](const ::testing::TestParamInfo<Param> &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_a" +
            std::to_string(std::get<1>(info.param)) + "_b" +
            std::to_string(std::get<2>(info.param));
    });

TEST(CacheScaling, BiggerCachesMissLess)
{
    // Fixed workload, growing capacity: miss rate must be
    // non-increasing (same assoc/block).
    std::vector<TraceRecord> trace;
    SyntheticCpu cpu(benchmarkProfile("twolf"), 61, 30000);
    TraceRecord r;
    while (cpu.next(r)) {
        if (r.kind != AccessKind::InstructionFetch)
            trace.push_back(r);
    }
    double prev_rate = 1.1;
    for (uint32_t size : {2048u, 8192u, 32768u, 131072u}) {
        Cache cache({"sz", size, 4, 32});
        for (const auto &rec : trace)
            cache.access(rec.address,
                         rec.kind == AccessKind::Store);
        EXPECT_LE(cache.stats().missRate(), prev_rate + 1e-12)
            << size;
        prev_rate = cache.stats().missRate();
    }
}

TEST(CacheScaling, HigherAssociativityHelpsThrashingSet)
{
    // Round-robin over (assoc + 1) conflicting blocks defeats LRU at
    // low associativity; doubling the ways fixes it.
    auto miss_rate = [](unsigned assoc) {
        Cache cache({"assoc", 4096, assoc, 32});
        const uint32_t stride = 4096 / assoc * assoc; // same set
        for (int pass = 0; pass < 50; ++pass)
            for (uint32_t i = 0; i < 8; ++i)
                cache.access(i * 4096, false);
        (void)stride;
        return cache.stats().missRate();
    };
    EXPECT_GT(miss_rate(4), miss_rate(16));
}

} // anonymous namespace
} // namespace nanobus
