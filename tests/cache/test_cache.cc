/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

CacheConfig
smallCache(WritePolicy wp = WritePolicy::WriteThrough,
           AllocPolicy ap = AllocPolicy::WriteAllocate)
{
    // 4 sets x 2 ways x 16-byte blocks = 128 bytes.
    return {"test", 128, 2, 16, wp, ap};
}

TEST(CacheConfigTest, SetCount)
{
    EXPECT_EQ(smallCache().sets(), 4u);
    CacheConfig paper_l1{"L1", 16 * 1024, 4, 32};
    EXPECT_EQ(paper_l1.sets(), 128u);
}

TEST(CacheConfigTest, RejectsNonPowerOfTwo)
{
    setAbortOnError(false);
    CacheConfig bad = smallCache();
    bad.size = 100;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = smallCache();
    bad.assoc = 3;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = smallCache();
    bad.block_size = 2; // below word size
    EXPECT_THROW(bad.validate(), FatalError);
    setAbortOnError(true);
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache cache(smallCache());
    auto r1 = cache.access(0x100, false);
    EXPECT_FALSE(r1.hit);
    EXPECT_TRUE(r1.fill_from_below);
    auto r2 = cache.access(0x100, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_FALSE(r2.fill_from_below);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().read_hits, 1u);
}

TEST(CacheTest, SameBlockSharesLine)
{
    Cache cache(smallCache());
    cache.access(0x100, false);
    EXPECT_TRUE(cache.access(0x10c, false).hit); // same 16B block
    EXPECT_FALSE(cache.access(0x110, false).hit); // next block
}

TEST(CacheTest, LruEvictsOldest)
{
    Cache cache(smallCache());
    // Set index = (addr >> 4) & 3. Use set 0: addresses with bits
    // 4-5 zero: 0x000, 0x040, 0x080 all map to set 0.
    cache.access(0x000, false);
    cache.access(0x040, false);
    // Touch 0x000 so 0x040 becomes LRU.
    cache.access(0x000, false);
    // Fill a third block into the 2-way set: evicts 0x040.
    cache.access(0x080, false);
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_FALSE(cache.contains(0x040));
    EXPECT_TRUE(cache.contains(0x080));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, WriteThroughAlwaysWritesBelow)
{
    Cache cache(smallCache(WritePolicy::WriteThrough));
    auto miss = cache.access(0x200, true);
    EXPECT_TRUE(miss.write_below);
    EXPECT_TRUE(miss.fill_from_below); // write-allocate
    auto hit = cache.access(0x200, true);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.write_below);
    EXPECT_EQ(hit.write_below_addr, 0x200u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CacheTest, WriteBackDefersUntilEviction)
{
    Cache cache(smallCache(WritePolicy::WriteBack));
    auto w = cache.access(0x000, true);
    EXPECT_FALSE(w.write_below); // dirtied, not written through
    // Clean fills into the same set; then a third block evicts the
    // dirty one.
    cache.access(0x040, false);
    cache.access(0x000, true); // keep 0x000 MRU and dirty
    auto evict = cache.access(0x080, false);
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_FALSE(cache.contains(0x040));
    (void)evict; // 0x040 was clean: no writeback
    EXPECT_EQ(cache.stats().writebacks, 0u);

    // Now evict the dirty 0x000: needs two new blocks to displace
    // both residents; one of the evictions must write back.
    cache.access(0x0c0, false);
    auto evict2 = cache.access(0x100, false);
    EXPECT_EQ(cache.stats().writebacks, 1u);
    (void)evict2;
}

TEST(CacheTest, WriteBackEvictionReportsBlockAddress)
{
    Cache cache(smallCache(WritePolicy::WriteBack));
    cache.access(0x004, true); // dirty block 0x000
    cache.access(0x040, false);
    cache.access(0x004, true); // re-dirty, stays MRU
    cache.access(0x080, false); // evicts clean 0x040
    auto r = cache.access(0x0c0, false); // evicts dirty 0x000
    EXPECT_TRUE(r.write_below);
    EXPECT_EQ(r.write_below_addr, 0x000u);
}

TEST(CacheTest, NoWriteAllocateBypasses)
{
    Cache cache(smallCache(WritePolicy::WriteThrough,
                           AllocPolicy::NoWriteAllocate));
    auto r = cache.access(0x300, true);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.write_below);
    EXPECT_FALSE(r.fill_from_below);
    EXPECT_FALSE(cache.contains(0x300));
}

TEST(CacheTest, FlushDropsContents)
{
    Cache cache(smallCache());
    cache.access(0x100, false);
    ASSERT_TRUE(cache.contains(0x100));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x100));
    // Stats survive a flush.
    EXPECT_EQ(cache.stats().read_misses, 1u);
}

TEST(CacheTest, MissRate)
{
    Cache cache(smallCache());
    cache.access(0x100, false); // miss
    cache.access(0x100, false); // hit
    cache.access(0x100, false); // hit
    cache.access(0x200, false); // miss
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
    EXPECT_EQ(cache.stats().accesses(), 4u);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes)
{
    Cache cache(smallCache());
    // 16 distinct blocks > 8 lines: second pass still misses in a
    // sequential sweep (LRU worst case).
    for (int pass = 0; pass < 2; ++pass)
        for (uint32_t addr = 0; addr < 256; addr += 16)
            cache.access(addr, false);
    EXPECT_EQ(cache.stats().read_misses, 32u);
}

TEST(CacheTest, WorkingSetWithinCacheHitsAfterWarmup)
{
    Cache cache(smallCache());
    for (int pass = 0; pass < 3; ++pass)
        for (uint32_t addr = 0; addr < 128; addr += 16)
            cache.access(addr, false);
    EXPECT_EQ(cache.stats().read_misses, 8u);
    EXPECT_EQ(cache.stats().read_hits, 16u);
}

} // anonymous namespace
} // namespace nanobus
