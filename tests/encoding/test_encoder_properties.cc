/**
 * @file
 * Parameterized property tests over all encoding schemes: every
 * encoder must round-trip arbitrary data streams, respect its
 * declared widths, and be deterministic after reset.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "encoding/encoder.hh"
#include "util/bitops.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

using Param = std::tuple<EncodingScheme, unsigned>;

class EncoderProperty : public ::testing::TestWithParam<Param>
{
  protected:
    EncodingScheme scheme() const { return std::get<0>(GetParam()); }
    unsigned width() const { return std::get<1>(GetParam()); }
};

TEST_P(EncoderProperty, RoundTripsRandomStream)
{
    auto tx = makeEncoder(scheme(), width());
    auto rx = makeEncoder(scheme(), width());
    tx->reset(0);
    rx->reset(0);
    Rng rng(0xabcd ^ width());
    const uint64_t mask = lowMask(width());
    for (int i = 0; i < 2000; ++i) {
        uint64_t data = rng.next() & mask;
        uint64_t word = tx->encode(data);
        EXPECT_EQ(rx->decode(word), data) << "i " << i;
    }
}

TEST_P(EncoderProperty, RoundTripsSequentialStream)
{
    // Address-like traffic: mostly +4 strides (the regime the paper's
    // conclusions hinge on).
    auto tx = makeEncoder(scheme(), width());
    auto rx = makeEncoder(scheme(), width());
    tx->reset(0);
    rx->reset(0);
    Rng rng(0x1357);
    const uint64_t mask = lowMask(width());
    uint64_t addr = 0x40 & mask;
    for (int i = 0; i < 2000; ++i) {
        addr = rng.chance(0.85) ? (addr + 4) & mask
                                : rng.next() & mask;
        uint64_t word = tx->encode(addr);
        EXPECT_EQ(rx->decode(word), addr) << "i " << i;
    }
}

TEST_P(EncoderProperty, BusWordFitsBusWidth)
{
    auto enc = makeEncoder(scheme(), width());
    enc->reset(0);
    Rng rng(0x2468);
    const uint64_t bus_mask = lowMask(enc->busWidth());
    for (int i = 0; i < 500; ++i) {
        uint64_t word = enc->encode(rng.next() & lowMask(width()));
        EXPECT_EQ(word & ~bus_mask, 0ull);
    }
}

TEST_P(EncoderProperty, DeterministicAfterReset)
{
    auto a = makeEncoder(scheme(), width());
    auto b = makeEncoder(scheme(), width());
    a->reset(0);
    Rng rng(0x99);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 200; ++i)
        stream.push_back(rng.next() & lowMask(width()));
    std::vector<uint64_t> first;
    for (uint64_t data : stream)
        first.push_back(a->encode(data));
    b->reset(0);
    for (size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(b->encode(stream[i]), first[i]) << "i " << i;
}

TEST_P(EncoderProperty, ControlLinesWithinDeclaredBudget)
{
    auto enc = makeEncoder(scheme(), width());
    EXPECT_GE(enc->busWidth(), enc->dataWidth());
    EXPECT_LE(enc->busWidth(), enc->dataWidth() + 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EncoderProperty,
    ::testing::Combine(
        ::testing::Values(EncodingScheme::Unencoded,
                          EncodingScheme::BusInvert,
                          EncodingScheme::OddEvenBusInvert,
                          EncodingScheme::CouplingDrivenBusInvert,
                          EncodingScheme::Gray, EncodingScheme::T0,
                          EncodingScheme::Offset),
        ::testing::Values(4u, 8u, 16u, 32u)),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = schemeName(std::get<0>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_w" + std::to_string(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace nanobus
