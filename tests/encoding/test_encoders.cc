/**
 * @file
 * Unit tests for the bus encoding schemes of Sec 5.2.
 */

#include <gtest/gtest.h>

#include "encoding/schemes.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace {

TEST(AdjacentCouplingCost, KnownPatterns)
{
    // Two adjacent lines toggling oppositely cost 4.
    EXPECT_EQ(adjacentCouplingCost(0b01, 0b10, 2), 4u);
    // One line switching next to a steady one costs 1.
    EXPECT_EQ(adjacentCouplingCost(0b00, 0b01, 2), 1u);
    // Both rising together costs 0.
    EXPECT_EQ(adjacentCouplingCost(0b00, 0b11, 2), 0u);
    // No transition costs 0.
    EXPECT_EQ(adjacentCouplingCost(0b10, 0b10, 2), 0u);
}

TEST(AdjacentCouplingCost, SumsOverPairs)
{
    // 0000 -> 0101: lines 0 and 2 rise. Pairs: (0,1) charge = 1,
    // (1,2) charge = 1, (2,3) charge = 1.
    EXPECT_EQ(adjacentCouplingCost(0b0000, 0b0101, 4), 3u);
    // 0101 -> 1010: all four lines move, alternating: 3 toggles.
    EXPECT_EQ(adjacentCouplingCost(0b0101, 0b1010, 4), 12u);
}

TEST(Unencoded, PassThrough)
{
    UnencodedBus enc(8);
    EXPECT_EQ(enc.busWidth(), 8u);
    EXPECT_EQ(enc.encode(0xab), 0xabu);
    EXPECT_EQ(enc.decode(0xab), 0xabu);
}

TEST(Unencoded, MasksToWidth)
{
    UnencodedBus enc(4);
    EXPECT_EQ(enc.encode(0xff), 0x0fu);
}

TEST(BusInvertCoding, InvertsWhenMajorityFlips)
{
    BusInvert enc(8);
    enc.reset(0x00);
    // 7 of 8 bits would flip: invert.
    uint64_t word = enc.encode(0x7f);
    EXPECT_TRUE(bitOf(word, 8));
    EXPECT_EQ(word & 0xff, 0x80u);
    EXPECT_EQ(enc.decode(word), 0x7fu);
}

TEST(BusInvertCoding, PassesWhenMinorityFlips)
{
    BusInvert enc(8);
    enc.reset(0x00);
    uint64_t word = enc.encode(0x03);
    EXPECT_FALSE(bitOf(word, 8));
    EXPECT_EQ(word & 0xff, 0x03u);
    EXPECT_EQ(enc.decode(word), 0x03u);
}

TEST(BusInvertCoding, TieKeepsInvertLineSteady)
{
    BusInvert enc(8);
    enc.reset(0x00);
    // Exactly 4 of 8 flip: no inversion (invert line was low).
    uint64_t word = enc.encode(0x0f);
    EXPECT_FALSE(bitOf(word, 8));

    // Get into an inverted state, then present a tie: stays inverted.
    enc.reset(0x00);
    uint64_t inverted = enc.encode(0xff); // 8 flips: invert
    ASSERT_TRUE(bitOf(inverted, 8));
    ASSERT_EQ(inverted & 0xff, 0x00u);
    // Payload on bus is 0x00; data 0x0f would flip 4 payload bits
    // either way: keep invert high.
    uint64_t tie = enc.encode(0x0f);
    EXPECT_TRUE(bitOf(tie, 8));
    EXPECT_EQ(enc.decode(tie), 0x0fu);
}

TEST(BusInvertCoding, BoundsSelfTransitionsToHalfWidth)
{
    BusInvert enc(16);
    enc.reset(0);
    uint64_t prev = 0;
    for (uint64_t data : {0xffffull, 0x0000ull, 0xaaaaull, 0x5555ull,
                          0xf0f0ull, 0x1234ull, 0xedcbull}) {
        uint64_t word = enc.encode(data);
        // Hamming distance on the full 17-line bus is at most
        // width/2 + 1 (payload bound plus the invert line itself).
        EXPECT_LE(hammingDistance(prev, word, 17), 9u);
        EXPECT_EQ(enc.decode(word), data);
        prev = word;
    }
}

TEST(OddEvenBI, BusWidthAddsTwoLines)
{
    OddEvenBusInvert enc(8);
    EXPECT_EQ(enc.busWidth(), 10u);
}

TEST(OddEvenBI, DecodesAllFourModes)
{
    OddEvenBusInvert enc(8);
    // Construct bus words for each mode by hand and decode.
    // Layout: [even_inv][payload<<1][odd_inv].
    uint64_t data = 0x5a;
    for (unsigned mode = 0; mode < 4; ++mode) {
        bool inv_even = mode & 1;
        bool inv_odd = mode & 2;
        uint64_t payload = data;
        if (inv_even)
            payload ^= evenMask(8);
        if (inv_odd)
            payload ^= oddMask(8);
        uint64_t word = (static_cast<uint64_t>(inv_even) << 9) |
            (payload << 1) | static_cast<uint64_t>(inv_odd);
        EXPECT_EQ(enc.decode(word), data) << "mode " << mode;
    }
}

TEST(OddEvenBI, ChoosesZeroCostModeForRepeat)
{
    OddEvenBusInvert enc(8);
    enc.reset(0);
    uint64_t first = enc.encode(0x33);
    uint64_t second = enc.encode(0x33);
    // Re-sending the same data: the no-invert mode repeats the bus
    // word exactly (cost 0), so nothing may change.
    EXPECT_EQ(first, second);
}

TEST(OddEvenBI, NeverWorseThanPlainTransmission)
{
    OddEvenBusInvert enc(8);
    enc.reset(0);
    Rng rng(5);
    uint64_t prev_bus = 0;
    for (int i = 0; i < 500; ++i) {
        uint64_t data = rng.next() & 0xff;
        // Cost of transmitting unencoded in the same layout.
        uint64_t plain = (data << 1);
        unsigned plain_cost =
            adjacentCouplingCost(prev_bus, plain, enc.busWidth());
        uint64_t word = enc.encode(data);
        unsigned coded_cost =
            adjacentCouplingCost(prev_bus, word, enc.busWidth());
        EXPECT_LE(coded_cost, plain_cost);
        EXPECT_EQ(enc.decode(word), data);
        prev_bus = word;
    }
}

TEST(CouplingBI, InvertsOnlyOnStrictWin)
{
    CouplingDrivenBusInvert enc(8);
    enc.reset(0);
    // From an all-zero bus, any data's inverted form adds an invert
    // line transition; a low-activity word stays plain.
    uint64_t word = enc.encode(0x01);
    EXPECT_FALSE(bitOf(word, 8));
    EXPECT_EQ(enc.decode(word), 0x01u);
}

TEST(CouplingBI, DecodesInvertedWords)
{
    CouplingDrivenBusInvert enc(8);
    uint64_t word = (1ull << 8) | 0x0f; // inverted payload
    EXPECT_EQ(enc.decode(word), 0xf0u);
}

TEST(CouplingBI, CouplingCostNeverWorseThanPlain)
{
    CouplingDrivenBusInvert enc(8);
    enc.reset(0);
    Rng rng(9);
    uint64_t prev_bus = 0;
    for (int i = 0; i < 500; ++i) {
        uint64_t data = rng.next() & 0xff;
        unsigned plain_cost =
            adjacentCouplingCost(prev_bus, data, enc.busWidth());
        uint64_t word = enc.encode(data);
        unsigned coded_cost =
            adjacentCouplingCost(prev_bus, word, enc.busWidth());
        EXPECT_LE(coded_cost, plain_cost);
        EXPECT_EQ(enc.decode(word), data);
        prev_bus = word;
    }
}

TEST(SegmentedBI, OneSegmentEqualsClassicBusInvert)
{
    SegmentedBusInvert seg(16, 1);
    BusInvert classic(16);
    seg.reset(0);
    classic.reset(0);
    Rng rng(0x5e6);
    for (int i = 0; i < 1000; ++i) {
        uint64_t data = rng.next() & 0xffff;
        EXPECT_EQ(seg.encode(data), classic.encode(data)) << i;
    }
}

TEST(SegmentedBI, SegmentRangesPartitionTheBus)
{
    SegmentedBusInvert enc(32, 5);
    unsigned covered = 0;
    unsigned prev_hi = 0;
    for (unsigned s = 0; s < 5; ++s) {
        auto [lo, hi] = enc.segmentRange(s);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_GT(hi, lo);
        covered += hi - lo;
        prev_hi = hi;
    }
    EXPECT_EQ(covered, 32u);
    EXPECT_EQ(enc.busWidth(), 37u);
}

TEST(SegmentedBI, RoundTripsRandomStream)
{
    for (unsigned segments : {1u, 2u, 4u, 8u}) {
        SegmentedBusInvert tx(32, segments);
        SegmentedBusInvert rx(32, segments);
        tx.reset(0);
        rx.reset(0);
        Rng rng(segments);
        for (int i = 0; i < 500; ++i) {
            uint64_t data = rng.next() & 0xffffffff;
            EXPECT_EQ(rx.decode(tx.encode(data)), data)
                << segments << "/" << i;
        }
    }
}

TEST(SegmentedBI, CatchesLocalizedBurstsWholeBusMisses)
{
    // Flip the entire low byte of a 32-bit word: 8 of 32 bits is a
    // minority for whole-bus BI (no inversion, 8 transitions) but a
    // full flip for the 4-segment encoder's low segment (inversion,
    // 1 invert-line transition instead).
    BusInvert whole(32);
    SegmentedBusInvert seg(32, 4);
    whole.reset(0);
    seg.reset(0);
    whole.encode(0x12340000);
    seg.encode(0x12340000);

    uint64_t w1 = whole.encode(0x123400ff);
    uint64_t w2 = seg.encode(0x123400ff);
    EXPECT_EQ(popcount((w1 ^ 0x12340000ull) & lowMask(33)), 8u);
    // Segmented: low-byte payload stays 0x00, invert line 0 rises.
    EXPECT_EQ(popcount((w2 ^ 0x12340000ull) & lowMask(36)), 1u);
    EXPECT_EQ(seg.decode(w2), 0x123400ffu);
}

TEST(SegmentedBI, InvalidConfigIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(SegmentedBusInvert(8, 0), FatalError);
    EXPECT_THROW(SegmentedBusInvert(8, 9), FatalError);
    EXPECT_THROW(SegmentedBusInvert(60, 8), FatalError);
    setAbortOnError(true);
}

TEST(Gray, SequentialAddressesToggleOneLine)
{
    GrayEncoder enc(16);
    for (uint64_t a = 0; a < 1000; ++a) {
        uint64_t w1 = enc.encode(a);
        uint64_t w2 = enc.encode(a + 1);
        EXPECT_EQ(popcount(w1 ^ w2), 1u);
    }
}

TEST(Gray, RoundTrips)
{
    GrayEncoder enc(16);
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        uint64_t data = rng.next() & 0xffff;
        EXPECT_EQ(enc.decode(enc.encode(data)), data);
    }
}

TEST(T0, SequentialRunFreezesPayload)
{
    T0Encoder enc(16, 4);
    enc.reset(0x100);
    uint64_t w1 = enc.encode(0x104);
    uint64_t w2 = enc.encode(0x108);
    // INC set, payload frozen at the reset value.
    EXPECT_TRUE(bitOf(w1, 16));
    EXPECT_TRUE(bitOf(w2, 16));
    EXPECT_EQ(w1 & 0xffff, 0x100u);
    EXPECT_EQ(w2 & 0xffff, 0x100u);
    EXPECT_EQ(enc.decode(w1), 0x104u);
    EXPECT_EQ(enc.decode(w2), 0x108u);
}

TEST(T0, NonSequentialTransmitsPlain)
{
    T0Encoder enc(16, 4);
    enc.reset(0x100);
    uint64_t word = enc.encode(0x250);
    EXPECT_FALSE(bitOf(word, 16));
    EXPECT_EQ(word & 0xffff, 0x250u);
    EXPECT_EQ(enc.decode(word), 0x250u);
}

TEST(T0, MixedStreamRoundTrips)
{
    T0Encoder tx(16, 4);
    T0Encoder rx(16, 4);
    tx.reset(0);
    rx.reset(0);
    Rng rng(21);
    uint64_t addr = 0x1000;
    for (int i = 0; i < 1000; ++i) {
        addr = rng.chance(0.7) ? (addr + 4) & 0xffff
                               : rng.next() & 0xffff;
        uint64_t word = tx.encode(addr);
        EXPECT_EQ(rx.decode(word), addr) << "i " << i;
    }
}

TEST(AdjacentCouplingCost, BitParallelMatchesReference)
{
    Rng rng(0xfeed);
    for (unsigned width : {2u, 3u, 8u, 17u, 32u, 34u, 63u, 64u}) {
        for (int i = 0; i < 2000; ++i) {
            uint64_t prev = rng.next();
            uint64_t next = rng.next();
            EXPECT_EQ(adjacentCouplingCost(prev, next, width),
                      adjacentCouplingCostReference(prev, next,
                                                    width))
                << "width " << width << " prev " << prev << " next "
                << next;
        }
    }
}

TEST(AdjacentCouplingCost, DegenerateWidths)
{
    EXPECT_EQ(adjacentCouplingCost(0x1, 0x0, 1), 0u);
    EXPECT_EQ(adjacentCouplingCost(0, ~0ull, 0), 0u);
}

TEST(OffsetCoding, SequentialStreamFreezesTheBus)
{
    OffsetEncoder enc(16);
    enc.reset(0x1000);
    uint64_t w1 = enc.encode(0x1004);
    uint64_t w2 = enc.encode(0x1008);
    uint64_t w3 = enc.encode(0x100c);
    // Constant stride => constant bus word => zero transitions.
    EXPECT_EQ(w1, 4u);
    EXPECT_EQ(w2, 4u);
    EXPECT_EQ(w3, 4u);
}

TEST(OffsetCoding, RoundTripsArbitraryStream)
{
    OffsetEncoder tx(32), rx(32);
    tx.reset(0);
    rx.reset(0);
    Rng rng(0x0ff5e7);
    for (int i = 0; i < 2000; ++i) {
        uint64_t data = rng.next() & 0xffffffff;
        EXPECT_EQ(rx.decode(tx.encode(data)), data);
    }
}

TEST(OffsetCoding, WrapsModuloWidth)
{
    OffsetEncoder tx(8), rx(8);
    tx.reset(0xf0);
    rx.reset(0xf0);
    uint64_t w = tx.encode(0x10); // 0x10 - 0xf0 = 0x20 mod 256
    EXPECT_EQ(w, 0x20u);
    EXPECT_EQ(rx.decode(w), 0x10u);
}

TEST(Factory, ProducesAllSchemes)
{
    for (EncodingScheme scheme :
         {EncodingScheme::Unencoded, EncodingScheme::BusInvert,
          EncodingScheme::OddEvenBusInvert,
          EncodingScheme::CouplingDrivenBusInvert,
          EncodingScheme::Gray, EncodingScheme::T0,
          EncodingScheme::Offset}) {
        auto enc = makeEncoder(scheme, 32);
        ASSERT_NE(enc, nullptr);
        EXPECT_EQ(enc->dataWidth(), 32u);
        EXPECT_GE(enc->busWidth(), 32u);
        EXPECT_EQ(enc->name(), schemeName(scheme));
    }
}

TEST(Factory, PaperSchemesMatchFig3)
{
    const auto &schemes = paperSchemes();
    ASSERT_EQ(schemes.size(), 4u);
    EXPECT_EQ(schemes[0], EncodingScheme::BusInvert);
    EXPECT_EQ(schemes[1], EncodingScheme::OddEvenBusInvert);
    EXPECT_EQ(schemes[2], EncodingScheme::CouplingDrivenBusInvert);
    EXPECT_EQ(schemes[3], EncodingScheme::Unencoded);
}

} // anonymous namespace
} // namespace nanobus
