/**
 * @file
 * Edge-case coverage for BusEncoder::encodeBatch on the schemes that
 * override it with devirtualized state-hoisted loops (BusInvert,
 * OddEvenBusInvert, CouplingDrivenBusInvert): empty batches, the
 * width-1 degenerate bus, and all-repeated-word batches. Every case
 * asserts not only the emitted bus words but that the encoder's
 * latched state afterwards equals the per-word path's state — the
 * hoist-restore bookkeeping is exactly what these corners stress.
 */

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "encoding/encoder.hh"

namespace nanobus {
namespace {

const std::vector<EncodingScheme> &
invertFamily()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
    };
    return schemes;
}

/**
 * Drive `batched` with one encodeBatch over `words` and `ref` with
 * the per-word loop, expecting identical outputs; then prove the
 * *states* converged by encoding a probe sequence through both —
 * any divergence in the latched bus word or per-scheme flags shows
 * up in the probe.
 */
void
expectBatchMatchesPerWord(BusEncoder &batched, BusEncoder &ref,
                          const std::vector<uint64_t> &words)
{
    std::vector<uint64_t> expect(words.size());
    for (size_t i = 0; i < words.size(); ++i)
        expect[i] = ref.encode(words[i]);

    std::vector<uint64_t> got(words.size());
    batched.encodeBatch(std::span<const uint64_t>(words),
                        std::span<uint64_t>(got));
    EXPECT_EQ(got, expect);

    const uint64_t probes[] = {0x0, 0x1, ~0ull, 0x5a5a5a5a, 0x1};
    for (uint64_t probe : probes)
        EXPECT_EQ(batched.encode(probe), ref.encode(probe))
            << "state diverged (probe 0x" << std::hex << probe << ")";
}

TEST(EncodeBatchEdges, EmptyBatchLeavesStateUntouched)
{
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 32);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 32);
        // Advance both to a non-initial state first, so "untouched"
        // is not vacuously the reset state.
        batched->encode(0xcafef00d);
        ref->encode(0xcafef00d);
        expectBatchMatchesPerWord(*batched, *ref, {});
    }
}

TEST(EncodeBatchEdges, WidthOneBus)
{
    // The degenerate 1-bit payload: invert decisions reduce to
    // single-transition counts and the control lines dominate the
    // bus word. Alternating, constant, and repeated-tail streams.
    const std::vector<std::vector<uint64_t>> streams = {
        {0, 1, 0, 1, 0, 1, 0, 1},
        {1, 1, 1, 1, 1},
        {0, 0, 1, 1, 1, 0},
    };
    for (EncodingScheme scheme : invertFamily()) {
        for (size_t s = 0; s < streams.size(); ++s) {
            SCOPED_TRACE(testing::Message()
                         << schemeName(scheme) << " stream " << s);
            std::unique_ptr<BusEncoder> batched =
                makeEncoder(scheme, 1);
            std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 1);
            ASSERT_EQ(batched->dataWidth(), 1u);
            ASSERT_GE(batched->busWidth(), 2u); // payload + control
            expectBatchMatchesPerWord(*batched, *ref, streams[s]);
        }
    }
}

TEST(EncodeBatchEdges, AllRepeatedWordsBatch)
{
    // A batch of identical words: zero transitions after the first,
    // so the invert heuristics must keep emitting the same bus word
    // and must NOT flip state mid-run. The first word is chosen with
    // high weight so BI-style "invert when > w/2 transitions" fires
    // on entry, making a latched-state bug visible immediately.
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 16);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 16);
        const std::vector<uint64_t> words(64, 0xffffu);
        expectBatchMatchesPerWord(*batched, *ref, words);

        // All bus words after the first must be identical (the line
        // holds its value).
        std::vector<uint64_t> bus(words.size());
        std::unique_ptr<BusEncoder> fresh = makeEncoder(scheme, 16);
        fresh->encodeBatch(std::span<const uint64_t>(words),
                           std::span<uint64_t>(bus));
        for (size_t i = 2; i < bus.size(); ++i)
            EXPECT_EQ(bus[i], bus[1]) << "index " << i;
    }
}

TEST(EncodeBatchEdges, RepeatedWordsAfterStatefulPrefix)
{
    // Split point inside a repeated run: encode a noisy prefix
    // per-word, then the repeated tail as one batch, and require the
    // state to match the pure per-word path. Catches overrides that
    // re-derive state from the batch instead of the latch.
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 8);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 8);
        const uint64_t prefix[] = {0xff, 0x00, 0xaa, 0x55};
        for (uint64_t w : prefix) {
            batched->encode(w);
            ref->encode(w);
        }
        expectBatchMatchesPerWord(*batched, *ref,
                                  std::vector<uint64_t>(32, 0xaa));
    }
}

} // namespace
} // namespace nanobus
