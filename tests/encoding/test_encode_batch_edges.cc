/**
 * @file
 * Edge-case coverage for BusEncoder::encodeBatch on the schemes that
 * override it: the devirtualized state-hoisted loops (BusInvert,
 * OddEvenBusInvert, CouplingDrivenBusInvert) and the element-wise
 * SIMD fast paths (Unencoded, Gray, Offset — util/simd.hh). Empty
 * batches, the width-1 degenerate bus, all-repeated-word batches,
 * and inputs with garbage above the data width. Every case asserts
 * not only the emitted bus words but that the encoder's latched
 * state afterwards equals the per-word path's state — the
 * hoist-restore bookkeeping is exactly what these corners stress.
 *
 * The kernel-state pins at the bottom drive whole BusSimulators
 * (Scalar vs Packed energy kernel) through interval-straddling
 * batches and require byte-identical encoder captureState(): the
 * energy kernel choice must never reach the encode stage.
 */

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "encoding/encoder.hh"
#include "fabric/bus_sim.hh"

namespace nanobus {
namespace {

const std::vector<EncodingScheme> &
invertFamily()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
    };
    return schemes;
}

/**
 * Drive `batched` with one encodeBatch over `words` and `ref` with
 * the per-word loop, expecting identical outputs; then prove the
 * *states* converged by encoding a probe sequence through both —
 * any divergence in the latched bus word or per-scheme flags shows
 * up in the probe.
 */
void
expectBatchMatchesPerWord(BusEncoder &batched, BusEncoder &ref,
                          const std::vector<uint64_t> &words)
{
    std::vector<uint64_t> expect(words.size());
    for (size_t i = 0; i < words.size(); ++i)
        expect[i] = ref.encode(words[i]);

    std::vector<uint64_t> got(words.size());
    batched.encodeBatch(std::span<const uint64_t>(words),
                        std::span<uint64_t>(got));
    EXPECT_EQ(got, expect);

    const uint64_t probes[] = {0x0, 0x1, ~0ull, 0x5a5a5a5a, 0x1};
    for (uint64_t probe : probes)
        EXPECT_EQ(batched.encode(probe), ref.encode(probe))
            << "state diverged (probe 0x" << std::hex << probe << ")";
}

TEST(EncodeBatchEdges, EmptyBatchLeavesStateUntouched)
{
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 32);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 32);
        // Advance both to a non-initial state first, so "untouched"
        // is not vacuously the reset state.
        batched->encode(0xcafef00d);
        ref->encode(0xcafef00d);
        expectBatchMatchesPerWord(*batched, *ref, {});
    }
}

TEST(EncodeBatchEdges, WidthOneBus)
{
    // The degenerate 1-bit payload: invert decisions reduce to
    // single-transition counts and the control lines dominate the
    // bus word. Alternating, constant, and repeated-tail streams.
    const std::vector<std::vector<uint64_t>> streams = {
        {0, 1, 0, 1, 0, 1, 0, 1},
        {1, 1, 1, 1, 1},
        {0, 0, 1, 1, 1, 0},
    };
    for (EncodingScheme scheme : invertFamily()) {
        for (size_t s = 0; s < streams.size(); ++s) {
            SCOPED_TRACE(testing::Message()
                         << schemeName(scheme) << " stream " << s);
            std::unique_ptr<BusEncoder> batched =
                makeEncoder(scheme, 1);
            std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 1);
            ASSERT_EQ(batched->dataWidth(), 1u);
            ASSERT_GE(batched->busWidth(), 2u); // payload + control
            expectBatchMatchesPerWord(*batched, *ref, streams[s]);
        }
    }
}

TEST(EncodeBatchEdges, AllRepeatedWordsBatch)
{
    // A batch of identical words: zero transitions after the first,
    // so the invert heuristics must keep emitting the same bus word
    // and must NOT flip state mid-run. The first word is chosen with
    // high weight so BI-style "invert when > w/2 transitions" fires
    // on entry, making a latched-state bug visible immediately.
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 16);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 16);
        const std::vector<uint64_t> words(64, 0xffffu);
        expectBatchMatchesPerWord(*batched, *ref, words);

        // All bus words after the first must be identical (the line
        // holds its value).
        std::vector<uint64_t> bus(words.size());
        std::unique_ptr<BusEncoder> fresh = makeEncoder(scheme, 16);
        fresh->encodeBatch(std::span<const uint64_t>(words),
                           std::span<uint64_t>(bus));
        for (size_t i = 2; i < bus.size(); ++i)
            EXPECT_EQ(bus[i], bus[1]) << "index " << i;
    }
}

TEST(EncodeBatchEdges, RepeatedWordsAfterStatefulPrefix)
{
    // Split point inside a repeated run: encode a noisy prefix
    // per-word, then the repeated tail as one batch, and require the
    // state to match the pure per-word path. Catches overrides that
    // re-derive state from the batch instead of the latch.
    for (EncodingScheme scheme : invertFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 8);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 8);
        const uint64_t prefix[] = {0xff, 0x00, 0xaa, 0x55};
        for (uint64_t w : prefix) {
            batched->encode(w);
            ref->encode(w);
        }
        expectBatchMatchesPerWord(*batched, *ref,
                                  std::vector<uint64_t>(32, 0xaa));
    }
}

// ------------------------------------------------------------------ //
// The element-wise SIMD fast paths (Unencoded, Gray, Offset).

const std::vector<EncodingScheme> &
simdFamily()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::Gray,
        EncodingScheme::Offset,
    };
    return schemes;
}

TEST(EncodeBatchSimd, EmptyBatchLeavesStateUntouched)
{
    for (EncodingScheme scheme : simdFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 32);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 32);
        batched->encode(0xcafef00d);
        ref->encode(0xcafef00d);
        expectBatchMatchesPerWord(*batched, *ref, {});
    }
}

TEST(EncodeBatchSimd, WidthOneBus)
{
    const std::vector<std::vector<uint64_t>> streams = {
        {0, 1, 0, 1, 0, 1, 0, 1},
        {1, 1, 1, 1, 1},
        {0, 0, 1, 1, 1, 0},
    };
    for (EncodingScheme scheme : simdFamily()) {
        for (size_t s = 0; s < streams.size(); ++s) {
            SCOPED_TRACE(testing::Message()
                         << schemeName(scheme) << " stream " << s);
            std::unique_ptr<BusEncoder> batched =
                makeEncoder(scheme, 1);
            std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 1);
            ASSERT_EQ(batched->dataWidth(), 1u);
            expectBatchMatchesPerWord(*batched, *ref, streams[s]);
        }
    }
}

TEST(EncodeBatchSimd, RepeatedWordsBatch)
{
    for (EncodingScheme scheme : simdFamily()) {
        SCOPED_TRACE(schemeName(scheme));
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 16);
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 16);
        expectBatchMatchesPerWord(
            *batched, *ref, std::vector<uint64_t>(70, 0xffffu));
    }
}

TEST(EncodeBatchSimd, GarbageAboveDataWidthIsMasked)
{
    // Inputs with every bit above the data width set: the batch
    // paths mask inside the lane ops (grayInto masks *before* its
    // shift) and must match the per-word encode() exactly. Length 70
    // covers several full vector registers plus a tail.
    for (EncodingScheme scheme : simdFamily()) {
        for (unsigned width : {1u, 7u, 31u, 32u, 33u, 62u}) {
            SCOPED_TRACE(testing::Message()
                         << schemeName(scheme) << " width "
                         << width);
            std::unique_ptr<BusEncoder> batched =
                makeEncoder(scheme, width);
            std::unique_ptr<BusEncoder> ref =
                makeEncoder(scheme, width);
            std::vector<uint64_t> words(70);
            uint64_t x = 0x9e3779b97f4a7c15ull;
            for (uint64_t &w : words) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                w = x | ~((width == 64) ? ~0ull
                                        : ((1ull << width) - 1));
            }
            expectBatchMatchesPerWord(*batched, *ref, words);
        }
    }
}

TEST(EncodeBatchSimd, OffsetStrideStreamEmitsConstantBusWord)
{
    // The offset encoder's raison d'être: an in-stride stream
    // becomes a constant difference. The batch path must reproduce
    // that (and the per-word parity above pins the state latch).
    std::unique_ptr<BusEncoder> enc =
        makeEncoder(EncodingScheme::Offset, 32);
    std::vector<uint64_t> words(50);
    for (size_t k = 0; k < words.size(); ++k)
        words[k] = 0x1000 + 4 * k;
    std::vector<uint64_t> bus(words.size());
    enc->encodeBatch(std::span<const uint64_t>(words),
                     std::span<uint64_t>(bus));
    for (size_t k = 1; k < bus.size(); ++k)
        EXPECT_EQ(bus[k], 4u) << "index " << k;
}

// ------------------------------------------------------------------ //
// Energy-kernel independence: the encode stage must be untouched by
// the Scalar/Packed kernel choice.

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
kernelConfig(EncodingScheme scheme, TransitionKernel kernel)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 16;
    config.interval_cycles = 100;
    config.thermal.stack_mode = StackMode::None;
    config.kernel = kernel;
    return config;
}

TEST(EncodeBatchKernels, IntervalStraddlingBatchesLeaveIdenticalState)
{
    // Drive a Scalar-kernel and a Packed-kernel simulator through
    // the same traffic in batches that straddle interval boundaries
    // (interval = 100 cycles, batch spans ~180) with idle gaps
    // inside the batch, then require the encoders' captured state to
    // be byte-identical. All capture-capable schemes, both invert
    // and SIMD families.
    const std::vector<EncodingScheme> schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Gray,
        EncodingScheme::Offset,
    };
    for (EncodingScheme scheme : schemes) {
        SCOPED_TRACE(schemeName(scheme));
        BusSimulator scalar_sim(
            tech130, kernelConfig(scheme, TransitionKernel::Scalar));
        BusSimulator packed_sim(
            tech130, kernelConfig(scheme, TransitionKernel::Packed));

        uint64_t x = 0x51caffe;
        uint64_t cycle = 0;
        for (int batch = 0; batch < 6; ++batch) {
            BusBatch a, b;
            for (int k = 0; k < 40; ++k) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                cycle += 1 + (x % 9); // idle gaps inside the batch
                a.add(cycle, static_cast<uint32_t>(x));
                b.add(cycle, static_cast<uint32_t>(x));
            }
            scalar_sim.transmitBatch(a);
            packed_sim.transmitBatch(b);

            std::vector<uint64_t> state_s, state_p;
            ASSERT_TRUE(
                scalar_sim.encoder().captureState(state_s));
            ASSERT_TRUE(
                packed_sim.encoder().captureState(state_p));
            EXPECT_EQ(state_p, state_s) << "batch " << batch;
        }
        EXPECT_EQ(packed_sim.currentCycle(),
                  scalar_sim.currentCycle());
        EXPECT_EQ(packed_sim.transmissions(),
                  scalar_sim.transmissions());
        EXPECT_EQ(packed_sim.samples().size(),
                  scalar_sim.samples().size());
    }
}

} // namespace
} // namespace nanobus
