/**
 * @file
 * Tests for the shield-wire reduction.
 */

#include <gtest/gtest.h>

#include "extraction/shielding.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BemExtractor::Options
fastOptions()
{
    BemExtractor::Options options;
    options.panels_per_width = 4;
    return options;
}

TEST(Shielding, ReduceGroundedOnHandMatrix)
{
    // 3 conductors; ground the middle one (index 1).
    Matrix m(3, 3);
    m(0, 0) = 10; m(0, 1) = -4; m(0, 2) = -1;
    m(1, 0) = -4; m(1, 1) = 12; m(1, 2) = -4;
    m(2, 0) = -1; m(2, 1) = -4; m(2, 2) = 10;
    CapacitanceMatrix cm = reduceGrounded(m, {0, 2});
    ASSERT_EQ(cm.size(), 2u);
    // Signal-signal coupling is the direct (across-shield) term.
    EXPECT_DOUBLE_EQ(cm.coupling(0, 1).raw(), 1.0);
    // The 4-unit coupling to the grounded conductor becomes ground
    // capacitance: row sum 10 - 1 = 9.
    EXPECT_DOUBLE_EQ(cm.ground(0).raw(), 9.0);
    EXPECT_DOUBLE_EQ(cm.total(0).raw(), 10.0);
}

TEST(Shielding, ReduceKeepsIdentityWhenNothingGrounded)
{
    Matrix m(2, 2);
    m(0, 0) = 5; m(0, 1) = -2;
    m(1, 0) = -2; m(1, 1) = 5;
    CapacitanceMatrix direct = CapacitanceMatrix::fromMaxwell(m);
    CapacitanceMatrix reduced = reduceGrounded(m, {0, 1});
    EXPECT_DOUBLE_EQ(direct.coupling(0, 1).raw(),
                     reduced.coupling(0, 1).raw());
    EXPECT_DOUBLE_EQ(direct.ground(0).raw(), reduced.ground(0).raw());
}

TEST(Shielding, ShieldsSlashSignalCoupling)
{
    CapacitanceMatrix shielded =
        shieldedSignalMatrix(tech130, 4, fastOptions());
    CapacitanceMatrix bare =
        unshieldedSignalMatrix(tech130, 4, fastOptions());
    ASSERT_EQ(shielded.size(), 4u);
    // Adjacent signal coupling drops by an order of magnitude.
    EXPECT_LT(shielded.coupling(1, 2), 0.15 * bare.coupling(1, 2));
    // The coupling reappears as ground capacitance.
    EXPECT_GT(shielded.ground(1), 2.0 * bare.ground(1));
    // Total capacitance per signal stays in the same ballpark.
    EXPECT_NEAR(shielded.total(1) / bare.total(1), 1.0, 0.5);
}

TEST(Shielding, SpreadingAlsoHelpsButLess)
{
    CapacitanceMatrix shielded =
        shieldedSignalMatrix(tech130, 4, fastOptions());
    CapacitanceMatrix spread =
        spreadSignalMatrix(tech130, 4, fastOptions());
    CapacitanceMatrix bare =
        unshieldedSignalMatrix(tech130, 4, fastOptions());
    // Equal area: both beat minimum pitch, shields beat spreading.
    EXPECT_LT(spread.coupling(1, 2), bare.coupling(1, 2));
    EXPECT_LT(shielded.coupling(1, 2), spread.coupling(1, 2));
}

TEST(Shielding, BadArgumentsAreFatal)
{
    setAbortOnError(false);
    Matrix m(2, 2);
    m(0, 0) = 1;
    m(1, 1) = 1;
    EXPECT_THROW(reduceGrounded(m, {}), FatalError);
    EXPECT_THROW(reduceGrounded(m, {5}), FatalError);
    EXPECT_THROW(reduceGrounded(Matrix(2, 3), {0}), FatalError);
    EXPECT_THROW(shieldedSignalMatrix(tech130, 0), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
