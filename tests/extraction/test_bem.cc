/**
 * @file
 * Tests for the boundary-element capacitance extractor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/analytical.hh"
#include "extraction/bem.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

BusGeometry
itrsGeometry(ItrsNode node, unsigned wires)
{
    return BusGeometry::forTechnology(itrsNode(node), wires);
}

TEST(Bem, PointPotentialVanishesOnGroundPlane)
{
    double phi = BemExtractor::pointPotential(
        0.5, 0.0, 0.0, 1.0, units::epsilon0);
    EXPECT_NEAR(phi, 0.0, 1e-12);
}

TEST(Bem, PointPotentialPositiveAboveCharge)
{
    // Above the plane, nearer the charge than its image: positive.
    double phi = BemExtractor::pointPotential(
        0.0, 1.5, 0.0, 1.0, units::epsilon0);
    EXPECT_GT(phi, 0.0);
}

TEST(Bem, SingleWireSelfCapNearAnalytical)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 1);
    BemExtractor::Options opts;
    opts.panels_per_width = 8;
    Matrix m = BemExtractor(g, opts).solveMaxwell();
    ASSERT_EQ(m.rows(), 1u);
    double c_bem = m(0, 0);
    const double c_ana = sakuraiSelfCapacitance(g).raw();
    EXPECT_GT(c_bem, 0.0);
    // The Sakurai fit itself is ~10% accurate; accept 30%.
    EXPECT_NEAR(c_bem / c_ana, 1.0, 0.30);
}

TEST(Bem, SelfCapScalesWithPermittivity)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 1);
    Matrix m1 = BemExtractor(g).solveMaxwell();
    g.epsilon_r *= 2.0;
    Matrix m2 = BemExtractor(g).solveMaxwell();
    EXPECT_NEAR(m2(0, 0) / m1(0, 0), 2.0, 1e-9);
}

TEST(Bem, MaxwellMatrixIsSymmetric)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 5);
    Matrix m = BemExtractor(g).solveMaxwell();
    // Reciprocity: C_ij == C_ji up to discretization error.
    EXPECT_LT(m.asymmetry() / m.maxAbs(), 0.02);
}

TEST(Bem, MaxwellSignStructure)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 5);
    Matrix m = BemExtractor(g).solveMaxwell();
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_GT(m(i, i), 0.0) << i;
        double row_sum = 0.0;
        for (size_t j = 0; j < 5; ++j) {
            if (i != j) {
                EXPECT_LT(m(i, j), 0.0) << i << "," << j;
            }
            row_sum += m(i, j);
        }
        // Diagonal dominance: ground capacitance is positive.
        EXPECT_GT(row_sum, 0.0) << i;
    }
}

TEST(Bem, CouplingDecreasesWithSeparation)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 5);
    CapacitanceMatrix cm = BemExtractor(g).extract();
    const double c1 = cm.coupling(2, 3).raw();
    const double c2 = cm.coupling(2, 4).raw();
    const double c2b = cm.coupling(2, 0).raw();
    EXPECT_GT(c1, c2);
    EXPECT_GT(c2, 0.0);
    // Symmetric geometry: coupling(2,4) ~ coupling(2,0).
    EXPECT_NEAR(c2 / c2b, 1.0, 0.05);
}

TEST(Bem, NonAdjacentShareMatchesFig1b)
{
    // The headline Fig 1(b) observation: 8-10% of a centre wire's
    // capacitance couples to non-adjacent neighbors at 130 nm, still
    // ~8% at 45 nm. Five wires capture CC1/CC2 exactly and bound
    // CCrest, so expect a slightly smaller share than the 32-wire
    // figure.
    for (ItrsNode id : {ItrsNode::Nm130, ItrsNode::Nm45}) {
        BusGeometry g = itrsGeometry(id, 5);
        CapacitanceMatrix cm = BemExtractor(g).extract();
        auto d = cm.distribution(2);
        EXPECT_GT(d.nonAdjacent(), 0.03) << itrsNodeName(id);
        EXPECT_LT(d.nonAdjacent(), 0.16) << itrsNodeName(id);
        EXPECT_GT(d.cc1, 0.4) << itrsNodeName(id);
    }
}

TEST(Bem, EdgeWireGroundCapExceedsCentre)
{
    // Edge wires lose a shielding neighbor, so more of their field
    // terminates on the ground plane.
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 5);
    CapacitanceMatrix cm = BemExtractor(g).extract();
    EXPECT_GT(cm.ground(0), cm.ground(2));
    EXPECT_GT(cm.ground(4), cm.ground(2));
}

TEST(Bem, RefinementConverges)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 3);
    BemExtractor::Options coarse, fine;
    coarse.panels_per_width = 4;
    fine.panels_per_width = 10;
    Matrix mc = BemExtractor(g, coarse).solveMaxwell();
    Matrix mf = BemExtractor(g, fine).solveMaxwell();
    // Total capacitance within ~6% between resolutions.
    EXPECT_NEAR(mc(1, 1) / mf(1, 1), 1.0, 0.06);
    EXPECT_NEAR(mc(1, 0) / mf(1, 0), 1.0, 0.10);
}

TEST(Bem, PanelBudgetShrinksDiscretization)
{
    BusGeometry g = itrsGeometry(ItrsNode::Nm130, 5);
    BemExtractor::Options opts;
    opts.panels_per_width = 16;
    opts.max_total_panels = 200;
    BemExtractor extractor(g, opts);
    EXPECT_LE(extractor.panelCount(), 200u);
}

TEST(Bem, CalibratedMatrixAnchorsToTable1)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusGeometry g = BusGeometry::forTechnology(tech, 5);
    CapacitanceMatrix cal =
        BemExtractor(g).extract().calibratedTo(tech);
    EXPECT_DOUBLE_EQ(cal.ground(2).raw(), tech.c_line.raw());
    EXPECT_DOUBLE_EQ(cal.coupling(2, 3).raw(), tech.c_inter.raw());
}

} // anonymous namespace
} // namespace nanobus
