/**
 * @file
 * Tests for the CapacitanceMatrix abstraction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/capmatrix.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(CapMatrix, FromMaxwellConversion)
{
    // Maxwell: diag total, off-diag negative couplings.
    Matrix m(3, 3);
    m(0, 0) = 5; m(0, 1) = -2; m(0, 2) = -1;
    m(1, 0) = -2; m(1, 1) = 6; m(1, 2) = -2;
    m(2, 0) = -1; m(2, 1) = -2; m(2, 2) = 5;
    CapacitanceMatrix cm = CapacitanceMatrix::fromMaxwell(m);
    EXPECT_DOUBLE_EQ(cm.coupling(0, 1).raw(), 2.0);
    EXPECT_DOUBLE_EQ(cm.coupling(0, 2).raw(), 1.0);
    EXPECT_DOUBLE_EQ(cm.coupling(1, 2).raw(), 2.0);
    // Ground = row sum.
    EXPECT_DOUBLE_EQ(cm.ground(0).raw(), 2.0);
    EXPECT_DOUBLE_EQ(cm.ground(1).raw(), 2.0);
    EXPECT_DOUBLE_EQ(cm.ground(2).raw(), 2.0);
    // Total = ground + couplings = diagonal.
    EXPECT_DOUBLE_EQ(cm.total(0).raw(), 5.0);
    EXPECT_DOUBLE_EQ(cm.total(1).raw(), 6.0);
}

TEST(CapMatrix, FromMaxwellClampsPositiveOffDiagonals)
{
    Matrix m(2, 2);
    m(0, 0) = 3; m(0, 1) = 1e-20; // numerical noise, wrong sign
    m(1, 0) = 1e-20; m(1, 1) = 3;
    CapacitanceMatrix cm = CapacitanceMatrix::fromMaxwell(m);
    EXPECT_DOUBLE_EQ(cm.coupling(0, 1).raw(), 0.0);
}

TEST(CapMatrix, CouplingIsSymmetric)
{
    CapacitanceMatrix cm(4);
    cm.setCoupling(1, 3, FaradsPerMeter{7.5});
    EXPECT_DOUBLE_EQ(cm.coupling(3, 1).raw(), 7.5);
}

TEST(CapMatrix, SelfCouplingIsZero)
{
    CapacitanceMatrix cm(3);
    EXPECT_DOUBLE_EQ(cm.coupling(1, 1).raw(), 0.0);
}

TEST(CapMatrix, AnalyticalMatchesTable1Anchors)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    CapacitanceMatrix cm = CapacitanceMatrix::analytical(tech, 32);
    EXPECT_EQ(cm.size(), 32u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(cm.ground(i).raw(), tech.c_line.raw());
    EXPECT_DOUBLE_EQ(cm.coupling(10, 11).raw(), tech.c_inter.raw());
    EXPECT_DOUBLE_EQ(cm.coupling(10, 9).raw(), tech.c_inter.raw());
}

TEST(CapMatrix, AnalyticalNonAdjacentDecays)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    CapacitanceMatrix cm = CapacitanceMatrix::analytical(tech, 32);
    double c1 = cm.coupling(10, 11).raw();
    double c2 = cm.coupling(10, 12).raw();
    double c3 = cm.coupling(10, 13).raw();
    double c4 = cm.coupling(10, 14).raw();
    double c5 = cm.coupling(10, 15).raw();
    EXPECT_GT(c2, c3);
    EXPECT_GT(c3, c4);
    EXPECT_GT(c4, c5);
    EXPECT_NEAR(c2 / c1, 0.090, 1e-12);
    EXPECT_NEAR(c3 / c1, 0.030, 1e-12);
    // Beyond the ratio table the decay continues geometrically.
    EXPECT_NEAR(c5 / c4, c4 / c3, 1e-9);
}

TEST(CapMatrix, DistributionFractionsSumToOne)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm90);
    CapacitanceMatrix cm = CapacitanceMatrix::analytical(tech, 32);
    for (unsigned i : {0u, 1u, 15u, 31u}) {
        auto d = cm.distribution(i);
        EXPECT_NEAR(d.cgnd + d.cc1 + d.cc2 + d.cc3 + d.ccrest, 1.0,
                    1e-12);
    }
}

TEST(CapMatrix, AnalyticalDistributionMatchesFig1b)
{
    // Fig 1(b): non-adjacent coupling is ~8-10% of the total for a
    // centre wire across the ITRS nodes.
    for (ItrsNode id : allItrsNodes()) {
        const TechnologyNode &tech = itrsNode(id);
        CapacitanceMatrix cm = CapacitanceMatrix::analytical(tech, 32);
        auto d = cm.distribution(15);
        EXPECT_GT(d.nonAdjacent(), 0.04) << tech.name;
        EXPECT_LT(d.nonAdjacent(), 0.15) << tech.name;
        EXPECT_GT(d.cc1, d.cgnd) << tech.name; // coupling dominates
    }
}

TEST(CapMatrix, EdgeWireHasLessCouplingThanCentre)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    CapacitanceMatrix cm = CapacitanceMatrix::analytical(tech, 8);
    // Edge wire has one adjacent neighbor, centre has two.
    auto edge = cm.distribution(0);
    auto centre = cm.distribution(4);
    EXPECT_LT(edge.cc1, centre.cc1);
}

TEST(CapMatrix, CalibrationAnchorsCentreWire)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm65);
    // Build an arbitrary-scale matrix and calibrate it.
    CapacitanceMatrix raw(5);
    for (unsigned i = 0; i < 5; ++i)
        raw.setGround(i, FaradsPerMeter{3.0 + 0.1 * i});
    for (unsigned i = 0; i + 1 < 5; ++i)
        raw.setCoupling(i, i + 1, FaradsPerMeter{10.0});
    raw.setCoupling(0, 2, FaradsPerMeter{1.0});

    CapacitanceMatrix cal = raw.calibratedTo(tech);
    EXPECT_DOUBLE_EQ(cal.ground(2).raw(), tech.c_line.raw());
    EXPECT_DOUBLE_EQ(cal.coupling(2, 3).raw(), tech.c_inter.raw());
    // Shape preserved: non-adjacent scales by the same factor.
    EXPECT_NEAR(cal.coupling(0, 2).raw() / cal.coupling(0, 1).raw(), 0.1, 1e-12);
    // Per-wire ground variations preserved proportionally.
    EXPECT_NEAR(cal.ground(0).raw() / cal.ground(2).raw(), 3.0 / 3.2, 1e-12);
}

TEST(CapMatrix, SettersRejectNegative)
{
    setAbortOnError(false);
    CapacitanceMatrix cm(3);
    EXPECT_THROW(cm.setGround(0, FaradsPerMeter{-1.0}), FatalError);
    EXPECT_THROW(cm.setCoupling(0, 1, FaradsPerMeter{-1.0}), FatalError);
    EXPECT_THROW(cm.setCoupling(1, 1, FaradsPerMeter{1.0}), FatalError);
    setAbortOnError(true);
}

namespace {

Matrix
healthyMaxwell3()
{
    Matrix m(3, 3);
    m(0, 0) = 5; m(0, 1) = -2; m(0, 2) = -1;
    m(1, 0) = -2; m(1, 1) = 6; m(1, 2) = -2;
    m(2, 0) = -1; m(2, 1) = -2; m(2, 2) = 5;
    return m;
}

} // anonymous namespace

TEST(CapMatrixValidation, CleanMatrixPassesWithoutWarnings)
{
    MaxwellValidation validation;
    Result<CapacitanceMatrix> r =
        CapacitanceMatrix::tryFromMaxwell(healthyMaxwell3(),
                                          &validation);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(validation.warnings.empty());
    EXPECT_FALSE(validation.symmetrized);
    EXPECT_EQ(validation.dominance_violations, 0u);
    EXPECT_GT(validation.rcond, 1e-3);
    EXPECT_DOUBLE_EQ(r.value().coupling(0, 1).raw(), 2.0);
    EXPECT_DOUBLE_EQ(r.value().ground(1).raw(), 2.0);
}

TEST(CapMatrixValidation, PerturbedMatrixIsRepairedAndFlagged)
{
    // A fault-injected perturbation breaks the BEM symmetry; the
    // validator must repair by averaging and say so.
    Matrix m = healthyMaxwell3();
    FaultInjector::perturbEntries(m.rowPtr(0), 9, 0.05, 1234);
    ASSERT_GT(m.asymmetry(), 0.0);

    MaxwellValidation validation;
    Result<CapacitanceMatrix> r =
        CapacitanceMatrix::tryFromMaxwell(m, &validation);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(validation.symmetrized);
    EXPECT_GT(validation.max_asymmetry, 0.0);
    ASSERT_FALSE(validation.warnings.empty());
    // Repaired couplings are the symmetrized averages.
    EXPECT_NEAR(r.value().coupling(0, 1).raw(),
                -0.5 * (m(0, 1) + m(1, 0)), 1e-12);
}

TEST(CapMatrixValidation, IllConditionedMatrixWarnsOnRcond)
{
    Matrix m(2, 2);
    m(0, 0) = 5.0;
    m(1, 1) = 5e-14; // condition number 1e13
    MaxwellValidation validation;
    Result<CapacitanceMatrix> r =
        CapacitanceMatrix::tryFromMaxwell(m, &validation);
    ASSERT_TRUE(r.ok()); // degraded, not rejected
    EXPECT_LT(validation.rcond, 1e-12);
    bool mentioned = false;
    for (const std::string &w : validation.warnings)
        mentioned = mentioned ||
            w.find("ill-conditioned") != std::string::npos;
    EXPECT_TRUE(mentioned);
}

TEST(CapMatrixValidation, SingularMatrixGetsZeroRcond)
{
    Matrix m(2, 2);
    m(0, 0) = 3; m(0, 1) = -3;
    m(1, 0) = -3; m(1, 1) = 3; // rank 1
    MaxwellValidation validation;
    Result<CapacitanceMatrix> r =
        CapacitanceMatrix::tryFromMaxwell(m, &validation);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(validation.rcond, 0.0);
    EXPECT_FALSE(validation.warnings.empty());
}

TEST(CapMatrixValidation, DominanceViolationsAreCounted)
{
    Matrix m = healthyMaxwell3();
    m(1, 1) = 3.5; // row sum becomes -0.5
    MaxwellValidation validation;
    Result<CapacitanceMatrix> r =
        CapacitanceMatrix::tryFromMaxwell(m, &validation);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(validation.dominance_violations, 1u);
    EXPECT_DOUBLE_EQ(r.value().ground(1).raw(), 0.0); // clamped
}

TEST(CapMatrixValidation, RejectsStructurallyBrokenInput)
{
    Result<CapacitanceMatrix> non_square =
        CapacitanceMatrix::tryFromMaxwell(Matrix(2, 3));
    ASSERT_FALSE(non_square.ok());
    EXPECT_EQ(non_square.error().code, ErrorCode::InvalidArgument);

    Matrix nan_matrix = healthyMaxwell3();
    nan_matrix(2, 0) = std::nan("");
    Result<CapacitanceMatrix> non_finite =
        CapacitanceMatrix::tryFromMaxwell(nan_matrix);
    ASSERT_FALSE(non_finite.ok());
    EXPECT_EQ(non_finite.error().code, ErrorCode::NonFinite);
}

} // anonymous namespace
} // namespace nanobus
