/**
 * @file
 * Tests for the Sakurai-Tamaru closed-form capacitance estimates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/analytical.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {
namespace {

TEST(Analytical, ParallelPlateFormula)
{
    // C = eps0 * epsr * w / h
    const FaradsPerMeter c =
        parallelPlateCapacitance(Meters{1e-6}, Meters{1e-6}, 3.9);
    EXPECT_NEAR(c.raw(), 3.9 * units::epsilon0, 1e-18);
}

TEST(Analytical, SelfCapExceedsParallelPlate)
{
    // Fringing always adds capacitance over the plate term.
    const Meters w{335e-9}, t{670e-9}, h{724e-9};
    const FaradsPerMeter plate = parallelPlateCapacitance(w, h, 3.3);
    const FaradsPerMeter self = sakuraiSelfCapacitance(w, t, h, 3.3);
    EXPECT_GT(self, plate);
}

TEST(Analytical, SelfCapScalesLinearlyWithPermittivity)
{
    const Meters w{335e-9}, t{670e-9}, h{724e-9};
    const FaradsPerMeter c1 = sakuraiSelfCapacitance(w, t, h, 1.0);
    const FaradsPerMeter c2 = sakuraiSelfCapacitance(w, t, h, 2.0);
    // Same-dimension ratio collapses to a plain double.
    EXPECT_NEAR(c2 / c1, 2.0, 1e-12);
}

TEST(Analytical, CouplingDecreasesWithSpacing)
{
    const Meters w{335e-9}, t{670e-9}, h{724e-9};
    const FaradsPerMeter close =
        sakuraiCouplingCapacitance(w, t, h, Meters{300e-9}, 3.3);
    const FaradsPerMeter far =
        sakuraiCouplingCapacitance(w, t, h, Meters{600e-9}, 3.3);
    EXPECT_GT(close, far);
    // Power-law exponent -1.34 => doubling spacing shrinks coupling
    // by 2^1.34 ~ 2.53.
    EXPECT_NEAR(close / far, std::pow(2.0, 1.34), 1e-9);
}

TEST(Analytical, CouplingGrowsWithThickness)
{
    const Meters w{335e-9}, h{724e-9}, s{335e-9};
    const FaradsPerMeter thin =
        sakuraiCouplingCapacitance(w, Meters{300e-9}, h, s, 3.3);
    const FaradsPerMeter thick =
        sakuraiCouplingCapacitance(w, Meters{900e-9}, h, s, 3.3);
    EXPECT_GT(thick, thin);
}

TEST(Analytical, OrderOfMagnitudeMatchesTable1At130nm)
{
    // The isolated-line formulas ignore multi-wire shielding, so only
    // order-of-magnitude agreement with Table 1 is expected.
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusGeometry g = BusGeometry::forTechnology(tech, 5);
    const FaradsPerMeter self = sakuraiSelfCapacitance(g);
    const FaradsPerMeter coupling = sakuraiCouplingCapacitance(g);
    EXPECT_GT(self, 0.3 * tech.c_line);
    EXPECT_LT(self, 10.0 * tech.c_line);
    EXPECT_GT(coupling, 0.2 * tech.c_inter);
    EXPECT_LT(coupling, 5.0 * tech.c_inter);
}

TEST(Analytical, BadGeometryIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(sakuraiSelfCapacitance(Meters{0.0}, Meters{1e-9},
                                        Meters{1e-9}, 3.0),
                 FatalError);
    EXPECT_THROW(sakuraiCouplingCapacitance(Meters{1e-9}, Meters{1e-9},
                                            Meters{1e-9}, Meters{0.0},
                                            3.0),
                 FatalError);
    EXPECT_THROW(parallelPlateCapacitance(Meters{1e-9}, Meters{0.0},
                                          3.0),
                 FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
