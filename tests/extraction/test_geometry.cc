/**
 * @file
 * Tests for the bus cross-section geometry.
 */

#include <gtest/gtest.h>

#include "extraction/geometry.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(BusGeometry, ForTechnologyCopiesNodeValues)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusGeometry g = BusGeometry::forTechnology(tech, 32);
    EXPECT_EQ(g.num_wires, 32u);
    EXPECT_DOUBLE_EQ(g.width, tech.wire_width);
    EXPECT_DOUBLE_EQ(g.thickness, tech.wire_thickness);
    EXPECT_DOUBLE_EQ(g.spacing, tech.spacing());
    EXPECT_DOUBLE_EQ(g.height, tech.ild_height);
    EXPECT_DOUBLE_EQ(g.epsilon_r, tech.epsilon_r);
}

TEST(BusGeometry, PitchAndPositions)
{
    BusGeometry g;
    g.num_wires = 3;
    g.width = 2.0;
    g.thickness = 1.0;
    g.spacing = 3.0;
    g.height = 1.0;
    g.epsilon_r = 1.0;
    EXPECT_DOUBLE_EQ(g.pitch(), 5.0);
    EXPECT_DOUBLE_EQ(g.wireLeft(0), 0.0);
    EXPECT_DOUBLE_EQ(g.wireLeft(2), 10.0);
    EXPECT_DOUBLE_EQ(g.wireCentre(0), 1.0);
    EXPECT_DOUBLE_EQ(g.wireCentre(1), 6.0);
}

TEST(BusGeometry, ValidationRejectsBadValues)
{
    setAbortOnError(false);
    BusGeometry g;
    g.num_wires = 2;
    g.width = 1.0;
    g.thickness = 1.0;
    g.spacing = 1.0;
    g.height = 1.0;
    g.epsilon_r = 2.0;
    EXPECT_NO_THROW(g.validate());

    BusGeometry bad = g;
    bad.num_wires = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.width = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.spacing = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.epsilon_r = 0.5;
    EXPECT_THROW(bad.validate(), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
