/**
 * @file
 * Tests for the bus cross-section geometry.
 */

#include <gtest/gtest.h>

#include "extraction/geometry.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(BusGeometry, ForTechnologyCopiesNodeValues)
{
    const TechnologyNode &tech = itrsNode(ItrsNode::Nm130);
    BusGeometry g = BusGeometry::forTechnology(tech, 32);
    EXPECT_EQ(g.num_wires, 32u);
    EXPECT_DOUBLE_EQ(g.width.raw(), tech.wire_width.raw());
    EXPECT_DOUBLE_EQ(g.thickness.raw(), tech.wire_thickness.raw());
    EXPECT_DOUBLE_EQ(g.spacing.raw(), tech.spacing().raw());
    EXPECT_DOUBLE_EQ(g.height.raw(), tech.ild_height.raw());
    EXPECT_DOUBLE_EQ(g.epsilon_r, tech.epsilon_r);
}

TEST(BusGeometry, PitchAndPositions)
{
    BusGeometry g;
    g.num_wires = 3;
    g.width = Meters{2.0};
    g.thickness = Meters{1.0};
    g.spacing = Meters{3.0};
    g.height = Meters{1.0};
    g.epsilon_r = 1.0;
    EXPECT_DOUBLE_EQ(g.pitch().raw(), 5.0);
    EXPECT_DOUBLE_EQ(g.wireLeft(0).raw(), 0.0);
    EXPECT_DOUBLE_EQ(g.wireLeft(2).raw(), 10.0);
    EXPECT_DOUBLE_EQ(g.wireCentre(0).raw(), 1.0);
    EXPECT_DOUBLE_EQ(g.wireCentre(1).raw(), 6.0);
}

TEST(BusGeometry, ValidationRejectsBadValues)
{
    setAbortOnError(false);
    BusGeometry g;
    g.num_wires = 2;
    g.width = Meters{1.0};
    g.thickness = Meters{1.0};
    g.spacing = Meters{1.0};
    g.height = Meters{1.0};
    g.epsilon_r = 2.0;
    EXPECT_NO_THROW(g.validate());

    BusGeometry bad = g;
    bad.num_wires = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.width = Meters{0.0};
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.spacing = Meters{-1.0};
    EXPECT_THROW(bad.validate(), FatalError);
    bad = g;
    bad.epsilon_r = 0.5;
    EXPECT_THROW(bad.validate(), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
