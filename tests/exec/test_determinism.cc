/**
 * @file
 * End-to-end determinism pins for the parallel runtime: the exact
 * bits of every simulation result must be a pure function of the
 * inputs, never of the thread count. These tests re-run the paper's
 * building blocks — the twin-bus energy study, the robust trace
 * sweep, and BEM extraction — at pool sizes 1, 2, and the hardware
 * concurrency, and require equality with EXPECT_EQ on raw doubles
 * (no tolerances).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hh"
#include "extraction/bem.hh"
#include "sim/experiment.hh"
#include "trace/io.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

/** Pool sizes every pin runs at: serial, small, and machine-wide. */
std::vector<unsigned>
pinPoolSizes()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 1)
        hw = 1;
    std::vector<unsigned> sizes = {1, 2, hw};
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()),
                sizes.end());
    return sizes;
}

void
expectSameEnergy(const EnergyBreakdown &a, const EnergyBreakdown &b,
                 const char *what, unsigned threads)
{
    EXPECT_EQ(a.self.raw(), b.self.raw())
        << what << " self energy diverged at " << threads
        << " threads";
    EXPECT_EQ(a.coupling.raw(), b.coupling.raw())
        << what << " coupling energy diverged at " << threads
        << " threads";
}

TEST(Determinism, EnergyStudyBitIdenticalAcrossPoolSizes)
{
    auto runAt = [](unsigned threads) {
        exec::ThreadPool pool(threads);
        return runEnergyStudy("eon", tech130,
                              EncodingScheme::BusInvert, 1, 20000, 1,
                              &pool);
    };
    const EnergyCell serial = runAt(1);
    for (unsigned threads : pinPoolSizes()) {
        const EnergyCell cell = runAt(threads);
        expectSameEnergy(serial.instruction, cell.instruction,
                         "instruction", threads);
        expectSameEnergy(serial.data, cell.data, "data", threads);
    }
}

TEST(Determinism, TraceSweepReportBitIdenticalAcrossPoolSizes)
{
    const std::string path =
        ::testing::TempDir() + "/nanobus_determinism_trace.txt";
    {
        TraceWriter writer(path);
        // Mixed traffic with address patterns that exercise both
        // buses and the coupling terms.
        for (uint64_t c = 0; c < 3000; ++c) {
            AccessKind kind = (c % 3 == 0)
                ? AccessKind::InstructionFetch
                : (c % 3 == 1 ? AccessKind::Load
                              : AccessKind::Store);
            uint32_t address =
                static_cast<uint32_t>(c * 0x9e3779b9u);
            writer.write({c, address, kind});
        }
        writer.flush();
    }

    BusSimConfig config;
    config.scheme = EncodingScheme::BusInvert;
    config.data_width = 16;
    config.interval_cycles = 500;
    config.thermal.stack_mode = StackMode::None;
    config.record_samples = false;

    auto runAt = [&](unsigned threads) {
        exec::ThreadPool pool(threads);
        return runRobustTraceSweep(path, tech130, config, nullptr,
                                   1000, &pool);
    };

    const SweepReport serial = runAt(1);
    EXPECT_TRUE(serial.completed);
    EXPECT_EQ(serial.exec.threads, 1u);
    for (unsigned threads : pinPoolSizes()) {
        const SweepReport report = runAt(threads);
        EXPECT_TRUE(report.completed);
        EXPECT_EQ(report.records, serial.records);
        EXPECT_EQ(report.skipped_lines, serial.skipped_lines);
        EXPECT_EQ(report.instruction_faults.size(),
                  serial.instruction_faults.size());
        EXPECT_EQ(report.data_faults.size(),
                  serial.data_faults.size());
        expectSameEnergy(serial.instruction_energy,
                         report.instruction_energy, "instruction",
                         threads);
        expectSameEnergy(serial.data_energy, report.data_energy,
                         "data", threads);
        EXPECT_EQ(report.exec.threads, threads);
    }
    std::remove(path.c_str());
}

TEST(Determinism, BemExtractionBitIdenticalAcrossPoolSizes)
{
    BusGeometry geometry =
        BusGeometry::forTechnology(tech130, 8);

    auto solveAt = [&](unsigned threads) {
        exec::ThreadPool pool(threads);
        BemExtractor::Options options;
        options.panels_per_width = 6;
        options.pool = &pool;
        return BemExtractor(geometry, options).solveMaxwell();
    };

    const Matrix serial = solveAt(1);
    for (unsigned threads : pinPoolSizes()) {
        const Matrix m = solveAt(threads);
        ASSERT_EQ(m.rows(), serial.rows());
        ASSERT_EQ(m.cols(), serial.cols());
        for (size_t i = 0; i < serial.rows(); ++i)
            for (size_t j = 0; j < serial.cols(); ++j)
                EXPECT_EQ(m(i, j), serial(i, j))
                    << "entry (" << i << "," << j
                    << ") diverged at " << threads << " threads";
    }
}

} // anonymous namespace
} // namespace nanobus
