/**
 * @file
 * SweepRunner tests: ordered collection, serial/parallel bit
 * equivalence on real trace sweeps, deterministic error surfacing,
 * cancellation of unstarted shards, and the fault-injection path —
 * an injected RK4 failure inside one shard escalates to a batch
 * error (ErrorCode::ThermalRunaway) without deadlocking the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "sim/sweep.hh"
#include "exec/thread_pool.hh"
#include "trace/io.hh"
#include "util/faultinject.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
sweepConfig()
{
    BusSimConfig config;
    config.scheme = EncodingScheme::Unencoded;
    config.data_width = 16;
    config.interval_cycles = 500;
    config.thermal.stack_mode = StackMode::None;
    config.record_samples = false;
    return config;
}

class SweepRunnerTest : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_sweep_runner_trace.txt";

    void SetUp() override { FaultInjector::instance().reset(); }

    void TearDown() override
    {
        FaultInjector::instance().reset();
        std::remove(path_.c_str());
    }

    /** Alternating fetch/load traffic with full-width flips. */
    void writeTrace(uint64_t n)
    {
        TraceWriter writer(path_);
        for (uint64_t c = 0; c < n; ++c) {
            AccessKind kind = (c & 1) ? AccessKind::Load
                                      : AccessKind::InstructionFetch;
            uint32_t address = (c & 2) ? 0xffffffffu : 0x00000000u;
            writer.write({c, address, kind});
        }
        writer.flush();
    }
};

TEST_F(SweepRunnerTest, CollectsReportsInJobOrder)
{
    // Shards finish in inverted order (earlier jobs sleep longer);
    // reports must still land by index.
    exec::ThreadPool pool(4);
    exec::SweepRunner runner(pool);
    std::vector<exec::SweepJob> jobs;
    for (size_t i = 0; i < 6; ++i) {
        jobs.push_back({"job" + std::to_string(i),
                        [i]() -> Result<SweepReport> {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(
                                    (6 - i) * 3));
                            SweepReport r;
                            r.records = i * 10;
                            r.completed = true;
                            return r;
                        }});
    }

    Result<exec::BatchReport> batch = runner.run(jobs);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().reports.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(batch.value().reports[i].records, i * 10);
        EXPECT_EQ(batch.value().reports[i].exec.threads, 4u);
        EXPECT_GE(batch.value().reports[i].exec.wall_ms, 0.0);
    }
    EXPECT_EQ(batch.value().exec.threads, 4u);
    EXPECT_GE(batch.value().exec.tasks_run, jobs.size());
}

TEST_F(SweepRunnerTest, ParallelBatchBitIdenticalToSerial)
{
    writeTrace(1500);
    auto makeJobs = [&] {
        std::vector<exec::SweepJob> jobs;
        for (int width : {8, 16, 24, 32}) {
            BusSimConfig config = sweepConfig();
            config.data_width = static_cast<unsigned>(width);
            jobs.push_back(traceSweepJob(
                "w" + std::to_string(width), path_, tech130, config));
        }
        return jobs;
    };

    exec::ThreadPool serial_pool(1);
    exec::ThreadPool parallel_pool(4);
    Result<exec::BatchReport> serial =
        exec::SweepRunner(serial_pool).run(makeJobs());
    Result<exec::BatchReport> parallel =
        exec::SweepRunner(parallel_pool).run(makeJobs());

    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial.value().reports.size(),
              parallel.value().reports.size());
    for (size_t i = 0; i < serial.value().reports.size(); ++i) {
        const SweepReport &s = serial.value().reports[i];
        const SweepReport &p = parallel.value().reports[i];
        EXPECT_EQ(s.records, p.records);
        EXPECT_EQ(s.skipped_lines, p.skipped_lines);
        // Energies must match to the last bit, not to a tolerance.
        EXPECT_EQ(s.instruction_energy.self.raw(),
                  p.instruction_energy.self.raw());
        EXPECT_EQ(s.instruction_energy.coupling.raw(),
                  p.instruction_energy.coupling.raw());
        EXPECT_EQ(s.data_energy.self.raw(),
                  p.data_energy.self.raw());
        EXPECT_EQ(s.data_energy.coupling.raw(),
                  p.data_energy.coupling.raw());
        EXPECT_TRUE(p.completed);
    }
}

TEST_F(SweepRunnerTest, SurfacesSmallestFailedIndex)
{
    // Serial pool: job1 fails first; job3's failure and job4 must
    // never run (cancellation), and the surfaced error is job1's,
    // label-prefixed, with its code preserved.
    exec::ThreadPool pool(1);
    exec::SweepRunner runner(pool);
    std::atomic<int> started{0};
    auto ok = [&]() -> Result<SweepReport> {
        started.fetch_add(1);
        SweepReport r;
        r.completed = true;
        return r;
    };
    std::vector<exec::SweepJob> jobs;
    jobs.push_back({"job0", ok});
    jobs.push_back({"job1", [&]() -> Result<SweepReport> {
                        started.fetch_add(1);
                        return Error{ErrorCode::IoError,
                                     "trace vanished"};
                    }});
    jobs.push_back({"job2", ok});
    jobs.push_back({"job3", [&]() -> Result<SweepReport> {
                        started.fetch_add(1);
                        return Error{ErrorCode::ParseError, "later"};
                    }});

    Result<exec::BatchReport> batch = runner.run(jobs);
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.error().code, ErrorCode::IoError);
    EXPECT_NE(batch.error().message.find("shard 'job1'"),
              std::string::npos);
    EXPECT_NE(batch.error().message.find("trace vanished"),
              std::string::npos);
    // Serial order: job0 and job1 ran, then the cancel flag skipped
    // the rest.
    EXPECT_EQ(started.load(), 2);
}

TEST_F(SweepRunnerTest, InjectedRk4FaultCancelsBatch)
{
    // Satellite: a FaultInjector-triggered ThermalFault in one shard
    // must cancel the remaining shards and surface through
    // Result<BatchReport> without deadlock or leak. Retries are
    // disabled so the injected NaN step cannot be recovered, and the
    // trigger repeats so whichever shard integrates first is hit.
    writeTrace(2000);
    BusSimConfig config = sweepConfig();
    config.thermal.max_integration_retries = 0;

    exec::ThreadPool pool(4);
    exec::SweepRunner runner(
        pool, exec::SweepRunner::Options{thermalFaultProbe()});
    std::vector<exec::SweepJob> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(traceSweepJob(
            "shard" + std::to_string(i), path_, tech130, config));

    FaultInjector::instance().armCallFault(FaultSite::Rk4Step, 1, 1);
    Result<exec::BatchReport> batch = runner.run(jobs);
    FaultInjector::instance().reset();

    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.error().code, ErrorCode::ThermalRunaway);
    EXPECT_NE(batch.error().message.find("shard '"),
              std::string::npos);

    // The pool survived the cancelled batch: a clean follow-up batch
    // completes (this would hang on a leaked task or a dead worker).
    Result<exec::BatchReport> clean = runner.run(
        {traceSweepJob("clean", path_, tech130,
                                          sweepConfig())});
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean.value().reports[0].completed);
}

TEST_F(SweepRunnerTest, ContainedFaultsDoNotFailBatchByDefault)
{
    // Default options: contained thermal faults degrade fidelity and
    // stay visible in the per-shard report, but the batch completes.
    writeTrace(2000);
    BusSimConfig config = sweepConfig();
    config.thermal.max_integration_retries = 0;

    exec::ThreadPool pool(2);
    exec::SweepRunner runner(pool);
    FaultInjector::instance().armCallFault(FaultSite::Rk4Step, 1, 1);
    Result<exec::BatchReport> batch = runner.run(
        {traceSweepJob("tolerant", path_, tech130,
                                          config)});
    FaultInjector::instance().reset();

    ASSERT_TRUE(batch.ok());
    const SweepReport &report = batch.value().reports[0];
    EXPECT_TRUE(report.completed);
    EXPECT_GT(report.instruction_faults.size() +
                  report.data_faults.size(),
              0u);
}

TEST_F(SweepRunnerTest, EmptyBatchSucceeds)
{
    exec::ThreadPool pool(2);
    Result<exec::BatchReport> batch =
        exec::SweepRunner(pool).run({});
    ASSERT_TRUE(batch.ok());
    EXPECT_TRUE(batch.value().reports.empty());
}

} // anonymous namespace
} // namespace nanobus
