/**
 * @file
 * Supervisor tests: ordered degraded-mode reports, bit-identical
 * results across pool sizes, deterministic retry/backoff on injected
 * transient I/O faults, quarantine of permanent failures and
 * exhausted retry budgets, the Stall-driven heartbeat watchdog
 * (including the pool-size-1 self-deadline escape), and the
 * fail-fast compatibility mode that mirrors SweepRunner.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "exec/thread_pool.hh"
#include "trace/io.hh"
#include "util/faultinject.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
sweepConfig(unsigned data_width = 16)
{
    BusSimConfig config;
    config.scheme = EncodingScheme::BusInvert;
    config.data_width = data_width;
    config.interval_cycles = 500;
    config.thermal.stack_mode = StackMode::None;
    config.record_samples = false;
    return config;
}

/** Bitwise equality of the energy numbers two sweeps reported. */
void
expectSameEnergies(const SweepReport &a, const SweepReport &b)
{
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.instruction_energy.self.raw(),
              b.instruction_energy.self.raw());
    EXPECT_EQ(a.instruction_energy.coupling.raw(),
              b.instruction_energy.coupling.raw());
    EXPECT_EQ(a.data_energy.self.raw(), b.data_energy.self.raw());
    EXPECT_EQ(a.data_energy.coupling.raw(),
              b.data_energy.coupling.raw());
}

class SupervisorTest : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_supervisor_trace.txt";

    void SetUp() override
    {
        FaultInjector::instance().reset();
        TraceWriter writer(path_);
        for (uint64_t c = 0; c < 1200; ++c) {
            AccessKind kind = (c & 1)
                ? AccessKind::Load
                : AccessKind::InstructionFetch;
            uint32_t address =
                (c & 2) ? 0xffffffffu : 0x00000000u;
            writer.write({c, address, kind});
        }
        writer.flush();
    }

    void TearDown() override
    {
        FaultInjector::instance().reset();
        std::remove(path_.c_str());
    }

    std::vector<exec::SupervisedJob> makeJobs(size_t n)
    {
        std::vector<exec::SupervisedJob> jobs;
        for (size_t i = 0; i < n; ++i)
            jobs.push_back(supervisedTraceSweepJob(
                "shard" + std::to_string(i), path_, tech130,
                sweepConfig(static_cast<unsigned>(8 + 8 * i))));
        return jobs;
    }
};

TEST_F(SupervisorTest, CleanBatchAllOkInJobOrder)
{
    exec::ThreadPool pool(4);
    exec::Supervisor supervisor(pool);
    Result<exec::SupervisedReport> run =
        supervisor.run(makeJobs(3));
    ASSERT_TRUE(run.ok());
    const exec::SupervisedReport &sup = run.value();
    EXPECT_TRUE(sup.allSucceeded());
    EXPECT_EQ(sup.ok_count, 3u);
    EXPECT_EQ(sup.retried_count, 0u);
    EXPECT_EQ(sup.timed_out_count, 0u);
    EXPECT_EQ(sup.quarantined_count, 0u);
    ASSERT_EQ(sup.reports.size(), 3u);
    ASSERT_EQ(sup.records.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(sup.records[i].outcome, exec::JobOutcome::Ok);
        EXPECT_EQ(sup.records[i].attempts, 1u);
        EXPECT_GE(sup.records[i].heartbeats, 1u);
        EXPECT_TRUE(sup.records[i].backoff_ms.empty());
        EXPECT_EQ(sup.reports[i].records, 1200u);
        EXPECT_TRUE(sup.reports[i].completed);
    }
    EXPECT_EQ(sup.exec.threads, 4u);
    EXPECT_GE(sup.exec.tasks_run, 3u);
}

TEST_F(SupervisorTest, ReportsBitIdenticalAcrossPoolSizes)
{
    // Acceptance pin: for jobs that succeed, supervised results are
    // bit-identical at every pool size.
    std::vector<exec::SupervisedReport> runs;
    for (unsigned pool_size :
         {1u, 2u, exec::ThreadPool::defaultThreads()}) {
        exec::ThreadPool pool(pool_size);
        exec::Supervisor supervisor(pool);
        Result<exec::SupervisedReport> run =
            supervisor.run(makeJobs(4));
        ASSERT_TRUE(run.ok()) << "pool=" << pool_size;
        ASSERT_TRUE(run.value().allSucceeded())
            << "pool=" << pool_size;
        runs.push_back(run.takeValue());
    }
    for (size_t r = 1; r < runs.size(); ++r)
        for (size_t i = 0; i < runs[0].reports.size(); ++i)
            expectSameEnergies(runs[0].reports[i],
                               runs[r].reports[i]);
}

TEST_F(SupervisorTest, TransientIoRetriesToSuccess)
{
    // Acceptance pin: one injected transient I/O fault on a shard
    // retries to success with a deterministic backoff, and the
    // retried result matches the clean run bit-for-bit.
    exec::ThreadPool pool(2);
    exec::Supervisor supervisor(pool);
    Result<exec::SupervisedReport> clean =
        supervisor.run(makeJobs(1));
    ASSERT_TRUE(clean.ok());
    ASSERT_EQ(clean.value().records[0].outcome,
              exec::JobOutcome::Ok);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 1);
    Result<exec::SupervisedReport> faulted =
        supervisor.run(makeJobs(1));
    FaultInjector::instance().reset();

    ASSERT_TRUE(faulted.ok());
    const exec::SupervisedReport &sup = faulted.value();
    EXPECT_TRUE(sup.allSucceeded());
    EXPECT_EQ(sup.retried_count, 1u);
    ASSERT_EQ(sup.records[0].outcome, exec::JobOutcome::Retried);
    EXPECT_EQ(sup.records[0].attempts, 2u);
    ASSERT_EQ(sup.records[0].backoff_ms.size(), 1u);
    // The backoff applied is exactly the pure-function delay for
    // (job 0, retry 0) — no wall-clock in the decision path.
    EXPECT_EQ(sup.records[0].backoff_ms[0],
              exec::Supervisor::retryDelayMs(
                  exec::Supervisor::Options{}, 0, 0));
    expectSameEnergies(clean.value().reports[0], sup.reports[0]);
}

TEST_F(SupervisorTest, ExhaustedRetryBudgetQuarantines)
{
    // Every batch fill fails: the job burns 1 + max_retries attempts
    // and lands in quarantine with the transient error preserved.
    exec::ThreadPool pool(2);
    exec::Supervisor::Options options;
    options.max_retries = 2;
    exec::Supervisor supervisor(pool, options);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 1,
                                           1);
    Result<exec::SupervisedReport> run =
        supervisor.run(makeJobs(1));
    FaultInjector::instance().reset();

    ASSERT_TRUE(run.ok());
    const exec::SupervisedReport &sup = run.value();
    EXPECT_FALSE(sup.allSucceeded());
    EXPECT_EQ(sup.quarantined_count, 1u);
    ASSERT_EQ(sup.records[0].outcome,
              exec::JobOutcome::Quarantined);
    EXPECT_EQ(sup.records[0].attempts, 3u);
    EXPECT_EQ(sup.records[0].backoff_ms.size(), 2u);
    EXPECT_EQ(sup.records[0].error.code, ErrorCode::IoError);
    ASSERT_EQ(sup.quarantined.size(), 1u);
    EXPECT_EQ(sup.quarantined[0], "shard0");
}

TEST_F(SupervisorTest, PermanentErrorQuarantinesWithoutRetry)
{
    exec::ThreadPool pool(2);
    exec::Supervisor supervisor(pool);
    std::vector<exec::SupervisedJob> jobs;
    jobs.push_back(
        {"broken", [](exec::JobContext &ctx) -> Result<SweepReport> {
             (void)ctx.pulse();
             return Result<SweepReport>::failure(
                 ErrorCode::ParseError, "structurally damaged");
         }});
    jobs.push_back(makeJobs(1)[0]);

    Result<exec::SupervisedReport> run = supervisor.run(jobs);
    ASSERT_TRUE(run.ok());
    const exec::SupervisedReport &sup = run.value();
    EXPECT_EQ(sup.quarantined_count, 1u);
    EXPECT_EQ(sup.ok_count, 1u);
    EXPECT_EQ(sup.records[0].outcome, exec::JobOutcome::Quarantined);
    // Permanent faults never retry.
    EXPECT_EQ(sup.records[0].attempts, 1u);
    EXPECT_EQ(sup.records[0].error.code, ErrorCode::ParseError);
    EXPECT_EQ(sup.records[1].outcome, exec::JobOutcome::Ok);
}

TEST_F(SupervisorTest, StallTimesOutWhileOtherShardsComplete)
{
    // Acceptance pin: an injected Stall hangs exactly one shard; the
    // watchdog times it out, the report marks it TimedOut, and the
    // other shards complete with results identical to a clean run.
    exec::ThreadPool pool(2);
    exec::Supervisor clean_supervisor(pool);
    Result<exec::SupervisedReport> clean =
        clean_supervisor.run(makeJobs(3));
    ASSERT_TRUE(clean.ok());
    ASSERT_TRUE(clean.value().allSucceeded());

    exec::Supervisor::Options options;
    options.deadline_ms = 400.0;
    exec::Supervisor supervisor(pool, options);
    FaultInjector::instance().armCallFault(FaultSite::Stall, 1);
    Result<exec::SupervisedReport> run =
        supervisor.run(makeJobs(3));
    FaultInjector::instance().reset();

    ASSERT_TRUE(run.ok());
    const exec::SupervisedReport &sup = run.value();
    EXPECT_EQ(sup.timed_out_count, 1u);
    EXPECT_EQ(sup.ok_count, 2u);
    EXPECT_EQ(sup.quarantined_count, 0u);
    for (size_t i = 0; i < 3; ++i) {
        const exec::JobRecord &record = sup.records[i];
        if (record.outcome == exec::JobOutcome::TimedOut) {
            // The stalled attempt published its first heartbeat and
            // then froze; the deadline overrun is permanent.
            EXPECT_EQ(record.attempts, 1u);
            EXPECT_EQ(record.error.code, ErrorCode::BudgetExhausted);
            EXPECT_NE(record.error.message.find("deadline"),
                      std::string::npos);
        } else {
            EXPECT_EQ(record.outcome, exec::JobOutcome::Ok);
            expectSameEnergies(clean.value().reports[i],
                               sup.reports[i]);
        }
    }
}

TEST_F(SupervisorTest, StallEscapesViaSelfDeadlineAtPoolSizeOne)
{
    // At pool size 1 the attempt runs inline on the monitor thread —
    // no concurrent watchdog exists, so pulse()'s self-deadline check
    // is the only way out of the injected hang.
    exec::ThreadPool pool(1);
    exec::Supervisor::Options options;
    options.deadline_ms = 100.0;
    exec::Supervisor supervisor(pool, options);
    FaultInjector::instance().armCallFault(FaultSite::Stall, 1);
    Result<exec::SupervisedReport> run =
        supervisor.run(makeJobs(1));
    FaultInjector::instance().reset();

    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().records[0].outcome,
              exec::JobOutcome::TimedOut);
    EXPECT_EQ(run.value().timed_out_count, 1u);
}

TEST_F(SupervisorTest, FailFastSurfacesSmallestLabeledError)
{
    // SweepRunner-compatible mode: serial pool, job1 fails
    // permanently; job2 is cancelled unstarted and the batch error
    // carries job1's label and code.
    exec::ThreadPool pool(1);
    exec::Supervisor::Options options;
    options.run_to_completion = false;
    exec::Supervisor supervisor(pool, options);
    auto ok = [](exec::JobContext &ctx) -> Result<SweepReport> {
        (void)ctx.pulse();
        SweepReport r;
        r.completed = true;
        return r;
    };
    std::vector<exec::SupervisedJob> jobs;
    jobs.push_back({"job0", ok});
    jobs.push_back(
        {"job1", [](exec::JobContext &ctx) -> Result<SweepReport> {
             (void)ctx.pulse();
             return Result<SweepReport>::failure(
                 ErrorCode::ParseError, "bad shard");
         }});
    jobs.push_back({"job2", ok});

    Result<exec::SupervisedReport> run = supervisor.run(jobs);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.error().code, ErrorCode::ParseError);
    EXPECT_NE(run.error().message.find("shard 'job1'"),
              std::string::npos);
    EXPECT_NE(run.error().message.find("bad shard"),
              std::string::npos);
}

TEST_F(SupervisorTest, FailFastStillRetriesTransients)
{
    // Fail-fast only surfaces *exhausted or permanent* failures; a
    // single transient fault still retries to success.
    exec::ThreadPool pool(1);
    exec::Supervisor::Options options;
    options.run_to_completion = false;
    exec::Supervisor supervisor(pool, options);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 1);
    Result<exec::SupervisedReport> run =
        supervisor.run(makeJobs(2));
    FaultInjector::instance().reset();

    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run.value().allSucceeded());
    EXPECT_EQ(run.value().retried_count, 1u);
}

TEST_F(SupervisorTest, RetryDelayIsPureAndBounded)
{
    exec::Supervisor::Options options;
    options.backoff_base_ms = 2.0;
    options.backoff_factor = 3.0;
    for (size_t job = 0; job < 4; ++job) {
        double bound = options.backoff_base_ms;
        for (unsigned retry = 0; retry < 4; ++retry) {
            const double delay =
                exec::Supervisor::retryDelayMs(options, job, retry);
            EXPECT_EQ(delay, exec::Supervisor::retryDelayMs(
                                 options, job, retry));
            EXPECT_GE(delay, 0.0);
            EXPECT_LT(delay, bound);
            bound *= options.backoff_factor;
        }
    }
    // A different seed draws different delays.
    exec::Supervisor::Options reseeded = options;
    reseeded.backoff_seed ^= 0x1234abcdull;
    EXPECT_NE(exec::Supervisor::retryDelayMs(options, 0, 1),
              exec::Supervisor::retryDelayMs(reseeded, 0, 1));
}

TEST_F(SupervisorTest, FromSweepJobAdaptsPlainBodies)
{
    exec::ThreadPool pool(2);
    exec::Supervisor supervisor(pool);
    exec::SweepJob plain{"plain", []() -> Result<SweepReport> {
                             SweepReport r;
                             r.records = 42;
                             r.completed = true;
                             return r;
                         }};
    Result<exec::SupervisedReport> run = supervisor.run(
        {exec::Supervisor::fromSweepJob(std::move(plain))});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().records[0].outcome, exec::JobOutcome::Ok);
    EXPECT_EQ(run.value().reports[0].records, 42u);
    EXPECT_GE(run.value().records[0].heartbeats, 2u);
}

TEST_F(SupervisorTest, EmptyBatchSucceeds)
{
    exec::ThreadPool pool(2);
    Result<exec::SupervisedReport> run =
        exec::Supervisor(pool).run({});
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run.value().allSucceeded());
    EXPECT_TRUE(run.value().reports.empty());
}

} // anonymous namespace
} // namespace nanobus
