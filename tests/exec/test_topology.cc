/**
 * @file
 * Property tests for the exec topology/pinning layer (ctest label
 * `numa`). Three tiers:
 *
 *  - Probe invariants that must hold on ANY host: at least one node,
 *    every node non-empty, cpu sets disjoint, the union at least
 *    covering hardware_concurrency.
 *  - Pure-function tests of the placement map on fake multi-node
 *    topologies (fromNodeCpuLists), which run everywhere — the host
 *    in CI is usually single-node, so this is where the Compact /
 *    Scatter arithmetic is actually exercised.
 *  - Real pinning through a ThreadPool, which GTEST_SKIPs on
 *    single-node hosts and on platforms (or sandboxes) where
 *    affinity calls are unsupported or refused.
 *
 * Plus the load-bearing determinism pin: results are bit-identical
 * across every pinning policy at every pool size.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "exec/topology.hh"

namespace nanobus {
namespace exec {
namespace {

// ----------------------------------------------------------------
// parseCpuList
// ----------------------------------------------------------------

TEST(ParseCpuList, KernelFormats)
{
    EXPECT_EQ(parseCpuList("0"), (std::vector<unsigned>{0}));
    EXPECT_EQ(parseCpuList("0-3"),
              (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-3,8,10-11\n"),
              (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(parseCpuList(" 2 , 0 "),
              (std::vector<unsigned>{0, 2}));
    // Overlaps and duplicates collapse; output is sorted.
    EXPECT_EQ(parseCpuList("4-6,5,1"),
              (std::vector<unsigned>{1, 4, 5, 6}));
}

TEST(ParseCpuList, EmptyMeansNoCpus)
{
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("\n").empty());
    EXPECT_TRUE(parseCpuList("  ").empty());
}

TEST(ParseCpuList, MalformedNeverYieldsPartialParse)
{
    EXPECT_TRUE(parseCpuList("abc").empty());
    EXPECT_TRUE(parseCpuList("1,abc").empty());
    EXPECT_TRUE(parseCpuList("3-1").empty());
    EXPECT_TRUE(parseCpuList("1-").empty());
    EXPECT_TRUE(parseCpuList("1-2x").empty());
    EXPECT_TRUE(parseCpuList("-2").empty());
}

// ----------------------------------------------------------------
// Policy parsing
// ----------------------------------------------------------------

TEST(PinPolicyParse, RoundTripsEveryPolicy)
{
    for (PinPolicy policy : {PinPolicy::None, PinPolicy::Compact,
                             PinPolicy::Scatter}) {
        auto parsed = parsePinPolicy(pinPolicyName(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parsePinPolicy("").has_value());
    EXPECT_FALSE(parsePinPolicy("Compact").has_value());
    EXPECT_FALSE(parsePinPolicy("numa").has_value());
}

// ----------------------------------------------------------------
// Probe invariants (any host)
// ----------------------------------------------------------------

TEST(TopologyProbe, AtLeastOneNonEmptyNode)
{
    const Topology &topo = Topology::system();
    ASSERT_GE(topo.nodeCount(), 1u);
    for (const NumaNode &node : topo.nodes())
        EXPECT_FALSE(node.cpus.empty()) << "node " << node.id;
}

TEST(TopologyProbe, NodesSortedAndCpuSetsDisjoint)
{
    const Topology &topo = Topology::system();
    std::set<unsigned> seen;
    unsigned last_id = 0;
    bool first = true;
    for (const NumaNode &node : topo.nodes()) {
        if (!first) {
            EXPECT_GT(node.id, last_id);
        }
        first = false;
        last_id = node.id;
        for (unsigned cpu : node.cpus) {
            EXPECT_TRUE(seen.insert(cpu).second)
                << "cpu " << cpu << " appears in two nodes";
        }
    }
}

TEST(TopologyProbe, UnionCoversHardwareConcurrency)
{
    // hardware_concurrency can legitimately be *less* than the cpu
    // count (cgroup limits), but the probe must never report fewer
    // cpus than the portable fallback would.
    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());
    EXPECT_GE(Topology::system().totalCpus(), hw);
}

TEST(TopologyProbe, NodeOfCpuInvertsTheCpuSets)
{
    const Topology &topo = Topology::system();
    for (size_t i = 0; i < topo.nodeCount(); ++i) {
        for (unsigned cpu : topo.nodes()[i].cpus) {
            auto node = topo.nodeOfCpu(cpu);
            ASSERT_TRUE(node.has_value());
            EXPECT_EQ(*node, static_cast<unsigned>(i));
        }
    }
    EXPECT_FALSE(topo.nodeOfCpu(1u << 30).has_value());
}

// ----------------------------------------------------------------
// Placement map on fake multi-node topologies (pure functions)
// ----------------------------------------------------------------

Topology
fakeTwoNode()
{
    // Node 0: cpus 0-3, node 1: cpus 4-7 — a small dual-socket.
    return Topology::fromNodeCpuLists({{0, 1, 2, 3}, {4, 5, 6, 7}});
}

TEST(PlacementMap, NonePinsNothing)
{
    const Topology topo = fakeTwoNode();
    for (unsigned slot = 0; slot < 16; ++slot)
        EXPECT_FALSE(topo.cpuForSlot(PinPolicy::None, slot, 8)
                         .has_value());
}

TEST(PlacementMap, CompactFillsNodeZeroFirst)
{
    const Topology topo = fakeTwoNode();
    // Slots 1.. are the workers (slot 0 is the unpinned caller).
    const unsigned expect[] = {0, 1, 2, 3, 4, 5, 6, 7};
    for (unsigned slot = 0; slot < 8; ++slot) {
        auto cpu = topo.cpuForSlot(PinPolicy::Compact, slot, 9);
        ASSERT_TRUE(cpu.has_value());
        EXPECT_EQ(*cpu, expect[slot]) << "slot " << slot;
    }
    // Wraps when the pool outgrows the host.
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Compact, 8, 9), 0u);
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Compact, 9, 10), 1u);
}

TEST(PlacementMap, ScatterRoundRobinsAcrossNodes)
{
    const Topology topo = fakeTwoNode();
    // Even slots land on node 0, odd slots on node 1, walking each
    // node's cpu list in rounds.
    const unsigned expect[] = {0, 4, 1, 5, 2, 6, 3, 7};
    for (unsigned slot = 0; slot < 8; ++slot) {
        auto cpu = topo.cpuForSlot(PinPolicy::Scatter, slot, 9);
        ASSERT_TRUE(cpu.has_value());
        EXPECT_EQ(*cpu, expect[slot]) << "slot " << slot;
    }
    // Wraps per node past the host size.
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 8, 9), 0u);
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 9, 10), 4u);
}

TEST(PlacementMap, AsymmetricNodesWrapWithinEachNode)
{
    // Node 0 has one cpu, node 1 has three: scatter must wrap node
    // 0's single cpu instead of running off the end.
    const Topology topo =
        Topology::fromNodeCpuLists({{5}, {10, 11, 12}});
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 0, 5), 5u);
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 1, 5), 10u);
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 2, 5), 5u);
    EXPECT_EQ(*topo.cpuForSlot(PinPolicy::Scatter, 3, 5), 11u);
}

TEST(PlacementMap, MemoryOnlyNodesAreDropped)
{
    // Middle list empty = memory-only node: it must not appear, and
    // kernel ids of the kept nodes are preserved.
    const Topology topo =
        Topology::fromNodeCpuLists({{0, 1}, {}, {4, 5}});
    ASSERT_EQ(topo.nodeCount(), 2u);
    EXPECT_EQ(topo.nodes()[0].id, 0u);
    EXPECT_EQ(topo.nodes()[1].id, 2u);
    EXPECT_EQ(topo.totalCpus(), 4u);
}

TEST(PlacementMap, AllEmptyDegradesToSingleNode)
{
    const Topology topo = Topology::fromNodeCpuLists({{}, {}});
    ASSERT_EQ(topo.nodeCount(), 1u);
    EXPECT_GE(topo.totalCpus(), 1u);
}

// ----------------------------------------------------------------
// ThreadPool integration
// ----------------------------------------------------------------

TEST(ThreadPoolPinning, NonePolicyReportsNoPlacement)
{
    ThreadPool pool(4, PinPolicy::None);
    EXPECT_EQ(pool.pinning(), PinPolicy::None);
    EXPECT_TRUE(pool.workersPerNode().empty());
}

TEST(ThreadPoolPinning, SerialPoolNeverPins)
{
    // A pool of size 1 has no workers to pin, whatever the policy.
    ThreadPool pool(1, PinPolicy::Compact);
    EXPECT_EQ(pool.pinning(), PinPolicy::Compact);
    EXPECT_TRUE(pool.workersPerNode().empty());
}

TEST(ThreadPoolPinning, CountersMatchTopologyOnMultiNodeHosts)
{
    if (!Topology::system().multiNode())
        GTEST_SKIP() << "single-node host: pinning is a no-op";
    if (!affinityPinningSupported())
        GTEST_SKIP() << "no affinity support on this platform";

    ThreadPool pool(4, PinPolicy::Scatter);
    const std::vector<unsigned> &per_node = pool.workersPerNode();
    if (per_node.empty())
        GTEST_SKIP() << "kernel refused every pin (cpuset/sandbox)";
    EXPECT_EQ(per_node.size(), Topology::system().nodeCount());
    const unsigned total = std::accumulate(per_node.begin(),
                                           per_node.end(), 0u);
    EXPECT_LE(total, pool.size() - 1);
    EXPECT_GE(total, 1u);
    // Scatter with >= 2 workers on >= 2 nodes must touch more than
    // one node.
    unsigned touched = 0;
    for (unsigned count : per_node)
        touched += count > 0 ? 1 : 0;
    if (pool.size() - 1 >= Topology::system().nodeCount()) {
        EXPECT_GE(touched, 2u);
    }
}

TEST(ThreadPoolPinning, FillPlacementCopiesPolicyAndCounters)
{
    ThreadPool pool(2, PinPolicy::Compact);
    ExecStats stats;
    pool.fillPlacement(stats);
    EXPECT_STREQ(stats.pinning, "compact");
    EXPECT_EQ(stats.workers_per_node, pool.workersPerNode());
}

// ----------------------------------------------------------------
// The contract: pinning changes placement only, never results
// ----------------------------------------------------------------

/** A reduction whose float accumulation order would expose any
 *  chunking or combination difference immediately. */
double
sensitiveReduce(ThreadPool &pool, size_t n)
{
    return parallelReduce(
        pool, n, 0.0,
        [](size_t begin, size_t end) {
            double acc = 0.0;
            for (size_t i = begin; i < end; ++i)
                acc += 1.0 / (1.0 + static_cast<double>(i));
            return acc;
        },
        [](double a, double b) { return a + b; });
}

TEST(PinningDeterminism, BitIdenticalAcrossPoliciesAndPoolSizes)
{
    constexpr size_t kN = 20000;
    ThreadPool serial(1, PinPolicy::None);
    const double expect = sensitiveReduce(serial, kN);

    const unsigned hw = ThreadPool::defaultThreads();
    std::vector<unsigned> sizes = {1, 2};
    if (hw > 2)
        sizes.push_back(hw);
    for (unsigned size : sizes) {
        for (PinPolicy policy : {PinPolicy::None, PinPolicy::Compact,
                                 PinPolicy::Scatter}) {
            SCOPED_TRACE(testing::Message()
                         << "pool=" << size << " pinning="
                         << pinPolicyName(policy));
            ThreadPool pool(size, policy);
            const double got = sensitiveReduce(pool, kN);
            // Bitwise: the determinism contract is exact, not
            // approximate.
            EXPECT_EQ(std::memcmp(&got, &expect, sizeof(double)), 0);
        }
    }
}

TEST(PinningDeterminism, HintedSubmissionPreservesEveryTask)
{
    // submitHinted must run every task exactly once whatever the
    // hint distribution (including hints far beyond the deque
    // count).
    for (unsigned size : {1u, 2u, 4u}) {
        ThreadPool pool(size, PinPolicy::None);
        std::atomic<uint64_t> sum{0};
        constexpr uint64_t kTasks = 500;
        std::atomic<uint64_t> done{0};
        for (uint64_t i = 0; i < kTasks; ++i) {
            pool.submitHinted(
                [&sum, &done, i] {
                    sum.fetch_add(i + 1);
                    done.fetch_add(1);
                },
                static_cast<size_t>(i * 0x9e3779b97f4a7c15ull));
        }
        while (done.load() < kTasks) {
            if (!pool.tryRunOneTask())
                std::this_thread::yield();
        }
        EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
    }
}

} // namespace
} // namespace exec
} // namespace nanobus
