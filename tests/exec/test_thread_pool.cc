/**
 * @file
 * ThreadPool unit tests: serial-inline mode, task accounting, caller
 * participation (steal counting), drain-on-destruction, and the
 * NANOBUS_THREADS sizing rule.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <thread>

#include "exec/thread_pool.hh"

namespace nanobus {
namespace {

/** Scoped NANOBUS_THREADS override that restores the prior value. */
class ScopedThreadsEnv
{
  public:
    explicit ScopedThreadsEnv(const char *value)
    {
        const char *prev = std::getenv("NANOBUS_THREADS");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        if (value)
            ::setenv("NANOBUS_THREADS", value, 1);
        else
            ::unsetenv("NANOBUS_THREADS");
    }

    ~ScopedThreadsEnv()
    {
        if (had_prev_)
            ::setenv("NANOBUS_THREADS", prev_.c_str(), 1);
        else
            ::unsetenv("NANOBUS_THREADS");
    }

  private:
    bool had_prev_ = false;
    std::string prev_;
};

TEST(ThreadPool, SizeOneRunsTasksInlineOnCaller)
{
    exec::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);

    std::thread::id task_thread;
    bool saw_pool_thread = false;
    pool.submit([&] {
        task_thread = std::this_thread::get_id();
        saw_pool_thread = exec::ThreadPool::onPoolThread();
    });

    // Inline: same thread, already finished when submit returns, and
    // marked as a pool task while running (nested-region policy).
    EXPECT_EQ(task_thread, std::this_thread::get_id());
    EXPECT_TRUE(saw_pool_thread);
    EXPECT_FALSE(exec::ThreadPool::onPoolThread());
    EXPECT_EQ(pool.counters().tasks_run, 1u);
    EXPECT_EQ(pool.counters().steals, 0u);
}

TEST(ThreadPool, SizeClampsToAtLeastOne)
{
    exec::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    int ran = 0;
    pool.submit([&] { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    exec::ThreadPool pool(4);
    std::promise<void> done;
    std::atomic<int> remaining{kTasks};
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            ran.fetch_add(1);
            if (remaining.fetch_sub(1) == 1)
                done.set_value();
        });
    }
    done.get_future().wait();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_GE(pool.counters().tasks_run,
              static_cast<uint64_t>(kTasks));
}

TEST(ThreadPool, CallerPopsCountAsSteals)
{
    exec::ThreadPool pool(2); // one worker
    std::atomic<bool> worker_parked{false};
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());

    // Park the single worker inside a task so only the caller can
    // drain what we queue next.
    pool.submit([&] {
        worker_parked = true;
        gate.wait();
    });
    while (!worker_parked.load())
        std::this_thread::yield();

    const exec::ExecCounters before = pool.counters();
    std::atomic<int> ran{0};
    constexpr int kTasks = 4;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    while (pool.tryRunOneTask())
        ;
    release.set_value();

    EXPECT_EQ(ran.load(), kTasks);
    const exec::ExecCounters delta = pool.counters() - before;
    // The caller has no home deque, so each of its pops is a steal.
    EXPECT_EQ(delta.tasks_run, static_cast<uint64_t>(kTasks));
    EXPECT_EQ(delta.steals, static_cast<uint64_t>(kTasks));
}

TEST(ThreadPool, TryRunOneTaskReportsEmpty)
{
    exec::ThreadPool pool(2);
    EXPECT_FALSE(pool.tryRunOneTask());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(3);
        std::atomic<bool> parked{false};
        std::promise<void> release;
        std::shared_future<void> gate(release.get_future());
        // Hold one worker so a backlog builds up, then let the
        // destructor drain it.
        pool.submit([&, gate] {
            parked = true;
            gate.wait();
        });
        while (!parked.load())
            std::this_thread::yield();
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        release.set_value();
    } // ~ThreadPool: queued tasks still run, workers join
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, OnPoolThreadTrueInsideWorkerTask)
{
    exec::ThreadPool pool(2);
    std::promise<bool> seen;
    pool.submit(
        [&] { seen.set_value(exec::ThreadPool::onPoolThread()); });
    EXPECT_TRUE(seen.get_future().get());
    EXPECT_FALSE(exec::ThreadPool::onPoolThread());
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment)
{
    {
        ScopedThreadsEnv env("3");
        EXPECT_EQ(exec::ThreadPool::defaultThreads(), 3u);
    }
    {
        // Absurd values clamp to the hard ceiling.
        ScopedThreadsEnv env("99999");
        EXPECT_EQ(exec::ThreadPool::defaultThreads(),
                  exec::ThreadPool::kMaxThreads);
    }
    {
        // Garbage falls back to hardware concurrency (>= 1).
        ScopedThreadsEnv env("not-a-number");
        EXPECT_GE(exec::ThreadPool::defaultThreads(), 1u);
    }
    {
        ScopedThreadsEnv env(nullptr);
        EXPECT_GE(exec::ThreadPool::defaultThreads(), 1u);
    }
}

TEST(ThreadPool, CountersDeltaSubtraction)
{
    exec::ExecCounters a{10, 4};
    exec::ExecCounters b{3, 1};
    exec::ExecCounters d = a - b;
    EXPECT_EQ(d.tasks_run, 7u);
    EXPECT_EQ(d.steals, 3u);
}

} // anonymous namespace
} // namespace nanobus
