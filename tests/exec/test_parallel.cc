/**
 * @file
 * parallelFor / parallelReduce tests: exact coverage, fixed chunk
 * boundaries, serial-by-policy nesting, exception propagation, and
 * the determinism contract (bit-identical results at every pool
 * size; reduction matching a flat std::accumulate when the additions
 * are exact).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"

namespace nanobus {
namespace {

TEST(Parallel, ChunkGrainDefaultRule)
{
    // Default: smallest grain keeping <= kDefaultMaxChunks chunks.
    EXPECT_EQ(exec::chunkGrain(10, 0), 1u);
    EXPECT_EQ(exec::chunkGrain(64, 0), 1u);
    EXPECT_EQ(exec::chunkGrain(65, 0), 2u);
    EXPECT_EQ(exec::chunkGrain(1000, 0), 16u);
    // Explicit grains pass through.
    EXPECT_EQ(exec::chunkGrain(1000, 7), 7u);
    // Degenerate inputs stay sane.
    EXPECT_EQ(exec::chunkGrain(0, 0), 1u);
}

TEST(Parallel, ChunkCountRule)
{
    EXPECT_EQ(exec::chunkCount(10, 3), 4u);
    EXPECT_EQ(exec::chunkCount(9, 3), 3u);
    EXPECT_EQ(exec::chunkCount(0, 3), 0u);
    EXPECT_EQ(exec::chunkCount(5, 0), 0u);
}

TEST(Parallel, ForCoversRangeExactlyOnce)
{
    constexpr size_t kN = 1000;
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(kN);
    exec::parallelFor(
        pool, kN,
        [&](size_t begin, size_t end) {
            ASSERT_LT(begin, end);
            ASSERT_LE(end, kN);
            // Chunk boundaries are multiples of the grain.
            EXPECT_EQ(begin % 7, 0u);
            for (size_t i = begin; i < end; ++i)
                hits[i].fetch_add(1);
        },
        7);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ForEmptyRangeNeverCallsBody)
{
    exec::ThreadPool pool(4);
    bool called = false;
    exec::parallelFor(pool, 0, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, ForSerialOnPoolOfOne)
{
    exec::ThreadPool pool(1);
    const std::thread::id main_id = std::this_thread::get_id();
    size_t next_begin = 0;
    exec::parallelFor(
        pool, 100,
        [&](size_t begin, size_t end) {
            // Inline, on the caller, in ascending order.
            EXPECT_EQ(std::this_thread::get_id(), main_id);
            EXPECT_EQ(begin, next_begin);
            next_begin = end;
        },
        10);
    EXPECT_EQ(next_begin, 100u);
}

TEST(Parallel, NestedForRunsSerialOnSameThread)
{
    exec::ThreadPool pool(4);
    std::atomic<int> mismatches{0};
    exec::parallelFor(
        pool, 8,
        [&](size_t begin, size_t end) {
            const std::thread::id outer = std::this_thread::get_id();
            for (size_t i = begin; i < end; ++i) {
                // Nested region: serial by policy, so every inner
                // chunk runs right here on the outer task's thread.
                exec::parallelFor(
                    pool, 16,
                    [&](size_t, size_t) {
                        if (std::this_thread::get_id() != outer)
                            mismatches.fetch_add(1);
                    },
                    1);
            }
        },
        1);
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(Parallel, ForPropagatesBodyException)
{
    exec::ThreadPool pool(4);
    std::atomic<int> ran{0};
    auto batch = [&] {
        exec::parallelFor(
            pool, 10,
            [&](size_t begin, size_t) {
                ran.fetch_add(1);
                if (begin == 3)
                    throw std::runtime_error("chunk 3 failed");
            },
            1);
    };
    EXPECT_THROW(batch(), std::runtime_error);

    // The batch drained (no stuck tasks) and the pool stays usable.
    std::atomic<int> after{0};
    exec::parallelFor(
        pool, 10, [&](size_t, size_t) { after.fetch_add(1); }, 1);
    EXPECT_EQ(after.load(), 10);
}

TEST(Parallel, ChunkBoundariesIndependentOfPoolSize)
{
    using Chunk = std::pair<size_t, size_t>;
    auto boundaries = [](unsigned threads) {
        exec::ThreadPool pool(threads);
        std::mutex mutex;
        std::vector<Chunk> chunks;
        exec::parallelFor(pool, 1234, [&](size_t begin, size_t end) {
            std::lock_guard<std::mutex> lock(mutex);
            chunks.emplace_back(begin, end);
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const std::vector<Chunk> serial = boundaries(1);
    EXPECT_EQ(serial, boundaries(2));
    EXPECT_EQ(serial, boundaries(5));
    EXPECT_LE(serial.size(), exec::kDefaultMaxChunks);
}

TEST(Parallel, ReduceMatchesFlatAccumulateOnExactSums)
{
    // Satellite requirement: parallel_reduce vs serial
    // std::accumulate on 1e6 elements. Integer-valued doubles keep
    // every partial sum exactly representable, so the chunked
    // reduction must match the flat left fold bit for bit.
    constexpr size_t kN = 1000000;
    std::vector<double> values(kN);
    for (size_t i = 0; i < kN; ++i)
        values[i] = static_cast<double>((i * 7) % 1000);

    const double flat =
        std::accumulate(values.begin(), values.end(), 0.0);

    exec::ThreadPool pool(4);
    const double chunked = exec::parallelReduce(
        pool, kN, 0.0,
        [&](size_t begin, size_t end) {
            return std::accumulate(values.begin() +
                                       static_cast<ptrdiff_t>(begin),
                                   values.begin() +
                                       static_cast<ptrdiff_t>(end),
                                   0.0);
        },
        [](double acc, double partial) { return acc + partial; });

    EXPECT_EQ(chunked, flat); // exact, not EXPECT_NEAR
}

TEST(Parallel, ReduceBitIdenticalAcrossPoolSizes)
{
    // Rounding-sensitive values: 1/(i+1) sums differently under any
    // reordering, so bit-equality here proves the reduction order is
    // a pure function of (n, grain), not of the thread count.
    constexpr size_t kN = 100000;
    std::vector<double> values(kN);
    for (size_t i = 0; i < kN; ++i)
        values[i] = 1.0 / static_cast<double>(i + 1);

    auto reduceWith = [&](unsigned threads) {
        exec::ThreadPool pool(threads);
        return exec::parallelReduce(
            pool, kN, 0.0,
            [&](size_t begin, size_t end) {
                double s = 0.0;
                for (size_t i = begin; i < end; ++i)
                    s += values[i];
                return s;
            },
            [](double acc, double partial) { return acc + partial; });
    };

    const double serial = reduceWith(1);
    const double two = reduceWith(2);
    const double five = reduceWith(5);
    EXPECT_EQ(std::memcmp(&serial, &two, sizeof serial), 0);
    EXPECT_EQ(std::memcmp(&serial, &five, sizeof serial), 0);
}

TEST(Parallel, ReduceEmptyRangeReturnsInit)
{
    exec::ThreadPool pool(4);
    const double r = exec::parallelReduce(
        pool, 0, 42.0, [](size_t, size_t) { return 0.0; },
        [](double acc, double p) { return acc + p; });
    EXPECT_EQ(r, 42.0);
}

} // anonymous namespace
} // namespace nanobus
