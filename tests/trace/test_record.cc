/**
 * @file
 * Tests for trace records and the vector source.
 */

#include <gtest/gtest.h>

#include "trace/record.hh"

namespace nanobus {
namespace {

TEST(TraceRecord, KindNames)
{
    EXPECT_STREQ(accessKindName(AccessKind::InstructionFetch),
                 "ifetch");
    EXPECT_STREQ(accessKindName(AccessKind::Load), "load");
    EXPECT_STREQ(accessKindName(AccessKind::Store), "store");
}

TEST(TraceRecord, Equality)
{
    TraceRecord a{10, 0x1000, AccessKind::Load};
    TraceRecord b{10, 0x1000, AccessKind::Load};
    TraceRecord c{10, 0x1004, AccessKind::Load};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(VectorTraceSource, YieldsAllInOrder)
{
    std::vector<TraceRecord> records = {
        {0, 0x100, AccessKind::InstructionFetch},
        {0, 0x2000, AccessKind::Load},
        {1, 0x104, AccessKind::InstructionFetch},
    };
    VectorTraceSource source(records);
    TraceRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(source.next(out));
        EXPECT_EQ(out, expected);
    }
    EXPECT_FALSE(source.next(out));
    // Exhausted sources stay exhausted.
    EXPECT_FALSE(source.next(out));
}

TEST(VectorTraceSource, RewindRestarts)
{
    VectorTraceSource source({{5, 0xa, AccessKind::Store}});
    TraceRecord out;
    ASSERT_TRUE(source.next(out));
    ASSERT_FALSE(source.next(out));
    source.rewind();
    ASSERT_TRUE(source.next(out));
    EXPECT_EQ(out.cycle, 5u);
}

TEST(VectorTraceSource, EmptyIsImmediatelyExhausted)
{
    VectorTraceSource source({});
    TraceRecord out;
    EXPECT_FALSE(source.next(out));
}

} // anonymous namespace
} // namespace nanobus
