/**
 * @file
 * Tests for the benchmark profile table.
 */

#include <gtest/gtest.h>

#include "trace/profile.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(Profile, AllEightBenchmarksPresent)
{
    const auto &names = allBenchmarkNames();
    ASSERT_EQ(names.size(), 8u);
    for (const auto &name : names) {
        const BenchmarkProfile &p = benchmarkProfile(name);
        EXPECT_EQ(p.name, name);
        EXPECT_NO_THROW(p.validate());
    }
}

TEST(Profile, IntegerFloatSplitMatchesPaper)
{
    EXPECT_EQ(integerBenchmarkNames(),
              (std::vector<std::string>{"eon", "crafty", "twolf",
                                        "mcf"}));
    EXPECT_EQ(floatingPointBenchmarkNames(),
              (std::vector<std::string>{"applu", "swim", "art",
                                        "ammp"}));
    for (const auto &name : integerBenchmarkNames())
        EXPECT_FALSE(benchmarkProfile(name).floating_point) << name;
    for (const auto &name : floatingPointBenchmarkNames())
        EXPECT_TRUE(benchmarkProfile(name).floating_point) << name;
}

TEST(Profile, FloatingPointBranchesLessThanInteger)
{
    // FP codes are loop-dominated with sparse control flow.
    double max_fp_branch = 0.0, min_int_branch = 1.0;
    for (const auto &name : floatingPointBenchmarkNames())
        max_fp_branch = std::max(max_fp_branch,
                                 benchmarkProfile(name).branch_prob);
    for (const auto &name : integerBenchmarkNames())
        min_int_branch = std::min(min_int_branch,
                                  benchmarkProfile(name).branch_prob);
    EXPECT_LT(max_fp_branch, min_int_branch);
}

TEST(Profile, McfIsThePointerChaser)
{
    const BenchmarkProfile &mcf = benchmarkProfile("mcf");
    for (const auto &name : allBenchmarkNames()) {
        if (name == "mcf")
            continue;
        EXPECT_GE(mcf.pointer_chase_prob,
                  benchmarkProfile(name).pointer_chase_prob) << name;
        EXPECT_GE(mcf.data_footprint,
                  benchmarkProfile(name).data_footprint) << name;
    }
}

TEST(Profile, SwimIsTheMostRegularStreamer)
{
    const BenchmarkProfile &swim = benchmarkProfile("swim");
    EXPECT_LE(swim.pointer_chase_prob, 0.02);
    EXPECT_GE(swim.num_streams, 6u);
    EXPECT_GE(swim.loop_prob, 0.85);
}

TEST(Profile, UnknownNameIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(benchmarkProfile("gcc"), FatalError);
    setAbortOnError(true);
}

TEST(Profile, ValidationCatchesBadValues)
{
    setAbortOnError(false);
    BenchmarkProfile p = benchmarkProfile("eon");

    BenchmarkProfile bad = p;
    bad.branch_prob = 1.5;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = p;
    bad.load_prob = 0.7;
    bad.store_prob = 0.5; // sums past 1
    EXPECT_THROW(bad.validate(), FatalError);

    bad = p;
    bad.stream_stride = 6; // not a multiple of 4
    EXPECT_THROW(bad.validate(), FatalError);

    bad = p;
    bad.num_streams = 0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = p;
    bad.loop_body_mean = 0.5;
    EXPECT_THROW(bad.validate(), FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
