/**
 * @file
 * Transient-fault recovery seams in the trace layer: an injected
 * TransientIo fault surfaces from BatchReader/PrefetchReader as a
 * latched ErrorCode::IoError, restart() clears the latch so a
 * retried job can re-read its trace, and TraceReader::reopen()
 * rewinds a file reader to a pristine start-of-trace state. Before
 * restart()/reopen() existed, one transient fill failure latched the
 * prefetch reader permanently — the retry path could never succeed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "trace/batch.hh"
#include "trace/io.hh"
#include "util/faultinject.hh"

namespace nanobus {
namespace {

std::vector<TraceRecord>
makeRecords(uint64_t n)
{
    std::vector<TraceRecord> records;
    for (uint64_t c = 0; c < n; ++c) {
        AccessKind kind = (c & 1) ? AccessKind::Load
                                  : AccessKind::InstructionFetch;
        records.push_back({c, static_cast<uint32_t>(c * 2654435761u),
                           kind});
    }
    return records;
}

/** Drain `source` to exhaustion, appending every record. */
Status
drain(BatchSource &source, std::vector<TraceRecord> &out)
{
    for (;;) {
        Result<RecordBatch> batch = source.nextBatch();
        if (!batch.ok())
            return batch.error();
        if (batch.value().empty())
            return Status();
        for (const TraceRecord &record : batch.value())
            out.push_back(record);
    }
}

class BatchRecoveryTest : public ::testing::Test
{
  protected:
    std::string path_ =
        ::testing::TempDir() + "/nanobus_batch_recovery_trace.txt";

    void SetUp() override { FaultInjector::instance().reset(); }

    void TearDown() override
    {
        FaultInjector::instance().reset();
        std::remove(path_.c_str());
    }

    void writeTrace(const std::vector<TraceRecord> &records)
    {
        TraceWriter writer(path_);
        for (const TraceRecord &record : records)
            writer.write(record);
        writer.flush();
    }
};

TEST_F(BatchRecoveryTest, BatchReaderLatchesInjectedIoError)
{
    std::vector<TraceRecord> records = makeRecords(100);
    VectorTraceSource source(records);
    BatchReader reader(source, /*batch_size=*/32);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 2);
    Result<RecordBatch> first = reader.nextBatch();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().size(), 32u);

    Result<RecordBatch> second = reader.nextBatch();
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::IoError);
    // The error is latched: asking again reports it again.
    Result<RecordBatch> third = reader.nextBatch();
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(third.error().code, ErrorCode::IoError);
}

TEST_F(BatchRecoveryTest, BatchReaderRestartAfterRewindRecovers)
{
    std::vector<TraceRecord> records = makeRecords(100);
    VectorTraceSource source(records);
    BatchReader reader(source, /*batch_size=*/32);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 1);
    ASSERT_FALSE(reader.nextBatch().ok());
    FaultInjector::instance().reset();

    // The retry seam: rewind the source, restart the batcher, and
    // the full stream comes through intact.
    source.rewind();
    reader.restart();
    std::vector<TraceRecord> replayed;
    ASSERT_TRUE(drain(reader, replayed).ok());
    EXPECT_EQ(replayed, records);
}

TEST_F(BatchRecoveryTest, PrefetchReaderLatchesInjectedIoError)
{
    std::vector<TraceRecord> records = makeRecords(200);
    for (unsigned pool_size : {1u, 4u}) {
        FaultInjector::instance().reset();
        exec::ThreadPool pool(pool_size);
        VectorTraceSource source(records);
        FaultInjector::instance().armCallFault(
            FaultSite::TransientIo, 1, 1);
        PrefetchReader reader(source, pool, /*batch_size=*/64);
        Result<RecordBatch> batch = reader.nextBatch();
        ASSERT_FALSE(batch.ok()) << "pool=" << pool_size;
        EXPECT_EQ(batch.error().code, ErrorCode::IoError);
        ASSERT_FALSE(reader.nextBatch().ok());
        FaultInjector::instance().reset();
    }
}

TEST_F(BatchRecoveryTest, PrefetchReaderRestartAfterRewindRecovers)
{
    std::vector<TraceRecord> records = makeRecords(300);
    for (unsigned pool_size : {1u, 4u}) {
        FaultInjector::instance().reset();
        exec::ThreadPool pool(pool_size);
        VectorTraceSource source(records);
        FaultInjector::instance().armCallFault(
            FaultSite::TransientIo, 2);
        PrefetchReader reader(source, pool, /*batch_size=*/64);

        std::vector<TraceRecord> replayed;
        Status drained = drain(reader, replayed);
        ASSERT_FALSE(drained.ok()) << "pool=" << pool_size;
        EXPECT_EQ(drained.error().code, ErrorCode::IoError);
        FaultInjector::instance().reset();

        source.rewind();
        reader.restart();
        replayed.clear();
        ASSERT_TRUE(drain(reader, replayed).ok())
            << "pool=" << pool_size;
        EXPECT_EQ(replayed, records);
    }
}

TEST_F(BatchRecoveryTest, TraceReaderReopenRewindsToStart)
{
    std::vector<TraceRecord> records = makeRecords(50);
    writeTrace(records);
    TraceReader reader(path_);

    TraceRecord record;
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(reader.next(record));
    ASSERT_TRUE(reader.reopen().ok());
    EXPECT_EQ(reader.linesRead(), 0u);
    EXPECT_EQ(reader.skippedLines(), 0u);

    std::vector<TraceRecord> replayed;
    while (reader.next(record))
        replayed.push_back(record);
    EXPECT_EQ(replayed, records);
}

TEST_F(BatchRecoveryTest, ReopenOfDeletedFileIsIoErrorNotFatal)
{
    writeTrace(makeRecords(10));
    TraceReader reader(path_);
    std::remove(path_.c_str());
    Status reopened = reader.reopen();
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.error().code, ErrorCode::IoError);
}

TEST_F(BatchRecoveryTest, ReaderReopenPlusRestartRetriesFileTrace)
{
    // End-to-end retry seam over a real file: injected fill fault,
    // then reopen() + restart(), then a bit-exact full replay.
    std::vector<TraceRecord> records = makeRecords(150);
    writeTrace(records);
    TraceReader source(path_);
    BatchReader reader(source, /*batch_size=*/40);

    FaultInjector::instance().armCallFault(FaultSite::TransientIo, 2);
    std::vector<TraceRecord> replayed;
    ASSERT_FALSE(drain(reader, replayed).ok());
    FaultInjector::instance().reset();

    ASSERT_TRUE(source.reopen().ok());
    reader.restart();
    replayed.clear();
    ASSERT_TRUE(drain(reader, replayed).ok());
    EXPECT_EQ(replayed, records);
}

} // anonymous namespace
} // namespace nanobus
