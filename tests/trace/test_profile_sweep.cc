/**
 * @file
 * Parameterized characterization sweep over all eight benchmark
 * profiles: every profile must produce well-formed, deterministic
 * streams whose measured statistics track its parameters.
 */

#include <gtest/gtest.h>

#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

namespace nanobus {
namespace {

class ProfileSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile &profile() const
    {
        return benchmarkProfile(GetParam());
    }

    TraceStatistics
    characterize(uint64_t cycles, uint64_t seed = 5) const
    {
        SyntheticCpu cpu(profile(), seed, cycles);
        TraceStatistics stats;
        stats.consume(cpu);
        return stats;
    }
};

TEST_P(ProfileSweep, DutyCycleTracksProfile)
{
    const uint64_t cycles = 100000;
    TraceStatistics stats = characterize(cycles);
    double load_rate = static_cast<double>(stats.loads()) / cycles;
    double store_rate = static_cast<double>(stats.stores()) / cycles;
    EXPECT_NEAR(load_rate, profile().load_prob, 0.02);
    EXPECT_NEAR(store_rate, profile().store_prob, 0.02);
}

TEST_P(ProfileSweep, OneFetchPerCycle)
{
    const uint64_t cycles = 50000;
    TraceStatistics stats = characterize(cycles);
    EXPECT_EQ(stats.instruction().transactions, cycles);
}

TEST_P(ProfileSweep, InstructionStreamIsLowHamming)
{
    // The property the paper's encoding conclusions rest on.
    TraceStatistics stats = characterize(100000);
    EXPECT_GT(stats.instruction().hamming.mean(), 1.0);
    EXPECT_LT(stats.instruction().hamming.mean(), 6.0);
}

TEST_P(ProfileSweep, DataStreamHammingExceedsInstructionStream)
{
    // Stack/heap alternation and pointer chasing make data
    // addresses jumpier than fetch addresses for every benchmark.
    TraceStatistics stats = characterize(100000);
    EXPECT_GT(stats.data().hamming.mean(),
              stats.instruction().hamming.mean());
}

TEST_P(ProfileSweep, DataIdleFractionComplementsDutyCycle)
{
    TraceStatistics stats = characterize(100000);
    double duty = profile().load_prob + profile().store_prob;
    EXPECT_NEAR(stats.dataIdleFraction(), 1.0 - duty, 0.03);
}

TEST_P(ProfileSweep, DeterministicAcrossRuns)
{
    TraceStatistics a = characterize(20000, 9);
    TraceStatistics b = characterize(20000, 9);
    EXPECT_EQ(a.loads(), b.loads());
    EXPECT_EQ(a.stores(), b.stores());
    EXPECT_DOUBLE_EQ(a.instruction().hamming.mean(),
                     b.instruction().hamming.mean());
    EXPECT_DOUBLE_EQ(a.data().hamming.mean(),
                     b.data().hamming.mean());
}

TEST_P(ProfileSweep, AlignedAddressesOnly)
{
    SyntheticCpu cpu(profile(), 11, 20000);
    TraceRecord r;
    while (cpu.next(r))
        EXPECT_EQ(r.address % 4, 0u);
}

TEST_P(ProfileSweep, LowOrderBitsCarryMostActivity)
{
    // Address streams concentrate activity in low-order bits — the
    // structural fact behind Fig 3's encoding results.
    TraceStatistics stats = characterize(100000);
    const auto &ia = stats.instruction();
    double low = ia.bitActivity(2) + ia.bitActivity(3) +
        ia.bitActivity(4);
    double high = ia.bitActivity(24) + ia.bitActivity(25) +
        ia.bitActivity(26);
    EXPECT_GT(low, 5.0 * high);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileSweep,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &info) { return info.param; });

} // anonymous namespace
} // namespace nanobus
