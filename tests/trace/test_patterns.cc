/**
 * @file
 * Tests for the stress-pattern trace sources.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/patterns.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

TEST(Patterns, NamesAndEnumeration)
{
    EXPECT_EQ(allStressPatterns().size(), 5u);
    for (StressPattern p : allStressPatterns())
        EXPECT_STRNE(stressPatternName(p), "?");
}

TEST(Patterns, EmitsExactlyRequestedCycles)
{
    PatternTraceSource source(StressPattern::AlternatingAll, 8, 100);
    TraceRecord r;
    uint64_t count = 0;
    while (source.next(r)) {
        EXPECT_EQ(r.cycle, count);
        EXPECT_EQ(r.kind, AccessKind::Load);
        ++count;
    }
    EXPECT_EQ(count, 100u);
}

TEST(Patterns, AlternatingAllTogglesEveryLine)
{
    PatternTraceSource source(StressPattern::AlternatingAll, 16, 10);
    uint32_t w0 = source.wordAt(0);
    uint32_t w1 = source.wordAt(1);
    EXPECT_EQ((w0 ^ w1) & 0xffff, 0xffffu);
    EXPECT_EQ(w0, 0x5555u);
    EXPECT_EQ(w1, 0xaaaau);
}

TEST(Patterns, CentreToggleMovesOnlyTheCentreLine)
{
    PatternTraceSource source(StressPattern::CentreToggle, 9, 10);
    uint32_t w0 = source.wordAt(0);
    uint32_t w1 = source.wordAt(1);
    EXPECT_EQ(popcount(w0 ^ w1), 1u);
    EXPECT_TRUE(bitOf(w1, 4));
    EXPECT_FALSE(bitOf(w0, 4));
    // Neighbors held high throughout.
    for (unsigned i = 0; i < 9; ++i) {
        if (i != 4) {
            EXPECT_TRUE(bitOf(w0, i)) << i;
            EXPECT_TRUE(bitOf(w1, i)) << i;
        }
    }
}

TEST(Patterns, WalkingOneVisitsEveryLine)
{
    PatternTraceSource source(StressPattern::WalkingOne, 8, 16);
    std::set<uint32_t> words;
    for (uint64_t c = 0; c < 8; ++c) {
        uint32_t w = source.wordAt(c);
        EXPECT_EQ(popcount(w), 1u);
        words.insert(w);
    }
    EXPECT_EQ(words.size(), 8u);
    // Wraps around.
    EXPECT_EQ(source.wordAt(8), source.wordAt(0));
}

TEST(Patterns, HoldConstantNeverChanges)
{
    PatternTraceSource source(StressPattern::HoldConstant, 32, 10);
    uint32_t first = source.wordAt(0);
    for (uint64_t c = 1; c < 10; ++c)
        EXPECT_EQ(source.wordAt(c), first);
}

TEST(Patterns, RandomUniformIsDeterministicPerSeed)
{
    PatternTraceSource a(StressPattern::RandomUniform, 32, 50,
                         AccessKind::Load, 7);
    PatternTraceSource b(StressPattern::RandomUniform, 32, 50,
                         AccessKind::Load, 7);
    TraceRecord ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra, rb);
    }
}

TEST(Patterns, WordsRespectWidth)
{
    for (StressPattern p : allStressPatterns()) {
        PatternTraceSource source(p, 5, 64);
        TraceRecord r;
        while (source.next(r))
            EXPECT_EQ(r.address & ~0x1fu, 0u)
                << stressPatternName(p);
    }
}

TEST(Patterns, CustomAccessKind)
{
    PatternTraceSource source(StressPattern::WalkingOne, 8, 3,
                              AccessKind::InstructionFetch);
    TraceRecord r;
    ASSERT_TRUE(source.next(r));
    EXPECT_EQ(r.kind, AccessKind::InstructionFetch);
}

TEST(Patterns, BadWidthIsFatal)
{
    setAbortOnError(false);
    EXPECT_THROW(
        PatternTraceSource(StressPattern::WalkingOne, 0, 10),
        FatalError);
    EXPECT_THROW(
        PatternTraceSource(StressPattern::WalkingOne, 33, 10),
        FatalError);
    setAbortOnError(true);
}

} // anonymous namespace
} // namespace nanobus
