/**
 * @file
 * Tests for the synthetic SPEC-like CPU trace generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

namespace nanobus {
namespace {

TEST(Synthetic, OneFetchPerCycleInOrder)
{
    SyntheticCpu cpu(benchmarkProfile("eon"), 1, 10000);
    TraceRecord r;
    uint64_t expected_cycle = 0;
    uint64_t last_cycle = 0;
    while (cpu.next(r)) {
        EXPECT_GE(r.cycle, last_cycle);
        if (r.kind == AccessKind::InstructionFetch) {
            EXPECT_EQ(r.cycle, expected_cycle++);
        }
        last_cycle = r.cycle;
    }
    EXPECT_EQ(expected_cycle, 10000u);
}

TEST(Synthetic, BoundedStreamTerminates)
{
    SyntheticCpu cpu(benchmarkProfile("swim"), 1, 100);
    TraceRecord r;
    uint64_t count = 0;
    while (cpu.next(r))
        ++count;
    EXPECT_GE(count, 100u);       // at least the fetches
    EXPECT_LE(count, 200u);       // at most one data access each
    EXPECT_FALSE(cpu.next(r));
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticCpu a(benchmarkProfile("crafty"), 42, 5000);
    SyntheticCpu b(benchmarkProfile("crafty"), 42, 5000);
    TraceRecord ra, rb;
    while (true) {
        bool ga = a.next(ra);
        bool gb = b.next(rb);
        ASSERT_EQ(ga, gb);
        if (!ga)
            break;
        EXPECT_EQ(ra, rb);
    }
}

TEST(Synthetic, SeedsChangeTheStream)
{
    SyntheticCpu a(benchmarkProfile("crafty"), 1, 2000);
    SyntheticCpu b(benchmarkProfile("crafty"), 2, 2000);
    TraceRecord ra, rb;
    unsigned differing = 0;
    while (a.next(ra) && b.next(rb))
        differing += ra.address != rb.address;
    EXPECT_GT(differing, 100u);
}

TEST(Synthetic, AddressesAreWordAligned)
{
    SyntheticCpu cpu(benchmarkProfile("mcf"), 3, 20000);
    TraceRecord r;
    while (cpu.next(r))
        EXPECT_EQ(r.address % 4, 0u) << accessKindName(r.kind);
}

TEST(Synthetic, InstructionAddressesStayInCodeFootprint)
{
    const BenchmarkProfile &p = benchmarkProfile("eon");
    SyntheticCpu cpu(p, 5, 50000);
    TraceRecord r;
    while (cpu.next(r)) {
        if (r.kind != AccessKind::InstructionFetch)
            continue;
        EXPECT_GE(r.address, 0x00010000u);
        EXPECT_LT(r.address, 0x00010000u + p.code_footprint);
    }
}

TEST(Synthetic, DataAddressesAboveCode)
{
    SyntheticCpu cpu(benchmarkProfile("art"), 5, 50000);
    TraceRecord r;
    while (cpu.next(r)) {
        if (r.kind == AccessKind::InstructionFetch)
            continue;
        EXPECT_GE(r.address, 0x20000000u);
    }
}

TEST(Synthetic, LoadStoreDutyCycleMatchesProfile)
{
    const BenchmarkProfile &p = benchmarkProfile("swim");
    SyntheticCpu cpu(p, 7, 200000);
    TraceStatistics stats;
    stats.consume(cpu);
    double cycles = 200000.0;
    EXPECT_NEAR(static_cast<double>(stats.loads()) / cycles,
                p.load_prob, 0.01);
    EXPECT_NEAR(static_cast<double>(stats.stores()) / cycles,
                p.store_prob, 0.01);
}

TEST(Synthetic, InstructionStreamIsMostlySequential)
{
    // The key address-stream property behind the paper's encoding
    // results: consecutive instruction addresses have a tiny Hamming
    // distance (mostly +4 steps).
    SyntheticCpu cpu(benchmarkProfile("swim"), 9, 100000);
    TraceStatistics stats;
    stats.consume(cpu);
    EXPECT_LT(stats.instruction().hamming.mean(), 4.0);
    EXPECT_GT(stats.instruction().hamming.mean(), 1.0);
}

TEST(Synthetic, IntegerCodeBranchesMoreThanFpCode)
{
    auto mean_hamming = [](const char *bench) {
        SyntheticCpu cpu(benchmarkProfile(bench), 11, 100000);
        TraceStatistics stats;
        stats.consume(cpu);
        return stats.instruction().hamming.mean();
    };
    EXPECT_GT(mean_hamming("eon"), mean_hamming("swim"));
}

TEST(Synthetic, PointerChaserTouchesManyRegions)
{
    SyntheticCpu cpu(benchmarkProfile("mcf"), 13, 100000);
    TraceRecord r;
    std::set<uint32_t> regions;
    while (cpu.next(r)) {
        if (r.kind != AccessKind::InstructionFetch)
            regions.insert(r.address >> 27);
    }
    EXPECT_GE(regions.size(), 3u);
}

TEST(Synthetic, WarmUpAdvancesWithoutEmitting)
{
    SyntheticCpu cpu(benchmarkProfile("eon"), 17, 0);
    cpu.warmUp(5000);
    EXPECT_EQ(cpu.cycle(), 5000u);
    TraceRecord r;
    ASSERT_TRUE(cpu.next(r));
    EXPECT_EQ(r.cycle, 5000u);
    EXPECT_EQ(r.kind, AccessKind::InstructionFetch);
}

TEST(Synthetic, WarmedUpStreamDiffersFromColdStream)
{
    SyntheticCpu cold(benchmarkProfile("twolf"), 19, 0);
    SyntheticCpu warm(benchmarkProfile("twolf"), 19, 0);
    warm.warmUp(1000);
    TraceRecord rc, rw;
    ASSERT_TRUE(cold.next(rc));
    ASSERT_TRUE(warm.next(rw));
    EXPECT_NE(rc.cycle, rw.cycle);
}

TEST(IdleInjectorTest, StretchesTimeline)
{
    SyntheticCpu cpu(benchmarkProfile("swim"), 21, 3000);
    IdleInjector injector(cpu, 1000, 500);
    TraceRecord r;
    uint64_t max_cycle = 0;
    std::set<uint64_t> seen_cycles;
    while (injector.next(r)) {
        max_cycle = std::max(max_cycle, r.cycle);
        seen_cycles.insert(r.cycle);
    }
    // 3000 active cycles with 2 completed idle windows of 500.
    EXPECT_GE(max_cycle, 3500u);
    // No record may land inside an idle window
    // [1000, 1500) or [2500, 3000) on the stretched timeline.
    for (uint64_t c : seen_cycles) {
        bool in_gap = (c >= 1000 && c < 1500) ||
            (c >= 2500 && c < 3000);
        EXPECT_FALSE(in_gap) << "cycle " << c;
    }
}

TEST(IdleInjectorTest, PreservesOrder)
{
    SyntheticCpu cpu(benchmarkProfile("eon"), 23, 5000);
    IdleInjector injector(cpu, 700, 1300);
    TraceRecord r;
    uint64_t last = 0;
    while (injector.next(r)) {
        EXPECT_GE(r.cycle, last);
        last = r.cycle;
    }
}

} // anonymous namespace
} // namespace nanobus
