/**
 * @file
 * Tests for address-stream statistics.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"

namespace nanobus {
namespace {

TEST(BusStreamStatsTest, FirstAddressPrimesOnly)
{
    BusStreamStats s;
    s.add(0x1000);
    EXPECT_EQ(s.transactions, 1u);
    EXPECT_EQ(s.hamming.count(), 0u);
}

TEST(BusStreamStatsTest, HammingBetweenConsecutive)
{
    BusStreamStats s;
    s.add(0x0);
    s.add(0xf);     // 4 bits
    s.add(0xc);     // 2 bits
    EXPECT_EQ(s.hamming.count(), 2u);
    EXPECT_DOUBLE_EQ(s.hamming.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.hamming.max(), 4.0);
}

TEST(BusStreamStatsTest, BitTransitionsPerPosition)
{
    BusStreamStats s;
    s.add(0b000);
    s.add(0b001);   // bit 0 flips
    s.add(0b011);   // bit 1 flips
    s.add(0b010);   // bit 0 flips
    EXPECT_EQ(s.bit_transitions[0], 2u);
    EXPECT_EQ(s.bit_transitions[1], 1u);
    EXPECT_EQ(s.bit_transitions[2], 0u);
    EXPECT_DOUBLE_EQ(s.bitActivity(0), 2.0 / 3.0);
}

TEST(TraceStatisticsTest, RoutesKinds)
{
    TraceStatistics stats;
    stats.add({0, 0x100, AccessKind::InstructionFetch});
    stats.add({0, 0x2000, AccessKind::Load});
    stats.add({1, 0x104, AccessKind::InstructionFetch});
    stats.add({1, 0x2004, AccessKind::Store});
    EXPECT_EQ(stats.instruction().transactions, 2u);
    EXPECT_EQ(stats.data().transactions, 2u);
    EXPECT_EQ(stats.loads(), 1u);
    EXPECT_EQ(stats.stores(), 1u);
    EXPECT_EQ(stats.lastCycle(), 1u);
}

TEST(TraceStatisticsTest, DataIdleFraction)
{
    TraceStatistics stats;
    // 10 cycles (0..9), data transactions in 2 of them.
    for (uint64_t c = 0; c < 10; ++c)
        stats.add({c, static_cast<uint32_t>(0x100 + 4 * c),
                   AccessKind::InstructionFetch});
    stats.add({3, 0x2000, AccessKind::Load});
    stats.add({7, 0x2004, AccessKind::Store});
    EXPECT_DOUBLE_EQ(stats.dataIdleFraction(), 0.8);
}

TEST(TraceStatisticsTest, ConsumeDrainsSource)
{
    std::vector<TraceRecord> records;
    for (uint64_t c = 0; c < 100; ++c)
        records.push_back({c, static_cast<uint32_t>(4 * c),
                           AccessKind::InstructionFetch});
    VectorTraceSource source(records);
    TraceStatistics stats;
    stats.consume(source);
    EXPECT_EQ(stats.instruction().transactions, 100u);
    TraceRecord r;
    EXPECT_FALSE(source.next(r));
}

TEST(TraceStatisticsTest, SequentialStreamActivityConcentratedLow)
{
    // +4 stepping concentrates transitions in the low-order bits
    // (above the always-zero bits 0-1).
    TraceStatistics stats;
    for (uint64_t c = 0; c < 4096; ++c)
        stats.add({c, static_cast<uint32_t>(0x1000 + 4 * c),
                   AccessKind::InstructionFetch});
    const auto &instr = stats.instruction();
    EXPECT_EQ(instr.bit_transitions[0], 0u);
    EXPECT_EQ(instr.bit_transitions[1], 0u);
    EXPECT_GT(instr.bitActivity(2), 0.9);
    EXPECT_GT(instr.bitActivity(2), instr.bitActivity(6));
    EXPECT_GT(instr.bitActivity(6), instr.bitActivity(10));
}

} // anonymous namespace
} // namespace nanobus
