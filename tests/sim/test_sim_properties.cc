/**
 * @file
 * Invariant tests of the simulation pipeline: results must not
 * depend on bookkeeping choices like the interval length.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

class IntervalInvariance
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(IntervalInvariance, TotalEnergyIndependentOfIntervalLength)
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = GetParam();
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;

    TwinBusSimulator twin(tech130, config);
    SyntheticCpu cpu(benchmarkProfile("crafty"), 51, 50000);
    twin.run(cpu);

    // Reference: very fine intervals.
    BusSimConfig ref_config = config;
    ref_config.interval_cycles = 500;
    TwinBusSimulator ref(tech130, ref_config);
    SyntheticCpu ref_cpu(benchmarkProfile("crafty"), 51, 50000);
    ref.run(ref_cpu);

    EXPECT_DOUBLE_EQ(twin.instructionBus().totalEnergy().total().raw(),
                     ref.instructionBus().totalEnergy().total()
                         .raw());
    EXPECT_DOUBLE_EQ(twin.dataBus().totalEnergy().total().raw(),
                     ref.dataBus().totalEnergy().total().raw());
}

TEST_P(IntervalInvariance, SteadyTemperatureNearlyIndependent)
{
    // Temperature uses piecewise-constant interval powers, so only
    // near-equality is expected once the network is at steady state
    // under statistically stationary traffic.
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = GetParam();
    config.thermal.stack_mode = StackMode::None;

    BusSimulator sim(tech130, config);
    BusSimConfig ref_config = config;
    ref_config.interval_cycles = 500;
    BusSimulator ref(tech130, ref_config);

    for (uint64_t c = 0; c < 100000; ++c) {
        uint32_t word = (c & 1) ? 0x0f0f0f0f : 0xf0f0f0f0;
        sim.transmit(c, word);
        ref.transmit(c, word);
    }
    EXPECT_NEAR(sim.thermalNetwork().maxTemperature().raw(),
                ref.thermalNetwork().maxTemperature().raw(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Intervals, IntervalInvariance,
                         ::testing::Values(1000ull, 5000ull,
                                           20000ull, 50000ull),
                         [](const auto &info) {
                             return "interval" +
                                 std::to_string(info.param);
                         });

TEST(SimProperties, TransmissionsConserveAcrossEncoders)
{
    // Every scheme transmits exactly once per record, regardless of
    // the extra control lines.
    for (EncodingScheme scheme : paperSchemes()) {
        BusSimConfig config;
        config.scheme = scheme;
        config.record_samples = false;
        config.thermal.stack_mode = StackMode::None;
        TwinBusSimulator twin(tech130, config);
        SyntheticCpu cpu(benchmarkProfile("art"), 53, 10000);
        uint64_t records = twin.run(cpu);
        EXPECT_EQ(twin.instructionBus().transmissions() +
                      twin.dataBus().transmissions(),
                  records)
            << schemeName(scheme);
    }
}

TEST(SimProperties, SequentialExploitersBeatUnencodedOnIaBus)
{
    // T0 and offset coding exploit fetch sequentiality directly;
    // unlike the bus-invert family they must reduce IA energy.
    EnergyCell plain = runEnergyStudy("swim", tech130,
                                      EncodingScheme::Unencoded, 31,
                                      30000);
    for (EncodingScheme scheme :
         {EncodingScheme::T0, EncodingScheme::Offset}) {
        EnergyCell coded = runEnergyStudy("swim", tech130, scheme,
                                          31, 30000);
        EXPECT_LT(coded.instruction.total(),
                  plain.instruction.total())
            << schemeName(scheme);
    }
}

TEST(SimProperties, T0CollapsesSequentialIaEnergy)
{
    // In-stride runs freeze the T0 payload entirely: on the most
    // loop-dominated workload the IA bus energy collapses by an
    // order of magnitude.
    EnergyCell plain = runEnergyStudy("swim", tech130,
                                      EncodingScheme::Unencoded, 31,
                                      30000);
    EnergyCell t0 = runEnergyStudy("swim", tech130,
                                   EncodingScheme::T0, 31, 30000);
    EXPECT_LT(t0.instruction.total(),
              0.2 * plain.instruction.total());

    // Offset coding keeps the self-transition count of the backedge
    // diffs but turns them into same-direction runs, collapsing the
    // *coupling* component instead.
    EnergyCell offset = runEnergyStudy("swim", tech130,
                                       EncodingScheme::Offset, 31,
                                       30000);
    EXPECT_LT(offset.instruction.coupling,
              0.2 * plain.instruction.coupling);
}

TEST(SimProperties, GrayIsBlindToWordStrides)
{
    // A finding worth pinning: binary-reflected Gray only guarantees
    // single-bit steps for stride-1 sequences. Byte addresses stride
    // by 4, so Gray buys nothing on a raw instruction address bus
    // (real designs Gray-code the *word* address instead).
    EnergyCell plain = runEnergyStudy("swim", tech130,
                                      EncodingScheme::Unencoded, 31,
                                      30000);
    EnergyCell gray = runEnergyStudy("swim", tech130,
                                     EncodingScheme::Gray, 31,
                                     30000);
    EXPECT_NEAR(gray.instruction.total() / plain.instruction.total(),
                1.0, 0.10);
}

TEST(SimProperties, EncoderControlLinesCostShowsUpInWidth)
{
    BusSimConfig config;
    config.scheme = EncodingScheme::OddEvenBusInvert;
    BusSimulator sim(tech130, config);
    EXPECT_EQ(sim.busWidth(), 34u);
    EXPECT_EQ(sim.thermalNetwork().numWires(), 34u);
}

} // anonymous namespace
} // namespace nanobus
