/**
 * @file
 * Twin-bus checkpoint/resume tests: the kill-and-resume pin (a run
 * checkpointed mid-stream and resumed by a fresh simulator is
 * bit-identical to one that never stopped, for every encoder scheme
 * and at pool sizes 1/2/hw), in-memory snapshot round-trips, and the
 * negative paths — CRC damage, foreign container versions, missing
 * files, configuration mismatches, and trailing bytes are all
 * rejected with typed errors instead of resuming garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "sim/pipeline.hh"
#include "sim/snapshot.hh"
#include "trace/io.hh"
#include "trace/record.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

const std::vector<EncodingScheme> &
allSchemes()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Gray,
        EncodingScheme::T0,
        EncodingScheme::Offset,
    };
    return schemes;
}

BusSimConfig
simConfig(EncodingScheme scheme)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 16;
    // Small intervals so the replay straddles several interval
    // closes — the snapshot must carry the bookkeeping mid-flight.
    config.interval_cycles = 500;
    config.record_samples = true;
    return config;
}

std::vector<TraceRecord>
makeRecords(uint64_t n)
{
    std::vector<TraceRecord> records;
    uint32_t address = 0x1234u;
    for (uint64_t c = 0; c < n; ++c) {
        address = address * 1664525u + 1013904223u;
        AccessKind kind = (c % 3 == 0)
            ? AccessKind::InstructionFetch
            : ((c % 3 == 1) ? AccessKind::Load : AccessKind::Store);
        records.push_back({c, address, kind});
    }
    return records;
}

uint64_t
bitsOf(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

/** Everything observable about one bus, as double bit patterns. */
void
captureBus(const BusSimulator &bus, std::vector<uint64_t> &out)
{
    out.push_back(bitsOf(bus.totalEnergy().self.raw()));
    out.push_back(bitsOf(bus.totalEnergy().coupling.raw()));
    out.push_back(bus.transmissions());
    out.push_back(bus.currentCycle());
    for (double e : bus.lineEnergies())
        out.push_back(bitsOf(e));
    out.push_back(bus.samples().size());
    for (const IntervalSample &s : bus.samples()) {
        out.push_back(s.end_cycle);
        out.push_back(s.transmissions);
        out.push_back(bitsOf(s.energy.self.raw()));
        out.push_back(bitsOf(s.energy.coupling.raw()));
        out.push_back(bitsOf(s.avg_temperature.raw()));
        out.push_back(bitsOf(s.max_temperature.raw()));
        out.push_back(bitsOf(s.avg_current.raw()));
    }
    out.push_back(bus.thermalFaults().size());
}

std::vector<uint64_t>
fingerprint(const TwinBusSimulator &twin)
{
    std::vector<uint64_t> fp;
    captureBus(twin.instructionBus(), fp);
    captureBus(twin.dataBus(), fp);
    return fp;
}

/** Replay `records` through the pipeline under `config`. */
std::vector<uint64_t>
replay(const std::vector<TraceRecord> &records, EncodingScheme scheme,
       exec::ThreadPool &pool, const SimPipeline::Config &config,
       uint64_t *count = nullptr)
{
    TwinBusSimulator twin(tech130, simConfig(scheme));
    SimPipeline pipeline(twin, pool, config);
    VectorTraceSource source(records);
    Result<uint64_t> replayed = pipeline.run(source);
    EXPECT_TRUE(replayed.ok())
        << (replayed.ok() ? ""
                          : replayed.error().describe().c_str());
    if (count && replayed.ok())
        *count = replayed.value();
    return fingerprint(twin);
}

class SnapshotTest : public ::testing::Test
{
  protected:
    std::string ckpt_ =
        ::testing::TempDir() + "/nanobus_snapshot_test.ckpt";

    void TearDown() override { std::remove(ckpt_.c_str()); }

    void corruptByte(size_t offset)
    {
        std::ifstream in(ckpt_, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string file = buffer.str();
        in.close();
        ASSERT_LT(offset, file.size());
        file[offset] = static_cast<char>(file[offset] ^ 0x01);
        std::ofstream out(ckpt_,
                          std::ios::binary | std::ios::trunc);
        out.write(file.data(),
                  static_cast<std::streamsize>(file.size()));
    }
};

TEST_F(SnapshotTest, InMemoryRoundTripIsBitIdentical)
{
    std::vector<TraceRecord> records = makeRecords(1200);
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::BusInvert));
    VectorTraceSource source(records);
    twin.runPerRecord(source);

    Result<std::string> payload =
        encodeTwinSnapshot(twin, SimCheckpoint{1200, 1199});
    ASSERT_TRUE(payload.ok());

    TwinBusSimulator restored(tech130,
                              simConfig(EncodingScheme::BusInvert));
    SimCheckpoint cursor;
    ASSERT_TRUE(
        decodeTwinSnapshot(payload.value(), restored, cursor).ok());
    EXPECT_EQ(cursor.records, 1200u);
    EXPECT_EQ(cursor.last_cycle, 1199u);
    EXPECT_EQ(fingerprint(restored), fingerprint(twin));
}

TEST_F(SnapshotTest, KillAndResumeBitIdenticalAllSchemes)
{
    // The acceptance pin. A run killed after a checkpointed prefix
    // (simulated by replaying a truncated source with checkpointing
    // on) and resumed by a fresh simulator over the full stream must
    // match the uninterrupted run bit-for-bit — for every encoder
    // scheme, at pool sizes 1, 2, and hw.
    const std::vector<TraceRecord> records = makeRecords(2000);
    const std::vector<TraceRecord> prefix(records.begin(),
                                          records.begin() + 1100);
    std::vector<unsigned> pools = {1, 2};
    if (exec::ThreadPool::defaultThreads() > 2)
        pools.push_back(exec::ThreadPool::defaultThreads());

    for (EncodingScheme scheme : allSchemes()) {
        exec::ThreadPool reference_pool(1);
        SimPipeline::Config plain;
        plain.batch_size = 256;
        const std::vector<uint64_t> uninterrupted =
            replay(records, scheme, reference_pool, plain);

        for (unsigned pool_size : pools) {
            exec::ThreadPool pool(pool_size);

            // "Kill": replay only the prefix, checkpointing every
            // batch; the last checkpoint covers the whole prefix.
            SimPipeline::Config checkpointing = plain;
            checkpointing.checkpoint_path = ckpt_;
            checkpointing.checkpoint_every_batches = 1;
            replay(prefix, scheme, pool, checkpointing);

            // Resume over the full stream from the file.
            SimPipeline::Config resuming = plain;
            resuming.checkpoint_path = ckpt_;
            resuming.resume = true;
            uint64_t total = 0;
            const std::vector<uint64_t> resumed = replay(
                records, scheme, pool, resuming, &total);
            EXPECT_EQ(total, records.size())
                << schemeName(scheme) << " pool=" << pool_size;
            EXPECT_EQ(resumed, uninterrupted)
                << schemeName(scheme) << " pool=" << pool_size;
        }
    }
}

TEST_F(SnapshotTest, FileTraceKillAndResume)
{
    // Same pin over real trace files and TraceReader: the resumed
    // reader re-reads the prefix lines and skips them by count.
    const std::string full_path =
        ::testing::TempDir() + "/nanobus_snapshot_full.txt";
    const std::string prefix_path =
        ::testing::TempDir() + "/nanobus_snapshot_prefix.txt";
    const std::vector<TraceRecord> records = makeRecords(1500);
    {
        TraceWriter full(full_path);
        TraceWriter prefix(prefix_path);
        for (size_t i = 0; i < records.size(); ++i) {
            full.write(records[i]);
            if (i < 800)
                prefix.write(records[i]);
        }
        full.flush();
        prefix.flush();
    }

    exec::ThreadPool pool(2);
    const EncodingScheme scheme = EncodingScheme::BusInvert;
    SimPipeline::Config plain;
    plain.batch_size = 256;

    TwinBusSimulator oracle(tech130, simConfig(scheme));
    {
        TraceReader reader(full_path);
        SimPipeline pipeline(oracle, pool, plain);
        ASSERT_TRUE(pipeline.run(reader).ok());
    }

    SimPipeline::Config checkpointing = plain;
    checkpointing.checkpoint_path = ckpt_;
    checkpointing.checkpoint_every_batches = 1;
    {
        TwinBusSimulator killed(tech130, simConfig(scheme));
        TraceReader reader(prefix_path);
        SimPipeline pipeline(killed, pool, checkpointing);
        ASSERT_TRUE(pipeline.run(reader).ok());
    }

    SimPipeline::Config resuming = plain;
    resuming.checkpoint_path = ckpt_;
    resuming.resume = true;
    TwinBusSimulator resumed(tech130, simConfig(scheme));
    {
        TraceReader reader(full_path);
        SimPipeline pipeline(resumed, pool, resuming);
        Result<uint64_t> total = pipeline.run(reader);
        ASSERT_TRUE(total.ok());
        EXPECT_EQ(total.value(), records.size());
    }
    EXPECT_EQ(fingerprint(resumed), fingerprint(oracle));

    std::remove(full_path.c_str());
    std::remove(prefix_path.c_str());
}

TEST_F(SnapshotTest, ResumePastEndOfTraceIsInvalidArgument)
{
    // A checkpoint claiming more records than the trace holds means
    // the wrong (or truncated) trace was supplied; resuming must
    // fail loudly, not silently replay a different stream.
    const std::vector<TraceRecord> records = makeRecords(900);
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::Unencoded));
    ASSERT_TRUE(saveTwinCheckpoint(ckpt_, twin,
                                   SimCheckpoint{901, 900}).ok());

    exec::ThreadPool pool(1);
    SimPipeline::Config config;
    config.checkpoint_path = ckpt_;
    config.resume = true;
    TwinBusSimulator fresh(tech130,
                           simConfig(EncodingScheme::Unencoded));
    SimPipeline pipeline(fresh, pool, config);
    VectorTraceSource source(records);
    Result<uint64_t> run = pipeline.run(source);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.error().code, ErrorCode::InvalidArgument);
}

TEST_F(SnapshotTest, MissingCheckpointIsIoError)
{
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::BusInvert));
    Result<SimCheckpoint> loaded =
        loadTwinCheckpoint(ckpt_ + ".absent", twin);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::IoError);
}

TEST_F(SnapshotTest, CrcDamageIsParseError)
{
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::BusInvert));
    ASSERT_TRUE(
        saveTwinCheckpoint(ckpt_, twin, SimCheckpoint{}).ok());
    // Flip one payload bit past the 20-byte container header.
    corruptByte(24);
    TwinBusSimulator victim(tech130,
                            simConfig(EncodingScheme::BusInvert));
    Result<SimCheckpoint> loaded = loadTwinCheckpoint(ckpt_, victim);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotTest, ForeignContainerVersionIsParseError)
{
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::BusInvert));
    ASSERT_TRUE(
        saveTwinCheckpoint(ckpt_, twin, SimCheckpoint{}).ok());
    // Container version field: little-endian u32 at offset 4.
    corruptByte(4);
    TwinBusSimulator victim(tech130,
                            simConfig(EncodingScheme::BusInvert));
    Result<SimCheckpoint> loaded = loadTwinCheckpoint(ckpt_, victim);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::ParseError);
}

TEST_F(SnapshotTest, SchemeMismatchIsInvalidArgument)
{
    TwinBusSimulator saved(tech130,
                           simConfig(EncodingScheme::BusInvert));
    ASSERT_TRUE(
        saveTwinCheckpoint(ckpt_, saved, SimCheckpoint{}).ok());
    TwinBusSimulator other(tech130,
                           simConfig(EncodingScheme::Gray));
    Result<SimCheckpoint> loaded = loadTwinCheckpoint(ckpt_, other);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::InvalidArgument);
}

TEST_F(SnapshotTest, TrailingBytesAreParseError)
{
    TwinBusSimulator twin(tech130,
                          simConfig(EncodingScheme::Unencoded));
    Result<std::string> payload =
        encodeTwinSnapshot(twin, SimCheckpoint{});
    ASSERT_TRUE(payload.ok());
    std::string padded = payload.value() + '\0';
    TwinBusSimulator victim(tech130,
                            simConfig(EncodingScheme::Unencoded));
    SimCheckpoint cursor;
    Status decoded = decodeTwinSnapshot(padded, victim, cursor);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::ParseError);
}

} // anonymous namespace
} // namespace nanobus
