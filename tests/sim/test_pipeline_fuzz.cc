/**
 * @file
 * Randomized differential harness for the batched streaming pipeline:
 * every case draws a random trace shape (bursty, idle-gap, or
 * fault-injected), bus width, encoding scheme, transition kernel
 * (scalar or packed), batch size, pool size, and pinning policy,
 * replays it through SimPipeline, and requires the result to match
 * the per-record oracle BIT-identically (memcmp on the doubles — no
 * tolerance; the oracle runs the same kernel, and each kernel is
 * bit-identical to itself under any batching). Half the widths come
 * from a list straddling the packed kernel's 64-bit lane boundary.
 * Packed cases additionally run a *scalar* oracle and require the
 * totals to agree to FP rounding — the cross-kernel check that the
 * self-consistency pin alone cannot provide.
 *
 * Reproducing a failure: every case logs its seed via SCOPED_TRACE,
 * so a red run prints the exact seed. Replay just that case with
 *
 *   NANOBUS_FUZZ_SEED=<seed> ./tests/test_pipeline_fuzz \
 *       --gtest_filter='PipelineFuzz.*'
 *
 * NANOBUS_FUZZ_CASES overrides the case count (default 200; CI runs
 * the default, soak runs can turn it up).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "exec/topology.hh"
#include "fabric/bus_sim.hh"
#include "sim/experiment.hh"
#include "sim/pipeline.hh"
#include "trace/record.hh"
#include "util/random.hh"
#include "util/result.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
        std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(double)) == 0;
}

/** Compare every observable of the two twins bitwise. */
void
expectTwinsIdentical(const TwinBusSimulator &a,
                     const TwinBusSimulator &b)
{
    const BusSimulator *lhs[] = {&a.instructionBus(), &a.dataBus()};
    const BusSimulator *rhs[] = {&b.instructionBus(), &b.dataBus()};
    for (int bus = 0; bus < 2; ++bus) {
        SCOPED_TRACE(bus == 0 ? "instruction bus" : "data bus");
        EXPECT_EQ(lhs[bus]->transmissions(),
                  rhs[bus]->transmissions());
        EXPECT_EQ(lhs[bus]->currentCycle(), rhs[bus]->currentCycle());
        EXPECT_TRUE(sameBits(lhs[bus]->totalEnergy().self.raw(),
                             rhs[bus]->totalEnergy().self.raw()));
        EXPECT_TRUE(sameBits(lhs[bus]->totalEnergy().coupling.raw(),
                             rhs[bus]->totalEnergy().coupling.raw()));
        EXPECT_TRUE(sameBits(lhs[bus]->lineEnergies(),
                             rhs[bus]->lineEnergies()));
        EXPECT_EQ(lhs[bus]->thermalFaults().size(),
                  rhs[bus]->thermalFaults().size());
        ASSERT_EQ(lhs[bus]->samples().size(),
                  rhs[bus]->samples().size());
        for (size_t i = 0; i < lhs[bus]->samples().size(); ++i) {
            const IntervalSample &x = lhs[bus]->samples()[i];
            const IntervalSample &y = rhs[bus]->samples()[i];
            EXPECT_EQ(x.end_cycle, y.end_cycle);
            EXPECT_EQ(x.transmissions, y.transmissions);
            EXPECT_TRUE(sameBits(x.energy.self.raw(),
                                 y.energy.self.raw()));
            EXPECT_TRUE(sameBits(x.energy.coupling.raw(),
                                 y.energy.coupling.raw()));
            EXPECT_TRUE(sameBits(x.avg_temperature.raw(),
                                 y.avg_temperature.raw()));
            EXPECT_TRUE(sameBits(x.max_temperature.raw(),
                                 y.max_temperature.raw()));
            EXPECT_TRUE(sameBits(x.avg_current.raw(),
                                 y.avg_current.raw()));
        }
    }
}

// ----------------------------------------------------------------
// Case generation
// ----------------------------------------------------------------

enum class TraceShape { Bursty, IdleGap, FaultInjected };

const char *
traceShapeName(TraceShape shape)
{
    switch (shape) {
      case TraceShape::Bursty:
        return "bursty";
      case TraceShape::IdleGap:
        return "idle-gap";
      case TraceShape::FaultInjected:
        return "fault-injected";
    }
    return "?";
}

/** One randomly drawn differential case (pure function of the
 *  seed, so a logged seed replays the identical case). */
struct FuzzCase
{
    uint64_t seed = 0;
    TraceShape shape = TraceShape::Bursty;
    EncodingScheme scheme = EncodingScheme::Unencoded;
    TransitionKernel kernel = TransitionKernel::Scalar;
    unsigned width = 32;
    uint64_t interval_cycles = 500;
    size_t batch_size = 256;
    unsigned pool_size = 1;
    exec::PinPolicy pinning = exec::PinPolicy::None;
    bool prefetch = false;
    std::vector<TraceRecord> records;
    /** Source throws after this many records (FaultInjected only). */
    size_t fault_at = 0;

    std::string describe() const
    {
        return std::string("seed=") + std::to_string(seed) +
            " shape=" + traceShapeName(shape) +
            " scheme=" + schemeName(scheme) +
            " kernel=" + transitionKernelName(kernel) +
            " width=" + std::to_string(width) +
            " interval=" + std::to_string(interval_cycles) +
            " batch=" + std::to_string(batch_size) +
            " pool=" + std::to_string(pool_size) +
            " pinning=" + exec::pinPolicyName(pinning) +
            " prefetch=" + (prefetch ? "1" : "0") +
            " records=" + std::to_string(records.size()) +
            (shape == TraceShape::FaultInjected
                 ? " fault_at=" + std::to_string(fault_at)
                 : "");
    }
};

/** Random trace: bursts of back-to-back transactions separated by
 *  gaps whose scale depends on the shape. Cycles are strictly
 *  increasing; addresses mix strides and jumps so the bus-invert
 *  family exercises both branches. */
std::vector<TraceRecord>
makeTrace(Rng &rng, TraceShape shape, size_t n)
{
    std::vector<TraceRecord> records;
    records.reserve(n);
    uint64_t cycle = rng.below(100);
    uint32_t addr = static_cast<uint32_t>(rng.next());
    while (records.size() < n) {
        const uint64_t burst = 1 + rng.below(48);
        for (uint64_t i = 0; i < burst && records.size() < n; ++i) {
            AccessKind kind;
            const uint64_t k = rng.below(4);
            if (k < 2)
                kind = AccessKind::InstructionFetch;
            else if (k == 2)
                kind = AccessKind::Load;
            else
                kind = AccessKind::Store;
            records.push_back({cycle, addr, kind});
            cycle += 1 + rng.below(3);
            addr = rng.chance(0.7)
                ? addr + 4
                : static_cast<uint32_t>(rng.next());
        }
        // Gap until the next burst: idle-gap traces straddle several
        // interval closes while bursty ones stay mostly busy.
        cycle += shape == TraceShape::IdleGap
            ? 200 + rng.below(5000)
            : 1 + rng.below(60);
    }
    return records;
}

FuzzCase
makeCase(uint64_t seed)
{
    Rng rng(seed);
    FuzzCase c;
    c.seed = seed;

    const uint64_t shape_draw = rng.below(4);
    c.shape = shape_draw == 0 ? TraceShape::IdleGap
        : shape_draw == 1    ? TraceShape::FaultInjected
                             : TraceShape::Bursty;

    static const EncodingScheme schemes[] = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Gray,
        EncodingScheme::T0,
        EncodingScheme::Offset,
    };
    c.scheme = schemes[rng.below(7)];
    c.kernel = rng.chance(0.5) ? TransitionKernel::Packed
                               : TransitionKernel::Scalar;

    // Half the cases draw widths from a list straddling the packed
    // kernel's u64 lane boundary (encoders cap the payload at 62,
    // so 63/64/65/127 clamp there — with control lines the physical
    // bus then sits at 62..64 lines, right on the boundary). The
    // rest stay at <= 40: widths past the 32-bit addresses just
    // idle the top lines.
    if (rng.chance(0.5)) {
        static const unsigned lane_widths[] = {1,  31, 32, 33,
                                               63, 64, 65, 127};
        const unsigned drawn = lane_widths[rng.below(8)];
        c.width = drawn > 62 ? 62 : drawn;
    } else {
        c.width = static_cast<unsigned>(1 + rng.below(40));
    }
    c.interval_cycles = 50 + rng.below(1500);
    c.batch_size = static_cast<size_t>(1 + rng.below(2048));
    const unsigned pools[] = {1, 2, 4};
    c.pool_size = pools[rng.below(3)];
    const exec::PinPolicy policies[] = {exec::PinPolicy::None,
                                        exec::PinPolicy::Compact,
                                        exec::PinPolicy::Scatter};
    c.pinning = policies[rng.below(3)];
    c.prefetch = rng.chance(0.5);

    const size_t n = 100 + rng.below(1400);
    c.records = makeTrace(rng, c.shape, n);
    if (c.shape == TraceShape::FaultInjected)
        c.fault_at = 1 + rng.below(c.records.size());
    return c;
}

BusSimConfig
caseConfig(const FuzzCase &c)
{
    BusSimConfig config;
    config.scheme = c.scheme;
    config.data_width = c.width;
    config.interval_cycles = c.interval_cycles;
    config.kernel = c.kernel;
    config.record_samples = true;
    return config;
}

/** Source that throws after `limit` records, like a trace file
 *  truncated mid-stream. */
class FaultingSource : public TraceSource
{
  public:
    FaultingSource(const std::vector<TraceRecord> &records,
                   size_t limit)
        : records_(records), limit_(limit)
    {
    }

    bool next(TraceRecord &out) override
    {
        if (pos_ >= limit_)
            throw std::runtime_error("fuzz: injected read fault");
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

  private:
    const std::vector<TraceRecord> &records_;
    size_t limit_;
    size_t pos_ = 0;
};

// ----------------------------------------------------------------
// The differential check
// ----------------------------------------------------------------

/** Clean-trace case: pipeline vs runPerRecord, bit for bit. */
void
checkCleanCase(const FuzzCase &c)
{
    TwinBusSimulator oracle(tech130, caseConfig(c));
    VectorTraceSource oracle_source(c.records);
    const uint64_t oracle_n = oracle.runPerRecord(oracle_source);

    exec::ThreadPool pool(c.pool_size, c.pinning);
    TwinBusSimulator twin(tech130, caseConfig(c));
    SimPipeline::Config pc;
    pc.batch_size = c.batch_size;
    pc.prefetch = c.prefetch;
    SimPipeline pipeline(twin, pool, pc);
    VectorTraceSource source(c.records);
    Result<uint64_t> n = pipeline.run(source);
    ASSERT_TRUE(n.ok()) << n.error().describe();
    EXPECT_EQ(n.value(), oracle_n);
    expectTwinsIdentical(oracle, twin);

    // Packed cases: cross-check against the *other* kernel. The pin
    // above proves the packed pipeline equals the packed oracle, but
    // both share the count kernel; only a scalar replay can catch a
    // bug in the counts themselves. Totals agree to FP rounding, not
    // bitwise (different summation order).
    if (c.kernel == TransitionKernel::Packed) {
        BusSimConfig cross_config = caseConfig(c);
        cross_config.kernel = TransitionKernel::Scalar;
        TwinBusSimulator cross(tech130, cross_config);
        VectorTraceSource cross_source(c.records);
        cross.runPerRecord(cross_source);
        const BusSimulator *p[] = {&twin.instructionBus(),
                                   &twin.dataBus()};
        const BusSimulator *s[] = {&cross.instructionBus(),
                                   &cross.dataBus()};
        for (int bus = 0; bus < 2; ++bus) {
            SCOPED_TRACE(bus == 0 ? "cross-kernel instruction bus"
                                  : "cross-kernel data bus");
            const double want = s[bus]->totalEnergy().total().raw();
            const double got = p[bus]->totalEnergy().total().raw();
            EXPECT_NEAR(got, want, 1e-9 * std::abs(want) + 1e-24);
        }
    }
}

/**
 * Fault-injected case: the pipeline must surface an IoError, and the
 * simulator state must equal a per-record replay of exactly the
 * batches applied before the fault — the faulting batch is dropped
 * whole, so that is the first floor(fault_at / batch_size) full
 * batches, with no trailing-idle flush (the pipeline does not
 * finish() on error).
 */
void
checkFaultCase(const FuzzCase &c)
{
    exec::ThreadPool pool(c.pool_size, c.pinning);
    TwinBusSimulator twin(tech130, caseConfig(c));
    SimPipeline::Config pc;
    pc.batch_size = c.batch_size;
    pc.prefetch = c.prefetch;
    SimPipeline pipeline(twin, pool, pc);
    FaultingSource source(c.records, c.fault_at);
    Result<uint64_t> n = pipeline.run(source);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code, ErrorCode::IoError);

    const size_t applied =
        (c.fault_at / c.batch_size) * c.batch_size;
    TwinBusSimulator oracle(tech130, caseConfig(c));
    for (size_t i = 0; i < applied; ++i)
        oracle.accept(c.records[i]);
    expectTwinsIdentical(oracle, twin);
}

void
runCase(uint64_t seed)
{
    const FuzzCase c = makeCase(seed);
    SCOPED_TRACE("replay: NANOBUS_FUZZ_SEED=" + std::to_string(seed) +
                 " ./tests/test_pipeline_fuzz"
                 " --gtest_filter='PipelineFuzz.*'  [" +
                 c.describe() + "]");
    if (c.shape == TraceShape::FaultInjected)
        checkFaultCase(c);
    else
        checkCleanCase(c);
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || *env == '\0')
        return fallback;
    char *end = nullptr;
    const uint64_t value = std::strtoull(env, &end, 10);
    return end == env ? fallback : value;
}

TEST(PipelineFuzz, DifferentialAgainstPerRecordOracle)
{
    // A pinned NANOBUS_FUZZ_SEED replays exactly one case; otherwise
    // run NANOBUS_FUZZ_CASES (default 200) consecutive seeds off a
    // fixed base, so CI failures always name a reproducible seed.
    if (const char *pinned = std::getenv("NANOBUS_FUZZ_SEED")) {
        if (*pinned != '\0') {
            runCase(envU64("NANOBUS_FUZZ_SEED", 0));
            return;
        }
    }
    const uint64_t cases = envU64("NANOBUS_FUZZ_CASES", 200);
    const uint64_t base = envU64("NANOBUS_FUZZ_BASE", 0x5eed0000);
    for (uint64_t i = 0; i < cases; ++i) {
        runCase(base + i);
        if (::testing::Test::HasFatalFailure() ||
            ::testing::Test::HasNonfatalFailure())
            break; // the SCOPED_TRACE above already named the seed
    }
}

} // namespace
} // namespace nanobus
