/**
 * @file
 * Equivalence pins for the batched streaming pipeline (ISSUE: the
 * refactor's correctness contract). Every batch-oriented entry point
 * — BusEncoder::encodeBatch, BusEnergyModel::stepBatch, and the full
 * SimPipeline — must reproduce the per-record path BIT-identically,
 * for every encoding scheme, at every pool size, including batches
 * that straddle interval boundaries and traces with idle gaps.
 * Bitwise means memcmp on the doubles: no tolerance, no ULPs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "encoding/encoder.hh"
#include "exec/thread_pool.hh"
#include "fabric/bus_sim.hh"
#include "sim/experiment.hh"
#include "sim/pipeline.hh"
#include "trace/batch.hh"
#include "trace/profile.hh"
#include "trace/record.hh"
#include "trace/synthetic.hh"
#include "util/result.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
        std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(double)) == 0;
}

const std::vector<EncodingScheme> &
allSchemes()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::Unencoded,
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Gray,
        EncodingScheme::T0,
        EncodingScheme::Offset,
    };
    return schemes;
}

/** Deterministic mildly-structured word stream (xorshift + strides
 *  so the bus-invert style encoders exercise both branches). */
std::vector<uint64_t>
makeWords(size_t n, uint64_t seed)
{
    std::vector<uint64_t> words;
    words.reserve(n);
    uint64_t x = seed | 1;
    uint64_t addr = 0x10000;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Mix sequential strides with random jumps, like a trace.
        addr = (i % 3 == 0) ? x : addr + 4;
        words.push_back(addr & 0xffffffffu);
    }
    return words;
}

// ----------------------------------------------------------------
// BusEncoder::encodeBatch
// ----------------------------------------------------------------

TEST(EncodeBatch, MatchesSequentialEncodeForEveryScheme)
{
    const std::vector<uint64_t> words = makeWords(1000, 0x9e3779b9);
    for (EncodingScheme scheme : allSchemes()) {
        std::unique_ptr<BusEncoder> ref = makeEncoder(scheme, 32);
        std::unique_ptr<BusEncoder> batched = makeEncoder(scheme, 32);

        std::vector<uint64_t> expect(words.size());
        for (size_t i = 0; i < words.size(); ++i)
            expect[i] = ref->encode(words[i]);

        // Feed the same stream in uneven chunks (1, 3, 7, 1, 3, ...)
        // so chunk boundaries land everywhere.
        std::vector<uint64_t> got(words.size());
        const size_t chunks[] = {1, 3, 7, 64, 13};
        size_t i = 0, c = 0;
        while (i < words.size()) {
            size_t n = std::min(chunks[c % 5], words.size() - i);
            batched->encodeBatch(
                std::span<const uint64_t>(words).subspan(i, n),
                std::span<uint64_t>(got).subspan(i, n));
            i += n;
            ++c;
        }
        EXPECT_EQ(got, expect) << schemeName(scheme);

        // Encoder state advanced identically: the next word encodes
        // the same through both.
        EXPECT_EQ(batched->encode(0xdeadbeef), ref->encode(0xdeadbeef))
            << schemeName(scheme);
    }
}

TEST(EncodeBatch, EmptyBatchIsANoOp)
{
    for (EncodingScheme scheme : allSchemes()) {
        std::unique_ptr<BusEncoder> a = makeEncoder(scheme, 16);
        std::unique_ptr<BusEncoder> b = makeEncoder(scheme, 16);
        a->encode(0x1234);
        b->encode(0x1234);
        a->encodeBatch({}, {});
        EXPECT_EQ(a->encode(0x4321), b->encode(0x4321))
            << schemeName(scheme);
    }
}

// ----------------------------------------------------------------
// BusEnergyModel::stepBatch
// ----------------------------------------------------------------

TEST(StepBatch, MatchesSequentialStepBitwise)
{
    const std::vector<uint64_t> words = makeWords(600, 0xabcdef);
    BusEnergyModel::Config config;
    config.coupling_radius = 4;

    const CapacitanceMatrix caps =
        CapacitanceMatrix::analytical(tech130, 32);
    BusEnergyModel ref(tech130, caps, config);
    BusEnergyModel batched(tech130, caps, config);

    // Per-record path: step() then interval accumulation per word,
    // exactly as BusSimulator::transmit historically did.
    std::vector<double> ref_interval(32, 0.0);
    EnergyBreakdown ref_breakdown;
    for (uint64_t w : words) {
        ref.step(w);
        const std::vector<double> &line = ref.lastLineEnergy();
        for (size_t i = 0; i < line.size(); ++i)
            ref_interval[i] += line[i];
        ref_breakdown += ref.lastBreakdown();
    }

    std::vector<double> got_interval(32, 0.0);
    EnergyBreakdown got_breakdown;
    // Uneven chunking again so batch boundaries land everywhere.
    const size_t chunks[] = {1, 5, 17, 127};
    size_t i = 0, c = 0;
    while (i < words.size()) {
        size_t n = std::min(chunks[c % 4], words.size() - i);
        batched.stepBatch(
            std::span<const uint64_t>(words).subspan(i, n),
            got_interval, got_breakdown);
        i += n;
        ++c;
    }

    EXPECT_TRUE(sameBits(ref.accumulatedLineEnergy(),
                         batched.accumulatedLineEnergy()));
    EXPECT_TRUE(sameBits(ref.accumulatedBreakdown().self.raw(),
                         batched.accumulatedBreakdown().self.raw()));
    EXPECT_TRUE(sameBits(ref.accumulatedBreakdown().coupling.raw(),
                         batched.accumulatedBreakdown().coupling.raw()));
    EXPECT_TRUE(sameBits(ref_interval, got_interval));
    EXPECT_TRUE(sameBits(ref_breakdown.self.raw(),
                         got_breakdown.self.raw()));
    EXPECT_TRUE(sameBits(ref_breakdown.coupling.raw(),
                         got_breakdown.coupling.raw()));
    EXPECT_EQ(ref.lastWord(), batched.lastWord());
    EXPECT_EQ(ref.cycles(), batched.cycles());
}

// ----------------------------------------------------------------
// SimPipeline vs per-record TwinBusSimulator
// ----------------------------------------------------------------

BusSimConfig
pinConfig(EncodingScheme scheme)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 32;
    // Far smaller than the batch sizes below, so every batch
    // straddles several interval (and thermal) closes.
    config.interval_cycles = 500;
    config.record_samples = true;
    return config;
}

/** Compare every observable of the two buses bitwise. */
void
expectTwinsIdentical(const TwinBusSimulator &a,
                     const TwinBusSimulator &b)
{
    const BusSimulator *lhs[] = {&a.instructionBus(), &a.dataBus()};
    const BusSimulator *rhs[] = {&b.instructionBus(), &b.dataBus()};
    for (int bus = 0; bus < 2; ++bus) {
        SCOPED_TRACE(bus == 0 ? "instruction bus" : "data bus");
        EXPECT_EQ(lhs[bus]->transmissions(), rhs[bus]->transmissions());
        EXPECT_EQ(lhs[bus]->currentCycle(), rhs[bus]->currentCycle());
        EXPECT_TRUE(sameBits(lhs[bus]->totalEnergy().self.raw(),
                             rhs[bus]->totalEnergy().self.raw()));
        EXPECT_TRUE(sameBits(lhs[bus]->totalEnergy().coupling.raw(),
                             rhs[bus]->totalEnergy().coupling.raw()));
        EXPECT_TRUE(sameBits(lhs[bus]->lineEnergies(),
                             rhs[bus]->lineEnergies()));
        EXPECT_EQ(lhs[bus]->thermalFaults().size(),
                  rhs[bus]->thermalFaults().size());
        ASSERT_EQ(lhs[bus]->samples().size(),
                  rhs[bus]->samples().size());
        for (size_t i = 0; i < lhs[bus]->samples().size(); ++i) {
            const IntervalSample &x = lhs[bus]->samples()[i];
            const IntervalSample &y = rhs[bus]->samples()[i];
            EXPECT_EQ(x.end_cycle, y.end_cycle);
            EXPECT_EQ(x.transmissions, y.transmissions);
            EXPECT_TRUE(sameBits(x.energy.self.raw(),
                                 y.energy.self.raw()));
            EXPECT_TRUE(sameBits(x.energy.coupling.raw(),
                                 y.energy.coupling.raw()));
            EXPECT_TRUE(sameBits(x.avg_temperature.raw(),
                                 y.avg_temperature.raw()));
            EXPECT_TRUE(sameBits(x.max_temperature.raw(),
                                 y.max_temperature.raw()));
            EXPECT_TRUE(sameBits(x.avg_current.raw(),
                                 y.avg_current.raw()));
        }
    }
}

std::vector<TraceRecord>
syntheticRecords(uint64_t cycles, uint64_t seed)
{
    SyntheticCpu cpu(benchmarkProfile("swim"), seed, cycles);
    std::vector<TraceRecord> records;
    TraceRecord r;
    while (cpu.next(r))
        records.push_back(r);
    return records;
}

void
pinPipelineAgainstPerRecord(const std::vector<TraceRecord> &records,
                            EncodingScheme scheme)
{
    TwinBusSimulator oracle(tech130, pinConfig(scheme));
    VectorTraceSource oracle_source(records);
    oracle.runPerRecord(oracle_source);

    for (unsigned pool_size : {1u, 2u, 4u}) {
        exec::ThreadPool pool(pool_size);
        for (bool prefetch : {false, true}) {
            SCOPED_TRACE(testing::Message()
                         << schemeName(scheme) << " pool=" << pool_size
                         << " prefetch=" << prefetch);
            TwinBusSimulator twin(tech130, pinConfig(scheme));
            SimPipeline::Config pc;
            pc.batch_size = 1024; // >> interval_cycles transactions
            pc.prefetch = prefetch;
            SimPipeline pipeline(twin, pool, pc);
            VectorTraceSource source(records);
            Result<uint64_t> n = pipeline.run(source);
            ASSERT_TRUE(n.ok());
            EXPECT_EQ(n.value(), records.size());
            expectTwinsIdentical(oracle, twin);
        }
    }
}

TEST(SimPipelineEquivalence, BitIdenticalForEveryPaperScheme)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(6000, 7);
    for (EncodingScheme scheme : paperSchemes())
        pinPipelineAgainstPerRecord(records, scheme);
}

TEST(SimPipelineEquivalence, IdleGapsAndTrailingIdle)
{
    // Hand-built trace: bursts separated by long idle gaps (several
    // interval closes with zero transmissions) and a trailing record
    // far past the last burst, so the final flush crosses intervals.
    std::vector<TraceRecord> records;
    uint64_t cycle = 0;
    uint32_t addr = 0x4000;
    for (int burst = 0; burst < 5; ++burst) {
        for (int i = 0; i < 40; ++i) {
            records.push_back({cycle, addr,
                               i % 3 == 0 ? AccessKind::Load
                                          : AccessKind::InstructionFetch});
            cycle += 1 + static_cast<uint64_t>(i % 2);
            addr = addr * 1664525u + 1013904223u;
        }
        cycle += 2600; // straddles several 500-cycle intervals idle
    }
    records.push_back({cycle + 5000, 0xffffffffu, AccessKind::Store});
    pinPipelineAgainstPerRecord(records,
                                EncodingScheme::BusInvert);
}

TEST(SimPipelineEquivalence, BatchSizeDoesNotChangeResults)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(3000, 11);
    TwinBusSimulator oracle(tech130,
                            pinConfig(EncodingScheme::BusInvert));
    VectorTraceSource oracle_source(records);
    oracle.runPerRecord(oracle_source);

    exec::ThreadPool pool(2);
    for (size_t batch : {size_t(1), size_t(7), size_t(256),
                         size_t(100000)}) {
        SCOPED_TRACE(testing::Message() << "batch_size=" << batch);
        TwinBusSimulator twin(tech130,
                              pinConfig(EncodingScheme::BusInvert));
        SimPipeline::Config pc;
        pc.batch_size = batch;
        SimPipeline pipeline(twin, pool, pc);
        VectorTraceSource source(records);
        ASSERT_TRUE(pipeline.run(source).ok());
        expectTwinsIdentical(oracle, twin);
    }
}

TEST(SimPipelineEquivalence, EmptyStreamMatchesPerRecord)
{
    TwinBusSimulator oracle(tech130,
                            pinConfig(EncodingScheme::Unencoded));
    VectorTraceSource empty_a{{}};
    oracle.runPerRecord(empty_a);

    exec::ThreadPool pool(2);
    TwinBusSimulator twin(tech130,
                          pinConfig(EncodingScheme::Unencoded));
    SimPipeline pipeline(twin, pool);
    VectorTraceSource empty_b{{}};
    Result<uint64_t> n = pipeline.run(empty_b);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0u);
    expectTwinsIdentical(oracle, twin);
}

// ----------------------------------------------------------------
// Batch readers: exact sequence + fault surfacing
// ----------------------------------------------------------------

/** Source that throws (like TraceReader's budget exhaustion path
 *  converted to an exception boundary) after `limit` records. */
class FaultingSource : public TraceSource
{
  public:
    FaultingSource(std::vector<TraceRecord> records, size_t limit)
        : records_(std::move(records)), limit_(limit)
    {
    }

    bool next(TraceRecord &out) override
    {
        if (pos_ >= limit_)
            throw std::runtime_error("simulated read fault");
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

  private:
    std::vector<TraceRecord> records_;
    size_t limit_;
    size_t pos_ = 0;
};

std::vector<TraceRecord>
drainBatches(BatchSource &batches, std::vector<size_t> *sizes)
{
    std::vector<TraceRecord> out;
    for (;;) {
        Result<RecordBatch> next = batches.nextBatch();
        EXPECT_TRUE(next.ok());
        if (!next.ok() || next.value().empty())
            return out;
        if (sizes)
            sizes->push_back(next.value().size());
        for (const TraceRecord &r : next.value())
            out.push_back(r);
    }
}

TEST(BatchReaders, PrefetchPreservesExactSequenceAtEveryPoolSize)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(4000, 3);
    for (unsigned pool_size : {1u, 2u, 4u}) {
        SCOPED_TRACE(testing::Message() << "pool=" << pool_size);
        exec::ThreadPool pool(pool_size);
        VectorTraceSource source(records);
        PrefetchReader reader(source, pool, 256);
        std::vector<size_t> sizes;
        EXPECT_EQ(drainBatches(reader, &sizes), records);
        // Batch boundaries are a pure function of (source, size):
        // all full except possibly the last.
        for (size_t i = 0; i + 1 < sizes.size(); ++i)
            EXPECT_EQ(sizes[i], 256u);
    }
}

TEST(BatchReaders, BatchReaderMatchesPrefetchReader)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(2000, 5);
    VectorTraceSource a(records);
    BatchReader plain(a, 100);
    std::vector<size_t> plain_sizes;
    const std::vector<TraceRecord> plain_records =
        drainBatches(plain, &plain_sizes);

    exec::ThreadPool pool(2);
    VectorTraceSource b(records);
    PrefetchReader prefetch(b, pool, 100);
    std::vector<size_t> pf_sizes;
    EXPECT_EQ(drainBatches(prefetch, &pf_sizes), plain_records);
    EXPECT_EQ(pf_sizes, plain_sizes);
    EXPECT_EQ(plain_records, records);
}

TEST(BatchReaders, MidStreamFaultSurfacesThroughResult)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(1000, 9);
    for (unsigned pool_size : {1u, 2u}) {
        SCOPED_TRACE(testing::Message() << "pool=" << pool_size);
        exec::ThreadPool pool(pool_size);
        FaultingSource source(records, 650);
        PrefetchReader reader(source, pool, 256);

        // Batches before the faulting one arrive intact...
        Result<RecordBatch> first = reader.nextBatch();
        ASSERT_TRUE(first.ok());
        EXPECT_EQ(first.value().size(), 256u);
        Result<RecordBatch> second = reader.nextBatch();
        ASSERT_TRUE(second.ok());
        EXPECT_EQ(second.value().size(), 256u);

        // ...the faulting batch is dropped whole and reported as an
        // IoError, and the error latches for every later call.
        Result<RecordBatch> faulted = reader.nextBatch();
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.error().code, ErrorCode::IoError);
        Result<RecordBatch> again = reader.nextBatch();
        ASSERT_FALSE(again.ok());
        EXPECT_EQ(again.error().code, ErrorCode::IoError);
    }
}

TEST(BatchReaders, BatchReaderFaultMatchesPrefetchReader)
{
    const std::vector<TraceRecord> records =
        syntheticRecords(1000, 9);
    FaultingSource source(records, 650);
    BatchReader reader(source, 256);
    ASSERT_TRUE(reader.nextBatch().ok());
    ASSERT_TRUE(reader.nextBatch().ok());
    Result<RecordBatch> faulted = reader.nextBatch();
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.error().code, ErrorCode::IoError);
}

TEST(BatchReaders, PipelineSurfacesSourceFaultAsError)
{
    exec::ThreadPool pool(2);
    TwinBusSimulator twin(tech130,
                          pinConfig(EncodingScheme::Unencoded));
    SimPipeline pipeline(twin, pool);
    FaultingSource source(syntheticRecords(1000, 13), 650);
    Result<uint64_t> n = pipeline.run(source);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code, ErrorCode::IoError);
}

} // namespace
} // namespace nanobus
