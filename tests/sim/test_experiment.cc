/**
 * @file
 * Tests for the twin-bus experiment drivers.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
fastConfig()
{
    BusSimConfig config;
    config.data_width = 32;
    config.interval_cycles = 1000;
    config.thermal.stack_mode = StackMode::None;
    config.record_samples = false;
    return config;
}

TEST(TwinBus, RoutesRecordsToTheRightBus)
{
    TwinBusSimulator twin(tech130, fastConfig());
    twin.accept({0, 0x00010000, AccessKind::InstructionFetch});
    twin.accept({0, 0x20000000, AccessKind::Load});
    twin.accept({1, 0x00010004, AccessKind::InstructionFetch});
    EXPECT_EQ(twin.instructionBus().transmissions(), 2u);
    EXPECT_EQ(twin.dataBus().transmissions(), 1u);
}

TEST(TwinBus, RunConsumesWholeTrace)
{
    TwinBusSimulator twin(tech130, fastConfig());
    SyntheticCpu cpu(benchmarkProfile("eon"), 31, 20000);
    uint64_t records = twin.run(cpu);
    EXPECT_EQ(twin.instructionBus().transmissions(), 20000u);
    EXPECT_EQ(records, twin.instructionBus().transmissions() +
                       twin.dataBus().transmissions());
    // Both buses were advanced to the trace end.
    EXPECT_GE(twin.instructionBus().currentCycle(), 19999u);
    EXPECT_GE(twin.dataBus().currentCycle(), 19999u);
}

TEST(TwinBus, InstructionBusMoreActiveThanDataBus)
{
    TwinBusSimulator twin(tech130, fastConfig());
    SyntheticCpu cpu(benchmarkProfile("eon"), 33, 50000);
    twin.run(cpu);
    EXPECT_GT(twin.instructionBus().transmissions(),
              twin.dataBus().transmissions());
}

TEST(RunEnergyStudy, ProducesNonZeroEnergies)
{
    EnergyCell cell = runEnergyStudy("swim", tech130,
                                     EncodingScheme::Unencoded, 64,
                                     20000);
    EXPECT_GT(cell.instruction.total().raw(), 0.0);
    EXPECT_GT(cell.data.total().raw(), 0.0);
    EXPECT_GT(cell.instruction.self.raw(), 0.0);
    EXPECT_GT(cell.data.coupling.raw(), 0.0);
    EXPECT_EQ(cell.cycles, 20000u);
}

TEST(RunEnergyStudy, DeterministicForSeed)
{
    EnergyCell a = runEnergyStudy("art", tech130,
                                  EncodingScheme::BusInvert, 64,
                                  10000, 7);
    EnergyCell b = runEnergyStudy("art", tech130,
                                  EncodingScheme::BusInvert, 64,
                                  10000, 7);
    EXPECT_DOUBLE_EQ(a.instruction.total().raw(),
                     b.instruction.total().raw());
    EXPECT_DOUBLE_EQ(a.data.total().raw(), b.data.total().raw());
}

TEST(RunEnergyStudy, NearestNeighborUnderestimatesAllPairs)
{
    EnergyCell nn = runEnergyStudy("eon", tech130,
                                   EncodingScheme::Unencoded, 1,
                                   20000);
    EnergyCell all = runEnergyStudy("eon", tech130,
                                    EncodingScheme::Unencoded, 64,
                                    20000);
    EXPECT_LT(nn.data.coupling, all.data.coupling);
    // Self energy is identical: radius only affects coupling.
    EXPECT_NEAR(nn.data.self.raw(), all.data.self.raw(),
                1e-9 * all.data.self.raw());
}

TEST(RunEnergyStudy, SmallerNodesDissipateLessPerBus)
{
    // Lower Vdd and smaller capacitance shrink energy with scaling
    // (for the same traffic).
    EnergyCell e130 = runEnergyStudy("swim", tech130,
                                     EncodingScheme::Unencoded, 64,
                                     20000);
    EnergyCell e45 = runEnergyStudy("swim", itrsNode(ItrsNode::Nm45),
                                    EncodingScheme::Unencoded, 64,
                                    20000);
    EXPECT_LT(e45.instruction.total(), e130.instruction.total());
    EXPECT_LT(e45.data.total(), e130.data.total());
}

} // anonymous namespace
} // namespace nanobus
