/**
 * @file
 * Tests for the trace-driven bus simulator.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "encoding/schemes.hh"
#include "fabric/bus_sim.hh"
#include "util/logging.hh"

namespace nanobus {
namespace {

const TechnologyNode &tech130 = itrsNode(ItrsNode::Nm130);

BusSimConfig
fastConfig(EncodingScheme scheme = EncodingScheme::Unencoded)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.data_width = 16;
    config.interval_cycles = 100;
    config.thermal.stack_mode = StackMode::None;
    return config;
}

TEST(BusSim, BusWidthIncludesControlLines)
{
    BusSimulator plain(tech130, fastConfig());
    EXPECT_EQ(plain.busWidth(), 16u);
    BusSimulator bi(tech130, fastConfig(EncodingScheme::BusInvert));
    EXPECT_EQ(bi.busWidth(), 17u);
}

TEST(BusSim, IdleBusDissipatesNothing)
{
    BusSimulator sim(tech130, fastConfig());
    sim.advanceTo(1000);
    EXPECT_DOUBLE_EQ(sim.totalEnergy().total().raw(), 0.0);
    EXPECT_EQ(sim.transmissions(), 0u);
    // 10 intervals of idle time were recorded.
    EXPECT_EQ(sim.samples().size(), 10u);
    for (const auto &s : sim.samples()) {
        EXPECT_DOUBLE_EQ(s.energy.total().raw(), 0.0);
        EXPECT_EQ(s.transmissions, 0u);
    }
}

TEST(BusSim, RepeatedAddressCostsNothingAfterFirst)
{
    BusSimulator sim(tech130, fastConfig());
    sim.transmit(0, 0x1234);
    double first = sim.totalEnergy().total().raw();
    sim.transmit(1, 0x1234);
    sim.transmit(2, 0x1234);
    EXPECT_DOUBLE_EQ(sim.totalEnergy().total().raw(), first);
}

TEST(BusSim, EnergyAccumulatesAcrossTransmissions)
{
    BusSimulator sim(tech130, fastConfig());
    sim.transmit(0, 0x0000);
    sim.transmit(1, 0xffff);
    sim.transmit(2, 0x0000);
    EXPECT_GT(sim.totalEnergy().self.raw(), 0.0);
    EXPECT_EQ(sim.transmissions(), 3u);
    double line_sum = std::accumulate(sim.lineEnergies().begin(),
                                      sim.lineEnergies().end(), 0.0);
    EXPECT_NEAR(line_sum, sim.totalEnergy().total().raw(),
                1e-9 * line_sum);
}

TEST(BusSim, IntervalSamplesPartitionEnergy)
{
    BusSimulator sim(tech130, fastConfig());
    // Transmissions across 3 intervals.
    for (uint64_t c = 0; c < 250; c += 5)
        sim.transmit(c, static_cast<uint32_t>(c * 0x97));
    sim.advanceTo(300);
    ASSERT_EQ(sim.samples().size(), 3u);
    double sum = 0.0;
    uint64_t tx = 0;
    for (const auto &s : sim.samples()) {
        sum += s.energy.total().raw();
        tx += s.transmissions;
    }
    EXPECT_NEAR(sum, sim.totalEnergy().total().raw(), 1e-9 * sum);
    EXPECT_EQ(tx, sim.transmissions());
    EXPECT_EQ(sim.samples()[0].end_cycle, 100u);
    EXPECT_EQ(sim.samples()[2].end_cycle, 300u);
}

TEST(BusSim, TemperatureRisesWithActivity)
{
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    BusSimulator sim(tech130, config);
    // Saturate the bus with alternating patterns for many intervals.
    uint64_t cycle = 0;
    for (int i = 0; i < 200000; ++i, ++cycle)
        sim.transmit(cycle, (i & 1) ? 0xffff : 0x0000);
    EXPECT_GT(sim.thermalNetwork().maxTemperature().raw(),
              318.15 + 0.05);
    const auto &samples = sim.samples();
    ASSERT_GE(samples.size(), 2u);
    // Temperature is (weakly) higher at the end than after the first
    // interval: monotone approach to steady state.
    EXPECT_GE(samples.back().max_temperature.raw(),
              samples.front().max_temperature.raw() - 1e-6);
}

TEST(BusSim, IdlePeriodCoolsWires)
{
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    BusSimulator sim(tech130, config);
    uint64_t cycle = 0;
    for (int i = 0; i < 50000; ++i, ++cycle)
        sim.transmit(cycle, (i & 1) ? 0xffff : 0x0000);
    double hot = sim.thermalNetwork().maxTemperature().raw();
    sim.advanceTo(cycle + 200000); // long idle gap
    double cooled = sim.thermalNetwork().maxTemperature().raw();
    EXPECT_LT(cooled, hot);
    EXPECT_NEAR(cooled, 318.15, 0.01);
}

TEST(BusSim, CurrentProfileTracksActivity)
{
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    BusSimulator sim(tech130, config);
    // Alternate busy and quiet intervals to force dI/dt.
    uint64_t cycle = 0;
    for (int interval = 0; interval < 20; ++interval) {
        bool busy = interval & 1;
        for (int i = 0; i < 1000; ++i, ++cycle) {
            if (busy)
                sim.transmit(cycle, (i & 1) ? 0xffff : 0x0000);
        }
    }
    sim.advanceTo(cycle);

    EXPECT_EQ(sim.currentStats().count(), 20u);
    EXPECT_GT(sim.currentStats().max(), 0.0);
    EXPECT_DOUBLE_EQ(sim.currentStats().min(), 0.0);
    // Alternating busy/idle gives large |dI/dt| every boundary.
    EXPECT_EQ(sim.didtStats().count(), 19u);
    EXPECT_GT(sim.didtStats().min(), 0.0);

    // Sample currents match E / (Vdd dt).
    const Seconds dt = 1000.0 / tech130.f_clk;
    for (const auto &s : sim.samples())
        EXPECT_NEAR(s.avg_current.raw(),
                    (s.energy.total() / (tech130.vdd * dt)).raw(),
                    1e-12 * (s.avg_current.raw() + 1.0));
}

TEST(BusSim, SteadyTrafficHasLowDidt)
{
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    BusSimulator steady(tech130, config);
    BusSimulator bursty(tech130, config);
    uint64_t cycle = 0;
    for (int i = 0; i < 20000; ++i, ++cycle) {
        steady.transmit(cycle, (i & 1) ? 0xaaaa : 0x5555);
        if ((i / 1000) & 1)
            bursty.transmit(cycle, (i & 1) ? 0xaaaa : 0x5555);
    }
    steady.advanceTo(cycle);
    bursty.advanceTo(cycle);
    EXPECT_LT(steady.didtStats().mean(),
              0.01 * bursty.didtStats().mean());
}

TEST(BusSim, NonMonotonicCycleIsFatal)
{
    setAbortOnError(false);
    BusSimulator sim(tech130, fastConfig());
    sim.transmit(10, 0x1);
    EXPECT_THROW(sim.transmit(5, 0x2), FatalError);
    setAbortOnError(true);
}

TEST(BusSim, RecordSamplesOffKeepsMemoryFlat)
{
    BusSimConfig config = fastConfig();
    config.record_samples = false;
    BusSimulator sim(tech130, config);
    for (uint64_t c = 0; c < 10000; ++c)
        sim.transmit(c, static_cast<uint32_t>(c));
    EXPECT_TRUE(sim.samples().empty());
    EXPECT_GT(sim.totalEnergy().total().raw(), 0.0);
}

TEST(BusSim, CustomEncoderFactoryOverridesScheme)
{
    BusSimConfig config = fastConfig();
    config.scheme = EncodingScheme::Unencoded; // overridden
    config.encoder_factory = [] {
        return std::make_unique<SegmentedBusInvert>(16, 4);
    };
    BusSimulator sim(tech130, config);
    EXPECT_EQ(sim.busWidth(), 20u);
    EXPECT_EQ(sim.encoder().name(), "segmented-bus-invert-4");
    sim.transmit(0, 0x00ff);
    EXPECT_GT(sim.totalEnergy().total().raw(), 0.0);
}

TEST(BusSim, EncoderFactoryWidthMismatchIsFatal)
{
    setAbortOnError(false);
    BusSimConfig config = fastConfig(); // data_width 16
    config.encoder_factory = [] {
        return std::make_unique<SegmentedBusInvert>(32, 4);
    };
    EXPECT_THROW(BusSimulator(tech130, config), FatalError);
    setAbortOnError(true);
}

TEST(BusSim, MismatchedCapMatrixIsFatal)
{
    setAbortOnError(false);
    CapacitanceMatrix wrong(8); // bus is 16 wide
    EXPECT_THROW(BusSimulator(tech130, fastConfig(), &wrong),
                 FatalError);
    setAbortOnError(true);
}

TEST(BusSim, ThermalFaultsSurfaceWithoutAborting)
{
    // A ceiling below the activity-driven operating point makes every
    // busy interval trip the runaway guard; the run must finish and
    // report the incidents instead of dying.
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    config.thermal.temperature_ceiling = Kelvin{318.15 + 0.01};
    BusSimulator sim(tech130, config);
    uint64_t cycle = 0;
    for (int i = 0; i < 100000; ++i, ++cycle)
        sim.transmit(cycle, (i & 1) ? 0xffff : 0x0000);
    sim.advanceTo(cycle);

    ASSERT_FALSE(sim.thermalFaults().empty());
    for (const ThermalFault &f : sim.thermalFaults()) {
        EXPECT_EQ(f.kind, ThermalFault::Kind::Ceiling);
        EXPECT_GT(f.cycle, 0u);
        EXPECT_LE(f.cycle, cycle);
        EXPECT_GT(f.temperature, config.thermal.temperature_ceiling);
    }
    EXPECT_LE(sim.thermalNetwork().maxTemperature().raw(),
              config.thermal.temperature_ceiling.raw() + 1e-12);
    EXPECT_GT(sim.totalEnergy().total().raw(), 0.0);
}

TEST(BusSim, CleanRunReportsNoThermalFaults)
{
    BusSimConfig config = fastConfig();
    config.interval_cycles = 1000;
    BusSimulator sim(tech130, config);
    for (uint64_t c = 0; c < 5000; ++c)
        sim.transmit(c, static_cast<uint32_t>(c * 0x2545));
    sim.advanceTo(5000);
    EXPECT_TRUE(sim.thermalFaults().empty());
}

TEST(BusSim, ExternalCapMatrixIsUsed)
{
    // A denser coupling matrix must raise energy.
    BusSimConfig config = fastConfig();
    CapacitanceMatrix dense =
        CapacitanceMatrix::analytical(tech130, 16);
    for (unsigned i = 0; i + 1 < 16; ++i)
        dense.setCoupling(i, i + 1, 2.0 * tech130.c_inter);
    BusSimulator plain(tech130, config);
    BusSimulator boosted(tech130, config, &dense);
    plain.transmit(0, 0x0001);
    boosted.transmit(0, 0x0001);
    EXPECT_GT(boosted.totalEnergy().coupling,
              plain.totalEnergy().coupling);
}

} // anonymous namespace
} // namespace nanobus
