#!/usr/bin/env python3
"""Self-tests for tools/nbcheck (ctest label: analyze).

Four groups, each asserting that a check family *fires* on a
known-bad fixture and stays quiet on the matching known-good one —
so disabling any check fails this suite, which is the acceptance
bar for the analyzer:

  1. token-backend rule fixtures under fixtures/checks/, plus the
     converse (scanning with the owning family disabled must make
     the finding disappear — proves the expectation is testing the
     check, not another pass);
  2. the synthetic layering project under fixtures/layering/
     (back-edge, undeclared edge, unknown module, and a declared
     inversion that must stay silent);
  3. config validation (cycles, undeclared upward deps, reasonless
     allow entries must be rejected) and allowlist bookkeeping;
  4. the --require-libclang contract, and — whenever the clang
     bindings are importable — the same rule fixtures through the
     libclang backend, which keeps the two backends in agreement.
"""

import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "tools"))

from nbcheck import clangast, cli, config, lexer, tokenscan  # noqa: E402
from nbcheck.compdb import CompileCommand  # noqa: E402

CHECKS_DIR = os.path.join(HERE, "fixtures", "checks")
LAYERING_DIR = os.path.join(HERE, "fixtures", "layering")
ALL_FAMILIES = {"determinism", "result", "fp-order"}

# fixture file -> exact set of rules expected to fire
EXPECT = {
    "det_wallclock_bad.cc": {"det-wallclock"},
    "det_rand_bad.cc": {"det-legacy-rand"},
    "det_random_device_bad.cc": {"det-random-device"},
    "det_thread_id_bad.cc": {"det-thread-id"},
    "det_pointer_keyed_bad.cc": {"det-pointer-keyed"},
    "det_clean_ok.cc": set(),
    "result_throw_bad.cc": {"result-throw"},
    "result_exit_bad.cc": {"result-exit"},
    "result_abort_bad.cc": {"result-abort"},
    "result_clean_ok.cc": set(),
    "fp_accum_bad.cc": {"fp-accum-parallel-for"},
    "fp_accum_ok.cc": set(),
}

LAYERING_EXPECT = {
    "src/util/bad_up.hh": {"layering-back-edge"},
    "src/tech/node.hh": {"layering-undeclared-edge"},
    "src/la/mystery_user.hh": {"layering-unknown-module"},
}

failures = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}" + (f": {detail}" if not ok else ""))
    if not ok:
        failures.append(name)


def family_of(rule):
    return {"det": "determinism", "res": "result",
            "fp-": "fp-order"}[rule[:3]]


def token_rules(fname, families):
    with open(os.path.join(CHECKS_DIR, fname),
              encoding="utf-8") as fh:
        tokens, _ = lexer.lex(fh.read())
    return {f.rule
            for f in tokenscan.scan_file(fname, tokens, families)}


def test_token_fixtures():
    print("token-backend rule fixtures:")
    for fname in sorted(EXPECT):
        expected = EXPECT[fname]
        got = token_rules(fname, ALL_FAMILIES)
        check(f"tokens:{fname}", got == expected,
              f"expected {sorted(expected)}, got {sorted(got)}")
        # The converse: disabling the owning family must silence
        # exactly those findings.
        for rule in expected:
            fam = family_of(rule)
            without = token_rules(fname, ALL_FAMILIES - {fam})
            check(f"tokens:{fname}:disabled-{fam}",
                  rule not in without,
                  f"'{rule}' still fires with {fam} disabled")


def test_layering_fixture():
    print("layering fixture project:")
    cfg = config.load(os.path.join(LAYERING_DIR, "conf.toml"))
    kept, suppressed = cli.run_analysis(
        LAYERING_DIR, cfg, backend="tokens", db=None, lint=False)
    got = {}
    for f in kept:
        got.setdefault(f.path, set()).add(f.rule)
    check("layering:findings", got == LAYERING_EXPECT,
          f"expected {LAYERING_EXPECT}, got {got}")
    check("layering:no-suppressions", not suppressed,
          f"unexpected allowlist hits: {suppressed}")
    silent = [p for p in ("src/la/uses_exec.hh",
                          "src/la/matrix.hh",
                          "src/exec/pool.hh") if p in got]
    check("layering:inversion-and-deps-silent", not silent,
          f"findings on sanctioned files: {silent}")


def _expect_config_error(name, text):
    with tempfile.NamedTemporaryFile("w", suffix=".toml",
                                     delete=False) as fh:
        fh.write(text)
        path = fh.name
    try:
        config.load(path)
        check(name, False, "ConfigError not raised")
    except config.ConfigError:
        check(name, True)
    finally:
        os.unlink(path)


def test_config_validation():
    print("config validation:")
    _expect_config_error("config:cycle-rejected", """
[layering.modules]
a = { layer = 0, deps = [], inversions = [
    { to = "b", reason = "fixture" } ] }
b = { layer = 1, deps = ["a"] }
""")
    _expect_config_error("config:upward-plain-dep-rejected", """
[layering.modules]
a = { layer = 0, deps = ["b"] }
b = { layer = 1, deps = [] }
""")
    _expect_config_error("config:reasonless-inversion-rejected", """
[layering.modules]
a = { layer = 0, deps = [], inversions = [
    { to = "b", reason = "  " } ] }
b = { layer = 1, deps = [] }
""")
    _expect_config_error("config:reasonless-allow-rejected", """
[[allow]]
rule = "det-wallclock"
path = "src/x.cc"
""")
    # Allowlist bookkeeping: matching entries suppress and count;
    # unmatched entries surface.
    from nbcheck.config import AllowEntry, Config
    from nbcheck.findings import Finding
    cfg = Config(path="<mem>", allow=[
        AllowEntry("det-wallclock", "src/exec/*", "fixture"),
        AllowEntry("result-throw", "src/never/*", "fixture"),
    ])
    kept, suppressed = cfg.filter_allowed([
        Finding("src/exec/a.cc", 1, "det-wallclock", "m"),
        Finding("src/sim/b.cc", 2, "det-wallclock", "m"),
    ])
    check("allowlist:suppresses-matching",
          len(suppressed) == 1
          and suppressed[0].path == "src/exec/a.cc",
          f"suppressed={suppressed}")
    check("allowlist:keeps-unmatched",
          len(kept) == 1 and kept[0].path == "src/sim/b.cc",
          f"kept={kept}")
    unused = cfg.unused_allow_entries()
    check("allowlist:reports-unused",
          len(unused) == 1 and unused[0].rule == "result-throw",
          f"unused={unused}")


def test_libclang_contract():
    print("libclang backend:")
    if not clangast.available():
        # The required-but-missing path must fail loudly, with a
        # message that says what to install.
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "tools", "nbcheck"),
             "--require-libclang", "--root", REPO],
            capture_output=True, text=True)
        check("require-libclang:exit-3", proc.returncode == 3,
              f"rc={proc.returncode}, stderr={proc.stderr[:200]}")
        check("require-libclang:message",
              "libclang backend is required" in proc.stderr
              and "python3-clang" in proc.stderr,
              f"stderr={proc.stderr[:200]}")
        print("  (bindings unavailable; AST fixture pass skipped)")
        return
    scanner = clangast.ClangScanner(
        CHECKS_DIR, lambda rel: ALL_FAMILIES)
    for fname in sorted(EXPECT):
        path = os.path.join(CHECKS_DIR, fname)
        scanner.scan_tu(CompileCommand(
            file=path, directory=CHECKS_DIR,
            args=["c++", "-std=c++20", "-c", path]))
    check("libclang:no-parse-errors", not scanner.parse_errors,
          f"{scanner.parse_errors}")
    got = {}
    for f in scanner.findings:
        got.setdefault(f.path, set()).add(f.rule)
    for fname in sorted(EXPECT):
        check(f"libclang:{fname}",
              got.get(fname, set()) == EXPECT[fname],
              f"expected {sorted(EXPECT[fname])}, "
              f"got {sorted(got.get(fname, set()))}")


def main():
    test_token_fixtures()
    test_layering_fixture()
    test_config_validation()
    test_libclang_contract()
    if failures:
        print(f"\n{len(failures)} analyze self-test failure(s): "
              f"{failures}", file=sys.stderr)
        return 1
    print("\nanalyze self-tests: all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
