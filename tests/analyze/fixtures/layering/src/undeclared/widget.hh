#ifndef FIXTURE_UNDECLARED_WIDGET_HH
#define FIXTURE_UNDECLARED_WIDGET_HH
struct Widget {
    int knob;
};
#endif
