#ifndef FIXTURE_TECH_NODE_HH
#define FIXTURE_TECH_NODE_HH
// Deliberate violation: same-layer edge tech -> la that conf.toml
// does not declare -> layering-undeclared-edge.
#include "la/matrix.hh"
struct Node {
    Matrix coupling;
};
#endif
