#ifndef FIXTURE_UTIL_BAD_UP_HH
#define FIXTURE_UTIL_BAD_UP_HH
// Deliberate violation: util (layer 0) reaching up into la
// (layer 1) without a declared inversion -> layering-back-edge.
#include "la/matrix.hh"
struct BadUp {
    Matrix m;
};
#endif
