#ifndef FIXTURE_UTIL_BASE_HH
#define FIXTURE_UTIL_BASE_HH
struct Base {
    int id;
};
#endif
