#ifndef FIXTURE_EXEC_POOL_HH
#define FIXTURE_EXEC_POOL_HH
#include "util/base.hh"
struct Pool {
    Base owner;
};
#endif
