#ifndef FIXTURE_LA_MYSTERY_USER_HH
#define FIXTURE_LA_MYSTERY_USER_HH
// Deliberate violation: the target directory is not a declared
// module -> layering-unknown-module.
#include "undeclared/widget.hh"
struct MysteryUser {
    Widget w;
};
#endif
