#ifndef FIXTURE_LA_USES_EXEC_HH
#define FIXTURE_LA_USES_EXEC_HH
// Upward edge la -> exec, declared as an inversion in conf.toml:
// must stay silent.
#include "exec/pool.hh"
struct ParallelMatrix {
    Pool *pool;
};
#endif
