#ifndef FIXTURE_LA_MATRIX_HH
#define FIXTURE_LA_MATRIX_HH
// Legal declared edge: la -> util.
#include "util/base.hh"
struct Matrix {
    Base origin;
};
#endif
