// Fixture: fp-accum-parallel-for must stay quiet — per-element
// writes and body-local accumulators are deterministic at every
// pool size.
namespace nanobus {
namespace exec {
struct ThreadPool;
template <class Body>
void parallelFor(ThreadPool &pool, unsigned long n, Body body);
} // namespace exec
} // namespace nanobus

void
scaleEnergies(nanobus::exec::ThreadPool &pool, const double *in,
              double *out, unsigned long n)
{
    nanobus::exec::parallelFor(pool, n, [&](unsigned long i) {
        double local = 0.0;
        local += in[i];     // body-local accumulator
        out[i] += local;    // per-element, deterministic
    });
}
