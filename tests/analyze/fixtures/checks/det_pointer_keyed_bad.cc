// Fixture: det-pointer-keyed must fire on containers ordered (or
// hashed) by address.
namespace std {
template <class K, class V> struct map {
    int size() const;
};
} // namespace std

struct Node {
    int id;
};

int
countByAddress()
{
    std::map<Node *, int> by_address;
    return by_address.size();
}
