// Fixture: result-abort must fire on abort() and std::terminate().
extern "C" void abort();
namespace std {
[[noreturn]] void terminate();
} // namespace std

void
crashHard(bool really)
{
    if (really)
        abort();
    std::terminate();
}
