// Fixture: none of the result rules may fire — declarations,
// out-of-line definitions, and member calls that share a banned
// spelling are not calls to the process terminators.
struct JobContext {
    void abort();
    bool aborted() const;
};

// Out-of-line definition: `void JobContext::abort(` is not a call.
void
JobContext::abort()
{
}

bool
cancel(JobContext *context)
{
    context->abort();
    return context->aborted();
}
