// Fixture: fp-accum-parallel-for must fire on compound assignment
// to captured state inside a parallelFor body — the reduction
// order then depends on pool size (and the writes race).
namespace nanobus {
namespace exec {
struct ThreadPool;
template <class Body>
void parallelFor(ThreadPool &pool, unsigned long n, Body body);
} // namespace exec
} // namespace nanobus

double
sumEnergies(nanobus::exec::ThreadPool &pool, const double *joules,
            unsigned long n)
{
    double total = 0.0;
    nanobus::exec::parallelFor(pool, n, [&](unsigned long i) {
        total += joules[i];
    });
    return total;
}
