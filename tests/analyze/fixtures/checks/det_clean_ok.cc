// Fixture: none of the determinism rules may fire here — stable
// integer keys, explicit seeds, and member names that merely
// resemble the banned spellings.
namespace std {
template <class K, class V> struct map {
    int size() const;
};
} // namespace std

struct Session {
    // A member *named* exit is not the process terminator.
    void exit(int code);
    int get_index() const;
};

int
stableKeys(Session &session)
{
    std::map<int, double> by_index;
    session.exit(0);
    return by_index.size() + session.get_index();
}
