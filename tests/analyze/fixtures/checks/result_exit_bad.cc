// Fixture: result-exit must fire on both spellings.
extern "C" void exit(int status);
namespace std {
[[noreturn]] void exit(int status);
} // namespace std

void
bailQualified()
{
    std::exit(1);
}

void
bailBare()
{
    exit(2);
}
