// Fixture: det-thread-id must fire on thread-identity reads.
namespace std {
namespace this_thread {
int get_id();
} // namespace this_thread
} // namespace std

int
whoAmI()
{
    return std::this_thread::get_id();
}
