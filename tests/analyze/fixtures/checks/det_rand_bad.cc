// Fixture: det-legacy-rand must fire on globally-seeded RNG calls.
extern "C" int rand();
extern "C" void srand(unsigned seed);

int
roll()
{
    srand(42u);
    return rand();
}
