// Fixture: det-wallclock must fire on wall-clock reads.
// Self-contained stub so both nbcheck backends parse it without
// system headers.
namespace std {
namespace chrono {
struct steady_clock {
    static int now();
};
} // namespace chrono
} // namespace std

int
readClock()
{
    auto t = std::chrono::steady_clock::now();
    return t;
}
