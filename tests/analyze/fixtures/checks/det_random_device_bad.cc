// Fixture: det-random-device must fire on the nondeterministic
// entropy source.
namespace std {
struct random_device {
    unsigned operator()();
};
} // namespace std

unsigned
entropy()
{
    std::random_device rd;
    return rd();
}
