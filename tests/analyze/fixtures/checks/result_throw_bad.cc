// Fixture: result-throw must fire; errors travel as Result<T>.
struct ParseError {
    int line;
};

int
parseOrThrow(int value)
{
    if (value < 0)
        throw ParseError{value};
    return value;
}
