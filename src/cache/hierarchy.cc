#include "cache/hierarchy.hh"

#include <utility>

#include "util/logging.hh"

namespace nanobus {

HierarchyConfig
HierarchyConfig::paper()
{
    HierarchyConfig config;
    config.l1i = {"L1I", 16 * 1024, 4, 32, WritePolicy::WriteThrough,
                  AllocPolicy::WriteAllocate};
    config.l1d = {"L1D", 16 * 1024, 4, 32, WritePolicy::WriteThrough,
                  AllocPolicy::WriteAllocate};
    config.l2 = {"L2", 256 * 1024, 4, 64, WritePolicy::WriteBack,
                 AllocPolicy::WriteAllocate};
    return config;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

void
CacheHierarchy::setL2BusListener(L2BusListener listener)
{
    listener_ = std::move(listener);
}

void
CacheHierarchy::accessL2(uint64_t cycle, uint32_t address,
                         bool is_write)
{
    if (listener_)
        listener_(cycle, address, is_write);

    Cache::AccessResult result = l2_.access(address, is_write);
    if (result.fill_from_below)
        ++memory_reads_;
    if (result.write_below)
        ++memory_writes_;
}

void
CacheHierarchy::access(const TraceRecord &record)
{
    Cache &l1 = record.kind == AccessKind::InstructionFetch
        ? l1i_ : l1d_;
    const bool is_write = record.kind == AccessKind::Store;

    Cache::AccessResult result = l1.access(record.address, is_write);
    // A write-through L1 never holds dirty blocks, so at most one L2
    // write per access; fills and writes are distinct transactions on
    // the L1-L2 address bus.
    if (result.fill_from_below)
        accessL2(record.cycle, record.address, false);
    if (result.write_below)
        accessL2(record.cycle, result.write_below_addr, true);
}

} // namespace nanobus
