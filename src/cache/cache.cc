#include "cache/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace nanobus {

namespace {

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

void
CacheConfig::validate() const
{
    if (!isPow2(size) || !isPow2(assoc) || !isPow2(block_size))
        fatal("CacheConfig %s: size/assoc/block must be powers of two",
              name.c_str());
    if (block_size < 4)
        fatal("CacheConfig %s: block size %u below word size",
              name.c_str(), block_size);
    if (size < block_size * assoc)
        fatal("CacheConfig %s: size %u too small for %u ways of %u-"
              "byte blocks", name.c_str(), size, assoc, block_size);
}

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    lines_.resize(static_cast<size_t>(config_.sets()) * config_.assoc);
    block_shift_ = static_cast<unsigned>(
        std::countr_zero(config_.block_size));
    set_mask_ = config_.sets() - 1;
}

uint32_t
Cache::blockAddress(uint32_t address) const
{
    return address & ~(config_.block_size - 1);
}

uint32_t
Cache::setIndex(uint32_t address) const
{
    return (address >> block_shift_) & set_mask_;
}

uint32_t
Cache::tagOf(uint32_t address) const
{
    return address >> block_shift_;
}

Cache::Line *
Cache::findLine(uint32_t address)
{
    const uint32_t set = setIndex(address);
    const uint32_t tag = tagOf(address);
    Line *base = &lines_[static_cast<size_t>(set) * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(uint32_t address) const
{
    return const_cast<Cache *>(this)->findLine(address);
}

Cache::Line &
Cache::victimLine(uint32_t set)
{
    Line *base = &lines_[static_cast<size_t>(set) * config_.assoc];
    Line *victim = base;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (!base[way].valid)
            return base[way];
        if (base[way].lru < victim->lru)
            victim = &base[way];
    }
    return *victim;
}

Cache::AccessResult
Cache::access(uint32_t address, bool is_write)
{
    AccessResult result;
    ++lru_clock_;

    Line *line = findLine(address);
    if (line) {
        result.hit = true;
        line->lru = lru_clock_;
        if (is_write) {
            ++stats_.write_hits;
            if (config_.write_policy == WritePolicy::WriteThrough) {
                result.write_below = true;
                result.write_below_addr = blockAddress(address);
            } else {
                line->dirty = true;
            }
        } else {
            ++stats_.read_hits;
        }
        return result;
    }

    // Miss.
    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    const bool allocate = !is_write ||
        config_.alloc_policy == AllocPolicy::WriteAllocate;

    if (is_write && config_.write_policy == WritePolicy::WriteThrough) {
        result.write_below = true;
        result.write_below_addr = blockAddress(address);
    }

    if (!allocate) {
        if (is_write &&
            config_.write_policy == WritePolicy::WriteBack) {
            // Non-allocating write-back miss degenerates to a direct
            // write below.
            result.write_below = true;
            result.write_below_addr = blockAddress(address);
        }
        return result;
    }

    result.fill_from_below = true;

    const uint32_t set = setIndex(address);
    Line &victim = victimLine(set);
    if (victim.valid) {
        ++stats_.evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            // Dirty writeback supersedes any write-through obligation
            // in practice both cannot be set: WT caches never dirty.
            result.write_below = true;
            result.write_below_addr = victim.tag << block_shift_;
        }
    }
    victim.valid = true;
    victim.tag = tagOf(address);
    victim.lru = lru_clock_;
    victim.dirty = is_write &&
        config_.write_policy == WritePolicy::WriteBack;
    return result;
}

bool
Cache::contains(uint32_t address) const
{
    return findLine(address) != nullptr;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line();
    lru_clock_ = 0;
}

} // namespace nanobus
