/**
 * @file
 * Two-level cache hierarchy (Sec 5.1 of the paper).
 *
 * Split 16 KB 4-way 32 B-block write-through L1 instruction/data
 * caches over a unified 256 KB 4-way 64 B-block write-back L2, over
 * main memory. The processor-to-L1 address buses the paper studies
 * see every access fed into this hierarchy; the L1-to-L2 address bus
 * traffic (misses, write-throughs, writebacks) is exposed through a
 * listener for the extension study in examples/l2_bus_study.
 */

#ifndef NANOBUS_CACHE_HIERARCHY_HH
#define NANOBUS_CACHE_HIERARCHY_HH

#include <functional>

#include "cache/cache.hh"
#include "trace/record.hh"

namespace nanobus {

/** Two-level hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;

    /** The exact configuration of the paper (Sec 5.1). */
    static HierarchyConfig paper();
};

/** Split-L1 + unified-L2 + memory hierarchy. */
class CacheHierarchy
{
  public:
    /**
     * Observer of L1-to-L2 address bus transactions.
     * @param cycle Cycle of the originating access.
     * @param address Block-aligned transaction address.
     * @param is_write True for write-throughs/writebacks.
     */
    using L2BusListener =
        std::function<void(uint64_t cycle, uint32_t address,
                           bool is_write)>;

    explicit CacheHierarchy(
        const HierarchyConfig &config = HierarchyConfig::paper());

    /** Install an observer of the L1-to-L2 address bus. */
    void setL2BusListener(L2BusListener listener);

    /** Route one trace record through the hierarchy. */
    void access(const TraceRecord &record);

    /** L1 instruction cache. */
    const Cache &l1i() const { return l1i_; }

    /** L1 data cache. */
    const Cache &l1d() const { return l1d_; }

    /** Unified L2. */
    const Cache &l2() const { return l2_; }

    /** Reads serviced by main memory (L2 fill misses). */
    uint64_t memoryReads() const { return memory_reads_; }

    /** Writes absorbed by main memory (L2 writebacks/throughs). */
    uint64_t memoryWrites() const { return memory_writes_; }

  private:
    void accessL2(uint64_t cycle, uint32_t address, bool is_write);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    L2BusListener listener_;
    uint64_t memory_reads_ = 0;
    uint64_t memory_writes_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_CACHE_HIERARCHY_HH
