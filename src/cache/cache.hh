/**
 * @file
 * Set-associative cache model.
 *
 * Implements the building block of the paper's memory system (Sec
 * 5.1): configurable size/associativity/block size, LRU replacement,
 * write-through or write-back write handling, and allocate /
 * no-allocate write-miss policies.
 */

#ifndef NANOBUS_CACHE_CACHE_HH
#define NANOBUS_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nanobus {

/** How writes interact with lower levels. */
enum class WritePolicy {
    /** Every write is propagated to the next level immediately. */
    WriteThrough,
    /** Writes dirty the block; dirty blocks write back on eviction. */
    WriteBack,
};

/** Write-miss allocation policy. */
enum class AllocPolicy {
    /** Write misses fill the block into the cache. */
    WriteAllocate,
    /** Write misses bypass the cache. */
    NoWriteAllocate,
};

/** Static cache configuration. */
struct CacheConfig
{
    /** Name for diagnostics, e.g. "L1D". */
    std::string name = "cache";
    /** Total capacity [bytes]; power of two. */
    uint32_t size = 16 * 1024;
    /** Associativity (ways per set); power of two. */
    unsigned assoc = 4;
    /** Block size [bytes]; power of two. */
    uint32_t block_size = 32;
    /** Write policy. */
    WritePolicy write_policy = WritePolicy::WriteThrough;
    /** Write-miss allocation policy. */
    AllocPolicy alloc_policy = AllocPolicy::WriteAllocate;

    /** Number of sets. */
    uint32_t sets() const { return size / (block_size * assoc); }

    /** Validate invariants; calls fatal() on bad values. */
    void validate() const;
};

/** Hit/miss counters for one cache. */
struct CacheStats
{
    uint64_t read_hits = 0;
    uint64_t read_misses = 0;
    uint64_t write_hits = 0;
    uint64_t write_misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;

    uint64_t accesses() const
    {
        return read_hits + read_misses + write_hits + write_misses;
    }

    uint64_t misses() const { return read_misses + write_misses; }

    double missRate() const
    {
        uint64_t n = accesses();
        return n ? static_cast<double>(misses()) /
                   static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * One set-associative cache level with LRU replacement.
 */
class Cache
{
  public:
    /** Outcome of a single access, for the level above to act on. */
    struct AccessResult
    {
        /** The access hit in this cache. */
        bool hit = false;
        /** The next level must service a block fill at this address. */
        bool fill_from_below = false;
        /** The next level must accept a write (write-through store
         *  or dirty writeback). */
        bool write_below = false;
        /** Block-aligned address of the write to the next level. */
        uint32_t write_below_addr = 0;
    };

    explicit Cache(const CacheConfig &config);

    /** Configuration this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Access statistics so far. */
    const CacheStats &stats() const { return stats_; }

    /**
     * Perform a read (is_write = false) or write access. The caller
     * (hierarchy) is responsible for acting on the returned
     * fill/write-below obligations.
     */
    AccessResult access(uint32_t address, bool is_write);

    /** True if the block containing `address` is resident. */
    bool contains(uint32_t address) const;

    /** Drop all blocks and reset LRU (stats preserved). */
    void flush();

  private:
    struct Line
    {
        uint32_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t blockAddress(uint32_t address) const;
    uint32_t setIndex(uint32_t address) const;
    uint32_t tagOf(uint32_t address) const;
    Line *findLine(uint32_t address);
    const Line *findLine(uint32_t address) const;
    Line &victimLine(uint32_t set);

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Line> lines_;  // sets * assoc, set-major
    uint64_t lru_clock_ = 0;
    unsigned block_shift_ = 0;
    uint32_t set_mask_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_CACHE_CACHE_HH
