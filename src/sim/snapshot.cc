/**
 * @file
 * TwinBusSimulator checkpoint container (sim/snapshot.hh): the
 * cursor plus both buses' BusSimulator payloads (serialized by
 * fabric/bus_snapshot.cc). Field order here *is* the wire format:
 * change it and kSnapshotFormatVersion must bump.
 */

#include "sim/snapshot.hh"

#include <string>
#include <vector>

#include "fabric/bus_sim.hh"
#include "util/checkpoint.hh"

// Early-return plumbing for the field-by-field decode below.
#define NANOBUS_SNAP_TRY(expr)                                       \
    do {                                                             \
        Status try_status_ = (expr);                                 \
        if (!try_status_.ok())                                       \
            return try_status_;                                      \
    } while (0)

namespace nanobus {

Result<std::string>
encodeTwinSnapshot(const TwinBusSimulator &twin,
                   const SimCheckpoint &cursor)
{
    SnapshotWriter w;
    w.putU64(cursor.records);
    w.putU64(cursor.last_cycle);
    Status ia = twin.instructionBus().saveState(w);
    if (!ia.ok())
        return ia.error();
    Status da = twin.dataBus().saveState(w);
    if (!da.ok())
        return da.error();
    return w.buffer();
}

Status
decodeTwinSnapshot(const std::string &payload, TwinBusSimulator &twin,
                   SimCheckpoint &cursor)
{
    SnapshotReader r(payload);
    NANOBUS_SNAP_TRY(r.getU64(cursor.records));
    NANOBUS_SNAP_TRY(r.getU64(cursor.last_cycle));
    NANOBUS_SNAP_TRY(twin.instructionBus().restoreState(r));
    NANOBUS_SNAP_TRY(twin.dataBus().restoreState(r));
    if (!r.atEnd()) {
        return Status::failure(
            ErrorCode::ParseError,
            "decodeTwinSnapshot: " + std::to_string(r.remaining()) +
                " unexpected trailing bytes");
    }
    return Status();
}

Status
saveTwinCheckpoint(const std::string &path,
                   const TwinBusSimulator &twin,
                   const SimCheckpoint &cursor)
{
    Result<std::string> payload = encodeTwinSnapshot(twin, cursor);
    if (!payload.ok())
        return payload.error();
    return saveSnapshotFile(path, payload.value());
}

Result<SimCheckpoint>
loadTwinCheckpoint(const std::string &path, TwinBusSimulator &twin)
{
    Result<std::string> payload = loadSnapshotFile(path);
    if (!payload.ok())
        return payload.error();
    SimCheckpoint cursor;
    Status restored = decodeTwinSnapshot(payload.value(), twin, cursor);
    if (!restored.ok())
        return restored.error();
    return cursor;
}

} // namespace nanobus
