/**
 * @file
 * Simulation instantiation of the generic sweep-execution layer.
 *
 * exec/sweep_runner.hh and exec/supervisor.hh are generic over the
 * report payload so the execution runtime never includes simulation
 * headers (docs/STATIC_ANALYSIS.md, layering DAG). This header sits
 * above both layers and binds them together:
 *
 *  - the `exec::SweepRunner` / `exec::Supervisor` aliases every
 *    driver uses, instantiated with SweepReport;
 *  - the convenience job builders (traceSweepJob,
 *    supervisedTraceSweepJob) that wrap one robust trace sweep as a
 *    shard;
 *  - thermalFaultProbe(), the report-rejection hook that restores
 *    the old `fault_on_thermal` behaviour: a contained ThermalFault
 *    inside an otherwise-successful report fails the shard with
 *    ErrorCode::ThermalRunaway.
 */

#ifndef NANOBUS_SIM_SWEEP_HH
#define NANOBUS_SIM_SWEEP_HH

#include <string>

#include "exec/supervisor.hh"
#include "exec/sweep_runner.hh"
#include "sim/experiment.hh"

namespace nanobus {

namespace exec {

/** The simulation sweep vocabulary, bound to SweepReport. */
using SweepJob = BasicSweepJob<SweepReport>;
using BatchReport = BasicBatchReport<SweepReport>;
using SweepRunner = BasicSweepRunner<SweepReport>;
using SupervisedJob = BasicSupervisedJob<SweepReport>;
using SupervisedReport = BasicSupervisedReport<SweepReport>;
using Supervisor = BasicSupervisor<SweepReport>;

} // namespace exec

/**
 * Report-rejection probe that fails a shard whose report contains a
 * ThermalFault (ErrorCode::ThermalRunaway, first fault's message).
 * Install into SweepRunner/Supervisor Options::fault_probe to treat
 * contained thermal anomalies as shard failures rather than degraded
 * fidelity.
 */
exec::ReportFaultProbe<SweepReport> thermalFaultProbe();

/**
 * Convenience shard builder: one runRobustTraceSweep cell. The body
 * runs the robust sweep inside the shard (the sweep's own nested
 * parallelism degrades to serial by policy); whether a contained
 * ThermalFault fails the shard is the *runner's*
 * Options::fault_probe decision, applied uniformly when the batch is
 * collected.
 */
exec::SweepJob traceSweepJob(std::string label, std::string trace_path,
                             const TechnologyNode &tech,
                             BusSimConfig config,
                             size_t trace_error_budget = 1000);

/**
 * Supervised shard builder: one tryRobustTraceSweep cell, pulsing
 * around the sweep. Per-attempt isolation comes free — the body
 * constructs its reader and simulators from scratch on every
 * attempt.
 */
exec::SupervisedJob supervisedTraceSweepJob(
    std::string label, std::string trace_path,
    const TechnologyNode &tech, BusSimConfig config,
    RobustSweepOptions sweep_options = RobustSweepOptions());

} // namespace nanobus

#endif // NANOBUS_SIM_SWEEP_HH
