#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "sim/pipeline.hh"
#include "trace/io.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace nanobus {

TwinBusSimulator::TwinBusSimulator(const TechnologyNode &tech,
                                   const BusSimConfig &config,
                                   const CapacitanceMatrix *caps)
    : ia_(std::make_unique<BusSimulator>(tech, config, caps)),
      da_(std::make_unique<BusSimulator>(tech, config, caps))
{
}

void
TwinBusSimulator::accept(const TraceRecord &record)
{
    last_cycle_ = record.cycle;
    if (record.kind == AccessKind::InstructionFetch)
        ia_->transmit(record.cycle, record.address);
    else
        da_->transmit(record.cycle, record.address);
}

uint64_t
TwinBusSimulator::run(TraceSource &source)
{
    return run(source, exec::ThreadPool::global());
}

uint64_t
TwinBusSimulator::run(TraceSource &source, exec::ThreadPool &pool)
{
    // The batch pipeline handles every pool size uniformly
    // (parallelFor and the prefetch submit degrade to inline serial
    // execution at size 1) and is bit-identical to runPerRecord();
    // see sim/pipeline.hh and docs/PIPELINE.md.
    SimPipeline pipeline(*this, pool);
    Result<uint64_t> records = pipeline.run(source);
    if (!records.ok()) {
        // Sources reached through this convenience wrapper fail only
        // on environment-level trouble (the robust path reports
        // recoverable trace defects before they get here), so
        // escalate per the docs/ROBUSTNESS.md taxonomy. Callers that
        // want the error as a value drive SimPipeline directly.
        fatal("TwinBusSimulator::run: trace stream failed (%s)",
              records.error().describe().c_str());
    }
    last_cycle_ = std::max(ia_->currentCycle(), da_->currentCycle());
    return records.value();
}

uint64_t
TwinBusSimulator::runPerRecord(TraceSource &source)
{
    TraceRecord record;
    uint64_t count = 0;
    // The reference per-record loop the batch pipeline is pinned
    // against; hot paths go through SimPipeline instead.
    while (source.next(record)) { // NOLINT(raw-trace-next)
        accept(record);
        ++count;
    }
    finish(last_cycle_);
    return count;
}

void
TwinBusSimulator::finish(uint64_t cycle)
{
    ia_->advanceTo(cycle);
    da_->advanceTo(cycle);
}

EnergyCell
runEnergyStudy(const std::string &benchmark,
               const TechnologyNode &tech, EncodingScheme scheme,
               unsigned coupling_radius, uint64_t cycles,
               uint64_t seed, exec::ThreadPool *pool)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.coupling_radius = coupling_radius;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;

    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile(benchmark), seed, cycles);
    twin.run(cpu, pool ? *pool : exec::ThreadPool::global());

    EnergyCell cell;
    cell.instruction = twin.instructionBus().totalEnergy();
    cell.data = twin.dataBus().totalEnergy();
    cell.cycles = cycles;
    return cell;
}

Result<SweepReport>
tryRobustTraceSweep(const std::string &trace_path,
                    const TechnologyNode &tech,
                    const BusSimConfig &config, const Matrix *maxwell,
                    const RobustSweepOptions &options,
                    exec::ThreadPool *pool)
{
    const auto t_start = std::chrono::steady_clock::now();
    SweepReport report;

    // Resolve the physical bus width up front so a mis-sized
    // extraction can be rejected before construction fatals.
    std::unique_ptr<BusEncoder> probe = config.encoder_factory
        ? config.encoder_factory()
        : makeEncoder(config.scheme, config.data_width);
    if (!probe)
        fatal("tryRobustTraceSweep: encoder factory returned null");
    const unsigned bus_width = probe->busWidth();
    probe.reset();

    CapacitanceMatrix caps(1);
    const CapacitanceMatrix *caps_ptr = nullptr;
    if (maxwell) {
        MaxwellValidation validation;
        Result<CapacitanceMatrix> built =
            CapacitanceMatrix::tryFromMaxwell(*maxwell, &validation);
        for (const std::string &warning : validation.warnings)
            report.warnings.push_back(warning);
        if (!built.ok()) {
            report.warnings.push_back(
                "capacitance matrix rejected (" +
                built.error().describe() +
                "); using analytical matrix");
            report.analytical_fallback = true;
        } else if (built.value().size() != bus_width) {
            report.warnings.push_back(
                "capacitance matrix is for " +
                std::to_string(built.value().size()) +
                " wires but the physical bus has " +
                std::to_string(bus_width) +
                "; using analytical matrix");
            report.analytical_fallback = true;
        } else {
            caps = built.takeValue();
            caps_ptr = &caps;
        }
    }

    exec::ThreadPool &run_pool =
        pool ? *pool : exec::ThreadPool::global();
    TraceReader reader(trace_path, options.trace_error_budget);
    TwinBusSimulator twin(tech, config, caps_ptr);

    // Drive the pipeline directly (instead of TwinBusSimulator::run)
    // so stream-level failures come back as values a supervisor can
    // classify and retry rather than escalating to fatal().
    SimPipeline::Config pipeline_config;
    pipeline_config.checkpoint_path = options.checkpoint_path;
    pipeline_config.checkpoint_every_batches =
        options.checkpoint_every_batches;
    pipeline_config.resume = options.resume;
    SimPipeline pipeline(twin, run_pool, pipeline_config);
    Result<uint64_t> records = pipeline.run(reader);
    if (!records.ok())
        return records.error();

    report.records = records.value();
    report.skipped_lines = reader.skippedLines();
    report.instruction_faults = twin.instructionBus().thermalFaults();
    report.data_faults = twin.dataBus().thermalFaults();
    report.instruction_energy = twin.instructionBus().totalEnergy();
    report.data_energy = twin.dataBus().totalEnergy();
    report.completed = true;
    report.exec.threads = run_pool.size();
    report.exec.wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - t_start).count();
    return report;
}

SweepReport
runRobustTraceSweep(const std::string &trace_path,
                    const TechnologyNode &tech,
                    const BusSimConfig &config, const Matrix *maxwell,
                    size_t trace_error_budget, exec::ThreadPool *pool)
{
    RobustSweepOptions options;
    options.trace_error_budget = trace_error_budget;
    Result<SweepReport> report = tryRobustTraceSweep(
        trace_path, tech, config, maxwell, options, pool);
    if (!report.ok()) {
        fatal("runRobustTraceSweep: trace stream failed (%s)",
              report.error().describe().c_str());
    }
    return report.takeValue();
}

} // namespace nanobus
