#include "sim/experiment.hh"

#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace nanobus {

TwinBusSimulator::TwinBusSimulator(const TechnologyNode &tech,
                                   const BusSimConfig &config)
    : ia_(std::make_unique<BusSimulator>(tech, config)),
      da_(std::make_unique<BusSimulator>(tech, config))
{
}

void
TwinBusSimulator::accept(const TraceRecord &record)
{
    last_cycle_ = record.cycle;
    if (record.kind == AccessKind::InstructionFetch)
        ia_->transmit(record.cycle, record.address);
    else
        da_->transmit(record.cycle, record.address);
}

uint64_t
TwinBusSimulator::run(TraceSource &source)
{
    TraceRecord record;
    uint64_t count = 0;
    while (source.next(record)) {
        accept(record);
        ++count;
    }
    finish(last_cycle_);
    return count;
}

void
TwinBusSimulator::finish(uint64_t cycle)
{
    ia_->advanceTo(cycle);
    da_->advanceTo(cycle);
}

EnergyCell
runEnergyStudy(const std::string &benchmark,
               const TechnologyNode &tech, EncodingScheme scheme,
               unsigned coupling_radius, uint64_t cycles,
               uint64_t seed)
{
    BusSimConfig config;
    config.scheme = scheme;
    config.coupling_radius = coupling_radius;
    config.record_samples = false;
    config.thermal.stack_mode = StackMode::None;

    TwinBusSimulator twin(tech, config);
    SyntheticCpu cpu(benchmarkProfile(benchmark), seed, cycles);
    twin.run(cpu);

    EnergyCell cell;
    cell.instruction = twin.instructionBus().totalEnergy();
    cell.data = twin.dataBus().totalEnergy();
    cell.cycles = cycles;
    return cell;
}

} // namespace nanobus
