#include "sim/sweep.hh"

#include <optional>
#include <utility>

namespace nanobus {

exec::ReportFaultProbe<SweepReport>
thermalFaultProbe()
{
    return [](const SweepReport &report) -> std::optional<Error> {
        if (report.instruction_faults.empty() &&
            report.data_faults.empty())
            return std::nullopt;
        const ThermalFault &fault = report.instruction_faults.empty()
                                        ? report.data_faults.front()
                                        : report.instruction_faults
                                              .front();
        return Error{ErrorCode::ThermalRunaway,
                     fault.message.empty()
                         ? std::string(
                               thermalFaultKindName(fault.kind))
                         : fault.message};
    };
}

exec::SweepJob
traceSweepJob(std::string label, std::string trace_path,
              const TechnologyNode &tech, BusSimConfig config,
              size_t trace_error_budget)
{
    return exec::SweepJob{
        std::move(label),
        [trace_path = std::move(trace_path), &tech, config,
         trace_error_budget]() -> Result<SweepReport> {
            return runRobustTraceSweep(trace_path, tech, config,
                                       nullptr, trace_error_budget);
        }};
}

exec::SupervisedJob
supervisedTraceSweepJob(std::string label, std::string trace_path,
                        const TechnologyNode &tech,
                        BusSimConfig config,
                        RobustSweepOptions sweep_options)
{
    return exec::SupervisedJob{
        std::move(label),
        [trace_path = std::move(trace_path), &tech, config,
         sweep_options = std::move(sweep_options)](
            exec::JobContext &context) -> Result<SweepReport> {
            if (!context.pulse()) {
                return Result<SweepReport>::failure(
                    ErrorCode::BudgetExhausted,
                    "attempt aborted before the shard body ran");
            }
            // Every attempt builds its reader and simulators from
            // scratch inside the sweep, so a retry starts pristine.
            Result<SweepReport> result = tryRobustTraceSweep(
                trace_path, tech, config, nullptr, sweep_options);
            (void)context.pulse();
            return result;
        }};
}

} // namespace nanobus
