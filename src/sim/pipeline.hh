/**
 * @file
 * SimPipeline — the batch-oriented streaming replay loop every
 * experiment driver sits on.
 *
 * Stage graph (docs/PIPELINE.md):
 *
 *   TraceSource ──prefetch──▶ ingest ──▶ ┌ encode ─▶ energy/interval ┐ (IA bus)
 *                (pool task)   (split)   └ encode ─▶ energy/interval ┘ (DA bus)
 *
 *  - *Prefetch*: a PrefetchReader overlaps the next batch's trace
 *    I/O with the current batch's simulation (BatchReader when
 *    prefetching is disabled).
 *  - *Ingest*: the caller splits each RecordBatch into the two
 *    per-bus SoA BusBatch slices — exactly the record subsequence
 *    each bus would see from per-record routing.
 *  - *Encode / energy / interval-thermal close*: each bus runs
 *    BusSimulator::transmitBatch, the composable stage pair, as one
 *    parallelFor task; the two buses share no state.
 *
 * Determinism: batch boundaries are a pure function of (source,
 * batch_size); per-bus record order is the per-record order; and
 * each stage accumulates in per-record order. Results are therefore
 * bit-identical to the per-record replay at every pool size,
 * including 1 — the same contract as everything in src/exec, pinned
 * by tests/sim/test_pipeline_batch.cc and bench/perf_pipeline.
 */

#ifndef NANOBUS_SIM_PIPELINE_HH
#define NANOBUS_SIM_PIPELINE_HH

#include <cstdint>

#include "sim/experiment.hh"
#include "trace/batch.hh"
#include "util/result.hh"

namespace nanobus {

namespace exec {
class ThreadPool;
} // namespace exec

/** Batch-oriented streaming replay over a TwinBusSimulator. */
class SimPipeline
{
  public:
    struct Config
    {
        /** Records per ingest batch; must be positive. */
        size_t batch_size = kDefaultTraceBatchSize;
        /** Overlap the next batch's trace I/O with the current
         *  batch's simulation (PrefetchReader); disable to read
         *  synchronously through a BatchReader. Results are
         *  bit-identical either way. */
        bool prefetch = true;
    };

    /**
     * @param twin Twin-bus simulator to drive; must outlive the
     *        pipeline.
     * @param pool Pool the bus stages and prefetch fills run on.
     */
    SimPipeline(TwinBusSimulator &twin, exec::ThreadPool &pool);
    SimPipeline(TwinBusSimulator &twin, exec::ThreadPool &pool,
                const Config &config);

    /**
     * Replay a whole record stream, then flush trailing idle time
     * up to the last record's cycle (TwinBusSimulator::finish).
     * Returns the number of records consumed, or the underlying
     * source's error (the simulators keep the state of every batch
     * fully applied before the fault).
     */
    Result<uint64_t> run(TraceSource &source);

    /** Replay from an explicit batch stream (rare; run(TraceSource&)
     *  builds the batcher per Config). Same contract as run(). */
    Result<uint64_t> runBatches(BatchSource &batches);

  private:
    TwinBusSimulator &twin_;
    exec::ThreadPool &pool_;
    Config config_;

    /** Ingest split targets, reused across batches. */
    BusBatch ia_batch_;
    BusBatch da_batch_;
};

} // namespace nanobus

#endif // NANOBUS_SIM_PIPELINE_HH
