/**
 * @file
 * SimPipeline — the batch-oriented streaming replay loop every
 * experiment driver sits on.
 *
 * Stage graph (docs/PIPELINE.md):
 *
 *   TraceSource ──prefetch──▶ ingest ──▶ ┌ encode ─▶ energy/interval ┐ (IA bus)
 *                (pool task)   (split)   └ encode ─▶ energy/interval ┘ (DA bus)
 *
 *  - *Prefetch*: a PrefetchReader overlaps the next batch's trace
 *    I/O with the current batch's simulation (BatchReader when
 *    prefetching is disabled).
 *  - *Ingest*: the caller splits each RecordBatch into the two
 *    per-bus SoA BusBatch slices — exactly the record subsequence
 *    each bus would see from per-record routing.
 *  - *Encode / energy / interval-thermal close*: each bus runs
 *    BusSimulator::transmitBatch, the composable stage pair, as one
 *    parallelFor task; the two buses share no state.
 *
 * Determinism: batch boundaries are a pure function of (source,
 * batch_size); per-bus record order is the per-record order; and
 * each stage accumulates in per-record order. Results are therefore
 * bit-identical to the per-record replay at every pool size,
 * including 1 — the same contract as everything in src/exec, pinned
 * by tests/sim/test_pipeline_batch.cc and bench/perf_pipeline.
 */

#ifndef NANOBUS_SIM_PIPELINE_HH
#define NANOBUS_SIM_PIPELINE_HH

#include <cstdint>
#include <string>

#include "sim/experiment.hh"
#include "sim/snapshot.hh"
#include "trace/batch.hh"
#include "util/result.hh"

namespace nanobus {

namespace exec {
class ThreadPool;
} // namespace exec

/** Batch-oriented streaming replay over a TwinBusSimulator. */
class SimPipeline
{
  public:
    struct Config
    {
        /** Records per ingest batch; must be positive. */
        size_t batch_size = kDefaultTraceBatchSize;
        /** Overlap the next batch's trace I/O with the current
         *  batch's simulation (PrefetchReader); disable to read
         *  synchronously through a BatchReader. Results are
         *  bit-identical either way. */
        bool prefetch = true;
        /**
         * Checkpoint file (sim/snapshot.hh); empty disables
         * checkpointing. Written atomically every
         * `checkpoint_every_batches` ingest batches, each write
         * replacing the previous checkpoint, so the file always
         * holds the latest complete batch boundary.
         */
        std::string checkpoint_path;
        /** Ingest batches between checkpoint writes (0 disables). */
        uint64_t checkpoint_every_batches = 0;
        /**
         * Resume from `checkpoint_path` before replaying: restore
         * the twin, then skip the already-consumed record prefix
         * from the (freshly opened) source. The continued run is
         * bit-identical to one that never stopped. Any load or
         * restore failure is returned as the run's error — callers
         * that want "resume if present" semantics should check the
         * file exists first.
         */
        bool resume = false;
    };

    /**
     * @param twin Twin-bus simulator to drive; must outlive the
     *        pipeline.
     * @param pool Pool the bus stages and prefetch fills run on.
     */
    SimPipeline(TwinBusSimulator &twin, exec::ThreadPool &pool);
    SimPipeline(TwinBusSimulator &twin, exec::ThreadPool &pool,
                const Config &config);

    /**
     * Replay a whole record stream, then flush trailing idle time
     * up to the last record's cycle (TwinBusSimulator::finish).
     * Returns the number of records consumed — including, on a
     * resumed run, the prefix the checkpoint already covered — or
     * the underlying source's error (the simulators keep the state
     * of every batch fully applied before the fault).
     */
    Result<uint64_t> run(TraceSource &source);

    /** Replay from an explicit batch stream (rare; run(TraceSource&)
     *  builds the batcher per Config and handles resume). Same
     *  contract as run(). */
    Result<uint64_t> runBatches(BatchSource &batches);

  private:
    TwinBusSimulator &twin_;
    exec::ThreadPool &pool_;
    Config config_;

    /** Records a resumed checkpoint already covered; folded into
     *  the cursor of subsequent checkpoint writes and the returned
     *  record count. */
    uint64_t resume_base_ = 0;

    /** Ingest split targets, reused across batches. */
    BusBatch ia_batch_;
    BusBatch da_batch_;
};

} // namespace nanobus

#endif // NANOBUS_SIM_PIPELINE_HH
