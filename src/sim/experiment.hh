/**
 * @file
 * Experiment drivers: route an address trace into the paper's two
 * buses (instruction address and data address) and collect results.
 */

#ifndef NANOBUS_SIM_EXPERIMENT_HH
#define NANOBUS_SIM_EXPERIMENT_HH

#include <memory>
#include <string>

#include "exec/stats.hh"
#include "fabric/bus_sim.hh"
#include "trace/record.hh"
#include "util/result.hh"

namespace nanobus {

namespace exec {
class ThreadPool;
} // namespace exec

/**
 * Owns an instruction-address and a data-address BusSimulator and
 * feeds them from one trace stream, exactly as the paper's setup:
 * fetches drive the IA bus, loads and stores drive the DA bus, and
 * each bus idles (holding its last address) when it has no
 * transaction in a cycle.
 */
class TwinBusSimulator
{
  public:
    /**
     * Both buses share the technology node, configuration, and
     * (optionally) an explicit capacitance matrix; `caps == nullptr`
     * uses the ITRS-calibrated analytical matrix.
     */
    TwinBusSimulator(const TechnologyNode &tech,
                     const BusSimConfig &config,
                     const CapacitanceMatrix *caps = nullptr);

    /** Route one record to the right bus. */
    void accept(const TraceRecord &record);

    /**
     * Consume a whole source, then advance both buses to the last
     * cycle seen (flushing trailing idle time). Returns the number
     * of records consumed.
     *
     * Both overloads drive the batch-oriented SimPipeline
     * (sim/pipeline.hh): records stream in fixed-size batches with
     * the next batch's I/O prefetched on the pool while the two
     * (independent) buses simulate the current one. Each bus sees
     * exactly the record subsequence it would see from per-record
     * routing, so the results are bit-identical to runPerRecord()
     * at any pool size, including 1. The pool-less overload uses
     * ThreadPool::global().
     */
    uint64_t run(TraceSource &source);
    uint64_t run(TraceSource &source, exec::ThreadPool &pool);

    /**
     * Reference per-record replay: one accept() per source record,
     * no batching, no pool. The oracle the pipeline equivalence
     * pins (tests/sim, bench/perf_pipeline) compare against.
     */
    uint64_t runPerRecord(TraceSource &source);

    /** Flush both buses' idle time up to `cycle`. */
    void finish(uint64_t cycle);

    /** Instruction-address bus simulator. */
    BusSimulator &instructionBus() { return *ia_; }
    const BusSimulator &instructionBus() const { return *ia_; }

    /** Data-address bus simulator. */
    BusSimulator &dataBus() { return *da_; }
    const BusSimulator &dataBus() const { return *da_; }

  private:
    std::unique_ptr<BusSimulator> ia_;
    std::unique_ptr<BusSimulator> da_;
    uint64_t last_cycle_ = 0;
};

/**
 * Energy-only study result for one (benchmark, node, scheme,
 * coupling-mode) cell of Fig 3.
 */
struct EnergyCell
{
    EnergyBreakdown instruction;
    EnergyBreakdown data;
    uint64_t cycles = 0;
};

/**
 * Run a synthetic benchmark through twin buses for `cycles` cycles
 * with the given configuration and return the accumulated energies.
 * Thermal simulation is disabled (record_samples off, stack mode
 * None) since Fig 3 is an energy-only study.
 *
 * @param pool Pool feeding the twin buses (nullptr = global);
 *        results are bit-identical at every pool size.
 */
EnergyCell runEnergyStudy(const std::string &benchmark,
                          const TechnologyNode &tech,
                          EncodingScheme scheme,
                          unsigned coupling_radius, uint64_t cycles,
                          uint64_t seed = 1,
                          exec::ThreadPool *pool = nullptr);

/**
 * Outcome of a fault-tolerant trace sweep (runRobustTraceSweep).
 *
 * `completed` is true whenever the sweep ran to the end of the
 * trace, even if it had to skip malformed lines, fall back to the
 * analytical capacitance matrix, or clamp thermal excursions — the
 * point of the robust path is that one bad input degrades the
 * result's fidelity, visibly, rather than killing the batch.
 */
struct SweepReport
{
    /** Records routed into the buses. */
    uint64_t records = 0;
    /** Malformed trace lines skipped. */
    uint64_t skipped_lines = 0;
    /** Capacitance validation and condition-number warnings. */
    std::vector<std::string> warnings;
    /** Thermal faults contained on the instruction-address bus. */
    std::vector<ThermalFault> instruction_faults;
    /** Thermal faults contained on the data-address bus. */
    std::vector<ThermalFault> data_faults;
    /** The supplied Maxwell matrix was unusable and the analytical
     *  matrix was used instead. */
    bool analytical_fallback = false;
    /** The sweep consumed the whole trace. */
    bool completed = false;
    /** Accumulated instruction-address bus energy. */
    EnergyBreakdown instruction_energy;
    /** Accumulated data-address bus energy. */
    EnergyBreakdown data_energy;
    /**
     * Execution counters for this sweep: wall-clock, pool size, and
     * (when run through a SweepRunner batch) tasks/steals observed.
     * Zero-initialized threads == 1 means the sweep never touched
     * the parallel runtime.
     */
    exec::ExecStats exec;

    /** Total contained anomalies of any kind. */
    size_t faultCount() const
    {
        return skipped_lines + warnings.size() +
            instruction_faults.size() + data_faults.size();
    }
};

/** Knobs for tryRobustTraceSweep beyond the core configuration. */
struct RobustSweepOptions
{
    /** Malformed trace lines to skip before giving up. */
    size_t trace_error_budget = 1000;
    /** Checkpoint file for the underlying SimPipeline (empty
     *  disables; see SimPipeline::Config::checkpoint_path). */
    std::string checkpoint_path;
    /** Ingest batches between checkpoint writes (0 disables). */
    uint64_t checkpoint_every_batches = 0;
    /** Resume from `checkpoint_path` (must exist and match). */
    bool resume = false;
};

/**
 * Run a trace file through twin buses, degrading gracefully instead
 * of aborting: malformed trace lines are skipped up to
 * `options.trace_error_budget`, a defective `maxwell` extraction is
 * repaired or replaced by the analytical matrix (with warnings), and
 * thermal anomalies are clamped and reported. Stream-level failures
 * (an injected transient I/O fault, a checkpoint that cannot be
 * written or restored) come back as a typed Error — the seam the
 * exec::Supervisor retry loop is built on. Only environment-level
 * misconfiguration (null encoder factory, unreadable trace file)
 * remains fatal().
 *
 * @param maxwell Optional raw Maxwell capacitance matrix for the
 *        physical bus; validated via tryFromMaxwell.
 * @param pool Thread pool feeding the twin buses (nullptr =
 *        ThreadPool::global()). Results are bit-identical at every
 *        pool size; see docs/PARALLELISM.md.
 */
Result<SweepReport> tryRobustTraceSweep(
    const std::string &trace_path, const TechnologyNode &tech,
    const BusSimConfig &config, const Matrix *maxwell = nullptr,
    const RobustSweepOptions &options = RobustSweepOptions(),
    exec::ThreadPool *pool = nullptr);

/**
 * tryRobustTraceSweep with every stream-level failure escalated to
 * fatal() — the historical entry point for drivers with no retry
 * policy of their own.
 */
SweepReport runRobustTraceSweep(const std::string &trace_path,
                                const TechnologyNode &tech,
                                const BusSimConfig &config,
                                const Matrix *maxwell = nullptr,
                                size_t trace_error_budget = 1000,
                                exec::ThreadPool *pool = nullptr);

} // namespace nanobus

#endif // NANOBUS_SIM_EXPERIMENT_HH
