/**
 * @file
 * Experiment drivers: route an address trace into the paper's two
 * buses (instruction address and data address) and collect results.
 */

#ifndef NANOBUS_SIM_EXPERIMENT_HH
#define NANOBUS_SIM_EXPERIMENT_HH

#include <memory>
#include <string>

#include "sim/bus_sim.hh"
#include "trace/record.hh"

namespace nanobus {

/**
 * Owns an instruction-address and a data-address BusSimulator and
 * feeds them from one trace stream, exactly as the paper's setup:
 * fetches drive the IA bus, loads and stores drive the DA bus, and
 * each bus idles (holding its last address) when it has no
 * transaction in a cycle.
 */
class TwinBusSimulator
{
  public:
    /** Both buses share the technology node and configuration. */
    TwinBusSimulator(const TechnologyNode &tech,
                     const BusSimConfig &config);

    /** Route one record to the right bus. */
    void accept(const TraceRecord &record);

    /**
     * Consume a whole source, then advance both buses to the last
     * cycle seen (flushing trailing idle time). Returns the number
     * of records consumed.
     */
    uint64_t run(TraceSource &source);

    /** Flush both buses' idle time up to `cycle`. */
    void finish(uint64_t cycle);

    /** Instruction-address bus simulator. */
    BusSimulator &instructionBus() { return *ia_; }
    const BusSimulator &instructionBus() const { return *ia_; }

    /** Data-address bus simulator. */
    BusSimulator &dataBus() { return *da_; }
    const BusSimulator &dataBus() const { return *da_; }

  private:
    std::unique_ptr<BusSimulator> ia_;
    std::unique_ptr<BusSimulator> da_;
    uint64_t last_cycle_ = 0;
};

/**
 * Energy-only study result for one (benchmark, node, scheme,
 * coupling-mode) cell of Fig 3.
 */
struct EnergyCell
{
    EnergyBreakdown instruction;
    EnergyBreakdown data;
    uint64_t cycles = 0;
};

/**
 * Run a synthetic benchmark through twin buses for `cycles` cycles
 * with the given configuration and return the accumulated energies.
 * Thermal simulation is disabled (record_samples off, stack mode
 * None) since Fig 3 is an energy-only study.
 */
EnergyCell runEnergyStudy(const std::string &benchmark,
                          const TechnologyNode &tech,
                          EncodingScheme scheme,
                          unsigned coupling_radius, uint64_t cycles,
                          uint64_t seed = 1);

} // namespace nanobus

#endif // NANOBUS_SIM_EXPERIMENT_HH
