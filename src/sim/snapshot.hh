/**
 * @file
 * Checkpoint/resume for the twin-bus simulation.
 *
 * A SimSnapshot freezes everything a resumed run needs to be
 * bit-identical to one that never stopped: both buses' encoder
 * state, energy accumulators, thermal node temperatures, interval
 * bookkeeping, recorded time series, and the trace cursor (records
 * consumed + last cycle seen). The payload is serialized through
 * SnapshotWriter (fixed little-endian wire order, doubles as IEEE-754
 * bit patterns) and published inside the versioned, CRC-guarded
 * container of util/checkpoint.hh, so a crash mid-write leaves the
 * previous checkpoint intact and a corrupt file is rejected with a
 * typed Error instead of resuming garbage.
 *
 * SimPipeline writes checkpoints at ingest-batch boundaries
 * (Config::checkpoint_every_batches); batch boundaries are a pure
 * function of (source contents, batch_size), so the restored state
 * rejoins the uninterrupted run exactly between two batches. The
 * bit-identity pin lives in tests/sim/test_snapshot.cc; the format is
 * documented in docs/ROBUSTNESS.md.
 */

#ifndef NANOBUS_SIM_SNAPSHOT_HH
#define NANOBUS_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "sim/experiment.hh"
#include "util/result.hh"

namespace nanobus {

/** Trace-stream cursor stored alongside the twin-bus state. */
struct SimCheckpoint
{
    /** Records consumed from the trace source so far. */
    uint64_t records = 0;
    /** Cycle of the last record consumed (finish() flush target). */
    uint64_t last_cycle = 0;
};

/**
 * Serialize the twin's full mutable state plus the stream cursor
 * into a snapshot payload (no container header; pair with
 * saveSnapshotFile, or use saveTwinCheckpoint below). Fails when an
 * encoder does not support state capture.
 */
Result<std::string> encodeTwinSnapshot(const TwinBusSimulator &twin,
                                       const SimCheckpoint &cursor);

/**
 * Restore a payload produced by encodeTwinSnapshot into an
 * identically configured twin. Errors leave the twin in an
 * unspecified partially-restored state — discard it and cold-start.
 */
[[nodiscard]] Status decodeTwinSnapshot(const std::string &payload,
                                        TwinBusSimulator &twin,
                                        SimCheckpoint &cursor);

/** encodeTwinSnapshot + atomic, CRC-guarded publication to `path`. */
[[nodiscard]] Status saveTwinCheckpoint(const std::string &path,
                                        const TwinBusSimulator &twin,
                                        const SimCheckpoint &cursor);

/**
 * Load, validate, and restore a checkpoint written by
 * saveTwinCheckpoint, returning the stream cursor so the caller can
 * skip the already-consumed trace prefix. IoError when the file
 * cannot be read (treat as "no checkpoint yet"); ParseError when the
 * container or payload is damaged; InvalidArgument when the snapshot
 * does not match this twin's configuration.
 */
Result<SimCheckpoint> loadTwinCheckpoint(const std::string &path,
                                         TwinBusSimulator &twin);

} // namespace nanobus

#endif // NANOBUS_SIM_SNAPSHOT_HH
