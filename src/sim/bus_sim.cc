#include "sim/bus_sim.hh"

#include <algorithm>
#include <cmath>

#include "tech/layer_stack.hh"
#include "thermal/interlayer.hh"
#include "util/logging.hh"

namespace nanobus {

BusSimulator::BusSimulator(const TechnologyNode &tech,
                           const BusSimConfig &config,
                           const CapacitanceMatrix *caps)
    : tech_(tech), config_(config),
      encoder_(config.encoder_factory
                   ? config.encoder_factory()
                   : makeEncoder(config.scheme, config.data_width)),
      interval_end_(config.interval_cycles)
{
    if (config_.interval_cycles == 0)
        fatal("BusSimulator: interval length must be positive");
    if (!encoder_)
        fatal("BusSimulator: encoder factory returned null");
    if (encoder_->dataWidth() != config_.data_width)
        fatal("BusSimulator: encoder is for %u-bit payloads but the "
              "config says %u", encoder_->dataWidth(),
              config_.data_width);

    const unsigned bus_width = encoder_->busWidth();

    CapacitanceMatrix matrix = caps
        ? *caps
        : CapacitanceMatrix::analytical(tech, bus_width);
    if (matrix.size() != bus_width)
        fatal("BusSimulator: capacitance matrix is for %u wires but "
              "the physical bus has %u", matrix.size(), bus_width);

    BusEnergyModel::Config energy_config;
    energy_config.wire_length = config_.wire_length;
    energy_config.coupling_radius = config_.coupling_radius;
    energy_config.include_repeaters = config_.include_repeaters;
    energy_ = std::make_unique<BusEnergyModel>(tech, matrix,
                                               energy_config);

    ThermalConfig thermal_config = config_.thermal;
    if (thermal_config.stack_mode != StackMode::None &&
        thermal_config.delta_theta.raw() == 0.0) {
        MetalLayerStack stack(tech);
        thermal_config.delta_theta =
            InterLayerModel(tech, stack).deltaTheta();
    }
    thermal_ = std::make_unique<ThermalNetwork>(tech, bus_width,
                                                thermal_config);
    thermal_->reset(config_.initial_temperature);

    interval_line_energy_.assign(bus_width, 0.0);
    power_scratch_.assign(bus_width, 0.0);
}

void
BusSimulator::closeInterval()
{
    // cycles / f_clk composes to seconds.
    const Seconds interval_seconds =
        static_cast<double>(config_.interval_cycles) /
        tech_.f_clk;

    // Average per-line power over the interval [W/m]; the per-line
    // energy buffer is raw, so divide by the raw J -> W/m factor.
    const double denom =
        (interval_seconds * config_.wire_length).raw();
    for (unsigned i = 0; i < busWidth(); ++i)
        power_scratch_[i] = interval_line_energy_[i] / denom;
    std::vector<ThermalFault> faults =
        thermal_->advanceChecked(power_scratch_, interval_seconds);
    for (ThermalFault &fault : faults) {
        fault.cycle = interval_end_;
        thermal_faults_.push_back(std::move(fault));
    }

    // Supply-current profile (Sec 5.3.1): the charge for every
    // dissipated joule is drawn from the rails at Vdd; J / (V s)
    // composes to amps.
    const Amps avg_current =
        interval_energy_.total() / (tech_.vdd * interval_seconds);
    current_.add(avg_current.raw());
    if (have_last_current_) {
        didt_.add(std::fabs(avg_current.raw() -
                            last_interval_current_) /
                  interval_seconds.raw());
    }
    last_interval_current_ = avg_current.raw();
    have_last_current_ = true;

    if (config_.record_samples) {
        IntervalSample sample;
        sample.end_cycle = interval_end_;
        sample.transmissions = interval_transmissions_;
        sample.energy = interval_energy_;
        sample.avg_temperature = thermal_->averageTemperature();
        sample.max_temperature = thermal_->maxTemperature();
        sample.avg_current = avg_current;
        samples_.push_back(sample);
    }

    std::fill(interval_line_energy_.begin(),
              interval_line_energy_.end(), 0.0);
    interval_energy_ = EnergyBreakdown();
    interval_transmissions_ = 0;
    interval_end_ += config_.interval_cycles;
}

void
BusSimulator::advanceTo(uint64_t cycle)
{
    if (cycle < current_cycle_)
        fatal("BusSimulator: cycle %llu moves backwards from %llu",
              static_cast<unsigned long long>(cycle),
              static_cast<unsigned long long>(current_cycle_));
    while (interval_end_ <= cycle)
        closeInterval();
    current_cycle_ = cycle;
}

void
BusSimulator::transmit(uint64_t cycle, uint32_t address)
{
    advanceTo(cycle);

    uint64_t bus_word = encoder_->encode(address);
    energy_->step(bus_word);

    interval_energy_ += energy_->lastBreakdown();
    const std::vector<double> &line_energy = energy_->lastLineEnergy();
    for (unsigned i = 0; i < busWidth(); ++i)
        interval_line_energy_[i] += line_energy[i];
    ++transmissions_;
    ++interval_transmissions_;
}

} // namespace nanobus
