#include "sim/pipeline.hh"

#include <algorithm>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "util/logging.hh"

namespace nanobus {

SimPipeline::SimPipeline(TwinBusSimulator &twin,
                         exec::ThreadPool &pool)
    : SimPipeline(twin, pool, Config())
{
}

SimPipeline::SimPipeline(TwinBusSimulator &twin,
                         exec::ThreadPool &pool,
                         const Config &config)
    : twin_(twin), pool_(pool), config_(config)
{
    if (config_.batch_size == 0)
        fatal("SimPipeline: batch size must be positive");
}

Result<uint64_t>
SimPipeline::run(TraceSource &source)
{
    if (config_.prefetch) {
        PrefetchReader reader(source, pool_, config_.batch_size);
        return runBatches(reader);
    }
    BatchReader reader(source, config_.batch_size);
    return runBatches(reader);
}

Result<uint64_t>
SimPipeline::runBatches(BatchSource &batches)
{
    uint64_t count = 0;
    // An empty stream must leave the buses where they are (finish
    // with the current cycle), matching the per-record loop.
    uint64_t last_cycle =
        std::max(twin_.instructionBus().currentCycle(),
                 twin_.dataBus().currentCycle());
    for (;;) {
        Result<RecordBatch> next = batches.nextBatch();
        if (!next.ok())
            return next.error();
        const RecordBatch batch = next.value();
        if (batch.empty())
            break;

        // Ingest: split into the per-bus SoA slices. Each bus sees
        // exactly the subsequence per-record routing would hand it.
        ia_batch_.clear();
        da_batch_.clear();
        for (const TraceRecord &record : batch) {
            if (record.kind == AccessKind::InstructionFetch)
                ia_batch_.add(record.cycle, record.address);
            else
                da_batch_.add(record.cycle, record.address);
        }
        count += batch.size();
        last_cycle = batch[batch.size() - 1].cycle;

        // Encode + energy/interval stages: the buses share no
        // state, so each runs as one task. While they simulate, the
        // prefetch fill for the next batch proceeds on the pool.
        exec::parallelFor(
            pool_, 2,
            [&](size_t begin, size_t end) {
                for (size_t bus = begin; bus < end; ++bus) {
                    if (bus == 0)
                        twin_.instructionBus()
                            .transmitBatch(ia_batch_);
                    else
                        twin_.dataBus().transmitBatch(da_batch_);
                }
            },
            1);
    }
    twin_.finish(last_cycle);
    return count;
}

} // namespace nanobus
