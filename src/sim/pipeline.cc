#include "sim/pipeline.hh"

#include <algorithm>
#include <string>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "util/logging.hh"

namespace nanobus {

SimPipeline::SimPipeline(TwinBusSimulator &twin,
                         exec::ThreadPool &pool)
    : SimPipeline(twin, pool, Config())
{
}

SimPipeline::SimPipeline(TwinBusSimulator &twin,
                         exec::ThreadPool &pool,
                         const Config &config)
    : twin_(twin), pool_(pool), config_(config)
{
    if (config_.batch_size == 0)
        fatal("SimPipeline: batch size must be positive");
}

Result<uint64_t>
SimPipeline::run(TraceSource &source)
{
    resume_base_ = 0;
    if (config_.resume && !config_.checkpoint_path.empty()) {
        Result<SimCheckpoint> checkpoint =
            loadTwinCheckpoint(config_.checkpoint_path, twin_);
        if (!checkpoint.ok())
            return checkpoint.error();
        // Skip the record prefix the checkpoint already covers.
        // Batch boundaries are a pure function of (source contents,
        // batch_size), and the checkpoint cursor always sits on one,
        // so the first fresh batch below starts exactly where the
        // interrupted run's next batch would have.
        TraceRecord record;
        for (uint64_t i = 0; i < checkpoint.value().records; ++i) {
            if (!source.next(record)) { // NOLINT(raw-trace-next)
                return Result<uint64_t>::failure(
                    ErrorCode::InvalidArgument,
                    "resume: checkpoint covers " +
                        std::to_string(checkpoint.value().records) +
                        " records but the trace ended after " +
                        std::to_string(i));
            }
        }
        resume_base_ = checkpoint.value().records;
    }
    if (config_.prefetch) {
        PrefetchReader reader(source, pool_, config_.batch_size);
        return runBatches(reader);
    }
    BatchReader reader(source, config_.batch_size);
    return runBatches(reader);
}

Result<uint64_t>
SimPipeline::runBatches(BatchSource &batches)
{
    uint64_t count = 0;
    uint64_t batches_done = 0;
    const bool checkpointing = !config_.checkpoint_path.empty() &&
        config_.checkpoint_every_batches > 0;
    // An empty stream must leave the buses where they are (finish
    // with the current cycle), matching the per-record loop. On a
    // resumed run the restored buses already sit at the checkpoint
    // cycle, so an already-exhausted source finishes where the
    // interrupted run stood.
    uint64_t last_cycle =
        std::max(twin_.instructionBus().currentCycle(),
                 twin_.dataBus().currentCycle());
    for (;;) {
        Result<RecordBatch> next = batches.nextBatch();
        if (!next.ok())
            return next.error();
        const RecordBatch batch = next.value();
        if (batch.empty())
            break;

        // Ingest: split into the per-bus SoA slices. Each bus sees
        // exactly the subsequence per-record routing would hand it.
        ia_batch_.clear();
        da_batch_.clear();
        scatterByKind(batch, ia_batch_, da_batch_);
        count += batch.size();
        last_cycle = batch[batch.size() - 1].cycle;

        // Encode + energy/interval stages: the buses share no
        // state, so each runs as one task. While they simulate, the
        // prefetch fill for the next batch proceeds on the pool.
        exec::parallelFor(
            pool_, 2,
            [&](size_t begin, size_t end) {
                for (size_t bus = begin; bus < end; ++bus) {
                    if (bus == 0)
                        twin_.instructionBus()
                            .transmitBatch(ia_batch_);
                    else
                        twin_.dataBus().transmitBatch(da_batch_);
                }
            },
            1);

        ++batches_done;
        if (checkpointing &&
            batches_done % config_.checkpoint_every_batches == 0) {
            // The twin is at a batch boundary with every record up
            // to `count` fully applied — exactly the state a resumed
            // run reconstructs. finish() has not run, matching the
            // mid-stream state of an uninterrupted run.
            Status saved = saveTwinCheckpoint(
                config_.checkpoint_path, twin_,
                SimCheckpoint{resume_base_ + count, last_cycle});
            if (!saved.ok())
                return saved.error();
        }
    }
    twin_.finish(last_cycle);
    return resume_base_ + count;
}

} // namespace nanobus
