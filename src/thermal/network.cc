#include "thermal/network.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "la/lu.hh"
#include "util/logging.hh"

namespace nanobus {

const char *
thermalFaultKindName(ThermalFault::Kind kind)
{
    switch (kind) {
      case ThermalFault::Kind::NonFinite:  return "non-finite";
      case ThermalFault::Kind::Ceiling:    return "ceiling";
      case ThermalFault::Kind::Divergence: return "divergence";
    }
    return "unknown";
}

ThermalNetwork::ThermalNetwork(const TechnologyNode &tech,
                               unsigned num_wires,
                               const ThermalConfig &config)
    : num_wires_(num_wires), config_(config), params_(tech),
      solver_(num_wires +
              (config.stack_mode == StackMode::Dynamic ? 1 : 0))
{
    if (num_wires == 0)
        fatal("ThermalNetwork: bus must have at least one wire");
    if (config_.ambient.raw() <= 0.0)
        fatal("ThermalNetwork: ambient %g K must be positive",
              config_.ambient.raw());

    r_self_ = params_.selfResistance().raw();
    r_lateral_ = params_.lateralResistance().raw();
    c_wire_ = params_.capacitance().raw();

    if (dynamicStack()) {
        if (config_.stack_resistance.raw() <= 0.0 ||
            config_.stack_time_constant.raw() <= 0.0)
            fatal("ThermalNetwork: dynamic stack needs positive "
                  "resistance and time constant");
        // s / (K m / W) composes to J / (K m); K / (K m / W) to W/m.
        c_stack_ = (config_.stack_time_constant /
                    config_.stack_resistance).raw();
        p_lower_ = (config_.delta_theta /
                    config_.stack_resistance).raw();
    }

    // Explicit RK4 stability: bound the step by the fastest node
    // time constant. A wire's effective conductance combines its
    // downward path and both lateral paths.
    double wire_conductance = 1.0 / r_self_;
    if (config_.lateral_coupling && num_wires_ > 1)
        wire_conductance += 2.0 / r_lateral_;
    double tau_wire = c_wire_ / wire_conductance;
    double tau_min = tau_wire;
    if (dynamicStack()) {
        double stack_conductance =
            1.0 / config_.stack_resistance.raw() +
            static_cast<double>(num_wires_) / r_self_;
        tau_min = std::min(tau_min, c_stack_ / stack_conductance);
    }
    dt_ = config_.max_dt.raw() > 0.0 ? config_.max_dt.raw()
                                     : 0.2 * tau_min;

    state_.assign(solver_.dimension(), config_.ambient.raw());
}

double
ThermalNetwork::referenceTemperature() const
{
    switch (config_.stack_mode) {
      case StackMode::None:
        return config_.ambient.raw();
      case StackMode::Static:
        return (config_.ambient + config_.delta_theta).raw();
      case StackMode::Dynamic:
        return state_.back();
    }
    panic("ThermalNetwork: bad stack mode");
}

Kelvin
ThermalNetwork::temperature(unsigned i) const
{
    if (i >= num_wires_)
        panic("ThermalNetwork::temperature: wire %u out of %u",
              i, num_wires_);
    return Kelvin{state_[i]};
}

std::vector<double>
ThermalNetwork::temperatures() const
{
    return std::vector<double>(state_.begin(),
                               state_.begin() + num_wires_);
}

double
ThermalNetwork::maxTemperatureRaw() const
{
    return *std::max_element(state_.begin(),
                             state_.begin() + num_wires_);
}

Kelvin
ThermalNetwork::maxTemperature() const
{
    return Kelvin{maxTemperatureRaw()};
}

Kelvin
ThermalNetwork::averageTemperature() const
{
    double sum = std::accumulate(state_.begin(),
                                 state_.begin() + num_wires_, 0.0);
    return Kelvin{sum / static_cast<double>(num_wires_)};
}

Kelvin
ThermalNetwork::stackTemperature() const
{
    return Kelvin{dynamicStack() ? state_.back()
                                 : referenceTemperature()};
}

void
ThermalNetwork::reset(Kelvin temperature)
{
    std::fill(state_.begin(), state_.end(), temperature.raw());
    last_max_temp_ = temperature.raw();
    rising_streak_ = 0;
}

Status
ThermalNetwork::restoreSnapshotState(const SnapshotState &s)
{
    if (s.nodes.size() != state_.size()) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreSnapshotState: " +
                std::to_string(s.nodes.size()) + " node(s) for a " +
                std::to_string(state_.size()) + "-node network");
    }
    state_ = s.nodes;
    last_max_temp_ = s.last_max_temp;
    rising_streak_ = s.rising_streak;
    return Status();
}

void
ThermalNetwork::derivative(const std::vector<double> &theta,
                           std::vector<double> &dtheta,
                           const std::vector<double> &power) const
{
    const double ref = dynamicStack()
        ? theta[num_wires_]
        : referenceTemperature();

    double into_stack = 0.0;
    for (unsigned i = 0; i < num_wires_; ++i) {
        double downward = (theta[i] - ref) / r_self_;
        double lateral = 0.0;
        if (config_.lateral_coupling) {
            // Eq 3 for edge wires (one neighbor), Eq 4 for middle
            // wires (two neighbors).
            if (i > 0)
                lateral += (theta[i] - theta[i - 1]) / r_lateral_;
            if (i + 1 < num_wires_)
                lateral += (theta[i] - theta[i + 1]) / r_lateral_;
        }
        dtheta[i] = (power[i] - downward - lateral) / c_wire_;
        into_stack += downward;
    }

    if (dynamicStack()) {
        double to_ambient =
            (theta[num_wires_] - config_.ambient.raw()) /
            config_.stack_resistance.raw();
        dtheta[num_wires_] =
            (p_lower_ + into_stack - to_ambient) / c_stack_;
    }
}

void
ThermalNetwork::advance(const std::vector<double> &power_per_metre,
                        Seconds duration)
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::advance: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);
    if (duration.raw() < 0.0)
        fatal("ThermalNetwork::advance: negative duration %g",
              duration.raw());
    if (duration.raw() == 0.0)
        return;

    auto deriv = [this, &power_per_metre](
        double, const std::vector<double> &y,
        std::vector<double> &dydt) {
        derivative(y, dydt, power_per_metre);
    };
    solver_.integrate(deriv, 0.0, duration.raw(), dt_, state_);
}

std::vector<ThermalFault>
ThermalNetwork::advanceChecked(
    const std::vector<double> &power_per_metre, Seconds duration)
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::advanceChecked: %zu powers for %u "
              "wires", power_per_metre.size(), num_wires_);
    if (duration.raw() < 0.0)
        fatal("ThermalNetwork::advanceChecked: negative duration %g",
              duration.raw());

    std::vector<ThermalFault> faults;
    char buf[160];
    if (duration.raw() == 0.0)
        return faults;

    auto deriv = [this, &power_per_metre](
        double, const std::vector<double> &y,
        std::vector<double> &dydt) {
        derivative(y, dydt, power_per_metre);
    };
    IntegrationReport report = solver_.integrateChecked(
        deriv, 0.0, duration.raw(), dt_, state_,
        config_.max_integration_retries);
    if (!report.ok) {
        // integrateChecked leaves the state at the last finite value
        // it reached; contain any residual poison defensively.
        ThermalFault fault;
        fault.kind = ThermalFault::Kind::NonFinite;
        std::snprintf(buf, sizeof(buf),
                      "integration failed after %.3g of %.3g s (%s)",
                      report.completed_time, duration.raw(),
                      report.error.message.c_str());
        fault.message = buf;
        for (size_t i = 0; i < state_.size(); ++i) {
            if (!std::isfinite(state_[i])) {
                fault.node = static_cast<unsigned>(i);
                fault.temperature = Kelvin{state_[i]};
                state_[i] = config_.ambient.raw();
            }
        }
        warn("ThermalNetwork: %s", buf);
        faults.push_back(fault);
    }

    // Physical ceiling: clamp and report every node above it.
    if (config_.temperature_ceiling.raw() > 0.0) {
        for (size_t i = 0; i < state_.size(); ++i) {
            if (state_[i] > config_.temperature_ceiling.raw()) {
                ThermalFault fault;
                fault.kind = ThermalFault::Kind::Ceiling;
                fault.node = static_cast<unsigned>(i);
                fault.temperature = Kelvin{state_[i]};
                std::snprintf(buf, sizeof(buf),
                              "node %zu at %.1f K exceeds ceiling "
                              "%.1f K; clamped", i, state_[i],
                              config_.temperature_ceiling.raw());
                fault.message = buf;
                warn("ThermalNetwork: %s", buf);
                faults.push_back(fault);
                state_[i] = config_.temperature_ceiling.raw();
            }
        }
    }

    // Monotonic divergence: a passive RC network driven by constant
    // power can approach its steady state from above (cooling) but
    // cannot keep rising beyond it. Rising peaks above the bound for
    // several consecutive advances mean the integration is unstable;
    // clamp the wires back onto the steady-state solution.
    double max_temp = maxTemperatureRaw();
    if (config_.divergence_streak > 0 &&
        max_temp > last_max_temp_ + 1e-9) {
        std::vector<double> ss = steadyState(power_per_metre);
        double ss_max = *std::max_element(ss.begin(), ss.end());
        const double margin =
            5.0 + 1e-6 * std::fabs(ss_max); // [K]
        if (max_temp > ss_max + margin) {
            if (++rising_streak_ >= config_.divergence_streak) {
                ThermalFault fault;
                fault.kind = ThermalFault::Kind::Divergence;
                fault.temperature = Kelvin{max_temp};
                for (unsigned i = 0; i < num_wires_; ++i) {
                    if (state_[i] == max_temp)
                        fault.node = i;
                    state_[i] = std::min(state_[i], ss[i]);
                }
                std::snprintf(buf, sizeof(buf),
                              "peak %.1f K rose %u advances beyond "
                              "the %.1f K steady-state bound; clamped "
                              "to steady state", max_temp,
                              rising_streak_, ss_max);
                fault.message = buf;
                warn("ThermalNetwork: %s", buf);
                faults.push_back(fault);
                rising_streak_ = 0;
                max_temp = maxTemperatureRaw();
            }
        } else {
            rising_streak_ = 0;
        }
    } else {
        rising_streak_ = 0;
    }
    last_max_temp_ = max_temp;

    return faults;
}

std::vector<double>
ThermalNetwork::steadyState(
    const std::vector<double> &power_per_metre) const
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::steadyState: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);

    const bool dyn = dynamicStack();
    const size_t n = num_wires_ + (dyn ? 1 : 0);
    Matrix a(n, n, 0.0);
    std::vector<double> b(n, 0.0);

    const double g_self = 1.0 / r_self_;
    const double g_lat =
        config_.lateral_coupling ? 1.0 / r_lateral_ : 0.0;
    const double ref = dyn ? 0.0 : referenceTemperature();

    for (unsigned i = 0; i < num_wires_; ++i) {
        a(i, i) += g_self;
        if (dyn)
            a(i, num_wires_) -= g_self;
        else
            b[i] += g_self * ref;
        if (g_lat > 0.0) {
            if (i > 0) {
                a(i, i) += g_lat;
                a(i, i - 1) -= g_lat;
            }
            if (i + 1 < num_wires_) {
                a(i, i) += g_lat;
                a(i, i + 1) -= g_lat;
            }
        }
        b[i] += power_per_metre[i];
    }

    if (dyn) {
        const size_t s = num_wires_;
        double g_stack = 1.0 / config_.stack_resistance.raw();
        a(s, s) += g_stack;
        b[s] += g_stack * config_.ambient.raw() + p_lower_;
        for (unsigned i = 0; i < num_wires_; ++i) {
            a(s, s) += g_self;
            a(s, i) -= g_self;
        }
    }

    LuFactorization lu(std::move(a));
    std::vector<double> solution = lu.solve(b);
    solution.resize(num_wires_);
    return solution;
}

} // namespace nanobus
