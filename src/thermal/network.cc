#include "thermal/network.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

const char *
thermalFaultKindName(ThermalFault::Kind kind)
{
    switch (kind) {
      case ThermalFault::Kind::NonFinite:  return "non-finite";
      case ThermalFault::Kind::Ceiling:    return "ceiling";
      case ThermalFault::Kind::Divergence: return "divergence";
    }
    return "unknown";
}

const char *
thermalSolverName(ThermalSolver solver)
{
    switch (solver) {
      case ThermalSolver::Rk4:           return "rk4";
      case ThermalSolver::BackwardEuler: return "backward-euler";
      case ThermalSolver::Trapezoidal:   return "trapezoidal";
    }
    return "unknown";
}

std::optional<ThermalSolver>
parseThermalSolver(const std::string &name)
{
    if (name == "rk4")
        return ThermalSolver::Rk4;
    if (name == "be" || name == "backward-euler")
        return ThermalSolver::BackwardEuler;
    if (name == "cn" || name == "trapezoidal")
        return ThermalSolver::Trapezoidal;
    return std::nullopt;
}

namespace {

/** The ImplicitMethod a ThermalSolver maps onto (Rk4 has none). */
ImplicitMethod
implicitMethodFor(ThermalSolver solver)
{
    return solver == ThermalSolver::BackwardEuler
        ? ImplicitMethod::BackwardEuler
        : ImplicitMethod::Trapezoidal;
}

} // anonymous namespace

ThermalNetwork::ThermalNetwork(const TechnologyNode &tech,
                               unsigned num_wires,
                               const ThermalConfig &config)
    : num_wires_(num_wires), config_(config), params_(tech),
      solver_(num_wires +
              (config.stack_mode == StackMode::Dynamic ? 1 : 0)),
      implicit_(num_wires +
                (config.stack_mode == StackMode::Dynamic ? 1 : 0))
{
    if (num_wires == 0)
        fatal("ThermalNetwork: bus must have at least one wire");
    if (config_.ambient.raw() <= 0.0)
        fatal("ThermalNetwork: ambient %g K must be positive",
              config_.ambient.raw());
    if (config_.implicit_steps == 0)
        fatal("ThermalNetwork: implicit_steps must be >= 1");

    r_self_ = params_.selfResistance().raw();
    r_lateral_ = params_.lateralResistance().raw();
    c_wire_ = params_.capacitance().raw();

    if (dynamicStack()) {
        if (config_.stack_resistance.raw() <= 0.0 ||
            config_.stack_time_constant.raw() <= 0.0)
            fatal("ThermalNetwork: dynamic stack needs positive "
                  "resistance and time constant");
        // s / (K m / W) composes to J / (K m); K / (K m / W) to W/m.
        c_stack_ = (config_.stack_time_constant /
                    config_.stack_resistance).raw();
        p_lower_ = (config_.delta_theta /
                    config_.stack_resistance).raw();
    }

    // A user-supplied ceiling is taken as-is (ThermalConfig::max_dt:
    // tests deliberately exceed the stability bound to exercise the
    // divergence guard); 0 derives the contract-checked step.
    dt_ = config_.max_dt.raw() > 0.0 ? config_.max_dt.raw()
                                     : deriveRk4Step();

    assembleJacobian();
    forcing_.assign(solver_.dimension(), 0.0);
    state_.assign(solver_.dimension(), config_.ambient.raw());
}

double
ThermalNetwork::deriveRk4Step() const
{
    // Explicit RK4 stability: bound the step by the fastest node
    // time constant. A wire's effective conductance combines its
    // downward path and both lateral paths.
    double wire_conductance = 1.0 / r_self_;
    if (config_.lateral_coupling && num_wires_ > 1)
        wire_conductance += 2.0 / r_lateral_;
    double tau_min = c_wire_ / wire_conductance;
    if (dynamicStack()) {
        double stack_conductance =
            1.0 / config_.stack_resistance.raw() +
            static_cast<double>(num_wires_) / r_self_;
        tau_min = std::min(tau_min, c_stack_ / stack_conductance);
    }
    const double step = 0.2 * tau_min;
    // Gershgorin bounds the stiffest eigenvalue by |lambda| <=
    // 2 / tau_min; RK4's real-axis stability interval |lambda| dt <
    // 2.785 therefore needs dt < 1.39 tau_min. The derived step must
    // sit inside that interval (with its designed ~7x margin) or the
    // default integration would silently diverge.
    NANOBUS_ENSURE(step > 0.0 && std::isfinite(step) &&
                       2.0 * step / tau_min < 2.785,
                   "derived RK4 step %g s outside the stability "
                   "interval of tau_min %g s", step, tau_min);
    return step;
}

void
ThermalNetwork::assembleJacobian()
{
    const bool dyn = dynamicStack();
    jacobian_ = dyn ? BandedMatrix::bordered(num_wires_)
                    : BandedMatrix::tridiagonal(num_wires_);

    const double g_self = 1.0 / r_self_;
    const double g_lat =
        config_.lateral_coupling ? 1.0 / r_lateral_ : 0.0;

    for (unsigned i = 0; i < num_wires_; ++i) {
        double g_total = g_self;
        if (g_lat > 0.0) {
            if (i > 0) {
                g_total += g_lat;
                jacobian_.lower(i - 1) = g_lat / c_wire_;  // a(i, i-1)
            }
            if (i + 1 < num_wires_) {
                g_total += g_lat;
                jacobian_.upper(i) = g_lat / c_wire_;      // a(i, i+1)
            }
        }
        jacobian_.diag(i) = -g_total / c_wire_;
        if (dyn)
            jacobian_.borderCol(i) = g_self / c_wire_;
    }

    if (dyn) {
        const double g_stack = 1.0 / config_.stack_resistance.raw();
        for (unsigned i = 0; i < num_wires_; ++i)
            jacobian_.borderRow(i) = g_self / c_stack_;
        jacobian_.corner() =
            -(static_cast<double>(num_wires_) * g_self + g_stack) /
            c_stack_;
    }
}

void
ThermalNetwork::buildForcing(const std::vector<double> &power)
{
    const bool dyn = dynamicStack();
    const double g_self = 1.0 / r_self_;
    const double ref = dyn ? 0.0 : referenceTemperature();

    for (unsigned i = 0; i < num_wires_; ++i) {
        forcing_[i] = power[i] / c_wire_;
        if (!dyn)
            forcing_[i] += g_self * ref / c_wire_;
    }
    if (dyn) {
        const double g_stack = 1.0 / config_.stack_resistance.raw();
        forcing_[num_wires_] =
            (p_lower_ + g_stack * config_.ambient.raw()) / c_stack_;
    }
}

Status
ThermalNetwork::prepareImplicit(double dt)
{
    if (step_factor_ && factored_dt_ == dt)
        return Status();

    // M = I - c dt A shares the Jacobian's structure. A is a (weakly
    // diagonally dominant) M-matrix, so M is *strictly* diagonally
    // dominant for any dt > 0 — exactly the la/banded no-pivoting
    // contract.
    const double h =
        implicitOperatorCoefficient(implicitMethodFor(config_.solver)) *
        dt;
    BandedMatrix m = dynamicStack()
        ? BandedMatrix::bordered(num_wires_)
        : BandedMatrix::tridiagonal(num_wires_);
    for (unsigned i = 0; i < num_wires_; ++i) {
        m.diag(i) = 1.0 - h * jacobian_.diag(i);
        if (i + 1 < num_wires_) {
            m.upper(i) = -h * jacobian_.upper(i);
            m.lower(i) = -h * jacobian_.lower(i);
        }
        if (dynamicStack()) {
            m.borderCol(i) = -h * jacobian_.borderCol(i);
            m.borderRow(i) = -h * jacobian_.borderRow(i);
        }
    }
    if (dynamicStack())
        m.corner() = 1.0 - h * jacobian_.corner();

    Result<BandedFactorization> factor =
        BandedFactorization::tryFactor(std::move(m));
    if (!factor.ok()) {
        step_factor_.reset();
        factored_dt_ = 0.0;
        return Status::failure(
            factor.error().code,
            "implicit stepping operator: " + factor.error().message);
    }
    step_factor_ = std::make_unique<BandedFactorization>(
        factor.takeValue());
    factored_dt_ = dt;
    return Status();
}

IntegrationReport
ThermalNetwork::integrateInterval(const std::vector<double> &power,
                                  double duration)
{
    if (config_.solver == ThermalSolver::Rk4) {
        auto deriv = [this, &power](double,
                                    const std::vector<double> &y,
                                    std::vector<double> &dydt) {
            derivative(y, dydt, power);
        };
        return solver_.integrateChecked(
            deriv, 0.0, duration, dt_, state_,
            config_.max_integration_retries);
    }

    // Implicit path: the step derives from the horizon, not from
    // stiffness — one factorization per distinct step width, reused
    // across the equal-length intervals a trace replay produces.
    const unsigned steps = config_.implicit_steps;
    const double dt = duration / static_cast<double>(steps);
    IntegrationReport report;
    Status prepared = prepareImplicit(dt);
    if (!prepared.ok()) {
        report.ok = false;
        report.error = prepared.error();
        return report;
    }
    buildForcing(power);
    auto apply = [this](const std::vector<double> &y,
                        std::vector<double> &ay) {
        jacobian_.multiply(y, ay);
    };
    return implicit_.integrateChecked(
        implicitMethodFor(config_.solver), *step_factor_, apply,
        forcing_, dt, steps, state_);
}

double
ThermalNetwork::referenceTemperature() const
{
    switch (config_.stack_mode) {
      case StackMode::None:
        return config_.ambient.raw();
      case StackMode::Static:
        return (config_.ambient + config_.delta_theta).raw();
      case StackMode::Dynamic:
        return state_.back();
    }
    panic("ThermalNetwork: bad stack mode");
}

Kelvin
ThermalNetwork::temperature(unsigned i) const
{
    if (i >= num_wires_)
        panic("ThermalNetwork::temperature: wire %u out of %u",
              i, num_wires_);
    return Kelvin{state_[i]};
}

std::vector<double>
ThermalNetwork::temperatures() const
{
    return std::vector<double>(state_.begin(),
                               state_.begin() + num_wires_);
}

double
ThermalNetwork::maxTemperatureRaw() const
{
    return *std::max_element(state_.begin(),
                             state_.begin() + num_wires_);
}

Kelvin
ThermalNetwork::maxTemperature() const
{
    return Kelvin{maxTemperatureRaw()};
}

Kelvin
ThermalNetwork::averageTemperature() const
{
    double sum = std::accumulate(state_.begin(),
                                 state_.begin() + num_wires_, 0.0);
    return Kelvin{sum / static_cast<double>(num_wires_)};
}

Kelvin
ThermalNetwork::stackTemperature() const
{
    return Kelvin{dynamicStack() ? state_.back()
                                 : referenceTemperature()};
}

void
ThermalNetwork::reset(Kelvin temperature)
{
    std::fill(state_.begin(), state_.end(), temperature.raw());
    last_max_temp_ = temperature.raw();
    rising_streak_ = 0;
    // dt_ is derived once in the constructor and the network
    // parameters it depends on are immutable, so a reset cannot
    // stale it — revalidate the invariant rather than trusting it.
    if (config_.max_dt.raw() <= 0.0)
        NANOBUS_ENSURE(dt_ == deriveRk4Step(),
                       "stability-derived RK4 step %g s went stale "
                       "across reset()", dt_);
}

Status
ThermalNetwork::restoreSnapshotState(const SnapshotState &s)
{
    if (s.nodes.size() != state_.size()) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreSnapshotState: " +
                std::to_string(s.nodes.size()) + " node(s) for a " +
                std::to_string(state_.size()) + "-node network");
    }
    state_ = s.nodes;
    last_max_temp_ = s.last_max_temp;
    rising_streak_ = s.rising_streak;
    return Status();
}

void
ThermalNetwork::derivative(const std::vector<double> &theta,
                           std::vector<double> &dtheta,
                           const std::vector<double> &power) const
{
    const double ref = dynamicStack()
        ? theta[num_wires_]
        : referenceTemperature();

    double into_stack = 0.0;
    for (unsigned i = 0; i < num_wires_; ++i) {
        double downward = (theta[i] - ref) / r_self_;
        double lateral = 0.0;
        if (config_.lateral_coupling) {
            // Eq 3 for edge wires (one neighbor), Eq 4 for middle
            // wires (two neighbors).
            if (i > 0)
                lateral += (theta[i] - theta[i - 1]) / r_lateral_;
            if (i + 1 < num_wires_)
                lateral += (theta[i] - theta[i + 1]) / r_lateral_;
        }
        dtheta[i] = (power[i] - downward - lateral) / c_wire_;
        into_stack += downward;
    }

    if (dynamicStack()) {
        double to_ambient =
            (theta[num_wires_] - config_.ambient.raw()) /
            config_.stack_resistance.raw();
        dtheta[num_wires_] =
            (p_lower_ + into_stack - to_ambient) / c_stack_;
    }
}

void
ThermalNetwork::advance(const std::vector<double> &power_per_metre,
                        Seconds duration)
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::advance: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);
    if (duration.raw() < 0.0)
        fatal("ThermalNetwork::advance: negative duration %g",
              duration.raw());
    if (duration.raw() == 0.0)
        return;

    IntegrationReport report =
        integrateInterval(power_per_metre, duration.raw());
    if (!report.ok)
        fatal("ThermalNetwork::advance (%s): %s",
              thermalSolverName(config_.solver),
              report.error.message.c_str());
}

std::vector<ThermalFault>
ThermalNetwork::advanceChecked(
    const std::vector<double> &power_per_metre, Seconds duration)
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::advanceChecked: %zu powers for %u "
              "wires", power_per_metre.size(), num_wires_);
    if (duration.raw() < 0.0)
        fatal("ThermalNetwork::advanceChecked: negative duration %g",
              duration.raw());

    std::vector<ThermalFault> faults;
    char buf[160];
    if (duration.raw() == 0.0)
        return faults;

    IntegrationReport report =
        integrateInterval(power_per_metre, duration.raw());
    if (!report.ok) {
        // The checked integrators leave the state at the last finite
        // value they reached; contain any residual poison defensively.
        ThermalFault fault;
        fault.kind = ThermalFault::Kind::NonFinite;
        std::snprintf(buf, sizeof(buf),
                      "integration failed after %.3g of %.3g s (%s)",
                      report.completed_time, duration.raw(),
                      report.error.message.c_str());
        fault.message = buf;
        for (size_t i = 0; i < state_.size(); ++i) {
            if (!std::isfinite(state_[i])) {
                fault.node = static_cast<unsigned>(i);
                fault.temperature = Kelvin{state_[i]};
                state_[i] = config_.ambient.raw();
            }
        }
        warn("ThermalNetwork: %s", buf);
        faults.push_back(fault);
    }

    // Physical ceiling: clamp and report every node above it.
    if (config_.temperature_ceiling.raw() > 0.0) {
        for (size_t i = 0; i < state_.size(); ++i) {
            if (state_[i] > config_.temperature_ceiling.raw()) {
                ThermalFault fault;
                fault.kind = ThermalFault::Kind::Ceiling;
                fault.node = static_cast<unsigned>(i);
                fault.temperature = Kelvin{state_[i]};
                std::snprintf(buf, sizeof(buf),
                              "node %zu at %.1f K exceeds ceiling "
                              "%.1f K; clamped", i, state_[i],
                              config_.temperature_ceiling.raw());
                fault.message = buf;
                warn("ThermalNetwork: %s", buf);
                faults.push_back(fault);
                state_[i] = config_.temperature_ceiling.raw();
            }
        }
    }

    // Monotonic divergence: a passive RC network driven by constant
    // power can approach its steady state from above (cooling) but
    // cannot keep rising beyond it. Rising peaks above the bound for
    // several consecutive advances mean the integration is unstable;
    // clamp the wires back onto the steady-state solution.
    double max_temp = maxTemperatureRaw();
    if (config_.divergence_streak > 0 &&
        max_temp > last_max_temp_ + 1e-9) {
        std::vector<double> ss = steadyState(power_per_metre);
        double ss_max = *std::max_element(ss.begin(), ss.end());
        const double margin =
            5.0 + 1e-6 * std::fabs(ss_max); // [K]
        if (max_temp > ss_max + margin) {
            if (++rising_streak_ >= config_.divergence_streak) {
                ThermalFault fault;
                fault.kind = ThermalFault::Kind::Divergence;
                fault.temperature = Kelvin{max_temp};
                for (unsigned i = 0; i < num_wires_; ++i) {
                    if (state_[i] == max_temp)
                        fault.node = i;
                    state_[i] = std::min(state_[i], ss[i]);
                }
                std::snprintf(buf, sizeof(buf),
                              "peak %.1f K rose %u advances beyond "
                              "the %.1f K steady-state bound; clamped "
                              "to steady state", max_temp,
                              rising_streak_, ss_max);
                fault.message = buf;
                warn("ThermalNetwork: %s", buf);
                faults.push_back(fault);
                rising_streak_ = 0;
                max_temp = maxTemperatureRaw();
            }
        } else {
            rising_streak_ = 0;
        }
    } else {
        rising_streak_ = 0;
    }
    last_max_temp_ = max_temp;

    return faults;
}

std::vector<double>
ThermalNetwork::steadyState(
    const std::vector<double> &power_per_metre) const
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::steadyState: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);

    // The conductance system G theta = b shares the Jacobian's
    // bordered-band structure (G = -C A with C the diagonal
    // capacitance matrix), so the direct solve is O(width) — cheap
    // enough for the divergence guard to call per advance.
    const bool dyn = dynamicStack();
    BandedMatrix g = dyn ? BandedMatrix::bordered(num_wires_)
                         : BandedMatrix::tridiagonal(num_wires_);
    std::vector<double> b(num_wires_ + (dyn ? 1 : 0), 0.0);

    const double g_self = 1.0 / r_self_;
    const double g_lat =
        config_.lateral_coupling ? 1.0 / r_lateral_ : 0.0;
    const double ref = dyn ? 0.0 : referenceTemperature();

    for (unsigned i = 0; i < num_wires_; ++i) {
        double diag = g_self;
        if (dyn)
            g.borderCol(i) = -g_self;
        else
            b[i] += g_self * ref;
        if (g_lat > 0.0) {
            if (i > 0) {
                diag += g_lat;
                g.lower(i - 1) = -g_lat;   // a(i, i-1)
            }
            if (i + 1 < num_wires_) {
                diag += g_lat;
                g.upper(i) = -g_lat;       // a(i, i+1)
            }
        }
        g.diag(i) = diag;
        b[i] += power_per_metre[i];
    }

    if (dyn) {
        const double g_stack = 1.0 / config_.stack_resistance.raw();
        for (unsigned i = 0; i < num_wires_; ++i)
            g.borderRow(i) = -g_self;
        g.corner() =
            g_stack + static_cast<double>(num_wires_) * g_self;
        b[num_wires_] = g_stack * config_.ambient.raw() + p_lower_;
    }

    BandedFactorization factor(std::move(g));
    std::vector<double> solution = factor.solve(b);
    solution.resize(num_wires_);
    return solution;
}

} // namespace nanobus
