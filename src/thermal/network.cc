#include "thermal/network.hh"

#include <algorithm>
#include <numeric>

#include "la/lu.hh"
#include "util/logging.hh"

namespace nanobus {

ThermalNetwork::ThermalNetwork(const TechnologyNode &tech,
                               unsigned num_wires,
                               const ThermalConfig &config)
    : num_wires_(num_wires), config_(config), params_(tech),
      solver_(num_wires +
              (config.stack_mode == StackMode::Dynamic ? 1 : 0))
{
    if (num_wires == 0)
        fatal("ThermalNetwork: bus must have at least one wire");
    if (config_.ambient <= 0.0)
        fatal("ThermalNetwork: ambient %g K must be positive",
              config_.ambient);

    r_self_ = params_.selfResistance();
    r_lateral_ = params_.lateralResistance();
    c_wire_ = params_.capacitance();

    if (dynamicStack()) {
        if (config_.stack_resistance <= 0.0 ||
            config_.stack_time_constant <= 0.0)
            fatal("ThermalNetwork: dynamic stack needs positive "
                  "resistance and time constant");
        c_stack_ = config_.stack_time_constant /
            config_.stack_resistance;
        p_lower_ = config_.delta_theta / config_.stack_resistance;
    }

    // Explicit RK4 stability: bound the step by the fastest node
    // time constant. A wire's effective conductance combines its
    // downward path and both lateral paths.
    double wire_conductance = 1.0 / r_self_;
    if (config_.lateral_coupling && num_wires_ > 1)
        wire_conductance += 2.0 / r_lateral_;
    double tau_wire = c_wire_ / wire_conductance;
    double tau_min = tau_wire;
    if (dynamicStack()) {
        double stack_conductance = 1.0 / config_.stack_resistance +
            static_cast<double>(num_wires_) / r_self_;
        tau_min = std::min(tau_min, c_stack_ / stack_conductance);
    }
    dt_ = config_.max_dt > 0.0 ? config_.max_dt : 0.2 * tau_min;

    state_.assign(solver_.dimension(), config_.ambient);
}

double
ThermalNetwork::referenceTemperature() const
{
    switch (config_.stack_mode) {
      case StackMode::None:
        return config_.ambient;
      case StackMode::Static:
        return config_.ambient + config_.delta_theta;
      case StackMode::Dynamic:
        return state_.back();
    }
    panic("ThermalNetwork: bad stack mode");
}

double
ThermalNetwork::temperature(unsigned i) const
{
    if (i >= num_wires_)
        panic("ThermalNetwork::temperature: wire %u out of %u",
              i, num_wires_);
    return state_[i];
}

std::vector<double>
ThermalNetwork::temperatures() const
{
    return std::vector<double>(state_.begin(),
                               state_.begin() + num_wires_);
}

double
ThermalNetwork::maxTemperature() const
{
    return *std::max_element(state_.begin(),
                             state_.begin() + num_wires_);
}

double
ThermalNetwork::averageTemperature() const
{
    double sum = std::accumulate(state_.begin(),
                                 state_.begin() + num_wires_, 0.0);
    return sum / static_cast<double>(num_wires_);
}

double
ThermalNetwork::stackTemperature() const
{
    return dynamicStack() ? state_.back() : referenceTemperature();
}

void
ThermalNetwork::reset(double temperature)
{
    std::fill(state_.begin(), state_.end(), temperature);
}

void
ThermalNetwork::derivative(const std::vector<double> &theta,
                           std::vector<double> &dtheta,
                           const std::vector<double> &power) const
{
    const double ref = dynamicStack()
        ? theta[num_wires_]
        : referenceTemperature();

    double into_stack = 0.0;
    for (unsigned i = 0; i < num_wires_; ++i) {
        double downward = (theta[i] - ref) / r_self_;
        double lateral = 0.0;
        if (config_.lateral_coupling) {
            // Eq 3 for edge wires (one neighbor), Eq 4 for middle
            // wires (two neighbors).
            if (i > 0)
                lateral += (theta[i] - theta[i - 1]) / r_lateral_;
            if (i + 1 < num_wires_)
                lateral += (theta[i] - theta[i + 1]) / r_lateral_;
        }
        dtheta[i] = (power[i] - downward - lateral) / c_wire_;
        into_stack += downward;
    }

    if (dynamicStack()) {
        double to_ambient =
            (theta[num_wires_] - config_.ambient) /
            config_.stack_resistance;
        dtheta[num_wires_] =
            (p_lower_ + into_stack - to_ambient) / c_stack_;
    }
}

void
ThermalNetwork::advance(const std::vector<double> &power_per_metre,
                        double duration)
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::advance: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);
    if (duration < 0.0)
        fatal("ThermalNetwork::advance: negative duration %g",
              duration);
    if (duration == 0.0)
        return;

    auto deriv = [this, &power_per_metre](
        double, const std::vector<double> &y,
        std::vector<double> &dydt) {
        derivative(y, dydt, power_per_metre);
    };
    solver_.integrate(deriv, 0.0, duration, dt_, state_);
}

std::vector<double>
ThermalNetwork::steadyState(
    const std::vector<double> &power_per_metre) const
{
    if (power_per_metre.size() != num_wires_)
        fatal("ThermalNetwork::steadyState: %zu powers for %u wires",
              power_per_metre.size(), num_wires_);

    const bool dyn = dynamicStack();
    const size_t n = num_wires_ + (dyn ? 1 : 0);
    Matrix a(n, n, 0.0);
    std::vector<double> b(n, 0.0);

    const double g_self = 1.0 / r_self_;
    const double g_lat =
        config_.lateral_coupling ? 1.0 / r_lateral_ : 0.0;
    const double ref = dyn ? 0.0 : referenceTemperature();

    for (unsigned i = 0; i < num_wires_; ++i) {
        a(i, i) += g_self;
        if (dyn)
            a(i, num_wires_) -= g_self;
        else
            b[i] += g_self * ref;
        if (g_lat > 0.0) {
            if (i > 0) {
                a(i, i) += g_lat;
                a(i, i - 1) -= g_lat;
            }
            if (i + 1 < num_wires_) {
                a(i, i) += g_lat;
                a(i, i + 1) -= g_lat;
            }
        }
        b[i] += power_per_metre[i];
    }

    if (dyn) {
        const size_t s = num_wires_;
        double g_stack = 1.0 / config_.stack_resistance;
        a(s, s) += g_stack;
        b[s] += g_stack * config_.ambient + p_lower_;
        for (unsigned i = 0; i < num_wires_; ++i) {
            a(s, s) += g_self;
            a(s, i) -= g_self;
        }
    }

    LuFactorization lu(std::move(a));
    std::vector<double> solution = lu.solve(b);
    solution.resize(num_wires_);
    return solution;
}

} // namespace nanobus
