/**
 * @file
 * Axial (along-the-wire) thermal model with via cooling.
 *
 * The lumped network of network.hh treats each wire as isothermal
 * along its length. The paper's introduction points out why that is
 * optimistic for upper metal layers: "long via separations in upper
 * metal layers also contribute to higher average wire temperatures
 * (vias are normally better thermal conductors than surrounding
 * low-K dielectrics)". Repeater insertion forces a via pair down to
 * the device layer at every repeater site, and those vias are the
 * coldest points of the wire.
 *
 * This model discretizes one wire into axial segments: each segment
 * conducts to the reference through the per-unit-length ILD
 * resistance of Eq 6, to its axial neighbors through the copper
 * itself, and — at via sites — through a discrete via thermal
 * resistance. Steady-state solves expose the axial temperature
 * profile, its peak (between vias), and the effect of via spacing.
 */

#ifndef NANOBUS_THERMAL_AXIAL_HH
#define NANOBUS_THERMAL_AXIAL_HH

#include <vector>

#include "tech/technology.hh"
#include "thermal/wire_thermal.hh"
#include "util/units.hh"

namespace nanobus {

/** Axial temperature profile result. */
struct AxialProfile
{
    /** Segment-centre temperatures, driver to receiver [K]. */
    std::vector<double> temperature;
    /** Hottest segment. */
    Kelvin peak;
    /** Mean over segments. */
    Kelvin average;
    /** Coolest segment. */
    Kelvin valley;
};

/** One wire, axially discretized, with via cooling at given sites. */
class AxialWireModel
{
  public:
    /** Model configuration. */
    struct Config
    {
        /** Wire length. */
        Meters length{0.010};
        /** Number of axial segments (>= 2). */
        unsigned segments = 200;
        /** Number of evenly spaced via sites (0 = no vias; a site
         *  at each end plus `vias - 2` interior sites when >= 2). */
        unsigned vias = 0;
        /**
         * Thermal resistance of one via stack to the heat sink
         * (absolute, not per length). A tungsten/copper via stack
         * down a ~1 um BEOL is on the order of 1e4-1e5 K/W.
         */
        KelvinPerWatt via_resistance{4e4};
        /** Ambient / reference temperature. */
        Kelvin ambient{318.15};
    };

    /**
     * @param tech Technology node (Eq 6 parameters + copper axial
     *             conduction through the w x t cross-section).
     */
    AxialWireModel(const TechnologyNode &tech, const Config &config);

    /** Number of axial segments. */
    unsigned segments() const { return config_.segments; }

    /** Segment indices holding vias (empty when vias == 0). */
    const std::vector<unsigned> &viaSites() const { return sites_; }

    /**
     * Steady-state axial profile under uniform dissipation
     * `power_per_metre` along the wire.
     */
    AxialProfile solve(WattsPerMeter power_per_metre) const;

    /**
     * Convenience: the lumped (no-axial-structure) temperature rise
     * the Eq 3-4 network would predict for the same power.
     */
    Kelvin lumpedRise(WattsPerMeter power_per_metre) const;

  private:
    const TechnologyNode &tech_;
    Config config_;
    WireThermalParams params_;
    std::vector<unsigned> sites_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_AXIAL_HH
