#include "thermal/axial.hh"

#include <algorithm>
#include <numeric>

#include "la/lu.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

AxialWireModel::AxialWireModel(const TechnologyNode &tech,
                               const Config &config)
    : tech_(tech), config_(config), params_(tech)
{
    if (config_.length.raw() <= 0.0)
        fatal("AxialWireModel: length %g must be positive",
              config_.length.raw());
    if (config_.segments < 2)
        fatal("AxialWireModel: need at least 2 segments");
    if (config_.vias > config_.segments)
        fatal("AxialWireModel: %u vias exceed %u segments",
              config_.vias, config_.segments);
    if (config_.via_resistance.raw() <= 0.0)
        fatal("AxialWireModel: via resistance must be positive");

    // Evenly spaced via sites; a single via sits mid-wire, two or
    // more span the ends (driver and receiver always have one).
    if (config_.vias == 1) {
        sites_.push_back(config_.segments / 2);
    } else if (config_.vias >= 2) {
        for (unsigned v = 0; v < config_.vias; ++v) {
            double frac = static_cast<double>(v) /
                static_cast<double>(config_.vias - 1);
            auto site = static_cast<unsigned>(
                frac * (config_.segments - 1) + 0.5);
            sites_.push_back(site);
        }
        sites_.erase(std::unique(sites_.begin(), sites_.end()),
                     sites_.end());
    }
}

AxialProfile
AxialWireModel::solve(WattsPerMeter power_per_metre) const
{
    const unsigned n = config_.segments;
    const double d = config_.length.raw() / n;

    // Conductances [W/K], raw at the linear-solver boundary.
    const double g_down = d / params_.selfResistance().raw();
    const double g_axial = units::k_copper *
        tech_.wire_width.raw() * tech_.wire_thickness.raw() / d;
    const double g_via = 1.0 / config_.via_resistance.raw();

    Matrix g(n, n, 0.0);
    std::vector<double> rhs(n, power_per_metre.raw() * d +
                                 g_down * config_.ambient.raw());
    for (unsigned i = 0; i < n; ++i) {
        g(i, i) += g_down;
        if (i > 0) {
            g(i, i) += g_axial;
            g(i, i - 1) -= g_axial;
        }
        if (i + 1 < n) {
            g(i, i) += g_axial;
            g(i, i + 1) -= g_axial;
        }
    }
    for (unsigned site : sites_) {
        g(site, site) += g_via;
        rhs[site] += g_via * config_.ambient.raw();
    }

    LuFactorization lu(std::move(g));
    AxialProfile profile;
    profile.temperature = lu.solve(rhs);
    profile.peak =
        Kelvin{*std::max_element(profile.temperature.begin(),
                                 profile.temperature.end())};
    profile.valley =
        Kelvin{*std::min_element(profile.temperature.begin(),
                                 profile.temperature.end())};
    profile.average =
        Kelvin{std::accumulate(profile.temperature.begin(),
                               profile.temperature.end(), 0.0) /
               static_cast<double>(n)};
    return profile;
}

Kelvin
AxialWireModel::lumpedRise(WattsPerMeter power_per_metre) const
{
    // W/m times K m / W composes straight to kelvin.
    return power_per_metre * params_.selfResistance();
}

} // namespace nanobus
