/**
 * @file
 * Inter-layer heat transfer model (Sec 4.1.2, Eq 7 of the paper).
 *
 * Lower metal layers, assumed to carry current at their maximum
 * density j_max, generate heat that conducts up the ILD stack and
 * raises the resting temperature of the global bus wires. Two forms
 * are provided:
 *
 *  - deltaTheta(): the dimensionally consistent Chiang et al.
 *    (ICCAD'01) form the paper cites — the temperature offset of the
 *    top layer is the sum over ILDs of (t_ild,i / k_ild,i) times the
 *    heat flux through that ILD, where the flux collects
 *    j^2 rho t alpha (W/m^2) from every non-top layer above it;
 *
 *  - perPaperEquation7(): the formula exactly as printed (with its
 *    extra 1/(s_i alpha_i) factor), retained for reference. As
 *    printed it yields K/m, not K; see DESIGN.md substitution #4.
 */

#ifndef NANOBUS_THERMAL_INTERLAYER_HH
#define NANOBUS_THERMAL_INTERLAYER_HH

#include "tech/layer_stack.hh"
#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Static temperature offset from lower-layer self-heating. */
class InterLayerModel
{
  public:
    /**
     * @param tech Node supplying j_max.
     * @param stack Layer geometry (bottom first).
     */
    InterLayerModel(const TechnologyNode &tech,
                    const MetalLayerStack &stack);

    /**
     * Top-layer temperature rise over the substrate, Chiang form.
     * The top layer's own (dynamic) heating is excluded; the thermal
     * RC network accounts for it.
     */
    Kelvin deltaTheta() const;

    /**
     * Per-area heat flux contributed by layer j (0-based, bottom
     * first): j_max^2 rho t_j alpha_j.
     */
    WattsPerSquareMeter layerFlux(size_t j) const;

    /**
     * Eq 7 exactly as printed in the paper. As printed the formula is
     * dimensionally K/m, not K — which is exactly why the dimensional
     * layer cannot give it a Kelvin return type; it stays a raw
     * double on purpose (see DESIGN.md substitution #4).
     */
    double perPaperEquation7() const;

  private:
    const TechnologyNode &tech_;
    const MetalLayerStack &stack_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_INTERLAYER_HH
