/**
 * @file
 * Per-wire thermal parameters (Sec 4.1, Eqs 5-6 of the paper).
 *
 * Thermal quantities are per unit length of wire: resistances in
 * K m / W (temperature drop per watt-per-metre) and capacitances in
 * J / (K m).
 */

#ifndef NANOBUS_THERMAL_WIRE_THERMAL_HH
#define NANOBUS_THERMAL_WIRE_THERMAL_HH

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Thermal R and C of one wire in the bus geometry. */
class WireThermalParams
{
  public:
    /** Derive from a technology node's top-layer geometry. */
    explicit WireThermalParams(const TechnologyNode &tech);

    /**
     * Spreading component of the wire-to-lower-layer resistance:
     * R_spr = ln((w+s)/w) / (2 k_ild)   [K m / W]  (Eq 6, term 1).
     */
    KelvinMetersPerWatt spreadingResistance() const { return r_spr_; }

    /**
     * Rectangular-flow component:
     * R_rect = (t_ild - 0.5 s) / (k_ild (w+s))  [K m / W] (Eq 6,
     * term 2).
     */
    KelvinMetersPerWatt rectangularResistance() const
    {
        return r_rect_;
    }

    /** Total downward resistance R_i = R_spr + R_rect (Eq 5). */
    KelvinMetersPerWatt selfResistance() const
    {
        return r_spr_ + r_rect_;
    }

    /**
     * Lateral wire-to-wire resistance through the IMD:
     * R_inter = s / (k_imd t)  [K m / W]  (Sec 4.1.1). The IMD is
     * taken to share the ILD's conductivity (same low-K material).
     */
    KelvinMetersPerWatt lateralResistance() const { return r_inter_; }

    /** Thermal capacitance C_i = Cs_metal w t [J / (K m)]. */
    JoulesPerKelvinMeter capacitance() const { return c_th_; }

    /** Wire-alone time constant R_i C_i [s]. */
    Seconds timeConstant() const { return selfResistance() * c_th_; }

  private:
    KelvinMetersPerWatt r_spr_;
    KelvinMetersPerWatt r_rect_;
    KelvinMetersPerWatt r_inter_;
    JoulesPerKelvinMeter c_th_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_WIRE_THERMAL_HH
