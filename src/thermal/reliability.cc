#include "thermal/reliability.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace nanobus {

namespace {

/** Boltzmann constant [eV/K]. */
constexpr double kb_ev = 8.617333262e-5;

} // anonymous namespace

void
BlackParams::validate() const
{
    if (activation_energy_ev <= 0.0)
        fatal("BlackParams: activation energy %g eV must be positive",
              activation_energy_ev);
    if (current_exponent <= 0.0)
        fatal("BlackParams: current exponent %g must be positive",
              current_exponent);
}

ReliabilityModel::ReliabilityModel(const TechnologyNode &tech,
                                   Kelvin reference_temperature,
                                   const BlackParams &params)
    : tech_(tech), t_ref_(reference_temperature), params_(params)
{
    params_.validate();
    if (t_ref_.raw() <= 0.0)
        fatal("ReliabilityModel: reference temperature %g K must be "
              "positive", t_ref_.raw());
}

double
ReliabilityModel::thermalFactor(Kelvin temperature) const
{
    if (temperature.raw() <= 0.0)
        fatal("ReliabilityModel: temperature %g K must be positive",
              temperature.raw());
    return std::exp(params_.activation_energy_ev / kb_ev *
                    (1.0 / temperature.raw() - 1.0 / t_ref_.raw()));
}

double
ReliabilityModel::mttfFactor(Kelvin temperature,
                             AmpsPerSquareMeter current_density) const
{
    if (current_density.raw() < 0.0)
        fatal("ReliabilityModel: negative current density %g",
              current_density.raw());
    double thermal = thermalFactor(temperature);
    if (current_density.raw() == 0.0) {
        // A wire that carries no current does not electromigrate.
        return std::numeric_limits<double>::infinity();
    }
    // j_max / j is a ratio of like dimensions: plain double.
    return thermal * std::pow(tech_.j_max / current_density,
                              params_.current_exponent);
}

AmpsPerSquareMeter
ReliabilityModel::currentDensity(Joules energy, Seconds duration,
                                 Meters wire_length) const
{
    if (duration.raw() <= 0.0 || wire_length.raw() <= 0.0)
        fatal("ReliabilityModel: duration and length must be "
              "positive");
    if (energy.raw() < 0.0)
        fatal("ReliabilityModel: negative energy %g", energy.raw());
    // P = I_rms^2 R with R = r_wire * length; J/s is W, W/ohm is
    // A^2, and A over the w t cross-section is A/m^2.
    const Watts power = energy / duration;
    const Ohms resistance = tech_.r_wire * wire_length;
    const Amps i_rms{std::sqrt((power / resistance).raw())};
    return i_rms / (tech_.wire_width * tech_.wire_thickness);
}

std::vector<WireReliability>
ReliabilityModel::report(const std::vector<double> &temperatures,
                         const std::vector<double> &energies,
                         Seconds duration, Meters wire_length) const
{
    if (temperatures.size() != energies.size())
        fatal("ReliabilityModel::report: %zu temperatures for %zu "
              "energies", temperatures.size(), energies.size());
    std::vector<WireReliability> out(temperatures.size());
    for (size_t i = 0; i < out.size(); ++i) {
        out[i].temperature = Kelvin{temperatures[i]};
        out[i].current_density =
            currentDensity(Joules{energies[i]}, duration,
                           wire_length);
        out[i].mttf_factor =
            mttfFactor(out[i].temperature, out[i].current_density);
    }
    return out;
}

} // namespace nanobus
