/**
 * @file
 * Thermal-RC network for a bus (Sec 4.1, Eqs 3-4 of the paper).
 *
 * Every wire is a thermal node with capacitance C_i, a resistance R_i
 * toward the layers below, and lateral resistances R_inter to its
 * adjacent wires. Eq 3 (edge wires, one neighbor) and Eq 4 (middle
 * wires, two neighbors) are integrated with classical RK4, the
 * method the paper uses.
 *
 * The reference the wires sink heat into is configurable:
 *  - StackMode::None    — the constant ambient theta_0 (Eqs 3-4
 *    verbatim; inter-layer heating ignored).
 *  - StackMode::Static  — ambient plus the constant Eq 7 offset.
 *  - StackMode::Dynamic — a shared BEOL "stack" node with its own
 *    (large) thermal capacitance, heated by the lower layers'
 *    constant j_max dissipation and by the bus itself, and draining
 *    to ambient through a stack resistance. Its steady state equals
 *    the Static offset, and its time constant reproduces the slow
 *    ramp to saturation seen in Fig 4 (DESIGN.md substitution #5).
 */

#ifndef NANOBUS_THERMAL_NETWORK_HH
#define NANOBUS_THERMAL_NETWORK_HH

#include <vector>

#include "tech/technology.hh"
#include "thermal/wire_thermal.hh"
#include "util/ode.hh"

namespace nanobus {

/** How the inter-layer heat path is modeled. */
enum class StackMode {
    None,
    Static,
    Dynamic,
};

/** Thermal network configuration. */
struct ThermalConfig
{
    /** Ambient / substrate temperature theta_0 [K]; the paper uses
     *  45 C = 318.15 K. */
    double ambient = 318.15;
    /** Model lateral wire-to-wire conduction (Sec 4.1.1). */
    bool lateral_coupling = true;
    /** Inter-layer heat path mode. */
    StackMode stack_mode = StackMode::Dynamic;
    /** Eq 7 temperature offset [K] (Static and Dynamic modes). */
    double delta_theta = 0.0;
    /** Stack-to-ambient resistance [K m / W] (Dynamic mode). */
    double stack_resistance = 0.05;
    /** Stack time constant [s] (Dynamic mode); sets the Fig 4 ramp. */
    double stack_time_constant = 0.020;
    /** RK4 step ceiling [s]; 0 = derive from network stiffness. */
    double max_dt = 0.0;
};

/** Thermal-RC simulation of an N-wire bus. */
class ThermalNetwork
{
  public:
    /**
     * @param tech Technology node (geometry + dielectric).
     * @param num_wires Bus width (>= 1).
     * @param config Network configuration.
     */
    ThermalNetwork(const TechnologyNode &tech, unsigned num_wires,
                   const ThermalConfig &config = ThermalConfig());

    /** Number of wires. */
    unsigned numWires() const { return num_wires_; }

    /** Per-wire thermal parameters in use. */
    const WireThermalParams &wireParams() const { return params_; }

    /** Active configuration. */
    const ThermalConfig &config() const { return config_; }

    /** Current temperature of wire i [K]. */
    double temperature(unsigned i) const;

    /** All wire temperatures [K]. */
    std::vector<double> temperatures() const;

    /** Hottest wire temperature [K]. */
    double maxTemperature() const;

    /** Mean wire temperature [K]. */
    double averageTemperature() const;

    /** Stack node temperature [K] (ambient-referenced modes return
     *  the effective reference). */
    double stackTemperature() const;

    /** Reset every node to the given temperature [K]. */
    void reset(double temperature);

    /**
     * Advance the network by `duration` seconds with the given
     * per-wire dissipated power [W/m] held constant.
     */
    void advance(const std::vector<double> &power_per_metre,
                 double duration);

    /**
     * Steady-state wire temperatures [K] under constant per-wire
     * power [W/m] (direct linear solve; used to validate the
     * transient integration).
     */
    std::vector<double> steadyState(
        const std::vector<double> &power_per_metre) const;

    /** The RK4 step width in use [s]. */
    double stepWidth() const { return dt_; }

  private:
    void derivative(const std::vector<double> &theta,
                    std::vector<double> &dtheta,
                    const std::vector<double> &power) const;

    bool dynamicStack() const
    {
        return config_.stack_mode == StackMode::Dynamic;
    }

    /** Reference temperature wires sink into (non-dynamic modes). */
    double referenceTemperature() const;

    unsigned num_wires_;
    ThermalConfig config_;
    WireThermalParams params_;

    double r_self_;     // [K m / W]
    double r_lateral_;  // [K m / W]
    double c_wire_;     // [J / (K m)]
    double c_stack_ = 0.0;
    double p_lower_ = 0.0;  // constant lower-layer power [W/m]
    double dt_;

    std::vector<double> state_;  // wires, then optional stack node
    Rk4Solver solver_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_NETWORK_HH
