/**
 * @file
 * Thermal-RC network for a bus (Sec 4.1, Eqs 3-4 of the paper).
 *
 * Every wire is a thermal node with capacitance C_i, a resistance R_i
 * toward the layers below, and lateral resistances R_inter to its
 * adjacent wires. Eq 3 (edge wires, one neighbor) and Eq 4 (middle
 * wires, two neighbors) are integrated with classical RK4, the
 * method the paper uses.
 *
 * The reference the wires sink heat into is configurable:
 *  - StackMode::None    — the constant ambient theta_0 (Eqs 3-4
 *    verbatim; inter-layer heating ignored).
 *  - StackMode::Static  — ambient plus the constant Eq 7 offset.
 *  - StackMode::Dynamic — a shared BEOL "stack" node with its own
 *    (large) thermal capacitance, heated by the lower layers'
 *    constant j_max dissipation and by the bus itself, and draining
 *    to ambient through a stack resistance. Its steady state equals
 *    the Static offset, and its time constant reproduces the slow
 *    ramp to saturation seen in Fig 4 (DESIGN.md substitution #5).
 */

#ifndef NANOBUS_THERMAL_NETWORK_HH
#define NANOBUS_THERMAL_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tech/technology.hh"
#include "thermal/wire_thermal.hh"
#include "util/ode.hh"
#include "util/result.hh"
#include "util/units.hh"

namespace nanobus {

/**
 * One detected-and-contained thermal anomaly (advanceChecked()).
 *
 * The guarded simulation path never lets a numerical blow-up or a
 * physically impossible temperature propagate: the state is clamped,
 * the incident is recorded as a ThermalFault, and the sweep
 * continues. Faults surface in the experiment result so a batch run
 * over millions of trace segments reports which cells misbehaved
 * instead of dying on the first one.
 */
struct ThermalFault
{
    enum class Kind {
        /** RK4 produced NaN/inf even after exhausting step halvings. */
        NonFinite,
        /** A node crossed the configured temperature ceiling. */
        Ceiling,
        /** Temperatures rose monotonically above the steady-state
         *  bound — numerically impossible for a passive RC network,
         *  so the integration is diverging. */
        Divergence,
    };

    Kind kind = Kind::NonFinite;
    /** Offending node (numWires() for the stack node). */
    unsigned node = 0;
    /** Observed temperature before clamping. */
    Kelvin temperature;
    /** Simulation cycle of the interval (filled by BusSimulator). */
    uint64_t cycle = 0;
    /** Human-readable description. */
    std::string message;
};

/** Readable name of a thermal-fault kind. */
const char *thermalFaultKindName(ThermalFault::Kind kind);

/** How the inter-layer heat path is modeled. */
enum class StackMode {
    None,
    Static,
    Dynamic,
};

/** Thermal network configuration. */
struct ThermalConfig
{
    /** Ambient / substrate temperature theta_0; the paper uses
     *  45 C = 318.15 K. */
    Kelvin ambient{318.15};
    /** Model lateral wire-to-wire conduction (Sec 4.1.1). */
    bool lateral_coupling = true;
    /** Inter-layer heat path mode. */
    StackMode stack_mode = StackMode::Dynamic;
    /** Eq 7 temperature offset (Static and Dynamic modes). */
    Kelvin delta_theta;
    /** Stack-to-ambient resistance (Dynamic mode). */
    KelvinMetersPerWatt stack_resistance{0.05};
    /** Stack time constant (Dynamic mode); sets the Fig 4 ramp. */
    Seconds stack_time_constant{0.020};
    /** RK4 step ceiling; 0 = derive from network stiffness. */
    Seconds max_dt;
    /**
     * Thermal-runaway guard for advanceChecked(): any node above
     * this ceiling is clamped and reported as a ThermalFault. The
     * default sits far above any legitimate BEOL temperature (metal
     * interconnect fails well below copper's 1358 K melting point)
     * but catches numerical blow-ups early. 0 disables the check.
     */
    Kelvin temperature_ceiling{1000.0};
    /** Step-halving budget for the checked integration. */
    unsigned max_integration_retries = 12;
    /**
     * Consecutive advanceChecked() calls with the peak temperature
     * rising beyond the steady-state bound before a Divergence fault
     * is raised (transients may legitimately sit *above* steady
     * state while cooling, but cannot rise away from it).
     */
    unsigned divergence_streak = 3;
};

/** Thermal-RC simulation of an N-wire bus. */
class ThermalNetwork
{
  public:
    /**
     * @param tech Technology node (geometry + dielectric).
     * @param num_wires Bus width (>= 1).
     * @param config Network configuration.
     */
    ThermalNetwork(const TechnologyNode &tech, unsigned num_wires,
                   const ThermalConfig &config = ThermalConfig());

    /** Number of wires. */
    unsigned numWires() const { return num_wires_; }

    /** Per-wire thermal parameters in use. */
    const WireThermalParams &wireParams() const { return params_; }

    /** Active configuration. */
    const ThermalConfig &config() const { return config_; }

    /** Current temperature of wire i. */
    Kelvin temperature(unsigned i) const;

    /** All wire temperatures [K] (bulk solver-boundary buffer). */
    std::vector<double> temperatures() const;

    /** Hottest wire temperature. */
    Kelvin maxTemperature() const;

    /** Mean wire temperature. */
    Kelvin averageTemperature() const;

    /** Stack node temperature (ambient-referenced modes return
     *  the effective reference). */
    Kelvin stackTemperature() const;

    /** Reset every node to the given temperature. */
    void reset(Kelvin temperature);

    /**
     * Advance the network by `duration` with the given per-wire
     * dissipated power [W/m] held constant.
     */
    void advance(const std::vector<double> &power_per_metre,
                 Seconds duration);

    /**
     * Numerically guarded advance(): integrates with
     * Rk4Solver::integrateChecked, then applies the thermal-runaway
     * guards (non-finite containment, temperature ceiling, monotonic
     * divergence versus the steady-state bound). Any anomaly clamps
     * the offending state and is returned as a ThermalFault; the
     * network stays usable and the caller's sweep continues.
     */
    [[nodiscard]] std::vector<ThermalFault> advanceChecked(
        const std::vector<double> &power_per_metre, Seconds duration);

    /**
     * Steady-state wire temperatures [K] under constant per-wire
     * power [W/m] (direct linear solve; used to validate the
     * transient integration).
     */
    std::vector<double> steadyState(
        const std::vector<double> &power_per_metre) const;

    /** The RK4 step width in use. */
    Seconds stepWidth() const { return Seconds{dt_}; }

    /**
     * Full mutable state, for checkpoint/resume (sim/snapshot.hh):
     * the raw node vector (wires, then the optional stack node) plus
     * the divergence-guard bookkeeping that spans advanceChecked()
     * calls. Restoring on an identically configured network makes
     * further advances bit-identical to one that never stopped.
     */
    struct SnapshotState
    {
        std::vector<double> nodes;
        double last_max_temp = 0.0;
        unsigned rising_streak = 0;
    };

    /** Capture the network state. */
    SnapshotState snapshotState() const
    {
        return SnapshotState{state_, last_max_temp_, rising_streak_};
    }

    /**
     * Restore a previously captured state. InvalidArgument when the
     * node count does not match this network's topology.
     */
    [[nodiscard]] Status restoreSnapshotState(const SnapshotState &s);

  private:
    void derivative(const std::vector<double> &theta,
                    std::vector<double> &dtheta,
                    const std::vector<double> &power) const;

    bool dynamicStack() const
    {
        return config_.stack_mode == StackMode::Dynamic;
    }

    /** Reference temperature wires sink into (non-dynamic modes). */
    double referenceTemperature() const;

    /** Raw peak wire temperature for the internal guard loops. */
    double maxTemperatureRaw() const;

    unsigned num_wires_;
    ThermalConfig config_;
    WireThermalParams params_;

    double r_self_;     // [K m / W]
    double r_lateral_;  // [K m / W]
    double c_wire_;     // [J / (K m)]
    double c_stack_ = 0.0;
    double p_lower_ = 0.0;  // constant lower-layer power [W/m]
    double dt_;

    std::vector<double> state_;  // wires, then optional stack node
    Rk4Solver solver_;

    // Divergence tracking across advanceChecked() calls.
    double last_max_temp_ = 0.0;
    unsigned rising_streak_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_NETWORK_HH
