/**
 * @file
 * Thermal-RC network for a bus (Sec 4.1, Eqs 3-4 of the paper).
 *
 * Every wire is a thermal node with capacitance C_i, a resistance R_i
 * toward the layers below, and lateral resistances R_inter to its
 * adjacent wires. Eq 3 (edge wires, one neighbor) and Eq 4 (middle
 * wires, two neighbors) form the linear system dθ/dt = A θ + b whose
 * Jacobian A is tridiagonal (nearest-neighbor lateral coupling) plus,
 * in StackMode::Dynamic, one dense row/column for the shared stack
 * node — exactly la/banded's bordered form.
 *
 * Three integrators step it (ThermalConfig::solver; docs/THERMAL.md):
 *
 *  - ThermalSolver::Rk4 — classical RK4, the method the paper uses
 *    and the oracle default. Explicit, so the step width is bounded
 *    by the stiffest wire time constant regardless of the horizon.
 *  - ThermalSolver::BackwardEuler / ::Trapezoidal — implicit
 *    steppers over the pre-factored banded operator I - c·dt·A; the
 *    step width derives from the *interval length* (duration /
 *    implicit_steps), not from stiffness, which is what makes
 *    full-width 10k-wire buses steppable (bench/perf_thermal).
 *
 * The reference the wires sink heat into is configurable:
 *  - StackMode::None    — the constant ambient theta_0 (Eqs 3-4
 *    verbatim; inter-layer heating ignored).
 *  - StackMode::Static  — ambient plus the constant Eq 7 offset.
 *  - StackMode::Dynamic — a shared BEOL "stack" node with its own
 *    (large) thermal capacitance, heated by the lower layers'
 *    constant j_max dissipation and by the bus itself, and draining
 *    to ambient through a stack resistance. Its steady state equals
 *    the Static offset, and its time constant reproduces the slow
 *    ramp to saturation seen in Fig 4 (DESIGN.md substitution #5).
 */

#ifndef NANOBUS_THERMAL_NETWORK_HH
#define NANOBUS_THERMAL_NETWORK_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "la/banded.hh"
#include "tech/technology.hh"
#include "thermal/wire_thermal.hh"
#include "util/ode.hh"
#include "util/result.hh"
#include "util/units.hh"

namespace nanobus {

/**
 * One detected-and-contained thermal anomaly (advanceChecked()).
 *
 * The guarded simulation path never lets a numerical blow-up or a
 * physically impossible temperature propagate: the state is clamped,
 * the incident is recorded as a ThermalFault, and the sweep
 * continues. Faults surface in the experiment result so a batch run
 * over millions of trace segments reports which cells misbehaved
 * instead of dying on the first one.
 */
struct ThermalFault
{
    enum class Kind {
        /** RK4 produced NaN/inf even after exhausting step halvings. */
        NonFinite,
        /** A node crossed the configured temperature ceiling. */
        Ceiling,
        /** Temperatures rose monotonically above the steady-state
         *  bound — numerically impossible for a passive RC network,
         *  so the integration is diverging. */
        Divergence,
    };

    Kind kind = Kind::NonFinite;
    /** Offending node (numWires() for the stack node). */
    unsigned node = 0;
    /** Observed temperature before clamping. */
    Kelvin temperature;
    /** Simulation cycle of the interval (filled by BusSimulator). */
    uint64_t cycle = 0;
    /** Human-readable description. */
    std::string message;
};

/** Readable name of a thermal-fault kind. */
const char *thermalFaultKindName(ThermalFault::Kind kind);

/** How the inter-layer heat path is modeled. */
enum class StackMode {
    None,
    Static,
    Dynamic,
};

/**
 * Which integrator advances the network (docs/THERMAL.md has the
 * selection guidance in full).
 *
 *  - Rk4: the paper's method and the equivalence oracle. Cost per
 *    interval grows with interval / (0.2 τ_min) — stiffness-bound.
 *  - BackwardEuler: L-stable first-order implicit; the robust choice
 *    when the step spans many wire time constants (wide buses, long
 *    intervals). Cost per interval: implicit_steps O(width) solves.
 *  - Trapezoidal: A-stable second-order implicit (Crank-Nicolson);
 *    more accurate per step, mildly oscillatory on modes far stiffer
 *    than the step. Same cost shape as BackwardEuler.
 */
enum class ThermalSolver {
    Rk4,
    BackwardEuler,
    Trapezoidal,
};

/** Readable solver name ("rk4" / "backward-euler" / "trapezoidal"). */
const char *thermalSolverName(ThermalSolver solver);

/** Parse a solver name as accepted by bench --solver flags: "rk4",
 *  "be"/"backward-euler", "cn"/"trapezoidal". */
std::optional<ThermalSolver> parseThermalSolver(
    const std::string &name);

/** Thermal network configuration. */
struct ThermalConfig
{
    /** Ambient / substrate temperature theta_0; the paper uses
     *  45 C = 318.15 K. */
    Kelvin ambient{318.15};
    /** Model lateral wire-to-wire conduction (Sec 4.1.1). */
    bool lateral_coupling = true;
    /** Inter-layer heat path mode. */
    StackMode stack_mode = StackMode::Dynamic;
    /** Eq 7 temperature offset (Static and Dynamic modes). */
    Kelvin delta_theta;
    /** Stack-to-ambient resistance (Dynamic mode). */
    KelvinMetersPerWatt stack_resistance{0.05};
    /** Stack time constant (Dynamic mode); sets the Fig 4 ramp. */
    Seconds stack_time_constant{0.020};
    /** Integrator stepping the network. Rk4 is the paper-faithful
     *  oracle default; the implicit solvers are the fast path for
     *  wide buses (see ThermalSolver). */
    ThermalSolver solver = ThermalSolver::Rk4;
    /**
     * Steps each advance() takes with an implicit solver: the step
     * width is duration / implicit_steps — derived from the horizon
     * the caller asks for, not from network stiffness. Both implicit
     * methods are A-stable, so this is purely an accuracy knob
     * (docs/THERMAL.md §3); must be >= 1. Ignored by Rk4.
     */
    unsigned implicit_steps = 4;
    /**
     * RK4 step ceiling; 0 = derive from network stiffness as
     * 0.2 τ_min (τ_min the fastest node time constant). Gershgorin
     * bounds the stiffest eigenvalue by |λ| <= 2/τ_min, so RK4's
     * real-axis stability interval |λ| dt < 2.785 needs
     * dt < 1.39 τ_min — the derived step carries a ~7x margin,
     * asserted in the constructor and revalidated by reset().
     * A *user-supplied* ceiling is taken as-is (tests deliberately
     * exceed the bound to exercise the divergence guard). Ignored
     * by the implicit solvers.
     */
    Seconds max_dt;
    /**
     * Thermal-runaway guard for advanceChecked(): any node above
     * this ceiling is clamped and reported as a ThermalFault. The
     * default sits far above any legitimate BEOL temperature (metal
     * interconnect fails well below copper's 1358 K melting point)
     * but catches numerical blow-ups early. 0 disables the check.
     */
    Kelvin temperature_ceiling{1000.0};
    /** Step-halving budget for the checked integration. */
    unsigned max_integration_retries = 12;
    /**
     * Consecutive advanceChecked() calls with the peak temperature
     * rising beyond the steady-state bound before a Divergence fault
     * is raised (transients may legitimately sit *above* steady
     * state while cooling, but cannot rise away from it).
     */
    unsigned divergence_streak = 3;
};

/** Thermal-RC simulation of an N-wire bus. */
class ThermalNetwork
{
  public:
    /**
     * @param tech Technology node (geometry + dielectric).
     * @param num_wires Bus width (>= 1).
     * @param config Network configuration.
     */
    ThermalNetwork(const TechnologyNode &tech, unsigned num_wires,
                   const ThermalConfig &config = ThermalConfig());

    /** Number of wires. */
    unsigned numWires() const { return num_wires_; }

    /** Per-wire thermal parameters in use. */
    const WireThermalParams &wireParams() const { return params_; }

    /** Active configuration. */
    const ThermalConfig &config() const { return config_; }

    /** Current temperature of wire i. */
    Kelvin temperature(unsigned i) const;

    /** All wire temperatures [K] (bulk solver-boundary buffer). */
    std::vector<double> temperatures() const;

    /** Hottest wire temperature. */
    Kelvin maxTemperature() const;

    /** Mean wire temperature. */
    Kelvin averageTemperature() const;

    /** Stack node temperature (ambient-referenced modes return
     *  the effective reference). */
    Kelvin stackTemperature() const;

    /** Reset every node to the given temperature. */
    void reset(Kelvin temperature);

    /**
     * Advance the network by `duration` with the given per-wire
     * dissipated power [W/m] held constant.
     */
    void advance(const std::vector<double> &power_per_metre,
                 Seconds duration);

    /**
     * Numerically guarded advance(): integrates with
     * Rk4Solver::integrateChecked, then applies the thermal-runaway
     * guards (non-finite containment, temperature ceiling, monotonic
     * divergence versus the steady-state bound). Any anomaly clamps
     * the offending state and is returned as a ThermalFault; the
     * network stays usable and the caller's sweep continues.
     */
    [[nodiscard]] std::vector<ThermalFault> advanceChecked(
        const std::vector<double> &power_per_metre, Seconds duration);

    /**
     * Steady-state wire temperatures [K] under constant per-wire
     * power [W/m] — a direct O(width) banded solve of the
     * conductance system G θ = b, used to validate the transient
     * integration and by the divergence guard.
     */
    std::vector<double> steadyState(
        const std::vector<double> &power_per_metre) const;

    /** The RK4 step width in use (stability-derived or the
     *  max_dt override; see ThermalConfig::max_dt). The implicit
     *  solvers ignore it — their step is duration / implicit_steps
     *  per advance() call. */
    Seconds stepWidth() const { return Seconds{dt_}; }

    /** The integrator in use. */
    ThermalSolver solver() const { return config_.solver; }

    /**
     * The network Jacobian A of dθ/dt = A θ + b, assembled once at
     * construction in bordered-banded form [1/s]: tridiagonal over
     * the wires, plus the dense stack row/column in Dynamic mode.
     */
    const BandedMatrix &jacobian() const { return jacobian_; }

    /**
     * Full mutable state, for checkpoint/resume (sim/snapshot.hh):
     * the raw node vector (wires, then the optional stack node) plus
     * the divergence-guard bookkeeping that spans advanceChecked()
     * calls. Restoring on an identically configured network makes
     * further advances bit-identical to one that never stopped.
     */
    struct SnapshotState
    {
        std::vector<double> nodes;
        double last_max_temp = 0.0;
        unsigned rising_streak = 0;
    };

    /** Capture the network state. */
    SnapshotState snapshotState() const
    {
        return SnapshotState{state_, last_max_temp_, rising_streak_};
    }

    /**
     * Restore a previously captured state. InvalidArgument when the
     * node count does not match this network's topology.
     */
    [[nodiscard]] Status restoreSnapshotState(const SnapshotState &s);

  private:
    void derivative(const std::vector<double> &theta,
                    std::vector<double> &dtheta,
                    const std::vector<double> &power) const;

    bool dynamicStack() const
    {
        return config_.stack_mode == StackMode::Dynamic;
    }

    /** Reference temperature wires sink into (non-dynamic modes). */
    double referenceTemperature() const;

    /** Raw peak wire temperature for the internal guard loops. */
    double maxTemperatureRaw() const;

    /** Derive (and contract-check) the RK4 step width from the
     *  stiffest node time constant; pure in the network parameters,
     *  so reset() can revalidate it (see ThermalConfig::max_dt). */
    double deriveRk4Step() const;

    /** Build jacobian_ (bordered-banded A of dθ/dt = A θ + b). */
    void assembleJacobian();

    /** Fill forcing_ with b for the given per-wire power [W/m]. */
    void buildForcing(const std::vector<double> &power);

    /** Factor the implicit stepping operator I - c·dt·A for the
     *  given step width, reusing the cached factorization when dt
     *  is unchanged (the common case: equal-length intervals). */
    [[nodiscard]] Status prepareImplicit(double dt);

    /** Shared integration dispatch for advance()/advanceChecked():
     *  steps state_ by `duration` under `power` with the configured
     *  solver, reporting through the IntegrationReport taxonomy. */
    [[nodiscard]] IntegrationReport integrateInterval(
        const std::vector<double> &power, double duration);

    unsigned num_wires_;
    ThermalConfig config_;
    WireThermalParams params_;

    double r_self_;     // [K m / W]
    double r_lateral_;  // [K m / W]
    double c_wire_;     // [J / (K m)]
    double c_stack_ = 0.0;
    double p_lower_ = 0.0;  // constant lower-layer power [W/m]
    double dt_;

    std::vector<double> state_;  // wires, then optional stack node
    Rk4Solver solver_;

    /** Structured system for the implicit path and steadyState():
     *  assembled once, factored per distinct step width. */
    BandedMatrix jacobian_;
    std::vector<double> forcing_;
    ImplicitLinearSolver<BandedFactorization> implicit_;
    std::unique_ptr<BandedFactorization> step_factor_;
    double factored_dt_ = 0.0;

    // Divergence tracking across advanceChecked() calls.
    double last_max_temp_ = 0.0;
    unsigned rising_streak_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_NETWORK_HH
