#include "thermal/wire_thermal.hh"

#include <cmath>

#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

WireThermalParams::WireThermalParams(const TechnologyNode &tech)
{
    const Meters w = tech.wire_width;
    const Meters s = tech.spacing();
    const Meters t = tech.wire_thickness;
    const Meters t_ild = tech.ild_height;
    const WattsPerMeterKelvin k = tech.k_ild;

    if (t_ild.raw() <= 0.5 * s.raw())
        fatal("WireThermalParams: ILD height %g too small for "
              "rectangular term (needs > s/2 = %g)",
              t_ild.raw(), 0.5 * s.raw());

    // Every expression here composes to K m / W or J / (K m) by
    // construction; a geometry/conductivity mixup no longer compiles.
    r_spr_ = std::log(((w + s) / w)) / (2.0 * k);
    r_rect_ = (t_ild - 0.5 * s) / (k * (w + s));
    r_inter_ = s / (k * t);
    c_th_ = JoulesPerKelvinCubicMeter{units::cs_copper} * w * t;

    NANOBUS_ENSURE(selfResistance().raw() > 0.0,
                   "wire thermal resistance must be positive");
    NANOBUS_ENSURE(c_th_.raw() > 0.0,
                   "wire thermal capacitance must be positive");
}

} // namespace nanobus
