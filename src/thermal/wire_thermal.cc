#include "thermal/wire_thermal.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

WireThermalParams::WireThermalParams(const TechnologyNode &tech)
{
    const double w = tech.wire_width;
    const double s = tech.spacing();
    const double t = tech.wire_thickness;
    const double t_ild = tech.ild_height;
    const double k = tech.k_ild;

    if (t_ild <= 0.5 * s)
        fatal("WireThermalParams: ILD height %g too small for "
              "rectangular term (needs > s/2 = %g)", t_ild, 0.5 * s);

    r_spr_ = std::log((w + s) / w) / (2.0 * k);
    r_rect_ = (t_ild - 0.5 * s) / (k * (w + s));
    r_inter_ = s / (k * t);
    c_th_ = units::cs_copper * w * t;
}

} // namespace nanobus
