#include "thermal/interlayer.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

InterLayerModel::InterLayerModel(const TechnologyNode &tech,
                                 const MetalLayerStack &stack)
    : tech_(tech), stack_(stack)
{
    if (stack.size() == 0)
        fatal("InterLayerModel: empty layer stack");
}

double
InterLayerModel::layerFlux(size_t j) const
{
    const MetalLayer &layer = stack_.layer(j);
    // Volumetric heating j^2 rho [W/m^3] over the layer's metal
    // thickness, derated by the coverage/coupling factor alpha.
    return tech_.j_max * tech_.j_max * units::rho_copper *
        layer.thickness * layer.coverage;
}

double
InterLayerModel::deltaTheta() const
{
    // T_top - T_substrate = sum over ILDs i of (t_ild,i / k_ild,i)
    // times the flux through ILD i. Heat sinks downward into the
    // substrate, so ILD i carries the heat of every layer j >= i,
    // excluding the top layer itself (inner sum to N-1, as in Eq 7).
    const size_t n = stack_.size();
    double delta = 0.0;
    double flux_above = 0.0; // sum of layerFlux(j) for j in [i, n-2]

    // Walk ILDs from the top down, accumulating flux.
    for (size_t ii = n; ii-- > 0;) {
        if (ii + 1 < n) // layer ii is not the top layer
            flux_above += layerFlux(ii);
        const MetalLayer &layer = stack_.layer(ii);
        delta += layer.ild_height / layer.k_ild * flux_above;
    }
    return delta;
}

double
InterLayerModel::perPaperEquation7() const
{
    const size_t n = stack_.size();
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const MetalLayer &li = stack_.layer(i);
        double inner = 0.0;
        for (size_t j = i; j + 1 < n; ++j) {
            const MetalLayer &lj = stack_.layer(j);
            inner += tech_.j_max * tech_.j_max * units::rho_copper *
                lj.coverage * lj.thickness;
        }
        delta += li.ild_height /
            (li.k_ild * li.spacing * li.coverage) * inner;
    }
    return delta;
}

} // namespace nanobus
