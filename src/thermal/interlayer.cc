#include "thermal/interlayer.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

InterLayerModel::InterLayerModel(const TechnologyNode &tech,
                                 const MetalLayerStack &stack)
    : tech_(tech), stack_(stack)
{
    if (stack.size() == 0)
        fatal("InterLayerModel: empty layer stack");
}

WattsPerSquareMeter
InterLayerModel::layerFlux(size_t j) const
{
    const MetalLayer &layer = stack_.layer(j);
    // Volumetric heating j^2 rho [W/m^3] over the layer's metal
    // thickness, derated by the coverage/coupling factor alpha.
    // A^2/m^4 * ohm m * m composes to W/m^2.
    return tech_.j_max * tech_.j_max *
        OhmMeters{units::rho_copper} * layer.thickness *
        layer.coverage;
}

Kelvin
InterLayerModel::deltaTheta() const
{
    // T_top - T_substrate = sum over ILDs i of (t_ild,i / k_ild,i)
    // times the flux through ILD i. Heat sinks downward into the
    // substrate, so ILD i carries the heat of every layer j >= i,
    // excluding the top layer itself (inner sum to N-1, as in Eq 7).
    const size_t n = stack_.size();
    Kelvin delta;
    WattsPerSquareMeter flux_above; // sum over layers [i, n-2]

    // Walk ILDs from the top down, accumulating flux.
    for (size_t ii = n; ii-- > 0;) {
        if (ii + 1 < n) // layer ii is not the top layer
            flux_above += layerFlux(ii);
        const MetalLayer &layer = stack_.layer(ii);
        delta += layer.ild_height / layer.k_ild * flux_above;
    }
    return delta;
}

double
InterLayerModel::perPaperEquation7() const
{
    // Deliberately raw arithmetic: the as-printed Eq 7 carries an
    // extra 1/(s_i alpha_i), so its result is K/m — a dimension the
    // typed layer refuses to call Kelvin.
    const size_t n = stack_.size();
    const double j_max = tech_.j_max.raw();
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const MetalLayer &li = stack_.layer(i);
        double inner = 0.0;
        for (size_t j = i; j + 1 < n; ++j) {
            const MetalLayer &lj = stack_.layer(j);
            inner += j_max * j_max * units::rho_copper *
                lj.coverage * lj.thickness.raw();
        }
        delta += li.ild_height.raw() /
            (li.k_ild.raw() * li.spacing.raw() * li.coverage) * inner;
    }
    return delta;
}

} // namespace nanobus
