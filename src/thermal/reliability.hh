/**
 * @file
 * Electromigration reliability model.
 *
 * The paper's motivation for per-wire temperature tracking is that
 * localized heating "can cause performance degradation ... and/or
 * decrease in electromigration reliability", and that worst-case
 * thermal models lead to "incorrect interconnect lifetime
 * prediction". This module quantifies that: Black's equation gives
 * the mean time to failure of a wire as
 *
 *   MTTF = A j^-n exp(Ea / (kB T))
 *
 * with n ~= 2 and Ea ~= 0.9 eV for Cu/low-K interconnect. Absolute
 * MTTF needs the process constant A, so the API reports *relative*
 * acceleration factors against a reference operating point, which is
 * exactly what a designer compares across wires and workloads.
 */

#ifndef NANOBUS_THERMAL_RELIABILITY_HH
#define NANOBUS_THERMAL_RELIABILITY_HH

#include <vector>

#include "tech/technology.hh"

namespace nanobus {

/** Black's-equation parameters. */
struct BlackParams
{
    /** Activation energy [eV]; ~0.9 eV for Cu electromigration. */
    double activation_energy_ev = 0.9;
    /** Current-density exponent n; ~2 for Cu. */
    double current_exponent = 2.0;

    /** Validate invariants. */
    void validate() const;
};

/** Per-wire electromigration summary for a simulated interval. */
struct WireReliability
{
    /** Wire temperature used [K]. */
    double temperature = 0.0;
    /** RMS current density [A/m^2]. */
    double current_density = 0.0;
    /**
     * MTTF relative to operation at the reference temperature and
     * j_max: > 1 means the wire outlives the reference rating,
     * < 1 means it fails sooner.
     */
    double mttf_factor = 0.0;
};

/** Electromigration lifetime comparisons via Black's equation. */
class ReliabilityModel
{
  public:
    /**
     * @param tech Technology node (supplies j_max for the reference
     *             rating and the wire cross-section).
     * @param reference_temperature Rated operating temperature [K];
     *        the paper's 318.15 K ambient by default.
     * @param params Black's-equation constants.
     */
    explicit ReliabilityModel(const TechnologyNode &tech,
                              double reference_temperature = 318.15,
                              const BlackParams &params =
                                  BlackParams());

    /**
     * Thermal acceleration factor exp(Ea/kB (1/T - 1/Tref)):
     * the MTTF multiplier from temperature alone. < 1 for T > Tref.
     */
    double thermalFactor(double temperature) const;

    /**
     * Full Black's-equation MTTF factor at temperature T and RMS
     * current density j, relative to (Tref, j_max). A wire with zero
     * current does not electromigrate: returns +infinity.
     */
    double mttfFactor(double temperature,
                      double current_density) const;

    /**
     * RMS current density [A/m^2] of a wire that dissipated
     * `energy` joules over `duration` seconds: P = I_rms^2 R over
     * the wire's resistance, j = I_rms / (w t).
     *
     * @param energy Energy dissipated in the wire [J].
     * @param duration Interval length [s].
     * @param wire_length Physical wire length [m].
     */
    double currentDensity(double energy, double duration,
                          double wire_length) const;

    /**
     * Per-wire report for a set of wire temperatures and dissipated
     * energies over one interval.
     */
    std::vector<WireReliability> report(
        const std::vector<double> &temperatures,
        const std::vector<double> &energies, double duration,
        double wire_length) const;

    /** The reference temperature [K]. */
    double referenceTemperature() const { return t_ref_; }

  private:
    const TechnologyNode &tech_;
    double t_ref_;
    BlackParams params_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_RELIABILITY_HH
