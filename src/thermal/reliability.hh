/**
 * @file
 * Electromigration reliability model.
 *
 * The paper's motivation for per-wire temperature tracking is that
 * localized heating "can cause performance degradation ... and/or
 * decrease in electromigration reliability", and that worst-case
 * thermal models lead to "incorrect interconnect lifetime
 * prediction". This module quantifies that: Black's equation gives
 * the mean time to failure of a wire as
 *
 *   MTTF = A j^-n exp(Ea / (kB T))
 *
 * with n ~= 2 and Ea ~= 0.9 eV for Cu/low-K interconnect. Absolute
 * MTTF needs the process constant A, so the API reports *relative*
 * acceleration factors against a reference operating point, which is
 * exactly what a designer compares across wires and workloads.
 */

#ifndef NANOBUS_THERMAL_RELIABILITY_HH
#define NANOBUS_THERMAL_RELIABILITY_HH

#include <vector>

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Black's-equation parameters. */
struct BlackParams
{
    /** Activation energy [eV]; ~0.9 eV for Cu electromigration. */
    double activation_energy_ev = 0.9;
    /** Current-density exponent n; ~2 for Cu. */
    double current_exponent = 2.0;

    /** Validate invariants. */
    void validate() const;
};

/** Per-wire electromigration summary for a simulated interval. */
struct WireReliability
{
    /** Wire temperature used. */
    Kelvin temperature;
    /** RMS current density. */
    AmpsPerSquareMeter current_density;
    /**
     * MTTF relative to operation at the reference temperature and
     * j_max: > 1 means the wire outlives the reference rating,
     * < 1 means it fails sooner.
     */
    double mttf_factor = 0.0;
};

/** Electromigration lifetime comparisons via Black's equation. */
class ReliabilityModel
{
  public:
    /**
     * @param tech Technology node (supplies j_max for the reference
     *             rating and the wire cross-section).
     * @param reference_temperature Rated operating temperature;
     *        the paper's 318.15 K ambient by default.
     * @param params Black's-equation constants.
     */
    explicit ReliabilityModel(const TechnologyNode &tech,
                              Kelvin reference_temperature =
                                  Kelvin{318.15},
                              const BlackParams &params =
                                  BlackParams());

    /**
     * Thermal acceleration factor exp(Ea/kB (1/T - 1/Tref)):
     * the MTTF multiplier from temperature alone. < 1 for T > Tref.
     */
    double thermalFactor(Kelvin temperature) const;

    /**
     * Full Black's-equation MTTF factor at temperature T and RMS
     * current density j, relative to (Tref, j_max). A wire with zero
     * current does not electromigrate: returns +infinity.
     */
    double mttfFactor(Kelvin temperature,
                      AmpsPerSquareMeter current_density) const;

    /**
     * RMS current density of a wire that dissipated `energy` over
     * `duration`: P = I_rms^2 R over the wire's resistance,
     * j = I_rms / (w t).
     *
     * @param energy Energy dissipated in the wire.
     * @param duration Interval length.
     * @param wire_length Physical wire length.
     */
    AmpsPerSquareMeter currentDensity(Joules energy, Seconds duration,
                                      Meters wire_length) const;

    /**
     * Per-wire report for a set of wire temperatures [K] and
     * dissipated energies [J] over one interval.
     */
    std::vector<WireReliability> report(
        const std::vector<double> &temperatures,
        const std::vector<double> &energies, Seconds duration,
        Meters wire_length) const;

    /** The reference temperature. */
    Kelvin referenceTemperature() const { return t_ref_; }

  private:
    const TechnologyNode &tech_;
    Kelvin t_ref_;
    BlackParams params_;
};

} // namespace nanobus

#endif // NANOBUS_THERMAL_RELIABILITY_HH
